// Testbench generator tests: golden-vector generation, serialization
// round-trip, self-check, and cross-architecture mismatch detection.
#include <gtest/gtest.h>

#include <sstream>

#include "codes/wimax.hpp"
#include "arch/testbench.hpp"

namespace ldpc {
namespace {

struct Fixture {
  QCLdpcCode code = make_wimax_code(WimaxRate::kRate1_2, 24);
  FixedFormat fmt{8, 2};
  PicoCompiler pico{FixedFormat{8, 2}};

  std::unique_ptr<ArchSimDecoder> make_sim(ArchKind arch, double mhz = 400.0) {
    const auto est = pico.compile(code, arch, HardwareTarget{mhz, 24});
    DecoderOptions opt;
    opt.max_iterations = 8;
    return std::make_unique<ArchSimDecoder>(code, est, opt, fmt);
  }
};

TEST(Testbench, GenerationProducesRequestedFrames) {
  Fixture fx;
  auto sim = fx.make_sim(ArchKind::kPerLayer);
  const auto tb = generate_testbench(fx.code, *sim, 5, 2.5F, 99);
  EXPECT_EQ(tb.frames.size(), 5u);
  EXPECT_EQ(tb.n, fx.code.n());
  EXPECT_EQ(tb.z, 24);
  EXPECT_EQ(tb.code_name, "wimax-1/2/z24");
  for (const auto& f : tb.frames) {
    EXPECT_EQ(f.channel_codes.size(), fx.code.n());
    EXPECT_EQ(f.expected_hard.size(), fx.code.n());
    EXPECT_GT(f.expected_cycles, 0);
  }
}

TEST(Testbench, DeterministicForSeed) {
  Fixture fx;
  auto sim = fx.make_sim(ArchKind::kPerLayer);
  const auto a = generate_testbench(fx.code, *sim, 3, 2.5F, 7);
  const auto b = generate_testbench(fx.code, *sim, 3, 2.5F, 7);
  for (std::size_t f = 0; f < 3; ++f) {
    EXPECT_EQ(a.frames[f].channel_codes, b.frames[f].channel_codes);
    EXPECT_TRUE(a.frames[f].expected_hard == b.frames[f].expected_hard);
    EXPECT_EQ(a.frames[f].expected_cycles, b.frames[f].expected_cycles);
  }
}

TEST(Testbench, SerializationRoundTrips) {
  Fixture fx;
  auto sim = fx.make_sim(ArchKind::kTwoLayerPipelined);
  const auto tb = generate_testbench(fx.code, *sim, 4, 2.5F, 11);
  std::stringstream buffer;
  write_testbench(buffer, tb);
  const auto loaded = read_testbench(buffer);
  EXPECT_EQ(loaded.code_name, tb.code_name);
  EXPECT_EQ(loaded.n, tb.n);
  EXPECT_EQ(loaded.arch, tb.arch);
  EXPECT_EQ(loaded.parallelism, tb.parallelism);
  ASSERT_EQ(loaded.frames.size(), tb.frames.size());
  for (std::size_t f = 0; f < tb.frames.size(); ++f) {
    EXPECT_EQ(loaded.frames[f].channel_codes, tb.frames[f].channel_codes);
    EXPECT_TRUE(loaded.frames[f].expected_hard == tb.frames[f].expected_hard);
    EXPECT_EQ(loaded.frames[f].expected_iterations,
              tb.frames[f].expected_iterations);
    EXPECT_EQ(loaded.frames[f].expected_converged,
              tb.frames[f].expected_converged);
    EXPECT_EQ(loaded.frames[f].expected_cycles, tb.frames[f].expected_cycles);
  }
}

TEST(Testbench, SelfVerifyPasses) {
  Fixture fx;
  auto sim = fx.make_sim(ArchKind::kTwoLayerPipelined);
  const auto tb = generate_testbench(fx.code, *sim, 6, 2.0F, 13);
  EXPECT_EQ(verify_testbench(tb, *sim), 0u);
}

TEST(Testbench, VerifyAfterRoundTripPasses) {
  Fixture fx;
  auto sim = fx.make_sim(ArchKind::kPerLayer);
  const auto tb = generate_testbench(fx.code, *sim, 3, 2.0F, 17);
  std::stringstream buffer;
  write_testbench(buffer, tb);
  const auto loaded = read_testbench(buffer);
  EXPECT_EQ(verify_testbench(loaded, *sim), 0u);
}

TEST(Testbench, CrossArchitectureCycleMismatchDetected) {
  // The same stimulus decodes to the same bits on both architectures, but
  // cycle counts differ — verify_testbench must flag every frame.
  Fixture fx;
  auto per_layer = fx.make_sim(ArchKind::kPerLayer);
  auto pipelined = fx.make_sim(ArchKind::kTwoLayerPipelined);
  const auto tb = generate_testbench(fx.code, *per_layer, 4, 2.0F, 19);
  EXPECT_EQ(verify_testbench(tb, *pipelined), 4u);
}

TEST(Testbench, TamperedVectorDetected) {
  Fixture fx;
  auto sim = fx.make_sim(ArchKind::kPerLayer);
  auto tb = generate_testbench(fx.code, *sim, 2, 2.0F, 23);
  tb.frames[1].expected_hard.flip(0);
  EXPECT_EQ(verify_testbench(tb, *sim), 1u);
}

TEST(Testbench, MalformedInputRejected) {
  EXPECT_THROW(
      { std::istringstream is("not a testbench"); read_testbench(is); }, Error);
  EXPECT_THROW(
      {
        std::istringstream is("pico_ldpc_testbench v1\ncode x\nn 0 z 1 msg_bits 8\n");
        read_testbench(is);
      },
      Error);
}

TEST(Testbench, WrongSimulatorRejected) {
  Fixture fx;
  auto sim24 = fx.make_sim(ArchKind::kPerLayer);
  const auto tb = generate_testbench(fx.code, *sim24, 1, 2.0F, 29);

  const auto other_code = make_wimax_code(WimaxRate::kRate1_2, 48);
  const auto est = fx.pico.compile(other_code, ArchKind::kPerLayer,
                                   HardwareTarget{400.0, 48});
  DecoderOptions opt;
  ArchSimDecoder sim48(other_code, est, opt, fx.fmt);
  EXPECT_THROW(verify_testbench(tb, sim48), Error);
}

}  // namespace
}  // namespace ldpc
