// Tests for the flexible multi-rate WiMAX decoder (the paper's §V claim:
// one decoder instance fully supporting IEEE 802.16e).
#include <gtest/gtest.h>

#include "arch/flexible_decoder.hpp"
#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "util/rng.hpp"

namespace ldpc {
namespace {

std::vector<float> frame_for(const QCLdpcCode& code, float ebn0,
                             std::uint64_t seed, BitVec* word_out = nullptr) {
  const RuEncoder enc(code);
  Xoshiro256 rng(seed);
  BitVec info(code.k());
  for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
  const BitVec word = enc.encode(info);
  if (word_out) *word_out = word;
  const float variance = awgn_noise_variance(ebn0, code.rate());
  AwgnChannel ch(variance, seed + 3);
  return BpskModem::demodulate(ch.transmit(BpskModem::modulate(word)), variance);
}

TEST(FlexibleDecoder, DecodesEveryRateFamily) {
  FlexibleWimaxDecoder decoder;
  for (WimaxRate rate : all_wimax_rates()) {
    const WimaxCodeId id{rate, 96};
    BitVec word;
    const auto llr =
        frame_for(decoder.code(id), rate == WimaxRate::kRate5_6 ? 5.0F : 4.0F,
                  17, &word);
    const auto result = decoder.decode(id, llr);
    EXPECT_TRUE(result.decode.hard_bits == word) << wimax_rate_name(rate);
  }
  EXPECT_EQ(decoder.active_configurations(), 6u);
}

TEST(FlexibleDecoder, DecodesMultipleBlockSizes) {
  FlexibleWimaxDecoder decoder;
  for (int z : {24, 52, 96}) {
    const WimaxCodeId id{WimaxRate::kRate1_2, z};
    BitVec word;
    const auto llr = frame_for(decoder.code(id), 4.0F, 23, &word);
    const auto result = decoder.decode(id, llr);
    EXPECT_TRUE(result.decode.hard_bits == word) << "z=" << z;
    EXPECT_EQ(decoder.code(id).n(), 24u * static_cast<std::size_t>(z));
  }
}

TEST(FlexibleDecoder, SwitchingBackAndForthIsStateless) {
  // Decoding rate A, then B, then A again must give identical results for
  // identical inputs — reconfiguration leaves no residue.
  FlexibleWimaxDecoder decoder;
  const WimaxCodeId a{WimaxRate::kRate1_2, 96};
  const WimaxCodeId b{WimaxRate::kRate5_6, 96};
  BitVec word_a;
  const auto llr_a = frame_for(decoder.code(a), 2.0F, 31, &word_a);
  const auto llr_b = frame_for(decoder.code(b), 5.0F, 32);

  const auto first = decoder.decode(a, llr_a);
  decoder.decode(b, llr_b);
  const auto again = decoder.decode(a, llr_a);
  EXPECT_TRUE(first.decode.hard_bits == again.decode.hard_bits);
  EXPECT_EQ(first.decode.iterations, again.decode.iterations);
  EXPECT_EQ(first.activity.cycles, again.activity.cycles);
}

TEST(FlexibleDecoder, RejectsWrongFrameLength) {
  FlexibleWimaxDecoder decoder;
  const WimaxCodeId id{WimaxRate::kRate1_2, 96};
  std::vector<float> short_frame(100, 1.0F);
  EXPECT_THROW(decoder.decode(id, short_frame), Error);
}

TEST(FlexibleDecoder, RejectsInvalidZ) {
  FlexibleWimaxDecoder decoder;
  const WimaxCodeId id{WimaxRate::kRate1_2, 25};
  std::vector<float> llr(24 * 25, 1.0F);
  EXPECT_THROW(decoder.decode(id, llr), Error);
}

TEST(FlexibleDecoder, ProvisionedMemoryCoversAllConfigurations) {
  FlexibleWimaxDecoder decoder;
  const long long provisioned = decoder.provisioned_sram_bits();
  EXPECT_EQ(provisioned, (24LL + 88) * 96 * 8);  // Table II regime
  for (WimaxRate rate : all_wimax_rates()) {
    const WimaxCodeId id{rate, 96};
    const auto& code = decoder.code(id);
    const long long needed =
        (24LL + static_cast<long long>(code.base().nonzero_blocks())) * 96 * 8;
    EXPECT_LE(needed, provisioned) << wimax_rate_name(rate);
  }
}

TEST(FlexibleDecoder, HigherRatesDeliverMoreInfoBitsPerCycle) {
  // Rate 5/6 carries 1920 info bits per frame vs 1152 at rate 1/2, while a
  // decoding iteration costs about the same cycles (denser rows, fewer
  // layers) — so information throughput rises with the rate (ablation 5).
  FlexibleWimaxDecoder decoder;
  const WimaxCodeId half{WimaxRate::kRate1_2, 96};
  const WimaxCodeId five_sixth{WimaxRate::kRate5_6, 96};
  const auto llr_half = frame_for(decoder.code(half), 8.0F, 41);
  const auto llr_56 = frame_for(decoder.code(five_sixth), 8.0F, 42);
  const auto r_half = decoder.decode(half, llr_half);
  const auto r_56 = decoder.decode(five_sixth, llr_56);
  ASSERT_TRUE(r_half.decode.converged);
  ASSERT_TRUE(r_56.decode.converged);
  const double bits_per_cycle_half =
      static_cast<double>(decoder.code(half).k()) /
      static_cast<double>(r_half.first_iteration_cycles);
  const double bits_per_cycle_56 =
      static_cast<double>(decoder.code(five_sixth).k()) /
      static_cast<double>(r_56.first_iteration_cycles);
  EXPECT_GT(bits_per_cycle_56, bits_per_cycle_half);
}

TEST(FlexibleDecoder, PerLayerVariantAlsoWorks) {
  FlexibleWimaxDecoder decoder(200.0, FixedFormat{6, 1}, ArchKind::kPerLayer,
                               false);
  const WimaxCodeId id{WimaxRate::kRate2_3B, 48};
  BitVec word;
  const auto llr = frame_for(decoder.code(id), 5.0F, 51, &word);
  const auto result = decoder.decode(id, llr);
  EXPECT_TRUE(result.decode.hard_bits == word);
  EXPECT_EQ(result.activity.core1_stall_cycles, 0);
}

}  // namespace
}  // namespace ldpc
