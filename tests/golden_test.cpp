// Golden regression tests: exact expected values for fixed seeds.
//
// Unlike the property tests, these pin down the *precise* behaviour of the
// deterministic pipeline — quantized LLRs, iteration counts, cycle counts,
// stall counts. Any change to the RNG, the quantizer, the kernel's rounding
// or the timing engine shows up here first, on purpose: bit-exact
// reproducibility is a feature of this codebase. If you change behaviour
// deliberately, re-derive these constants and say so in the commit.
#include <gtest/gtest.h>

#include "arch/arch_sim.hpp"
#include "bench/bench_common.hpp"
#include "codes/wimax.hpp"
#include "core/layered_minsum_fixed.hpp"
#include "util/rng.hpp"

namespace ldpc {
namespace {

TEST(Golden, XoshiroFirstDraws) {
  Xoshiro256 rng(42);
  EXPECT_EQ(rng(), 15021278609987233951ULL);
  EXPECT_EQ(rng(), 5881210131331364753ULL);
}

TEST(Golden, QuantizedFrameChecksum) {
  const auto code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  const auto frame = ldpc::bench::quantized_frame(code, fmt, 2.0F, 42);
  long long sum = 0, abs_sum = 0;
  for (const auto c : frame) {
    sum += c;
    abs_sum += c < 0 ? -c : c;
  }
  // Any change to the encoder, modulator, AWGN draw order or quantizer
  // moves these.
  EXPECT_EQ(frame.size(), 2304u);
  EXPECT_EQ(sum, -488);
  EXPECT_EQ(abs_sum, 32234);
}

TEST(Golden, FixedDecoderTrajectory) {
  const auto code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  DecoderOptions opt;
  opt.max_iterations = 10;
  std::vector<std::size_t> syndrome_history;
  opt.observer = [&](const IterationSnapshot& s) {
    syndrome_history.push_back(s.syndrome_weight);
  };
  LayeredMinSumFixedDecoder dec(code, opt, fmt);
  const auto frame = ldpc::bench::quantized_frame(code, fmt, 2.0F, 42);
  const auto result = dec.decode_quantized(frame);
  EXPECT_TRUE(result.converged);
  ASSERT_FALSE(syndrome_history.empty());
  EXPECT_EQ(syndrome_history.back(), 0u);
  // Strictly this frame: converges in 7 iterations at 2.0 dB.
  EXPECT_EQ(result.iterations, 7u);
  EXPECT_EQ(syndrome_history.size(), 7u);
}

TEST(Golden, ArchCycleCounts400MHz) {
  const auto code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);

  const auto per =
      bench::run_design_point(code, ArchKind::kPerLayer, 400.0, 96, fmt);
  EXPECT_EQ(per.activity.cycles, 1880);
  EXPECT_EQ(per.first_iteration_cycles, 188);
  EXPECT_EQ(per.activity.core1_stall_cycles, 0);

  const auto pipe = bench::run_design_point(code, ArchKind::kTwoLayerPipelined,
                                            400.0, 96, fmt, /*reorder=*/false);
  EXPECT_EQ(pipe.activity.cycles, 1345);
  EXPECT_EQ(pipe.activity.core1_stall_cycles, 576);

  const auto reordered = bench::run_design_point(
      code, ArchKind::kTwoLayerPipelined, 400.0, 96, fmt, /*reorder=*/true);
  EXPECT_EQ(reordered.activity.cycles, 1016);
  EXPECT_EQ(reordered.activity.core1_stall_cycles, 247);
}

TEST(Golden, ArchCycleCounts100MHz) {
  const auto code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  const auto per =
      bench::run_design_point(code, ArchKind::kPerLayer, 100.0, 96, fmt);
  // D1 = D2 = 1 at 100 MHz: exactly 2 * 76 cycles per iteration.
  EXPECT_EQ(per.first_iteration_cycles, 152);
  const auto pipe = bench::run_design_point(code, ArchKind::kTwoLayerPipelined,
                                            100.0, 96, fmt);
  EXPECT_EQ(pipe.activity.cycles, 985);
}

TEST(Golden, PicoEstimate400MHz) {
  const auto code = make_wimax_2304_half_rate();
  const PicoCompiler pico(FixedFormat{8, 2});
  const auto est = pico.compile(code, ArchKind::kTwoLayerPipelined,
                                HardwareTarget{400.0, 96});
  EXPECT_EQ(est.core1_latency, 3);
  EXPECT_EQ(est.core2_latency, 2);
  EXPECT_EQ(est.array_reg_bits, 2112 * 2 + 5376 + 24);
  EXPECT_EQ(est.pipeline_reg_bits, 3168);
}

TEST(Golden, MemoryComplement) {
  EXPECT_EQ(ldpc::bench::flexible_decoder_sram_bits(), 86016);
  EXPECT_EQ(wimax_max_r_slots(), 88u);
}

}  // namespace
}  // namespace ldpc
