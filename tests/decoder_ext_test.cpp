// Tests for the extension decoders (Gallager-B, self-corrected min-sum)
// and the 16-QAM modem / BER-harness path.
#include <gtest/gtest.h>

#include "channel/awgn.hpp"
#include "channel/ber_runner.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "codes/wimax.hpp"
#include "core/decoder_factory.hpp"
#include "core/gallager_b.hpp"
#include "util/rng.hpp"

namespace ldpc {
namespace {

BitVec random_info(std::size_t k, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  BitVec info(k);
  for (std::size_t i = 0; i < k; ++i) info.set(i, rng.coin());
  return info;
}

// ------------------------------------------------------------ Gallager-B ----

TEST(GallagerB, CleanWordConvergesImmediately) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  GallagerBDecoder dec(code, opt);
  const RuEncoder enc(code);
  const BitVec word = enc.encode(random_info(code.k(), 1));
  const auto r = dec.decode_hard(word);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 1u);
  EXPECT_TRUE(r.hard_bits == word);
}

TEST(GallagerB, CorrectsAFewScatteredErrors) {
  const auto code = make_wimax_2304_half_rate();
  DecoderOptions opt;
  opt.max_iterations = 20;
  GallagerBDecoder dec(code, opt);
  const RuEncoder enc(code);
  BitVec word = enc.encode(random_info(code.k(), 2));
  BitVec corrupted = word;
  // ~0.5% raw BER: a regime hard-decision decoding handles.
  for (std::size_t i = 0; i < corrupted.size(); i += 211) corrupted.flip(i);
  const auto r = dec.decode_hard(corrupted);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.hard_bits == word);
}

TEST(GallagerB, WeakerThanSoftDecodingAtWaterfall) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 48);
  DecoderOptions opt;
  opt.max_iterations = 20;
  auto run = [&](const char* name) {
    BerConfig cfg;
    cfg.ebn0_db = {3.0F};
    cfg.max_frames = 80;
    cfg.min_frames = 80;
    BerRunner runner(code, [&] { return make_decoder(name, code, opt); }, cfg);
    return runner.run()[0].fer();
  };
  EXPECT_GT(run("gallager-b") + 1e-9, run("layered-minsum-fixed"));
}

TEST(GallagerB, SoftInterfaceThresholdsLlrs) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  GallagerBDecoder dec(code, opt);
  const RuEncoder enc(code);
  const BitVec word = enc.encode(random_info(code.k(), 3));
  std::vector<float> llr(code.n());
  for (std::size_t i = 0; i < code.n(); ++i)
    llr[i] = word.get(i) ? -2.5F : 2.5F;
  const auto r = dec.decode(llr);
  EXPECT_TRUE(r.hard_bits == word);
}

TEST(GallagerB, ViaFactory) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  auto dec = make_decoder("gallager-b", code, opt);
  EXPECT_EQ(dec->name(), "gallager-b");
}

// ------------------------------------------------------------------ SCMS ----

TEST(Scms, DecodesAndOutperformsPlainMinSum) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 48);
  DecoderOptions opt;
  opt.max_iterations = 15;
  auto run = [&](const char* name) {
    BerConfig cfg;
    cfg.ebn0_db = {1.8F};
    cfg.max_frames = 120;
    cfg.min_frames = 120;
    cfg.num_workers = 2;
    BerRunner runner(code, [&] { return make_decoder(name, code, opt); }, cfg);
    return runner.run()[0].fer();
  };
  const double scms = run("flooding-minsum-scms");
  const double plain = run("flooding-minsum");
  EXPECT_LE(scms, plain + 0.05);  // SCMS at least matches plain min-sum
}

TEST(Scms, NameAndFactory) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  auto dec = make_decoder("flooding-minsum-scms", code, opt);
  EXPECT_EQ(dec->name(), "flooding-minsum-scms");
  // Clean decode still works (no erasures on a consistent frame).
  const RuEncoder enc(code);
  const BitVec word = enc.encode(random_info(code.k(), 4));
  const auto llr = BpskModem::demodulate(BpskModem::modulate(word), 1.0F);
  EXPECT_TRUE(dec->decode(llr).hard_bits == word);
}

// ---------------------------------------------------------------- 16-QAM ----

TEST(Qam16, UnitAverageSymbolEnergy) {
  BitVec bits(4000);
  Xoshiro256 rng(5);
  for (std::size_t i = 0; i < bits.size(); ++i) bits.set(i, rng.coin());
  const auto iq = Qam16Modem::modulate(bits);
  double energy = 0.0;
  for (std::size_t s = 0; s < iq.size() / 2; ++s)
    energy += iq[2 * s] * iq[2 * s] + iq[2 * s + 1] * iq[2 * s + 1];
  EXPECT_NEAR(energy / (iq.size() / 2.0), 1.0, 0.05);
}

TEST(Qam16, FourLevelsPerRail) {
  BitVec bits(16);
  // Enumerate all four (outer, inner) pairs on the I rail; the I rail of
  // symbol s uses bits 4s (outer) and 4s+1 (inner).
  bits.set(5, true);             // symbol 1: (0,1)
  bits.set(8, true);             // symbol 2: (1,0)
  bits.set(12, true);            // symbol 3: (1,1)
  bits.set(13, true);
  const auto iq = Qam16Modem::modulate(bits);
  const float a = 0.31622776601683794F;
  EXPECT_NEAR(iq[0], 3 * a, 1e-6);   // (0,0) -> +3a
  EXPECT_NEAR(iq[2], a, 1e-6);       // (0,1) -> +a
  EXPECT_NEAR(iq[4], -3 * a, 1e-6);  // (1,0) -> -3a
  EXPECT_NEAR(iq[6], -a, 1e-6);      // (1,1) -> -a
}

TEST(Qam16, NoiselessRoundTrip) {
  BitVec bits(222);  // non-multiple of 4 exercises padding
  Xoshiro256 rng(6);
  for (std::size_t i = 0; i < bits.size(); ++i) bits.set(i, rng.coin());
  const auto iq = Qam16Modem::modulate(bits);
  const auto llr = Qam16Modem::demodulate(iq, 0.05F, bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i)
    EXPECT_EQ(llr[i] < 0.0F, bits.get(i)) << i;
}

TEST(Qam16, InnerBitsLessReliableThanOuterOnAverage) {
  // The inner (magnitude) bit has smaller decision distance; its average
  // |LLR| must be below the outer bit's at the same noise level.
  BitVec bits(10000);
  Xoshiro256 rng(7);
  for (std::size_t i = 0; i < bits.size(); ++i) bits.set(i, rng.coin());
  const auto iq = Qam16Modem::modulate(bits);
  AwgnChannel ch(0.05F, 8);
  const auto received = ch.transmit(iq);
  const auto llr = Qam16Modem::demodulate(received, 0.05F, bits.size());
  double outer = 0, inner = 0;
  std::size_t n_outer = 0, n_inner = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (i % 2 == 0) {
      outer += std::abs(llr[i]);
      ++n_outer;
    } else {
      inner += std::abs(llr[i]);
      ++n_inner;
    }
  }
  EXPECT_GT(outer / static_cast<double>(n_outer),
            inner / static_cast<double>(n_inner));
}

TEST(Qam16, BerHarnessDecodesAtGenerousSnr) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  BerConfig cfg;
  cfg.ebn0_db = {8.0F};
  cfg.max_frames = 30;
  cfg.min_frames = 30;
  cfg.modulation = Modulation::kQam16;
  DecoderOptions opt;
  BerRunner runner(
      code, [&] { return make_decoder("layered-minsum-float", code, opt); }, cfg);
  const auto p = runner.run()[0];
  EXPECT_EQ(p.frame_errors, 0u);
}

TEST(Qam16, NeedsMoreSnrThanQpsk) {
  // Higher-order modulation trades spectral efficiency for SNR; at a fixed
  // waterfall-region Eb/N0 16-QAM must show a worse FER than QPSK.
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  auto run = [&](Modulation mod) {
    BerConfig cfg;
    cfg.ebn0_db = {2.2F};
    cfg.max_frames = 120;
    cfg.min_frames = 120;
    cfg.modulation = mod;
    cfg.num_workers = 2;
    BerRunner runner(
        code, [&] { return make_decoder("layered-minsum-float", code, opt); },
        cfg);
    return runner.run()[0].fer();
  };
  EXPECT_GT(run(Modulation::kQam16), run(Modulation::kQpsk));
}

TEST(Qam16, RayleighPathRuns) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  BerConfig cfg;
  cfg.ebn0_db = {12.0F};
  cfg.max_frames = 20;
  cfg.min_frames = 20;
  cfg.modulation = Modulation::kQam16;
  cfg.channel = ChannelModel::kRayleigh;
  DecoderOptions opt;
  BerRunner runner(
      code, [&] { return make_decoder("layered-minsum-float", code, opt); }, cfg);
  const auto p = runner.run()[0];
  EXPECT_EQ(p.frames, 20u);
  EXPECT_LT(p.fer(), 0.5);  // high SNR: mostly decodable even with fading
}

}  // namespace
}  // namespace ldpc
