// Encoder tests: RU (structured) vs dense (reference) agreement, codeword
// validity over every standard table, and linearity properties.
#include <gtest/gtest.h>

#include "codes/encoder.hpp"
#include "codes/random_qc.hpp"
#include "codes/wifi.hpp"
#include "codes/wimax.hpp"
#include "util/rng.hpp"

namespace ldpc {
namespace {

BitVec random_info(std::size_t k, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  BitVec info(k);
  for (std::size_t i = 0; i < k; ++i) info.set(i, rng.coin());
  return info;
}

// Sweep every WiMAX rate family at several expansion factors.
struct EncoderCase {
  WimaxRate rate;
  int z;
};

class WimaxEncoderTest : public ::testing::TestWithParam<EncoderCase> {};

TEST_P(WimaxEncoderTest, RuCodewordSatisfiesParity) {
  const auto code = make_wimax_code(GetParam().rate, GetParam().z);
  const RuEncoder enc(code);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const BitVec word = enc.encode(random_info(code.k(), seed));
    EXPECT_TRUE(code.parity_ok(word)) << "seed " << seed;
  }
}

TEST_P(WimaxEncoderTest, RuMatchesDenseReference) {
  const auto code = make_wimax_code(GetParam().rate, GetParam().z);
  const RuEncoder ru(code);
  const DenseEncoder dense(code);
  for (std::uint64_t seed = 10; seed < 13; ++seed) {
    const BitVec info = random_info(code.k(), seed);
    EXPECT_TRUE(ru.encode(info) == dense.encode(info)) << "seed " << seed;
  }
}

TEST_P(WimaxEncoderTest, CodewordIsSystematic) {
  const auto code = make_wimax_code(GetParam().rate, GetParam().z);
  const RuEncoder enc(code);
  const BitVec info = random_info(code.k(), 3);
  const BitVec word = enc.encode(info);
  for (std::size_t i = 0; i < code.k(); ++i)
    EXPECT_EQ(word.get(i), info.get(i));
}

std::vector<EncoderCase> encoder_cases() {
  std::vector<EncoderCase> cases;
  for (WimaxRate rate : all_wimax_rates())
    for (int z : {24, 28, 52, 96}) cases.push_back({rate, z});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllRatesAndSizes, WimaxEncoderTest,
                         ::testing::ValuesIn(encoder_cases()),
                         [](const auto& info) {
                           std::string n = wimax_rate_name(info.param.rate) +
                                           "_z" + std::to_string(info.param.z);
                           for (char& c : n)
                             if (c == '-' || c == '/') c = '_';
                           return n;
                         });

// ------------------------------------------------------------ properties ----

TEST(Encoder, ZeroInfoEncodesToZeroCodeword) {
  const auto code = make_wimax_2304_half_rate();
  const RuEncoder enc(code);
  const BitVec word = enc.encode(BitVec(code.k()));
  EXPECT_TRUE(word.all_zero());
}

TEST(Encoder, EncodingIsLinear) {
  // encode(a) XOR encode(b) == encode(a XOR b) for a linear code.
  const auto code = make_wimax_code(WimaxRate::kRate2_3A, 48);
  const RuEncoder enc(code);
  const BitVec a = random_info(code.k(), 21);
  const BitVec b = random_info(code.k(), 22);
  BitVec ab = a;
  ab.xor_with(b);
  BitVec sum = enc.encode(a);
  sum.xor_with(enc.encode(b));
  EXPECT_TRUE(sum == enc.encode(ab));
}

TEST(Encoder, SingleBitImpulseResponsesAreCodewords) {
  const auto code = make_wimax_code(WimaxRate::kRate5_6, 24);
  const RuEncoder enc(code);
  for (std::size_t i = 0; i < code.k(); i += 37) {
    BitVec impulse(code.k());
    impulse.set(i, true);
    EXPECT_TRUE(code.parity_ok(enc.encode(impulse))) << "bit " << i;
  }
}

TEST(Encoder, WrongInfoLengthThrows) {
  const auto code = make_wimax_2304_half_rate();
  const RuEncoder ru(code);
  const DenseEncoder dense(code);
  EXPECT_THROW(ru.encode(BitVec(code.k() - 1)), Error);
  EXPECT_THROW(dense.encode(BitVec(code.k() + 1)), Error);
}

TEST(Encoder, DimensionsExposed) {
  const auto code = make_wimax_2304_half_rate();
  const RuEncoder enc(code);
  EXPECT_EQ(enc.k(), 1152u);
  EXPECT_EQ(enc.n(), 2304u);
}

// ------------------------------------------------------------ WiFi codes ----

TEST(Encoder, Wifi648BothEncodersAgree) {
  const auto code = make_wifi_648_half_rate();
  const RuEncoder ru(code);
  const DenseEncoder dense(code);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const BitVec info = random_info(code.k(), seed);
    const BitVec w = ru.encode(info);
    EXPECT_TRUE(code.parity_ok(w));
    EXPECT_TRUE(w == dense.encode(info));
  }
}

TEST(Encoder, Wifi1944BothEncodersAgree) {
  const auto code = make_wifi_1944_half_rate();
  const RuEncoder ru(code);
  const DenseEncoder dense(code);
  const BitVec info = random_info(code.k(), 4);
  const BitVec w = ru.encode(info);
  EXPECT_TRUE(code.parity_ok(w));
  EXPECT_TRUE(w == dense.encode(info));
}

// ---------------------------------------------------------- random codes ----

class RandomCodeEncoderTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCodeEncoderTest, RandomCodesEncodeCleanly) {
  RandomQcConfig cfg;
  cfg.block_rows = 4 + GetParam() % 5;
  cfg.block_cols = 12 + (GetParam() % 3) * 4;
  cfg.z = 8 << (GetParam() % 3);
  const std::size_t kb = cfg.block_cols - cfg.block_rows;
  cfg.info_row_degree = std::min<std::size_t>(3 + GetParam() % 4, kb);
  cfg.seed = GetParam();
  const auto code = make_random_qc_code(cfg);
  const RuEncoder ru(code);
  const DenseEncoder dense(code);
  const BitVec info = random_info(code.k(), GetParam() * 7 + 1);
  const BitVec w = ru.encode(info);
  EXPECT_TRUE(code.parity_ok(w));
  EXPECT_TRUE(w == dense.encode(info));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCodeEncoderTest,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(Encoder, RuRejectsNonDualDiagonalParity) {
  // A base matrix whose parity part is an identity (not dual-diagonal).
  BaseMatrix b(3, 6,
               {
                   0, 1, 2, 0, -1, -1,
                   2, 0, 1, -1, 0, -1,
                   1, 2, 0, -1, -1, 0,
               },
               4, "identity-parity");
  const QCLdpcCode code(b);
  EXPECT_THROW(RuEncoder{code}, Error);
  // The dense encoder handles it fine (parity part is invertible).
  const DenseEncoder dense(code);
  const BitVec w = dense.encode(random_info(code.k(), 1));
  EXPECT_TRUE(code.parity_ok(w));
}

TEST(Encoder, DenseRejectsSingularParityPart) {
  // Two identical parity columns -> singular parity part.
  BaseMatrix b(3, 6,
               {
                   0, 1, 2, 0, 0, -1,
                   2, 0, 1, 0, 0, -1,
                   1, 2, 0, -1, -1, 0,
               },
               4, "singular-parity");
  const QCLdpcCode code(b);
  EXPECT_THROW(DenseEncoder{code}, Error);
}

}  // namespace
}  // namespace ldpc
