// End-to-end chaos test: the fault-injection subsystem (src/fault/) wired
// through a DecoderFactory into the batch engine's supervision machinery.
//
// A batch decodes with a per-worker (thread_local) FaultInjector armed for
// a deterministic, frame-keyed subset of frames (>= 10% of the batch) at an
// aggressive upset rate. The properties under test:
//
//   * exactly-once completion — every submitted frame's task runs once and
//     its slot is finalized once, even while workers are being quarantined
//     and replaced mid-batch;
//   * supervision — fault-detected outcomes count as strikes, so at least
//     one worker is quarantined and the pool keeps decoding on replacement
//     threads;
//   * determinism — the injector is reseeded per frame from the frame index
//     (never the worker), so the *whole batch* — including corrupted
//     frames — is bit-identical for 1, 2 and 8 workers, and the un-faulted
//     frames additionally match a clean single-threaded reference decode.
//
// The test runs in the ThreadSanitizer stage of scripts/check.sh: the
// quarantine/replacement path, the thread_local injector wiring and the
// metrics snapshots are all raced here.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "codes/wimax.hpp"
#include "core/decoder_factory.hpp"
#include "fault/fault_injector.hpp"
#include "runtime/batch_engine.hpp"
#include "runtime/retry_policy.hpp"

namespace ldpc {
namespace {

constexpr std::uint64_t kChaosSeed = 0xc4a05ULL;
constexpr std::size_t kFrames = 60;
/// Every 5th frame decodes with the injector armed: 12/60 = 20% >= 10%.
bool frame_is_faulted(std::size_t frame) { return frame % 5 == 0; }

/// One injector per worker thread, owned by the thread so the decoder the
/// factory builds on that thread can keep a plain pointer to it. Starts
/// disabled; each task arms/reseeds it for its own frame only.
FaultInjector& tls_injector() {
  thread_local FaultInjector injector{[] {
    FaultConfig config;
    config.rate = 0.02;  // aggressive: a faulted frame takes many upsets
    config.kind = FaultKind::kTransientFlip;
    config.sites = kAllFaultSites;
    return config;
  }()};
  thread_local bool initialized = false;
  if (!initialized) {
    injector.set_enabled(false);
    initialized = true;
  }
  return injector;
}

DecoderFactory chaotic_factory(const QCLdpcCode& code) {
  return [&code] {
    DecoderOptions options;
    options.fault_injector = &tls_injector();
    return make_decoder("layered-minsum-fixed", code, options);
  };
}

std::vector<std::vector<float>> make_frames(const QCLdpcCode& code,
                                            float ebn0_db) {
  const float variance = awgn_noise_variance(ebn0_db, code.rate());
  std::vector<std::vector<float>> frames;
  frames.reserve(kFrames);
  const BitVec zero(code.n());
  for (std::size_t f = 0; f < kFrames; ++f) {
    AwgnChannel awgn(variance, 4000 + f);
    frames.push_back(BpskModem::demodulate(
        awgn.transmit(BpskModem::modulate(zero)), variance));
  }
  return frames;
}

struct ChaosRun {
  std::vector<DecodeResult> slots;
  std::vector<int> completions;  ///< task executions per frame
  EngineMetrics metrics;
};

ChaosRun run_chaos(const QCLdpcCode& code,
                   const std::vector<std::vector<float>>& frames,
                   unsigned workers) {
  BatchEngineConfig config;
  config.num_workers = workers;
  config.queue_capacity = 16;
  // One fault-detected decode is enough to bench a worker; the cap keeps
  // the replacement cascade finite while guaranteeing >= 1 quarantine.
  config.quarantine_strike_threshold = 1;
  config.max_replacement_workers = 4;
  BatchEngine engine(chaotic_factory(code), config);

  ChaosRun run;
  run.slots.resize(frames.size());
  std::vector<std::atomic<int>> completions(frames.size());
  for (std::size_t f = 0; f < frames.size(); ++f) {
    const SubmitStatus s = engine.submit_task(
        f,
        [&, f](Decoder& decoder) {
          FaultInjector& injector = tls_injector();
          // Frame-keyed fault stream: which bits upset depends only on the
          // frame index, never on the worker or completion order.
          injector.reseed(retry_seed(kChaosSeed, f, 1));
          injector.set_enabled(frame_is_faulted(f));
          DecodeResult result = decoder.decode(frames[f]);
          injector.set_enabled(false);
          completions[f].fetch_add(1, std::memory_order_relaxed);
          // Task jobs own result delivery (the engine writes the slot only
          // for jobs it completed without running, e.g. expired ones).
          run.slots[f] = result;
          return result;
        },
        {}, &run.slots[f]);
    EXPECT_TRUE(submit_accepted(s)) << "frame " << f;
  }
  engine.drain();
  run.metrics = engine.metrics();
  run.completions.reserve(completions.size());
  for (const auto& c : completions) run.completions.push_back(c.load());
  return run;
}

TEST(ChaosEngine, FaultsQuarantineAndExactlyOnceCompletion) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto frames = make_frames(code, 4.0F);
  const ChaosRun run = run_chaos(code, frames, 2);

  // Exactly-once: every task ran once, every job completed, nothing was
  // expired, shed or double-counted while workers were being replaced.
  for (std::size_t f = 0; f < frames.size(); ++f)
    EXPECT_EQ(run.completions[f], 1) << "frame " << f;
  EXPECT_EQ(run.metrics.jobs_submitted, frames.size());
  EXPECT_EQ(run.metrics.jobs_completed, frames.size());
  EXPECT_EQ(run.metrics.jobs_expired, 0u);
  EXPECT_EQ(run.metrics.jobs_shed, 0u);

  // The chaos actually happened: >= 10% of frames took upsets, and the
  // injector never leaked into a clean frame.
  std::size_t corrupted = 0;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    if (frame_is_faulted(f)) {
      corrupted += run.slots[f].faults_injected > 0 ? 1u : 0u;
    } else {
      EXPECT_EQ(run.slots[f].faults_injected, 0u) << "frame " << f;
    }
  }
  EXPECT_GE(corrupted * 10, frames.size());  // >= 10% of the batch

  // Supervision: fault-detected strikes benched at least one worker and a
  // replacement kept the pool serving.
  EXPECT_GE(run.metrics.workers_quarantined, 1u);
  EXPECT_EQ(run.metrics.workers_spawned, run.metrics.workers_quarantined);
  std::size_t quarantined = 0;
  for (const auto& w : run.metrics.workers)
    quarantined += w.quarantined ? 1u : 0u;
  EXPECT_EQ(quarantined, run.metrics.workers_quarantined);
  // Graceful degradation held: no corrupted frame was emitted as converged
  // unless it really is a codeword (classify_exit rechecks parity), and at
  // least one fault was detected (that is what struck the workers).
  EXPECT_GE(run.metrics.status_total(DecodeStatus::kFaultDetected), 1u);
}

TEST(ChaosEngine, BatchBitIdenticalAcrossWorkerCounts) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto frames = make_frames(code, 4.0F);

  // Clean reference: same decoder configuration, injector never armed.
  std::vector<DecodeResult> clean;
  {
    DecoderOptions options;
    const auto decoder = make_decoder("layered-minsum-fixed", code, options);
    clean.reserve(frames.size());
    for (const auto& f : frames) clean.push_back(decoder->decode(f));
  }

  const ChaosRun base = run_chaos(code, frames, 1);
  for (unsigned workers : {2u, 8u}) {
    const ChaosRun run = run_chaos(code, frames, workers);
    for (std::size_t f = 0; f < frames.size(); ++f) {
      // Frame-keyed injection: even corrupted frames replay identically.
      EXPECT_EQ(run.slots[f].status, base.slots[f].status)
          << "frame " << f << " workers " << workers;
      EXPECT_EQ(run.slots[f].iterations, base.slots[f].iterations) << f;
      EXPECT_EQ(run.slots[f].faults_injected, base.slots[f].faults_injected)
          << f;
      for (std::size_t i = 0; i < code.n(); ++i)
        ASSERT_EQ(run.slots[f].hard_bits.get(i),
                  base.slots[f].hard_bits.get(i))
            << "frame " << f << " bit " << i << " workers " << workers;
    }
  }
  // Un-faulted frames are untouched by the chaos: bit-identical to the
  // clean reference decode.
  for (std::size_t f = 0; f < frames.size(); ++f) {
    if (frame_is_faulted(f)) continue;
    EXPECT_EQ(base.slots[f].status, clean[f].status) << f;
    EXPECT_EQ(base.slots[f].iterations, clean[f].iterations) << f;
    for (std::size_t i = 0; i < code.n(); ++i)
      ASSERT_EQ(base.slots[f].hard_bits.get(i), clean[f].hard_bits.get(i))
          << "frame " << f << " bit " << i;
  }
}

TEST(ChaosEngine, BlockWithExpiredJobResolvesLaneMatesUnderChaos) {
  // Block-granular exactly-once under the same chaos: frames ride the
  // batched SIMD decoder via submit_block, the per-worker injector stays
  // armed for the whole run (which legitimately forces the decoder's
  // per-frame fault-injector fallback — corruption order is scalar), and
  // one frame's deadline is already expired at submit. Every lane-mate of
  // the expired frame must still be finalized exactly once — including
  // while fault-detected strikes quarantine workers mid-batch and
  // replacement threads take over the remaining blocks.
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto frames = make_frames(code, 4.0F);

  // submit_block has no per-frame task hook to arm an injector, so each
  // worker's injector is enabled from construction (FaultInjector defaults
  // to enabled when rate > 0): every decoded frame runs under upsets. The
  // fault stream depends on per-worker decode order, so no bit-identity is
  // asserted here — only the exactly-once and supervision properties.
  const DecoderFactory factory = [&code] {
    thread_local FaultInjector injector{[] {
      FaultConfig fault_config;
      fault_config.rate = 0.02;
      fault_config.kind = FaultKind::kTransientFlip;
      fault_config.sites = kAllFaultSites;
      fault_config.seed = kChaosSeed;
      return fault_config;
    }()};
    DecoderOptions options;
    options.fault_injector = &injector;
    return make_decoder("layered-minsum-simd-batched", code, options);
  };
  BatchEngineConfig config;
  config.num_workers = 2;
  config.queue_capacity = 16;
  config.quarantine_strike_threshold = 1;
  config.max_replacement_workers = 4;
  BatchEngine engine(factory, config);
  constexpr std::size_t kExpired = 2;
  const std::size_t sentinel = 777777;

  std::vector<DecodeResult> slots(frames.size());
  for (auto& s : slots) s.iterations = sentinel;
  std::size_t submitted = 0;
  for (std::size_t base = 0; base < frames.size(); base += 10) {
    std::vector<BlockFrameJob> block;
    for (std::size_t f = base; f < std::min(base + 10, frames.size()); ++f) {
      BlockFrameJob job;
      job.frame_index = f;
      job.llr.assign(frames[f].begin(), frames[f].end());
      job.slot = &slots[f];
      if (f == kExpired)
        job.deadline = std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(5);
      block.push_back(std::move(job));
    }
    submitted += block.size();
    EXPECT_TRUE(submit_accepted(engine.submit_block(std::move(block))));
  }
  engine.drain();
  const EngineMetrics metrics = engine.metrics();

  // Exactly-once at block granularity: every slot was finalized (the
  // sentinel is gone everywhere), the expired frame consumed no decode
  // budget, and the books balance.
  ASSERT_EQ(submitted, frames.size());
  for (std::size_t f = 0; f < frames.size(); ++f)
    EXPECT_NE(slots[f].iterations, sentinel) << "frame " << f;
  EXPECT_EQ(slots[kExpired].status, DecodeStatus::kDeadlineExpired);
  EXPECT_EQ(slots[kExpired].iterations, 0u);
  EXPECT_EQ(metrics.jobs_submitted, frames.size());
  EXPECT_EQ(metrics.jobs_completed, frames.size());  // includes the expiry
  EXPECT_EQ(metrics.jobs_expired, 1u);
  EXPECT_EQ(metrics.jobs_shed, 0u);

  // The chaos actually happened and was visible, not silent: upsets landed,
  // every decoded frame reported the fault-injector fallback, fault
  // detections struck and benched at least one worker, and replacements
  // kept the pool serving to completion.
  std::size_t corrupted = 0;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    if (f == kExpired) continue;
    corrupted += slots[f].faults_injected > 0 ? 1u : 0u;
    EXPECT_EQ(slots[f].simd_fallback, SimdFallback::kFaultInjector)
        << "frame " << f;
  }
  EXPECT_GE(corrupted * 10, frames.size());
  EXPECT_GE(metrics.status_total(DecodeStatus::kFaultDetected), 1u);
  EXPECT_GE(metrics.workers_quarantined, 1u);
  EXPECT_EQ(metrics.workers_spawned, metrics.workers_quarantined);
}

}  // namespace
}  // namespace ldpc
