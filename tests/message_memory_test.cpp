// Message-memory sizing across formats: exact P/R bit capacities per
// format, the monotone fa4 > fa3 > fa2 R-memory shrink against the q8.2
// baseline, and consistency with what registered decoders actually report
// through message_format().
#include <gtest/gtest.h>

#include <string>

#include "codes/wimax.hpp"
#include "core/decoder_factory.hpp"
#include "power/message_memory.hpp"
#include "util/check.hpp"

namespace ldpc {
namespace {

TEST(MessageMemory, ExactCapacities) {
  const QCLdpcCode code = make_wimax_2304_half_rate();
  const long long n = static_cast<long long>(code.n());
  const long long edges = static_cast<long long>(
      code.base().nonzero_blocks() * static_cast<std::size_t>(code.z()));

  const MessageMemoryProfile q8 = message_memory_profile(code, "q8.2");
  EXPECT_EQ(q8.p_memory_bits, n * 8);
  EXPECT_EQ(q8.r_memory_bits, edges * 8);
  EXPECT_EQ(q8.total_bits, q8.p_memory_bits + q8.r_memory_bits);

  const MessageMemoryProfile fa4 = message_memory_profile(code, "fa4");
  EXPECT_EQ(fa4.p_bits, 8);
  EXPECT_EQ(fa4.r_bits, 4);
  EXPECT_EQ(fa4.p_memory_bits, n * 8);
  EXPECT_EQ(fa4.r_memory_bits, edges * 4);

  const MessageMemoryProfile fl = message_memory_profile(code, "float");
  EXPECT_EQ(fl.total_bits, n * 32 + edges * 32);
}

TEST(MessageMemory, FiniteAlphabetShrinksRMemoryMonotonically) {
  const QCLdpcCode code = make_wimax_2304_half_rate();
  const MessageMemoryProfile q8 = message_memory_profile(code, "q8.2");
  const MessageMemoryProfile fa4 = message_memory_profile(code, "fa4");
  const MessageMemoryProfile fa3 = message_memory_profile(code, "fa3");
  const MessageMemoryProfile fa2 = message_memory_profile(code, "fa2");
  EXPECT_LT(fa4.total_bits, q8.total_bits);
  EXPECT_LT(fa3.total_bits, fa4.total_bits);
  EXPECT_LT(fa2.total_bits, fa3.total_bits);
  // The reduction ratio must reflect the R-width ratio exactly: P stays
  // 8-bit, R shrinks 8 -> 4/3/2 bits.
  EXPECT_DOUBLE_EQ(fa4.reduction_vs_q8(code),
                   static_cast<double>(fa4.total_bits) /
                       static_cast<double>(q8.total_bits));
  EXPECT_LT(fa2.reduction_vs_q8(code), fa3.reduction_vs_q8(code));
  EXPECT_LT(fa4.reduction_vs_q8(code), 1.0);
  EXPECT_GT(fa2.reduction_vs_q8(code), 0.0);
}

TEST(MessageMemory, PricesEveryRegisteredDecoderFormat) {
  // Every format a registry decoder can report must be priceable — the
  // energy benches look profiles up by message_format() verbatim.
  const QCLdpcCode code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  for (const std::string& name : decoder_names()) {
    const auto dec = make_decoder(name, code, opt);
    const MessageMemoryProfile prof =
        message_memory_profile(code, dec->message_format());
    EXPECT_GT(prof.total_bits, 0) << name;
  }
}

TEST(MessageMemory, UnknownFormatThrows) {
  const QCLdpcCode code = make_wimax_code(WimaxRate::kRate1_2, 24);
  EXPECT_THROW(message_memory_profile(code, "q12.4"), Error);
}

}  // namespace
}  // namespace ldpc
