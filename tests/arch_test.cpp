// Cycle-accurate architecture tests: component models (SRAM, shifter,
// scoreboard, Q FIFO), the bit-exactness invariant against the algorithmic
// decoder, and the paper's timing claims (pipelined beats per-layer, ~50%
// core utilization without pipelining, stall accounting, fold scaling).
#include <gtest/gtest.h>

#include "arch/arch_sim.hpp"
#include "arch/barrel_shifter.hpp"
#include "arch/q_fifo.hpp"
#include "arch/scoreboard.hpp"
#include "arch/sram.hpp"
#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "codes/random_qc.hpp"
#include "codes/wifi.hpp"
#include "codes/wimax.hpp"
#include "util/rng.hpp"

namespace ldpc {
namespace {

// ------------------------------------------------------------ components ----

TEST(Sram, ReadWriteRoundTrip) {
  SramModel m("T", 4, 8);
  std::vector<std::int32_t> word(8);
  for (int i = 0; i < 8; ++i) word[static_cast<std::size_t>(i)] = i * 3 - 5;
  m.write(2, word);
  EXPECT_EQ(m.read(2), word);
  EXPECT_EQ(m.reads(), 1);
  EXPECT_EQ(m.writes(), 1);
}

TEST(Sram, PeekDoesNotCount) {
  SramModel m("T", 2, 4);
  m.peek(0);
  m.peek(1);
  EXPECT_EQ(m.reads(), 0);
}

TEST(Sram, CapacityBits) {
  SramModel p("P", 24, 96);
  EXPECT_EQ(p.capacity_bits(8), 24LL * 96 * 8);  // the paper's 18,432 b
  EXPECT_EQ(p.capacity_bits(8), 18432);
}

TEST(Sram, BoundsChecked) {
  SramModel m("T", 2, 4);
  EXPECT_THROW(m.read(2), Error);
  EXPECT_THROW(m.write(2, std::vector<std::int32_t>(4)), Error);
  EXPECT_THROW(m.write(0, std::vector<std::int32_t>(3)), Error);  // wrong lanes
  EXPECT_THROW(m.write_lane(0, 4, 1), Error);
}

TEST(Sram, FillAndCounterReset) {
  SramModel m("T", 2, 4);
  m.fill(7);
  EXPECT_EQ(m.peek(1)[3], 7);
  m.read(0);
  m.reset_counters();
  EXPECT_EQ(m.reads(), 0);
}

TEST(Shifter, RotateMatchesCirculantDefinition) {
  BarrelShifter sh(5);
  const std::vector<std::int32_t> in = {10, 11, 12, 13, 14};
  const auto out = sh.rotate(in, 2);
  // out[r] = in[(r + 2) % 5]
  EXPECT_EQ(out, (std::vector<std::int32_t>{12, 13, 14, 10, 11}));
}

TEST(Shifter, RotateBackIsInverse) {
  BarrelShifter sh(96);
  std::vector<std::int32_t> in(96);
  Xoshiro256 rng(3);
  for (auto& v : in) v = static_cast<std::int32_t>(rng.uniform_int(256)) - 128;
  for (std::uint32_t s : {0u, 1u, 37u, 95u})
    EXPECT_EQ(sh.rotate_back(sh.rotate(in, s), s), in) << s;
}

TEST(Shifter, ZeroShiftIsIdentity) {
  BarrelShifter sh(7);
  const std::vector<std::int32_t> in = {1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(sh.rotate(in, 0), in);
}

TEST(Shifter, CountsRotations) {
  BarrelShifter sh(4);
  const std::vector<std::int32_t> in = {1, 2, 3, 4};
  sh.rotate(in, 1);
  sh.rotate_back(in, 1);
  EXPECT_EQ(sh.rotations(), 2);
  sh.reset_counters();
  EXPECT_EQ(sh.rotations(), 0);
}

TEST(Scoreboard, PendingLifecycle) {
  Scoreboard sb(4);
  EXPECT_FALSE(sb.is_pending(1));
  sb.set(1);
  EXPECT_TRUE(sb.is_pending(1));
  sb.schedule_clear(1, 100);
  EXPECT_EQ(sb.earliest_read(1, 50), 101);   // must wait past the write
  EXPECT_EQ(sb.earliest_read(1, 200), 200);  // already landed
  sb.resolve(1);
  EXPECT_FALSE(sb.is_pending(1));
  EXPECT_EQ(sb.earliest_read(1, 50), 50);
}

TEST(Scoreboard, UnscheduledPendingReadIsDeadlock) {
  Scoreboard sb(4);
  sb.set(2);
  EXPECT_THROW(sb.earliest_read(2, 0), Error);
}

TEST(Scoreboard, ClearWithoutSetThrows) {
  Scoreboard sb(4);
  EXPECT_THROW(sb.schedule_clear(0, 10), Error);
}

TEST(Scoreboard, DoubleSetInvalidatesScheduledClear) {
  // Core 1 re-reads a column before the earlier write resolved (the next
  // layer touching the same block column): set() while already pending must
  // forget the stale land time, or core 1 would sync to the wrong write.
  Scoreboard sb(4);
  sb.set(1);
  sb.schedule_clear(1, 100);
  sb.set(1);
  EXPECT_TRUE(sb.is_pending(1));
  EXPECT_THROW(sb.earliest_read(1, 0), Error);  // unknown again -> deadlock
  sb.schedule_clear(1, 250);
  EXPECT_EQ(sb.earliest_read(1, 0), 251);  // only the new write counts
}

TEST(Scoreboard, AllPendingSaturation) {
  // Every block column pending at once — the worst case of §IV-B, where the
  // next layer reads the full support of the previous one. Each bit must
  // track its own land time and release independently.
  constexpr std::size_t kCols = 24;
  Scoreboard sb(kCols);
  for (std::size_t n = 0; n < kCols; ++n) {
    sb.set(n);
    sb.schedule_clear(n, static_cast<long long>(10 * n));
  }
  for (std::size_t n = 0; n < kCols; ++n) {
    EXPECT_TRUE(sb.is_pending(n));
    EXPECT_EQ(sb.earliest_read(n, 0), static_cast<long long>(10 * n) + 1);
  }
  for (std::size_t n = 0; n < kCols; n += 2) sb.resolve(n);
  for (std::size_t n = 0; n < kCols; ++n)
    EXPECT_EQ(sb.is_pending(n), n % 2 == 1) << n;
}

TEST(Scoreboard, OutOfRangeColumnThrows) {
  Scoreboard sb(4);
  EXPECT_THROW(sb.set(4), Error);
  EXPECT_THROW(sb.is_pending(5), Error);
  EXPECT_THROW(sb.earliest_read(4, 0), Error);
  EXPECT_THROW(sb.resolve(7), Error);
}

TEST(Scoreboard, WraparoundAcrossLayerBoundary) {
  // A bit set by the last layer of iteration k is consumed by the first
  // layer of iteration k+1: pending state survives the layer_seq wrap and
  // the stall is measured against the old iteration's land time.
  Scoreboard sb(4);
  sb.set(3);                    // last layer reads column 3
  sb.schedule_clear(3, 1000);   // its core-2 write lands at cycle 1000
  // ... iteration boundary: no reset() happens mid-decode ...
  EXPECT_TRUE(sb.is_pending(3));
  EXPECT_EQ(sb.earliest_read(3, 900), 1001);  // first layer of next iter
  sb.resolve(3);
  EXPECT_FALSE(sb.is_pending(3));
}

TEST(Scoreboard, ResetClearsEverything) {
  Scoreboard sb(3);
  sb.set(0);
  sb.set(2);
  sb.reset();
  EXPECT_FALSE(sb.is_pending(0));
  EXPECT_FALSE(sb.is_pending(2));
}

TEST(QFifoModel, FifoOrderPreserved) {
  QFifo f(3);
  f.push({1});
  f.push({2});
  f.push({3});
  EXPECT_TRUE(f.full());
  EXPECT_EQ(f.pop(), std::vector<std::int32_t>{1});
  EXPECT_EQ(f.pop(), std::vector<std::int32_t>{2});
  f.push({4});
  EXPECT_EQ(f.pop(), std::vector<std::int32_t>{3});
  EXPECT_EQ(f.pop(), std::vector<std::int32_t>{4});
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.pushes(), 4);
  EXPECT_EQ(f.pops(), 4);
}

TEST(QFifoModel, OverflowAndUnderflowThrow) {
  QFifo f(1);
  f.push({1});
  EXPECT_THROW(f.push({2}), Error);
  f.pop();
  EXPECT_THROW(f.pop(), Error);
}

// ------------------------------------------------------------ test frame ----

std::vector<std::int32_t> noisy_frame(const QCLdpcCode& code, float ebn0_db,
                                      std::uint64_t seed, FixedFormat fmt,
                                      BitVec* codeword_out = nullptr) {
  const RuEncoder enc(code);
  Xoshiro256 rng(seed);
  BitVec info(code.k());
  for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
  const BitVec word = enc.encode(info);
  if (codeword_out) *codeword_out = word;
  const float variance = awgn_noise_variance(ebn0_db, code.rate());
  AwgnChannel ch(variance, seed * 17 + 5);
  const auto llr =
      BpskModem::demodulate(ch.transmit(BpskModem::modulate(word)), variance);
  std::vector<std::int32_t> codes(llr.size());
  for (std::size_t i = 0; i < llr.size(); ++i) codes[i] = fmt.quantize(llr[i]);
  return codes;
}

// ------------------------------------------ bit-exactness (the invariant) ----

struct ExactnessCase {
  ArchKind arch;
  int parallelism;
  bool reorder;
};

class BitExactnessTest : public ::testing::TestWithParam<ExactnessCase> {};

TEST_P(BitExactnessTest, MatchesAlgorithmicDecoder) {
  const auto code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  DecoderOptions opt;
  opt.max_iterations = 6;
  LayeredMinSumFixedDecoder reference(code, opt, fmt);
  const PicoCompiler pico(fmt);
  const auto est = pico.compile(code, GetParam().arch,
                                HardwareTarget{400.0, GetParam().parallelism});
  ArchSimDecoder sim(code, est, opt, fmt, ArchSimConfig{GetParam().reorder});
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto frame = noisy_frame(code, 1.8F, seed, fmt);
    const auto want = reference.decode_quantized(frame);
    const auto got = sim.decode_quantized(frame);
    EXPECT_TRUE(got.decode.hard_bits == want.hard_bits) << "seed " << seed;
    EXPECT_EQ(got.decode.iterations, want.iterations) << "seed " << seed;
    EXPECT_EQ(got.decode.converged, want.converged) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ArchsAndParallelism, BitExactnessTest,
    ::testing::Values(ExactnessCase{ArchKind::kPerLayer, 96, false},
                      ExactnessCase{ArchKind::kPerLayer, 48, false},
                      ExactnessCase{ArchKind::kPerLayer, 24, false},
                      ExactnessCase{ArchKind::kTwoLayerPipelined, 96, false},
                      ExactnessCase{ArchKind::kTwoLayerPipelined, 48, false},
                      ExactnessCase{ArchKind::kTwoLayerPipelined, 96, true},
                      ExactnessCase{ArchKind::kTwoLayerPipelined, 24, true}),
    [](const auto& info) {
      return arch_name(info.param.arch).substr(0, 3) + "_p" +
             std::to_string(info.param.parallelism) +
             (info.param.reorder ? "_reord" : "");
    });

TEST(BitExactness, HoldsOnWifiCode) {
  const auto code = make_wifi_1944_half_rate();
  const FixedFormat fmt{8, 2};
  DecoderOptions opt;
  LayeredMinSumFixedDecoder reference(code, opt, fmt);
  const PicoCompiler pico(fmt);
  const auto est =
      pico.compile(code, ArchKind::kTwoLayerPipelined, HardwareTarget{400.0, 81});
  ArchSimDecoder sim(code, est, opt, fmt);
  const auto frame = noisy_frame(code, 2.0F, 3, fmt);
  EXPECT_TRUE(sim.decode_quantized(frame).decode.hard_bits ==
              reference.decode_quantized(frame).hard_bits);
}

TEST(BitExactness, HoldsOnRandomCodes) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    RandomQcConfig cfg;
    cfg.block_rows = 4;
    cfg.block_cols = 16;
    cfg.z = 12;
    cfg.info_row_degree = 5;
    cfg.seed = seed;
    const auto code = make_random_qc_code(cfg);
    const FixedFormat fmt{6, 1};
    DecoderOptions opt;
    LayeredMinSumFixedDecoder reference(code, opt, fmt);
    const PicoCompiler pico(fmt);
    const auto est = pico.compile(code, ArchKind::kTwoLayerPipelined,
                                  HardwareTarget{300.0, 12});
    ArchSimDecoder sim(code, est, opt, fmt);
    const auto frame = noisy_frame(code, 3.0F, seed + 10, fmt);
    EXPECT_TRUE(sim.decode_quantized(frame).decode.hard_bits ==
                reference.decode_quantized(frame).hard_bits)
        << "seed " << seed;
  }
}

// ----------------------------------------------------------- timing model ----

ArchDecodeResult run_frames(const QCLdpcCode& code, ArchKind arch, double mhz,
                            int parallelism, bool early_term, bool reorder,
                            std::size_t iterations = 10) {
  const FixedFormat fmt{8, 2};
  DecoderOptions opt;
  opt.max_iterations = iterations;
  opt.early_termination = early_term;
  const PicoCompiler pico(fmt);
  const auto est = pico.compile(code, arch, HardwareTarget{mhz, parallelism});
  ArchSimDecoder sim(code, est, opt, fmt, ArchSimConfig{reorder});
  const auto frame = noisy_frame(code, 2.0F, 42, fmt);
  return sim.decode_quantized(frame);
}

TEST(Timing, PipelinedFasterThanPerLayer) {
  const auto code = make_wimax_2304_half_rate();
  const auto per = run_frames(code, ArchKind::kPerLayer, 400.0, 96, false, false);
  const auto pipe =
      run_frames(code, ArchKind::kTwoLayerPipelined, 400.0, 96, false, false);
  EXPECT_LT(pipe.activity.cycles, per.activity.cycles);
  // Fig. 8a: pipelined saves roughly a third to a half.
  EXPECT_LT(static_cast<double>(pipe.activity.cycles),
            0.85 * static_cast<double>(per.activity.cycles));
}

TEST(Timing, PerLayerUtilizationNearHalf) {
  // Fig. 4: cores idle while the other stage runs -> ~50% utilization.
  const auto code = make_wimax_2304_half_rate();
  const auto per = run_frames(code, ArchKind::kPerLayer, 100.0, 96, false, false);
  EXPECT_GT(per.activity.core1_utilization(), 0.35);
  EXPECT_LT(per.activity.core1_utilization(), 0.65);
}

TEST(Timing, PipelinedUtilizationHigher) {
  const auto code = make_wimax_2304_half_rate();
  const auto per = run_frames(code, ArchKind::kPerLayer, 400.0, 96, false, false);
  const auto pipe =
      run_frames(code, ArchKind::kTwoLayerPipelined, 400.0, 96, false, false);
  EXPECT_GT(pipe.activity.core1_utilization(),
            per.activity.core1_utilization());
}

TEST(Timing, PerLayerHasNoStalls) {
  const auto code = make_wimax_2304_half_rate();
  const auto per = run_frames(code, ArchKind::kPerLayer, 400.0, 96, false, false);
  EXPECT_EQ(per.activity.core1_stall_cycles, 0);
}

TEST(Timing, ReorderingReducesPipelineStalls) {
  const auto code = make_wimax_2304_half_rate();
  const auto plain =
      run_frames(code, ArchKind::kTwoLayerPipelined, 400.0, 96, false, false);
  const auto reordered =
      run_frames(code, ArchKind::kTwoLayerPipelined, 400.0, 96, false, true);
  EXPECT_LT(reordered.activity.core1_stall_cycles,
            plain.activity.core1_stall_cycles);
  EXPECT_LE(reordered.activity.cycles, plain.activity.cycles);
}

TEST(Timing, HalvingParallelismRoughlyDoublesCycles) {
  const auto code = make_wimax_2304_half_rate();
  const auto p96 = run_frames(code, ArchKind::kPerLayer, 100.0, 96, false, false);
  const auto p48 = run_frames(code, ArchKind::kPerLayer, 100.0, 48, false, false);
  const auto p24 = run_frames(code, ArchKind::kPerLayer, 100.0, 24, false, false);
  const double r48 = static_cast<double>(p48.activity.cycles) /
                     static_cast<double>(p96.activity.cycles);
  const double r24 = static_cast<double>(p24.activity.cycles) /
                     static_cast<double>(p96.activity.cycles);
  EXPECT_NEAR(r48, 2.0, 0.2);
  EXPECT_NEAR(r24, 4.0, 0.4);
}

TEST(Timing, CyclesPerIterationGrowWithFrequency) {
  // Fig. 8a: deeper pipelines at higher target clocks cost cycles.
  const auto code = make_wimax_2304_half_rate();
  long long prev = 0;
  for (double f : {100.0, 200.0, 400.0}) {
    const auto r = run_frames(code, ArchKind::kPerLayer, f, 96, false, false);
    EXPECT_GE(r.activity.cycles, prev) << f;
    prev = r.activity.cycles;
  }
}

TEST(Timing, EarlyTerminationShortensDecode) {
  const auto code = make_wimax_2304_half_rate();
  const auto et =
      run_frames(code, ArchKind::kTwoLayerPipelined, 400.0, 96, true, false);
  const auto no_et =
      run_frames(code, ArchKind::kTwoLayerPipelined, 400.0, 96, false, false);
  EXPECT_LT(et.activity.iterations, no_et.activity.iterations);
  EXPECT_LT(et.activity.cycles, no_et.activity.cycles);
  EXPECT_TRUE(et.decode.converged);
}

TEST(Timing, FirstIterationCyclesStable) {
  const auto code = make_wimax_2304_half_rate();
  const auto r = run_frames(code, ArchKind::kPerLayer, 400.0, 96, false, false);
  // 10 identical iterations: total = 10x the first (per-layer is periodic).
  EXPECT_EQ(r.activity.cycles, 10 * r.first_iteration_cycles);
}

TEST(Timing, PerLayerCyclesMatchAnalyticFormula) {
  // Per-layer, fold 1: cycles/iter = sum_l (2 dc_l) + L*(D1 - 1 + D2 - 1).
  const auto code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  const auto est =
      pico.compile(code, ArchKind::kPerLayer, HardwareTarget{400.0, 96});
  const auto r = run_frames(code, ArchKind::kPerLayer, 400.0, 96, false, false);
  long long expected = 0;
  for (const auto& layer : code.layers())
    expected += 2 * static_cast<long long>(layer.size());
  expected += static_cast<long long>(code.num_layers()) *
              (est.core1_latency - 1 + est.core2_latency - 1);
  EXPECT_EQ(r.first_iteration_cycles, expected);
}

// -------------------------------------------------------------- activity ----

TEST(Activity, MemoryTrafficMatchesCodeStructure) {
  const auto code = make_wimax_2304_half_rate();
  const auto r = run_frames(code, ArchKind::kPerLayer, 100.0, 96, false, false);
  const long long blocks_per_iter =
      static_cast<long long>(code.base().nonzero_blocks());
  EXPECT_EQ(r.activity.p_reads, 10 * blocks_per_iter);
  EXPECT_EQ(r.activity.p_writes, 10 * blocks_per_iter);
  EXPECT_EQ(r.activity.r_reads, 10 * blocks_per_iter);
  EXPECT_EQ(r.activity.r_writes, 10 * blocks_per_iter);
  EXPECT_EQ(r.activity.q_fifo_pushes, 10 * blocks_per_iter);
  EXPECT_EQ(r.activity.q_fifo_pops, 10 * blocks_per_iter);
  EXPECT_EQ(r.activity.shifter_rotates, 2 * 10 * blocks_per_iter);
  EXPECT_EQ(r.activity.min_array_updates, 10 * blocks_per_iter * 96);
  EXPECT_EQ(r.activity.layer_snapshots, 10 * 12);
}

TEST(Activity, FoldMultipliesIssueBeats) {
  const auto code = make_wimax_2304_half_rate();
  const auto p96 = run_frames(code, ArchKind::kPerLayer, 100.0, 96, false, false);
  const auto p24 = run_frames(code, ArchKind::kPerLayer, 100.0, 24, false, false);
  EXPECT_EQ(p24.activity.core1_issue_beats, 4 * p96.activity.core1_issue_beats);
}

TEST(Activity, AddAccumulates) {
  ActivityCounters a, b;
  a.cycles = 10;
  a.p_reads = 3;
  b.cycles = 5;
  b.p_reads = 4;
  b.core1_stall_cycles = 2;
  a.add(b);
  EXPECT_EQ(a.cycles, 15);
  EXPECT_EQ(a.p_reads, 7);
  EXPECT_EQ(a.core1_stall_cycles, 2);
}

TEST(ArchSim, MemoryBitsMatchPaper) {
  const auto code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  DecoderOptions opt;
  const PicoCompiler pico(fmt);
  const auto est =
      pico.compile(code, ArchKind::kTwoLayerPipelined, HardwareTarget{400.0, 96});
  ArchSimDecoder sim(code, est, opt, fmt);
  EXPECT_EQ(sim.p_memory_bits(), 24 * 768);        // 18,432 bits
  EXPECT_EQ(sim.r_memory_bits(), 76 * 768);        // rate-1/2 slots
}

TEST(ArchSim, DecoderInterfaceWorks) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const FixedFormat fmt{8, 2};
  DecoderOptions opt;
  const PicoCompiler pico(fmt);
  const auto est =
      pico.compile(code, ArchKind::kPerLayer, HardwareTarget{200.0, 24});
  ArchSimDecoder sim(code, est, opt, fmt);
  EXPECT_EQ(sim.n(), code.n());
  EXPECT_NE(sim.name().find("per-layer"), std::string::npos);
  BitVec word;
  const auto frame = noisy_frame(code, 6.0F, 9, fmt, &word);
  std::vector<float> llr(frame.size());
  for (std::size_t i = 0; i < frame.size(); ++i)
    llr[i] = fmt.dequantize(frame[i]);
  const auto result = sim.decode(llr);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.hard_bits == word);
}

TEST(ArchSim, EtCheckCyclesAddPerIterationBarrier) {
  const auto code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  const auto est =
      pico.compile(code, ArchKind::kPerLayer, HardwareTarget{400.0, 96});
  DecoderOptions opt;
  opt.max_iterations = 10;
  opt.early_termination = true;
  ArchSimConfig free_check;
  ArchSimConfig costly_check;
  costly_check.et_check_cycles = 12;
  ArchSimDecoder sim_free(code, est, opt, fmt, free_check);
  ArchSimDecoder sim_costly(code, est, opt, fmt, costly_check);
  const auto frame = noisy_frame(code, 2.0F, 7, fmt);
  const auto a = sim_free.decode_quantized(frame);
  const auto b = sim_costly.decode_quantized(frame);
  // Same decode, same iterations; 12 extra cycles per completed iteration.
  EXPECT_TRUE(a.decode.hard_bits == b.decode.hard_bits);
  EXPECT_EQ(a.decode.iterations, b.decode.iterations);
  EXPECT_EQ(b.activity.cycles - a.activity.cycles,
            12 * static_cast<long long>(a.decode.iterations));
}

TEST(ArchSim, EtCheckCostIgnoredWithoutEarlyTermination) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  const auto est =
      pico.compile(code, ArchKind::kPerLayer, HardwareTarget{200.0, 24});
  DecoderOptions opt;
  opt.max_iterations = 4;
  opt.early_termination = false;
  ArchSimConfig costly;
  costly.et_check_cycles = 50;
  ArchSimDecoder plain(code, est, opt, fmt);
  ArchSimDecoder with_cost(code, est, opt, fmt, costly);
  const auto frame = noisy_frame(code, 3.0F, 8, fmt);
  EXPECT_EQ(plain.decode_quantized(frame).activity.cycles,
            with_cost.decode_quantized(frame).activity.cycles);
}

TEST(ArchSim, MismatchedParallelismRejected) {
  const auto code = make_wimax_2304_half_rate();
  const PicoCompiler pico;
  auto est = pico.compile(code, ArchKind::kPerLayer, HardwareTarget{200.0, 96});
  est.parallelism = 40;  // tampered: does not divide z
  DecoderOptions opt;
  EXPECT_THROW(ArchSimDecoder(code, est, opt), Error);
}

}  // namespace
}  // namespace ldpc
