// End-to-end tests for the fault-tolerant decode service: real sockets on a
// loopback server, hostile clients, per-tenant admission, deadline
// propagation, and the drain lifecycle. The drain test is the PR's
// exactly-once contract: every accepted request resolves exactly once — a
// decode response, a typed refusal, or kDeadlineExpired — never silence.
//
// Runs in the ThreadSanitizer stage of scripts/check.sh: the event loop /
// worker / shutdown handshakes are the code under test.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "codes/encoder.hpp"
#include "codes/registry.hpp"
#include "codes/wimax.hpp"
#include "runtime/batch_engine.hpp"
#include "service/client.hpp"
#include "service/service.hpp"

namespace ldpc::service {
namespace {

using namespace std::chrono_literals;

constexpr std::uint8_t kWimaxStd =
    static_cast<std::uint8_t>(CodeStandard::kWimax);
constexpr std::uint8_t kRegistryStd =
    static_cast<std::uint8_t>(CodeStandard::kRegistry);
/// Registry entry 1: hamsternz-demo-32, n = 32 — decodes in microseconds,
/// ideal for load tests.
const CodecRef kTinyCodec{kRegistryStd, 1, 1};

/// Noiseless LLRs for the all-zero codeword of an n-bit code.
std::vector<float> zero_codeword_llrs(std::size_t n) {
  return std::vector<float>(n, 4.0F);
}

DecodeRequest make_request(std::uint64_t id, std::uint32_t tenant,
                           const CodecRef& codec, std::vector<float> llr,
                           std::uint32_t deadline_us = 0) {
  DecodeRequest request;
  request.request_id = id;
  request.tenant_id = tenant;
  request.codec = codec;
  request.deadline_us = deadline_us;
  request.llr = std::move(llr);
  return request;
}

ServiceConfig base_config(unsigned workers = 2) {
  ServiceConfig config;
  config.engine.num_workers = workers;
  config.engine.queue_capacity = 256;
  return config;
}

// ---------------------------------------------------------------------------
// Engine snapshot (the tear-free metrics satellite).

TEST(EngineSnapshot, ConsistentUnderConcurrentLoad) {
  BatchEngineConfig config;
  config.num_workers = 4;
  config.queue_capacity = 64;
  const QCLdpcCode code = make_wimax_code(all_wimax_rates()[0], 24);
  BatchEngine engine([&] { return make_decoder("layered-minsum-fixed", code,
                                               DecoderOptions{}); },
                     config);

  std::atomic<bool> stop{false};
  std::thread poller([&] {
    // Hammer snapshot() while jobs complete; every snapshot must be
    // internally consistent — completed <= submitted and the latency
    // sample count never exceeds the jobs that could have produced one.
    while (!stop.load()) {
      const EngineMetrics m = engine.snapshot();
      ASSERT_LE(m.jobs_completed, m.jobs_submitted);
      ASSERT_LE(m.latency.samples, m.jobs_completed);
      ASSERT_LE(m.queue_max_occupancy, m.queue_capacity);
      if (m.latency.samples > 0) {
        ASSERT_LE(m.latency.p50_us, m.latency.p95_us);
        ASSERT_LE(m.latency.p95_us, m.latency.p99_us);
        ASSERT_LE(m.latency.p99_us, m.latency.max_us);
      }
    }
  });

  const std::vector<float> llr = zero_codeword_llrs(code.n());
  std::vector<DecodeResult> results(400);
  for (std::size_t i = 0; i < results.size(); ++i)
    ASSERT_TRUE(submit_accepted(engine.submit(i, llr, &results[i])));
  engine.drain();
  stop.store(true);
  poller.join();

  const EngineMetrics m = engine.snapshot();
  EXPECT_EQ(m.jobs_completed, 400U);
  EXPECT_EQ(m.latency.samples, 400U);
}

TEST(EngineSnapshot, LatencyReservoirCapBoundsMemory) {
  BatchEngineConfig config;
  config.num_workers = 2;
  config.latency_sample_cap = 16;
  const QCLdpcCode& code = external_code("hamsternz-demo-32");
  BatchEngine engine([&] { return make_decoder("layered-minsum-fixed", code,
                                               DecoderOptions{}); },
                     config);
  const std::vector<float> llr = zero_codeword_llrs(code.n());
  std::vector<DecodeResult> results(300);
  for (std::size_t i = 0; i < results.size(); ++i)
    ASSERT_TRUE(submit_accepted(engine.submit(i, llr, &results[i])));
  engine.drain();
  const EngineMetrics m = engine.snapshot();
  EXPECT_EQ(m.jobs_completed, 300U);
  // The reservoir holds exactly the cap; the summary stays a valid
  // order-statistics estimate over it.
  EXPECT_EQ(m.latency.samples, 16U);
  EXPECT_GT(m.latency.max_us, 0.0);
  EXPECT_LE(m.latency.p50_us, m.latency.max_us);
}

// ---------------------------------------------------------------------------
// Basic request/response.

TEST(ServiceTest, PingStatsAndDecodeRoundTrip) {
  DecodeService service(base_config());
  service.start();
  BlockingClient client;
  client.connect("127.0.0.1", service.port());

  EXPECT_EQ(client.ping(0xC0FFEE, 2000ms), 0xC0FFEEULL);
  const auto stats_json = client.stats(2000ms);
  ASSERT_TRUE(stats_json.has_value());
  EXPECT_NE(stats_json->find("\"tenants\""), std::string::npos);

  // A real codeword through a real 802.16e code, bit-for-bit.
  const QCLdpcCode code = make_wimax_code(all_wimax_rates()[0], 24);
  const DenseEncoder encoder(code);
  BitVec info(code.k());
  for (std::size_t i = 0; i < info.size(); i += 2) info.set(i, true);
  const BitVec codeword = encoder.encode(info);
  std::vector<float> llr(code.n());
  for (std::size_t i = 0; i < llr.size(); ++i)
    llr[i] = codeword.get(i) ? -4.0F : 4.0F;

  const CodecRef wimax{kWimaxStd, 0, 24};
  const auto outcome =
      client.decode(make_request(1, 0, wimax, llr), 5000ms);
  ASSERT_TRUE(outcome.has_value());
  ASSERT_FALSE(outcome->is_error) << to_string(outcome->error.code);
  EXPECT_EQ(outcome->response.status,
            static_cast<std::uint8_t>(DecodeStatus::kConverged));
  ASSERT_EQ(outcome->response.bit_count, code.n());
  const BitVec bits =
      unpack_bits(outcome->response.packed_bits, outcome->response.bit_count);
  for (std::size_t i = 0; i < code.n(); ++i)
    ASSERT_EQ(bits.get(i), codeword.get(i)) << "bit " << i;

  const ShutdownReport report = service.shutdown_after(2s);
  EXPECT_TRUE(report.drained_clean);
}

TEST(ServiceTest, TypedErrorsKeepTheConnectionUsable) {
  DecodeService service(base_config());
  service.start();
  BlockingClient client;
  client.connect("127.0.0.1", service.port());

  // Unknown codec.
  auto outcome = client.decode(
      make_request(1, 0, CodecRef{9, 9, 999}, zero_codeword_llrs(8)), 2000ms);
  ASSERT_TRUE(outcome.has_value());
  ASSERT_TRUE(outcome->is_error);
  EXPECT_EQ(outcome->error.code, WireErrorCode::kUnknownCodec);

  // Right codec, wrong LLR count.
  outcome = client.decode(
      make_request(2, 0, kTinyCodec, zero_codeword_llrs(31)), 2000ms);
  ASSERT_TRUE(outcome.has_value());
  ASSERT_TRUE(outcome->is_error);
  EXPECT_EQ(outcome->error.code, WireErrorCode::kLlrCountMismatch);

  // A well-framed frame whose type the server does not accept.
  DecodeResponse bogus;
  bogus.request_id = 3;
  ASSERT_TRUE(client.send_raw(encode_decode_response(bogus)));
  auto frame = client.read_frame(2000ms);
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->type, FrameType::kError);
  ErrorResponse error;
  ASSERT_EQ(parse_error_response(frame->body, &error), WireErrorCode::kNone);
  EXPECT_EQ(error.code, WireErrorCode::kBadType);

  // A truncated body inside a valid frame.
  std::vector<std::uint8_t> truncated = {0, 0, 0, 0, 'L', 'D', 1,
                                         static_cast<std::uint8_t>(
                                             FrameType::kDecodeRequest),
                                         1, 2, 3};
  const std::uint32_t payload_len =
      static_cast<std::uint32_t>(truncated.size() - 4);
  std::memcpy(truncated.data(), &payload_len, sizeof(payload_len));
  ASSERT_TRUE(client.send_raw(truncated));
  frame = client.read_frame(2000ms);
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->type, FrameType::kError);
  ASSERT_EQ(parse_error_response(frame->body, &error), WireErrorCode::kNone);
  EXPECT_EQ(error.code, WireErrorCode::kTruncatedBody);

  // After all that abuse the connection still decodes.
  outcome = client.decode(
      make_request(4, 0, kTinyCodec, zero_codeword_llrs(32)), 5000ms);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->is_error);

  const ServiceStats stats = service.stats();
  EXPECT_GE(stats.malformed_frames, 2U);
  EXPECT_EQ(stats.connections_fatal_framing, 0U);
  service.shutdown_after(2s);
}

TEST(ServiceTest, FatalFramingGetsOneGoodbyeThenClose) {
  DecodeService service(base_config());
  service.start();
  BlockingClient client;
  client.connect("127.0.0.1", service.port());

  // Valid length prefix, garbage magic: unrecoverable.
  std::vector<std::uint8_t> garbage = {16, 0, 0, 0, 'X', 'X', 1, 1,
                                       0,  0, 0, 0, 0,   0,  0, 0,
                                       0,  0, 0, 0};
  ASSERT_TRUE(client.send_raw(garbage));
  const auto frame = client.read_frame(2000ms);
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->type, FrameType::kError);
  ErrorResponse error;
  ASSERT_EQ(parse_error_response(frame->body, &error), WireErrorCode::kNone);
  EXPECT_EQ(error.code, WireErrorCode::kBadMagic);
  // Then EOF — the server cannot resynchronize the stream.
  EXPECT_FALSE(client.read_frame(2000ms).has_value());

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.connections_fatal_framing, 1U);
  service.shutdown_after(2s);
}

TEST(ServiceTest, MidRequestDisconnectsDoNotWedgeTheServer) {
  DecodeService service(base_config());
  service.start();

  {
    // Half a frame, then gone.
    BlockingClient client;
    client.connect("127.0.0.1", service.port());
    const auto bytes = encode_decode_request(
        make_request(1, 0, kTinyCodec, zero_codeword_llrs(32)));
    client.send_raw(std::span<const std::uint8_t>(bytes.data(),
                                                  bytes.size() / 2));
  }
  {
    // A full request, disconnect before the response.
    BlockingClient client;
    client.connect("127.0.0.1", service.port());
    client.send_raw(encode_decode_request(
        make_request(2, 0, kTinyCodec, zero_codeword_llrs(32))));
  }

  // The server keeps serving.
  BlockingClient client;
  client.connect("127.0.0.1", service.port());
  const auto outcome = client.decode(
      make_request(3, 0, kTinyCodec, zero_codeword_llrs(32)), 5000ms);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->is_error);

  const ShutdownReport report = service.shutdown_after(2s);
  EXPECT_TRUE(report.drained_clean);
  const ServiceStats stats = service.stats();
  // Every job the dead clients got in resolved anyway (exactly-once), the
  // responses just had nowhere to go.
  EXPECT_EQ(stats.jobs_completed + stats.jobs_deadline_expired >=
                stats.jobs_admitted,
            true);
}

// ---------------------------------------------------------------------------
// Admission control.

TEST(ServiceTest, RateLimitRefusesTyped) {
  ServiceConfig config = base_config();
  TenantConfig limited;
  limited.rate_per_sec = 0.001;  // effectively no refill during the test
  limited.burst = 2.0;
  config.tenants[5] = limited;
  DecodeService service(config);
  service.start();
  BlockingClient client;
  client.connect("127.0.0.1", service.port());

  for (std::uint64_t id = 1; id <= 2; ++id) {
    const auto outcome = client.decode(
        make_request(id, 5, kTinyCodec, zero_codeword_llrs(32)), 5000ms);
    ASSERT_TRUE(outcome.has_value());
    EXPECT_FALSE(outcome->is_error) << "request " << id;
  }
  const auto refused = client.decode(
      make_request(3, 5, kTinyCodec, zero_codeword_llrs(32)), 5000ms);
  ASSERT_TRUE(refused.has_value());
  ASSERT_TRUE(refused->is_error);
  EXPECT_EQ(refused->error.code, WireErrorCode::kRateLimited);

  // Other tenants are untouched by tenant 5's bucket.
  const auto other = client.decode(
      make_request(4, 6, kTinyCodec, zero_codeword_llrs(32)), 5000ms);
  ASSERT_TRUE(other.has_value());
  EXPECT_FALSE(other->is_error);
  service.shutdown_after(2s);
}

TEST(ServiceTest, QuotaPoliciesRejectParkAndShed) {
  ServiceConfig config = base_config();
  TenantConfig reject;  // kRejectNewest with zero capacity: always refuse
  reject.max_in_flight = 0;
  reject.policy = OverloadPolicy::kRejectNewest;
  config.tenants[1] = reject;
  TenantConfig park;  // kBlock with zero capacity: park until deadline
  park.max_in_flight = 0;
  park.policy = OverloadPolicy::kBlock;
  config.tenants[2] = park;
  TenantConfig shed;  // kShedOldest, wait line of 1: newest evicts oldest
  shed.max_in_flight = 0;
  shed.max_parked = 1;
  shed.policy = OverloadPolicy::kShedOldest;
  config.tenants[3] = shed;
  DecodeService service(config);
  service.start();
  BlockingClient client;
  client.connect("127.0.0.1", service.port());

  // kRejectNewest: immediate typed refusal.
  auto outcome = client.decode(
      make_request(1, 1, kTinyCodec, zero_codeword_llrs(32)), 5000ms);
  ASSERT_TRUE(outcome.has_value());
  ASSERT_TRUE(outcome->is_error);
  EXPECT_EQ(outcome->error.code, WireErrorCode::kQuotaExceeded);

  // kBlock: parks, then resolves kDeadlineExpired when its deadline passes
  // (deadline propagation reaches parked work too).
  outcome = client.decode(
      make_request(2, 2, kTinyCodec, zero_codeword_llrs(32),
                   /*deadline_us=*/60000),
      5000ms);
  ASSERT_TRUE(outcome.has_value());
  ASSERT_FALSE(outcome->is_error);
  EXPECT_EQ(outcome->response.status,
            static_cast<std::uint8_t>(DecodeStatus::kDeadlineExpired));

  // kShedOldest: the second request evicts the first (typed kShedOverload),
  // and only tenant 3's line is touched.
  ASSERT_TRUE(client.send_raw(encode_decode_request(
      make_request(3, 3, kTinyCodec, zero_codeword_llrs(32), 500000))));
  ASSERT_TRUE(client.send_raw(encode_decode_request(
      make_request(4, 3, kTinyCodec, zero_codeword_llrs(32), 500000))));
  const auto frame = client.read_frame(5000ms);
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->type, FrameType::kError);
  ErrorResponse error;
  ASSERT_EQ(parse_error_response(frame->body, &error), WireErrorCode::kNone);
  EXPECT_EQ(error.request_id, 3U);
  EXPECT_EQ(error.code, WireErrorCode::kShedOverload);

  const ServiceStats stats = service.stats();
  EXPECT_GE(stats.jobs_shed, 1U);
  EXPECT_GE(stats.jobs_quota_rejected, 1U);
  service.shutdown_after(2s);
}

TEST(ServiceTest, DeadlineStormResolvesEveryRequestTyped) {
  DecodeService service(base_config());
  service.start();
  BlockingClient client;
  client.connect("127.0.0.1", service.port());

  // A storm of 1 us deadlines: each request must resolve with *either* a
  // typed refusal at the door (kDeadlineUnmeetable) or a kDeadlineExpired
  // response — whichever side of the admission instant it lands on.
  constexpr int kStorm = 50;
  for (std::uint64_t id = 1; id <= kStorm; ++id)
    ASSERT_TRUE(client.send_raw(encode_decode_request(
        make_request(id, 0, kTinyCodec, zero_codeword_llrs(32), 1))));
  std::map<std::uint64_t, int> resolutions;
  for (int seen = 0; seen < kStorm; ++seen) {
    const auto frame = client.read_frame(5000ms);
    ASSERT_TRUE(frame.has_value()) << "request starved after " << seen;
    if (frame->type == FrameType::kError) {
      ErrorResponse error;
      ASSERT_EQ(parse_error_response(frame->body, &error),
                WireErrorCode::kNone);
      // Refused at the door — or, when the storm outruns the tenant's wait
      // line, refused for quota. Both are typed; silence is the bug.
      EXPECT_TRUE(error.code == WireErrorCode::kDeadlineUnmeetable ||
                  error.code == WireErrorCode::kQuotaExceeded)
          << to_string(error.code);
      ++resolutions[error.request_id];
    } else {
      ASSERT_EQ(frame->type, FrameType::kDecodeResponse);
      DecodeResponse response;
      ASSERT_EQ(parse_decode_response(frame->body, &response),
                WireErrorCode::kNone);
      ++resolutions[response.request_id];
    }
  }
  EXPECT_EQ(resolutions.size(), static_cast<std::size_t>(kStorm));
  for (const auto& [id, count] : resolutions)
    EXPECT_EQ(count, 1) << "request " << id << " resolved " << count
                        << " times";
  service.shutdown_after(2s);
}

TEST(ServiceTest, SlowClientIsEvictedNotBuffered) {
  ServiceConfig config = base_config();
  config.max_write_buffer = 2048;  // tiny: evict fast
  config.send_buffer_bytes = 4096;
  DecodeService service(config);
  service.start();
  BlockingClient client;
  client.connect("127.0.0.1", service.port());

  // Pings are cheap to send and make the server produce pongs the client
  // never reads; once kernel buffers and the 2 KiB cap fill, eviction.
  const auto ping_bytes = encode_ping(1);
  for (int batch = 0; batch < 100; ++batch) {
    bool dead = false;
    for (int i = 0; i < 1000 && !dead; ++i)
      dead = !client.send_raw(ping_bytes);
    if (dead || service.stats().connections_evicted_slow > 0) break;
  }
  // Depending on kernel buffering the send side may keep succeeding for a
  // while; the authoritative signal is the server's counter.
  for (int i = 0; i < 100; ++i) {
    if (service.stats().connections_evicted_slow > 0) break;
    std::this_thread::sleep_for(50ms);
  }
  EXPECT_GE(service.stats().connections_evicted_slow, 1U);
  service.shutdown_after(2s);
}

// ---------------------------------------------------------------------------
// Drain semantics: the exactly-once satellite.

TEST(ServiceTest, DrainUnderLoadResolvesEveryAcceptedJobExactlyOnce) {
  ServiceConfig config = base_config(/*workers=*/3);
  DecodeService service(config);
  service.start();
  const std::uint16_t port = service.port();

  constexpr int kClients = 4;
  constexpr int kPerClient = 120;
  std::atomic<int> resolved_total{0};
  std::atomic<int> duplicate_resolutions{0};
  std::atomic<int> silent_requests{0};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      BlockingClient client;
      client.connect("127.0.0.1", port);
      // Pipeline everything, mixing deadline-carrying and open-ended work
      // across two tenants.
      for (int i = 0; i < kPerClient; ++i) {
        const std::uint64_t id =
            static_cast<std::uint64_t>(c) * 1000 + 1 + i;
        const std::uint32_t deadline_us = (i % 3 == 0) ? 30000 : 0;
        client.send_raw(encode_decode_request(make_request(
            id, static_cast<std::uint32_t>(c % 2), kTinyCodec,
            zero_codeword_llrs(32), deadline_us)));
      }
      // Read until the server closes the drained connection.
      std::map<std::uint64_t, int> seen;
      for (;;) {
        const auto frame = client.read_frame(10000ms);
        if (!frame) break;  // EOF after drain (or timeout = test failure)
        std::uint64_t id = 0;
        if (frame->type == FrameType::kDecodeResponse) {
          DecodeResponse response;
          if (parse_decode_response(frame->body, &response) !=
              WireErrorCode::kNone)
            continue;
          id = response.request_id;
        } else if (frame->type == FrameType::kError) {
          ErrorResponse error;
          if (parse_error_response(frame->body, &error) !=
              WireErrorCode::kNone)
            continue;
          id = error.request_id;
        } else {
          continue;
        }
        if (++seen[id] > 1) duplicate_resolutions.fetch_add(1);
      }
      int resolved = 0;
      for (int i = 0; i < kPerClient; ++i) {
        const std::uint64_t id =
            static_cast<std::uint64_t>(c) * 1000 + 1 + i;
        const auto it = seen.find(id);
        if (it == seen.end())
          silent_requests.fetch_add(1);
        else
          resolved += it->second;
      }
      resolved_total.fetch_add(resolved);
    });
  }

  // Wait for every request to reach the server (a request still in a kernel
  // buffer when the drain finishes was never *accepted*, so exactly-once
  // would not apply to it), then pull the plug with work in flight.
  for (int i = 0; i < 400; ++i) {
    if (service.stats().requests_received >=
        static_cast<std::size_t>(kClients * kPerClient))
      break;
    std::this_thread::sleep_for(25ms);
  }
  const ShutdownReport report = service.shutdown_after(5s);
  for (std::thread& t : clients) t.join();

  // The drain contract: nothing resolved twice, nothing starved. Requests
  // refused while draining still count — a typed kDraining error *is* a
  // resolution.
  EXPECT_EQ(duplicate_resolutions.load(), 0);
  EXPECT_EQ(silent_requests.load(), 0);
  EXPECT_EQ(resolved_total.load(), kClients * kPerClient);
  EXPECT_EQ(report.stragglers, 0U);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests_received,
            static_cast<std::size_t>(kClients * kPerClient));
  EXPECT_EQ(stats.responses_sent + stats.errors_sent,
            static_cast<std::size_t>(kClients * kPerClient));
}

TEST(ServiceTest, ShutdownIsIdempotentAndBounded) {
  DecodeService service(base_config());
  service.start();
  const auto t0 = std::chrono::steady_clock::now();
  const ShutdownReport first = service.shutdown_after(500ms);
  const ShutdownReport second = service.shutdown_after(500ms);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_TRUE(first.drained_clean);
  EXPECT_EQ(first.drained_clean, second.drained_clean);
  // Bounded: no load, so shutdown must be far quicker than deadline+grace.
  EXPECT_LT(elapsed, 5s);
  // And the port is released: a new service can bind afresh.
  DecodeService again(base_config());
  again.start();
  EXPECT_GT(again.port(), 0);
  again.shutdown_after(500ms);
}

TEST(ServiceTest, RefusesNewWorkWhileDraining) {
  ServiceConfig config = base_config();
  TenantConfig park;  // parked forever: guarantees the drain deadline fires
  park.max_in_flight = 0;
  park.policy = OverloadPolicy::kBlock;
  config.tenants[9] = park;
  DecodeService service(config);
  service.start();
  BlockingClient client;
  client.connect("127.0.0.1", service.port());

  // Park a job with no deadline, then drain with a short deadline: the
  // flush must resolve it kDeadlineExpired rather than hang the shutdown.
  ASSERT_TRUE(client.send_raw(encode_decode_request(
      make_request(1, 9, kTinyCodec, zero_codeword_llrs(32)))));
  std::this_thread::sleep_for(100ms);  // let it park

  std::thread drainer([&] { service.shutdown_after(300ms); });
  const auto outcome = client.read_frame(5000ms);
  drainer.join();
  ASSERT_TRUE(outcome.has_value());
  ASSERT_EQ(outcome->type, FrameType::kDecodeResponse);
  DecodeResponse response;
  ASSERT_EQ(parse_decode_response(outcome->body, &response),
            WireErrorCode::kNone);
  EXPECT_EQ(response.status,
            static_cast<std::uint8_t>(DecodeStatus::kDeadlineExpired));
  const ServiceStats stats = service.stats();
  EXPECT_GE(stats.jobs_flushed_at_drain, 1U);
}

// ---------------------------------------------------------------------------
// Codec cache.

TEST(CodecCacheTest, SingleFlightConstructionUnderHerd) {
  CodecCache cache;
  const CodecRef ref{kWimaxStd, 0, 96};  // the big one: worth coalescing
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<CodecEntry>> entries(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      WireErrorCode error = WireErrorCode::kNone;
      entries[static_cast<std::size_t>(t)] = cache.resolve(ref, &error);
    });
  for (std::thread& t : threads) t.join();
  for (const auto& entry : entries) {
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry.get(), entries[0].get()) << "not coalesced";
  }
  const CodecCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1U);  // exactly one build
  EXPECT_EQ(stats.hits + stats.coalesced_waits,
            static_cast<std::size_t>(kThreads - 1));

  // Unknown refs are typed refusals and do not poison anything.
  WireErrorCode error = WireErrorCode::kNone;
  EXPECT_EQ(cache.resolve({kWimaxStd, 0, 23}, &error), nullptr);
  EXPECT_EQ(error, WireErrorCode::kUnknownCodec);
  EXPECT_EQ(cache.resolve({kWimaxStd, 9, 24}, &error), nullptr);
  EXPECT_EQ(cache.resolve({3, 0, 1}, &error), nullptr);
}

TEST(CodecCacheTest, AllAdvertisedCodecsActuallyBuild) {
  CodecCache cache;
  for (const CodecRef& ref : CodecCache::all_known_codecs()) {
    WireErrorCode error = WireErrorCode::kNone;
    const auto entry = cache.resolve(ref, &error);
    ASSERT_NE(entry, nullptr) << to_string(ref);
    EXPECT_GT(entry->code().n(), 0U);
  }
}

}  // namespace
}  // namespace ldpc::service
