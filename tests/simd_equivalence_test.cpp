// SIMD/scalar equivalence: the contract of src/core/simd is that
// SimdLayeredDecoder is *bit-identical* to LayeredMinSumFixedDecoder —
// hard bits, iteration counts, convergence status, and every saturation
// counter — on every kernel tier, for every code geometry, including z
// values that are not a multiple of the vector lane width (tail lanes).
// scripts/check.sh runs this suite in both LDPC_SIMD modes and under
// ASan/UBSan, so alignment or out-of-bounds lane bugs fail loudly.
#include <gtest/gtest.h>

#include <vector>

#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "codes/random_qc.hpp"
#include "codes/wifi.hpp"
#include "codes/wimax.hpp"
#include "core/decoder_factory.hpp"
#include "core/layered_minsum_fixed.hpp"
#include "core/simd/simd_layered.hpp"
#include "util/rng.hpp"

namespace ldpc {
namespace {

std::vector<float> noisy_llr(const QCLdpcCode& code, float ebn0_db,
                             std::uint64_t seed) {
  const RuEncoder enc(code);
  Xoshiro256 rng(seed);
  BitVec info(code.k());
  for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
  const float variance = awgn_noise_variance(ebn0_db, code.rate());
  AwgnChannel ch(variance, seed + 1);
  return BpskModem::demodulate(
      ch.transmit(BpskModem::modulate(enc.encode(info))), variance);
}

void expect_identical(Decoder& scalar, Decoder& simd,
                      std::span<const float> llr, const std::string& ctx) {
  const DecodeResult rs = scalar.decode(llr);
  const DecodeResult rv = simd.decode(llr);
  EXPECT_TRUE(rs.hard_bits == rv.hard_bits) << ctx;
  EXPECT_EQ(rs.iterations, rv.iterations) << ctx;
  EXPECT_EQ(rs.converged, rv.converged) << ctx;
  EXPECT_EQ(rs.status, rv.status) << ctx;
  EXPECT_EQ(rs.faults_injected, rv.faults_injected) << ctx;
  const SaturationStats ss = scalar.saturation();
  const SaturationStats sv = simd.saturation();
  EXPECT_EQ(ss.quantizer_clips, sv.quantizer_clips) << ctx;
  EXPECT_EQ(ss.datapath_clips, sv.datapath_clips) << ctx;
  EXPECT_EQ(ss.q_clips, sv.q_clips) << ctx;
  EXPECT_EQ(ss.r_clips, sv.r_clips) << ctx;
  EXPECT_EQ(ss.p_clips, sv.p_clips) << ctx;
  EXPECT_EQ(ss.degenerate_checks, sv.degenerate_checks) << ctx;
}

std::string ctx_name(const QCLdpcCode& code, simd::SimdTier tier,
                     std::uint64_t seed) {
  return "z=" + std::to_string(code.z()) + " n=" + std::to_string(code.n()) +
         " tier=" + simd::to_string(tier) + " seed=" + std::to_string(seed);
}

// Sweep one (code, options, format) point across all tiers and a batch of
// frames, scalar vs SIMD. `ebn0_db` sits in the waterfall so the batch
// mixes converged, max-iteration, and (with a watchdog) aborted decodes.
void sweep_code(const QCLdpcCode& code, DecoderOptions opt, FixedFormat fmt,
                float ebn0_db, int frames) {
  LayeredMinSumFixedDecoder scalar(code, opt, fmt);
  for (const simd::SimdTier tier : simd::available_tiers()) {
    SimdLayeredDecoder simd_dec(code, opt, fmt, tier);
    EXPECT_FALSE(simd_dec.scalar_only());
    for (int f = 0; f < frames; ++f) {
      const auto seed = static_cast<std::uint64_t>(f) * 71 + 11;
      expect_identical(scalar, simd_dec, noisy_llr(code, ebn0_db, seed),
                       ctx_name(code, tier, seed));
    }
  }
}

// ------------------------------------------------------------- geometry ----

TEST(SimdEquivalence, WimaxHalfRateZ96) {
  // The paper's case-study code: z = 96 = 6 full AVX2 vectors, no tail.
  DecoderOptions opt;
  opt.count_saturation = true;
  sweep_code(make_wimax_2304_half_rate(), opt, FixedFormat{8, 2}, 1.6F, 3);
}

TEST(SimdEquivalence, WimaxHighRateSmallZ) {
  DecoderOptions opt;
  opt.count_saturation = true;
  sweep_code(make_wimax_code(WimaxRate::kRate5_6, 24), opt, FixedFormat{8, 2},
             3.6F, 3);
}

TEST(SimdEquivalence, WifiZ27TailLanes) {
  // z = 27: neither a multiple of 16 (AVX2) nor 8 (SSE2/portable) — every
  // layer exercises the zero-padded tail-lane path.
  DecoderOptions opt;
  opt.count_saturation = true;
  sweep_code(make_wifi_648_half_rate(), opt, FixedFormat{8, 2}, 1.8F, 4);
}

TEST(SimdEquivalence, WifiZ81TailLanes) {
  DecoderOptions opt;
  opt.count_saturation = true;
  sweep_code(make_wifi_1944_half_rate(), opt, FixedFormat{8, 2}, 1.6F, 3);
}

TEST(SimdEquivalence, RandomQcZBelowLaneWidth) {
  // z = 10 < both lane widths: the whole layer is one partial vector.
  RandomQcConfig cfg;
  cfg.z = 10;
  cfg.seed = 7;
  const auto code = make_random_qc_code(cfg);
  DecoderOptions opt;
  opt.count_saturation = true;
  sweep_code(code, opt, FixedFormat{8, 2}, 2.5F, 4);
}

TEST(SimdEquivalence, RandomQcOddGeometry) {
  RandomQcConfig cfg;
  cfg.block_rows = 5;
  cfg.block_cols = 15;
  cfg.z = 33;  // 2 AVX2 vectors + 1 tail lane
  cfg.info_row_degree = 5;
  cfg.seed = 21;
  const auto code = make_random_qc_code(cfg);
  DecoderOptions opt;
  opt.count_saturation = true;
  sweep_code(code, opt, FixedFormat{8, 2}, 2.5F, 3);
}

// ------------------------------------------------- kernel configurations ----

TEST(SimdEquivalence, NarrowQ6Format) {
  DecoderOptions opt;
  opt.count_saturation = true;
  sweep_code(make_wifi_648_half_rate(), opt, FixedFormat{6, 1}, 2.0F, 3);
}

TEST(SimdEquivalence, ScaleSweep) {
  // Non-0.75 scales route through the truncating num/16 kernel path —
  // including 1.0 (num = 16), whose unscaled |min code| magnitude is the
  // one value that saturates R' at the positive rail.
  const auto code = make_wifi_648_half_rate();
  for (const float scale : {0.5F, 0.625F, 0.8125F, 1.0F}) {
    DecoderOptions opt;
    opt.scale = scale;
    opt.count_saturation = true;
    sweep_code(code, opt, FixedFormat{8, 2}, 1.8F, 2);
  }
}

TEST(SimdEquivalence, OffsetMinSum) {
  const auto code = make_wifi_648_half_rate();
  DecoderOptions opt;
  opt.count_saturation = true;
  const FixedFormat fmt{8, 2};
  LayeredMinSumFixedDecoder scalar(code, opt,
                                   LayerRowKernel::offset_kernel(fmt, 2),
                                   "offset-scalar");
  for (const simd::SimdTier tier : simd::available_tiers()) {
    SimdLayeredDecoder simd_dec(code, opt, fmt, 2, "offset-simd", tier);
    for (int f = 0; f < 3; ++f) {
      const auto seed = static_cast<std::uint64_t>(f) * 31 + 5;
      expect_identical(scalar, simd_dec, noisy_llr(code, 1.8F, seed),
                       ctx_name(code, tier, seed));
    }
  }
}

TEST(SimdEquivalence, EarlyTerminationOff) {
  // Fixed 10 iterations (the paper's Table II operating point): posterior
  // trajectories must stay in lockstep long after parity is satisfied.
  DecoderOptions opt;
  opt.early_termination = false;
  opt.count_saturation = true;
  sweep_code(make_wifi_648_half_rate(), opt, FixedFormat{8, 2}, 2.2F, 3);
}

TEST(SimdEquivalence, WatchdogAbort) {
  // Heavy noise + stall watchdog: both decoders must abort on the same
  // iteration with the same status.
  DecoderOptions opt;
  opt.max_iterations = 30;
  opt.watchdog.stall_window = 4;
  opt.count_saturation = true;
  sweep_code(make_wifi_648_half_rate(), opt, FixedFormat{8, 2}, 0.0F, 3);
}

TEST(SimdEquivalence, SaturationStress) {
  // Rail-hot channel LLRs: quantizer clips plus datapath saturations on
  // most edges. The clip *counts* must match event-for-event.
  const auto code = make_wifi_648_half_rate();
  DecoderOptions opt;
  opt.count_saturation = true;
  const FixedFormat fmt{8, 2};
  std::vector<float> llr = noisy_llr(code, 2.0F, 3);
  for (std::size_t v = 0; v < llr.size(); v += 3) llr[v] *= 100.0F;
  LayeredMinSumFixedDecoder scalar(code, opt, fmt);
  for (const simd::SimdTier tier : simd::available_tiers()) {
    SimdLayeredDecoder simd_dec(code, opt, fmt, tier);
    expect_identical(scalar, simd_dec, llr, ctx_name(code, tier, 3));
    const auto stats = simd_dec.saturation();
    EXPECT_GT(stats.quantizer_clips, 0);
  }
}

// ------------------------------------------------------- entry points ----

TEST(SimdEquivalence, QuantizedEntryPoint) {
  const auto code = make_wifi_648_half_rate();
  const FixedFormat fmt{8, 2};
  DecoderOptions opt;
  opt.count_saturation = true;
  LayeredMinSumFixedDecoder scalar(code, opt, fmt);
  const auto llr = noisy_llr(code, 1.8F, 9);
  std::vector<std::int32_t> codes(llr.size());
  for (std::size_t v = 0; v < llr.size(); ++v) codes[v] = fmt.quantize(llr[v]);
  for (const simd::SimdTier tier : simd::available_tiers()) {
    SimdLayeredDecoder simd_dec(code, opt, fmt, tier);
    const auto rs = scalar.decode_quantized(codes);
    const auto rv = simd_dec.decode_quantized(codes);
    EXPECT_TRUE(rs.hard_bits == rv.hard_bits);
    EXPECT_EQ(rs.iterations, rv.iterations);
    EXPECT_EQ(rs.status, rv.status);
    EXPECT_EQ(scalar.saturation().datapath_clips,
              simd_dec.saturation().datapath_clips);
    EXPECT_EQ(scalar.saturation().q_clips, simd_dec.saturation().q_clips);
    EXPECT_EQ(scalar.saturation().r_clips, simd_dec.saturation().r_clips);
    EXPECT_EQ(scalar.saturation().p_clips, simd_dec.saturation().p_clips);
  }
}

TEST(SimdEquivalence, ObserverSnapshotsIdentical) {
  const auto code = make_wifi_648_half_rate();
  const auto llr = noisy_llr(code, 1.8F, 13);
  auto capture = [&](Decoder& dec, std::vector<IterationSnapshot>& out) {
    out.clear();
    dec.decode(llr);
  };
  for (const simd::SimdTier tier : simd::available_tiers()) {
    std::vector<IterationSnapshot> scalar_snaps;
    std::vector<IterationSnapshot> simd_snaps;
    DecoderOptions opt_s;
    opt_s.count_saturation = true;
    opt_s.observer = [&](const IterationSnapshot& s) {
      scalar_snaps.push_back(s);
    };
    DecoderOptions opt_v = opt_s;
    opt_v.observer = [&](const IterationSnapshot& s) {
      simd_snaps.push_back(s);
    };
    LayeredMinSumFixedDecoder scalar(code, opt_s, FixedFormat{8, 2});
    SimdLayeredDecoder simd_dec(code, opt_v, FixedFormat{8, 2}, tier);
    capture(scalar, scalar_snaps);
    capture(simd_dec, simd_snaps);
    ASSERT_EQ(scalar_snaps.size(), simd_snaps.size());
    for (std::size_t i = 0; i < scalar_snaps.size(); ++i) {
      EXPECT_EQ(scalar_snaps[i].iteration, simd_snaps[i].iteration);
      EXPECT_EQ(scalar_snaps[i].syndrome_weight, simd_snaps[i].syndrome_weight);
      EXPECT_EQ(scalar_snaps[i].mean_abs_llr, simd_snaps[i].mean_abs_llr);
      EXPECT_EQ(scalar_snaps[i].flipped_bits, simd_snaps[i].flipped_bits);
      EXPECT_EQ(scalar_snaps[i].saturation_clips, simd_snaps[i].saturation_clips);
    }
  }
}

// ------------------------------------------------------------- dispatch ----

TEST(SimdEquivalence, PortableTierAlwaysAvailable) {
  EXPECT_TRUE(simd::tier_available(simd::SimdTier::kPortable));
  const auto tiers = simd::available_tiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.front(), simd::SimdTier::kPortable);
  EXPECT_TRUE(simd::tier_available(simd::best_tier()));
}

TEST(SimdEquivalence, TierNamesRoundTrip) {
  for (const simd::SimdTier tier : simd::available_tiers())
    EXPECT_EQ(simd::tier_from_string(simd::to_string(tier)), tier);
  EXPECT_THROW(simd::tier_from_string("avx-512-vnni"), Error);
}

TEST(SimdEquivalence, FactoryNamesProduceSimdTwins) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 48);
  DecoderOptions opt;
  opt.count_saturation = true;
  const std::pair<const char*, const char*> pairs[] = {
      {"layered-minsum-fixed", "layered-minsum-simd"},
      {"layered-minsum-q6", "layered-minsum-simd-q6"},
      {"layered-minsum-offset-fixed", "layered-minsum-simd-offset"},
  };
  for (const auto& [scalar_name, simd_name] : pairs) {
    auto scalar = make_decoder(scalar_name, code, opt);
    auto simd_dec = make_decoder(simd_name, code, opt);
    for (int f = 0; f < 2; ++f) {
      expect_identical(*scalar, *simd_dec, noisy_llr(code, 1.8F, 40 + f),
                       std::string(simd_name) + " frame " + std::to_string(f));
    }
  }
}

TEST(SimdEquivalence, WideFormatFallsBackToScalar) {
  // q16.4 is outside the int16 lane envelope: the SIMD decoder must route
  // through its scalar twin and still match the reference decoder.
  const auto code = make_wifi_648_half_rate();
  DecoderOptions opt;
  opt.count_saturation = true;
  const FixedFormat fmt{16, 4};
  LayeredMinSumFixedDecoder scalar(code, opt, fmt);
  SimdLayeredDecoder simd_dec(code, opt, fmt);
  EXPECT_TRUE(simd_dec.scalar_only());
  expect_identical(scalar, simd_dec, noisy_llr(code, 1.8F, 17), "q16.4");
}

}  // namespace
}  // namespace ldpc
