// Block equivalence for the inter-frame-batched SIMD decoder: every frame
// of a SimdBatchDecoder::decode_block must be *bit-identical* to a
// standalone LayeredMinSumFixedDecoder decode of the same LLRs — hard
// bits, iteration counts, status, and every per-site saturation counter —
// on every kernel tier, for block sizes below / at / above the lane width
// (refill mid-block), and for every code geometry including z values that
// are not multiples of any lane count (irrelevant here by design: frames
// ride in lanes, so every lane is full for any z — that invariance is the
// point of the batched layout, and this suite is where it is proven).
// scripts/check.sh runs this suite scalar-only, under ASan/UBSan and under
// TSan, so lane indexing or refill races fail loudly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "codes/random_qc.hpp"
#include "codes/wifi.hpp"
#include "codes/wimax.hpp"
#include "core/decoder_factory.hpp"
#include "core/layered_minsum_fixed.hpp"
#include "core/simd/simd_batch.hpp"
#include "fault/fault_injector.hpp"
#include "util/rng.hpp"

namespace ldpc {
namespace {

std::vector<float> noisy_llr(const QCLdpcCode& code, float ebn0_db,
                             std::uint64_t seed) {
  const RuEncoder enc(code);
  Xoshiro256 rng(seed);
  BitVec info(code.k());
  for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
  const float variance = awgn_noise_variance(ebn0_db, code.rate());
  AwgnChannel ch(variance, seed + 1);
  return BpskModem::demodulate(
      ch.transmit(BpskModem::modulate(enc.encode(info))), variance);
}

/// Per-frame scalar reference: the result and saturation stats a standalone
/// LayeredMinSumFixedDecoder produces for one LLR vector.
struct Reference {
  DecodeResult result;
  SaturationStats saturation;
};

void expect_frame_identical(const Reference& ref, const DecodeResult& rv,
                            const SaturationStats& sv, const std::string& ctx) {
  EXPECT_TRUE(ref.result.hard_bits == rv.hard_bits) << ctx;
  EXPECT_EQ(ref.result.iterations, rv.iterations) << ctx;
  EXPECT_EQ(ref.result.converged, rv.converged) << ctx;
  EXPECT_EQ(ref.result.status, rv.status) << ctx;
  EXPECT_EQ(rv.simd_fallback, SimdFallback::kNone) << ctx;
  EXPECT_EQ(ref.saturation.quantizer_clips, sv.quantizer_clips) << ctx;
  EXPECT_EQ(ref.saturation.datapath_clips, sv.datapath_clips) << ctx;
  EXPECT_EQ(ref.saturation.q_clips, sv.q_clips) << ctx;
  EXPECT_EQ(ref.saturation.r_clips, sv.r_clips) << ctx;
  EXPECT_EQ(ref.saturation.p_clips, sv.p_clips) << ctx;
  EXPECT_EQ(ref.saturation.degenerate_checks, sv.degenerate_checks) << ctx;
}

/// Decode the pool's first `count` frames as one block and compare each
/// against its scalar reference.
void expect_block_identical(SimdBatchDecoder& batched,
                            const std::vector<std::vector<float>>& pool,
                            const std::vector<Reference>& refs,
                            std::size_t count, const std::string& ctx) {
  std::vector<BlockFrame> frames;
  frames.reserve(count);
  for (std::size_t f = 0; f < count; ++f)
    frames.push_back({pool[f], nullptr});
  std::vector<DecodeResult> results(count);
  std::vector<SaturationStats> saturation(count);
  batched.decode_block(frames, results, saturation);
  for (std::size_t f = 0; f < count; ++f) {
    expect_frame_identical(refs[f], results[f], saturation[f],
                           ctx + " block=" + std::to_string(count) +
                               " frame=" + std::to_string(f));
  }
}

/// Sweep one (code, options, format) point: scalar references once, then
/// every tier x block sizes {1, W-1, W, W+3} where W is the tier's lane
/// width — one lane, a partial block, a full block, and a block that
/// forces a mid-flight lane refill.
void sweep_code(const QCLdpcCode& code, const DecoderOptions& opt,
                FixedFormat fmt, float ebn0_db) {
  std::size_t max_width = 0;
  for (const simd::SimdTier tier : simd::available_tiers())
    max_width = std::max<std::size_t>(max_width, simd::tier_lanes(tier));

  std::vector<std::vector<float>> pool;
  std::vector<Reference> refs;
  LayeredMinSumFixedDecoder scalar(code, opt, fmt);
  for (std::size_t f = 0; f < max_width + 3; ++f) {
    pool.push_back(noisy_llr(code, ebn0_db,
                             static_cast<std::uint64_t>(f) * 131 + 7));
    refs.push_back({scalar.decode(pool.back()), scalar.saturation()});
  }

  for (const simd::SimdTier tier : simd::available_tiers()) {
    SimdBatchDecoder batched(code, opt, fmt, tier);
    ASSERT_FALSE(batched.scalar_only());
    const std::size_t w = batched.block_width();
    EXPECT_EQ(w, simd::tier_lanes(tier));
    const std::string ctx = "z=" + std::to_string(code.z()) +
                            " n=" + std::to_string(code.n()) +
                            " tier=" + simd::to_string(tier);
    for (const std::size_t count : {std::size_t{1}, w - 1, w, w + 3})
      expect_block_identical(batched, pool, refs, count, ctx);
  }
}

DecoderOptions counting_options() {
  DecoderOptions opt;
  opt.count_saturation = true;
  return opt;
}

// ------------------------------------------------------------- geometry ----

TEST(SimdBatch, WimaxHalfRateZ96) {
  // The paper's case-study code, also the throughput-gate operating point.
  sweep_code(make_wimax_2304_half_rate(), counting_options(), FixedFormat{8, 2},
             1.8F);
}

TEST(SimdBatch, WifiZ27) {
  // z = 27 leaves tail lanes idle in the z-lane kernel; the batched layout
  // must not care — lanes carry frames, not rows.
  sweep_code(make_wifi_648_half_rate(), counting_options(), FixedFormat{8, 2},
             1.8F);
}

TEST(SimdBatch, WifiZ81) {
  sweep_code(make_wifi_1944_half_rate(), counting_options(), FixedFormat{8, 2},
             1.6F);
}

TEST(SimdBatch, RandomQcZ10BelowEveryLaneWidth) {
  RandomQcConfig cfg;
  cfg.z = 10;
  cfg.seed = 7;
  sweep_code(make_random_qc_code(cfg), counting_options(), FixedFormat{8, 2},
             2.5F);
}

TEST(SimdBatch, RandomQcZ33OddGeometry) {
  RandomQcConfig cfg;
  cfg.block_rows = 5;
  cfg.block_cols = 15;
  cfg.z = 33;
  cfg.info_row_degree = 5;
  cfg.seed = 21;
  sweep_code(make_random_qc_code(cfg), counting_options(), FixedFormat{8, 2},
             2.5F);
}

// ------------------------------------------------- kernel configurations ----

TEST(SimdBatch, NarrowQ6Format) {
  sweep_code(make_wifi_648_half_rate(), counting_options(), FixedFormat{6, 1},
             2.0F);
}

TEST(SimdBatch, ScaleSweep) {
  // Non-0.75 scales route through the truncating num/16 magnitude path.
  const auto code = make_wifi_648_half_rate();
  for (const float scale : {0.5F, 1.0F}) {
    DecoderOptions opt = counting_options();
    opt.scale = scale;
    sweep_code(code, opt, FixedFormat{8, 2}, 1.8F);
  }
}

TEST(SimdBatch, EarlyTerminationOff) {
  // Fixed iteration budget: lanes retire together only at max_iterations,
  // and the syndrome probe runs solely for the watchdog (here: not at all).
  DecoderOptions opt = counting_options();
  opt.early_termination = false;
  opt.max_iterations = 8;
  sweep_code(make_wifi_648_half_rate(), opt, FixedFormat{8, 2}, 2.2F);
}

TEST(SimdBatch, WatchdogAbort) {
  // Heavy noise + stall watchdog: per-lane watchdog state must abort each
  // frame on the same iteration as the scalar decoder would.
  DecoderOptions opt = counting_options();
  opt.max_iterations = 30;
  opt.watchdog.stall_window = 4;
  sweep_code(make_wifi_648_half_rate(), opt, FixedFormat{8, 2}, 0.0F);
}

TEST(SimdBatch, UncountedPathMatchesHardOutputs) {
  // count_saturation = false is the throughput configuration (the benches
  // run it): no clip accounting, but hard bits / iterations / status must
  // still match the scalar decoder run in the same mode.
  const auto code = make_wifi_648_half_rate();
  DecoderOptions opt;  // count_saturation defaults to false
  sweep_code(code, opt, FixedFormat{8, 2}, 1.8F);
}

// --------------------------------------------------------- cancellation ----

TEST(SimdBatch, CancelledFrameInBlockLeavesLaneMatesIntact) {
  const auto code = make_wifi_648_half_rate();
  const DecoderOptions opt = counting_options();
  const FixedFormat fmt{8, 2};
  LayeredMinSumFixedDecoder scalar(code, opt, fmt);

  std::vector<std::vector<float>> pool;
  std::vector<Reference> refs;
  for (std::size_t f = 0; f < 8; ++f) {
    pool.push_back(noisy_llr(code, 1.8F, f * 977 + 3));
    refs.push_back({scalar.decode(pool.back()), scalar.saturation()});
  }

  CancelToken cancelled;
  cancelled.cancel();  // expired before the block starts
  // A sticky pre-cancelled token is deterministic: both decoders poll at
  // layer boundaries, so both bail before layer 0 of iteration 1 and the
  // cancelled frame too must match the scalar decoder bit-for-bit.
  scalar.set_cancel_token(&cancelled);
  const Reference cancelled_ref{scalar.decode(pool[2]), scalar.saturation()};
  scalar.set_cancel_token(nullptr);
  EXPECT_EQ(cancelled_ref.result.status, DecodeStatus::kDeadlineExpired);

  for (const simd::SimdTier tier : simd::available_tiers()) {
    SimdBatchDecoder batched(code, opt, fmt, tier);
    std::vector<BlockFrame> frames;
    for (std::size_t f = 0; f < pool.size(); ++f)
      frames.push_back({pool[f], f == 2 ? &cancelled : nullptr});
    std::vector<DecodeResult> results(frames.size());
    std::vector<SaturationStats> saturation(frames.size());
    batched.decode_block(frames, results, saturation);
    const std::string ctx = std::string("tier=") + simd::to_string(tier);
    for (std::size_t f = 0; f < frames.size(); ++f) {
      expect_frame_identical(f == 2 ? cancelled_ref : refs[f], results[f],
                             saturation[f],
                             ctx + " frame=" + std::to_string(f));
    }
  }
}

// ------------------------------------------------------------ fallbacks ----

TEST(SimdBatch, WideFormatFallsBackPerFrameAndSaysSo) {
  // q16.4 is outside the int16 lane envelope: the block decodes per-frame
  // on the z-lane twin's scalar path, matches the reference decoder, and
  // every result carries the fallback reason — never silent.
  const auto code = make_wifi_648_half_rate();
  const DecoderOptions opt = counting_options();
  const FixedFormat fmt{16, 4};
  LayeredMinSumFixedDecoder scalar(code, opt, fmt);
  SimdBatchDecoder batched(code, opt, fmt);
  EXPECT_TRUE(batched.scalar_only());

  std::vector<std::vector<float>> pool;
  std::vector<BlockFrame> frames;
  for (std::size_t f = 0; f < 4; ++f) {
    pool.push_back(noisy_llr(code, 1.8F, f * 55 + 17));
    frames.push_back({pool.back(), nullptr});
  }
  std::vector<DecodeResult> results(frames.size());
  std::vector<SaturationStats> saturation(frames.size());
  batched.decode_block(frames, results, saturation);
  for (std::size_t f = 0; f < frames.size(); ++f) {
    EXPECT_EQ(results[f].simd_fallback, SimdFallback::kWideFormat);
    const DecodeResult ref = scalar.decode(pool[f]);
    EXPECT_TRUE(ref.hard_bits == results[f].hard_bits);
    EXPECT_EQ(ref.iterations, results[f].iterations);
    EXPECT_EQ(ref.status, results[f].status);
  }
}

TEST(SimdBatch, FaultCampaignFallsBackPerFrame) {
  // Fault-injection corruption order is defined by scalar access order, so
  // an enabled injector must force the per-frame path — and stamp why.
  const auto code = make_wifi_648_half_rate();
  FaultConfig cfg;
  cfg.rate = 1e-4;
  FaultInjector injector(cfg);
  DecoderOptions opt;
  opt.fault_injector = &injector;
  SimdBatchDecoder batched(code, opt, FixedFormat{8, 2});
  EXPECT_FALSE(batched.scalar_only());  // config-dependent, not structural

  const auto llr = noisy_llr(code, 1.8F, 99);
  const BlockFrame frames[] = {{llr, nullptr}, {llr, nullptr}};
  std::vector<DecodeResult> results(2);
  std::vector<SaturationStats> saturation(2);
  batched.decode_block(frames, results, saturation);
  for (const DecodeResult& r : results)
    EXPECT_EQ(r.simd_fallback, SimdFallback::kFaultInjector);
}

TEST(SimdBatch, ObserverFallsBackPerFrame) {
  // The observer contract is one snapshot per iteration of one frame —
  // meaningless across interleaved lanes, so the block goes per-frame.
  const auto code = make_wifi_648_half_rate();
  std::size_t snapshots = 0;
  DecoderOptions opt;
  opt.observer = [&](const IterationSnapshot&) { ++snapshots; };
  SimdBatchDecoder batched(code, opt, FixedFormat{8, 2});

  const auto llr = noisy_llr(code, 1.8F, 42);
  const BlockFrame frames[] = {{llr, nullptr}, {llr, nullptr}};
  std::vector<DecodeResult> results(2);
  std::vector<SaturationStats> saturation(2);
  batched.decode_block(frames, results, saturation);
  for (const DecodeResult& r : results)
    EXPECT_EQ(r.simd_fallback, SimdFallback::kObserver);
  EXPECT_GT(snapshots, 0U);
}

TEST(SimdBatch, BenchConfigurationNeverFallsBack) {
  // The exact configuration the throughput benches run (q8.2, no counters,
  // no observer, no faults) must take the batched kernel on every tier —
  // the bench additionally exits non-zero if any frame reports a fallback,
  // so a regression here fails twice.
  const auto code = make_wimax_2304_half_rate();
  DecoderOptions opt;
  for (const simd::SimdTier tier : simd::available_tiers()) {
    SimdBatchDecoder batched(code, opt, FixedFormat{8, 2}, tier);
    EXPECT_FALSE(batched.scalar_only()) << simd::to_string(tier);
  }
}

// ------------------------------------------------------------- dispatch ----

TEST(SimdBatch, UnknownTierOverrideThrows) {
  // LDPC_SIMD_TIER with a typo must throw, not silently decode on some
  // other tier — an override that changed what a benchmark measured
  // without saying so would poison every number collected under it.
  ASSERT_EQ(setenv("LDPC_SIMD_TIER", "avx1024", 1), 0);
  EXPECT_THROW(simd::best_tier(), Error);
  // A *known but unavailable* tier name falls through to auto-detection
  // instead (pinned scripts stay portable across hosts).
  ASSERT_EQ(setenv("LDPC_SIMD_TIER", "avx512", 1), 0);
  EXPECT_NO_THROW(simd::best_tier());
  ASSERT_EQ(unsetenv("LDPC_SIMD_TIER"), 0);
  EXPECT_NO_THROW(simd::best_tier());
}

TEST(SimdBatch, FactoryNameProducesBatchedDecoder) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  const auto dec = make_decoder("layered-minsum-simd-batched", code, opt);
  EXPECT_GT(dec->block_width(), 1U);
  EXPECT_NE(dec->name().find("batched"), std::string::npos);
  // Single-frame decode rides the z-lane twin and still works.
  const auto llr = noisy_llr(code, 3.0F, 5);
  const DecodeResult r = dec->decode(llr);
  EXPECT_TRUE(r.converged);
}

}  // namespace
}  // namespace ldpc
