// Tests for the static value-range verifier (src/analysis): the abstract
// domain's transfer functions brute-forced against the concrete kernel
// arithmetic they model, the fixpoint engine's proven bounds, and the
// static-vs-runtime cross-check — a site the verifier proves unsaturable
// must never show a nonzero runtime clip counter, on any input.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "analysis/range_domain.hpp"
#include "analysis/range_verify.hpp"
#include "codes/wifi.hpp"
#include "codes/wimax.hpp"
#include "core/layered_minsum_fixed.hpp"
#include "core/quant.hpp"
#include "util/saturate.hpp"

namespace ldpc {
namespace {

// ---------------------------------------------------------------- domain --

TEST(IntervalDomain, JoinMeetBasics) {
  const Interval a = Interval::of(-3, 5);
  const Interval b = Interval::of(2, 9);
  EXPECT_EQ(interval_join(a, b), Interval::of(-3, 9));
  EXPECT_EQ(interval_meet(a, b), Interval::of(2, 5));
  EXPECT_TRUE(interval_meet(Interval::of(0, 1), Interval::of(3, 4)).empty());
  EXPECT_EQ(interval_join(Interval::bottom(), a), a);
  EXPECT_EQ(interval_join(a, Interval::bottom()), a);
  EXPECT_TRUE(interval_meet(Interval::bottom(), a).empty());
  // Join is the least upper bound: contains both operands.
  EXPECT_TRUE(interval_join(a, b).contains(a));
  EXPECT_TRUE(interval_join(a, b).contains(b));
}

TEST(IntervalDomain, WideningJumpsGrownBoundsToInfinity) {
  const Interval prev = Interval::of(-4, 7);
  // Stable: widening is the identity.
  EXPECT_EQ(interval_widen(prev, prev), prev);
  EXPECT_EQ(interval_widen(prev, Interval::of(-3, 6)), prev);
  // Upper bound grew: jumps to +inf, lower stays.
  const Interval wider_hi = interval_widen(prev, Interval::of(-4, 8));
  EXPECT_EQ(wider_hi.lo, -4);
  EXPECT_EQ(wider_hi.hi, Interval::kPosInf);
  // Lower bound grew: jumps to -inf.
  const Interval wider_lo = interval_widen(prev, Interval::of(-5, 7));
  EXPECT_EQ(wider_lo.lo, Interval::kNegInf);
  EXPECT_EQ(wider_lo.hi, 7);
  // Widening terminates: applying it twice is a fixpoint.
  const Interval once = interval_widen(prev, Interval::of(-5, 8));
  EXPECT_EQ(interval_widen(once, once), once);
}

TEST(IntervalDomain, SaturatingSentinelArithmetic) {
  EXPECT_EQ(sat64_add(Interval::kPosInf, -5), Interval::kPosInf);
  EXPECT_EQ(sat64_add(Interval::kNegInf, 5), Interval::kNegInf);
  EXPECT_EQ(sat64_add(3, 4), 7);
  EXPECT_EQ(sat64_neg(Interval::kNegInf), Interval::kPosInf);
  EXPECT_EQ(sat64_neg(Interval::kPosInf), Interval::kNegInf);
  EXPECT_EQ(sat64_neg(-7), 7);
}

/// Brute-force harness: enumerate every subinterval pair of a small window
/// and check the abstract result is exactly the concrete image (sound AND
/// tight), which is what "exact extension of a monotone op" promises.
template <typename AbstractFn, typename ConcreteFn>
void check_exact_binary(AbstractFn abstract, ConcreteFn concrete,
                        std::int64_t window_lo, std::int64_t window_hi) {
  for (std::int64_t alo = window_lo; alo <= window_hi; ++alo)
    for (std::int64_t ahi = alo; ahi <= window_hi; ++ahi)
      for (std::int64_t blo = window_lo; blo <= window_hi; ++blo)
        for (std::int64_t bhi = blo; bhi <= window_hi; ++bhi) {
          const Interval result =
              abstract(Interval::of(alo, ahi), Interval::of(blo, bhi));
          std::int64_t min = Interval::kPosInf;
          std::int64_t max = Interval::kNegInf;
          for (std::int64_t x = alo; x <= ahi; ++x)
            for (std::int64_t y = blo; y <= bhi; ++y) {
              const std::int64_t v = concrete(x, y);
              min = std::min(min, v);
              max = std::max(max, v);
            }
          ASSERT_EQ(result, Interval::of(min, max))
              << "[" << alo << "," << ahi << "] op [" << blo << "," << bhi
              << "]";
        }
}

template <typename AbstractFn, typename ConcreteFn>
void check_exact_unary(AbstractFn abstract, ConcreteFn concrete,
                       std::int64_t window_lo, std::int64_t window_hi) {
  for (std::int64_t lo = window_lo; lo <= window_hi; ++lo)
    for (std::int64_t hi = lo; hi <= window_hi; ++hi) {
      const Interval result = abstract(Interval::of(lo, hi));
      std::int64_t min = Interval::kPosInf;
      std::int64_t max = Interval::kNegInf;
      for (std::int64_t x = lo; x <= hi; ++x) {
        const std::int64_t v = concrete(x);
        min = std::min(min, v);
        max = std::max(max, v);
      }
      ASSERT_EQ(result, Interval::of(min, max)) << "[" << lo << "," << hi
                                                << "]";
    }
}

TEST(IntervalDomain, AddSubMinExactByBruteForce) {
  check_exact_binary(interval_add,
                     [](std::int64_t x, std::int64_t y) { return x + y; }, -6,
                     6);
  check_exact_binary(interval_sub,
                     [](std::int64_t x, std::int64_t y) { return x - y; }, -6,
                     6);
  // The min1/min2 running-minimum transfer.
  check_exact_binary(
      interval_min,
      [](std::int64_t x, std::int64_t y) { return std::min(x, y); }, -6, 6);
}

TEST(IntervalDomain, NegAbsPlusMinusExactByBruteForce) {
  check_exact_unary(interval_neg, [](std::int64_t x) { return -x; }, -9, 9);
  check_exact_unary(interval_abs,
                    [](std::int64_t x) { return x < 0 ? -x : x; }, -9, 9);
  // ± union over a magnitude interval: image of {-1, +1} x [lo, hi].
  for (std::int64_t lo = 0; lo <= 9; ++lo)
    for (std::int64_t hi = lo; hi <= 9; ++hi) {
      const Interval pm = interval_plus_minus(Interval::of(lo, hi));
      EXPECT_EQ(pm, Interval::of(-hi, hi));
    }
}

TEST(IntervalDomain, ShiftAddScalingMatchesDatapath) {
  // (x>>1) + (x>>2) truncating — exactly what scale_three_quarters computes
  // on the magnitude (concrete fn from util/saturate.hpp, positive branch).
  check_exact_unary(
      interval_scale_three_quarters,
      [](std::int64_t x) {
        return static_cast<std::int64_t>(
            scale_three_quarters(static_cast<std::int32_t>(x)));
      },
      0, 200);
}

TEST(IntervalDomain, NumDenAndOffsetTransfersExact) {
  for (const auto& [num, den] :
       {std::pair<std::int64_t, std::int64_t>{15, 16}, {16, 16}, {7, 8}}) {
    check_exact_unary(
        [num, den](const Interval& a) {
          return interval_scale_num_den(a, num, den);
        },
        [num, den](std::int64_t x) { return (x * num) / den; }, 0, 64);
  }
  for (const std::int64_t offset : {0, 1, 2, 5}) {
    check_exact_unary(
        [offset](const Interval& a) { return interval_offset(a, offset); },
        [offset](std::int64_t x) { return std::max<std::int64_t>(0, x - offset); },
        0, 64);
  }
}

TEST(IntervalDomain, ClampMatchesSatClamp) {
  const int bits = 6;
  check_exact_unary(
      [&](const Interval& a) {
        return interval_clamp(a, fixed_min(bits), fixed_max(bits));
      },
      [&](std::int64_t x) {
        return static_cast<std::int64_t>(sat_clamp(x, bits));
      },
      -80, 80);
  // Unbounded input clamps onto the rails.
  EXPECT_EQ(interval_clamp(Interval::top(), -32, 31), Interval::of(-32, 31));
}

TEST(IntervalDomain, RequiredBits) {
  EXPECT_EQ(required_bits(Interval::of(0, 0)), 2);  // format floor
  EXPECT_EQ(required_bits(Interval::of(-8, 7)), 4);
  EXPECT_EQ(required_bits(Interval::of(-9, 7)), 5);
  EXPECT_EQ(required_bits(Interval::of(-128, 127)), 8);
  EXPECT_EQ(required_bits(Interval::of(-224, 223)), 9);
  EXPECT_EQ(required_bits(Interval::top()), -1);
}

TEST(SignDomain, JoinLattice) {
  EXPECT_EQ(sign_join(Sign::kBottom, Sign::kNeg), Sign::kNeg);
  EXPECT_EQ(sign_join(Sign::kNeg, Sign::kZero), Sign::kNonPos);
  EXPECT_EQ(sign_join(Sign::kPos, Sign::kZero), Sign::kNonNeg);
  EXPECT_EQ(sign_join(Sign::kNeg, Sign::kPos), Sign::kNonZero);
  EXPECT_EQ(sign_join(Sign::kNonPos, Sign::kPos), Sign::kTop);
  EXPECT_EQ(interval_sign(Interval::of(-3, 3)), Sign::kTop);
  EXPECT_EQ(interval_sign(Interval::of(0, 3)), Sign::kNonNeg);
  EXPECT_EQ(interval_sign(Interval::of(1, 3)), Sign::kPos);
  EXPECT_EQ(interval_sign(Interval::point(0)), Sign::kZero);
}

// -------------------------------------------------------------- verifier --

CodeFacts wimax_facts() {
  static const QCLdpcCode code = make_wimax_code(all_wimax_rates().front(), 96);
  return CodeFacts::from_code("wimax-r0-z96", code);
}

TEST(RangeVerify, ShiftAddScalingIsProvenUnsaturableAtQ8) {
  const RangeReport report =
      verify_ranges(wimax_facts(), FixedFormat{8, 2}, ScalingSpec{});
  // Q = P - R pre-clamp: [-128,127] - [-96,96] = [-224, 223] -> 9 bits.
  const SiteBound& q = report.site(RangeSite::kQ);
  EXPECT_EQ(q.wide, Interval::of(-224, 223));
  EXPECT_TRUE(q.has_clamp);
  EXPECT_TRUE(q.clamp_required);
  EXPECT_EQ(q.min_safe_bits, 9);
  // |Q| reaches 128 (the negative rail's magnitude); the min register is
  // unsigned 8-bit hardware, capacity 255, so no clamp is needed.
  EXPECT_EQ(report.site(RangeSite::kMinMagnitude).wide, Interval::of(0, 128));
  // 0.75 * 128 by shift-add = 96: the R' clamp can never fire. This is the
  // paper's headline property — 3/4 scaling makes the check-message write
  // clamp-free at any width.
  const SiteBound& r = report.site(RangeSite::kRNew);
  EXPECT_EQ(r.wide, Interval::of(-96, 96));
  EXPECT_TRUE(r.proven_unsaturable);
  EXPECT_FALSE(r.clamp_required);
  EXPECT_TRUE(report.all_safe());
  EXPECT_FALSE(report.widening_applied);
  EXPECT_LE(report.iterations_to_fixpoint, 4);
}

TEST(RangeVerify, IdentityScalingRequiresTheRPrimeClamp) {
  const RangeReport report = verify_ranges(
      wimax_facts(), FixedFormat{8, 2},
      ScalingSpec{ScaleKind::kNumDen, 16, 16, 0});
  const SiteBound& r = report.site(RangeSite::kRNew);
  EXPECT_EQ(r.wide, Interval::of(-128, 128));
  EXPECT_FALSE(r.proven_unsaturable);
  EXPECT_TRUE(r.clamp_required);
  EXPECT_TRUE(r.safe());  // the implementation does clamp there
  EXPECT_TRUE(report.all_safe());
}

TEST(RangeVerify, Q6BoundsScaleWithTheFormat) {
  const RangeReport report =
      verify_ranges(wimax_facts(), FixedFormat{6, 1}, ScalingSpec{});
  EXPECT_EQ(report.site(RangeSite::kRNew).wide, Interval::of(-24, 24));
  EXPECT_TRUE(report.site(RangeSite::kRNew).proven_unsaturable);
  EXPECT_EQ(report.site(RangeSite::kQ).wide, Interval::of(-56, 55));
  EXPECT_EQ(report.site(RangeSite::kQ).min_safe_bits, 7);
  EXPECT_TRUE(report.all_safe());
}

TEST(RangeVerify, OffsetCorrectionBounds) {
  // offset-2 shrinks the magnitude to [0, 126]: proven unsaturable.
  const RangeReport with_offset = verify_ranges(
      wimax_facts(), FixedFormat{8, 2},
      ScalingSpec{ScaleKind::kOffset, 3, 4, 2});
  EXPECT_EQ(with_offset.site(RangeSite::kRNew).wide, Interval::of(-126, 126));
  EXPECT_TRUE(with_offset.site(RangeSite::kRNew).proven_unsaturable);
  // offset-0 is the identity: the R' clamp stays load-bearing.
  const RangeReport no_offset = verify_ranges(
      wimax_facts(), FixedFormat{8, 2},
      ScalingSpec{ScaleKind::kOffset, 3, 4, 0});
  EXPECT_TRUE(no_offset.site(RangeSite::kRNew).clamp_required);
}

TEST(RangeVerify, SpecReadsKernelParametersExactly) {
  const FixedFormat format{8, 2};
  const LayerRowKernel shift_add(format);
  EXPECT_EQ(ScalingSpec::from_kernel(shift_add).kind,
            ScaleKind::kThreeQuarters);
  const LayerRowKernel ablation(format, 15, 16);
  const ScalingSpec ab = ScalingSpec::from_kernel(ablation);
  EXPECT_EQ(ab.kind, ScaleKind::kNumDen);
  EXPECT_EQ(ab.num, 15);
  EXPECT_EQ(ab.den, 16);
  const LayerRowKernel offset = LayerRowKernel::offset_kernel(format, 2);
  const ScalingSpec off = ScalingSpec::from_kernel(offset);
  EXPECT_EQ(off.kind, ScaleKind::kOffset);
  EXPECT_EQ(off.offset_code, 2);
}

// -------------------------------------------- static vs runtime cross-check --

/// Adversarial LLR frames for one code: rail-hot (every channel value at or
/// beyond the quantizer rails), alternating-sign rail-hot, and a mixed ramp.
std::vector<std::vector<float>> stress_frames(std::size_t n) {
  std::vector<std::vector<float>> frames;
  frames.push_back(std::vector<float>(n, 1000.0F));
  frames.push_back(std::vector<float>(n, -1000.0F));
  std::vector<float> alternating(n);
  for (std::size_t i = 0; i < n; ++i)
    alternating[i] = (i % 2 == 0) ? 500.0F : -500.0F;
  frames.push_back(std::move(alternating));
  std::vector<float> ramp(n);
  for (std::size_t i = 0; i < n; ++i)
    ramp[i] = (static_cast<float>(i % 64) - 32.0F) * 1.5F;
  frames.push_back(std::move(ramp));
  return frames;
}

struct CrossCheckCase {
  const char* label;
  FixedFormat format;
  ScalingSpec scaling;
};

TEST(RangeVerifyCrossCheck, RuntimeClipsNeverExceedStaticVerdicts) {
  const QCLdpcCode code = make_wimax_code(all_wimax_rates().front(), 96);
  const CodeFacts facts = CodeFacts::from_code("wimax-r0-z96", code);
  const std::vector<CrossCheckCase> cases = {
      {"q8-shift-add", FixedFormat{8, 2}, ScalingSpec{}},
      {"q6-shift-add", FixedFormat{6, 1}, ScalingSpec{}},
      {"q8-identity", FixedFormat{8, 2},
       ScalingSpec{ScaleKind::kNumDen, 16, 16, 0}},
      {"q8-offset2", FixedFormat{8, 2},
       ScalingSpec{ScaleKind::kOffset, 3, 4, 2}},
  };
  for (const CrossCheckCase& c : cases) {
    SCOPED_TRACE(c.label);
    LayerRowKernel kernel =
        c.scaling.kind == ScaleKind::kOffset
            ? LayerRowKernel::offset_kernel(c.format, c.scaling.offset_code)
            : (c.scaling.kind == ScaleKind::kThreeQuarters
                   ? LayerRowKernel(c.format)
                   : LayerRowKernel(c.format, c.scaling.num, c.scaling.den));
    const RangeReport report = verify_ranges(facts, kernel);
    ASSERT_TRUE(report.all_safe());

    DecoderOptions options;
    options.max_iterations = 5;
    options.count_saturation = true;
    LayeredMinSumFixedDecoder decoder(code, options, kernel, c.label);
    SaturationStats total;
    for (const auto& frame : stress_frames(code.n())) {
      (void)decoder.decode(frame);
      const SaturationStats s = decoder.saturation();
      total.q_clips += s.q_clips;
      total.r_clips += s.r_clips;
      total.p_clips += s.p_clips;
      total.quantizer_clips += s.quantizer_clips;
    }
    // THE cross-check: a site the verifier proves unsaturable must show a
    // zero runtime clip counter on every input, including rail-hot ones.
    if (report.site(RangeSite::kRNew).proven_unsaturable) {
      EXPECT_EQ(total.r_clips, 0) << "static proof contradicted at R'";
    }
    if (report.site(RangeSite::kQ).proven_unsaturable) {
      EXPECT_EQ(total.q_clips, 0) << "static proof contradicted at Q";
    }
    if (report.site(RangeSite::kPNew).proven_unsaturable) {
      EXPECT_EQ(total.p_clips, 0) << "static proof contradicted at P'";
    }
    // Rail-hot frames saturate the quantizer by construction, so the sweep
    // is not vacuously quiet.
    EXPECT_GT(total.quantizer_clips, 0);
  }
}

TEST(RangeVerifyCrossCheck, ClampRequiredSitesActuallyClipUnderStress) {
  // Non-vacuity for the negative verdicts: with identity scaling the
  // verifier says the R' clamp is load-bearing ([-128, 128] vs rails
  // [-128, 127]) — drive the decoder rail-hot and watch it fire.
  const QCLdpcCode code = make_wimax_code(all_wimax_rates().front(), 96);
  const FixedFormat format{8, 2};
  const LayerRowKernel kernel(format, 16, 16);
  const RangeReport report =
      verify_ranges(CodeFacts::from_code("wimax-r0-z96", code), kernel);
  ASSERT_TRUE(report.site(RangeSite::kRNew).clamp_required);

  DecoderOptions options;
  options.max_iterations = 5;
  options.count_saturation = true;
  LayeredMinSumFixedDecoder decoder(code, options, kernel, "identity-stress");
  SaturationStats total;
  for (const auto& frame : stress_frames(code.n())) {
    (void)decoder.decode(frame);
    const SaturationStats s = decoder.saturation();
    total.r_clips += s.r_clips;
    total.p_clips += s.p_clips;
  }
  EXPECT_GT(total.r_clips, 0) << "clamp_required verdict never exercised";
}

// ------------------------------------------------- quantizer regression --

TEST(QuantizeRegression, ExtremeLlrsAreDefinedAndSaturate) {
  const FixedFormat q8{8, 2};
  // Values far outside long's float range used to hit std::lround UB; the
  // pre-limit pins them one step past the rails before rounding.
  EXPECT_EQ(q8.quantize(1e30F), 127);
  EXPECT_EQ(q8.quantize(-1e30F), -128);
  EXPECT_EQ(q8.quantize(std::numeric_limits<float>::infinity()), 127);
  EXPECT_EQ(q8.quantize(-std::numeric_limits<float>::infinity()), -128);
  EXPECT_EQ(q8.quantize(std::numeric_limits<float>::quiet_NaN()), 0);

  long long clips = 0;
  EXPECT_EQ(q8.quantize(1e30F, clips), 127);
  EXPECT_EQ(clips, 1);
  EXPECT_EQ(q8.quantize(-std::numeric_limits<float>::infinity(), clips), -128);
  EXPECT_EQ(clips, 2);
  // NaN maps to the neutral code without counting as a clip.
  EXPECT_EQ(q8.quantize(std::numeric_limits<float>::quiet_NaN(), clips), 0);
  EXPECT_EQ(clips, 2);
}

TEST(QuantizeRegression, InRangeValuesBitIdenticalToPlainRounding) {
  // The UB fix must not move a single code for LLRs whose scaled value was
  // already well-defined: sweep the whole representable range plus the
  // first saturating step on both sides.
  const FixedFormat q8{8, 2};
  const FixedFormat q6{6, 1};
  for (const FixedFormat& fmt : {q8, q6}) {
    for (float llr = -40.0F; llr <= 40.0F; llr += 0.03125F) {
      const auto reference = static_cast<std::int64_t>(
          std::lround(llr * static_cast<float>(1 << fmt.frac_bits)));
      ASSERT_EQ(fmt.quantize(llr), sat_clamp(reference, fmt.total_bits))
          << fmt.name() << " llr=" << llr;
      long long clips = 0;
      ASSERT_EQ(fmt.quantize(llr, clips), fmt.quantize(llr));
      ASSERT_EQ(clips != 0,
                reference > fmt.max_code() || reference < fmt.min_code());
    }
  }
  // Exact boundary: 31.75 is the q8.2 positive rail, 32.0 the first clip.
  long long clips = 0;
  EXPECT_EQ(q8.quantize(31.75F, clips), 127);
  EXPECT_EQ(clips, 0);
  EXPECT_EQ(q8.quantize(32.0F, clips), 127);
  EXPECT_EQ(clips, 1);
}

}  // namespace
}  // namespace ldpc
