// Unit tests for the util substrate: checks, RNG, bit vectors, saturating
// arithmetic, statistics, tables, CSV and CLI parsing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "util/bitvec.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/saturate.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace ldpc {
namespace {

// ---------------------------------------------------------------- check ----

TEST(Check, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(LDPC_CHECK(1 + 1 == 2));
}

TEST(Check, FailingCheckThrowsError) {
  EXPECT_THROW(LDPC_CHECK(false), Error);
}

TEST(Check, MessageCarriesExpressionAndText) {
  try {
    LDPC_CHECK_MSG(2 > 3, "two is not more than " << 3);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("2 > 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("two is not more than 3"),
              std::string::npos);
  }
}

// ------------------------------------------------------------------ rng ----

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestoresStream) {
  Xoshiro256 a(77);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(77);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[i]);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Xoshiro256 rng(6);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntRespectsBound) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.uniform_int(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, UniformIntBoundOneAlwaysZero) {
  Xoshiro256 rng(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(1), 0u);
}

TEST(Rng, GaussianMomentsMatchStandardNormal) {
  Xoshiro256 rng(9);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, CoinIsRoughlyFair) {
  Xoshiro256 rng(10);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += rng.coin();
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.5, 0.01);
}

TEST(Rng, SplitmixExpandsDistinctValues) {
  std::uint64_t s = 42;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  const auto c = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
}

// --------------------------------------------------------------- bitvec ----

TEST(BitVec, StartsAllZero) {
  BitVec v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_TRUE(v.all_zero());
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, SetGetFlipRoundTrip) {
  BitVec v(100);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(99, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(99));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.popcount(), 4u);
  v.flip(63);
  EXPECT_FALSE(v.get(63));
  v.flip(63);
  EXPECT_TRUE(v.get(63));
}

TEST(BitVec, OutOfRangeAccessThrows) {
  BitVec v(10);
  EXPECT_THROW(v.get(10), Error);
  EXPECT_THROW(v.set(10, true), Error);
  EXPECT_THROW(v.flip(10), Error);
}

TEST(BitVec, XorWithComputesSymmetricDifference) {
  BitVec a(70), b(70);
  a.set(3, true);
  a.set(65, true);
  b.set(3, true);
  b.set(64, true);
  a.xor_with(b);
  EXPECT_FALSE(a.get(3));
  EXPECT_TRUE(a.get(64));
  EXPECT_TRUE(a.get(65));
  EXPECT_EQ(a.popcount(), 2u);
}

TEST(BitVec, XorSizeMismatchThrows) {
  BitVec a(10), b(11);
  EXPECT_THROW(a.xor_with(b), Error);
}

TEST(BitVec, HammingDistance) {
  BitVec a(128), b(128);
  for (std::size_t i = 0; i < 128; i += 3) a.set(i, true);
  EXPECT_EQ(a.hamming_distance(b), a.popcount());
  b = a;
  EXPECT_EQ(a.hamming_distance(b), 0u);
  b.flip(127);
  EXPECT_EQ(a.hamming_distance(b), 1u);
}

TEST(BitVec, EqualityComparesLengthAndContent) {
  BitVec a(10), b(10), c(11);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  b.set(5, true);
  EXPECT_FALSE(a == b);
}

TEST(BitVec, ClearAllResets) {
  BitVec a(200);
  for (std::size_t i = 0; i < 200; i += 2) a.set(i, true);
  a.clear_all();
  EXPECT_TRUE(a.all_zero());
}

// ------------------------------------------------------------- saturate ----

TEST(Saturate, BoundsForEightBits) {
  EXPECT_EQ(fixed_max(8), 127);
  EXPECT_EQ(fixed_min(8), -128);
}

TEST(Saturate, BoundsForSixBits) {
  EXPECT_EQ(fixed_max(6), 31);
  EXPECT_EQ(fixed_min(6), -32);
}

TEST(Saturate, ClampPassesInRangeValues) {
  EXPECT_EQ(sat_clamp(100, 8), 100);
  EXPECT_EQ(sat_clamp(-100, 8), -100);
  EXPECT_EQ(sat_clamp(0, 8), 0);
}

TEST(Saturate, ClampSaturatesAtRails) {
  EXPECT_EQ(sat_clamp(1000, 8), 127);
  EXPECT_EQ(sat_clamp(-1000, 8), -128);
  EXPECT_EQ(sat_clamp(32, 6), 31);
  EXPECT_EQ(sat_clamp(-33, 6), -32);
}

TEST(Saturate, AddSaturates) {
  EXPECT_EQ(sat_add(100, 100, 8), 127);
  EXPECT_EQ(sat_add(-100, -100, 8), -128);
  EXPECT_EQ(sat_add(50, -20, 8), 30);
}

TEST(Saturate, SubSaturates) {
  EXPECT_EQ(sat_sub(100, -100, 8), 127);
  EXPECT_EQ(sat_sub(-100, 100, 8), -128);
  EXPECT_EQ(sat_sub(-128, -128, 8), 0);
}

TEST(Saturate, ScaleThreeQuartersMatchesShiftAdd) {
  // The hardware computes (|v|>>1)+(|v|>>2) with truncation per shift.
  for (int v = -128; v <= 127; ++v) {
    const int mag = v < 0 ? -v : v;
    const int expect = (v < 0 ? -1 : 1) * ((mag >> 1) + (mag >> 2));
    EXPECT_EQ(scale_three_quarters(v), expect) << "v=" << v;
  }
}

TEST(Saturate, ScaleThreeQuartersIsOddSymmetric) {
  for (int v = 0; v <= 127; ++v)
    EXPECT_EQ(scale_three_quarters(-v), -scale_three_quarters(v));
}

TEST(Saturate, ScaleNeverIncreasesMagnitude) {
  for (int v = -128; v <= 127; ++v) {
    const int s = scale_three_quarters(v);
    EXPECT_LE(std::abs(s), std::abs(v));
  }
}

TEST(Saturate, WidthRailsAcrossSupportedRange) {
  // Every supported width, including both extremes of the guard.
  EXPECT_EQ(fixed_max(2), 1);
  EXPECT_EQ(fixed_min(2), -2);
  EXPECT_EQ(fixed_max(16), 32767);
  EXPECT_EQ(fixed_min(16), -32768);
  EXPECT_EQ(fixed_max(31), 1073741823);
  EXPECT_EQ(fixed_min(31), -1073741824);
  for (int bits = kMinFixedBits; bits <= kMaxFixedBits; ++bits) {
    EXPECT_EQ(fixed_max(bits), -(fixed_min(bits) + 1)) << bits;
    EXPECT_EQ(sat_clamp(std::int64_t{1} << 40, bits), fixed_max(bits));
    EXPECT_EQ(sat_clamp(-(std::int64_t{1} << 40), bits), fixed_min(bits));
  }
}

TEST(Saturate, InvalidWidthsThrow) {
  // bits >= 32 would shift past the int width (UB before the guard), and
  // bits < 2 leaves no magnitude bits.
  EXPECT_THROW(fixed_max(32), Error);
  EXPECT_THROW(fixed_max(64), Error);
  EXPECT_THROW(fixed_min(32), Error);
  EXPECT_THROW(fixed_max(1), Error);
  EXPECT_THROW(fixed_max(0), Error);
  EXPECT_THROW(fixed_min(-3), Error);
  EXPECT_THROW(sat_clamp(0, 32), Error);
  EXPECT_THROW(sat_add(1, 1, 40), Error);
}

TEST(Saturate, CountedClampAtExactBounds) {
  long long clips = 0;
  // Values exactly on the rails pass through unclipped and uncounted.
  EXPECT_EQ(sat_clamp_counted(127, 8, clips), 127);
  EXPECT_EQ(sat_clamp_counted(-128, 8, clips), -128);
  EXPECT_EQ(clips, 0);
  // One past either rail clips and counts.
  EXPECT_EQ(sat_clamp_counted(128, 8, clips), 127);
  EXPECT_EQ(clips, 1);
  EXPECT_EQ(sat_clamp_counted(-129, 8, clips), -128);
  EXPECT_EQ(clips, 2);
  // Counted add/sub at the exact boundary behave like the uncounted ops.
  EXPECT_EQ(sat_add_counted(100, 27, 8, clips), 127);
  EXPECT_EQ(clips, 2);
  EXPECT_EQ(sat_sub_counted(-100, 28, 8, clips), -128);
  EXPECT_EQ(clips, 2);
  EXPECT_EQ(sat_add_counted(100, 28, 8, clips), 127);
  EXPECT_EQ(clips, 3);
}

TEST(Saturate, ScaleThreeQuartersTruncatesUnitValues) {
  // (1>>1)+(1>>2) = 0: the shift-add datapath truncates |v| = 1 to zero in
  // both directions — the sign-magnitude symmetry the decoder relies on.
  EXPECT_EQ(scale_three_quarters(1), 0);
  EXPECT_EQ(scale_three_quarters(-1), 0);
  EXPECT_EQ(scale_three_quarters(0), 0);
}

// ---------------------------------------------------------------- stats ----

TEST(Stats, EmptyStatsAreZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Stats, SingleValueHasZeroVariance) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.5);
}

TEST(Stats, PercentileEmptyAndSingle) {
  EXPECT_EQ(percentile_sorted({}, 0.5), 0.0);
  const std::vector<double> one{42.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(one, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(one, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(one, 1.0), 42.0);
}

TEST(Stats, PercentileTwoSamplesInterpolates) {
  // The old ceil-rank rule returned the max here; the median of {10, 20}
  // is their midpoint.
  const std::vector<double> two{10.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(two, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(two, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(two, 1.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(two, 0.25), 12.5);
}

TEST(Stats, PercentileOddCountHitsMiddle) {
  const std::vector<double> odd{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(odd, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(odd, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(odd, 0.75), 4.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(odd, 0.9), 4.6);
}

TEST(Stats, PercentileEvenCountInterpolates) {
  const std::vector<double> even{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(even, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile_sorted(even, 1.0), 4.0);
  // p95 of four samples: rank 2.85 -> between 3 and 4.
  EXPECT_NEAR(percentile_sorted(even, 0.95), 3.85, 1e-12);
}

TEST(Stats, PercentileRejectsOutOfRangeQuantile) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_THROW(percentile_sorted(v, -0.1), Error);
  EXPECT_THROW(percentile_sorted(v, 1.1), Error);
}

TEST(Histogram, BinsCountCorrectly) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.bin_count(b), 1u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(Histogram, OutOfRangeGoesToEdgeBins) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(7.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
}

TEST(Histogram, InvalidRangeThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), Error);
}

TEST(Histogram, BinEdgesAreUniform) {
  Histogram h(0.0, 8.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 6.0);
}

// ---------------------------------------------------------------- table ----

TEST(Table, RendersHeaderAndRows) {
  TextTable t("Demo");
  t.set_header({"a", "metric"});
  t.add_row({"x", "1.00"});
  t.add_row({"yy", "2.50"});
  const std::string s = t.str();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("metric"), std::string::npos);
  EXPECT_NE(s.find("2.50"), std::string::npos);
  EXPECT_NE(s.find("+--"), std::string::npos);
}

TEST(Table, NumberFormatters) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::integer(12345), "12345");
  EXPECT_EQ(TextTable::percent(0.2951, 1), "29.5%");
  EXPECT_EQ(TextTable::sci(12345.0, 2), "1.23e+04");
}

TEST(Table, HandlesRaggedRows) {
  TextTable t;
  t.set_header({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_NO_THROW(t.str());
}

// ------------------------------------------------------------------ csv ----

TEST(Csv, WritesAndEscapes) {
  const std::string path = "/tmp/ldpc_csv_test.csv";
  {
    CsvWriter w(path);
    w.write_row({"a", "b,c", "say \"hi\""});
    w.write_row({"1", "2", "3"});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,\"b,c\",\"say \"\"hi\"\"\"");
  EXPECT_EQ(line2, "1,2,3");
  std::remove(path.c_str());
}

TEST(Csv, BadPathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv"), Error);
}

// ------------------------------------------------------------------ cli ----

TEST(Cli, ParsesSpaceAndEqualsForms) {
  const char* argv[] = {"prog", "--alpha", "3", "--beta=hello"};
  CliArgs args(4, argv, {"alpha", "beta"});
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get("beta", ""), "hello");
}

TEST(Cli, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv, {"alpha"});
  EXPECT_FALSE(args.has("alpha"));
  EXPECT_EQ(args.get_int("alpha", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 1.5), 1.5);
}

TEST(Cli, UnknownFlagThrows) {
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW(CliArgs(3, argv, {"alpha"}), Error);
}

TEST(Cli, MissingValueThrows) {
  const char* argv[] = {"prog", "--alpha"};
  EXPECT_THROW(CliArgs(2, argv, {"alpha"}), Error);
}

TEST(Cli, NonNumericIntThrows) {
  const char* argv[] = {"prog", "--alpha", "xyz"};
  CliArgs args(3, argv, {"alpha"});
  EXPECT_THROW(args.get_int("alpha", 0), Error);
}

TEST(Cli, ParsesDoubles) {
  const char* argv[] = {"prog", "--ebn0", "2.25"};
  CliArgs args(3, argv, {"ebn0"});
  EXPECT_DOUBLE_EQ(args.get_double("ebn0", 0.0), 2.25);
}

}  // namespace
}  // namespace ldpc
