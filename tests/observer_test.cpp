// Iteration-observer tests across all decoder families.
#include <gtest/gtest.h>

#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "codes/wimax.hpp"
#include "core/decoder_factory.hpp"
#include "util/rng.hpp"

namespace ldpc {
namespace {

std::vector<float> noisy_llr(const QCLdpcCode& code, float ebn0,
                             std::uint64_t seed) {
  const RuEncoder enc(code);
  Xoshiro256 rng(seed);
  BitVec info(code.k());
  for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
  const float variance = awgn_noise_variance(ebn0, code.rate());
  AwgnChannel ch(variance, seed + 1);
  return BpskModem::demodulate(
      ch.transmit(BpskModem::modulate(enc.encode(info))), variance);
}

class ObserverTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ObserverTest, SnapshotPerIteration) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 48);
  DecoderOptions opt;
  opt.max_iterations = 8;
  std::vector<IterationSnapshot> history;
  opt.observer = [&](const IterationSnapshot& s) { history.push_back(s); };
  auto dec = make_decoder(GetParam(), code, opt);
  const auto result = dec->decode(noisy_llr(code, 2.2F, 3));
  ASSERT_EQ(history.size(), result.iterations);
  for (std::size_t i = 0; i < history.size(); ++i) {
    EXPECT_EQ(history[i].iteration, i + 1);
    EXPECT_GE(history[i].mean_abs_llr, 0.0);
  }
}

TEST_P(ObserverTest, ConvergedDecodeEndsAtZeroSyndrome) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 48);
  DecoderOptions opt;
  opt.max_iterations = 15;
  std::vector<IterationSnapshot> history;
  opt.observer = [&](const IterationSnapshot& s) { history.push_back(s); };
  auto dec = make_decoder(GetParam(), code, opt);
  const auto result = dec->decode(noisy_llr(code, 3.5F, 4));
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(history.back().syndrome_weight, 0u);
}

TEST_P(ObserverTest, NoObserverNoCrash) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;  // observer empty
  auto dec = make_decoder(GetParam(), code, opt);
  EXPECT_NO_THROW(dec->decode(noisy_llr(code, 2.0F, 5)));
}

INSTANTIATE_TEST_SUITE_P(Decoders, ObserverTest,
                         ::testing::Values("flooding-bp", "flooding-minsum-norm",
                                           "layered-minsum-float",
                                           "layered-minsum-fixed"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(Observer, LayeredConvergesFasterBySyndrome) {
  // The convergence_dynamics example's claim as an invariant: area under
  // the layered syndrome trajectory is smaller than flooding's on the same
  // decodable frame.
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 48);
  const auto llr = noisy_llr(code, 2.4F, 7);
  auto trajectory = [&](const char* name) {
    DecoderOptions opt;
    opt.max_iterations = 20;
    std::vector<std::size_t> syndromes;
    opt.observer = [&](const IterationSnapshot& s) {
      syndromes.push_back(s.syndrome_weight);
    };
    auto dec = make_decoder(name, code, opt);
    dec->decode(llr);
    return syndromes;
  };
  const auto flooding = trajectory("flooding-minsum-norm");
  const auto layered = trajectory("layered-minsum-float");
  // Layered should converge in no more iterations...
  EXPECT_LE(layered.size(), flooding.size());
  // ...and be at-or-below flooding's syndrome weight from iteration 2 on.
  std::size_t ahead = 0;
  const std::size_t common = std::min(layered.size(), flooding.size());
  for (std::size_t i = 1; i < common; ++i) ahead += layered[i] <= flooding[i];
  EXPECT_GE(ahead, common - 2);
}

TEST(Observer, FlipsDecayAsDecodingConverges) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 48);
  DecoderOptions opt;
  opt.max_iterations = 15;
  std::vector<std::size_t> flips;
  opt.observer = [&](const IterationSnapshot& s) {
    flips.push_back(s.flipped_bits);
  };
  auto dec = make_decoder("layered-minsum-fixed", code, opt);
  const auto result = dec->decode(noisy_llr(code, 3.0F, 8));
  ASSERT_TRUE(result.converged);
  ASSERT_GE(flips.size(), 2u);
  // First snapshot counts the transition from the all-zero baseline (large);
  // the final iteration's flips must be tiny.
  EXPECT_GT(flips.front(), flips.back());
  EXPECT_LE(flips.back(), 5u);
}

}  // namespace
}  // namespace ldpc
