// Negative-path tests for the service wire codec: a corpus of malformed,
// truncated and bit-flipped frames is pushed through the FrameReader and
// body parsers, asserting every hostile input maps to a *typed* error (or a
// clean "need more bytes") — never a crash, hang, over-read, or unbounded
// buffer. Run under ASAN/UBSAN via scripts/check.sh, where "never over-read"
// is enforced by the tooling rather than by eyeball.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "service/wire.hpp"
#include "util/rng.hpp"

namespace ldpc::service {
namespace {

std::vector<std::uint8_t> valid_request_frame() {
  DecodeRequest request;
  request.request_id = 0x1122334455667788ULL;
  request.tenant_id = 7;
  request.codec = {0, 2, 96};
  request.deadline_us = 250000;
  request.llr = {1.5F, -2.25F, 0.0F, 8.0F};
  return encode_decode_request(request);
}

/// Feed a whole frame and expect exactly one parsed frame out.
FrameReader::Status feed(const std::vector<std::uint8_t>& bytes,
                         Frame* frame, FrameReader* reader) {
  reader->push(bytes);
  return reader->next(frame);
}

TEST(ServiceWire, DecodeRequestRoundTrip) {
  const std::vector<std::uint8_t> bytes = valid_request_frame();
  FrameReader reader;
  Frame frame;
  ASSERT_EQ(feed(bytes, &frame, &reader), FrameReader::Status::kFrame);
  ASSERT_EQ(frame.type, FrameType::kDecodeRequest);
  DecodeRequest out;
  ASSERT_EQ(parse_decode_request(frame.body, &out), WireErrorCode::kNone);
  EXPECT_EQ(out.request_id, 0x1122334455667788ULL);
  EXPECT_EQ(out.tenant_id, 7U);
  EXPECT_EQ(out.codec.standard, 0);
  EXPECT_EQ(out.codec.rate, 2);
  EXPECT_EQ(out.codec.z, 96);
  EXPECT_EQ(out.deadline_us, 250000U);
  ASSERT_EQ(out.llr.size(), 4U);
  EXPECT_EQ(out.llr[1], -2.25F);
  EXPECT_EQ(reader.next(&frame), FrameReader::Status::kNeedMore);
}

TEST(ServiceWire, ResponseAndErrorRoundTrip) {
  DecodeResponse response;
  response.request_id = 42;
  response.status = 0;
  response.flags = 1;
  response.iterations = 9;
  response.bit_count = 11;
  response.packed_bits = {0xA5, 0x05};
  FrameReader reader;
  Frame frame;
  ASSERT_EQ(feed(encode_decode_response(response), &frame, &reader),
            FrameReader::Status::kFrame);
  DecodeResponse out;
  ASSERT_EQ(parse_decode_response(frame.body, &out), WireErrorCode::kNone);
  EXPECT_EQ(out.request_id, 42U);
  EXPECT_EQ(out.bit_count, 11U);
  EXPECT_EQ(out.packed_bits, response.packed_bits);

  ErrorResponse error;
  error.request_id = 43;
  error.code = WireErrorCode::kRateLimited;
  error.detail = "slow down";
  ASSERT_EQ(feed(encode_error_response(error), &frame, &reader),
            FrameReader::Status::kFrame);
  ErrorResponse parsed;
  ASSERT_EQ(parse_error_response(frame.body, &parsed), WireErrorCode::kNone);
  EXPECT_EQ(parsed.code, WireErrorCode::kRateLimited);
  EXPECT_EQ(parsed.detail, "slow down");
}

TEST(ServiceWire, ByteAtATimeDelivery) {
  const std::vector<std::uint8_t> bytes = valid_request_frame();
  FrameReader reader;
  Frame frame;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    reader.push(std::span<const std::uint8_t>(&bytes[i], 1));
    ASSERT_EQ(reader.next(&frame), FrameReader::Status::kNeedMore)
        << "frame completed early at byte " << i;
  }
  reader.push(std::span<const std::uint8_t>(&bytes.back(), 1));
  ASSERT_EQ(reader.next(&frame), FrameReader::Status::kFrame);
}

TEST(ServiceWire, TruncationAtEveryBoundaryNeverCompletes) {
  // A frame cut anywhere is simply incomplete: the reader must wait, not
  // guess. (Body-level truncation needs a *well-framed* shorter frame and
  // is covered by the corpus below.)
  const std::vector<std::uint8_t> bytes = valid_request_frame();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameReader reader;
    Frame frame;
    reader.push(std::span<const std::uint8_t>(bytes.data(), cut));
    EXPECT_EQ(reader.next(&frame), FrameReader::Status::kNeedMore)
        << "cut at " << cut;
  }
}

struct CorpusCase {
  std::string name;
  std::vector<std::uint8_t> bytes;
  /// Expected frame-level outcome.
  FrameReader::Status frame_status = FrameReader::Status::kFrame;
  WireErrorCode fatal_code = WireErrorCode::kNone;  ///< when kFatal
  /// Expected body-parse outcome (decode-request parser) when kFrame.
  WireErrorCode parse_code = WireErrorCode::kNone;
};

/// Rewrites the payload length prefix after a surgery changed the size.
void fix_length(std::vector<std::uint8_t>* bytes) {
  const std::uint32_t payload_len =
      static_cast<std::uint32_t>(bytes->size() - 4);
  std::memcpy(bytes->data(), &payload_len, sizeof(payload_len));
}

std::vector<CorpusCase> build_corpus() {
  std::vector<CorpusCase> corpus;
  const std::vector<std::uint8_t> valid = valid_request_frame();

  // --- Fatal framing: stream-level garbage. ---
  for (const std::uint8_t flip : {std::uint8_t{0x01}, std::uint8_t{0x80},
                                  std::uint8_t{0xFF}}) {
    CorpusCase c;
    c.name = "magic0-xor-" + std::to_string(flip);
    c.bytes = valid;
    c.bytes[4] ^= flip;
    c.frame_status = FrameReader::Status::kFatal;
    c.fatal_code = WireErrorCode::kBadMagic;
    corpus.push_back(std::move(c));
  }
  {
    CorpusCase c;
    c.name = "magic1-corrupt";
    c.bytes = valid;
    c.bytes[5] = 'X';
    c.frame_status = FrameReader::Status::kFatal;
    c.fatal_code = WireErrorCode::kBadMagic;
    corpus.push_back(std::move(c));
  }
  for (const std::uint8_t version : {std::uint8_t{0}, std::uint8_t{2},
                                     std::uint8_t{0xFF}}) {
    CorpusCase c;
    c.name = "version-" + std::to_string(version);
    c.bytes = valid;
    c.bytes[6] = version;
    c.frame_status = FrameReader::Status::kFatal;
    c.fatal_code = WireErrorCode::kBadVersion;
    corpus.push_back(std::move(c));
  }
  for (const std::uint32_t len :
       {static_cast<std::uint32_t>(kMaxPayloadBytes + 1), 0x7FFFFFFFU,
        0xFFFFFFFFU, 0U, 1U, 3U}) {
    CorpusCase c;
    c.name = "length-prefix-" + std::to_string(len);
    c.bytes = valid;
    std::memcpy(c.bytes.data(), &len, sizeof(len));
    c.frame_status = FrameReader::Status::kFatal;
    c.fatal_code = WireErrorCode::kOversizedFrame;
    corpus.push_back(std::move(c));
  }
  {
    // Deterministic garbage: whatever the first four bytes decode to as a
    // length, the stream must die a typed death, not hang or crash.
    std::uint64_t state = 0x5EEDBEEFCAFEF00DULL;
    CorpusCase c;
    c.name = "pure-garbage";
    for (int i = 0; i < 64; ++i)
      c.bytes.push_back(static_cast<std::uint8_t>(splitmix64(state)));
    // Make the length prefix small enough to frame from 64 bytes, so the
    // garbage is judged on its (non-)magic rather than waiting forever.
    const std::uint32_t len = 16;
    std::memcpy(c.bytes.data(), &len, sizeof(len));
    c.frame_status = FrameReader::Status::kFatal;
    c.fatal_code = WireErrorCode::kBadMagic;
    corpus.push_back(std::move(c));
  }

  // --- Recoverable: well-framed frames whose body lies. ---
  // Body truncated at every field boundary (and a few odd offsets): the
  // frame is re-framed to the shorter size, so the *parser* must refuse.
  const std::size_t body_size = valid.size() - 8;  // minus prefix+header
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
        std::size_t{11}, std::size_t{12}, std::size_t{13}, std::size_t{14},
        std::size_t{16}, std::size_t{19}, std::size_t{20}, std::size_t{23},
        body_size - 1}) {
    CorpusCase c;
    c.name = "body-truncated-to-" + std::to_string(keep);
    c.bytes.assign(valid.begin(), valid.begin() + 8 + keep);
    fix_length(&c.bytes);
    c.parse_code = WireErrorCode::kTruncatedBody;
    corpus.push_back(std::move(c));
  }
  for (const std::size_t extra : {std::size_t{1}, std::size_t{4},
                                  std::size_t{17}}) {
    CorpusCase c;
    c.name = "body-trailing-" + std::to_string(extra);
    c.bytes = valid;
    c.bytes.insert(c.bytes.end(), extra, 0xEE);
    fix_length(&c.bytes);
    c.parse_code = WireErrorCode::kTrailingBytes;
    corpus.push_back(std::move(c));
  }
  {
    // llr_count lies upward: the declared count points past the body.
    CorpusCase c;
    c.name = "llr-count-inflated";
    c.bytes = valid;
    const std::uint32_t count = 5;  // body carries 4
    std::memcpy(c.bytes.data() + 8 + 20, &count, sizeof(count));
    c.parse_code = WireErrorCode::kTruncatedBody;
    corpus.push_back(std::move(c));
  }
  {
    CorpusCase c;
    c.name = "llr-count-absurd";
    c.bytes = valid;
    const std::uint32_t count = kMaxLlrCount + 1;
    std::memcpy(c.bytes.data() + 8 + 20, &count, sizeof(count));
    c.parse_code = WireErrorCode::kLlrCountMismatch;
    corpus.push_back(std::move(c));
  }
  {
    // llr_count lies downward: 3 declared, 4 floats present.
    CorpusCase c;
    c.name = "llr-count-deflated";
    c.bytes = valid;
    const std::uint32_t count = 3;
    std::memcpy(c.bytes.data() + 8 + 20, &count, sizeof(count));
    c.parse_code = WireErrorCode::kTrailingBytes;
    corpus.push_back(std::move(c));
  }
  const auto put_float = [](std::vector<std::uint8_t>* bytes,
                            std::size_t index, float value) {
    std::memcpy(bytes->data() + 8 + 24 + index * sizeof(float), &value,
                sizeof(value));
  };
  for (const float bad : {std::numeric_limits<float>::quiet_NaN(),
                          std::numeric_limits<float>::infinity(),
                          -std::numeric_limits<float>::infinity()}) {
    CorpusCase c;
    c.name = std::string("llr-nonfinite-") +
             (std::isnan(bad) ? "nan" : (bad > 0 ? "inf" : "-inf"));
    c.bytes = valid;
    put_float(&c.bytes, 2, bad);
    c.parse_code = WireErrorCode::kBadLlrValue;
    corpus.push_back(std::move(c));
  }

  // --- Bit flips across the whole body: every outcome must be one of the
  // --- typed refusals or a clean parse (a flipped LLR bit is still valid
  // --- data); asserted generically in the runner. ---
  std::uint64_t state = 0xB17F11B5ULL;
  for (int i = 0; i < 24; ++i) {
    CorpusCase c;
    c.bytes = valid;
    const std::size_t bit = splitmix64(state) % ((c.bytes.size() - 8) * 8);
    c.name = "bitflip-body-" + std::to_string(bit);
    c.bytes[8 + bit / 8] ^= static_cast<std::uint8_t>(1U << (bit % 8));
    // parse_code intentionally unset: the runner only asserts "typed or
    // clean", never a crash.
    c.parse_code = static_cast<WireErrorCode>(0xFFFF);  // sentinel: any
    corpus.push_back(std::move(c));
  }
  return corpus;
}

TEST(ServiceWire, MalformedCorpus) {
  const std::vector<CorpusCase> corpus = build_corpus();
  ASSERT_GE(corpus.size(), 50U) << "the corpus is meant to be ~50 cases";
  for (const CorpusCase& c : corpus) {
    SCOPED_TRACE(c.name);
    FrameReader reader;
    Frame frame;
    reader.push(c.bytes);
    const FrameReader::Status status = reader.next(&frame);
    ASSERT_EQ(status, c.frame_status);
    if (status == FrameReader::Status::kFatal) {
      EXPECT_EQ(reader.fatal_error(), c.fatal_code);
      // Latched: more input is refused, the stream stays dead.
      EXPECT_FALSE(reader.push(c.bytes));
      EXPECT_EQ(reader.next(&frame), FrameReader::Status::kFatal);
      continue;
    }
    DecodeRequest out;
    const WireErrorCode err = parse_decode_request(frame.body, &out);
    if (c.parse_code == static_cast<WireErrorCode>(0xFFFF)) {
      // Bit-flip cases: any typed outcome (or a clean parse) is correct;
      // reaching this line without a sanitizer report is the test.
      continue;
    }
    EXPECT_EQ(err, c.parse_code);
  }
}

TEST(ServiceWire, HugeLengthPrefixNeverBuffers) {
  // A hostile length prefix one byte under the cap is *valid*; the reader
  // may buffer at most what was actually sent, never the declared length.
  FrameReader reader;
  std::vector<std::uint8_t> bytes(4);
  const std::uint32_t len = static_cast<std::uint32_t>(kMaxPayloadBytes);
  std::memcpy(bytes.data(), &len, sizeof(len));
  reader.push(bytes);
  Frame frame;
  EXPECT_EQ(reader.next(&frame), FrameReader::Status::kNeedMore);
  EXPECT_LE(reader.buffered_bytes(), 4U);
}

TEST(ServiceWire, BackToBackFramesParseIndividually) {
  FrameReader reader;
  std::vector<std::uint8_t> stream;
  const auto ping = encode_ping(111);
  const auto request = valid_request_frame();
  const auto pong = encode_ping(222);
  stream.insert(stream.end(), ping.begin(), ping.end());
  stream.insert(stream.end(), request.begin(), request.end());
  stream.insert(stream.end(), pong.begin(), pong.end());
  reader.push(stream);
  Frame frame;
  ASSERT_EQ(reader.next(&frame), FrameReader::Status::kFrame);
  EXPECT_EQ(frame.type, FrameType::kPing);
  ASSERT_EQ(reader.next(&frame), FrameReader::Status::kFrame);
  EXPECT_EQ(frame.type, FrameType::kDecodeRequest);
  ASSERT_EQ(reader.next(&frame), FrameReader::Status::kFrame);
  std::uint64_t nonce = 0;
  ASSERT_EQ(parse_ping(frame.body, &nonce), WireErrorCode::kNone);
  EXPECT_EQ(nonce, 222U);
  EXPECT_EQ(reader.next(&frame), FrameReader::Status::kNeedMore);
}

TEST(ServiceWire, MidStreamCorruptionKillsOnlyAfterGoodFrames) {
  // Frame 1 valid, frame 2's magic corrupted: the reader must hand out
  // frame 1, then latch fatal on frame 2.
  FrameReader reader;
  std::vector<std::uint8_t> stream = encode_ping(7);
  std::vector<std::uint8_t> bad = valid_request_frame();
  bad[4] = 0x00;
  stream.insert(stream.end(), bad.begin(), bad.end());
  reader.push(stream);
  Frame frame;
  ASSERT_EQ(reader.next(&frame), FrameReader::Status::kFrame);
  EXPECT_EQ(frame.type, FrameType::kPing);
  ASSERT_EQ(reader.next(&frame), FrameReader::Status::kFatal);
  EXPECT_EQ(reader.fatal_error(), WireErrorCode::kBadMagic);
}

TEST(ServiceWire, PackUnpackRoundTrip) {
  BitVec bits(13);
  for (const std::size_t i : {0U, 2U, 3U, 7U, 8U, 12U}) bits.set(i, true);
  const std::vector<std::uint8_t> packed = pack_bits(bits);
  ASSERT_EQ(packed.size(), 2U);
  const BitVec back = unpack_bits(packed, 13);
  ASSERT_EQ(back.size(), 13U);
  for (std::size_t i = 0; i < 13; ++i) EXPECT_EQ(back.get(i), bits.get(i));
}

TEST(ServiceWire, ErrorDetailTruncatesInsteadOfOverflowing) {
  ErrorResponse error;
  error.request_id = 1;
  error.code = WireErrorCode::kInternal;
  error.detail = std::string(100000, 'x');
  const auto bytes = encode_error_response(error);
  FrameReader reader;
  Frame frame;
  ASSERT_EQ(feed(bytes, &frame, &reader), FrameReader::Status::kFrame);
  ErrorResponse parsed;
  ASSERT_EQ(parse_error_response(frame.body, &parsed), WireErrorCode::kNone);
  EXPECT_EQ(parsed.detail.size(), 0xFFFFU);
}

}  // namespace
}  // namespace ldpc::service
