// RTL generator tests: structural consistency of the emitted Verilog
// skeleton with the compiled hardware estimate and the code geometry.
#include <gtest/gtest.h>

#include "codes/wifi.hpp"
#include "codes/wimax.hpp"
#include "hls/rtl_gen.hpp"

namespace ldpc {
namespace {

std::size_t count_occurrences(const std::string& text, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size()))
    ++count;
  return count;
}

struct Generated {
  QCLdpcCode code = make_wimax_2304_half_rate();
  PicoCompiler pico{FixedFormat{8, 2}};

  std::string emit(ArchKind arch, double mhz = 400.0) {
    const auto est = pico.compile(code, arch, HardwareTarget{mhz, 96});
    return generate_verilog(code, est);
  }
};

TEST(RtlGen, ContainsAllExpectedModules) {
  Generated g;
  const std::string v = g.emit(ArchKind::kPerLayer);
  for (const char* module :
       {"module p_memory", "module r_memory", "module barrel_shifter",
        "module core1_dp", "module core2_dp", "module matrix_rom",
        "module ldpc_decoder_top"})
    EXPECT_NE(v.find(module), std::string::npos) << module;
  // Per-layer has neither scoreboard nor FIFO.
  EXPECT_EQ(v.find("module scoreboard"), std::string::npos);
  EXPECT_EQ(v.find("module q_fifo"), std::string::npos);
}

TEST(RtlGen, PipelinedAddsInterlockModules) {
  Generated g;
  const std::string v = g.emit(ArchKind::kTwoLayerPipelined);
  EXPECT_NE(v.find("module scoreboard"), std::string::npos);
  EXPECT_NE(v.find("module q_fifo"), std::string::npos);
}

TEST(RtlGen, ParametersMatchGeometry) {
  Generated g;
  const std::string v = g.emit(ArchKind::kPerLayer);
  EXPECT_NE(v.find("localparam Z       = 96;"), std::string::npos);
  EXPECT_NE(v.find("localparam W       = 8;"), std::string::npos);
  EXPECT_NE(v.find("localparam NB      = 24;"), std::string::npos);
  EXPECT_NE(v.find("localparam LAYERS  = 12;"), std::string::npos);
  EXPECT_NE(v.find("localparam SLOTS   = 76;"), std::string::npos);
  EXPECT_NE(v.find("localparam QDEPTH  = 7;"), std::string::npos);
}

TEST(RtlGen, EveryModuleHasMatchingEndmodule) {
  Generated g;
  for (ArchKind arch : {ArchKind::kPerLayer, ArchKind::kTwoLayerPipelined}) {
    const std::string v = g.emit(arch);
    EXPECT_EQ(count_occurrences(v, "\nmodule "),
              count_occurrences(v, "endmodule"));
  }
}

TEST(RtlGen, RomHasOneEntryPerCirculant) {
  Generated g;
  const std::string rom = generate_matrix_rom(g.code);
  EXPECT_EQ(count_occurrences(rom, "entry = 32'h"),
            g.code.base().nonzero_blocks());
  // Layer boundaries: exactly LAYERS entries carry the layer_end flag (bit
  // 31), i.e. packed value >= 0x80000000 — spot-check the last line.
  EXPECT_NE(rom.find("layer 11"), std::string::npos);
  EXPECT_EQ(rom.find("layer 12"), std::string::npos);
}

TEST(RtlGen, RomEntriesRoundTrip) {
  // Decode the packed fields back and compare against the code structure.
  Generated g;
  const std::string rom = generate_matrix_rom(g.code);
  std::istringstream is(rom);
  std::string line;
  std::size_t index = 0;
  std::vector<QCLdpcCode::LayerBlock> flat;
  for (const auto& layer : g.code.layers())
    for (const auto& blk : layer) flat.push_back(blk);
  while (std::getline(is, line)) {
    const auto hex_pos = line.find("32'h");
    if (hex_pos == std::string::npos) continue;
    const unsigned long packed =
        std::stoul(line.substr(hex_pos + 4), nullptr, 16);
    ASSERT_LT(index, flat.size());
    EXPECT_EQ((packed >> 21) & 0x3FF, flat[index].block_col) << index;
    EXPECT_EQ((packed >> 9) & 0xFFF, flat[index].shift) << index;
    EXPECT_EQ(packed & 0x1FF, flat[index].r_slot) << index;
    ++index;
  }
  EXPECT_EQ(index, flat.size());
}

TEST(RtlGen, HeaderDocumentsDesignPoint) {
  Generated g;
  const std::string v = g.emit(ArchKind::kTwoLayerPipelined, 300.0);
  EXPECT_NE(v.find("wimax-1/2"), std::string::npos);
  EXPECT_NE(v.find("two-layer-pipelined"), std::string::npos);
  EXPECT_NE(v.find("300"), std::string::npos);
}

TEST(RtlGen, PipelineDepthsAnnotated) {
  Generated g;
  const auto est = g.pico.compile(g.code, ArchKind::kTwoLayerPipelined,
                                  HardwareTarget{400.0, 96});
  const std::string v = generate_verilog(g.code, est);
  EXPECT_NE(v.find("pipelined to " + std::to_string(est.core1_latency)),
            std::string::npos);
  EXPECT_NE(v.find("pipelined to " + std::to_string(est.core2_latency)),
            std::string::npos);
}

TEST(RtlGen, WorksForOtherGeometries) {
  const auto code = make_wifi_648_half_rate();
  const PicoCompiler pico(FixedFormat{6, 1});
  const auto est =
      pico.compile(code, ArchKind::kPerLayer, HardwareTarget{200.0, 27});
  const std::string v = generate_verilog(code, est);
  EXPECT_NE(v.find("localparam Z       = 27;"), std::string::npos);
  EXPECT_NE(v.find("localparam W       = 6;"), std::string::npos);
  EXPECT_EQ(count_occurrences(v, "\nmodule "), count_occurrences(v, "endmodule"));
}

TEST(RtlGen, DeterministicOutput) {
  Generated g;
  EXPECT_EQ(g.emit(ArchKind::kPerLayer), g.emit(ArchKind::kPerLayer));
}

}  // namespace
}  // namespace ldpc
