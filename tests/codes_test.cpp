// Tests for the code substrate: base matrices, standard tables, scaling
// rules, QC expansion and Tanner-graph invariants.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "codes/alist.hpp"
#include "codes/base_matrix.hpp"
#include "codes/qc_code.hpp"
#include "codes/random_qc.hpp"
#include "codes/wifi.hpp"
#include "codes/wimax.hpp"

namespace ldpc {
namespace {

// ----------------------------------------------------------- BaseMatrix ----

TEST(BaseMatrix, ConstructionValidatesEntryCount) {
  EXPECT_THROW(BaseMatrix(2, 3, {0, 1, 2}, 4, "bad"), Error);
}

TEST(BaseMatrix, ConstructionValidatesShiftRange) {
  EXPECT_THROW(BaseMatrix(1, 2, {0, 4}, 4, "bad"), Error);   // shift == z
  EXPECT_THROW(BaseMatrix(1, 2, {0, -2}, 4, "bad"), Error);  // below -1
}

TEST(BaseMatrix, DegreeAccounting) {
  BaseMatrix b(2, 3, {0, -1, 2, 1, 1, -1}, 4, "t");
  EXPECT_EQ(b.row_degree(0), 2u);
  EXPECT_EQ(b.row_degree(1), 2u);
  EXPECT_EQ(b.col_degree(0), 2u);
  EXPECT_EQ(b.col_degree(1), 1u);
  EXPECT_EQ(b.col_degree(2), 1u);
  EXPECT_EQ(b.nonzero_blocks(), 4u);
  EXPECT_EQ(b.max_row_degree(), 2u);
}

TEST(BaseMatrix, RowSupportListsColumnsInOrder) {
  BaseMatrix b(1, 4, {-1, 3, -1, 0}, 4, "t");
  const auto support = b.row_support(0);
  ASSERT_EQ(support.size(), 2u);
  EXPECT_EQ(support[0], 1u);
  EXPECT_EQ(support[1], 3u);
}

TEST(BaseMatrix, FloorScalingRule) {
  BaseMatrix b(1, 2, {95, 0}, 96, "t");
  const auto s = b.scaled_to(24, /*scale_mod=*/false);
  EXPECT_EQ(s.at(0, 0), 95 * 24 / 96);
  EXPECT_EQ(s.at(0, 1), 0);
  EXPECT_EQ(s.design_z(), 24);
}

TEST(BaseMatrix, ModScalingRule) {
  BaseMatrix b(1, 2, {50, 0}, 96, "t");
  const auto s = b.scaled_to(24, /*scale_mod=*/true);
  EXPECT_EQ(s.at(0, 0), 50 % 24);
}

TEST(BaseMatrix, ScalingPreservesZeroBlocks) {
  BaseMatrix b(1, 3, {-1, 10, -1}, 96, "t");
  for (bool mod : {false, true}) {
    const auto s = b.scaled_to(48, mod);
    EXPECT_TRUE(s.is_zero_block(0, 0));
    EXPECT_FALSE(s.is_zero_block(0, 1));
    EXPECT_TRUE(s.is_zero_block(0, 2));
  }
}

TEST(BaseMatrix, UpscalingThrows) {
  BaseMatrix b(1, 1, {0}, 24, "t");
  EXPECT_THROW(b.scaled_to(48, false), Error);
}

// --------------------------------------------------------- WiMAX tables ----

class WimaxRateTest : public ::testing::TestWithParam<WimaxRate> {};

TEST_P(WimaxRateTest, GeometryMatchesStandard) {
  const BaseMatrix& b = wimax_base_matrix(GetParam());
  EXPECT_EQ(b.cols(), 24u);
  EXPECT_EQ(b.design_z(), 96);
  switch (GetParam()) {
    case WimaxRate::kRate1_2:
      EXPECT_EQ(b.rows(), 12u);
      break;
    case WimaxRate::kRate2_3A:
    case WimaxRate::kRate2_3B:
      EXPECT_EQ(b.rows(), 8u);
      break;
    case WimaxRate::kRate3_4A:
    case WimaxRate::kRate3_4B:
      EXPECT_EQ(b.rows(), 6u);
      break;
    case WimaxRate::kRate5_6:
      EXPECT_EQ(b.rows(), 4u);
      break;
  }
}

TEST_P(WimaxRateTest, ParityPartIsEncodable) {
  // Weight-3 first parity column with two equal shifts; dual diagonal after.
  const BaseMatrix& b = wimax_base_matrix(GetParam());
  const std::size_t mb = b.rows();
  const std::size_t kb = b.cols() - mb;
  EXPECT_EQ(b.col_degree(kb), 3u);
  std::vector<int> shifts;
  for (std::size_t r = 0; r < mb; ++r)
    if (!b.is_zero_block(r, kb)) shifts.push_back(b.at(r, kb));
  ASSERT_EQ(shifts.size(), 3u);
  EXPECT_TRUE(shifts[0] == shifts[2] || shifts[0] == shifts[1] ||
              shifts[1] == shifts[2]);
  for (std::size_t j = 1; j < mb; ++j) {
    EXPECT_EQ(b.col_degree(kb + j), 2u) << "col " << kb + j;
    EXPECT_EQ(b.at(j - 1, kb + j), 0);
    EXPECT_EQ(b.at(j, kb + j), 0);
  }
}

TEST_P(WimaxRateTest, EveryVariableNodeIsConnected) {
  const BaseMatrix& b = wimax_base_matrix(GetParam());
  for (std::size_t c = 0; c < b.cols(); ++c)
    EXPECT_GE(b.col_degree(c), 1u) << "col " << c;
}

TEST_P(WimaxRateTest, EveryCheckRowHasMinimumDegree) {
  const BaseMatrix& b = wimax_base_matrix(GetParam());
  for (std::size_t r = 0; r < b.rows(); ++r)
    EXPECT_GE(b.row_degree(r), 2u) << "row " << r;
}

TEST_P(WimaxRateTest, AllZValuesExpand) {
  for (int z : wimax_z_values()) {
    const QCLdpcCode code = make_wimax_code(GetParam(), z);
    EXPECT_EQ(code.n(), 24u * static_cast<std::size_t>(z));
    EXPECT_EQ(code.z(), z);
    EXPECT_EQ(code.num_layers(), wimax_base_matrix(GetParam()).rows());
  }
}

TEST_P(WimaxRateTest, RateMatchesFamily) {
  const QCLdpcCode code = make_wimax_code(GetParam(), 96);
  const double r = code.rate();
  switch (GetParam()) {
    case WimaxRate::kRate1_2:  EXPECT_DOUBLE_EQ(r, 0.5); break;
    case WimaxRate::kRate2_3A:
    case WimaxRate::kRate2_3B: EXPECT_NEAR(r, 2.0 / 3.0, 1e-12); break;
    case WimaxRate::kRate3_4A:
    case WimaxRate::kRate3_4B: EXPECT_DOUBLE_EQ(r, 0.75); break;
    case WimaxRate::kRate5_6:  EXPECT_NEAR(r, 5.0 / 6.0, 1e-12); break;
  }
}

INSTANTIATE_TEST_SUITE_P(AllRates, WimaxRateTest,
                         ::testing::ValuesIn(all_wimax_rates()),
                         [](const auto& info) {
                           std::string n = wimax_rate_name(info.param);
                           for (char& c : n)
                             if (c == '-' || c == '/') c = '_';
                           return n;
                         });

TEST(Wimax, InvalidZRejected) {
  EXPECT_THROW(make_wimax_code(WimaxRate::kRate1_2, 25), Error);
  EXPECT_THROW(make_wimax_code(WimaxRate::kRate1_2, 100), Error);
  EXPECT_THROW(make_wimax_code(WimaxRate::kRate1_2, 0), Error);
}

TEST(Wimax, ZValueListIsTheStandardSet) {
  const auto& zs = wimax_z_values();
  EXPECT_EQ(zs.size(), 19u);
  EXPECT_EQ(zs.front(), 24);
  EXPECT_EQ(zs.back(), 96);
  for (std::size_t i = 1; i < zs.size(); ++i) EXPECT_EQ(zs[i] - zs[i - 1], 4);
}

TEST(Wimax, CaseStudyCodeIs2304Half) {
  const auto code = make_wimax_2304_half_rate();
  EXPECT_EQ(code.n(), 2304u);
  EXPECT_EQ(code.k(), 1152u);
  EXPECT_EQ(code.z(), 96);
  EXPECT_EQ(code.num_layers(), 12u);
}

TEST(Wimax, HalfRateCirculantCountMatchesPaper) {
  // The paper's R memory sizes one slot per non-zero circulant; the
  // rate-1/2 code has 76 and the Q FIFO depth (max row degree) is 7.
  const BaseMatrix& b = wimax_base_matrix(WimaxRate::kRate1_2);
  EXPECT_EQ(b.nonzero_blocks(), 76u);
  EXPECT_EQ(b.max_row_degree(), 7u);
}

TEST(Wimax, MaxRSlotsCoversAllFamilies) {
  const std::size_t slots = wimax_max_r_slots();
  EXPECT_GE(slots, 76u);
  for (WimaxRate rate : all_wimax_rates())
    EXPECT_LE(wimax_base_matrix(rate).nonzero_blocks(), slots);
  // The paper provisions 84 slots; our tables require a close count.
  EXPECT_NEAR(static_cast<double>(slots), 84.0, 6.0);
}

TEST(Wimax, OnlyRate23AUsesModScaling) {
  for (WimaxRate rate : all_wimax_rates())
    EXPECT_EQ(wimax_uses_mod_scaling(rate), rate == WimaxRate::kRate2_3A);
}

// ---------------------------------------------------------- WiFi tables ----

TEST(Wifi, Geometry648) {
  const auto code = make_wifi_648_half_rate();
  EXPECT_EQ(code.n(), 648u);
  EXPECT_EQ(code.k(), 324u);
  EXPECT_EQ(code.z(), 27);
}

TEST(Wifi, Geometry1944) {
  const auto code = make_wifi_1944_half_rate();
  EXPECT_EQ(code.n(), 1944u);
  EXPECT_EQ(code.k(), 972u);
  EXPECT_EQ(code.z(), 81);
}

TEST(Wifi, ParityStructureEncodable) {
  for (const QCLdpcCode& code :
       {make_wifi_648_half_rate(), make_wifi_1944_half_rate()}) {
    const BaseMatrix& b = code.base();
    const std::size_t kb = b.cols() - b.rows();
    EXPECT_EQ(b.col_degree(kb), 3u);
    for (std::size_t j = 1; j < b.rows(); ++j)
      EXPECT_EQ(b.col_degree(kb + j), 2u);
  }
}

// ------------------------------------------------------------ QCLdpcCode ----

TEST(QcCode, ExpansionProducesCorrectDimensions) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 48);
  EXPECT_EQ(code.n(), 1152u);
  EXPECT_EQ(code.m(), 576u);
  EXPECT_EQ(code.check_adjacency().size(), code.m());
  EXPECT_EQ(code.var_adjacency().size(), code.n());
}

TEST(QcCode, CheckDegreesMatchBaseRowDegrees) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto z = static_cast<std::size_t>(code.z());
  for (std::size_t l = 0; l < code.num_layers(); ++l) {
    const std::size_t deg = code.base().row_degree(l);
    for (std::size_t r = 0; r < z; ++r)
      EXPECT_EQ(code.check_adjacency()[l * z + r].size(), deg);
  }
}

TEST(QcCode, VariableDegreesMatchBaseColumnDegrees) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto z = static_cast<std::size_t>(code.z());
  for (std::size_t c = 0; c < code.base().cols(); ++c) {
    const std::size_t deg = code.base().col_degree(c);
    for (std::size_t r = 0; r < z; ++r)
      EXPECT_EQ(code.var_adjacency()[c * z + r].size(), deg) << "col " << c;
  }
}

TEST(QcCode, EdgeCountEqualsCirculantsTimesZ) {
  const auto code = make_wimax_code(WimaxRate::kRate2_3B, 48);
  EXPECT_EQ(code.num_edges(),
            code.base().nonzero_blocks() * static_cast<std::size_t>(code.z()));
}

TEST(QcCode, CirculantConnectivityIsAPermutation) {
  // Within one circulant every check row connects to a distinct variable.
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto z = static_cast<std::size_t>(code.z());
  for (const auto& layer : code.layers()) {
    for (const auto& blk : layer) {
      std::set<std::uint32_t> vars;
      for (std::size_t r = 0; r < z; ++r)
        vars.insert(static_cast<std::uint32_t>(blk.block_col * z +
                                               (r + blk.shift) % z));
      EXPECT_EQ(vars.size(), z);
      EXPECT_EQ(*vars.begin(), blk.block_col * z);
    }
  }
}

TEST(QcCode, RSlotsAreDenselyNumbered) {
  const auto code = make_wimax_code(WimaxRate::kRate3_4A, 96);
  std::set<std::uint32_t> slots;
  for (const auto& layer : code.layers())
    for (const auto& blk : layer) slots.insert(blk.r_slot);
  EXPECT_EQ(slots.size(), code.base().nonzero_blocks());
  EXPECT_EQ(*slots.rbegin(), code.base().nonzero_blocks() - 1);
}

TEST(QcCode, VarEdgesAreConsistentWithCheckAdjacency) {
  const auto code = make_wimax_code(WimaxRate::kRate5_6, 24);
  // Each variable's edge list must point back at it.
  std::vector<std::uint32_t> edge_to_var(code.num_edges());
  for (std::size_t c = 0; c < code.m(); ++c)
    for (std::size_t p = 0; p < code.check_adjacency()[c].size(); ++p)
      edge_to_var[code.edge_index(c, p)] = code.check_adjacency()[c][p];
  for (std::size_t v = 0; v < code.n(); ++v)
    for (std::uint32_t e : code.var_edges()[v]) EXPECT_EQ(edge_to_var[e], v);
}

TEST(QcCode, AllZeroWordSatisfiesParity) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  BitVec zero(code.n());
  EXPECT_TRUE(code.parity_ok(zero));
  EXPECT_EQ(code.syndrome_weight(zero), 0u);
}

TEST(QcCode, SingleBitFlipBreaksParity) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  BitVec word(code.n());
  word.set(17, true);
  EXPECT_FALSE(code.parity_ok(word));
  EXPECT_EQ(code.syndrome_weight(word), code.var_adjacency()[17].size());
}

TEST(QcCode, ParityWordLengthChecked) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  BitVec wrong(code.n() - 1);
  EXPECT_THROW(code.parity_ok(wrong), Error);
}

// --------------------------------------------------------- random codes ----

TEST(RandomQc, GeneratesRequestedGeometry) {
  RandomQcConfig cfg;
  cfg.block_rows = 5;
  cfg.block_cols = 15;
  cfg.z = 8;
  cfg.info_row_degree = 4;
  const auto code = make_random_qc_code(cfg);
  EXPECT_EQ(code.n(), 15u * 8u);
  EXPECT_EQ(code.m(), 5u * 8u);
  EXPECT_EQ(code.num_layers(), 5u);
}

TEST(RandomQc, DeterministicForSeed) {
  RandomQcConfig cfg;
  cfg.seed = 99;
  const auto a = make_random_qc_code(cfg);
  const auto b = make_random_qc_code(cfg);
  for (std::size_t r = 0; r < a.base().rows(); ++r)
    for (std::size_t c = 0; c < a.base().cols(); ++c)
      EXPECT_EQ(a.base().at(r, c), b.base().at(r, c));
}

TEST(RandomQc, DifferentSeedsDiffer) {
  RandomQcConfig a_cfg, b_cfg;
  a_cfg.seed = 1;
  b_cfg.seed = 2;
  const auto a = make_random_qc_code(a_cfg);
  const auto b = make_random_qc_code(b_cfg);
  int diff = 0;
  for (std::size_t r = 0; r < a.base().rows(); ++r)
    for (std::size_t c = 0; c < a.base().cols(); ++c)
      diff += a.base().at(r, c) != b.base().at(r, c);
  EXPECT_GT(diff, 0);
}

TEST(RandomQc, EveryInfoColumnConnected) {
  RandomQcConfig cfg;
  cfg.block_rows = 3;
  cfg.block_cols = 20;
  cfg.info_row_degree = 2;  // sparse: forces the patch-up path
  const auto code = make_random_qc_code(cfg);
  for (std::size_t c = 0; c < code.base().cols(); ++c)
    EXPECT_GE(code.base().col_degree(c), 1u);
}

// ------------------------------------------------- malformed alist input ----
//
// read_alist must reject malformed matrices with a recoverable
// AlistParseError instead of crashing, allocating unbounded memory, or
// importing a silently wrong code. The baseline text is a valid 2 x 4
// matrix (rows {1,2} and {3,4}); each test breaks one property.

namespace {
// N M / max degrees / col degrees / row degrees / col lists / row lists.
const char* kValidAlist =
    "4 2\n1 2\n1 1 1 1\n2 2\n1\n1\n2\n2\n1 2\n3 4\n";
}  // namespace

TEST(AlistErrors, BaselineTextIsValid) {
  const auto code = alist_from_string(kValidAlist);
  EXPECT_EQ(code.n(), 4u);
  EXPECT_EQ(code.m(), 2u);
}

TEST(AlistErrors, NegativeDimensions) {
  try {
    alist_from_string("-4 2\n1 2\n");
    FAIL() << "expected AlistParseError";
  } catch (const AlistParseError& e) {
    EXPECT_EQ(e.token_index(), 2);  // detected after reading N and M
    EXPECT_NE(e.reason().find("N > M > 0"), std::string::npos);
  }
}

TEST(AlistErrors, RowCountNotBelowColumnCount) {
  EXPECT_THROW(alist_from_string("4 8\n2 2\n"), AlistParseError);
  EXPECT_THROW(alist_from_string("4 4\n2 2\n"), AlistParseError);
}

TEST(AlistErrors, HugeDimensionsRejectedBeforeAllocation) {
  // 200000 x 100000 would be a 20-billion-entry dense matrix; the reader
  // must refuse from the header alone.
  EXPECT_THROW(alist_from_string("200000 100000\n3 6\n"), AlistParseError);
}

TEST(AlistErrors, DegreeExceedsDeclaredMaximum) {
  EXPECT_THROW(alist_from_string("4 2\n1 2\n1 3 1 1\n2 2\n"), AlistParseError);
  EXPECT_THROW(alist_from_string("4 2\n1 2\n1 1 1 1\n2 9\n"), AlistParseError);
}

TEST(AlistErrors, MismatchedDegreeSums) {
  // Column degrees sum to 4 but row degrees to 3: the two adjacency views
  // cannot describe the same matrix.
  EXPECT_THROW(alist_from_string("4 2\n1 2\n1 1 1 1\n2 1\n"), AlistParseError);
}

TEST(AlistErrors, OutOfRangeRowIndex) {
  // Column 0 claims membership in row 5 of a 2-row matrix.
  EXPECT_THROW(
      alist_from_string("4 2\n1 2\n1 1 1 1\n2 2\n5\n1\n2\n2\n1 2\n3 4\n"),
      AlistParseError);
}

TEST(AlistErrors, OutOfRangeColumnIndex) {
  EXPECT_THROW(
      alist_from_string("4 2\n1 2\n1 1 1 1\n2 2\n1\n1\n2\n2\n1 9\n3 4\n"),
      AlistParseError);
}

TEST(AlistErrors, DuplicateColumnIndexInRow) {
  EXPECT_THROW(
      alist_from_string("4 2\n1 2\n1 1 1 1\n2 2\n1\n1\n2\n2\n1 1\n3 4\n"),
      AlistParseError);
}

TEST(AlistErrors, MismatchedAdjacencyViews) {
  // Degree sums agree but column 0 names row 2 while the row lists place
  // the entry elsewhere.
  EXPECT_THROW(
      alist_from_string("4 2\n1 2\n1 1 1 1\n2 2\n2\n1\n2\n2\n1 2\n3 4\n"),
      AlistParseError);
}

TEST(AlistErrors, TruncatedStream) {
  const std::string full = kValidAlist;
  // Every proper prefix that ends mid-stream must fail cleanly. Check a few
  // cut points: after the header, mid-degrees, mid-lists.
  for (const std::size_t cut :
       {std::size_t{3}, std::size_t{9}, std::size_t{16}, std::size_t{24},
        full.size() - 3}) {
    try {
      alist_from_string(full.substr(0, cut));
      FAIL() << "expected AlistParseError at cut " << cut;
    } catch (const AlistParseError& e) {
      EXPECT_NE(e.reason().find("end of input"), std::string::npos)
          << "cut " << cut;
    }
  }
}

TEST(AlistErrors, NonIntegerToken) {
  EXPECT_THROW(alist_from_string("four 2\n1 2\n"), AlistParseError);
}

TEST(AlistErrors, IsRecoverable) {
  // A failed parse must not poison subsequent parses (no global state).
  EXPECT_THROW(alist_from_string("4 2\n1 2\n1 3 1 1\n2 2\n"), AlistParseError);
  const auto code = alist_from_string(kValidAlist);
  EXPECT_EQ(code.n(), 4u);
}

TEST(RandomQc, RejectsImpossibleConfigs) {
  RandomQcConfig cfg;
  cfg.block_rows = 2;  // weight-3 column needs >= 3 layers
  EXPECT_THROW(make_random_qc_code(cfg), Error);
  cfg = RandomQcConfig{};
  cfg.info_row_degree = 100;
  EXPECT_THROW(make_random_qc_code(cfg), Error);
  cfg = RandomQcConfig{};
  cfg.block_cols = 4;
  cfg.block_rows = 4;
  EXPECT_THROW(make_random_qc_code(cfg), Error);
}

}  // namespace
}  // namespace ldpc
