// Channel substrate tests: modulation mappings, LLR signs and scaling, AWGN
// statistics, and the Monte-Carlo BER runner.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/awgn.hpp"
#include "channel/ber_runner.hpp"
#include "channel/modem.hpp"
#include "codes/wimax.hpp"
#include "core/decoder_factory.hpp"
#include "util/stats.hpp"

namespace ldpc {
namespace {

// ---------------------------------------------------------------- modem ----

TEST(Bpsk, MapsBitZeroToPlusOne) {
  BitVec bits(4);
  bits.set(1, true);
  bits.set(3, true);
  const auto s = BpskModem::modulate(bits);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_FLOAT_EQ(s[0], 1.0F);
  EXPECT_FLOAT_EQ(s[1], -1.0F);
  EXPECT_FLOAT_EQ(s[2], 1.0F);
  EXPECT_FLOAT_EQ(s[3], -1.0F);
}

TEST(Bpsk, LlrScalingIsTwoOverVariance) {
  const std::vector<float> y = {0.5F, -1.5F};
  const auto llr = BpskModem::demodulate(y, 0.25F);
  EXPECT_FLOAT_EQ(llr[0], 2.0F / 0.25F * 0.5F);
  EXPECT_FLOAT_EQ(llr[1], 2.0F / 0.25F * -1.5F);
}

TEST(Bpsk, NoiselessLlrSignsRecoverBits) {
  BitVec bits(64);
  for (std::size_t i = 0; i < 64; i += 3) bits.set(i, true);
  const auto llr = BpskModem::demodulate(BpskModem::modulate(bits), 1.0F);
  for (std::size_t i = 0; i < 64; ++i)
    EXPECT_EQ(llr[i] < 0.0F, bits.get(i)) << i;
}

TEST(Bpsk, ZeroVarianceRejected) {
  EXPECT_THROW(BpskModem::demodulate({1.0F}, 0.0F), Error);
}

TEST(Qpsk, UnitSymbolEnergy) {
  BitVec bits(8);
  bits.set(0, true);
  bits.set(5, true);
  const auto iq = QpskModem::modulate(bits);
  ASSERT_EQ(iq.size(), 8u);
  for (std::size_t s = 0; s < 4; ++s) {
    const float e = iq[2 * s] * iq[2 * s] + iq[2 * s + 1] * iq[2 * s + 1];
    EXPECT_NEAR(e, 1.0F, 1e-6);
  }
}

TEST(Qpsk, NoiselessRoundTrip) {
  BitVec bits(50);  // odd length exercises padding
  for (std::size_t i = 0; i < 50; i += 7) bits.set(i, true);
  const auto iq = QpskModem::modulate(bits);
  const auto llr = QpskModem::demodulate(iq, 0.5F, 50);
  for (std::size_t i = 0; i < 50; ++i)
    EXPECT_EQ(llr[i] < 0.0F, bits.get(i)) << i;
}

TEST(Qpsk, OddLengthPadsCleanly) {
  BitVec bits(3);
  bits.set(2, true);
  const auto iq = QpskModem::modulate(bits);
  EXPECT_EQ(iq.size(), 4u);  // 2 symbols
  const auto llr = QpskModem::demodulate(iq, 1.0F, 3);
  EXPECT_EQ(llr.size(), 3u);
}

// ----------------------------------------------------------------- awgn ----

TEST(Awgn, NoiseVarianceFormula) {
  // At Eb/N0 = 0 dB, rate 1/2, BPSK: sigma^2 = 1 / (2 * 0.5 * 1) = 1.
  EXPECT_NEAR(awgn_noise_variance(0.0F, 0.5), 1.0F, 1e-6);
  // +3 dB halves the variance (within rounding of 10^0.3).
  EXPECT_NEAR(awgn_noise_variance(3.0F, 0.5), 0.5012F, 1e-3);
  // Higher rate -> less redundancy -> smaller sigma^2 at equal Eb/N0.
  EXPECT_LT(awgn_noise_variance(2.0F, 0.75), awgn_noise_variance(2.0F, 0.5));
}

TEST(Awgn, InvalidParametersRejected) {
  EXPECT_THROW(awgn_noise_variance(1.0F, 0.0), Error);
  EXPECT_THROW(awgn_noise_variance(1.0F, 1.0), Error);
  EXPECT_THROW(AwgnChannel(0.0F), Error);
}

TEST(Awgn, NoiseStatisticsMatchConfiguredVariance) {
  const float variance = 0.64F;
  AwgnChannel ch(variance, 11);
  const std::vector<float> zeros(50000, 0.0F);
  const auto noisy = ch.transmit(zeros);
  RunningStats s;
  for (float v : noisy) s.add(v);
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.variance(), variance, 0.02);
}

TEST(Awgn, DeterministicForSeed) {
  AwgnChannel a(1.0F, 5), b(1.0F, 5);
  const std::vector<float> x = {1.0F, -1.0F, 1.0F};
  EXPECT_EQ(a.transmit(x), b.transmit(x));
}

TEST(Awgn, MeanFollowsInput) {
  AwgnChannel ch(0.25F, 12);
  const std::vector<float> ones(20000, 1.0F);
  const auto noisy = ch.transmit(ones);
  RunningStats s;
  for (float v : noisy) s.add(v);
  EXPECT_NEAR(s.mean(), 1.0, 0.02);
}

// ------------------------------------------------------------ BER runner ----

TEST(BerRunner, HighSnrIsErrorFree) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  BerConfig cfg;
  cfg.ebn0_db = {8.0F};
  cfg.max_frames = 30;
  cfg.min_frames = 30;
  cfg.num_workers = 2;
  DecoderOptions opt;
  BerRunner runner(
      code, [&] { return make_decoder("layered-minsum-fixed", code, opt); },
      cfg);
  const auto points = runner.run();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].frames, 30u);
  EXPECT_EQ(points[0].bit_errors, 0u);
  EXPECT_EQ(points[0].fer(), 0.0);
}

TEST(BerRunner, VeryLowSnrMostlyFails) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  BerConfig cfg;
  cfg.ebn0_db = {-4.0F};
  cfg.max_frames = 20;
  cfg.min_frames = 5;
  cfg.target_frame_errors = 5;
  DecoderOptions opt;
  opt.max_iterations = 5;
  BerRunner runner(
      code, [&] { return make_decoder("layered-minsum-fixed", code, opt); },
      cfg);
  const auto points = runner.run();
  EXPECT_GT(points[0].fer(), 0.5);
  EXPECT_GT(points[0].avg_iterations(), 4.0);  // never converges early
}

TEST(BerFrameSeeds, ThreeStreamsArePairwiseDistinct) {
  // Regression: the runner used to seed the info, AWGN, and Rayleigh RNGs
  // with the *same* splitmix64 output, correlating the noise with the data.
  for (std::uint64_t seed : {0ULL, 1ULL, 77ULL, 2009ULL}) {
    for (std::size_t point = 0; point < 4; ++point) {
      for (std::size_t frame = 0; frame < 16; ++frame) {
        const FrameSeeds s = ber_frame_seeds(seed, point, frame);
        EXPECT_NE(s.info, s.awgn);
        EXPECT_NE(s.info, s.rayleigh);
        EXPECT_NE(s.awgn, s.rayleigh);
      }
    }
  }
}

TEST(BerFrameSeeds, KeyedByFrameAndPoint) {
  const FrameSeeds a = ber_frame_seeds(77, 0, 0);
  const FrameSeeds b = ber_frame_seeds(77, 0, 1);
  const FrameSeeds c = ber_frame_seeds(77, 1, 0);
  const FrameSeeds d = ber_frame_seeds(78, 0, 0);
  EXPECT_NE(a.info, b.info);
  EXPECT_NE(a.info, c.info);
  EXPECT_NE(a.info, d.info);
  EXPECT_NE(a.awgn, b.awgn);
  EXPECT_NE(a.rayleigh, b.rayleigh);
}

TEST(BerRunner, PointMovedOffCorrelatedGoldenValue) {
  // Golden counts produced by the pre-fix runner (identical seeds for all
  // three RNG streams, worker-keyed derivation) for this exact
  // configuration: bit_errors = 3210, frame_errors = 165. The decorrelated
  // seeding must land elsewhere; the error *rates* stay in the same regime.
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  BerConfig cfg;
  cfg.ebn0_db = {1.0F};
  cfg.max_frames = 200;
  cfg.min_frames = 200;
  cfg.num_workers = 1;
  cfg.seed = 77;
  DecoderOptions opt;
  BerRunner runner(
      code, [&] { return make_decoder("layered-minsum-fixed", code, opt); },
      cfg);
  const auto p = runner.run()[0];
  ASSERT_EQ(p.frames, 200u);
  EXPECT_NE(p.bit_errors, 3210u);
  EXPECT_GT(p.frame_errors, 100u);  // still a high-FER operating point
  EXPECT_LT(p.frame_errors, 200u);
}

TEST(BerRunner, BitIdenticalAcrossWorkerCounts) {
  // The reproducibility the header has always promised: per-frame seeds and
  // result slots are functions of the frame index alone, so 1, 2, and 8
  // workers must produce byte-identical statistics.
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  auto run_with = [&](unsigned workers) {
    BerConfig cfg;
    cfg.ebn0_db = {1.0F, 2.5F};
    cfg.max_frames = 70;  // exercises a partial final wave
    cfg.min_frames = 10;
    cfg.target_frame_errors = 30;
    cfg.num_workers = workers;
    cfg.seed = 2009;
    BerRunner runner(
        code, [&] { return make_decoder("layered-minsum-fixed", code, opt); },
        cfg);
    return runner.run();
  };
  const auto base = run_with(1);
  for (unsigned workers : {2u, 8u}) {
    const auto points = run_with(workers);
    ASSERT_EQ(points.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(points[i].frames, base[i].frames) << workers;
      EXPECT_EQ(points[i].bit_errors, base[i].bit_errors) << workers;
      EXPECT_EQ(points[i].frame_errors, base[i].frame_errors) << workers;
      EXPECT_EQ(points[i].undetected_errors, base[i].undetected_errors);
      EXPECT_EQ(points[i].detected_errors, base[i].detected_errors);
      EXPECT_DOUBLE_EQ(points[i].sum_iterations, base[i].sum_iterations);
      EXPECT_EQ(points[i].iteration_histogram, base[i].iteration_histogram);
    }
  }
}

TEST(BerRunner, ReproducibleForSameSeedAndWorkerCount) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  BerConfig cfg;
  cfg.ebn0_db = {1.0F};
  cfg.max_frames = 40;
  cfg.min_frames = 40;
  cfg.num_workers = 1;
  cfg.seed = 77;
  DecoderOptions opt;
  auto run_once = [&] {
    BerRunner runner(
        code, [&] { return make_decoder("layered-minsum-fixed", code, opt); },
        cfg);
    return runner.run()[0];
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.bit_errors, b.bit_errors);
  EXPECT_EQ(a.frame_errors, b.frame_errors);
  EXPECT_EQ(a.frames, b.frames);
}

TEST(BerRunner, SweepsMultiplePoints) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  BerConfig cfg;
  cfg.ebn0_db = {0.0F, 2.0F, 4.0F};
  cfg.max_frames = 15;
  cfg.min_frames = 15;
  DecoderOptions opt;
  BerRunner runner(
      code, [&] { return make_decoder("layered-minsum-float", code, opt); },
      cfg);
  const auto points = runner.run();
  ASSERT_EQ(points.size(), 3u);
  // Error rates must be non-increasing with SNR on this coarse grid.
  EXPECT_GE(points[0].fer() + 1e-9, points[2].fer());
}

TEST(BerRunner, EarlyStopOnTargetErrors) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  BerConfig cfg;
  cfg.ebn0_db = {-6.0F};  // everything fails
  cfg.max_frames = 10000;
  cfg.min_frames = 4;
  cfg.target_frame_errors = 4;
  DecoderOptions opt;
  opt.max_iterations = 2;
  BerRunner runner(
      code, [&] { return make_decoder("layered-minsum-fixed", code, opt); },
      cfg);
  const auto points = runner.run();
  EXPECT_LT(points[0].frames, 100u);  // stopped long before max_frames
  EXPECT_GE(points[0].frame_errors, 4u);
}

TEST(BerRunner, InvalidConfigRejected) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  BerConfig cfg;  // empty sweep
  EXPECT_THROW(BerRunner(code,
                         [&] {
                           return make_decoder("layered-minsum-fixed", code, opt);
                         },
                         cfg),
               Error);
}

TEST(BerPoint, DerivedMetrics) {
  BerPoint p;
  p.frames = 100;
  p.bit_errors = 50;
  p.frame_errors = 10;
  p.sum_iterations = 450.0;
  EXPECT_DOUBLE_EQ(p.ber(10), 50.0 / 1000.0);
  EXPECT_DOUBLE_EQ(p.fer(), 0.1);
  EXPECT_DOUBLE_EQ(p.avg_iterations(), 4.5);
}

}  // namespace
}  // namespace ldpc
