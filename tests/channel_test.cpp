// Channel substrate tests: modulation mappings, LLR signs and scaling, AWGN
// statistics, and the Monte-Carlo BER runner.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>

#include "channel/awgn.hpp"
#include "channel/ber_runner.hpp"
#include "channel/modem.hpp"
#include "codes/wimax.hpp"
#include "core/decoder_factory.hpp"
#include "util/stats.hpp"

namespace ldpc {
namespace {

// ---------------------------------------------------------------- modem ----

TEST(Bpsk, MapsBitZeroToPlusOne) {
  BitVec bits(4);
  bits.set(1, true);
  bits.set(3, true);
  const auto s = BpskModem::modulate(bits);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_FLOAT_EQ(s[0], 1.0F);
  EXPECT_FLOAT_EQ(s[1], -1.0F);
  EXPECT_FLOAT_EQ(s[2], 1.0F);
  EXPECT_FLOAT_EQ(s[3], -1.0F);
}

TEST(Bpsk, LlrScalingIsTwoOverVariance) {
  const std::vector<float> y = {0.5F, -1.5F};
  const auto llr = BpskModem::demodulate(y, 0.25F);
  EXPECT_FLOAT_EQ(llr[0], 2.0F / 0.25F * 0.5F);
  EXPECT_FLOAT_EQ(llr[1], 2.0F / 0.25F * -1.5F);
}

TEST(Bpsk, NoiselessLlrSignsRecoverBits) {
  BitVec bits(64);
  for (std::size_t i = 0; i < 64; i += 3) bits.set(i, true);
  const auto llr = BpskModem::demodulate(BpskModem::modulate(bits), 1.0F);
  for (std::size_t i = 0; i < 64; ++i)
    EXPECT_EQ(llr[i] < 0.0F, bits.get(i)) << i;
}

TEST(Bpsk, ZeroVarianceRejected) {
  EXPECT_THROW(BpskModem::demodulate({1.0F}, 0.0F), Error);
}

TEST(Qpsk, UnitSymbolEnergy) {
  BitVec bits(8);
  bits.set(0, true);
  bits.set(5, true);
  const auto iq = QpskModem::modulate(bits);
  ASSERT_EQ(iq.size(), 8u);
  for (std::size_t s = 0; s < 4; ++s) {
    const float e = iq[2 * s] * iq[2 * s] + iq[2 * s + 1] * iq[2 * s + 1];
    EXPECT_NEAR(e, 1.0F, 1e-6);
  }
}

TEST(Qpsk, NoiselessRoundTrip) {
  BitVec bits(50);  // odd length exercises padding
  for (std::size_t i = 0; i < 50; i += 7) bits.set(i, true);
  const auto iq = QpskModem::modulate(bits);
  const auto llr = QpskModem::demodulate(iq, 0.5F, 50);
  for (std::size_t i = 0; i < 50; ++i)
    EXPECT_EQ(llr[i] < 0.0F, bits.get(i)) << i;
}

TEST(Qpsk, OddLengthPadsCleanly) {
  BitVec bits(3);
  bits.set(2, true);
  const auto iq = QpskModem::modulate(bits);
  EXPECT_EQ(iq.size(), 4u);  // 2 symbols
  const auto llr = QpskModem::demodulate(iq, 1.0F, 3);
  EXPECT_EQ(llr.size(), 3u);
}

TEST(Qam16, NoiselessRoundTrip) {
  BitVec bits(50);  // not a multiple of 4: exercises tail padding
  for (std::size_t i = 0; i < 50; i += 3) bits.set(i, true);
  const auto iq = Qam16Modem::modulate(bits);
  for (const auto demap :
       {&Qam16Modem::demodulate, &Qam16Modem::demodulate_maxlog}) {
    const auto llr = demap(iq, 0.01F, 50);
    ASSERT_EQ(llr.size(), 50u);
    for (std::size_t i = 0; i < 50; ++i)
      EXPECT_EQ(llr[i] < 0.0F, bits.get(i)) << i;
  }
}

TEST(Qam16, MaxLogWithinLogSumBoundOfExact) {
  // Each log-sum in the exact LLR collects two terms per hypothesis, so
  // dropping all but the max under-counts each side by at most log(2):
  // |exact - maxlog| <= 2 log(2), independent of SNR.
  BitVec bits(64);
  for (std::size_t i = 0; i < 64; i += 5) bits.set(i, true);
  auto iq = Qam16Modem::modulate(bits);
  AwgnChannel ch(0.2F, 7);
  iq = ch.transmit(iq);
  const auto exact = Qam16Modem::demodulate(iq, 0.2F, 64);
  const auto maxlog = Qam16Modem::demodulate_maxlog(iq, 0.2F, 64);
  for (std::size_t i = 0; i < 64; ++i)
    EXPECT_NEAR(exact[i], maxlog[i], 2.0 * std::log(2.0) + 1e-5) << i;
}

TEST(Qam64, LevelSetAndUnitAverageEnergy) {
  // All 64 bit patterns must land on the 8-PAM grid {+-1..+-7}/sqrt(42) per
  // rail, and the uniform average symbol energy must be exactly 1.
  const float a = 1.0F / std::sqrt(42.0F);
  double energy = 0.0;
  for (unsigned pattern = 0; pattern < 64; ++pattern) {
    BitVec bits(6);
    for (std::size_t t = 0; t < 6; ++t)
      bits.set(t, ((pattern >> (5 - t)) & 1U) != 0);
    const auto iq = Qam64Modem::modulate(bits);
    ASSERT_EQ(iq.size(), 2u);
    for (const float rail : iq) {
      const float level = rail / a;
      const float mag = std::abs(level);
      EXPECT_NEAR(std::round(mag), mag, 1e-4);
      EXPECT_GE(mag, 0.9F);
      EXPECT_LE(mag, 7.1F);
      EXPECT_NEAR(std::fmod(std::round(mag), 2.0F), 1.0F, 1e-6);  // odd grid
    }
    energy += static_cast<double>(iq[0]) * iq[0] +
              static_cast<double>(iq[1]) * iq[1];
  }
  EXPECT_NEAR(energy / 64.0, 1.0, 1e-6);
}

TEST(Qam64, MappingIsGray) {
  // Adjacent 8-PAM levels must differ in exactly one of the rail's three
  // bits — the property that makes nearest-neighbour symbol errors cost one
  // bit error.
  std::vector<std::pair<float, unsigned>> level_of_code;
  for (unsigned code = 0; code < 8; ++code) {
    BitVec bits(6);  // I rail carries `code`, Q rail all-zero
    for (std::size_t t = 0; t < 3; ++t)
      bits.set(t, ((code >> (2 - t)) & 1U) != 0);
    const auto iq = Qam64Modem::modulate(bits);
    level_of_code.emplace_back(iq[0], code);
  }
  std::sort(level_of_code.begin(), level_of_code.end());
  for (std::size_t i = 1; i < level_of_code.size(); ++i) {
    const unsigned diff = level_of_code[i].second ^ level_of_code[i - 1].second;
    EXPECT_EQ(diff & (diff - 1), 0u) << "levels " << i - 1 << "," << i;
    EXPECT_NE(diff, 0u);
  }
}

TEST(Qam64, NoiselessRoundTrip) {
  BitVec bits(64);  // 64 = 10 symbols + 4-bit tail: exercises padding
  for (std::size_t i = 0; i < 64; i += 7) bits.set(i, true);
  const auto iq = Qam64Modem::modulate(bits);
  ASSERT_EQ(iq.size(), 2u * 11u);
  for (const auto demap :
       {&Qam64Modem::demodulate, &Qam64Modem::demodulate_maxlog}) {
    const auto llr = demap(iq, 0.005F, 64);
    ASSERT_EQ(llr.size(), 64u);
    for (std::size_t i = 0; i < 64; ++i)
      EXPECT_EQ(llr[i] < 0.0F, bits.get(i)) << i;
  }
}

TEST(Qam64, HighSnrSignsSurviveNoise) {
  // At 25 dB the noise is far inside the decision regions: every noisy LLR
  // must still vote for the transmitted bit, for both demappers.
  BitVec bits(120);
  Xoshiro256 rng(3);
  for (std::size_t i = 0; i < bits.size(); ++i) bits.set(i, rng.coin());
  const float variance = 1e-4F;
  auto iq = Qam64Modem::modulate(bits);
  AwgnChannel ch(variance, 9);
  iq = ch.transmit(iq);
  const auto exact = Qam64Modem::demodulate(iq, variance, 120);
  const auto maxlog = Qam64Modem::demodulate_maxlog(iq, variance, 120);
  for (std::size_t i = 0; i < 120; ++i) {
    EXPECT_EQ(exact[i] < 0.0F, bits.get(i)) << i;
    EXPECT_EQ(maxlog[i] < 0.0F, bits.get(i)) << i;
  }
}

TEST(Qam64, MaxLogWithinLogSumBoundOfExact) {
  // Four terms per hypothesis side: |exact - maxlog| <= 2 log(4).
  BitVec bits(96);
  Xoshiro256 rng(4);
  for (std::size_t i = 0; i < bits.size(); ++i) bits.set(i, rng.coin());
  auto iq = Qam64Modem::modulate(bits);
  AwgnChannel ch(0.3F, 13);
  iq = ch.transmit(iq);
  const auto exact = Qam64Modem::demodulate(iq, 0.3F, 96);
  const auto maxlog = Qam64Modem::demodulate_maxlog(iq, 0.3F, 96);
  for (std::size_t i = 0; i < 96; ++i)
    EXPECT_NEAR(exact[i], maxlog[i], 2.0 * std::log(4.0) + 1e-5) << i;
}

TEST(Qam64, InvalidParametersRejected) {
  const std::vector<float> iq = {0.1F, 0.2F};
  EXPECT_THROW(Qam64Modem::demodulate(iq, 0.0F, 6), Error);
  EXPECT_THROW(Qam64Modem::demodulate(iq, 1.0F, 7), Error);  // > 3 * iq size
}

TEST(Qam64, EndToEndBerSweep) {
  // 64-QAM through the full Monte-Carlo chain: error-free at high Eb/N0,
  // failing at low — the wiring test for Modulation::kQam64.
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  BerConfig cfg;
  cfg.ebn0_db = {14.0F};
  cfg.max_frames = 20;
  cfg.min_frames = 20;
  cfg.modulation = Modulation::kQam64;
  BerRunner runner(
      code, [&] { return make_decoder("layered-minsum-fixed", code, opt); },
      cfg);
  EXPECT_EQ(runner.run()[0].frame_errors, 0u);
}

// ----------------------------------------------------------------- awgn ----

TEST(Awgn, NoiseVarianceFormula) {
  // At Eb/N0 = 0 dB, rate 1/2, BPSK: sigma^2 = 1 / (2 * 0.5 * 1) = 1.
  EXPECT_NEAR(awgn_noise_variance(0.0F, 0.5), 1.0F, 1e-6);
  // +3 dB halves the variance (within rounding of 10^0.3).
  EXPECT_NEAR(awgn_noise_variance(3.0F, 0.5), 0.5012F, 1e-3);
  // Higher rate -> less redundancy -> smaller sigma^2 at equal Eb/N0.
  EXPECT_LT(awgn_noise_variance(2.0F, 0.75), awgn_noise_variance(2.0F, 0.5));
}

TEST(Awgn, InvalidParametersRejected) {
  EXPECT_THROW(awgn_noise_variance(1.0F, 0.0), Error);
  EXPECT_THROW(awgn_noise_variance(1.0F, 1.0), Error);
  EXPECT_THROW(AwgnChannel(0.0F), Error);
}

TEST(Awgn, NoiseStatisticsMatchConfiguredVariance) {
  const float variance = 0.64F;
  AwgnChannel ch(variance, 11);
  const std::vector<float> zeros(50000, 0.0F);
  const auto noisy = ch.transmit(zeros);
  RunningStats s;
  for (float v : noisy) s.add(v);
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.variance(), variance, 0.02);
}

TEST(Awgn, DeterministicForSeed) {
  AwgnChannel a(1.0F, 5), b(1.0F, 5);
  const std::vector<float> x = {1.0F, -1.0F, 1.0F};
  EXPECT_EQ(a.transmit(x), b.transmit(x));
}

TEST(Awgn, MeanFollowsInput) {
  AwgnChannel ch(0.25F, 12);
  const std::vector<float> ones(20000, 1.0F);
  const auto noisy = ch.transmit(ones);
  RunningStats s;
  for (float v : noisy) s.add(v);
  EXPECT_NEAR(s.mean(), 1.0, 0.02);
}

// ------------------------------------------------------------ BER runner ----

TEST(BerRunner, HighSnrIsErrorFree) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  BerConfig cfg;
  cfg.ebn0_db = {8.0F};
  cfg.max_frames = 30;
  cfg.min_frames = 30;
  cfg.num_workers = 2;
  DecoderOptions opt;
  BerRunner runner(
      code, [&] { return make_decoder("layered-minsum-fixed", code, opt); },
      cfg);
  const auto points = runner.run();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].frames, 30u);
  EXPECT_EQ(points[0].bit_errors, 0u);
  EXPECT_EQ(points[0].fer(), 0.0);
}

TEST(BerRunner, VeryLowSnrMostlyFails) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  BerConfig cfg;
  cfg.ebn0_db = {-4.0F};
  cfg.max_frames = 20;
  cfg.min_frames = 5;
  cfg.target_frame_errors = 5;
  DecoderOptions opt;
  opt.max_iterations = 5;
  BerRunner runner(
      code, [&] { return make_decoder("layered-minsum-fixed", code, opt); },
      cfg);
  const auto points = runner.run();
  EXPECT_GT(points[0].fer(), 0.5);
  EXPECT_GT(points[0].avg_iterations(), 4.0);  // never converges early
}

TEST(BerFrameSeeds, ThreeStreamsArePairwiseDistinct) {
  // Regression: the runner used to seed the info, AWGN, and Rayleigh RNGs
  // with the *same* splitmix64 output, correlating the noise with the data.
  for (std::uint64_t seed : {0ULL, 1ULL, 77ULL, 2009ULL}) {
    for (std::size_t point = 0; point < 4; ++point) {
      for (std::size_t frame = 0; frame < 16; ++frame) {
        const FrameSeeds s = ber_frame_seeds(seed, point, frame);
        EXPECT_NE(s.info, s.awgn);
        EXPECT_NE(s.info, s.rayleigh);
        EXPECT_NE(s.awgn, s.rayleigh);
      }
    }
  }
}

TEST(BerFrameSeeds, KeyedByFrameAndPoint) {
  const FrameSeeds a = ber_frame_seeds(77, 0, 0);
  const FrameSeeds b = ber_frame_seeds(77, 0, 1);
  const FrameSeeds c = ber_frame_seeds(77, 1, 0);
  const FrameSeeds d = ber_frame_seeds(78, 0, 0);
  EXPECT_NE(a.info, b.info);
  EXPECT_NE(a.info, c.info);
  EXPECT_NE(a.info, d.info);
  EXPECT_NE(a.awgn, b.awgn);
  EXPECT_NE(a.rayleigh, b.rayleigh);
}

TEST(BerRunner, PointMovedOffCorrelatedGoldenValue) {
  // Golden counts produced by the pre-fix runner (identical seeds for all
  // three RNG streams, worker-keyed derivation) for this exact
  // configuration: bit_errors = 3210, frame_errors = 165. The decorrelated
  // seeding must land elsewhere; the error *rates* stay in the same regime.
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  BerConfig cfg;
  cfg.ebn0_db = {1.0F};
  cfg.max_frames = 200;
  cfg.min_frames = 200;
  cfg.num_workers = 1;
  cfg.seed = 77;
  DecoderOptions opt;
  BerRunner runner(
      code, [&] { return make_decoder("layered-minsum-fixed", code, opt); },
      cfg);
  const auto p = runner.run()[0];
  ASSERT_EQ(p.frames, 200u);
  EXPECT_NE(p.bit_errors, 3210u);
  EXPECT_GT(p.frame_errors, 100u);  // still a high-FER operating point
  EXPECT_LT(p.frame_errors, 200u);
}

TEST(BerRunner, BitIdenticalAcrossWorkerCounts) {
  // The reproducibility the header has always promised: per-frame seeds and
  // result slots are functions of the frame index alone, so 1, 2, and 8
  // workers must produce byte-identical statistics.
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  auto run_with = [&](unsigned workers) {
    BerConfig cfg;
    cfg.ebn0_db = {1.0F, 2.5F};
    cfg.max_frames = 70;  // exercises a partial final wave
    cfg.min_frames = 10;
    cfg.target_frame_errors = 30;
    cfg.num_workers = workers;
    cfg.seed = 2009;
    BerRunner runner(
        code, [&] { return make_decoder("layered-minsum-fixed", code, opt); },
        cfg);
    return runner.run();
  };
  const auto base = run_with(1);
  for (unsigned workers : {2u, 8u}) {
    const auto points = run_with(workers);
    ASSERT_EQ(points.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(points[i].frames, base[i].frames) << workers;
      EXPECT_EQ(points[i].bit_errors, base[i].bit_errors) << workers;
      EXPECT_EQ(points[i].frame_errors, base[i].frame_errors) << workers;
      EXPECT_EQ(points[i].undetected_errors, base[i].undetected_errors);
      EXPECT_EQ(points[i].detected_errors, base[i].detected_errors);
      EXPECT_DOUBLE_EQ(points[i].sum_iterations, base[i].sum_iterations);
      EXPECT_EQ(points[i].iteration_histogram, base[i].iteration_histogram);
    }
  }
}

TEST(BerRunner, ReproducibleForSameSeedAndWorkerCount) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  BerConfig cfg;
  cfg.ebn0_db = {1.0F};
  cfg.max_frames = 40;
  cfg.min_frames = 40;
  cfg.num_workers = 1;
  cfg.seed = 77;
  DecoderOptions opt;
  auto run_once = [&] {
    BerRunner runner(
        code, [&] { return make_decoder("layered-minsum-fixed", code, opt); },
        cfg);
    return runner.run()[0];
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.bit_errors, b.bit_errors);
  EXPECT_EQ(a.frame_errors, b.frame_errors);
  EXPECT_EQ(a.frames, b.frames);
}

TEST(BerRunner, SweepsMultiplePoints) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  BerConfig cfg;
  cfg.ebn0_db = {0.0F, 2.0F, 4.0F};
  cfg.max_frames = 15;
  cfg.min_frames = 15;
  DecoderOptions opt;
  BerRunner runner(
      code, [&] { return make_decoder("layered-minsum-float", code, opt); },
      cfg);
  const auto points = runner.run();
  ASSERT_EQ(points.size(), 3u);
  // Error rates must be non-increasing with SNR on this coarse grid.
  EXPECT_GE(points[0].fer() + 1e-9, points[2].fer());
}

TEST(BerRunner, EarlyStopOnTargetErrors) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  BerConfig cfg;
  cfg.ebn0_db = {-6.0F};  // everything fails
  cfg.max_frames = 10000;
  cfg.min_frames = 4;
  cfg.target_frame_errors = 4;
  DecoderOptions opt;
  opt.max_iterations = 2;
  BerRunner runner(
      code, [&] { return make_decoder("layered-minsum-fixed", code, opt); },
      cfg);
  const auto points = runner.run();
  EXPECT_LT(points[0].frames, 100u);  // stopped long before max_frames
  EXPECT_GE(points[0].frame_errors, 4u);
}

TEST(BerRunner, InvalidConfigRejected) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  BerConfig cfg;  // empty sweep
  EXPECT_THROW(BerRunner(code,
                         [&] {
                           return make_decoder("layered-minsum-fixed", code, opt);
                         },
                         cfg),
               Error);
}

TEST(BerPoint, DerivedMetrics) {
  BerPoint p;
  p.frames = 100;
  p.bit_errors = 50;
  p.frame_errors = 10;
  p.sum_iterations = 450.0;
  EXPECT_DOUBLE_EQ(p.ber(10), 50.0 / 1000.0);
  EXPECT_DOUBLE_EQ(p.fer(), 0.1);
  EXPECT_DOUBLE_EQ(p.avg_iterations(), 4.5);
}

}  // namespace
}  // namespace ldpc
