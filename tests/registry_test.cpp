// External-code registry: named codes imported through the alist
// interchange path and used as first-class entries by the decode service's
// multi-tenant mixes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "codes/alist.hpp"
#include "codes/encoder.hpp"
#include "codes/registry.hpp"
#include "core/decoder_factory.hpp"
#include "service/codec_cache.hpp"
#include "util/check.hpp"

namespace ldpc {
namespace {

TEST(Registry, NamesAndMetadata) {
  const auto& names = external_code_names();
  ASSERT_GE(names.size(), 2U);
  // The wire protocol indexes this vector: order is ABI, spot-check it.
  EXPECT_EQ(names[0], "ft8-174");
  EXPECT_EQ(names[1], "hamsternz-demo-32");

  const ExternalCodeInfo& ft8 = external_code_info("ft8-174");
  EXPECT_EQ(ft8.n, 174U);
  EXPECT_EQ(ft8.k, 87U);
  const ExternalCodeInfo& demo = external_code_info("hamsternz-demo-32");
  EXPECT_EQ(demo.n, 32U);
  EXPECT_EQ(demo.k, 16U);

  EXPECT_THROW(external_code_info("no-such-code"), Error);
  EXPECT_THROW(external_code("no-such-code"), Error);
}

TEST(Registry, CodesImportWithDeclaredGeometry) {
  for (const std::string& name : external_code_names()) {
    SCOPED_TRACE(name);
    const ExternalCodeInfo& info = external_code_info(name);
    const QCLdpcCode& code = external_code(name);
    EXPECT_EQ(code.n(), info.n);
    EXPECT_EQ(code.k(), info.k);
    EXPECT_EQ(code.z(), 1);  // registry codes are dense imports
    // Cached: the same reference comes back.
    EXPECT_EQ(&external_code(name), &code);
  }
}

TEST(Registry, AlistRoundTripIsExact) {
  // The canonical alist re-imports to a matrix that serializes back to the
  // identical text — the interchange path is lossless at z = 1.
  for (const std::string& name : external_code_names()) {
    SCOPED_TRACE(name);
    const std::string& text = external_code_alist(name);
    const QCLdpcCode imported = alist_from_string(text);
    EXPECT_EQ(to_alist(imported), text);
  }
}

TEST(Registry, CorruptAlistIsRejectedTyped) {
  // Damage the canonical text a few ways; the import path must throw
  // AlistParseError (a typed refusal), never accept a damaged matrix.
  const std::string& text = external_code_alist("hamsternz-demo-32");
  {
    // Truncate mid-token-list.
    const std::string damaged = text.substr(0, text.size() / 2);
    EXPECT_THROW(alist_from_string(damaged), AlistParseError);
  }
  {
    // Out-of-range column index.
    std::string damaged = text;
    damaged += " 999999";
    EXPECT_THROW(alist_from_string(damaged), AlistParseError);
  }
  {
    // Non-numeric garbage.
    std::string damaged = "not an alist at all";
    EXPECT_THROW(alist_from_string(damaged), AlistParseError);
  }
}

TEST(Registry, CodesEncodeAndDecode) {
  // Each registry code must be usable end-to-end: encode an info word,
  // decode its noiseless LLRs, and recover the codeword.
  for (const std::string& name : external_code_names()) {
    SCOPED_TRACE(name);
    const QCLdpcCode& code = external_code(name);
    const DenseEncoder encoder(code);
    BitVec info(code.k());
    for (std::size_t i = 0; i < info.size(); i += 3) info.set(i, true);
    const BitVec codeword = encoder.encode(info);
    ASSERT_EQ(codeword.size(), code.n());

    std::vector<float> llr(code.n());
    for (std::size_t i = 0; i < llr.size(); ++i)
      llr[i] = codeword.get(i) ? -4.0F : 4.0F;  // positive = bit 0
    const auto decoder = make_decoder("layered-minsum-fixed", code, {});
    const DecodeResult result = decoder->decode(llr);
    EXPECT_EQ(result.status, DecodeStatus::kConverged);
    for (std::size_t i = 0; i < code.n(); ++i)
      EXPECT_EQ(result.hard_bits.get(i), codeword.get(i)) << "bit " << i;
  }
}

TEST(Registry, ServiceCodecCacheServesRegistryCodes) {
  // The wire-level view: (kRegistry, index, z=1) resolves to the registry
  // code; wrong z or index is a typed unknown-codec refusal.
  service::CodecCache cache;
  service::WireErrorCode error = service::WireErrorCode::kNone;
  const auto registry =
      static_cast<std::uint8_t>(service::CodeStandard::kRegistry);
  const auto entry = cache.resolve({registry, 0, 1}, &error);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->code().n(), external_code("ft8-174").n());

  EXPECT_EQ(cache.resolve({registry, 0, 2}, &error), nullptr);
  EXPECT_EQ(error, service::WireErrorCode::kUnknownCodec);
  const auto bad_index = static_cast<std::uint8_t>(
      external_code_names().size());
  EXPECT_EQ(cache.resolve({registry, bad_index, 1}, &error), nullptr);
  EXPECT_EQ(error, service::WireErrorCode::kUnknownCodec);
}

}  // namespace
}  // namespace ldpc
