// DecoderFactory name enumeration contract: every name decoder_names()
// advertises constructs a working decoder, each constructed decoder
// round-trips its reported message format through the registry's naming
// scheme, and unknown names fail with an error that lists every candidate
// — the property the CLI tools and sweep harnesses rely on to print
// actionable --decoder help.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "codes/wimax.hpp"
#include "core/decoder_factory.hpp"
#include "util/check.hpp"

namespace ldpc {
namespace {

TEST(DecoderFactory, EveryRegisteredNameConstructs) {
  const QCLdpcCode code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  for (const std::string& name : decoder_names()) {
    std::unique_ptr<Decoder> dec;
    ASSERT_NO_THROW(dec = make_decoder(name, code, opt)) << name;
    ASSERT_NE(dec, nullptr) << name;
    EXPECT_EQ(dec->n(), code.n()) << name;
    EXPECT_EQ(dec->k(), code.k()) << name;
    // A freshly constructed decoder must actually decode: strong all-zeros
    // evidence converges for every family in at most a few iterations.
    std::vector<float> llr(code.n(), 8.0F);
    const DecodeResult res = dec->decode(llr);
    EXPECT_TRUE(res.converged) << name;
  }
}

TEST(DecoderFactory, NamesAreUniqueAndNonEmpty) {
  std::vector<std::string> names = decoder_names();
  EXPECT_FALSE(names.empty());
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

TEST(DecoderFactory, MessageFormatRoundTripsThroughName) {
  // Naming scheme contract: a name carrying a format suffix must produce a
  // decoder reporting that format, and vice versa — "fa4" in the name
  // means message_format() == "fa4", "q6" means q6.1's "q6.1", and
  // float-family names report "float".
  const QCLdpcCode code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  for (const std::string& name : decoder_names()) {
    const auto dec = make_decoder(name, code, opt);
    const std::string fmt = dec->message_format();
    if (name.find("-fa") != std::string::npos) {
      // layered-minsum[-simd[-batched]]-fa{2,3,4}
      const std::string tail = name.substr(name.rfind("-fa") + 1);
      EXPECT_EQ(fmt, tail) << name;
    } else if (name.find("q6") != std::string::npos) {
      EXPECT_EQ(fmt, "q6.1") << name;
    } else if (name.find("fixed") != std::string::npos ||
               name.find("simd") != std::string::npos) {
      EXPECT_EQ(fmt, "q8.2") << name;
    } else if (name == "gallager-b") {
      EXPECT_EQ(fmt, "bit") << name;
    } else {
      EXPECT_EQ(fmt, "float") << name;
    }
  }
}

TEST(DecoderFactory, FiniteAlphabetFamilyIsRegistered) {
  const std::vector<std::string>& names = decoder_names();
  for (const std::string expected :
       {"layered-minsum-fa2", "layered-minsum-fa3", "layered-minsum-fa4",
        "layered-minsum-simd-fa4", "layered-minsum-simd-batched-fa4"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(DecoderFactory, UnknownNameThrowsWithCandidateList) {
  const QCLdpcCode code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  try {
    make_decoder("layered-minsum-fa9", code, opt);
    FAIL() << "expected ldpc::Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("layered-minsum-fa9"), std::string::npos) << msg;
    // The error must enumerate every known name, so a typo in a CLI flag
    // or a sweep config is self-diagnosing.
    for (const std::string& name : decoder_names())
      EXPECT_NE(msg.find(name), std::string::npos) << name << " in: " << msg;
  }
}

}  // namespace
}  // namespace ldpc
