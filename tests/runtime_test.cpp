// Runtime batch-engine tests: the bounded MPMC job queue and its overload
// policies, the determinism contract (bit-identical output for any worker
// count), backpressure under a tiny queue, deadlines and cancellation,
// worker quarantine, the retry/escalation supervisor, and the engine
// metrics block.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "codes/wimax.hpp"
#include "core/decoder_factory.hpp"
#include "runtime/batch_engine.hpp"
#include "runtime/job_queue.hpp"
#include "runtime/retry_policy.hpp"
#include "runtime/supervisor.hpp"

namespace ldpc {
namespace {

using PushResult = BoundedJobQueue<int>::PushResult;

// ------------------------------------------------------------ job queue ----

TEST(JobQueue, FifoOrder) {
  BoundedJobQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.push(int{i}), PushResult::kAccepted);
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(JobQueue, TryPushFailsWhenFull) {
  BoundedJobQueue<int> q(2);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(q.try_push(a));
  EXPECT_TRUE(q.try_push(b));
  EXPECT_FALSE(q.try_push(c));
  EXPECT_EQ(c, 3);  // not consumed
  int out = 0;
  ASSERT_TRUE(q.pop(out));
  EXPECT_TRUE(q.try_push(c));
}

TEST(JobQueue, CloseDrainsThenStops) {
  BoundedJobQueue<int> q(4);
  EXPECT_EQ(q.push(7), PushResult::kAccepted);
  EXPECT_EQ(q.push(8), PushResult::kAccepted);
  q.close();
  EXPECT_EQ(q.push(9), PushResult::kClosed);
  int out = 0;
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 8);
  EXPECT_FALSE(q.pop(out));  // closed and drained
  EXPECT_TRUE(q.closed());
}

TEST(JobQueue, PushAfterCloseNeverSilentlyDrops) {
  // The failure mode this guards: a submit after shutdown must be *reported*
  // (the old API returned void and lost the job).
  BoundedJobQueue<int> q(4);
  q.close();
  EXPECT_EQ(q.push(1), PushResult::kClosed);
  EXPECT_FALSE(q.push_forced(2));
  int item = 3;
  EXPECT_FALSE(q.try_push(item));
  EXPECT_EQ(item, 3);  // handed back intact
  EXPECT_EQ(q.size(), 0u);
}

TEST(JobQueue, BlockingPushWaitsForConsumer) {
  BoundedJobQueue<int> q(1);
  EXPECT_EQ(q.push(1), PushResult::kAccepted);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_EQ(q.push(2), PushResult::kAccepted);  // blocks until the pop
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  int out = 0;
  ASSERT_TRUE(q.pop(out));
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.size(), 1u);
}

TEST(JobQueue, RejectNewestTurnsAwayAtTheDoor) {
  BoundedJobQueue<int> q(2, OverloadPolicy::kRejectNewest);
  EXPECT_EQ(q.push(1), PushResult::kAccepted);
  EXPECT_EQ(q.push(2), PushResult::kAccepted);
  EXPECT_EQ(q.push(3), PushResult::kRejected);  // never blocks
  EXPECT_EQ(q.push(4), PushResult::kRejected);
  EXPECT_EQ(q.rejected_count(), 2u);
  EXPECT_EQ(q.shed_count(), 0u);
  EXPECT_EQ(q.size(), 2u);
  int out = 0;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);  // FIFO preserved; rejected items never entered
  EXPECT_EQ(q.push(5), PushResult::kAccepted);
}

TEST(JobQueue, ShedOldestEvictsHeadForTail) {
  BoundedJobQueue<int> q(2, OverloadPolicy::kShedOldest);
  EXPECT_EQ(q.push(1), PushResult::kAccepted);
  EXPECT_EQ(q.push(2), PushResult::kAccepted);
  int shed = 0;
  EXPECT_EQ(q.push(3, &shed), PushResult::kAcceptedShed);
  EXPECT_EQ(shed, 1);  // oldest handed back for completion
  EXPECT_EQ(q.shed_count(), 1u);
  EXPECT_EQ(q.size(), 2u);
  int out = 0;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 3);
}

TEST(JobQueue, PushForcedExceedsCapacity) {
  BoundedJobQueue<int> q(1);
  EXPECT_EQ(q.push(1), PushResult::kAccepted);
  EXPECT_TRUE(q.push_forced(2));  // capacity-exempt, no blocking
  EXPECT_TRUE(q.push_forced(3));
  EXPECT_EQ(q.size(), 3u);
  int out = 0;
  for (int expect : {1, 2, 3}) {
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, expect);
  }
}

TEST(JobQueue, OccupancyTracksDepth) {
  BoundedJobQueue<int> q(4);
  EXPECT_EQ(q.push(1), PushResult::kAccepted);
  EXPECT_EQ(q.push(2), PushResult::kAccepted);
  EXPECT_EQ(q.push(3), PushResult::kAccepted);
  const RunningStats occ = q.occupancy();
  EXPECT_EQ(occ.count(), 3u);
  EXPECT_DOUBLE_EQ(occ.max(), 3.0);
  EXPECT_DOUBLE_EQ(occ.mean(), 2.0);  // depths 1, 2, 3
  EXPECT_THROW(BoundedJobQueue<int>(0), Error);
}

// --------------------------------------------------------- batch engine ----

/// Deterministic noisy frames of the all-zero codeword.
std::vector<std::vector<float>> make_frames(const QCLdpcCode& code,
                                            std::size_t count, float ebn0_db) {
  const float variance = awgn_noise_variance(ebn0_db, code.rate());
  std::vector<std::vector<float>> frames;
  frames.reserve(count);
  const BitVec zero(code.n());
  for (std::size_t f = 0; f < count; ++f) {
    AwgnChannel awgn(variance, 1000 + f);
    frames.push_back(BpskModem::demodulate(
        awgn.transmit(BpskModem::modulate(zero)), variance));
  }
  return frames;
}

DecoderFactory fixed_factory(const QCLdpcCode& code,
                             std::size_t max_iterations = 10) {
  return [&code, max_iterations] {
    DecoderOptions opt;
    opt.max_iterations = max_iterations;
    return make_decoder("layered-minsum-fixed", code, opt);
  };
}

BatchEngineConfig engine_config(unsigned workers, std::size_t capacity) {
  BatchEngineConfig config;
  config.num_workers = workers;
  config.queue_capacity = capacity;
  return config;
}

/// A task that parks its worker until `release` turns true, then returns an
/// empty result. `running` flips as soon as the worker picked the job up —
/// tests that need the queue empty/full in a known state wait on it.
BatchEngine::Task gate_task(std::atomic<bool>& running,
                            std::atomic<bool>& release) {
  return [&running, &release](Decoder&) {
    running = true;
    while (!release.load()) std::this_thread::sleep_for(
        std::chrono::microseconds(100));
    return DecodeResult{};
  };
}

void wait_for(const std::atomic<bool>& flag) {
  while (!flag.load())
    std::this_thread::sleep_for(std::chrono::microseconds(100));
}

TEST(BatchEngine, DecodeBatchKeepsInputOrder) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto frames = make_frames(code, 12, 6.0F);
  BatchEngine engine(fixed_factory(code), engine_config(2, 8));
  const auto results = engine.decode_batch(frames);
  ASSERT_EQ(results.size(), frames.size());
  // High SNR: every frame decodes to the all-zero codeword.
  for (const auto& r : results) {
    EXPECT_TRUE(r.converged);
    for (std::size_t i = 0; i < code.n(); ++i) EXPECT_FALSE(r.hard_bits.get(i));
  }
}

TEST(BatchEngine, BitIdenticalAcrossWorkerCounts) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto frames = make_frames(code, 24, 1.5F);  // noisy: varied outcomes
  auto decode_all = [&](unsigned workers) {
    BatchEngine engine(fixed_factory(code), engine_config(workers, 16));
    return engine.decode_batch(frames);
  };
  const auto base = decode_all(1);
  for (unsigned workers : {2u, 8u}) {
    const auto results = decode_all(workers);
    ASSERT_EQ(results.size(), base.size());
    for (std::size_t f = 0; f < base.size(); ++f) {
      EXPECT_EQ(results[f].iterations, base[f].iterations) << f;
      EXPECT_EQ(results[f].converged, base[f].converged) << f;
      EXPECT_EQ(results[f].status, base[f].status) << f;
      for (std::size_t i = 0; i < code.n(); ++i)
        ASSERT_EQ(results[f].hard_bits.get(i), base[f].hard_bits.get(i))
            << "frame " << f << " bit " << i << " workers " << workers;
    }
  }
}

TEST(BatchEngine, BackpressureWithTinyQueue) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto frames = make_frames(code, 40, 4.0F);
  // Queue of 1: every submit beyond the first blocks until a worker frees a
  // slot — the batch still completes and stays ordered.
  BatchEngine engine(fixed_factory(code), engine_config(2, 1));
  const auto results = engine.decode_batch(frames);
  ASSERT_EQ(results.size(), frames.size());
  const auto m = engine.metrics();
  EXPECT_EQ(m.jobs_completed, frames.size());
  EXPECT_LE(m.queue_max_occupancy, 1u);
}

TEST(BatchEngine, TrySubmitReportsFullQueue) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  auto frames = make_frames(code, 64, 4.0F);
  BatchEngine engine(fixed_factory(code), engine_config(1, 2));
  std::vector<DecodeResult> results(frames.size());
  std::size_t accepted = 0, rejected = 0;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    if (engine.try_submit(f, frames[f], &results[f])) {
      ++accepted;
    } else {
      ++rejected;
      EXPECT_FALSE(frames[f].empty());  // frame handed back intact
      const SubmitStatus s =
          engine.submit(f, std::move(frames[f]), &results[f]);
      EXPECT_EQ(s, SubmitStatus::kAccepted);  // blocking retry
    }
  }
  engine.drain();
  EXPECT_EQ(accepted + rejected, frames.size());
  for (const auto& r : results) EXPECT_GE(r.iterations, 1u);
}

TEST(BatchEngine, DrainIsReusable) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto frames = make_frames(code, 6, 6.0F);
  BatchEngine engine(fixed_factory(code), engine_config(2, 8));
  engine.drain();  // nothing submitted: returns immediately
  std::vector<DecodeResult> first(frames.size());
  for (std::size_t f = 0; f < frames.size(); ++f)
    ASSERT_TRUE(submit_accepted(engine.submit(f, frames[f], &first[f])));
  engine.drain();
  std::vector<DecodeResult> second(frames.size());
  for (std::size_t f = 0; f < frames.size(); ++f)
    ASSERT_TRUE(submit_accepted(engine.submit(f, frames[f], &second[f])));
  engine.drain();
  const auto m = engine.metrics();
  EXPECT_EQ(m.jobs_submitted, 2 * frames.size());
  EXPECT_EQ(m.jobs_completed, 2 * frames.size());
  for (std::size_t f = 0; f < frames.size(); ++f)
    EXPECT_EQ(first[f].iterations, second[f].iterations);
}

TEST(BatchEngine, DrainWithZeroJobsReturnsImmediately) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  BatchEngine engine(fixed_factory(code), engine_config(2, 8));
  engine.drain();
  const DrainReport report =
      engine.drain_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.outstanding, 0u);
  EXPECT_TRUE(report.straggler_frames.empty());
  const auto m = engine.metrics();
  EXPECT_EQ(m.jobs_submitted, 0u);
  EXPECT_EQ(m.jobs_completed, 0u);
  EXPECT_EQ(m.latency.samples, 0u);
}

TEST(BatchEngine, DrainUntilReportsStragglers) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  BatchEngine engine(fixed_factory(code), engine_config(1, 8));
  std::atomic<bool> running{false}, release{false};
  ASSERT_TRUE(submit_accepted(
      engine.submit_task(7, gate_task(running, release))));
  wait_for(running);
  const DrainReport stuck =
      engine.drain_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(stuck.completed);
  EXPECT_EQ(stuck.outstanding, 1u);
  ASSERT_EQ(stuck.straggler_frames.size(), 1u);
  EXPECT_EQ(stuck.straggler_frames[0], 7u);
  release = true;
  engine.drain();
  const DrainReport done =
      engine.drain_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(done.completed);
  EXPECT_TRUE(done.straggler_frames.empty());
}

TEST(BatchEngine, QueuedExpiredJobNeverReachesDecoder) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto frames = make_frames(code, 1, 4.0F);
  BatchEngine engine(fixed_factory(code), engine_config(1, 8));
  std::atomic<bool> running{false}, release{false};
  ASSERT_TRUE(submit_accepted(
      engine.submit_task(0, gate_task(running, release))));
  wait_for(running);  // the worker is parked; anything queued now waits
  DecodeResult expired;
  JobOptions options;
  options.deadline = std::chrono::steady_clock::now();  // already passed
  ASSERT_TRUE(
      submit_accepted(engine.submit(1, frames[0], &expired, options)));
  release = true;
  engine.drain();
  EXPECT_EQ(expired.status, DecodeStatus::kDeadlineExpired);
  EXPECT_EQ(expired.iterations, 0u);  // no decoder ever saw the frame
  EXPECT_FALSE(expired.converged);
  const auto m = engine.metrics();
  EXPECT_EQ(m.jobs_expired, 1u);
  EXPECT_EQ(m.jobs_completed, 2u);  // expiry still completes the job
  std::size_t worker_jobs = 0;
  for (const auto& w : m.workers) worker_jobs += w.jobs;
  EXPECT_EQ(worker_jobs, 1u);  // only the gate task ran on a worker
  EXPECT_EQ(m.latency.samples, 1u);  // expired jobs don't skew latency
}

TEST(BatchEngine, CancelTokenBailsMidDecode) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto frames = make_frames(code, 1, 0.0F);  // too noisy to converge
  BatchEngine engine(fixed_factory(code, 50), engine_config(1, 8));
  // A slotless task job cannot be completed at the queue door, so an
  // expired deadline instead runs the task under a pre-expired token: the
  // decoder must bail at the first layer boundary.
  DecodeResult result;
  std::atomic<bool> ran{false};
  JobOptions options;
  options.deadline = std::chrono::steady_clock::now();
  const SubmitStatus s = engine.submit_task(
      0,
      [&](Decoder& decoder) {
        ran = true;
        result = decoder.decode(frames[0]);
        return result;
      },
      options);
  ASSERT_TRUE(submit_accepted(s));
  engine.drain();
  EXPECT_TRUE(ran.load());
  EXPECT_EQ(result.status, DecodeStatus::kDeadlineExpired);
  EXPECT_LE(result.iterations, 1u);  // bailed without burning the budget
}

TEST(BatchEngine, RejectNewestReportsAndCounts) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto frames = make_frames(code, 3, 4.0F);
  BatchEngineConfig config;
  config.num_workers = 1;
  config.queue_capacity = 1;
  config.overload_policy = OverloadPolicy::kRejectNewest;
  BatchEngine engine(fixed_factory(code), config);
  std::atomic<bool> running{false}, release{false};
  ASSERT_TRUE(submit_accepted(
      engine.submit_task(0, gate_task(running, release))));
  wait_for(running);
  std::vector<DecodeResult> slots(3);
  ASSERT_TRUE(submit_accepted(engine.submit(1, frames[1], &slots[1])));
  // Queue full (job 1 waiting): admission control refuses the next one
  // without blocking; the slot is untouched and the caller keeps the frame.
  EXPECT_EQ(engine.submit(2, frames[2], &slots[2]),
            SubmitStatus::kRejectedQueueFull);
  release = true;
  engine.drain();
  const auto m = engine.metrics();
  EXPECT_EQ(m.jobs_rejected, 1u);
  EXPECT_EQ(m.jobs_submitted, 2u);  // rejected job never counted submitted
  EXPECT_EQ(m.jobs_completed, 2u);
  EXPECT_GE(slots[1].iterations, 1u);
  EXPECT_EQ(slots[2].iterations, 0u);  // never ran
}

TEST(BatchEngine, ShedOldestCompletesEvictedJob) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto frames = make_frames(code, 3, 4.0F);
  BatchEngineConfig config;
  config.num_workers = 1;
  config.queue_capacity = 1;
  config.overload_policy = OverloadPolicy::kShedOldest;
  BatchEngine engine(fixed_factory(code), config);
  std::atomic<bool> running{false}, release{false};
  ASSERT_TRUE(submit_accepted(
      engine.submit_task(0, gate_task(running, release))));
  wait_for(running);
  std::vector<DecodeResult> slots(3);
  ASSERT_TRUE(submit_accepted(engine.submit(1, frames[1], &slots[1])));
  // Queue full: the new job displaces the stale one, which completes as
  // shed — every accepted job completes exactly once, shed or decoded.
  EXPECT_EQ(engine.submit(2, frames[2], &slots[2]),
            SubmitStatus::kAcceptedShedOldest);
  release = true;
  engine.drain();
  EXPECT_EQ(slots[1].status, DecodeStatus::kShedOverload);
  EXPECT_EQ(slots[1].iterations, 0u);
  EXPECT_GE(slots[2].iterations, 1u);  // the fresh job decoded
  const auto m = engine.metrics();
  EXPECT_EQ(m.jobs_shed, 1u);
  EXPECT_EQ(m.jobs_submitted, 3u);
  EXPECT_EQ(m.jobs_completed, 3u);
}

TEST(BatchEngine, MetricsReadableDuringLiveBatch) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto frames = make_frames(code, 48, 2.0F);
  BatchEngine engine(fixed_factory(code), engine_config(2, 8));
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    // Hammer the snapshot while jobs are in flight; TSAN guards this.
    while (!stop.load()) {
      const auto m = engine.metrics();
      EXPECT_LE(m.jobs_completed, m.jobs_submitted);
      EXPECT_LE(m.latency.p50_us, m.latency.max_us + 1e-9);
    }
  });
  std::vector<DecodeResult> slots(frames.size());
  for (std::size_t f = 0; f < frames.size(); ++f)
    ASSERT_TRUE(submit_accepted(engine.submit(f, frames[f], &slots[f])));
  engine.drain();
  stop = true;
  reader.join();
  const auto m = engine.metrics();
  EXPECT_EQ(m.jobs_completed, frames.size());
}

TEST(BatchEngine, DestructorWithJobsInFlightCompletesThem) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto frames = make_frames(code, 16, 4.0F);
  std::vector<DecodeResult> slots(frames.size());
  {
    BatchEngine engine(fixed_factory(code), engine_config(2, 32));
    for (std::size_t f = 0; f < frames.size(); ++f)
      ASSERT_TRUE(submit_accepted(engine.submit(f, frames[f], &slots[f])));
    // No drain: the destructor closes the queue, the workers finish what
    // was accepted, and the join guarantees every slot write is visible.
  }
  for (const auto& r : slots) EXPECT_GE(r.iterations, 1u);
}

TEST(BatchEngine, MetricsAggregateDecodeStatistics) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto frames = make_frames(code, 20, 6.0F);
  BatchEngine engine(fixed_factory(code), engine_config(2, 16));
  const auto results = engine.decode_batch(frames);
  const auto m = engine.metrics();
  EXPECT_EQ(m.jobs_submitted, frames.size());
  EXPECT_EQ(m.jobs_completed, frames.size());
  EXPECT_EQ(m.decoded_bits, frames.size() * code.n());
  EXPECT_EQ(m.decoded_info_bits, frames.size() * code.k());
  EXPECT_GT(m.wall_seconds, 0.0);
  EXPECT_GT(m.code_throughput_mbps, 0.0);
  EXPECT_GT(m.info_throughput_mbps, 0.0);
  // Rate-1/2 code: the info rate is exactly half the code rate, and both
  // divide the same wall clock, so the ratio is exact.
  EXPECT_DOUBLE_EQ(m.info_throughput_mbps * 2.0, m.code_throughput_mbps);
  EXPECT_EQ(m.queue_capacity, 16u);
  EXPECT_EQ(m.latency.samples, frames.size());
  EXPECT_GT(m.latency.p50_us, 0.0);
  EXPECT_LE(m.latency.p50_us, m.latency.p95_us);
  EXPECT_LE(m.latency.p95_us, m.latency.p99_us);
  EXPECT_LE(m.latency.p99_us, m.latency.max_us);
  ASSERT_EQ(m.workers.size(), 2u);
  std::size_t jobs = 0, expected_iterations = 0;
  for (const auto& w : m.workers) jobs += w.jobs;
  EXPECT_EQ(jobs, frames.size());
  for (const auto& r : results) expected_iterations += r.iterations;
  EXPECT_EQ(m.sum_iterations(), expected_iterations);
  // High SNR: everything converges, so every decode terminated early.
  EXPECT_EQ(m.status_total(DecodeStatus::kConverged), frames.size());
  std::size_t early = 0;
  for (const auto& w : m.workers) early += w.early_terminations;
  EXPECT_EQ(early, frames.size());
  EXPECT_GT(m.avg_iterations(), 0.0);
  EXPECT_EQ(m.jobs_expired, 0u);
  EXPECT_EQ(m.jobs_shed, 0u);
  EXPECT_EQ(m.jobs_rejected, 0u);
  EXPECT_EQ(m.workers_quarantined, 0u);
}

TEST(BatchEngine, SubmitTaskRunsOnWorkerDecoder) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto frames = make_frames(code, 8, 6.0F);
  BatchEngine engine(fixed_factory(code), engine_config(2, 8));
  std::vector<std::size_t> iterations(frames.size(), 0);
  for (std::size_t f = 0; f < frames.size(); ++f) {
    const SubmitStatus s = engine.submit_task(f, [&, f](Decoder& decoder) {
      DecodeResult r = decoder.decode(frames[f]);
      iterations[f] = r.iterations;
      return r;
    });
    ASSERT_TRUE(submit_accepted(s));
  }
  engine.drain();
  const auto m = engine.metrics();
  EXPECT_EQ(m.jobs_completed, frames.size());
  for (const auto it : iterations) EXPECT_GE(it, 1u);
  EXPECT_EQ(m.decoded_bits, frames.size() * code.n());
}

TEST(BatchEngine, EscalationRungSelectsLadderDecoder) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto frames = make_frames(code, 8, 2.0F);
  // Reference: what the 30-iteration decoder produces for each frame.
  std::vector<DecodeResult> reference;
  {
    const auto decoder = fixed_factory(code, 30)();
    for (const auto& f : frames) reference.push_back(decoder->decode(f));
  }
  // Find a frame the 1-iteration primary cannot finish.
  std::size_t hard = frames.size();
  for (std::size_t f = 0; f < frames.size(); ++f)
    if (reference[f].iterations >= 2) { hard = f; break; }
  ASSERT_LT(hard, frames.size()) << "no frame needed >= 2 iterations";

  BatchEngineConfig config;
  config.num_workers = 1;
  config.queue_capacity = 8;
  config.escalation_factories = {fixed_factory(code, 30)};
  BatchEngine engine(fixed_factory(code, 1), config);
  DecodeResult primary, escalated, clamped;
  ASSERT_TRUE(submit_accepted(engine.submit(0, frames[hard], &primary)));
  JobOptions rung1;
  rung1.rung = 1;
  ASSERT_TRUE(
      submit_accepted(engine.submit(1, frames[hard], &escalated, rung1)));
  JobOptions rung9;  // beyond the ladder: clamps to its last entry
  rung9.rung = 9;
  ASSERT_TRUE(
      submit_accepted(engine.submit(2, frames[hard], &clamped, rung9)));
  engine.drain();
  EXPECT_EQ(primary.iterations, 1u);  // primary budget is one iteration
  EXPECT_FALSE(primary.converged);
  EXPECT_EQ(escalated.iterations, reference[hard].iterations);
  EXPECT_EQ(escalated.converged, reference[hard].converged);
  EXPECT_EQ(clamped.iterations, reference[hard].iterations);
}

TEST(BatchEngine, ThrowingJobIsCountedNotFatal) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  BatchEngine engine(fixed_factory(code), engine_config(2, 8));
  std::vector<DecodeResult> results(3);
  // Wrong LLR length: the decoder's precondition check throws on a worker.
  ASSERT_TRUE(submit_accepted(
      engine.submit(0, std::vector<float>(5, 0.0F), &results[0])));
  const auto good = make_frames(code, 2, 6.0F);
  ASSERT_TRUE(submit_accepted(engine.submit(1, good[0], &results[1])));
  ASSERT_TRUE(submit_accepted(engine.submit(2, good[1], &results[2])));
  engine.drain();
  const auto m = engine.metrics();
  EXPECT_EQ(m.jobs_completed, 3u);
  std::size_t exceptions = 0;
  for (const auto& w : m.workers) exceptions += w.exceptions;
  EXPECT_EQ(exceptions, 1u);
  EXPECT_EQ(m.decoded_bits, 2 * code.n());  // failed job decoded nothing
  EXPECT_FALSE(results[0].converged);       // slot left at default
  EXPECT_TRUE(results[1].converged);
  EXPECT_TRUE(results[2].converged);
}

TEST(BatchEngine, QuarantineReplacesStrikingWorker) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  BatchEngineConfig config;
  config.num_workers = 1;
  config.queue_capacity = 16;
  config.quarantine_strike_threshold = 2;
  config.max_replacement_workers = 2;
  BatchEngine engine(fixed_factory(code), config);
  std::vector<DecodeResult> bad(2);
  // Two throwing jobs = two strikes on the only worker: it is quarantined
  // and a replacement spawned before it retires.
  for (std::size_t f = 0; f < bad.size(); ++f)
    ASSERT_TRUE(submit_accepted(
        engine.submit(f, std::vector<float>(3, 0.0F), &bad[f])));
  engine.drain();
  // The pool must still decode: the replacement owns a fresh decoder.
  const auto good = make_frames(code, 4, 6.0F);
  std::vector<DecodeResult> slots(good.size());
  for (std::size_t f = 0; f < good.size(); ++f)
    ASSERT_TRUE(
        submit_accepted(engine.submit(10 + f, good[f], &slots[f])));
  engine.drain();
  for (const auto& r : slots) EXPECT_TRUE(r.converged);
  const auto m = engine.metrics();
  EXPECT_EQ(m.workers_quarantined, 1u);
  EXPECT_EQ(m.workers_spawned, 1u);
  ASSERT_EQ(m.workers.size(), 2u);  // original + replacement
  EXPECT_TRUE(m.workers[0].quarantined);
  EXPECT_GE(m.workers[0].strikes, 2u);
  EXPECT_FALSE(m.workers[1].quarantined);
  EXPECT_EQ(m.jobs_completed, bad.size() + good.size());
}

TEST(BatchEngine, InvalidConfigRejected) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  EXPECT_THROW(BatchEngine(nullptr, engine_config(1, 8)), Error);
  EXPECT_THROW(BatchEngine(fixed_factory(code), engine_config(0, 8)), Error);
  EXPECT_THROW(BatchEngine(fixed_factory(code), engine_config(1, 0)), Error);
  BatchEngineConfig null_rung;
  null_rung.escalation_factories.push_back(nullptr);
  EXPECT_THROW(BatchEngine(fixed_factory(code), null_rung), Error);
}

// ---------------------------------------------------------- retry policy ----

TEST(RetryPolicy, DefaultsAndValidation) {
  const RetryPolicy none = RetryPolicy::none();
  EXPECT_FALSE(none.enabled());
  EXPECT_FALSE(none.should_retry(DecodeStatus::kMaxIterations, 1));
  const RetryPolicy three = RetryPolicy::up_to(3);
  EXPECT_TRUE(three.enabled());
  EXPECT_TRUE(three.should_retry(DecodeStatus::kMaxIterations, 1));
  EXPECT_TRUE(three.should_retry(DecodeStatus::kWatchdogAbort, 2));
  EXPECT_FALSE(three.should_retry(DecodeStatus::kMaxIterations, 3));
  EXPECT_FALSE(three.should_retry(DecodeStatus::kConverged, 1));
  EXPECT_FALSE(three.should_retry(DecodeStatus::kDeadlineExpired, 1));
  EXPECT_FALSE(three.should_retry(DecodeStatus::kShedOverload, 1));
  EXPECT_THROW(RetryPolicy::up_to(0), Error);
  RetryPolicy bad;
  bad.retry_statuses = retry_status_bit(DecodeStatus::kConverged);
  EXPECT_THROW(validate(bad), Error);
}

TEST(RetryPolicy, RetrySeedDistinctPerFrameAndAttempt) {
  const std::uint64_t base = 2009;
  EXPECT_NE(retry_seed(base, 0, 1), retry_seed(base, 0, 2));
  EXPECT_NE(retry_seed(base, 0, 1), retry_seed(base, 1, 1));
  EXPECT_NE(retry_seed(base, 3, 2), retry_seed(base, 2, 3));
  // Deterministic: same key, same seed.
  EXPECT_EQ(retry_seed(base, 5, 2), retry_seed(base, 5, 2));
}

TEST(RetryPolicy, DefaultLadderEscalatesBudgetThenWidth) {
  FixedFormat base;  // q8.2
  const auto ladder = default_escalation_ladder(10, base);
  ASSERT_EQ(ladder.size(), 2u);
  EXPECT_EQ(ladder[0].max_iterations, 20u);
  EXPECT_EQ(ladder[0].format.total_bits, base.total_bits);
  EXPECT_EQ(ladder[1].max_iterations, 30u);
  EXPECT_EQ(ladder[1].format.total_bits, base.total_bits + 2);
  // The width escalation saturates at the decoder's 16-bit ceiling.
  FixedFormat wide;
  wide.total_bits = 15;
  EXPECT_EQ(default_escalation_ladder(10, wide)[1].format.total_bits, 16);
}

// ------------------------------------------------------------ supervisor ----

SupervisorConfig make_supervisor_config(const QCLdpcCode& code,
                                        unsigned workers,
                                        std::size_t attempts) {
  SupervisorConfig config;
  config.engine.num_workers = workers;
  config.engine.queue_capacity = 16;
  config.engine.escalation_factories = {fixed_factory(code, 10),
                                        fixed_factory(code, 30)};
  config.retry = RetryPolicy::none();
  config.retry.max_attempts = attempts;
  return config;
}

TEST(Supervisor, RetryEscalatesAndRecoversFailedFrames) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto frames = make_frames(code, 24, 1.5F);
  // Baseline: how many frames the starved 2-iteration primary fails.
  std::size_t primary_failures = 0;
  {
    const auto decoder = fixed_factory(code, 2)();
    for (const auto& f : frames)
      if (!decoder->decode(f).converged) ++primary_failures;
  }
  ASSERT_GT(primary_failures, 0u) << "test needs a failing primary";

  DecodeSupervisor supervisor(fixed_factory(code, 2),
                              make_supervisor_config(code, 2, 3));
  std::vector<DecodeResult> slots(frames.size());
  for (std::size_t f = 0; f < frames.size(); ++f)
    ASSERT_TRUE(
        submit_accepted(supervisor.submit(f, frames[f], &slots[f])));
  supervisor.drain();

  const SupervisorMetrics m = supervisor.metrics();
  EXPECT_GE(m.retry.retries_submitted, primary_failures);
  ASSERT_EQ(m.retry.finished_by_attempt.size(), 3u);
  std::size_t finished = 0;
  for (const auto c : m.retry.finished_by_attempt) finished += c;
  EXPECT_EQ(finished, frames.size());  // every frame finished exactly once
  EXPECT_EQ(m.retry.finished_by_attempt[0], frames.size() - primary_failures);
  // The ladder rescues frames the primary failed (10 then 30 iterations at
  // 1.5 dB recover essentially everything).
  std::size_t rescued = 0;
  for (std::size_t a = 1; a < m.retry.recovered_by_attempt.size(); ++a)
    rescued += m.retry.recovered_by_attempt[a];
  EXPECT_GT(rescued, 0u);
  std::size_t converged = 0;
  for (const auto& r : slots) converged += r.converged ? 1u : 0u;
  EXPECT_EQ(converged, frames.size() - m.retry.exhausted_frames);
  EXPECT_EQ(m.engine.jobs_completed,
            frames.size() + m.retry.retries_submitted);
}

TEST(Supervisor, RetryResultsBitIdenticalAcrossWorkersAndPolicies) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto frames = make_frames(code, 24, 1.5F);
  // The determinism contract extended to retries: attempts are keyed
  // (frame_index, attempt), so the final per-frame results — including
  // which attempt finished each frame — are identical for any worker count
  // and any overload policy (with capacity for every job, the policies
  // admit identical work).
  auto run = [&](unsigned workers, OverloadPolicy policy) {
    SupervisorConfig config = make_supervisor_config(code, workers, 3);
    config.engine.queue_capacity = frames.size();
    config.engine.overload_policy = policy;
    DecodeSupervisor supervisor(fixed_factory(code, 2), config);
    std::vector<DecodeResult> slots(frames.size());
    for (std::size_t f = 0; f < frames.size(); ++f) {
      const SubmitStatus s = supervisor.submit(f, frames[f], &slots[f]);
      EXPECT_TRUE(submit_accepted(s));
    }
    supervisor.drain();
    return std::make_pair(std::move(slots),
                          supervisor.metrics().retry.retries_submitted);
  };
  const auto [base, base_retries] = run(1, OverloadPolicy::kBlock);
  ASSERT_GT(base_retries, 0u);  // the contract is vacuous without retries
  const std::vector<std::pair<unsigned, OverloadPolicy>> variants{
      {2, OverloadPolicy::kBlock},
      {8, OverloadPolicy::kBlock},
      {2, OverloadPolicy::kRejectNewest},
      {2, OverloadPolicy::kShedOldest}};
  for (const auto& [workers, policy] : variants) {
    const auto [slots, retries] = run(workers, policy);
    EXPECT_EQ(retries, base_retries)
        << workers << " workers, " << to_string(policy);
    ASSERT_EQ(slots.size(), base.size());
    for (std::size_t f = 0; f < base.size(); ++f) {
      EXPECT_EQ(slots[f].status, base[f].status) << f;
      EXPECT_EQ(slots[f].iterations, base[f].iterations) << f;
      for (std::size_t i = 0; i < code.n(); ++i)
        ASSERT_EQ(slots[f].hard_bits.get(i), base[f].hard_bits.get(i))
            << "frame " << f << " bit " << i << " workers " << workers
            << " policy " << to_string(policy);
    }
  }
}

TEST(Supervisor, ExhaustedRetriesKeepLastAttemptResult) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto frames = make_frames(code, 4, 0.0F);  // hopeless SNR
  SupervisorConfig config;
  config.engine.num_workers = 2;
  config.engine.queue_capacity = 16;
  // Every rung is equally starved: no attempt can converge.
  config.engine.escalation_factories = {fixed_factory(code, 1)};
  config.retry = RetryPolicy::none();
  config.retry.max_attempts = 2;
  DecodeSupervisor supervisor(fixed_factory(code, 1), config);
  std::vector<DecodeResult> slots(frames.size());
  for (std::size_t f = 0; f < frames.size(); ++f)
    ASSERT_TRUE(
        submit_accepted(supervisor.submit(f, frames[f], &slots[f])));
  supervisor.drain();
  const SupervisorMetrics m = supervisor.metrics();
  EXPECT_EQ(m.retry.exhausted_frames, frames.size());
  EXPECT_EQ(m.retry.retries_submitted, frames.size());
  for (const auto& r : slots) {
    EXPECT_FALSE(r.converged);
    EXPECT_EQ(r.status, DecodeStatus::kMaxIterations);
    EXPECT_EQ(r.iterations, 1u);  // the last (rung-1) attempt's result
  }
}

TEST(Supervisor, DeadlinePassedAbandonsRetry) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  SupervisorConfig config = make_supervisor_config(code, 1, 2);
  DecodeSupervisor supervisor(fixed_factory(code), config);
  DecodeResult slot;
  std::atomic<int> attempts_run{0};
  // The first attempt outlives the frame's deadline; the supervisor must
  // not queue a second attempt that would be dead on arrival.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(40);
  const SubmitStatus s = supervisor.submit_task(
      0,
      [&](std::size_t) {
        return [&](Decoder&) {
          ++attempts_run;
          std::this_thread::sleep_for(std::chrono::milliseconds(120));
          DecodeResult r;
          r.status = DecodeStatus::kMaxIterations;
          r.iterations = 1;
          return r;
        };
      },
      &slot, deadline);
  ASSERT_TRUE(submit_accepted(s));
  supervisor.drain();
  EXPECT_EQ(attempts_run.load(), 1);
  EXPECT_EQ(slot.status, DecodeStatus::kMaxIterations);
  const SupervisorMetrics m = supervisor.metrics();
  EXPECT_EQ(m.retry.retries_abandoned_deadline, 1u);
  EXPECT_EQ(m.retry.retries_submitted, 0u);
}

// ------------------------------------------------------------ block jobs ----

DecoderFactory batched_factory(const QCLdpcCode& code,
                               std::size_t max_iterations = 10) {
  return [&code, max_iterations] {
    DecoderOptions opt;
    opt.max_iterations = max_iterations;
    return make_decoder("layered-minsum-simd-batched", code, opt);
  };
}

TEST(BatchEngineBlocks, SubmitBlockResolvesEveryFrameOnce) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto frames = make_frames(code, 6, 4.0F);
  BatchEngine engine(batched_factory(code), engine_config(1, 8));
  std::vector<DecodeResult> slots(frames.size());
  std::vector<BlockFrameJob> block;
  for (std::size_t f = 0; f < frames.size(); ++f)
    block.push_back(BlockFrameJob{f, frames[f], &slots[f], std::nullopt});
  ASSERT_TRUE(submit_accepted(engine.submit_block(std::move(block))));
  engine.drain();
  for (const auto& r : slots) {
    EXPECT_GE(r.iterations, 1u);
    EXPECT_TRUE(r.converged);
  }
  const auto m = engine.metrics();
  EXPECT_EQ(m.jobs_submitted, frames.size());
  EXPECT_EQ(m.jobs_completed, frames.size());
  EXPECT_EQ(m.decoded_bits, frames.size() * code.n());
  EXPECT_EQ(m.decoded_info_bits, frames.size() * code.k());
  EXPECT_EQ(m.latency.samples, frames.size());
}

TEST(BatchEngineBlocks, DecodeBatchBlockShapeMatchesPerFrame) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  // 2.0 dB for a mix of outcomes; 21 frames so the final block is ragged
  // for every lane width (8, 16, 32).
  const auto frames = make_frames(code, 21, 2.0F);
  std::vector<DecodeResult> reference;
  {
    BatchEngine engine(batched_factory(code), engine_config(1, 32));
    reference = engine.decode_batch(frames);
  }
  for (const std::size_t width : {3u, 8u, 16u}) {
    BatchEngineConfig config = engine_config(2, 32);
    config.block_frames = width;
    BatchEngine engine(batched_factory(code), config);
    const auto results = engine.decode_batch(frames);
    ASSERT_EQ(results.size(), reference.size());
    for (std::size_t f = 0; f < results.size(); ++f) {
      EXPECT_EQ(results[f].iterations, reference[f].iterations) << f;
      EXPECT_EQ(results[f].converged, reference[f].converged) << f;
      EXPECT_EQ(results[f].hard_bits, reference[f].hard_bits) << f;
    }
    const auto m = engine.metrics();
    EXPECT_EQ(m.jobs_completed, frames.size());
    EXPECT_EQ(m.decoded_info_bits, frames.size() * code.k());
  }
}

TEST(BatchEngineBlocks, ExpiredFrameInBlockResolvesLaneMates) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto frames = make_frames(code, 5, 4.0F);
  BatchEngine engine(batched_factory(code), engine_config(1, 8));
  std::vector<DecodeResult> slots(frames.size());
  std::vector<BlockFrameJob> block;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    // Frame 2 is already past its deadline when the worker pops the block;
    // it must resolve kDeadlineExpired without poisoning its lane-mates.
    std::optional<std::chrono::steady_clock::time_point> deadline;
    if (f == 2) deadline = std::chrono::steady_clock::now() -
                           std::chrono::milliseconds(10);
    block.push_back(BlockFrameJob{f, frames[f], &slots[f], deadline});
  }
  ASSERT_TRUE(submit_accepted(engine.submit_block(std::move(block))));
  engine.drain();
  EXPECT_EQ(slots[2].status, DecodeStatus::kDeadlineExpired);
  EXPECT_EQ(slots[2].iterations, 0u);
  for (std::size_t f = 0; f < slots.size(); ++f) {
    if (f == 2) continue;
    EXPECT_TRUE(slots[f].converged) << f;
    EXPECT_GE(slots[f].iterations, 1u) << f;
  }
  const auto m = engine.metrics();
  EXPECT_EQ(m.jobs_completed, frames.size());
  EXPECT_EQ(m.jobs_expired, 1u);
}

TEST(BatchEngineBlocks, FallbackFramesCountedPerWorker) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto frames = make_frames(code, 4, 4.0F);
  // An iteration observer forces the batched decoder onto its per-frame
  // scalar twin; the engine must surface that silent fallback in metrics.
  DecoderFactory factory = [&code] {
    DecoderOptions opt;
    opt.max_iterations = 10;
    opt.observer = [](const IterationSnapshot&) {};
    return make_decoder("layered-minsum-simd-batched", code, opt);
  };
  BatchEngineConfig config = engine_config(1, 8);
  config.block_frames = 4;
  BatchEngine engine(factory, config);
  const auto results = engine.decode_batch(frames);
  for (const auto& r : results)
    EXPECT_EQ(r.simd_fallback, SimdFallback::kObserver);
  const auto m = engine.metrics();
  std::size_t fallbacks = 0;
  for (const auto& w : m.workers) fallbacks += w.simd_fallbacks;
  EXPECT_EQ(fallbacks, frames.size());
}

TEST(BatchEngineBlocks, DestructorCompletesBlockInFlight) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto frames = make_frames(code, 4, 4.0F);
  std::vector<DecodeResult> slots(frames.size());
  {
    BatchEngine engine(batched_factory(code), engine_config(1, 8));
    std::vector<BlockFrameJob> block;
    for (std::size_t f = 0; f < frames.size(); ++f)
      block.push_back(BlockFrameJob{f, frames[f], &slots[f], std::nullopt});
    ASSERT_TRUE(submit_accepted(engine.submit_block(std::move(block))));
    // No drain: the destructor must still resolve every frame of the block.
  }
  for (const auto& r : slots) EXPECT_GE(r.iterations, 1u);
}

TEST(Supervisor, RetryWithoutLadderRejectedAtConstruction) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  SupervisorConfig config;
  config.retry = RetryPolicy::up_to(2);  // but no escalation_factories
  EXPECT_THROW(DecodeSupervisor(fixed_factory(code), config), Error);
}

}  // namespace
}  // namespace ldpc
