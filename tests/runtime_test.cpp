// Runtime batch-engine tests: the bounded MPMC job queue, the determinism
// contract (bit-identical output for any worker count), backpressure under a
// tiny queue, and the engine metrics block.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "codes/wimax.hpp"
#include "core/decoder_factory.hpp"
#include "runtime/batch_engine.hpp"
#include "runtime/job_queue.hpp"

namespace ldpc {
namespace {

// ------------------------------------------------------------ job queue ----

TEST(JobQueue, FifoOrder) {
  BoundedJobQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(int{i}));
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(JobQueue, TryPushFailsWhenFull) {
  BoundedJobQueue<int> q(2);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(q.try_push(a));
  EXPECT_TRUE(q.try_push(b));
  EXPECT_FALSE(q.try_push(c));
  EXPECT_EQ(c, 3);  // not consumed
  int out = 0;
  ASSERT_TRUE(q.pop(out));
  EXPECT_TRUE(q.try_push(c));
}

TEST(JobQueue, CloseDrainsThenStops) {
  BoundedJobQueue<int> q(4);
  EXPECT_TRUE(q.push(7));
  EXPECT_TRUE(q.push(8));
  q.close();
  EXPECT_FALSE(q.push(9));
  int out = 0;
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 8);
  EXPECT_FALSE(q.pop(out));  // closed and drained
  EXPECT_TRUE(q.closed());
}

TEST(JobQueue, BlockingPushWaitsForConsumer) {
  BoundedJobQueue<int> q(1);
  EXPECT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));  // blocks until the pop below
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  int out = 0;
  ASSERT_TRUE(q.pop(out));
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.size(), 1u);
}

TEST(JobQueue, OccupancyTracksDepth) {
  BoundedJobQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  const RunningStats occ = q.occupancy();
  EXPECT_EQ(occ.count(), 3u);
  EXPECT_DOUBLE_EQ(occ.max(), 3.0);
  EXPECT_DOUBLE_EQ(occ.mean(), 2.0);  // depths 1, 2, 3
  EXPECT_THROW(BoundedJobQueue<int>(0), Error);
}

// --------------------------------------------------------- batch engine ----

/// Deterministic noisy frames of the all-zero codeword.
std::vector<std::vector<float>> make_frames(const QCLdpcCode& code,
                                            std::size_t count, float ebn0_db) {
  const float variance = awgn_noise_variance(ebn0_db, code.rate());
  std::vector<std::vector<float>> frames;
  frames.reserve(count);
  const BitVec zero(code.n());
  for (std::size_t f = 0; f < count; ++f) {
    AwgnChannel awgn(variance, 1000 + f);
    frames.push_back(BpskModem::demodulate(
        awgn.transmit(BpskModem::modulate(zero)), variance));
  }
  return frames;
}

DecoderFactory fixed_factory(const QCLdpcCode& code) {
  return [&code] {
    DecoderOptions opt;
    return make_decoder("layered-minsum-fixed", code, opt);
  };
}

TEST(BatchEngine, DecodeBatchKeepsInputOrder) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto frames = make_frames(code, 12, 6.0F);
  BatchEngine engine(fixed_factory(code), {2, 8});
  const auto results = engine.decode_batch(frames);
  ASSERT_EQ(results.size(), frames.size());
  // High SNR: every frame decodes to the all-zero codeword.
  for (const auto& r : results) {
    EXPECT_TRUE(r.converged);
    for (std::size_t i = 0; i < code.n(); ++i) EXPECT_FALSE(r.hard_bits.get(i));
  }
}

TEST(BatchEngine, BitIdenticalAcrossWorkerCounts) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto frames = make_frames(code, 24, 1.5F);  // noisy: varied outcomes
  auto decode_all = [&](unsigned workers) {
    BatchEngine engine(fixed_factory(code), {workers, 16});
    return engine.decode_batch(frames);
  };
  const auto base = decode_all(1);
  for (unsigned workers : {2u, 8u}) {
    const auto results = decode_all(workers);
    ASSERT_EQ(results.size(), base.size());
    for (std::size_t f = 0; f < base.size(); ++f) {
      EXPECT_EQ(results[f].iterations, base[f].iterations) << f;
      EXPECT_EQ(results[f].converged, base[f].converged) << f;
      EXPECT_EQ(results[f].status, base[f].status) << f;
      for (std::size_t i = 0; i < code.n(); ++i)
        ASSERT_EQ(results[f].hard_bits.get(i), base[f].hard_bits.get(i))
            << "frame " << f << " bit " << i << " workers " << workers;
    }
  }
}

TEST(BatchEngine, BackpressureWithTinyQueue) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto frames = make_frames(code, 40, 4.0F);
  // Queue of 1: every submit beyond the first blocks until a worker frees a
  // slot — the batch still completes and stays ordered.
  BatchEngine engine(fixed_factory(code), {2, 1});
  const auto results = engine.decode_batch(frames);
  ASSERT_EQ(results.size(), frames.size());
  const auto m = engine.metrics();
  EXPECT_EQ(m.jobs_completed, frames.size());
  EXPECT_LE(m.queue_max_occupancy, 1u);
}

TEST(BatchEngine, TrySubmitReportsFullQueue) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  auto frames = make_frames(code, 64, 4.0F);
  BatchEngine engine(fixed_factory(code), {1, 2});
  std::vector<DecodeResult> results(frames.size());
  std::size_t accepted = 0, rejected = 0;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    if (engine.try_submit(f, frames[f], &results[f])) {
      ++accepted;
    } else {
      ++rejected;
      EXPECT_FALSE(frames[f].empty());  // frame handed back intact
      engine.submit(f, std::move(frames[f]), &results[f]);  // blocking retry
    }
  }
  engine.drain();
  EXPECT_EQ(accepted + rejected, frames.size());
  for (const auto& r : results) EXPECT_GE(r.iterations, 1u);
}

TEST(BatchEngine, DrainIsReusable) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto frames = make_frames(code, 6, 6.0F);
  BatchEngine engine(fixed_factory(code), {2, 8});
  engine.drain();  // nothing submitted: returns immediately
  std::vector<DecodeResult> first(frames.size());
  for (std::size_t f = 0; f < frames.size(); ++f)
    engine.submit(f, frames[f], &first[f]);
  engine.drain();
  std::vector<DecodeResult> second(frames.size());
  for (std::size_t f = 0; f < frames.size(); ++f)
    engine.submit(f, frames[f], &second[f]);
  engine.drain();
  const auto m = engine.metrics();
  EXPECT_EQ(m.jobs_submitted, 2 * frames.size());
  EXPECT_EQ(m.jobs_completed, 2 * frames.size());
  for (std::size_t f = 0; f < frames.size(); ++f)
    EXPECT_EQ(first[f].iterations, second[f].iterations);
}

TEST(BatchEngine, MetricsAggregateDecodeStatistics) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto frames = make_frames(code, 20, 6.0F);
  BatchEngine engine(fixed_factory(code), {2, 16});
  const auto results = engine.decode_batch(frames);
  const auto m = engine.metrics();
  EXPECT_EQ(m.jobs_submitted, frames.size());
  EXPECT_EQ(m.jobs_completed, frames.size());
  EXPECT_EQ(m.decoded_bits, frames.size() * code.n());
  EXPECT_GT(m.wall_seconds, 0.0);
  EXPECT_GT(m.throughput_mbps, 0.0);
  EXPECT_EQ(m.queue_capacity, 16u);
  EXPECT_EQ(m.latency.samples, frames.size());
  EXPECT_GT(m.latency.p50_us, 0.0);
  EXPECT_LE(m.latency.p50_us, m.latency.p95_us);
  EXPECT_LE(m.latency.p95_us, m.latency.p99_us);
  EXPECT_LE(m.latency.p99_us, m.latency.max_us);
  ASSERT_EQ(m.workers.size(), 2u);
  std::size_t jobs = 0, expected_iterations = 0;
  for (const auto& w : m.workers) jobs += w.jobs;
  EXPECT_EQ(jobs, frames.size());
  for (const auto& r : results) expected_iterations += r.iterations;
  EXPECT_EQ(m.sum_iterations(), expected_iterations);
  // High SNR: everything converges, so every decode terminated early.
  EXPECT_EQ(m.status_total(DecodeStatus::kConverged), frames.size());
  std::size_t early = 0;
  for (const auto& w : m.workers) early += w.early_terminations;
  EXPECT_EQ(early, frames.size());
  EXPECT_GT(m.avg_iterations(), 0.0);
}

TEST(BatchEngine, SubmitTaskRunsOnWorkerDecoder) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto frames = make_frames(code, 8, 6.0F);
  BatchEngine engine(fixed_factory(code), {2, 8});
  std::vector<std::size_t> iterations(frames.size(), 0);
  for (std::size_t f = 0; f < frames.size(); ++f) {
    engine.submit_task(f, [&, f](Decoder& decoder) {
      DecodeResult r = decoder.decode(frames[f]);
      iterations[f] = r.iterations;
      return r;
    });
  }
  engine.drain();
  const auto m = engine.metrics();
  EXPECT_EQ(m.jobs_completed, frames.size());
  for (const auto it : iterations) EXPECT_GE(it, 1u);
  EXPECT_EQ(m.decoded_bits, frames.size() * code.n());
}

TEST(BatchEngine, ThrowingJobIsCountedNotFatal) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  BatchEngine engine(fixed_factory(code), {2, 8});
  std::vector<DecodeResult> results(3);
  // Wrong LLR length: the decoder's precondition check throws on a worker.
  engine.submit(0, std::vector<float>(5, 0.0F), &results[0]);
  const auto good = make_frames(code, 2, 6.0F);
  engine.submit(1, good[0], &results[1]);
  engine.submit(2, good[1], &results[2]);
  engine.drain();
  const auto m = engine.metrics();
  EXPECT_EQ(m.jobs_completed, 3u);
  std::size_t exceptions = 0;
  for (const auto& w : m.workers) exceptions += w.exceptions;
  EXPECT_EQ(exceptions, 1u);
  EXPECT_EQ(m.decoded_bits, 2 * code.n());  // failed job decoded nothing
  EXPECT_FALSE(results[0].converged);       // slot left at default
  EXPECT_TRUE(results[1].converged);
  EXPECT_TRUE(results[2].converged);
}

TEST(BatchEngine, InvalidConfigRejected) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  EXPECT_THROW(BatchEngine(nullptr, {1, 8}), Error);
  EXPECT_THROW(BatchEngine(fixed_factory(code), {0, 8}), Error);
  EXPECT_THROW(BatchEngine(fixed_factory(code), {1, 0}), Error);
}

}  // namespace
}  // namespace ldpc
