// Fixed-point decoder tests: quantization formats, the LayerRowKernel
// (Algorithm 1's per-row arithmetic, shared with the hardware simulators),
// and the full fixed-point layered decoder including quantization-loss and
// early-termination behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "codes/wimax.hpp"
#include "core/layered_minsum_fixed.hpp"
#include "core/layered_minsum_float.hpp"
#include "util/rng.hpp"

namespace ldpc {
namespace {

// ---------------------------------------------------------- FixedFormat ----

TEST(FixedFormat, RailValues) {
  const FixedFormat f{8, 2};
  EXPECT_EQ(f.max_code(), 127);
  EXPECT_EQ(f.min_code(), -128);
  const FixedFormat g{6, 1};
  EXPECT_EQ(g.max_code(), 31);
  EXPECT_EQ(g.min_code(), -32);
}

TEST(FixedFormat, QuantizeRoundsToNearest) {
  const FixedFormat f{8, 2};  // resolution 0.25
  EXPECT_EQ(f.quantize(0.0F), 0);
  EXPECT_EQ(f.quantize(0.25F), 1);
  EXPECT_EQ(f.quantize(0.24F), 1);   // rounds to nearest code
  EXPECT_EQ(f.quantize(0.12F), 0);
  EXPECT_EQ(f.quantize(-0.25F), -1);
  EXPECT_EQ(f.quantize(1.0F), 4);
}

TEST(FixedFormat, QuantizeSaturates) {
  const FixedFormat f{8, 2};
  EXPECT_EQ(f.quantize(1000.0F), 127);
  EXPECT_EQ(f.quantize(-1000.0F), -128);
  EXPECT_EQ(f.quantize(31.74F), 127);
  EXPECT_EQ(f.quantize(32.0F), 127);
}

TEST(FixedFormat, DequantizeInvertsScaling) {
  const FixedFormat f{8, 3};
  EXPECT_FLOAT_EQ(f.dequantize(8), 1.0F);
  EXPECT_FLOAT_EQ(f.dequantize(-4), -0.5F);
  for (float v : {0.5F, -3.25F, 7.125F})
    EXPECT_NEAR(f.dequantize(f.quantize(v)), v, 1.0F / (1 << 3) / 2 + 1e-6);
}

TEST(FixedFormat, SignPreserved) {
  const FixedFormat f{6, 1};
  Xoshiro256 rng(4);
  for (int i = 0; i < 1000; ++i) {
    const float v = static_cast<float>(rng.gaussian()) * 5.0F;
    const auto q = f.quantize(v);
    if (std::fabs(v) >= 0.5F) {
      EXPECT_EQ(q < 0, v < 0.0F) << v;
    }
  }
}

TEST(FixedFormat, ValidateRejectsBadFormats) {
  EXPECT_THROW(validate(FixedFormat{1, 0}), Error);
  EXPECT_THROW(validate(FixedFormat{17, 2}), Error);
  EXPECT_THROW(validate(FixedFormat{8, 8}), Error);
  EXPECT_THROW(validate(FixedFormat{8, -1}), Error);
  EXPECT_NO_THROW(validate(FixedFormat{4, 0}));
}

TEST(FixedFormat, NameEncodesWidths) {
  EXPECT_EQ((FixedFormat{8, 2}).name(), "q8.2");
  EXPECT_EQ((FixedFormat{6, 1}).name(), "q6.1");
}

// -------------------------------------------------------- LayerRowKernel ----

TEST(Kernel, CheckStateTracksMin1Min2Pos) {
  LayerRowKernel::CheckState st;
  st.reset();
  st.absorb(-5, 0);
  st.absorb(3, 1);
  st.absorb(-2, 2);
  st.absorb(7, 3);
  EXPECT_EQ(st.min1, 2);
  EXPECT_EQ(st.min2, 3);
  EXPECT_EQ(st.pos1, 2u);
  // Two negative inputs: the signs cancel, so the product is positive.
  EXPECT_FALSE(st.sign_product);
}

TEST(Kernel, SignProductXorsAllSigns) {
  LayerRowKernel::CheckState st;
  st.reset();
  st.absorb(-1, 0);
  EXPECT_TRUE(st.sign_product);
  st.absorb(-1, 1);
  EXPECT_FALSE(st.sign_product);
  st.absorb(-1, 2);
  EXPECT_TRUE(st.sign_product);
  st.absorb(5, 3);
  EXPECT_TRUE(st.sign_product);  // positive leaves it unchanged
}

TEST(Kernel, TieGoesToFirstPosition) {
  LayerRowKernel::CheckState st;
  st.reset();
  st.absorb(4, 0);
  st.absorb(-4, 1);
  EXPECT_EQ(st.min1, 4);
  EXPECT_EQ(st.min2, 4);
  EXPECT_EQ(st.pos1, 0u);  // strict < keeps the first minimum
}

TEST(Kernel, ComputeQIsSaturatingSubtract) {
  const LayerRowKernel k(FixedFormat{8, 2});
  EXPECT_EQ(k.compute_q(100, -100), 127);
  EXPECT_EQ(k.compute_q(-100, 100), -128);
  EXPECT_EQ(k.compute_q(10, 3), 7);
}

TEST(Kernel, ComputeRNewUsesMin2AtPos1) {
  const LayerRowKernel k(FixedFormat{8, 2});
  LayerRowKernel::CheckState st;
  st.reset();
  st.absorb(4, 0);   // min1 = 4 @ 0
  st.absorb(-8, 1);  // min2 = 8
  st.absorb(16, 2);
  // sign product negative (one negative input).
  // At pos 0 (the minimum's own edge): magnitude from min2 = 8 -> 6 scaled.
  EXPECT_EQ(k.compute_r_new(st, 4, 0), -6);   // sign: prod(-) ^ q(+) = -
  // At pos 1: magnitude from min1 = 4 -> 3; sign: prod(-) ^ q(-) = +
  EXPECT_EQ(k.compute_r_new(st, -8, 1), 3);
  // At pos 2: magnitude 3; sign: prod(-) ^ q(+) = -
  EXPECT_EQ(k.compute_r_new(st, 16, 2), -3);
}

TEST(Kernel, ComputeRNewScalesWithShiftAddTruncation) {
  const LayerRowKernel k(FixedFormat{8, 2});
  LayerRowKernel::CheckState st;
  st.reset();
  st.absorb(7, 0);
  st.absorb(9, 1);
  // At pos 1 magnitude comes from min1=7: (7>>1)+(7>>2) = 3+1 = 4 (not 5).
  EXPECT_EQ(k.compute_r_new(st, 9, 1), 4);
}

TEST(Kernel, ComputePNewSaturates) {
  const LayerRowKernel k(FixedFormat{8, 2});
  EXPECT_EQ(k.compute_p_new(120, 30), 127);
  EXPECT_EQ(k.compute_p_new(-120, -30), -128);
  EXPECT_EQ(k.compute_p_new(-10, 30), 20);
}

TEST(Kernel, DegreeTwoRowsSupported) {
  const LayerRowKernel k(FixedFormat{8, 2});
  LayerRowKernel::CheckState st;
  st.reset();
  st.absorb(5, 0);    // min2 = 5 after the next absorb
  st.absorb(-3, 1);   // min1 = 3 @ pos 1; sign product negative
  // pos 0: extrinsic magnitude = scale(min1 = 3) = (3>>1)+(3>>2) = 1;
  // sign = prod(-) ^ sign(q=5 is +) = negative.
  EXPECT_EQ(k.compute_r_new(st, 5, 0), -1);
  // pos 1 (the minimum's own edge): magnitude = scale(min2 = 5) = 3;
  // sign = prod(-) ^ sign(q=-3 is -) = positive.
  EXPECT_EQ(k.compute_r_new(st, -3, 1), 3);
}

TEST(Kernel, DegreeOneRowYieldsZeroMessage) {
  // A degree-1 check (random_qc configurations, punctured codes) has no
  // extrinsic input: R' must be 0 — not the min2 sentinel — and the event
  // is reported through the tracked counter.
  const LayerRowKernel k(FixedFormat{8, 2});
  LayerRowKernel::CheckState st;
  st.reset();
  st.absorb(5, 0);
  EXPECT_EQ(k.compute_r_new(st, 5, 0), 0);

  long long degenerate = 0;
  LayerRowKernel counted(FixedFormat{8, 2});
  counted.track_degenerate(&degenerate);
  EXPECT_EQ(counted.compute_r_new(st, 5, 0), 0);
  EXPECT_EQ(degenerate, 1);

  // Degree-0 state (nothing absorbed) is equally degenerate.
  LayerRowKernel::CheckState empty;
  empty.reset();
  EXPECT_EQ(counted.compute_r_new(empty, 0, 0), 0);
  EXPECT_EQ(degenerate, 2);
}

TEST(Kernel, DegreeTwoRowUnaffectedByDegenerateTracking) {
  long long degenerate = 0;
  LayerRowKernel k(FixedFormat{8, 2});
  k.track_degenerate(&degenerate);
  LayerRowKernel::CheckState st;
  st.reset();
  st.absorb(5, 0);
  st.absorb(-8, 1);
  EXPECT_EQ(k.compute_r_new(st, 5, 0), -(8 / 2 + 8 / 4));  // 0.75 * 8, sign -
  EXPECT_EQ(degenerate, 0);
}

TEST(FixedDecoder, DecodesCodeWithDegreeOneRow) {
  // Second block row has a single non-zero circulant: an expanded degree-1
  // check per row, as random_qc configurations and punctured codes can
  // produce. The decoder must treat it as "no extrinsic information" (R' =
  // 0) and count the events instead of failing the kernel precondition.
  const BaseMatrix base(2, 3, {0, 1, 2, -1, -1, 0}, 4, "deg1");
  const QCLdpcCode code(base);
  DecoderOptions opt;
  opt.max_iterations = 5;
  LayeredMinSumFixedDecoder dec(code, opt, FixedFormat{8, 2});
  // Strong all-zero-codeword LLRs: converges immediately, but only if the
  // degree-1 layer does not corrupt the posteriors with sentinel garbage.
  const std::vector<float> llr(code.n(), 2.0F);
  const auto result = dec.decode(llr);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.status, DecodeStatus::kConverged);
  for (std::size_t i = 0; i < code.n(); ++i)
    EXPECT_FALSE(result.hard_bits.get(i)) << i;
  // One degenerate event per expanded row of the degree-1 layer per pass.
  EXPECT_EQ(dec.saturation().degenerate_checks,
            static_cast<long long>(code.z()) *
                static_cast<long long>(result.iterations));
}

TEST(Kernel, InvalidScaleRejected) {
  EXPECT_THROW(LayerRowKernel(FixedFormat{8, 2}, 0, 4), Error);
  EXPECT_THROW(LayerRowKernel(FixedFormat{8, 2}, 5, 4), Error);
  EXPECT_THROW(LayerRowKernel(FixedFormat{8, 2}, 3, 0), Error);
  EXPECT_NO_THROW(LayerRowKernel(FixedFormat{8, 2}, 1, 1));
}

// --------------------------------------------- fixed-point layered decoder ----

BitVec random_info(std::size_t k, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  BitVec info(k);
  for (std::size_t i = 0; i < k; ++i) info.set(i, rng.coin());
  return info;
}

struct Frame {
  BitVec codeword;
  std::vector<float> llr;
};

Frame make_frame(const QCLdpcCode& code, float ebn0_db, std::uint64_t seed) {
  const RuEncoder enc(code);
  Frame f;
  f.codeword = enc.encode(random_info(code.k(), seed));
  const float variance = awgn_noise_variance(ebn0_db, code.rate());
  AwgnChannel ch(variance, seed * 13 + 3);
  f.llr = BpskModem::demodulate(ch.transmit(BpskModem::modulate(f.codeword)),
                                variance);
  return f;
}

TEST(FixedDecoder, DecodesNoiselessChannel) {
  const auto code = make_wimax_2304_half_rate();
  DecoderOptions opt;
  LayeredMinSumFixedDecoder dec(code, opt);
  const RuEncoder enc(code);
  const BitVec word = enc.encode(random_info(code.k(), 2));
  const auto llr = BpskModem::demodulate(BpskModem::modulate(word), 0.5F);
  const auto r = dec.decode(llr);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 1u);
  EXPECT_TRUE(r.hard_bits == word);
}

TEST(FixedDecoder, CorrectsModerateNoiseAt8Bits) {
  const auto code = make_wimax_2304_half_rate();
  DecoderOptions opt;
  opt.max_iterations = 10;
  LayeredMinSumFixedDecoder dec(code, opt, FixedFormat{8, 2});
  int good = 0;
  for (std::uint64_t s = 0; s < 10; ++s) {
    const Frame f = make_frame(code, 2.2F, s);
    good += (dec.decode(f.llr).hard_bits == f.codeword);
  }
  EXPECT_GE(good, 9);
}

TEST(FixedDecoder, SixBitFormatStillDecodes) {
  const auto code = make_wimax_2304_half_rate();
  DecoderOptions opt;
  opt.max_iterations = 10;
  LayeredMinSumFixedDecoder dec(code, opt, FixedFormat{6, 1});
  int good = 0;
  for (std::uint64_t s = 0; s < 10; ++s) {
    const Frame f = make_frame(code, 2.5F, s);
    good += (dec.decode(f.llr).hard_bits == f.codeword);
  }
  EXPECT_GE(good, 8);
}

TEST(FixedDecoder, TracksFloatDecoderAtHighSnr) {
  // Quantization loss must not change decisions on comfortably decodable
  // frames.
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 48);
  DecoderOptions opt;
  opt.max_iterations = 10;
  LayeredMinSumFixedDecoder fixed(code, opt);
  LayeredMinSumFloatDecoder flt(code, opt);
  for (std::uint64_t s = 0; s < 10; ++s) {
    const Frame f = make_frame(code, 3.5F, s);
    EXPECT_TRUE(fixed.decode(f.llr).hard_bits == flt.decode(f.llr).hard_bits)
        << "seed " << s;
  }
}

TEST(FixedDecoder, DecodeQuantizedMatchesDecode) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  LayeredMinSumFixedDecoder dec(code, opt);
  const Frame f = make_frame(code, 2.0F, 5);
  std::vector<std::int32_t> codes(f.llr.size());
  for (std::size_t i = 0; i < f.llr.size(); ++i)
    codes[i] = dec.format().quantize(f.llr[i]);
  const auto a = dec.decode(f.llr);
  const auto b = dec.decode_quantized(codes);
  EXPECT_TRUE(a.hard_bits == b.hard_bits);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(FixedDecoder, EarlyTerminationReducesIterations) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 48);
  DecoderOptions et;
  et.max_iterations = 10;
  DecoderOptions no_et = et;
  no_et.early_termination = false;
  LayeredMinSumFixedDecoder d_et(code, et);
  LayeredMinSumFixedDecoder d_no(code, no_et);
  const Frame f = make_frame(code, 3.0F, 8);
  EXPECT_LT(d_et.decode(f.llr).iterations, 10u);
  EXPECT_EQ(d_no.decode(f.llr).iterations, 10u);
}

TEST(FixedDecoder, DeterministicAcrossCalls) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  LayeredMinSumFixedDecoder dec(code, opt);
  const Frame f = make_frame(code, 1.5F, 6);
  const auto a = dec.decode(f.llr);
  const auto b = dec.decode(f.llr);  // state fully reset between calls
  EXPECT_TRUE(a.hard_bits == b.hard_bits);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(FixedDecoder, PosteriorsExposedAndInRange) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  LayeredMinSumFixedDecoder dec(code, opt, FixedFormat{8, 2});
  const Frame f = make_frame(code, 2.0F, 7);
  dec.decode(f.llr);
  ASSERT_EQ(dec.posteriors().size(), code.n());
  for (const auto p : dec.posteriors()) {
    EXPECT_GE(p, -128);
    EXPECT_LE(p, 127);
  }
}

TEST(FixedDecoder, SaturatedChannelStillDecodable) {
  // Extremely strong LLRs saturate at the rails; the decoder must remain
  // consistent (rails encode maximal confidence).
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  LayeredMinSumFixedDecoder dec(code, opt);
  const RuEncoder enc(code);
  const BitVec word = enc.encode(random_info(code.k(), 11));
  std::vector<float> llr(code.n());
  for (std::size_t i = 0; i < code.n(); ++i)
    llr[i] = word.get(i) ? -1e6F : 1e6F;
  const auto r = dec.decode(llr);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.hard_bits == word);
}

TEST(FixedDecoder, CustomScaleViaOptions) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  opt.scale = 0.875F;  // maps onto 14/16
  LayeredMinSumFixedDecoder dec(code, opt);
  const Frame f = make_frame(code, 3.0F, 12);
  const auto r = dec.decode(f.llr);
  EXPECT_TRUE(r.hard_bits == f.codeword);
}

class QuantWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(QuantWidthTest, AllWidthsDecodeCleanChannel) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  const int bits = GetParam();
  LayeredMinSumFixedDecoder dec(code, opt, FixedFormat{bits, bits >= 6 ? 2 : 0});
  const RuEncoder enc(code);
  const BitVec word = enc.encode(random_info(code.k(), 13));
  const auto llr = BpskModem::demodulate(BpskModem::modulate(word), 0.5F);
  const auto r = dec.decode(llr);
  EXPECT_TRUE(r.converged) << bits << " bits";
  EXPECT_TRUE(r.hard_bits == word);
}

INSTANTIATE_TEST_SUITE_P(Widths, QuantWidthTest, ::testing::Values(4, 5, 6, 7, 8));

}  // namespace
}  // namespace ldpc
