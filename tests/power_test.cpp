// Area and power model tests: decomposition invariants, clock-gating
// behaviour (the Table I reproduction), frequency/architecture trends
// (Fig. 8b) and the throughput/latency calculators behind Table II.
#include <gtest/gtest.h>

#include "arch/arch_sim.hpp"
#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "codes/wimax.hpp"
#include "power/area_model.hpp"
#include "power/metrics.hpp"
#include "power/power_model.hpp"
#include "util/rng.hpp"

namespace ldpc {
namespace {

struct Setup {
  HardwareEstimate estimate;
  ActivityCounters activity;
  long long sram_bits;
};

Setup run_setup(ArchKind arch, double mhz, int parallelism,
                bool early_term = false) {
  static const QCLdpcCode code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  DecoderOptions opt;
  opt.max_iterations = 10;
  opt.early_termination = early_term;
  const auto est = pico.compile(code, arch, HardwareTarget{mhz, parallelism});
  ArchSimDecoder sim(code, est, opt, fmt);

  const RuEncoder enc(code);
  Xoshiro256 rng(21);
  BitVec info(code.k());
  for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
  const BitVec word = enc.encode(info);
  const float variance = awgn_noise_variance(2.0F, code.rate());
  AwgnChannel ch(variance, 31);
  const auto llr =
      BpskModem::demodulate(ch.transmit(BpskModem::modulate(word)), variance);
  std::vector<std::int32_t> codes(llr.size());
  for (std::size_t i = 0; i < llr.size(); ++i) codes[i] = fmt.quantize(llr[i]);
  const auto result = sim.decode_quantized(codes);
  return Setup{est, result.activity,
               sim.p_memory_bits() + sim.r_memory_bits()};
}

// ------------------------------------------------------------- area model ----

TEST(AreaModel, BreakdownSumsConsistently) {
  const auto s = run_setup(ArchKind::kTwoLayerPipelined, 400.0, 96);
  const AreaModel model;
  const auto a = model.estimate(s.estimate, s.sram_bits);
  EXPECT_NEAR(a.std_cells_mm2, a.datapath_mm2 + a.shifter_mm2 + a.registers_mm2,
              1e-12);
  EXPECT_NEAR(a.core_mm2, a.std_cells_mm2 + a.sram_mm2, 1e-12);
  EXPECT_GT(a.datapath_mm2, 0.0);
  EXPECT_GT(a.registers_mm2, 0.0);
}

TEST(AreaModel, AreaGrowsWithFrequency) {
  const AreaModel model;
  double prev = 0.0;
  for (double f : {100.0, 200.0, 300.0, 400.0}) {
    const auto s = run_setup(ArchKind::kPerLayer, f, 96);
    const auto a = model.estimate(s.estimate, s.sram_bits);
    EXPECT_GT(a.std_cells_mm2, prev) << f;
    prev = a.std_cells_mm2;
  }
}

TEST(AreaModel, PipelinedLargerThanPerLayer) {
  const AreaModel model;
  for (double f : {100.0, 400.0}) {
    const auto per = run_setup(ArchKind::kPerLayer, f, 96);
    const auto pipe = run_setup(ArchKind::kTwoLayerPipelined, f, 96);
    EXPECT_GT(model.estimate(pipe.estimate, pipe.sram_bits).std_cells_mm2,
              model.estimate(per.estimate, per.sram_bits).std_cells_mm2)
        << f;
  }
}

TEST(AreaModel, SramAreaProportionalToBits) {
  const auto s = run_setup(ArchKind::kPerLayer, 200.0, 96);
  const AreaModel model;
  const auto a1 = model.estimate(s.estimate, 10000);
  const auto a2 = model.estimate(s.estimate, 20000);
  EXPECT_NEAR(a2.sram_mm2, 2 * a1.sram_mm2, 1e-12);
}

TEST(AreaModel, PaperDesignPointMagnitude) {
  // The paper's core is 1.2 mm^2 (std cells + SRAM) at 400 MHz with the
  // full multi-rate memory complement. Our model must land in the same
  // regime (not a factor of 3 off in either direction).
  const auto s = run_setup(ArchKind::kTwoLayerPipelined, 400.0, 96);
  const long long flex_sram =
      24LL * 768 + static_cast<long long>(wimax_max_r_slots()) * 768;
  const AreaModel model;
  const auto a = model.estimate(s.estimate, flex_sram);
  EXPECT_GT(a.core_mm2, 0.5);
  EXPECT_LT(a.core_mm2, 2.5);
}

TEST(AreaModel, ReducedParallelismShrinksDatapath) {
  const AreaModel model;
  const auto p96 = run_setup(ArchKind::kPerLayer, 200.0, 96);
  const auto p24 = run_setup(ArchKind::kPerLayer, 200.0, 24);
  EXPECT_LT(model.estimate(p24.estimate, p24.sram_bits).datapath_mm2,
            0.5 * model.estimate(p96.estimate, p96.sram_bits).datapath_mm2);
}

// ------------------------------------------------------------ power model ----

TEST(PowerModel, TotalsAreComponentSums) {
  const auto s = run_setup(ArchKind::kTwoLayerPipelined, 400.0, 96);
  const AreaModel am;
  const auto area = am.estimate(s.estimate, s.sram_bits);
  const PowerModel pm;
  const auto p = pm.estimate(s.estimate, s.activity, area.std_cells_mm2, true);
  EXPECT_NEAR(p.total_mw, p.leakage_mw + p.internal_mw + p.switching_mw, 1e-9);
  EXPECT_NEAR(p.total_with_sram_mw, p.total_mw + p.sram_mw, 1e-9);
  EXPECT_GT(p.leakage_mw, 0.0);
  EXPECT_GT(p.internal_mw, 0.0);
  EXPECT_GT(p.switching_mw, 0.0);
  EXPECT_GT(p.sram_mw, 0.0);
}

TEST(PowerModel, GatingReducesOnlyInternalPower) {
  // Table I: leakage and switching identical, internal drops.
  const auto s = run_setup(ArchKind::kTwoLayerPipelined, 400.0, 96);
  const AreaModel am;
  const auto area = am.estimate(s.estimate, s.sram_bits);
  const PowerModel pm;
  const auto gated = pm.estimate(s.estimate, s.activity, area.std_cells_mm2, true);
  const auto ungated =
      pm.estimate(s.estimate, s.activity, area.std_cells_mm2, false);
  EXPECT_DOUBLE_EQ(gated.leakage_mw, ungated.leakage_mw);
  EXPECT_DOUBLE_EQ(gated.switching_mw, ungated.switching_mw);
  EXPECT_LT(gated.internal_mw, ungated.internal_mw);
}

TEST(PowerModel, GatingSavingsInPaperBand) {
  // The paper reports 29% sequential internal power reduction; our
  // activity-driven model must land in the same band (15-45%).
  const auto s = run_setup(ArchKind::kTwoLayerPipelined, 400.0, 96);
  const AreaModel am;
  const auto area = am.estimate(s.estimate, s.sram_bits);
  const PowerModel pm;
  const auto gated = pm.estimate(s.estimate, s.activity, area.std_cells_mm2, true);
  const auto ungated =
      pm.estimate(s.estimate, s.activity, area.std_cells_mm2, false);
  const double reduction = 1.0 - gated.internal_mw / ungated.internal_mw;
  EXPECT_GT(reduction, 0.15);
  EXPECT_LT(reduction, 0.45);
}

TEST(PowerModel, GatedNeverExceedsUngated) {
  const PowerModel pm;
  const AreaModel am;
  for (auto arch : {ArchKind::kPerLayer, ArchKind::kTwoLayerPipelined}) {
    for (double f : {100.0, 400.0}) {
      const auto s = run_setup(arch, f, 96);
      const auto area = am.estimate(s.estimate, s.sram_bits);
      EXPECT_LE(pm.estimate(s.estimate, s.activity, area.std_cells_mm2, true)
                    .internal_mw,
                pm.estimate(s.estimate, s.activity, area.std_cells_mm2, false)
                        .internal_mw +
                    1e-9)
          << arch_name(arch) << " " << f;
    }
  }
}

TEST(PowerModel, InternalPowerScalesWithFrequency) {
  const PowerModel pm;
  const AreaModel am;
  const auto s100 = run_setup(ArchKind::kPerLayer, 100.0, 96);
  const auto s400 = run_setup(ArchKind::kPerLayer, 400.0, 96);
  const auto a100 = am.estimate(s100.estimate, s100.sram_bits);
  const auto a400 = am.estimate(s400.estimate, s400.sram_bits);
  const auto p100 =
      pm.estimate(s100.estimate, s100.activity, a100.std_cells_mm2, false);
  const auto p400 =
      pm.estimate(s400.estimate, s400.activity, a400.std_cells_mm2, false);
  // 4x the clock with comparable register counts: ungated internal power
  // must rise by roughly that factor.
  EXPECT_GT(p400.internal_mw, 2.5 * p100.internal_mw);
}

TEST(PowerModel, TableIMagnitudes) {
  // Sustained decoding, std cells only: Table I reports 72 mW (gated) vs
  // 90.4 mW (ungated). Same-regime check at the paper's clock.
  const auto s = run_setup(ArchKind::kTwoLayerPipelined, 400.0, 96);
  const AreaModel am;
  const auto area = am.estimate(s.estimate, s.sram_bits);
  const PowerModel pm;
  const auto gated = pm.estimate(s.estimate, s.activity, area.std_cells_mm2, true);
  const auto ungated =
      pm.estimate(s.estimate, s.activity, area.std_cells_mm2, false);
  EXPECT_GT(gated.total_mw, 30.0);
  EXPECT_LT(gated.total_mw, 150.0);
  EXPECT_GT(ungated.total_mw, gated.total_mw);
}

TEST(PowerModel, ZeroCycleActivityRejected) {
  const auto s = run_setup(ArchKind::kPerLayer, 100.0, 96);
  const PowerModel pm;
  ActivityCounters empty;
  EXPECT_THROW(pm.estimate(s.estimate, empty, 0.3, true), Error);
}

// --------------------------------------------------------------- metrics ----

TEST(Metrics, LatencyComputation) {
  EXPECT_DOUBLE_EQ(latency_us(400, 100.0), 4.0);
  // The paper: ~1120 cycles at 400 MHz = 2.8 us.
  EXPECT_NEAR(latency_us(1120, 400.0), 2.8, 1e-9);
}

TEST(Metrics, ThroughputComputation) {
  // 1152 info bits in 1120 cycles at 400 MHz ~= 411 Mbps.
  EXPECT_NEAR(info_throughput_mbps(1152, 1120, 400.0), 411.4, 0.1);
  EXPECT_NEAR(coded_throughput_mbps(2304, 1120, 400.0), 822.9, 0.1);
}

TEST(Metrics, EnergyPerBit) {
  // 180 mW at 415 Mbps ~= 434 pJ/bit.
  EXPECT_NEAR(energy_per_bit_pj(180.0, 415.0), 433.7, 0.1);
}

TEST(Metrics, InvalidInputsRejected) {
  EXPECT_THROW(latency_us(100, 0.0), Error);
  EXPECT_THROW(info_throughput_mbps(100, 0, 400.0), Error);
  EXPECT_THROW(energy_per_bit_pj(1.0, 0.0), Error);
}

TEST(Metrics, PaperDesignPointThroughput) {
  // End-to-end: the pipelined simulator at 400 MHz / 10 iterations must
  // deliver information throughput in the paper's regime (415 Mbps +- 40%).
  const auto s = run_setup(ArchKind::kTwoLayerPipelined, 400.0, 96);
  const double tput = info_throughput_mbps(1152, s.activity.cycles, 400.0);
  EXPECT_GT(tput, 250.0);
  EXPECT_LT(tput, 600.0);
}

}  // namespace
}  // namespace ldpc
