// Whole-chain integration tests: information bits -> encoder -> modulation
// -> AWGN -> quantization -> hardware-simulated decoding -> metrics, across
// code families, rates, parallelism and both architectures.
#include <gtest/gtest.h>

#include "arch/arch_sim.hpp"
#include "channel/awgn.hpp"
#include "channel/ber_runner.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "codes/wifi.hpp"
#include "codes/wimax.hpp"
#include "core/decoder_factory.hpp"
#include "power/area_model.hpp"
#include "power/metrics.hpp"
#include "power/power_model.hpp"
#include "util/rng.hpp"

namespace ldpc {
namespace {

BitVec random_info(std::size_t k, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  BitVec info(k);
  for (std::size_t i = 0; i < k; ++i) info.set(i, rng.coin());
  return info;
}

// End-to-end: every WiMAX rate family decodes its own codewords through the
// full hardware model at a comfortable SNR.
class EndToEndRateTest : public ::testing::TestWithParam<WimaxRate> {};

TEST_P(EndToEndRateTest, HardwareModelDecodesAllRates) {
  const auto code = make_wimax_code(GetParam(), 96);
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  const auto est =
      pico.compile(code, ArchKind::kTwoLayerPipelined, HardwareTarget{400.0, 96});
  DecoderOptions opt;
  opt.max_iterations = 10;
  ArchSimDecoder sim(code, est, opt, fmt);
  const RuEncoder enc(code);

  int good = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const BitVec info = random_info(code.k(), seed);
    const BitVec word = enc.encode(info);
    // Higher rates need higher Eb/N0 for the same BER; use a generous point.
    const float ebn0 = GetParam() == WimaxRate::kRate5_6 ? 5.0F : 4.0F;
    const float variance = awgn_noise_variance(ebn0, code.rate());
    AwgnChannel ch(variance, seed + 900);
    const auto llr =
        BpskModem::demodulate(ch.transmit(BpskModem::modulate(word)), variance);
    const auto result = sim.decode(llr);
    good += (result.hard_bits == word);
  }
  EXPECT_GE(good, 4) << wimax_rate_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllRates, EndToEndRateTest,
                         ::testing::ValuesIn(all_wimax_rates()),
                         [](const auto& info) {
                           std::string n = wimax_rate_name(info.param);
                           for (char& c : n)
                             if (c == '-' || c == '/') c = '_';
                           return n;
                         });

TEST(EndToEnd, WifiCodeThroughHardwareModel) {
  const auto code = make_wifi_648_half_rate();
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  const auto est =
      pico.compile(code, ArchKind::kTwoLayerPipelined, HardwareTarget{400.0, 27});
  DecoderOptions opt;
  ArchSimDecoder sim(code, est, opt, fmt);
  const RuEncoder enc(code);
  const BitVec word = enc.encode(random_info(code.k(), 77));
  const float variance = awgn_noise_variance(3.5F, code.rate());
  AwgnChannel ch(variance, 78);
  const auto llr =
      BpskModem::demodulate(ch.transmit(BpskModem::modulate(word)), variance);
  const auto result = sim.decode(llr);
  EXPECT_TRUE(result.hard_bits == word);
}

TEST(EndToEnd, BerRunnerDrivesArchSimulator) {
  // The BER harness treats the hardware model as just another Decoder.
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  const auto est =
      pico.compile(code, ArchKind::kPerLayer, HardwareTarget{200.0, 24});
  BerConfig cfg;
  cfg.ebn0_db = {6.0F};
  cfg.max_frames = 10;
  cfg.min_frames = 10;
  DecoderOptions opt;
  BerRunner runner(
      code,
      [&] { return std::make_unique<ArchSimDecoder>(code, est, opt, fmt); },
      cfg);
  const auto points = runner.run();
  EXPECT_EQ(points[0].frames, 10u);
  EXPECT_EQ(points[0].frame_errors, 0u);
}

TEST(EndToEnd, FixedPointLossIsSmallAtWaterfall) {
  // Frames decodable by float layered min-sum are nearly always decodable
  // by the 8-bit hardware path at the same SNR.
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 48);
  DecoderOptions opt;
  opt.max_iterations = 10;
  auto float_dec = make_decoder("layered-minsum-float", code, opt);
  auto fixed_dec = make_decoder("layered-minsum-fixed", code, opt);
  const RuEncoder enc(code);
  int float_ok = 0, fixed_ok = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const BitVec word = enc.encode(random_info(code.k(), seed));
    const float variance = awgn_noise_variance(2.4F, code.rate());
    AwgnChannel ch(variance, seed + 50);
    const auto llr =
        BpskModem::demodulate(ch.transmit(BpskModem::modulate(word)), variance);
    float_ok += (float_dec->decode(llr).hard_bits == word);
    fixed_ok += (fixed_dec->decode(llr).hard_bits == word);
  }
  EXPECT_GE(fixed_ok, float_ok - 3);
}

TEST(EndToEnd, UndetectedErrorsAreRare) {
  // When the decoder claims convergence at sane SNR it should have the
  // right codeword (ML-certificate property of the syndrome check).
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  auto dec = make_decoder("layered-minsum-fixed", code, opt);
  const RuEncoder enc(code);
  int converged = 0, undetected = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const BitVec word = enc.encode(random_info(code.k(), seed));
    const float variance = awgn_noise_variance(1.5F, code.rate());
    AwgnChannel ch(variance, seed + 11);
    const auto llr =
        BpskModem::demodulate(ch.transmit(BpskModem::modulate(word)), variance);
    const auto r = dec->decode(llr);
    if (r.converged) {
      ++converged;
      undetected += !(r.hard_bits == word);
    }
  }
  EXPECT_GT(converged, 10);
  EXPECT_EQ(undetected, 0);
}

TEST(EndToEnd, FullMetricsPipeline) {
  // The complete Table II computation path: simulate, size, price, report.
  const auto code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  const auto est =
      pico.compile(code, ArchKind::kTwoLayerPipelined, HardwareTarget{400.0, 96});
  DecoderOptions opt;
  opt.max_iterations = 10;
  opt.early_termination = false;
  ArchSimDecoder sim(code, est, opt, fmt, ArchSimConfig{true});
  const RuEncoder enc(code);
  const BitVec word = enc.encode(random_info(code.k(), 5));
  const float variance = awgn_noise_variance(2.0F, code.rate());
  AwgnChannel ch(variance, 6);
  const auto llr =
      BpskModem::demodulate(ch.transmit(BpskModem::modulate(word)), variance);
  std::vector<std::int32_t> codes(llr.size());
  for (std::size_t i = 0; i < llr.size(); ++i) codes[i] = fmt.quantize(llr[i]);
  const auto result = sim.decode_quantized(codes);

  const long long flex_sram =
      24LL * 768 + static_cast<long long>(wimax_max_r_slots()) * 768;
  const AreaModel am;
  const auto area = am.estimate(est, flex_sram);
  const PowerModel pm;
  const auto power =
      pm.estimate(est, result.activity, area.std_cells_mm2, true);

  const double lat = latency_us(result.activity.cycles, 400.0);
  const double tput = info_throughput_mbps(code.k(), result.activity.cycles, 400.0);

  // Paper regime: 2.8 us, 415 Mbps, 1.2 mm^2, <= 180 mW.
  EXPECT_GT(lat, 1.5);
  EXPECT_LT(lat, 4.5);
  EXPECT_GT(tput, 250.0);
  EXPECT_LT(tput, 700.0);
  EXPECT_GT(area.core_mm2, 0.6);
  EXPECT_LT(area.core_mm2, 2.0);
  EXPECT_GT(power.total_with_sram_mw, 20.0);
  EXPECT_LT(power.total_with_sram_mw, 180.0);
  EXPECT_GT(energy_per_bit_pj(power.total_with_sram_mw, tput), 0.0);
}

TEST(EndToEnd, ScalableParallelismTradesThroughputForArea) {
  // Fig. 3's design-space claim, end to end: halving the cores halves the
  // datapath area and roughly halves throughput.
  const auto code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  DecoderOptions opt;
  opt.max_iterations = 10;
  opt.early_termination = false;
  const RuEncoder enc(code);
  const BitVec word = enc.encode(random_info(code.k(), 8));
  const float variance = awgn_noise_variance(2.0F, code.rate());
  AwgnChannel ch(variance, 9);
  const auto llr =
      BpskModem::demodulate(ch.transmit(BpskModem::modulate(word)), variance);
  std::vector<std::int32_t> codes(llr.size());
  for (std::size_t i = 0; i < llr.size(); ++i) codes[i] = fmt.quantize(llr[i]);

  double prev_tput = 1e18;
  double prev_area = 1e18;
  const AreaModel am;
  for (int p : {96, 48, 24}) {
    const auto est =
        pico.compile(code, ArchKind::kPerLayer, HardwareTarget{400.0, p});
    ArchSimDecoder sim(code, est, opt, fmt);
    const auto r = sim.decode_quantized(codes);
    const double tput = info_throughput_mbps(code.k(), r.activity.cycles, 400.0);
    const auto area = am.estimate(est, 0);
    EXPECT_LT(tput, prev_tput) << p;
    EXPECT_LT(area.datapath_mm2, prev_area) << p;
    prev_tput = tput;
    prev_area = area.datapath_mm2;
  }
}

}  // namespace
}  // namespace ldpc
