// Tests for the channel-model extensions: Rayleigh fading, QPSK through the
// BER harness, iteration histograms, and the offset-min-sum fixed decoder.
#include <gtest/gtest.h>

#include <numeric>

#include "channel/ber_runner.hpp"
#include "channel/modem.hpp"
#include "channel/rayleigh.hpp"
#include "codes/wimax.hpp"
#include "core/decoder_factory.hpp"
#include "core/layered_minsum_fixed.hpp"
#include "util/stats.hpp"

namespace ldpc {
namespace {

// ------------------------------------------------------------- Rayleigh ----

TEST(Rayleigh, GainsAreUnitSecondMoment) {
  RayleighChannel ch(1.0F, 3);
  const std::vector<float> zeros(40000, 0.0F);
  std::vector<float> gains;
  ch.transmit(zeros, gains);
  RunningStats s;
  for (float h : gains) s.add(h * h);
  EXPECT_NEAR(s.mean(), 1.0, 0.03);  // E[h^2] = 1
  for (float h : gains) EXPECT_GE(h, 0.0F);
}

TEST(Rayleigh, NoiseAddsOnTopOfFading) {
  RayleighChannel ch(0.25F, 4);
  const std::vector<float> ones(40000, 1.0F);
  std::vector<float> gains;
  const auto received = ch.transmit(ones, gains);
  // received - h*x must be N(0, 0.25).
  RunningStats s;
  for (std::size_t i = 0; i < received.size(); ++i)
    s.add(received[i] - gains[i]);
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.variance(), 0.25, 0.02);
}

TEST(Rayleigh, CoherentLlrSignsMostlyCorrectAtHighSnr) {
  RayleighChannel ch(0.01F, 5);
  std::vector<float> symbols(1000);
  for (std::size_t i = 0; i < symbols.size(); ++i)
    symbols[i] = (i % 3 == 0) ? -1.0F : 1.0F;
  std::vector<float> gains;
  const auto received = ch.transmit(symbols, gains);
  const auto llr = RayleighChannel::demodulate_bpsk(received, gains, 0.01F);
  std::size_t wrong = 0;
  for (std::size_t i = 0; i < llr.size(); ++i)
    wrong += ((llr[i] < 0.0F) != (symbols[i] < 0.0F));
  EXPECT_LT(wrong, 10u);
}

TEST(Rayleigh, InvalidConfigRejected) {
  EXPECT_THROW(RayleighChannel(0.0F), Error);
  std::vector<float> r(3), g(2);
  EXPECT_THROW(RayleighChannel::demodulate_bpsk(r, g, 1.0F), Error);
}

TEST(Rayleigh, DeterministicForSeed) {
  RayleighChannel a(1.0F, 9), b(1.0F, 9);
  std::vector<float> ga, gb;
  const std::vector<float> x = {1.0F, -1.0F, 1.0F, 1.0F};
  EXPECT_EQ(a.transmit(x, ga), b.transmit(x, gb));
  EXPECT_EQ(ga, gb);
}

TEST(Rayleigh, IqPathSharesGainAcrossRails) {
  // One gain per *complex* symbol: with zero noise variance impossible, so
  // use tiny noise and check y_I / x_I == y_Q / x_Q == h for each symbol.
  RayleighChannel ch(1e-12F, 6);
  std::vector<float> iq(2000);
  for (std::size_t i = 0; i < iq.size(); ++i)
    iq[i] = (i % 5 == 0) ? -1.0F : 1.0F;
  std::vector<float> gains;
  const auto received = ch.transmit_iq(iq, gains);
  ASSERT_EQ(gains.size(), iq.size() / 2);
  for (std::size_t s = 0; s < gains.size(); ++s) {
    EXPECT_NEAR(received[2 * s] / iq[2 * s], gains[s], 1e-3) << s;
    EXPECT_NEAR(received[2 * s + 1] / iq[2 * s + 1], gains[s], 1e-3) << s;
  }
}

TEST(Rayleigh, BlockFadingHoldsGainOverCoherenceLength) {
  RayleighChannel ch(1.0F, 7, /*coherence_symbols=*/8);
  const std::vector<float> iq(2 * 100, 1.0F);
  std::vector<float> gains;
  ch.transmit_iq(iq, gains);
  ASSERT_EQ(gains.size(), 100u);
  for (std::size_t s = 0; s < gains.size(); ++s)
    EXPECT_FLOAT_EQ(gains[s], gains[s - s % 8]) << s;
  // Across blocks the gains must actually vary.
  std::size_t distinct = 1;
  for (std::size_t b = 8; b < 100; b += 8)
    distinct += (gains[b] != gains[0]);
  EXPECT_GT(distinct, 8u);
}

TEST(Rayleigh, CoherenceOnePreservesLegacyRealPathDraws) {
  // Regression: the block-fading refactor must leave the default
  // coherence=1 real-symbol path bit-identical (gain, noise draw order).
  RayleighChannel legacy(0.5F, 11);
  RayleighChannel blocked(0.5F, 11, 1);
  const std::vector<float> x(64, 1.0F);
  std::vector<float> ga, gb;
  EXPECT_EQ(legacy.transmit(x, ga), blocked.transmit(x, gb));
  EXPECT_EQ(ga, gb);
}

TEST(Rayleigh, FadingAwareQpskDemapSignsAtHighSnr) {
  RayleighChannel ch(0.005F, 8);
  BitVec bits(800);
  Xoshiro256 rng(21);
  for (std::size_t i = 0; i < bits.size(); ++i) bits.set(i, rng.coin());
  const auto iq = QpskModem::modulate(bits);
  std::vector<float> gains;
  const auto received = ch.transmit_iq(iq, gains);
  const auto llr =
      RayleighChannel::demodulate_qpsk(received, gains, 0.005F, 800);
  std::size_t wrong = 0;
  for (std::size_t i = 0; i < 800; ++i)
    wrong += ((llr[i] < 0.0F) != bits.get(i));
  EXPECT_LT(wrong, 8u);
}

TEST(Rayleigh, FadingAwareQamDemapsSignsAtHighSnr) {
  // 16-QAM and 64-QAM through fade + equalize + demap: at very high SNR
  // the equalized LLR signs must recover the bits even in deep-ish fades.
  BitVec bits(960);
  Xoshiro256 rng(22);
  for (std::size_t i = 0; i < bits.size(); ++i) bits.set(i, rng.coin());
  {
    RayleighChannel ch(1e-5F, 9);
    std::vector<float> gains;
    const auto received = ch.transmit_iq(Qam16Modem::modulate(bits), gains);
    const auto llr =
        RayleighChannel::demodulate_qam16(received, gains, 1e-5F, 960);
    std::size_t wrong = 0;
    for (std::size_t i = 0; i < 960; ++i)
      wrong += ((llr[i] < 0.0F) != bits.get(i));
    EXPECT_LT(wrong, 10u);
  }
  {
    RayleighChannel ch(1e-6F, 10);
    std::vector<float> gains;
    const auto received = ch.transmit_iq(Qam64Modem::modulate(bits), gains);
    const auto llr =
        RayleighChannel::demodulate_qam64(received, gains, 1e-6F, 960);
    std::size_t wrong = 0;
    for (std::size_t i = 0; i < 960; ++i)
      wrong += ((llr[i] < 0.0F) != bits.get(i));
    EXPECT_LT(wrong, 10u);
  }
}

TEST(Rayleigh, OddIqLengthRejected) {
  RayleighChannel ch(1.0F, 12);
  std::vector<float> gains;
  EXPECT_THROW(ch.transmit_iq({1.0F, -1.0F, 1.0F}, gains), Error);
}

// ------------------------------------------------- BER runner extensions ----

BerPoint run_point(const QCLdpcCode& code, Modulation mod, ChannelModel chan,
                   float ebn0, std::size_t frames) {
  BerConfig cfg;
  cfg.ebn0_db = {ebn0};
  cfg.max_frames = frames;
  cfg.min_frames = frames;
  cfg.modulation = mod;
  cfg.channel = chan;
  cfg.num_workers = 2;
  DecoderOptions opt;
  opt.max_iterations = 10;
  BerRunner runner(
      code, [&] { return make_decoder("layered-minsum-float", code, opt); }, cfg);
  return runner.run()[0];
}

TEST(BerExtensions, QpskMatchesBpskOnAwgn) {
  // Gray-mapped QPSK is two independent BPSK rails: same BER at equal Eb/N0.
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto bpsk = run_point(code, Modulation::kBpsk, ChannelModel::kAwgn, 1.6F, 150);
  const auto qpsk = run_point(code, Modulation::kQpsk, ChannelModel::kAwgn, 1.6F, 150);
  // Same regime (both are noisy estimates; allow generous slack).
  const double f1 = bpsk.fer(), f2 = qpsk.fer();
  EXPECT_NEAR(f1, f2, 0.25) << f1 << " vs " << f2;
}

TEST(BerExtensions, RayleighNeedsMoreSnrThanAwgn) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto awgn = run_point(code, Modulation::kBpsk, ChannelModel::kAwgn, 2.5F, 120);
  const auto fading =
      run_point(code, Modulation::kBpsk, ChannelModel::kRayleigh, 2.5F, 120);
  EXPECT_GT(fading.fer(), awgn.fer());
}

TEST(BerExtensions, BlockFadingHurtsAtModerateSnr) {
  // With coherence 16 a whole stretch of a codeword can sit in one deep
  // fade, which interleaved fading (coherence 1) averages away — block
  // fading must not do *better*.
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  auto run_with = [&](std::size_t coherence) {
    BerConfig cfg;
    cfg.ebn0_db = {6.0F};
    cfg.max_frames = 150;
    cfg.min_frames = 150;
    cfg.modulation = Modulation::kQpsk;
    cfg.channel = ChannelModel::kRayleigh;
    cfg.coherence_symbols = coherence;
    cfg.num_workers = 2;
    BerRunner runner(
        code, [&] { return make_decoder("layered-minsum-float", code, opt); },
        cfg);
    return runner.run()[0].fer();
  };
  EXPECT_GE(run_with(16) + 0.05, run_with(1));
}

TEST(BerExtensions, IterationHistogramSumsToFrames) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto p = run_point(code, Modulation::kBpsk, ChannelModel::kAwgn, 3.0F, 80);
  const std::size_t total = std::accumulate(p.iteration_histogram.begin(),
                                            p.iteration_histogram.end(),
                                            std::size_t{0});
  EXPECT_EQ(total, p.frames);
  // Histogram mean must equal avg_iterations.
  double mean = 0;
  for (std::size_t i = 0; i < p.iteration_histogram.size(); ++i)
    mean += static_cast<double>((i + 1) * p.iteration_histogram[i]);
  mean /= static_cast<double>(p.frames);
  EXPECT_NEAR(mean, p.avg_iterations(), 1e-9);
}

TEST(BerExtensions, HighSnrConcentratesIterations) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto p = run_point(code, Modulation::kBpsk, ChannelModel::kAwgn, 5.0F, 60);
  // Nearly every frame should decode within the first three iterations.
  std::size_t early = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(3, p.iteration_histogram.size()); ++i)
    early += p.iteration_histogram[i];
  EXPECT_GE(early, p.frames - 2);
}

// ----------------------------------------------------- offset-min-sum ----

TEST(OffsetMinSum, KernelAppliesOffsetCorrection) {
  const auto k = LayerRowKernel::offset_kernel(FixedFormat{8, 2}, 2);
  LayerRowKernel::CheckState st;
  st.reset();
  st.absorb(6, 0);
  st.absorb(-10, 1);
  // pos 1 uses min1... pos 1 is min? |−10| = 10 > 6: min1 = 6 @ 0, min2 = 10.
  // pos 0 (min's own edge): |mag| = max(min2 - 2, 0) = 8, sign prod(-) ^ + = -
  EXPECT_EQ(k.compute_r_new(st, 6, 0), -8);
  // pos 1: mag = max(6 - 2, 0) = 4, sign prod(-) ^ (-) = +
  EXPECT_EQ(k.compute_r_new(st, -10, 1), 4);
}

TEST(OffsetMinSum, OffsetClampsAtZero) {
  const auto k = LayerRowKernel::offset_kernel(FixedFormat{8, 2}, 5);
  LayerRowKernel::CheckState st;
  st.reset();
  st.absorb(3, 0);
  st.absorb(4, 1);
  EXPECT_EQ(k.compute_r_new(st, 4, 1), 0);  // 3 - 5 -> clamp 0
}

TEST(OffsetMinSum, NegativeOffsetRejected) {
  EXPECT_THROW(LayerRowKernel::offset_kernel(FixedFormat{8, 2}, -1), Error);
}

TEST(OffsetMinSum, FactoryDecoderWorks) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  auto dec = make_decoder("layered-minsum-offset-fixed", code, opt);
  EXPECT_EQ(dec->name(), "layered-minsum-offset-q8.2");
  BerConfig cfg;
  cfg.ebn0_db = {3.0F};
  cfg.max_frames = 40;
  cfg.min_frames = 40;
  BerRunner runner(
      code, [&] { return make_decoder("layered-minsum-offset-fixed", code, opt); },
      cfg);
  const auto p = runner.run()[0];
  EXPECT_LT(p.fer(), 0.3);  // decodes respectably at comfortable SNR
}

TEST(OffsetMinSum, ComparableToNormalizedAtWaterfall) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 48);
  DecoderOptions opt;
  opt.max_iterations = 10;
  auto run = [&](const char* name) {
    BerConfig cfg;
    cfg.ebn0_db = {2.2F};
    cfg.max_frames = 120;
    cfg.min_frames = 120;
    cfg.num_workers = 2;
    BerRunner runner(code, [&] { return make_decoder(name, code, opt); }, cfg);
    return runner.run()[0].fer();
  };
  const double offset = run("layered-minsum-offset-fixed");
  const double normalized = run("layered-minsum-fixed");
  // Both correction schemes are serviceable; neither should collapse.
  EXPECT_LT(offset, 0.6);
  EXPECT_LT(normalized, 0.6);
}

}  // namespace
}  // namespace ldpc
