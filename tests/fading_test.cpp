// Tests for the channel-model extensions: Rayleigh fading, QPSK through the
// BER harness, iteration histograms, and the offset-min-sum fixed decoder.
#include <gtest/gtest.h>

#include <numeric>

#include "channel/ber_runner.hpp"
#include "channel/rayleigh.hpp"
#include "codes/wimax.hpp"
#include "core/decoder_factory.hpp"
#include "core/layered_minsum_fixed.hpp"
#include "util/stats.hpp"

namespace ldpc {
namespace {

// ------------------------------------------------------------- Rayleigh ----

TEST(Rayleigh, GainsAreUnitSecondMoment) {
  RayleighChannel ch(1.0F, 3);
  const std::vector<float> zeros(40000, 0.0F);
  std::vector<float> gains;
  ch.transmit(zeros, gains);
  RunningStats s;
  for (float h : gains) s.add(h * h);
  EXPECT_NEAR(s.mean(), 1.0, 0.03);  // E[h^2] = 1
  for (float h : gains) EXPECT_GE(h, 0.0F);
}

TEST(Rayleigh, NoiseAddsOnTopOfFading) {
  RayleighChannel ch(0.25F, 4);
  const std::vector<float> ones(40000, 1.0F);
  std::vector<float> gains;
  const auto received = ch.transmit(ones, gains);
  // received - h*x must be N(0, 0.25).
  RunningStats s;
  for (std::size_t i = 0; i < received.size(); ++i)
    s.add(received[i] - gains[i]);
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.variance(), 0.25, 0.02);
}

TEST(Rayleigh, CoherentLlrSignsMostlyCorrectAtHighSnr) {
  RayleighChannel ch(0.01F, 5);
  std::vector<float> symbols(1000);
  for (std::size_t i = 0; i < symbols.size(); ++i)
    symbols[i] = (i % 3 == 0) ? -1.0F : 1.0F;
  std::vector<float> gains;
  const auto received = ch.transmit(symbols, gains);
  const auto llr = RayleighChannel::demodulate_bpsk(received, gains, 0.01F);
  std::size_t wrong = 0;
  for (std::size_t i = 0; i < llr.size(); ++i)
    wrong += ((llr[i] < 0.0F) != (symbols[i] < 0.0F));
  EXPECT_LT(wrong, 10u);
}

TEST(Rayleigh, InvalidConfigRejected) {
  EXPECT_THROW(RayleighChannel(0.0F), Error);
  std::vector<float> r(3), g(2);
  EXPECT_THROW(RayleighChannel::demodulate_bpsk(r, g, 1.0F), Error);
}

TEST(Rayleigh, DeterministicForSeed) {
  RayleighChannel a(1.0F, 9), b(1.0F, 9);
  std::vector<float> ga, gb;
  const std::vector<float> x = {1.0F, -1.0F, 1.0F, 1.0F};
  EXPECT_EQ(a.transmit(x, ga), b.transmit(x, gb));
  EXPECT_EQ(ga, gb);
}

// ------------------------------------------------- BER runner extensions ----

BerPoint run_point(const QCLdpcCode& code, Modulation mod, ChannelModel chan,
                   float ebn0, std::size_t frames) {
  BerConfig cfg;
  cfg.ebn0_db = {ebn0};
  cfg.max_frames = frames;
  cfg.min_frames = frames;
  cfg.modulation = mod;
  cfg.channel = chan;
  cfg.num_workers = 2;
  DecoderOptions opt;
  opt.max_iterations = 10;
  BerRunner runner(
      code, [&] { return make_decoder("layered-minsum-float", code, opt); }, cfg);
  return runner.run()[0];
}

TEST(BerExtensions, QpskMatchesBpskOnAwgn) {
  // Gray-mapped QPSK is two independent BPSK rails: same BER at equal Eb/N0.
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto bpsk = run_point(code, Modulation::kBpsk, ChannelModel::kAwgn, 1.6F, 150);
  const auto qpsk = run_point(code, Modulation::kQpsk, ChannelModel::kAwgn, 1.6F, 150);
  // Same regime (both are noisy estimates; allow generous slack).
  const double f1 = bpsk.fer(), f2 = qpsk.fer();
  EXPECT_NEAR(f1, f2, 0.25) << f1 << " vs " << f2;
}

TEST(BerExtensions, RayleighNeedsMoreSnrThanAwgn) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto awgn = run_point(code, Modulation::kBpsk, ChannelModel::kAwgn, 2.5F, 120);
  const auto fading =
      run_point(code, Modulation::kBpsk, ChannelModel::kRayleigh, 2.5F, 120);
  EXPECT_GT(fading.fer(), awgn.fer());
}

TEST(BerExtensions, IterationHistogramSumsToFrames) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto p = run_point(code, Modulation::kBpsk, ChannelModel::kAwgn, 3.0F, 80);
  const std::size_t total = std::accumulate(p.iteration_histogram.begin(),
                                            p.iteration_histogram.end(),
                                            std::size_t{0});
  EXPECT_EQ(total, p.frames);
  // Histogram mean must equal avg_iterations.
  double mean = 0;
  for (std::size_t i = 0; i < p.iteration_histogram.size(); ++i)
    mean += static_cast<double>((i + 1) * p.iteration_histogram[i]);
  mean /= static_cast<double>(p.frames);
  EXPECT_NEAR(mean, p.avg_iterations(), 1e-9);
}

TEST(BerExtensions, HighSnrConcentratesIterations) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto p = run_point(code, Modulation::kBpsk, ChannelModel::kAwgn, 5.0F, 60);
  // Nearly every frame should decode within the first three iterations.
  std::size_t early = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(3, p.iteration_histogram.size()); ++i)
    early += p.iteration_histogram[i];
  EXPECT_GE(early, p.frames - 2);
}

// ----------------------------------------------------- offset-min-sum ----

TEST(OffsetMinSum, KernelAppliesOffsetCorrection) {
  const auto k = LayerRowKernel::offset_kernel(FixedFormat{8, 2}, 2);
  LayerRowKernel::CheckState st;
  st.reset();
  st.absorb(6, 0);
  st.absorb(-10, 1);
  // pos 1 uses min1... pos 1 is min? |−10| = 10 > 6: min1 = 6 @ 0, min2 = 10.
  // pos 0 (min's own edge): |mag| = max(min2 - 2, 0) = 8, sign prod(-) ^ + = -
  EXPECT_EQ(k.compute_r_new(st, 6, 0), -8);
  // pos 1: mag = max(6 - 2, 0) = 4, sign prod(-) ^ (-) = +
  EXPECT_EQ(k.compute_r_new(st, -10, 1), 4);
}

TEST(OffsetMinSum, OffsetClampsAtZero) {
  const auto k = LayerRowKernel::offset_kernel(FixedFormat{8, 2}, 5);
  LayerRowKernel::CheckState st;
  st.reset();
  st.absorb(3, 0);
  st.absorb(4, 1);
  EXPECT_EQ(k.compute_r_new(st, 4, 1), 0);  // 3 - 5 -> clamp 0
}

TEST(OffsetMinSum, NegativeOffsetRejected) {
  EXPECT_THROW(LayerRowKernel::offset_kernel(FixedFormat{8, 2}, -1), Error);
}

TEST(OffsetMinSum, FactoryDecoderWorks) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  auto dec = make_decoder("layered-minsum-offset-fixed", code, opt);
  EXPECT_EQ(dec->name(), "layered-minsum-offset-q8.2");
  BerConfig cfg;
  cfg.ebn0_db = {3.0F};
  cfg.max_frames = 40;
  cfg.min_frames = 40;
  BerRunner runner(
      code, [&] { return make_decoder("layered-minsum-offset-fixed", code, opt); },
      cfg);
  const auto p = runner.run()[0];
  EXPECT_LT(p.fer(), 0.3);  // decodes respectably at comfortable SNR
}

TEST(OffsetMinSum, ComparableToNormalizedAtWaterfall) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 48);
  DecoderOptions opt;
  opt.max_iterations = 10;
  auto run = [&](const char* name) {
    BerConfig cfg;
    cfg.ebn0_db = {2.2F};
    cfg.max_frames = 120;
    cfg.min_frames = 120;
    cfg.num_workers = 2;
    BerRunner runner(code, [&] { return make_decoder(name, code, opt); }, cfg);
    return runner.run()[0].fer();
  };
  const double offset = run("layered-minsum-offset-fixed");
  const double normalized = run("layered-minsum-fixed");
  // Both correction schemes are serviceable; neither should collapse.
  EXPECT_LT(offset, 0.6);
  EXPECT_LT(normalized, 0.6);
}

}  // namespace
}  // namespace ldpc
