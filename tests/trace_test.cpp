// Schedule-trace tests: renderer behaviour and structural properties of
// the traces the architecture simulator emits.
#include <gtest/gtest.h>

#include <algorithm>

#include "arch/arch_sim.hpp"
#include "arch/trace.hpp"
#include "bench/bench_common.hpp"
#include "codes/wimax.hpp"

namespace ldpc {
namespace {

// -------------------------------------------------------------- renderer ----

TEST(TraceRender, BasicLanes) {
  std::vector<TraceEvent> events = {
      {TraceEngine::kCore1, 0, 0, 2, false},
      {TraceEngine::kCore2, 0, 4, 5, false},
      {TraceEngine::kCore1, 1, 3, 3, true},
  };
  const std::string out = render_timeline(events, 0, 8);
  EXPECT_NE(out.find("core1  000x...."), std::string::npos);
  EXPECT_NE(out.find("core2  ....00.."), std::string::npos);
}

TEST(TraceRender, LayerDigitsWrapAtTen) {
  std::vector<TraceEvent> events = {{TraceEngine::kCore1, 13, 0, 1, false}};
  const std::string out = render_timeline(events, 0, 4);
  EXPECT_NE(out.find("33"), std::string::npos);
}

TEST(TraceRender, WindowClipsEvents) {
  std::vector<TraceEvent> events = {{TraceEngine::kCore1, 0, 0, 100, false}};
  const std::string out = render_timeline(events, 10, 20);
  // Entire visible window busy.
  EXPECT_NE(out.find("core1  0000000000"), std::string::npos);
}

TEST(TraceRender, DoubleBookingDetected) {
  std::vector<TraceEvent> events = {
      {TraceEngine::kCore1, 0, 0, 5, false},
      {TraceEngine::kCore1, 1, 3, 6, false},
  };
  EXPECT_THROW(render_timeline(events, 0, 8), Error);
}

TEST(TraceRender, InvalidWindowRejected) {
  EXPECT_THROW(render_timeline({}, 5, 5), Error);
  EXPECT_THROW(render_timeline({}, 0, 100000), Error);
}

// ---------------------------------------------------- simulator tracing ----

struct Sim {
  QCLdpcCode code = make_wimax_2304_half_rate();
  FixedFormat fmt{8, 2};

  std::vector<TraceEvent> run(ArchKind arch, bool reorder) {
    const PicoCompiler pico(fmt);
    const auto est = pico.compile(code, arch, HardwareTarget{400.0, 96});
    DecoderOptions opt;
    opt.max_iterations = 2;
    opt.early_termination = false;
    ArchSimConfig cfg;
    cfg.hazard_aware_order = reorder;
    cfg.record_trace = true;
    ArchSimDecoder sim(code, est, opt, fmt, cfg);
    const auto frame = ldpc::bench::quantized_frame(code, fmt, 2.0F, 1);
    sim.decode_quantized(frame);
    return sim.trace();
  }
};

TEST(SimTrace, DisabledByDefault) {
  Sim s;
  const PicoCompiler pico(s.fmt);
  const auto est =
      pico.compile(s.code, ArchKind::kPerLayer, HardwareTarget{400.0, 96});
  DecoderOptions opt;
  ArchSimDecoder sim(s.code, est, opt, s.fmt);
  const auto frame = ldpc::bench::quantized_frame(s.code, s.fmt, 2.0F, 1);
  sim.decode_quantized(frame);
  EXPECT_TRUE(sim.trace().empty());
}

TEST(SimTrace, EventCountsMatchStructure) {
  Sim s;
  const auto events = s.run(ArchKind::kPerLayer, false);
  // 2 iterations x 76 columns per iteration on each engine, no stalls.
  const auto core1 = std::count_if(events.begin(), events.end(), [](auto& e) {
    return e.engine == TraceEngine::kCore1 && !e.stall;
  });
  const auto core2 = std::count_if(events.begin(), events.end(), [](auto& e) {
    return e.engine == TraceEngine::kCore2;
  });
  const auto stalls = std::count_if(events.begin(), events.end(),
                                    [](auto& e) { return e.stall; });
  EXPECT_EQ(core1, 2 * 76);
  EXPECT_EQ(core2, 2 * 76);
  EXPECT_EQ(stalls, 0);
}

TEST(SimTrace, PipelinedTraceShowsStalls) {
  Sim s;
  const auto events = s.run(ArchKind::kTwoLayerPipelined, false);
  const auto stalls = std::count_if(events.begin(), events.end(),
                                    [](auto& e) { return e.stall; });
  EXPECT_GT(stalls, 0);
}

TEST(SimTrace, EventsNeverOverlapPerEngine) {
  Sim s;
  for (auto arch : {ArchKind::kPerLayer, ArchKind::kTwoLayerPipelined}) {
    for (bool reorder : {false, true}) {
      auto events = s.run(arch, reorder);
      for (TraceEngine engine : {TraceEngine::kCore1, TraceEngine::kCore2}) {
        std::vector<TraceEvent> lane;
        std::copy_if(events.begin(), events.end(), std::back_inserter(lane),
                     [&](auto& e) { return e.engine == engine; });
        std::sort(lane.begin(), lane.end(),
                  [](auto& a, auto& b) { return a.start < b.start; });
        for (std::size_t i = 1; i < lane.size(); ++i)
          ASSERT_GT(lane[i].start, lane[i - 1].end)
              << arch_name(arch) << " reorder=" << reorder;
      }
    }
  }
}

TEST(SimTrace, PipelinedOverlapsAdjacentLayers) {
  // The defining property of Fig. 6: some core1 event of layer l+1 starts
  // before the last core2 event of layer l ends.
  Sim s;
  const auto events = s.run(ArchKind::kTwoLayerPipelined, false);
  long long core2_layer0_end = -1;
  long long core1_layer1_start = -1;
  for (const auto& e : events) {
    if (e.engine == TraceEngine::kCore2 && e.layer == 0)
      core2_layer0_end = std::max(core2_layer0_end, e.end);
    if (e.engine == TraceEngine::kCore1 && e.layer == 1 && !e.stall &&
        core1_layer1_start < 0)
      core1_layer1_start = e.start;
  }
  ASSERT_GE(core2_layer0_end, 0);
  ASSERT_GE(core1_layer1_start, 0);
  EXPECT_LT(core1_layer1_start, core2_layer0_end);
}

TEST(SimTrace, PerLayerNeverOverlapsLayers) {
  // Fig. 4: core1 of layer l+1 starts only after core2 of layer l is done.
  Sim s;
  const auto events = s.run(ArchKind::kPerLayer, false);
  for (std::size_t layer = 0; layer + 1 < 4; ++layer) {
    long long core2_end = -1, next_core1_start = -1;
    for (const auto& e : events) {
      if (e.engine == TraceEngine::kCore2 && e.layer == layer)
        core2_end = std::max(core2_end, e.end);
      if (e.engine == TraceEngine::kCore1 && e.layer == layer + 1 &&
          next_core1_start < 0)
        next_core1_start = e.start;
    }
    EXPECT_GT(next_core1_start, core2_end) << "layer " << layer;
  }
}

TEST(SimTrace, TraceResetBetweenDecodes) {
  Sim s;
  const PicoCompiler pico(s.fmt);
  const auto est =
      pico.compile(s.code, ArchKind::kPerLayer, HardwareTarget{400.0, 96});
  DecoderOptions opt;
  opt.max_iterations = 1;
  opt.early_termination = false;
  ArchSimConfig cfg;
  cfg.record_trace = true;
  ArchSimDecoder sim(s.code, est, opt, s.fmt, cfg);
  const auto frame = ldpc::bench::quantized_frame(s.code, s.fmt, 2.0F, 1);
  sim.decode_quantized(frame);
  const auto first = sim.trace().size();
  sim.decode_quantized(frame);
  EXPECT_EQ(sim.trace().size(), first);  // not accumulated across decodes
}

}  // namespace
}  // namespace ldpc
