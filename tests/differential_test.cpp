// Randomized differential tests: the hardware simulators must be bit-exact
// with the algorithmic fixed-point decoder for EVERY combination of code
// geometry, message format, architecture, parallelism, clock target and
// column ordering. This is the repository's central invariant, here
// hammered with randomized configurations beyond the curated cases in
// arch_test.cpp.
#include <gtest/gtest.h>

#include "arch/arch_sim.hpp"
#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "codes/random_qc.hpp"
#include "codes/wimax.hpp"
#include "util/rng.hpp"

namespace ldpc {
namespace {

struct Config {
  std::uint64_t seed;
};

class DifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialTest, RandomConfigurationIsBitExact) {
  Xoshiro256 rng(GetParam() * 7919 + 13);

  // Random code: either a WiMAX configuration or a random QC construction.
  std::unique_ptr<QCLdpcCode> code;
  if (rng.coin()) {
    const auto& rates = all_wimax_rates();
    const auto rate = rates[rng.uniform_int(rates.size())];
    const auto& zs = wimax_z_values();
    const int z = zs[rng.uniform_int(zs.size())];
    code = std::make_unique<QCLdpcCode>(make_wimax_code(rate, z));
  } else {
    RandomQcConfig cfg;
    cfg.block_rows = 3 + rng.uniform_int(5);
    cfg.block_cols = cfg.block_rows + 4 + rng.uniform_int(12);
    cfg.z = 4 + static_cast<int>(rng.uniform_int(60));
    cfg.info_row_degree =
        1 + rng.uniform_int(cfg.block_cols - cfg.block_rows);
    cfg.seed = GetParam();
    code = std::make_unique<QCLdpcCode>(make_random_qc_code(cfg));
  }

  // Random format / architecture / parallelism / clock / ordering.
  const int bits = 4 + static_cast<int>(rng.uniform_int(5));  // 4..8
  const FixedFormat fmt{bits, bits >= 6 ? 2 : 0};
  const ArchKind arch =
      rng.coin() ? ArchKind::kPerLayer : ArchKind::kTwoLayerPipelined;
  std::vector<int> divisors;
  for (int p = 1; p <= code->z(); ++p)
    if (code->z() % p == 0) divisors.push_back(p);
  const int parallelism = divisors[rng.uniform_int(divisors.size())];
  const double mhz = 100.0 + static_cast<double>(rng.uniform_int(31)) * 10.0;
  ArchSimConfig sim_cfg;
  sim_cfg.hazard_aware_order = rng.coin();

  DecoderOptions opt;
  opt.max_iterations = 1 + rng.uniform_int(8);
  opt.early_termination = rng.coin();

  const PicoCompiler pico(fmt);
  const auto est =
      pico.compile(*code, arch, HardwareTarget{mhz, parallelism});
  ArchSimDecoder sim(*code, est, opt, fmt, sim_cfg);
  LayeredMinSumFixedDecoder reference(*code, opt, fmt);

  // Random noisy frame (valid codeword + AWGN at a random SNR).
  const RuEncoder enc(*code);
  BitVec info(code->k());
  for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
  const BitVec word = enc.encode(info);
  const float ebn0 = 0.5F + static_cast<float>(rng.uniform()) * 5.0F;
  const float variance = awgn_noise_variance(ebn0, code->rate());
  AwgnChannel ch(variance, GetParam() + 101);
  const auto llr = BpskModem::demodulate(
      ch.transmit(BpskModem::modulate(word)), variance);
  std::vector<std::int32_t> codes(llr.size());
  for (std::size_t i = 0; i < llr.size(); ++i) codes[i] = fmt.quantize(llr[i]);

  const auto want = reference.decode_quantized(codes);
  const auto got = sim.decode_quantized(codes);

  const std::string context =
      code->base().name() + " " + arch_name(arch) + " p=" +
      std::to_string(parallelism) + " " + fmt.name() + " @" +
      std::to_string(mhz) + "MHz it=" + std::to_string(opt.max_iterations) +
      (sim_cfg.hazard_aware_order ? " reordered" : "");
  EXPECT_TRUE(got.decode.hard_bits == want.hard_bits) << context;
  EXPECT_EQ(got.decode.iterations, want.iterations) << context;
  EXPECT_EQ(got.decode.converged, want.converged) << context;

  // Structural timing invariants hold for every configuration.
  EXPECT_GT(got.activity.cycles, 0) << context;
  if (arch == ArchKind::kPerLayer) {
    EXPECT_EQ(got.activity.core1_stall_cycles, 0) << context;
  }
  EXPECT_LE(got.activity.core1_busy_cycles, got.activity.cycles) << context;
  EXPECT_LE(got.activity.core2_busy_cycles, got.activity.cycles) << context;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
}  // namespace ldpc
