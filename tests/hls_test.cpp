// HLS substrate tests: operator library, list scheduler behaviour under
// clock budgets, and the PICO compiler's hardware estimates.
#include <gtest/gtest.h>

#include "codes/wifi.hpp"
#include "codes/wimax.hpp"
#include "hls/opgraph.hpp"
#include "hls/pico.hpp"
#include "hls/hardware_report.hpp"
#include "hls/scheduler.hpp"

namespace ldpc {
namespace {

// -------------------------------------------------------------- op model ----

TEST(OpModel, DelaysArePositiveAndWidthMonotone) {
  for (OpKind kind : {OpKind::kAdd, OpKind::kSub, OpKind::kAbs, OpKind::kCompare,
                      OpKind::kScaleShiftAdd}) {
    EXPECT_GT(op_delay_ns(kind, 8), 0.0);
    EXPECT_LE(op_delay_ns(kind, 4), op_delay_ns(kind, 8));
    EXPECT_LE(op_delay_ns(kind, 8), op_delay_ns(kind, 16));
  }
}

TEST(OpModel, WireIsFree) {
  EXPECT_EQ(op_delay_ns(OpKind::kWire, 8), 0.0);
  EXPECT_EQ(op_area_um2(OpKind::kWire, 8), 0.0);
}

TEST(OpModel, SramAreaCountedAsMacroNotCells) {
  EXPECT_EQ(op_area_um2(OpKind::kSramRead, 8), 0.0);
  EXPECT_EQ(op_area_um2(OpKind::kSramWrite, 8), 0.0);
}

TEST(OpModel, AreaScalesWithWidth) {
  EXPECT_DOUBLE_EQ(op_area_um2(OpKind::kAdd, 16), 2 * op_area_um2(OpKind::kAdd, 8));
}

// --------------------------------------------------------------- opgraph ----

TEST(OpGraph, RejectsForwardDependencies) {
  OpGraph g;
  EXPECT_THROW(g.add(OpKind::kAdd, 8, {0}), Error);  // node 0 doesn't exist
  const auto a = g.add(OpKind::kWire, 8, {});
  EXPECT_NO_THROW(g.add(OpKind::kAdd, 8, {a}));
  EXPECT_THROW(g.add(OpKind::kAdd, 8, {5}), Error);
}

TEST(OpGraph, CriticalPathIsChainSum) {
  OpGraph g;
  const auto a = g.add(OpKind::kAdd, 8, {});
  const auto b = g.add(OpKind::kAdd, 8, {a});
  g.add(OpKind::kAdd, 8, {b});
  EXPECT_NEAR(g.critical_path_ns(), 3 * op_delay_ns(OpKind::kAdd, 8), 1e-12);
}

TEST(OpGraph, CriticalPathTakesLongestBranch) {
  OpGraph g;
  const auto a = g.add(OpKind::kMux, 8, {});       // short branch
  const auto b = g.add(OpKind::kSramRead, 8, {});  // long branch
  g.add(OpKind::kAdd, 8, {a, b});
  EXPECT_NEAR(g.critical_path_ns(),
              op_delay_ns(OpKind::kSramRead, 8) + op_delay_ns(OpKind::kAdd, 8),
              1e-12);
}

TEST(OpGraph, TotalAreaSumsNodes) {
  OpGraph g;
  g.add(OpKind::kAdd, 8, {});
  g.add(OpKind::kMux, 8, {});
  EXPECT_NEAR(g.total_area_um2(),
              op_area_um2(OpKind::kAdd, 8) + op_area_um2(OpKind::kMux, 8), 1e-9);
}

// -------------------------------------------------------------- scheduler ----

OpGraph chain(int n, OpKind kind = OpKind::kAdd) {
  OpGraph g;
  std::size_t prev = g.add(kind, 8, {});
  for (int i = 1; i < n; ++i) prev = g.add(kind, 8, {prev});
  return g;
}

TEST(Scheduler, GenerousBudgetFitsOneCycle) {
  const auto g = chain(5);
  const auto s = schedule(g, 100.0);
  EXPECT_EQ(s.latency_cycles, 1);
  EXPECT_EQ(s.register_bits, 0);
}

TEST(Scheduler, TightBudgetSplitsChain) {
  const auto g = chain(4);  // 4 adders, ~0.55ns each
  const double add = op_delay_ns(OpKind::kAdd, 8);
  // Budget for exactly two chained adders per cycle.
  const auto s = schedule(g, 2 * add + 0.35 + 0.01);
  EXPECT_EQ(s.latency_cycles, 2);
  EXPECT_GT(s.register_bits, 0);
}

TEST(Scheduler, DepthIsMonotoneInFrequency) {
  const auto g = chain(6);
  int prev_depth = 0;
  for (double period : {20.0, 10.0, 5.0, 2.5, 1.6}) {
    const auto s = schedule(g, period);
    EXPECT_GE(s.latency_cycles, prev_depth);
    prev_depth = s.latency_cycles;
  }
}

TEST(Scheduler, CriticalPathNeverExceedsBudget) {
  const auto g = chain(8);
  for (double period : {10.0, 4.0, 2.5, 1.5}) {
    const auto s = schedule(g, period);
    EXPECT_LE(s.critical_path_ns, period - 0.35 + 1e-9) << period;
  }
}

TEST(Scheduler, InfeasibleFrequencyThrows) {
  OpGraph g;
  g.add(OpKind::kSramRead, 8, {});  // 1.4 ns access
  EXPECT_THROW(schedule(g, 1.0), Error);   // 0.65 ns budget
  EXPECT_NO_THROW(schedule(g, 2.0));
}

TEST(Scheduler, RegisterBitsCoverMultiCycleLiveRanges) {
  // A value produced in cycle 0 consumed in cycle 2 needs 2 registers.
  OpGraph g;
  const auto src = g.add(OpKind::kAdd, 8, {});
  const auto mid1 = g.add(OpKind::kSramRead, 8, {});
  const auto mid2 = g.add(OpKind::kSramRead, 8, {mid1});
  g.add(OpKind::kAdd, 8, {src, mid2});
  const auto s = schedule(g, 2.0);  // each SRAM read takes its own cycle
  EXPECT_GE(s.latency_cycles, 3);
  EXPECT_GE(s.register_bits, 16);  // src alive across >= 2 boundaries
}

TEST(Scheduler, MaxSchedulableFrequency) {
  OpGraph g;
  g.add(OpKind::kSramRead, 8, {});
  const double fmax = max_schedulable_mhz(g);
  EXPECT_NO_THROW(schedule(g, 1000.0 / fmax + 1e-6));
  EXPECT_THROW(schedule(g, 1000.0 / (fmax * 1.2)), Error);
}

// ----------------------------------------------------------------- PICO ----

TEST(Pico, DatapathGraphsAreNonTrivial) {
  const PicoCompiler pico;
  EXPECT_GT(pico.build_core1_graph().size(), 5u);
  EXPECT_GT(pico.build_core2_graph().size(), 5u);
  EXPECT_EQ(pico.build_shifter_graph(96).size(), 8u);  // wire + ceil(log2 96)
}

TEST(Pico, CompileBasicSanity) {
  const auto code = make_wimax_2304_half_rate();
  const PicoCompiler pico;
  const auto est =
      pico.compile(code, ArchKind::kPerLayer, HardwareTarget{400.0, 96});
  EXPECT_EQ(est.parallelism, 96);
  EXPECT_EQ(est.fold, 1);
  EXPECT_GE(est.core1_latency, 1);
  EXPECT_GE(est.core2_latency, 1);
  EXPECT_GT(est.datapath_area_um2, 0.0);
  EXPECT_GT(est.shifter_area_um2, 0.0);
  EXPECT_GT(est.total_reg_bits(), 0);
}

TEST(Pico, LatencyNonDecreasingWithFrequency) {
  const auto code = make_wimax_2304_half_rate();
  const PicoCompiler pico;
  int prev = 0;
  for (double f : {100.0, 200.0, 300.0, 400.0}) {
    const auto est =
        pico.compile(code, ArchKind::kPerLayer, HardwareTarget{f, 96});
    EXPECT_GE(est.core1_latency + est.core2_latency, prev) << f;
    prev = est.core1_latency + est.core2_latency;
  }
}

TEST(Pico, ParallelismScalesDatapathAreaLinearly) {
  const auto code = make_wimax_2304_half_rate();
  const PicoCompiler pico;
  const auto full =
      pico.compile(code, ArchKind::kPerLayer, HardwareTarget{200.0, 96});
  const auto half =
      pico.compile(code, ArchKind::kPerLayer, HardwareTarget{200.0, 48});
  EXPECT_NEAR(half.datapath_area_um2, full.datapath_area_um2 / 2, 1e-6);
  EXPECT_EQ(half.fold, 2);
  // The shifter stays full width regardless of folding.
  EXPECT_DOUBLE_EQ(half.shifter_area_um2, full.shifter_area_um2);
}

TEST(Pico, InvalidParallelismRejected) {
  const auto code = make_wimax_2304_half_rate();
  const PicoCompiler pico;
  EXPECT_THROW(pico.compile(code, ArchKind::kPerLayer, HardwareTarget{200.0, 95}),
               Error);
  EXPECT_THROW(pico.compile(code, ArchKind::kPerLayer, HardwareTarget{200.0, 0}),
               Error);
  EXPECT_THROW(pico.compile(code, ArchKind::kPerLayer, HardwareTarget{200.0, 192}),
               Error);
  EXPECT_THROW(pico.compile(code, ArchKind::kPerLayer, HardwareTarget{-5.0, 96}),
               Error);
}

TEST(Pico, DivisorParallelismsAccepted) {
  const auto code = make_wimax_2304_half_rate();
  const PicoCompiler pico;
  for (int p : {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 96}) {
    const auto est =
        pico.compile(code, ArchKind::kPerLayer, HardwareTarget{200.0, p});
    EXPECT_EQ(est.fold * p, 96);
  }
}

TEST(Pico, PipelinedArchHasMoreStorage) {
  // Fig. 7: duplicated state arrays + scoreboard.
  const auto code = make_wimax_2304_half_rate();
  const PicoCompiler pico;
  const auto per =
      pico.compile(code, ArchKind::kPerLayer, HardwareTarget{400.0, 96});
  const auto pipe =
      pico.compile(code, ArchKind::kTwoLayerPipelined, HardwareTarget{400.0, 96});
  EXPECT_GT(pipe.array_reg_bits, per.array_reg_bits);
  EXPECT_GT(pipe.reg_bits_state_core2, 0);
  EXPECT_EQ(per.reg_bits_state_core2, 0);
  EXPECT_GT(pipe.reg_bits_other, 0);  // scoreboard
}

TEST(Pico, ArraySizesMatchFig5) {
  // (2304, 1/2): min arrays 96x8 x2, pos 96x5, sign 96x1, Q array 7x768.
  const auto code = make_wimax_2304_half_rate();
  const PicoCompiler pico(FixedFormat{8, 2});
  const auto est =
      pico.compile(code, ArchKind::kPerLayer, HardwareTarget{100.0, 96});
  const long long expected = 96 * 8 * 2 + 96 * 5 + 96 + 7 * 96 * 8;
  EXPECT_EQ(est.array_reg_bits, expected);
  EXPECT_EQ(est.state_bits_per_lane(), 22);
  EXPECT_EQ(est.q_entry_bits(), 768);
}

TEST(Pico, RegisterBreakdownSumsToTotal) {
  const auto code = make_wimax_2304_half_rate();
  const PicoCompiler pico;
  for (auto arch : {ArchKind::kPerLayer, ArchKind::kTwoLayerPipelined}) {
    const auto est = pico.compile(code, arch, HardwareTarget{400.0, 96});
    EXPECT_EQ(est.reg_bits_state_core1 + est.reg_bits_state_core2 +
                  est.reg_bits_pipe_core1 + est.reg_bits_pipe_core2 +
                  est.reg_bits_q + est.reg_bits_other,
              est.total_reg_bits());
  }
}

TEST(Pico, WorksForWifiGeometry) {
  const auto code = make_wifi_1944_half_rate();
  const PicoCompiler pico;
  const auto est =
      pico.compile(code, ArchKind::kTwoLayerPipelined, HardwareTarget{300.0, 81});
  EXPECT_EQ(est.parallelism, 81);
  EXPECT_GT(est.total_reg_bits(), 0);
}

TEST(Pico, ArchNames) {
  EXPECT_EQ(arch_name(ArchKind::kPerLayer), "per-layer");
  EXPECT_EQ(arch_name(ArchKind::kTwoLayerPipelined), "two-layer-pipelined");
}

// ------------------------------------------------------ schedule detail ----

TEST(ScheduleDetail, ConsistentWithSummary) {
  const PicoCompiler pico;
  const OpGraph g = pico.build_core1_graph();
  for (double period : {10.0, 2.5}) {
    const auto detail = schedule_detail(g, period);
    const auto summary = schedule(g, period);
    int depth = 0;
    for (const auto& op : detail) depth = std::max(depth, op.cycle);
    EXPECT_EQ(depth + 1, summary.latency_cycles) << period;
    ASSERT_EQ(detail.size(), g.size());
  }
}

TEST(ScheduleDetail, DependenciesRespectOrdering) {
  const PicoCompiler pico;
  const OpGraph g = pico.build_core2_graph();
  const auto detail = schedule_detail(g, 2.5);
  for (std::size_t i = 0; i < g.nodes().size(); ++i) {
    for (std::size_t d : g.nodes()[i].deps) {
      // A consumer starts no earlier than its producer finishes (same
      // cycle, later offset) or in a later cycle.
      ASSERT_TRUE(detail[i].cycle > detail[d].cycle ||
                  (detail[i].cycle == detail[d].cycle &&
                   detail[i].start_ns >= detail[d].finish_ns - 1e-9));
    }
  }
}

TEST(ScheduleReport, MentionsEveryCycleAndLabel) {
  const PicoCompiler pico;
  const OpGraph g = pico.build_core1_graph();
  const std::string report = schedule_report(g, 2.5);
  EXPECT_NE(report.find("cycle 0:"), std::string::npos);
  EXPECT_NE(report.find("cycle 1:"), std::string::npos);
  EXPECT_NE(report.find("Q=P-R"), std::string::npos);
  EXPECT_NE(report.find("cmp_min1"), std::string::npos);
}

// ------------------------------------------------------ hardware report ----

TEST(HardwareReport, InventoryMatchesFig5Geometry) {
  const auto code = make_wimax_2304_half_rate();
  const PicoCompiler pico(FixedFormat{8, 2});
  const auto est =
      pico.compile(code, ArchKind::kPerLayer, HardwareTarget{400.0, 96});
  const auto blocks = hardware_inventory(code, est);

  auto find = [&](const std::string& name) -> const HardwareBlock* {
    for (const auto& b : blocks)
      if (b.name == name) return &b;
    return nullptr;
  };
  ASSERT_NE(find("P SRAM"), nullptr);
  EXPECT_EQ(find("P SRAM")->bits, 18432);            // 24 x 768
  EXPECT_EQ(find("P SRAM")->geometry, "24 x 768 bits");
  ASSERT_NE(find("R SRAM"), nullptr);
  EXPECT_EQ(find("R SRAM")->bits, 76 * 768);
  ASSERT_NE(find("Q_array"), nullptr);
  EXPECT_EQ(find("Q_array")->geometry, "7 x 768 bits");  // Fig. 5's Q array
  ASSERT_NE(find("min1_array"), nullptr);
  EXPECT_EQ(find("min1_array")->geometry, "96 x 8 bits");
  ASSERT_NE(find("pos1_array"), nullptr);
  EXPECT_EQ(find("pos1_array")->geometry, "96 x 5 bits");
  EXPECT_EQ(find("Q FIFO"), nullptr);       // per-layer has the array
  EXPECT_EQ(find("scoreboard"), nullptr);   // no scoreboard either
}

TEST(HardwareReport, PipelinedAddsFifoScoreboardAndCopies) {
  const auto code = make_wimax_2304_half_rate();
  const PicoCompiler pico(FixedFormat{8, 2});
  const auto est = pico.compile(code, ArchKind::kTwoLayerPipelined,
                                HardwareTarget{400.0, 96});
  const auto blocks = hardware_inventory(code, est);
  int min_arrays = 0;
  bool fifo = false, scoreboard = false, q_array = false;
  for (const auto& b : blocks) {
    if (b.name.rfind("min1_array", 0) == 0) ++min_arrays;
    if (b.name == "Q FIFO") fifo = true;
    if (b.name == "scoreboard") scoreboard = true;
    if (b.name == "Q_array") q_array = true;
  }
  EXPECT_EQ(min_arrays, 2);  // private copies per core (Fig. 7)
  EXPECT_TRUE(fifo);
  EXPECT_TRUE(scoreboard);
  EXPECT_FALSE(q_array);
}

TEST(HardwareReport, RendersWithPaperReference) {
  const auto code = make_wimax_2304_half_rate();
  const PicoCompiler pico(FixedFormat{8, 2});
  const auto est =
      pico.compile(code, ArchKind::kPerLayer, HardwareTarget{100.0, 96});
  const std::string report = hardware_report(code, est);
  EXPECT_NE(report.find("24 x 768"), std::string::npos);
  EXPECT_NE(report.find("Paper reference"), std::string::npos);
}

TEST(HardwareReport, NoPaperReferenceForOtherCodes) {
  const auto code = make_wifi_648_half_rate();
  const PicoCompiler pico(FixedFormat{8, 2});
  const auto est =
      pico.compile(code, ArchKind::kPerLayer, HardwareTarget{100.0, 27});
  const std::string report = hardware_report(code, est);
  EXPECT_EQ(report.find("Paper reference"), std::string::npos);
  EXPECT_NE(report.find("27"), std::string::npos);
}

}  // namespace
}  // namespace ldpc
