// Block interleaver tests, including the end-to-end effect it exists for:
// breaking up fading bursts so the decoder sees independent-ish gains.
#include <gtest/gtest.h>

#include <numeric>

#include "channel/interleaver.hpp"
#include "util/rng.hpp"

namespace ldpc {
namespace {

TEST(Interleaver, RoundTripIsIdentity) {
  BlockInterleaver il(8, 32);
  std::vector<int> data(8 * 32);
  std::iota(data.begin(), data.end(), 0);
  EXPECT_EQ(il.deinterleave(il.interleave(data)), data);
  EXPECT_EQ(il.interleave(il.deinterleave(data)), data);
}

TEST(Interleaver, KnownSmallPermutation) {
  // 2x3: in = [a b c / d e f] -> columns read: a d b e c f.
  BlockInterleaver il(2, 3);
  const std::vector<char> in = {'a', 'b', 'c', 'd', 'e', 'f'};
  const auto out = il.interleave(in);
  EXPECT_EQ(out, (std::vector<char>{'a', 'd', 'b', 'e', 'c', 'f'}));
}

TEST(Interleaver, AdjacentBitsSeparatedByRows) {
  BlockInterleaver il(16, 9);
  std::vector<int> data(16 * 9);
  std::iota(data.begin(), data.end(), 0);
  const auto out = il.interleave(data);
  // Positions of input elements 0 and 1 in the output differ by >= rows.
  std::size_t pos0 = 0, pos1 = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] == 0) pos0 = i;
    if (out[i] == 1) pos1 = i;
  }
  EXPECT_GE(pos1 > pos0 ? pos1 - pos0 : pos0 - pos1, il.dispersion());
  EXPECT_EQ(il.dispersion(), 16u);
}

TEST(Interleaver, SizeMismatchRejected) {
  BlockInterleaver il(4, 4);
  std::vector<float> wrong(15);
  EXPECT_THROW(il.interleave(wrong), Error);
  EXPECT_THROW(il.deinterleave(wrong), Error);
}

TEST(Interleaver, DegenerateGeometriesWork) {
  BlockInterleaver row(1, 10);
  BlockInterleaver col(10, 1);
  std::vector<int> data(10);
  std::iota(data.begin(), data.end(), 0);
  EXPECT_EQ(row.interleave(data), data);  // single row: identity
  EXPECT_EQ(col.interleave(data), data);  // single column: identity
  EXPECT_THROW(BlockInterleaver(0, 5), Error);
}

TEST(Interleaver, BreaksBurstsIntoIsolatedErrors) {
  // A burst of B consecutive on-air erasures lands on bits that are far
  // apart after deinterleaving — no two within `rows` of each other when
  // the burst is shorter than the column count.
  BlockInterleaver il(24, 96);
  std::vector<int> frame(24 * 96, 0);
  auto on_air = il.interleave(frame);
  for (std::size_t i = 500; i < 520; ++i) on_air[i] = 1;  // 20-symbol burst
  const auto received = il.deinterleave(on_air);
  std::vector<std::size_t> hit;
  for (std::size_t i = 0; i < received.size(); ++i)
    if (received[i]) hit.push_back(i);
  ASSERT_EQ(hit.size(), 20u);
  for (std::size_t i = 1; i < hit.size(); ++i)
    EXPECT_GE(hit[i] - hit[i - 1], 24u);
}

}  // namespace
}  // namespace ldpc
