// Extended power/area model invariants: energy-per-bit behaviour across the
// design space, SRAM power proportionality, folding effects — the
// properties the energy-efficiency bench relies on.
#include <gtest/gtest.h>

#include "bench/bench_common.hpp"
#include "power/area_model.hpp"
#include "power/metrics.hpp"
#include "power/power_model.hpp"

namespace ldpc {
namespace {

struct Point {
  double tput_mbps;
  double epb_gated;
  double epb_ungated;
  PowerBreakdown gated;
  PowerBreakdown ungated;
};

Point measure(ArchKind arch, double mhz, int parallelism) {
  static const QCLdpcCode code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  const auto est = pico.compile(code, arch, HardwareTarget{mhz, parallelism});
  const auto run = bench::run_design_point(code, arch, mhz, parallelism, fmt, true);
  const AreaModel am;
  const auto area = am.estimate(est, bench::flexible_decoder_sram_bits());
  const PowerModel pm;
  Point p;
  p.gated = pm.estimate(est, run.activity, area.std_cells_mm2, true);
  p.ungated = pm.estimate(est, run.activity, area.std_cells_mm2, false);
  p.tput_mbps = info_throughput_mbps(code.k(), run.activity.cycles, mhz);
  p.epb_gated = energy_per_bit_pj(p.gated.total_with_sram_mw, p.tput_mbps);
  p.epb_ungated = energy_per_bit_pj(p.ungated.total_with_sram_mw, p.tput_mbps);
  return p;
}

TEST(EnergyPerBit, RoughlyFlatAcrossFrequency) {
  // Power and throughput both scale ~linearly with the clock, so energy
  // per bit moves by far less than the 4x frequency span.
  const auto lo = measure(ArchKind::kTwoLayerPipelined, 100.0, 96);
  const auto hi = measure(ArchKind::kTwoLayerPipelined, 400.0, 96);
  EXPECT_LT(hi.epb_gated / lo.epb_gated, 1.6);
  EXPECT_GT(hi.epb_gated / lo.epb_gated, 0.6);
}

TEST(EnergyPerBit, PipelinedBeatsPerLayer) {
  // Same storage, same per-edge work, more bits per cycle.
  const auto per = measure(ArchKind::kPerLayer, 400.0, 96);
  const auto pipe = measure(ArchKind::kTwoLayerPipelined, 400.0, 96);
  EXPECT_LT(pipe.epb_gated, per.epb_gated);
}

TEST(EnergyPerBit, GatingAlwaysHelps) {
  for (ArchKind arch : {ArchKind::kPerLayer, ArchKind::kTwoLayerPipelined}) {
    for (int p : {96, 24}) {
      const auto pt = measure(arch, 200.0, p);
      EXPECT_LT(pt.epb_gated, pt.epb_ungated)
          << arch_name(arch) << " p=" << p;
    }
  }
}

TEST(EnergyPerBit, GatingSavesMoreAtLowerUtilization) {
  // Folded datapaths idle the shared arrays longer, so block gating
  // removes a larger fraction of the clock power.
  auto saving = [](const Point& pt) {
    return 1.0 - pt.gated.internal_mw / pt.ungated.internal_mw;
  };
  const auto full = measure(ArchKind::kPerLayer, 200.0, 96);
  const auto folded = measure(ArchKind::kPerLayer, 200.0, 24);
  EXPECT_GT(saving(folded), saving(full));
}

TEST(PowerModelExt, SramPowerScalesWithAccessRate) {
  // Same structure, double the iterations -> same SRAM power (it is a
  // rate, not an energy): access count and time both double.
  static const QCLdpcCode code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  const auto est = pico.compile(code, ArchKind::kPerLayer,
                                HardwareTarget{200.0, 96});
  const auto short_run =
      bench::run_design_point(code, ArchKind::kPerLayer, 200.0, 96, fmt, false, 5);
  const auto long_run =
      bench::run_design_point(code, ArchKind::kPerLayer, 200.0, 96, fmt, false, 10);
  const PowerModel pm;
  const auto p5 = pm.estimate(est, short_run.activity, 0.3, true);
  const auto p10 = pm.estimate(est, long_run.activity, 0.3, true);
  EXPECT_NEAR(p5.sram_mw, p10.sram_mw, p10.sram_mw * 0.05);
}

TEST(PowerModelExt, SwitchingPowerScalesWithFrequency) {
  const auto lo = measure(ArchKind::kPerLayer, 100.0, 96);
  const auto hi = measure(ArchKind::kPerLayer, 400.0, 96);
  // Same activity per cycle, 4x the cycles per second.
  EXPECT_GT(hi.gated.switching_mw, 2.5 * lo.gated.switching_mw);
  EXPECT_LT(hi.gated.switching_mw, 5.0 * lo.gated.switching_mw);
}

TEST(PowerModelExt, LeakageIndependentOfActivity) {
  static const QCLdpcCode code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  const auto est =
      pico.compile(code, ArchKind::kPerLayer, HardwareTarget{200.0, 96});
  const auto a = bench::run_design_point(code, ArchKind::kPerLayer, 200.0, 96,
                                         fmt, false, 3);
  const auto b = bench::run_design_point(code, ArchKind::kPerLayer, 200.0, 96,
                                         fmt, false, 10);
  const PowerModel pm;
  EXPECT_DOUBLE_EQ(pm.estimate(est, a.activity, 0.3, true).leakage_mw,
                   pm.estimate(est, b.activity, 0.3, true).leakage_mw);
}

TEST(PowerModelExt, PaperPowerRegimeAt400MHz) {
  // Sustained decoding with the full multi-rate SRAM complement lands
  // between Table I's 72 mW (std cells) and the 180 mW peak estimate.
  const auto pt = measure(ArchKind::kTwoLayerPipelined, 400.0, 96);
  EXPECT_GT(pt.gated.total_with_sram_mw, 50.0);
  EXPECT_LT(pt.ungated.total_with_sram_mw, 180.0);
}

TEST(AreaModelExt, RegisterAreaTracksRegBits) {
  static const QCLdpcCode code = make_wimax_2304_half_rate();
  const PicoCompiler pico(FixedFormat{8, 2});
  const AreaModel am;
  const auto per = pico.compile(code, ArchKind::kPerLayer,
                                HardwareTarget{400.0, 96});
  const auto pipe = pico.compile(code, ArchKind::kTwoLayerPipelined,
                                 HardwareTarget{400.0, 96});
  const auto a_per = am.estimate(per, 0);
  const auto a_pipe = am.estimate(pipe, 0);
  const double ratio_bits = static_cast<double>(pipe.total_reg_bits()) /
                            static_cast<double>(per.total_reg_bits());
  const double ratio_area = a_pipe.registers_mm2 / a_per.registers_mm2;
  EXPECT_NEAR(ratio_area, ratio_bits, 1e-9);
}

}  // namespace
}  // namespace ldpc
