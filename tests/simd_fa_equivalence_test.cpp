// Bit-identity proof for the finite-alphabet SIMD decoder family: every
// frame decoded by the z-lane SimdFaLayeredDecoder and by the inter-frame
// batched SimdFaBatchDecoder must match a standalone LayeredMinSumFaDecoder
// decode of the same LLRs — hard bits, iteration counts, status, and every
// saturation counter — on every kernel tier, at every message resolution
// (fa2/fa3/fa4), for block sizes below / at / above the lane width, and
// across code geometries including z values that collide with none of the
// int8 lane counts. Both quantizer paths are covered: the counted
// per-element fa_quantize and the uncounted vector quantize kernel
// (fa_quantize_pass), whose float-exactness argument lives in
// simd_kernel.hpp. scripts/check.sh runs this suite scalar-only and under
// the sanitizer matrix.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "codes/random_qc.hpp"
#include "codes/wifi.hpp"
#include "codes/wimax.hpp"
#include "core/layered_minsum_fa.hpp"
#include "core/simd/simd_fa_batch.hpp"
#include "core/simd/simd_fa_layered.hpp"
#include "util/rng.hpp"

namespace ldpc {
namespace {

std::vector<float> noisy_llr(const QCLdpcCode& code, float ebn0_db,
                             std::uint64_t seed) {
  const RuEncoder enc(code);
  Xoshiro256 rng(seed);
  BitVec info(code.k());
  for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
  const float variance = awgn_noise_variance(ebn0_db, code.rate());
  AwgnChannel ch(variance, seed + 1);
  return BpskModem::demodulate(
      ch.transmit(BpskModem::modulate(enc.encode(info))), variance);
}

struct Reference {
  DecodeResult result;
  SaturationStats saturation;
};

void expect_frame_identical(const Reference& ref, const DecodeResult& rv,
                            const SaturationStats& sv, const std::string& ctx) {
  EXPECT_TRUE(ref.result.hard_bits == rv.hard_bits) << ctx;
  EXPECT_EQ(ref.result.iterations, rv.iterations) << ctx;
  EXPECT_EQ(ref.result.converged, rv.converged) << ctx;
  EXPECT_EQ(ref.result.status, rv.status) << ctx;
  EXPECT_EQ(rv.simd_fallback, SimdFallback::kNone) << ctx;
  EXPECT_EQ(ref.saturation.quantizer_clips, sv.quantizer_clips) << ctx;
  EXPECT_EQ(ref.saturation.datapath_clips, sv.datapath_clips) << ctx;
  EXPECT_EQ(ref.saturation.q_clips, sv.q_clips) << ctx;
  EXPECT_EQ(ref.saturation.r_clips, sv.r_clips) << ctx;
  EXPECT_EQ(ref.saturation.p_clips, sv.p_clips) << ctx;
  EXPECT_EQ(ref.saturation.degenerate_checks, sv.degenerate_checks) << ctx;
  // Family invariant, independently of the scalar reference: the staircase
  // emits in-alphabet magnitudes, so R never clips on any implementation.
  EXPECT_EQ(sv.r_clips, 0) << ctx;
}

void expect_block_identical(SimdFaBatchDecoder& batched,
                            const std::vector<std::vector<float>>& pool,
                            const std::vector<Reference>& refs,
                            std::size_t count, const std::string& ctx) {
  std::vector<BlockFrame> frames;
  frames.reserve(count);
  for (std::size_t f = 0; f < count; ++f)
    frames.push_back({pool[f], nullptr});
  std::vector<DecodeResult> results(count);
  std::vector<SaturationStats> saturation(count);
  batched.decode_block(frames, results, saturation);
  for (std::size_t f = 0; f < count; ++f)
    expect_frame_identical(refs[f], results[f], saturation[f],
                           ctx + " block=" + std::to_string(count) +
                               " frame=" + std::to_string(f));
}

/// Sweep one (code, options, msg_bits) point: scalar references once, then
/// every tier twice over — the z-lane decoder per frame, and the batched
/// decoder at block sizes {1, W-1, W, W+3} (one lane, a partial block, a
/// full block, a mid-flight lane refill).
void sweep_code(const QCLdpcCode& code, const DecoderOptions& opt,
                int msg_bits, float ebn0_db) {
  std::size_t max_width = 0;
  for (const simd::SimdTier tier : simd::available_tiers())
    max_width = std::max<std::size_t>(max_width, simd::tier_lanes8(tier));

  std::vector<std::vector<float>> pool;
  std::vector<Reference> refs;
  LayeredMinSumFaDecoder scalar(code, opt, msg_bits);
  for (std::size_t f = 0; f < max_width + 3; ++f) {
    pool.push_back(noisy_llr(code, ebn0_db,
                             static_cast<std::uint64_t>(f) * 131 + 7));
    refs.push_back({scalar.decode(pool.back()), scalar.saturation()});
  }

  for (const simd::SimdTier tier : simd::available_tiers()) {
    const std::string ctx = "fa" + std::to_string(msg_bits) +
                            " z=" + std::to_string(code.z()) +
                            " n=" + std::to_string(code.n()) +
                            " tier=" + simd::to_string(tier);
    SimdFaLayeredDecoder lane(code, opt, msg_bits, 2.0F, tier);
    for (std::size_t f = 0; f < pool.size(); ++f) {
      const DecodeResult rv = lane.decode(pool[f]);
      expect_frame_identical(refs[f], rv, lane.saturation(),
                             ctx + " zlane frame=" + std::to_string(f));
    }

    SimdFaBatchDecoder batched(code, opt, msg_bits, 2.0F, tier);
    ASSERT_FALSE(batched.scalar_only());
    const std::size_t w = batched.block_width();
    EXPECT_EQ(w, simd::tier_lanes8(tier));
    for (const std::size_t count : {std::size_t{1}, w - 1, w, w + 3})
      expect_block_identical(batched, pool, refs, count, ctx);
  }
}

DecoderOptions counting_options() {
  DecoderOptions opt;
  opt.count_saturation = true;
  return opt;
}

DecoderOptions uncounted_options() {
  DecoderOptions opt;
  opt.count_saturation = false;
  return opt;
}

// ------------------------------------------------------------- geometry ----

TEST(SimdFaEquivalence, WimaxHalfRateZ96Fa4) {
  sweep_code(make_wimax_2304_half_rate(), counting_options(), 4, 2.4F);
}

TEST(SimdFaEquivalence, WifiZ27Fa4) {
  // z = 27 collides with none of the int8 lane counts; the batched layout
  // is z-agnostic (frames ride in lanes) and must stay exact.
  sweep_code(make_wifi_648_half_rate(), counting_options(), 4, 2.4F);
}

TEST(SimdFaEquivalence, WifiZ81Fa4) {
  sweep_code(make_wifi_1944_half_rate(), counting_options(), 4, 2.4F);
}

TEST(SimdFaEquivalence, RandomQcZ10BelowEveryLaneWidth) {
  RandomQcConfig cfg;
  cfg.z = 10;
  cfg.seed = 11;
  sweep_code(make_random_qc_code(cfg), counting_options(), 4, 3.0F);
}

TEST(SimdFaEquivalence, RandomQcZ33OddGeometry) {
  RandomQcConfig cfg;
  cfg.block_rows = 5;
  cfg.block_cols = 15;
  cfg.z = 33;
  cfg.info_row_degree = 5;
  cfg.seed = 23;
  sweep_code(make_random_qc_code(cfg), counting_options(), 4, 3.0F);
}

// ----------------------------------------------------------- resolution ----

TEST(SimdFaEquivalence, TwoBitMessages) {
  sweep_code(make_wifi_648_half_rate(), counting_options(), 2, 3.0F);
}

TEST(SimdFaEquivalence, ThreeBitMessages) {
  sweep_code(make_wifi_648_half_rate(), counting_options(), 3, 2.6F);
}

// ----------------------------------------------------- quantizer paths ----

TEST(SimdFaEquivalence, UncountedVectorQuantizePath) {
  // count_saturation = false routes channel quantization through the
  // tier's fa_quantize_pass kernel instead of per-element fa_quantize;
  // results must stay bit-identical (stats all zero on both sides).
  sweep_code(make_wifi_648_half_rate(), uncounted_options(), 4, 2.4F);
}

TEST(SimdFaEquivalence, UncountedVectorQuantizeWimaxZ96) {
  sweep_code(make_wimax_2304_half_rate(), uncounted_options(), 4, 2.4F);
}

// ------------------------------------------------------------- options ----

TEST(SimdFaEquivalence, EarlyTerminationOff) {
  DecoderOptions opt = counting_options();
  opt.early_termination = false;
  opt.max_iterations = 6;
  sweep_code(make_wifi_648_half_rate(), opt, 4, 2.2F);
}

TEST(SimdFaEquivalence, WatchdogAbort) {
  DecoderOptions opt = counting_options();
  opt.max_iterations = 30;
  opt.watchdog.stall_window = 4;
  // 0 dB: most frames stall, so the watchdog path actually fires.
  sweep_code(make_wifi_648_half_rate(), opt, 4, 0.0F);
}

}  // namespace
}  // namespace ldpc
