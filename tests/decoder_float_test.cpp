// Floating-point decoder tests: sum-product, flooding min-sum variants and
// the layered float min-sum — correctness on clean and noisy channels, and
// the qualitative relationships the paper's algorithm relies on (layered
// converges faster than flooding; normalization improves plain min-sum).
#include <gtest/gtest.h>

#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "codes/wimax.hpp"
#include "core/decoder_factory.hpp"
#include "core/flooding_bp.hpp"
#include "core/flooding_minsum.hpp"
#include "core/layered_minsum_float.hpp"
#include "util/rng.hpp"

namespace ldpc {
namespace {

BitVec random_info(std::size_t k, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  BitVec info(k);
  for (std::size_t i = 0; i < k; ++i) info.set(i, rng.coin());
  return info;
}

struct Frame {
  BitVec codeword;
  std::vector<float> llr;
};

Frame make_frame(const QCLdpcCode& code, float ebn0_db, std::uint64_t seed) {
  const RuEncoder enc(code);
  Frame f;
  f.codeword = enc.encode(random_info(code.k(), seed));
  const float variance = awgn_noise_variance(ebn0_db, code.rate());
  AwgnChannel ch(variance, seed * 31 + 7);
  f.llr = BpskModem::demodulate(ch.transmit(BpskModem::modulate(f.codeword)),
                                variance);
  return f;
}

// Decoders under test, via the factory (also covers the factory itself).
class FloatDecoderTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FloatDecoderTest, DecodesNoiselessChannel) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const RuEncoder enc(code);
  const BitVec word = enc.encode(random_info(code.k(), 1));
  auto llr = BpskModem::demodulate(BpskModem::modulate(word), 1.0F);
  DecoderOptions opt;
  auto dec = make_decoder(GetParam(), code, opt);
  const auto result = dec->decode(llr);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 1u);
  EXPECT_TRUE(result.hard_bits == word);
}

TEST_P(FloatDecoderTest, CorrectsModerateNoise) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 48);
  DecoderOptions opt;
  opt.max_iterations = 20;
  auto dec = make_decoder(GetParam(), code, opt);
  int good = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Frame f = make_frame(code, 2.5F, seed);
    const auto result = dec->decode(f.llr);
    good += (result.hard_bits == f.codeword);
  }
  EXPECT_GE(good, 9) << GetParam();
}

TEST_P(FloatDecoderTest, ReportsNonConvergenceOnGarbage) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  opt.max_iterations = 3;
  auto dec = make_decoder(GetParam(), code, opt);
  // Adversarial LLRs: alternating strong values that satisfy no parity.
  std::vector<float> llr(code.n());
  Xoshiro256 rng(3);
  for (auto& v : llr) v = rng.coin() ? 9.0F : -9.0F;
  const auto result = dec->decode(llr);
  EXPECT_EQ(result.iterations, 3u);
  // (convergence is possible but overwhelmingly unlikely; just check sanity)
  EXPECT_EQ(result.hard_bits.size(), code.n());
}

TEST_P(FloatDecoderTest, WrongLlrLengthThrows) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  auto dec = make_decoder(GetParam(), code, opt);
  std::vector<float> llr(code.n() - 1, 1.0F);
  EXPECT_THROW(dec->decode(llr), Error);
}

INSTANTIATE_TEST_SUITE_P(Decoders, FloatDecoderTest,
                         ::testing::Values("flooding-bp", "flooding-minsum",
                                           "flooding-minsum-norm",
                                           "flooding-minsum-offset",
                                           "layered-minsum-float"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

// ----------------------------------------------------- factory behaviour ----

TEST(DecoderFactory, UnknownNameThrows) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  EXPECT_THROW(make_decoder("no-such-decoder", code, opt), Error);
}

TEST(DecoderFactory, AllAdvertisedNamesConstruct) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  for (const auto& name : decoder_names()) {
    auto dec = make_decoder(name, code, opt);
    EXPECT_EQ(dec->n(), code.n()) << name;
    EXPECT_FALSE(dec->name().empty()) << name;
  }
}

// ----------------------------------------------- qualitative comparisons ----

// Count decoding failures over a fixed batch of noisy frames.
int failures(Decoder& dec, const QCLdpcCode& code, float ebn0_db, int frames) {
  int fail = 0;
  for (int f = 0; f < frames; ++f) {
    const Frame fr = make_frame(code, ebn0_db, 1000 + static_cast<std::uint64_t>(f));
    const auto result = dec.decode(fr.llr);
    fail += !(result.hard_bits == fr.codeword);
  }
  return fail;
}

double mean_iterations(Decoder& dec, const QCLdpcCode& code, float ebn0_db,
                       int frames) {
  double total = 0;
  for (int f = 0; f < frames; ++f) {
    const Frame fr = make_frame(code, ebn0_db, 500 + static_cast<std::uint64_t>(f));
    total += static_cast<double>(dec.decode(fr.llr).iterations);
  }
  return total / frames;
}

TEST(DecoderComparison, LayeredConvergesFasterThanFlooding) {
  // The classic layered-decoding result: roughly half the iterations at
  // equal error rate, because updated posteriors are used within the same
  // iteration. This is the premise of the paper's architecture.
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 48);
  DecoderOptions opt;
  opt.max_iterations = 30;
  FloodingMinSumDecoder flooding(code, opt);
  LayeredMinSumFloatDecoder layered(code, opt);
  const double it_flood = mean_iterations(flooding, code, 2.2F, 20);
  const double it_layer = mean_iterations(layered, code, 2.2F, 20);
  EXPECT_LT(it_layer, it_flood * 0.75)
      << "layered=" << it_layer << " flooding=" << it_flood;
}

TEST(DecoderComparison, NormalizationHelpsMinSum) {
  // Plain min-sum overestimates magnitudes; 0.75 scaling recovers most of
  // the gap to BP at waterfall SNR.
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 48);
  DecoderOptions opt;
  opt.max_iterations = 15;
  FloodingMinSumDecoder plain(code, opt, MinSumVariant::kPlain);
  FloodingMinSumDecoder normalized(code, opt, MinSumVariant::kNormalized);
  const int fail_plain = failures(plain, code, 1.8F, 40);
  const int fail_norm = failures(normalized, code, 1.8F, 40);
  EXPECT_LE(fail_norm, fail_plain);
}

TEST(DecoderComparison, BpAtLeastAsGoodAsPlainMinSum) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 48);
  DecoderOptions opt;
  opt.max_iterations = 15;
  FloodingBpDecoder bp(code, opt);
  FloodingMinSumDecoder plain(code, opt, MinSumVariant::kPlain);
  EXPECT_LE(failures(bp, code, 1.8F, 40), failures(plain, code, 1.8F, 40));
}

TEST(LayeredFloat, EarlyTerminationStopsAtConvergence) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 48);
  DecoderOptions with_et;
  with_et.max_iterations = 30;
  DecoderOptions without_et = with_et;
  without_et.early_termination = false;
  LayeredMinSumFloatDecoder et(code, with_et);
  LayeredMinSumFloatDecoder no_et(code, without_et);
  const Frame f = make_frame(code, 3.0F, 9);
  const auto r_et = et.decode(f.llr);
  const auto r_no = no_et.decode(f.llr);
  EXPECT_TRUE(r_et.converged);
  EXPECT_LT(r_et.iterations, 30u);
  EXPECT_EQ(r_no.iterations, 30u);
  // Both must decode to the transmitted codeword here.
  EXPECT_TRUE(r_et.hard_bits == f.codeword);
  EXPECT_TRUE(r_no.hard_bits == f.codeword);
}

TEST(LayeredFloat, ScaleParameterMatters) {
  // scale = 1.0 (plain layered min-sum) should not beat 0.75 on average.
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 48);
  DecoderOptions scaled;
  scaled.max_iterations = 15;
  DecoderOptions unscaled = scaled;
  unscaled.scale = 1.0F;
  LayeredMinSumFloatDecoder dec_s(code, scaled);
  LayeredMinSumFloatDecoder dec_u(code, unscaled);
  EXPECT_LE(failures(dec_s, code, 1.8F, 40), failures(dec_u, code, 1.8F, 40));
}

TEST(FloodingBp, ZeroIterationsRejected) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  opt.max_iterations = 0;
  EXPECT_THROW(FloodingBpDecoder(code, opt), Error);
  EXPECT_THROW(LayeredMinSumFloatDecoder(code, opt), Error);
  EXPECT_THROW(FloodingMinSumDecoder(code, opt), Error);
}

}  // namespace
}  // namespace ldpc
