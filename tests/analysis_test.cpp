// Static analyzer tests: the cycle-exact equivalence between the predicted
// and measured pipeline timing (the analyzer's core contract), the op-graph
// and layer-hazard lint passes on both clean and seeded-defective inputs,
// and the layer-reordering optimizer's measured improvement.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "analysis/column_order.hpp"
#include "analysis/hazard_lint.hpp"
#include "analysis/layer_reorder.hpp"
#include "analysis/opgraph_lint.hpp"
#include "analysis/pipeline_model.hpp"
#include "arch/arch_sim.hpp"
#include "bench/bench_common.hpp"
#include "codes/wifi.hpp"
#include "codes/wimax.hpp"

namespace ldpc {
namespace {

constexpr double kClockMhz = 400.0;

/// Measured activity of a fixed-iteration decode (ET off: the iteration
/// count, and therefore the data-independent timing, is forced). The frame
/// content is irrelevant to the timing engine, so a constant-LLR frame is
/// used — it also sidesteps RuEncoder, which assumes the natural (un-permuted)
/// row order of the dual-diagonal structure.
ArchDecodeResult measure(const QCLdpcCode& code, ArchKind arch, int parallelism,
                         bool hazard_order, std::size_t iterations) {
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  const auto est =
      pico.compile(code, arch, HardwareTarget{kClockMhz, parallelism});
  DecoderOptions opt;
  opt.max_iterations = iterations;
  opt.early_termination = false;
  ArchSimDecoder sim(code, est, opt, fmt, ArchSimConfig{hazard_order});
  const std::vector<std::int32_t> frame(code.n(), 9);
  return sim.decode_quantized(frame);
}

TimingPrediction predict(const QCLdpcCode& code, ArchKind arch,
                         int parallelism, bool hazard_order,
                         std::size_t iterations) {
  const PicoCompiler pico(FixedFormat{8, 2});
  const auto est =
      pico.compile(code, arch, HardwareTarget{kClockMhz, parallelism});
  const auto model = make_pipeline_model(
      code, est,
      hazard_order ? ColumnOrderPolicy::kHazardAware
                   : ColumnOrderPolicy::kBlockSerial);
  return predict_timing(model, iterations);
}

// --------------------------------------------- cycle-exact equivalence ----

struct StallCase {
  WimaxRate rate;
  int parallelism;
};

class WimaxStallExactness : public ::testing::TestWithParam<StallCase> {};

// The acceptance contract: for every bundled WiMAX code and P in
// {z, z/2, z/4}, predicted core-1 stalls equal the scoreboard's measured
// stalls cycle-exactly — in both column orders, along with total latency.
TEST_P(WimaxStallExactness, PredictionMatchesScoreboard) {
  const auto [rate, parallelism] = GetParam();
  const auto code = make_wimax_code(rate, 96);
  constexpr std::size_t kIters = 5;
  for (const bool hazard_order : {false, true}) {
    const auto measured = measure(code, ArchKind::kTwoLayerPipelined,
                                  parallelism, hazard_order, kIters);
    const auto predicted = predict(code, ArchKind::kTwoLayerPipelined,
                                   parallelism, hazard_order, kIters);
    EXPECT_EQ(predicted.core1_stall_cycles,
              measured.activity.core1_stall_cycles)
        << wimax_rate_name(rate) << " P=" << parallelism
        << " hazard=" << hazard_order;
    EXPECT_EQ(predicted.cycles, measured.activity.cycles);
    EXPECT_EQ(predicted.first_iteration_cycles,
              measured.first_iteration_cycles);
  }
}

std::vector<StallCase> all_wimax_cases() {
  std::vector<StallCase> cases;
  for (WimaxRate rate : all_wimax_rates())
    for (int p : {96, 48, 24}) cases.push_back(StallCase{rate, p});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllRatesAndParallelisms, WimaxStallExactness,
    ::testing::ValuesIn(all_wimax_cases()),
    [](const ::testing::TestParamInfo<StallCase>& info) {
      std::string name = wimax_rate_name(info.param.rate) + "_p" +
                         std::to_string(info.param.parallelism);
      for (char& c : name)
        if (c == '-' || c == '/') c = '_';
      return name;
    });

TEST(PipelineModel, MatchesGoldenCaseStudyNumbers) {
  // The checked-in golden values of tests/golden_test.cpp, reproduced
  // statically: 10 iterations of the (2304, 1/2) code at 400 MHz, P = 96.
  const auto code = make_wimax_2304_half_rate();
  const auto serial =
      predict(code, ArchKind::kTwoLayerPipelined, 96, false, 10);
  EXPECT_EQ(serial.core1_stall_cycles, 576);
  EXPECT_EQ(serial.cycles, 1345);
  const auto hazard = predict(code, ArchKind::kTwoLayerPipelined, 96, true, 10);
  EXPECT_EQ(hazard.core1_stall_cycles, 247);
  EXPECT_EQ(hazard.cycles, 1016);
}

TEST(PipelineModel, PerLayerArchHasNoStallsAndExactCycles) {
  const auto code = make_wimax_2304_half_rate();
  const auto measured = measure(code, ArchKind::kPerLayer, 96, false, 10);
  const auto predicted = predict(code, ArchKind::kPerLayer, 96, false, 10);
  EXPECT_EQ(predicted.core1_stall_cycles, 0);
  EXPECT_EQ(measured.activity.core1_stall_cycles, 0);
  EXPECT_EQ(predicted.cycles, measured.activity.cycles);
  EXPECT_EQ(predicted.first_iteration_cycles, measured.first_iteration_cycles);
}

TEST(PipelineModel, WifiCodesMatchToo) {
  for (QCLdpcCode (*build)() : {&make_wifi_648_half_rate, &make_wifi_1944_half_rate}) {
    const auto code = build();
    const int z = code.z();
    for (int p : {z, z / 3}) {
      const auto measured =
          measure(code, ArchKind::kTwoLayerPipelined, p, false, 4);
      const auto predicted =
          predict(code, ArchKind::kTwoLayerPipelined, p, false, 4);
      EXPECT_EQ(predicted.core1_stall_cycles,
                measured.activity.core1_stall_cycles)
          << "z=" << z << " P=" << p;
      EXPECT_EQ(predicted.cycles, measured.activity.cycles);
    }
  }
}

TEST(PipelineModel, EarlyTerminationDecodeMatchesPredictionAtExitIteration) {
  // The recurrence is data independent, so a decode that exits early after k
  // iterations (free on-the-fly syndrome check) measures predict(k) exactly.
  const auto code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  const auto est = pico.compile(code, ArchKind::kTwoLayerPipelined,
                                HardwareTarget{kClockMhz, 96});
  DecoderOptions opt;
  opt.max_iterations = 10;
  opt.early_termination = true;
  ArchSimDecoder sim(code, est, opt, fmt);
  const auto run = sim.decode_quantized(bench::quantized_frame(code, fmt, 2.0F, 42));
  ASSERT_TRUE(run.decode.converged);
  ASSERT_LT(run.decode.iterations, 10u);

  const auto predicted =
      predict(code, ArchKind::kTwoLayerPipelined, 96, false,
              run.decode.iterations);
  EXPECT_EQ(predicted.core1_stall_cycles, run.activity.core1_stall_cycles);
  EXPECT_EQ(predicted.cycles, run.activity.cycles);
}

TEST(PipelineModel, EtCheckCyclesShiftsScheduleExactly) {
  const auto code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  const auto est = pico.compile(code, ArchKind::kTwoLayerPipelined,
                                HardwareTarget{kClockMhz, 96});
  DecoderOptions opt;
  opt.max_iterations = 4;
  opt.early_termination = true;
  ArchSimConfig cfg;
  cfg.et_check_cycles = 12;  // a dedicated L-layer check pass
  ArchSimDecoder sim(code, est, opt, fmt, cfg);
  // A heavily corrupted frame at very low SNR cannot converge in 4
  // iterations, so all 4 run and every inter-iteration check is paid.
  const auto run =
      sim.decode_quantized(bench::quantized_frame(code, fmt, -3.0F, 7));
  ASSERT_EQ(run.decode.iterations, 4u);
  ASSERT_FALSE(run.decode.converged);

  const auto model = make_pipeline_model(code, est,
                                         ColumnOrderPolicy::kBlockSerial);
  const auto predicted = predict_timing(model, 4, cfg.et_check_cycles);
  EXPECT_EQ(predicted.core1_stall_cycles, run.activity.core1_stall_cycles);
  EXPECT_EQ(predicted.cycles, run.activity.cycles);
}

// ------------------------------------------------- wraparound attribution ----

TEST(PipelineModel, WraparoundStallsAttributedToFirstLayer) {
  // Hand-built code whose only consecutive-layer overlap is the cyclic wrap
  // (layer 2 -> layer 0 share column 0): iteration 1 must be stall free and
  // every scoreboard stall must land on layer 0 of iterations >= 2.
  const BaseMatrix base(3, 6,
                        {
                            0, 1, -1, -1, 2, -1,   // layer 0: cols 0,1,4
                            -1, -1, 3, 1, -1, 0,   // layer 1: cols 2,3,5
                            5, -1, -1, -1, -1, 2,  // layer 2: cols 0,5
                        },
                        8, "wrap-test");
  // Layer pairs: (0,1) disjoint, (1,2) share col 5, (2,0) share col 0 — so
  // stalls can come from layer 2 (within an iteration) and layer 0 (wrap).
  const QCLdpcCode code(base);
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  const auto est = pico.compile(code, ArchKind::kTwoLayerPipelined,
                                HardwareTarget{kClockMhz, 8});

  const auto model =
      make_pipeline_model(code, est, ColumnOrderPolicy::kBlockSerial);
  const auto one = predict_timing(model, 1);
  const auto four = predict_timing(model, 4);
  ASSERT_GT(four.core1_stall_cycles, one.core1_stall_cycles);
  for (const StallEvent& ev : four.events) {
    if (ev.layer == 0) {
      EXPECT_GE(ev.iteration, 2u);  // wrap hazards need a previous iteration
      if (!ev.fifo) {
        EXPECT_EQ(ev.block_col, 0u);
      }
    }
  }

  // And the wraparound prediction is still cycle-exact in the simulator.
  DecoderOptions opt;
  opt.max_iterations = 4;
  opt.early_termination = false;
  ArchSimDecoder sim(code, est, opt, fmt);
  std::vector<std::int32_t> llr(code.n(), 9);
  const auto run = sim.decode_quantized(llr);
  EXPECT_EQ(four.core1_stall_cycles, run.activity.core1_stall_cycles);
  EXPECT_EQ(four.cycles, run.activity.cycles);
}

// ------------------------------------------------------------ lint passes ----

TEST(OpGraphLint, BundledGraphsAreCleanAt400MHz) {
  const PicoCompiler pico;
  for (const OpGraph& g :
       {pico.build_core1_graph(), pico.build_core2_graph(),
        pico.build_bp_core1_graph(), pico.build_bp_core2_graph(),
        pico.build_shifter_graph(96)}) {
    const auto findings = lint_opgraph(g, 2.5);
    EXPECT_FALSE(lint_has_errors(findings)) << format_findings(findings);
    const auto sched = lint_schedule(g.nodes(), schedule_detail(g, 2.5), 2.5);
    EXPECT_FALSE(lint_has_errors(sched)) << format_findings(sched);
  }
}

TEST(OpGraphLint, DetectsCombinationalCycle) {
  std::vector<OpNode> nodes;
  nodes.push_back(OpNode{OpKind::kAdd, 8, {2}, "a"});
  nodes.push_back(OpNode{OpKind::kAdd, 8, {0}, "b"});
  nodes.push_back(OpNode{OpKind::kAdd, 8, {1}, "c"});
  const auto findings = lint_opgraph(nodes, 2.5);
  ASSERT_TRUE(lint_has_errors(findings));
  bool named = false;
  for (const auto& f : findings)
    if (f.pass == "combinational-cycle" &&
        f.message.find("op") != std::string::npos)
      named = true;
  EXPECT_TRUE(named) << format_findings(findings);
}

TEST(OpGraphLint, DetectsDanglingEdgeAndNamesIt) {
  std::vector<OpNode> nodes;
  nodes.push_back(OpNode{OpKind::kAdd, 8, {}, "a"});
  nodes.push_back(OpNode{OpKind::kMux, 8, {0, 7}, "b"});
  const auto findings = lint_opgraph(nodes, 2.5);
  ASSERT_TRUE(lint_has_errors(findings));
  EXPECT_NE(format_findings(findings).find("op7"), std::string::npos);
  EXPECT_NE(format_findings(findings).find("dangling-edge"), std::string::npos);
}

TEST(OpGraphLint, DetectsBudgetInfeasibleOperator) {
  std::vector<OpNode> nodes;
  nodes.push_back(OpNode{OpKind::kSramRead, 8, {}, "P_read"});
  const auto findings = lint_opgraph(nodes, 1.5);  // budget 1.15 < 1.4 ns
  ASSERT_TRUE(lint_has_errors(findings));
  EXPECT_EQ(findings[0].pass, "unschedulable-op");
  EXPECT_NE(findings[0].message.find("P_read"), std::string::npos);
}

TEST(OpGraphLint, DetectsDeadOpAsWarningOnly) {
  std::vector<OpNode> nodes;
  nodes.push_back(OpNode{OpKind::kAdd, 8, {}, "used"});
  nodes.push_back(OpNode{OpKind::kAbs, 8, {}, "dead"});
  nodes.push_back(OpNode{OpKind::kAdd, 8, {0}, "out"});
  const auto findings = lint_opgraph(nodes, 2.5);
  EXPECT_FALSE(lint_has_errors(findings));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].pass, "dead-op");
  EXPECT_EQ(findings[0].severity, LintSeverity::kWarning);
}

TEST(ScheduleLint, DetectsStageBudgetOverflow) {
  std::vector<OpNode> nodes;
  nodes.push_back(OpNode{OpKind::kSramRead, 8, {}, "P_read"});
  nodes.push_back(OpNode{OpKind::kAdd, 8, {0}, "sum"});
  const std::vector<ScheduledOp> bad{ScheduledOp{0, 0, 0.0, 1.4},
                                     ScheduledOp{1, 0, 1.4, 3.0}};
  const auto findings = lint_schedule(nodes, bad, 2.5);
  ASSERT_TRUE(lint_has_errors(findings));
  EXPECT_NE(format_findings(findings).find("stage-budget-overflow"),
            std::string::npos);
}

TEST(ScheduleLint, DetectsDependencyOrderViolation) {
  std::vector<OpNode> nodes;
  nodes.push_back(OpNode{OpKind::kAdd, 8, {}, "a"});
  nodes.push_back(OpNode{OpKind::kAdd, 8, {0}, "b"});
  const std::vector<ScheduledOp> bad{ScheduledOp{0, 1, 0.0, 0.55},
                                     ScheduledOp{1, 0, 0.0, 0.55}};
  const auto findings = lint_schedule(nodes, bad, 2.5);
  ASSERT_TRUE(lint_has_errors(findings));
  EXPECT_NE(format_findings(findings).find("schedule-dependency-order"),
            std::string::npos);
}

TEST(RegisterPressure, TotalMatchesSchedulerRegisterBits) {
  const PicoCompiler pico;
  for (const OpGraph& g : {pico.build_core1_graph(), pico.build_core2_graph(),
                           pico.build_bp_core1_graph()}) {
    for (double period : {2.0, 2.5, 5.0}) {
      const auto result = schedule(g, period);
      const auto pressure =
          register_pressure(g.nodes(), schedule_detail(g, period));
      EXPECT_EQ(pressure.total_register_bits, result.register_bits);
      EXPECT_LE(pressure.peak_bits, pressure.total_register_bits);
      EXPECT_EQ(pressure.live_bits.size(),
                static_cast<std::size_t>(result.latency_cycles - 1));
    }
  }
}

TEST(HazardLint, BundledCodesAreClean) {
  for (WimaxRate rate : all_wimax_rates()) {
    const auto findings = lint_layer_hazards(make_wimax_code(rate, 96));
    EXPECT_FALSE(lint_has_errors(findings))
        << wimax_rate_name(rate) << ":\n" << format_findings(findings);
  }
  EXPECT_FALSE(lint_has_errors(lint_layer_hazards(make_wifi_648_half_rate())));
  EXPECT_FALSE(lint_has_errors(lint_layer_hazards(make_wifi_1944_half_rate())));
}

TEST(HazardLint, DegenerateLayerPairIsNamed) {
  const auto findings =
      lint_layer_hazards(LayerSupports{{0, 1, 3}, {0, 1, 3}}, 4);
  ASSERT_TRUE(lint_has_errors(findings));
  const auto text = format_findings(findings);
  EXPECT_NE(text.find("degenerate-layer-pair"), std::string::npos);
  EXPECT_NE(text.find("layer 1"), std::string::npos);
}

TEST(HazardLint, DuplicateColumnAndRangeErrors) {
  const auto dup = lint_layer_hazards(LayerSupports{{0, 1, 1}, {2, 3}}, 4);
  ASSERT_TRUE(lint_has_errors(dup));
  EXPECT_NE(format_findings(dup).find("duplicate-column"), std::string::npos);

  const auto range = lint_layer_hazards(LayerSupports{{0, 9}}, 4);
  ASSERT_TRUE(lint_has_errors(range));
  EXPECT_NE(format_findings(range).find("column-out-of-range"),
            std::string::npos);
}

// ------------------------------------------------------- layer reordering ----

TEST(LayerReorder, ReducesPredictedAndMeasuredCycles) {
  const auto code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  const auto est = pico.compile(code, ArchKind::kTwoLayerPipelined,
                                HardwareTarget{kClockMhz, 96});
  const auto opt = optimize_layer_order(code, est,
                                        ColumnOrderPolicy::kBlockSerial, 10);
  ASSERT_EQ(opt.permutation.size(), code.num_layers());
  EXPECT_LE(opt.best_stalls, opt.natural_stalls);
  EXPECT_LE(opt.best_cycles, opt.natural_cycles);
  // The case-study code has substantial consecutive-layer overlap; the
  // search must find real headroom, not just tie the natural order.
  EXPECT_LT(opt.best_stalls, opt.natural_stalls);

  // Feed the winning permutation back into the cycle-accurate simulator:
  // the measured cycle count must match the prediction exactly and beat the
  // natural order (the acceptance criterion recorded in EXPERIMENTS.md).
  const QCLdpcCode reordered(code.base().permuted_rows(opt.permutation));
  const auto measured_reordered =
      measure(reordered, ArchKind::kTwoLayerPipelined, 96, false, 10);
  const auto measured_natural =
      measure(code, ArchKind::kTwoLayerPipelined, 96, false, 10);
  EXPECT_EQ(measured_reordered.activity.core1_stall_cycles, opt.best_stalls);
  EXPECT_EQ(measured_reordered.activity.cycles, opt.best_cycles);
  EXPECT_LE(measured_reordered.activity.cycles,
            measured_natural.activity.cycles);
  EXPECT_LT(measured_reordered.activity.cycles,
            measured_natural.activity.cycles);
}

TEST(LayerReorder, PermutedRowsPreserveTheCode) {
  // Row permutation changes the layer schedule, not the codebook: any word
  // satisfying the natural H satisfies the permuted H.
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  std::vector<std::size_t> perm(code.num_layers());
  std::iota(perm.begin(), perm.end(), 0);
  std::reverse(perm.begin(), perm.end());
  const QCLdpcCode permuted(code.base().permuted_rows(perm));

  const FixedFormat fmt{8, 2};
  BitVec word;
  bench::quantized_frame(code, fmt, 8.0F, 3, &word);  // noiseless-ish encode
  EXPECT_TRUE(code.parity_ok(word));
  EXPECT_TRUE(permuted.parity_ok(word));
  EXPECT_EQ(permuted.base().nonzero_blocks(), code.base().nonzero_blocks());
}

TEST(LayerReorder, RejectsMalformedPermutations) {
  const auto code = make_wimax_code(WimaxRate::kRate5_6, 24);
  EXPECT_THROW(code.base().permuted_rows({0, 1}), Error);        // wrong size
  EXPECT_THROW(code.base().permuted_rows({0, 0, 1, 2}), Error);  // repeated
  EXPECT_THROW(code.base().permuted_rows({0, 1, 2, 9}), Error);  // out of range
}

// ---------------------------------------------------------- column order ----

TEST(ColumnOrder, BlockSerialIsIdentity) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto order = make_column_order(code, ColumnOrderPolicy::kBlockSerial);
  ASSERT_EQ(order.size(), code.num_layers());
  for (std::size_t l = 0; l < order.size(); ++l)
    for (std::size_t j = 0; j < order[l].size(); ++j)
      EXPECT_EQ(order[l][j], j);
}

TEST(ColumnOrder, HazardAwarePutsFreeColumnsFirst) {
  const auto code = make_wimax_2304_half_rate();
  const auto supports = layer_supports(code);
  const auto order = make_column_order(code, ColumnOrderPolicy::kHazardAware);
  const std::size_t L = supports.size();
  for (std::size_t l = 0; l < L; ++l) {
    const auto& prev = supports[(l + L - 1) % L];
    bool seen_shared = false;
    for (std::size_t j : order[l]) {
      const bool shared =
          std::find(prev.begin(), prev.end(), supports[l][j]) != prev.end();
      if (shared) seen_shared = true;
      // Once a shared (hazardous) column appears, no hazard-free column may
      // follow it — free-first is the whole point of the policy.
      if (seen_shared) {
        EXPECT_TRUE(shared) << "layer " << l;
      }
    }
  }
}

TEST(ColumnOrder, SteadyStateStallsArePeriodic) {
  const auto code = make_wimax_2304_half_rate();
  const PicoCompiler pico(FixedFormat{8, 2});
  const auto est = pico.compile(code, ArchKind::kTwoLayerPipelined,
                                HardwareTarget{kClockMhz, 96});
  const auto model =
      make_pipeline_model(code, est, ColumnOrderPolicy::kBlockSerial);
  const long long steady = steady_state_stalls(model);
  const auto five = predict_timing(model, 5);
  const auto six = predict_timing(model, 6);
  EXPECT_EQ(six.core1_stall_cycles - five.core1_stall_cycles, steady);
}

}  // namespace
}  // namespace ldpc
