// Broad configuration sweeps: every 802.16e (rate family, z) combination
// through encoding, the algorithmic fixed decoder and the pipelined
// hardware model — the "fully supports IEEE 802.16e" claim exercised as a
// parameterized matrix rather than a handful of spot checks.
#include <gtest/gtest.h>

#include "arch/arch_sim.hpp"
#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "codes/wimax.hpp"
#include "util/rng.hpp"

namespace ldpc {
namespace {

struct SweepCase {
  WimaxRate rate;
  int z;
};

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (WimaxRate rate : all_wimax_rates())
    for (int z : {24, 40, 68, 96}) cases.push_back({rate, z});
  return cases;
}

class WimaxSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(WimaxSweepTest, FullChainOnPipelinedHardware) {
  const auto code = make_wimax_code(GetParam().rate, GetParam().z);
  const FixedFormat fmt{8, 2};

  // Encode.
  const RuEncoder enc(code);
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam().z) * 131 +
                 static_cast<std::uint64_t>(GetParam().rate));
  BitVec info(code.k());
  for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
  const BitVec word = enc.encode(info);
  ASSERT_TRUE(code.parity_ok(word));

  // Channel at a comfortably decodable SNR for the family.
  const float ebn0 = code.rate() > 0.7 ? 5.5F : 4.0F;
  const float variance = awgn_noise_variance(ebn0, code.rate());
  AwgnChannel ch(variance, 7000 + static_cast<std::uint64_t>(GetParam().z));
  const auto llr =
      BpskModem::demodulate(ch.transmit(BpskModem::modulate(word)), variance);
  std::vector<std::int32_t> codes(llr.size());
  for (std::size_t i = 0; i < llr.size(); ++i) codes[i] = fmt.quantize(llr[i]);

  // Algorithmic decode.
  DecoderOptions opt;
  opt.max_iterations = 10;
  LayeredMinSumFixedDecoder reference(code, opt, fmt);
  const auto want = reference.decode_quantized(codes);
  EXPECT_TRUE(want.hard_bits == word)
      << wimax_rate_name(GetParam().rate) << " z=" << GetParam().z;

  // Hardware decode: bit-exact, sane timing.
  const PicoCompiler pico(fmt);
  const auto est = pico.compile(code, ArchKind::kTwoLayerPipelined,
                                HardwareTarget{400.0, GetParam().z});
  ArchSimDecoder sim(code, est, opt, fmt, ArchSimConfig{true});
  const auto got = sim.decode_quantized(codes);
  EXPECT_TRUE(got.decode.hard_bits == want.hard_bits);
  EXPECT_EQ(got.decode.iterations, want.iterations);
  EXPECT_GT(got.activity.cycles, 0);
  // One column read/write per circulant per iteration, exactly.
  const long long per_iter =
      static_cast<long long>(code.base().nonzero_blocks());
  EXPECT_EQ(got.activity.p_reads,
            per_iter * static_cast<long long>(got.decode.iterations));
}

INSTANTIATE_TEST_SUITE_P(
    AllRatesAndSizes, WimaxSweepTest, ::testing::ValuesIn(sweep_cases()),
    [](const auto& info) {
      std::string n = wimax_rate_name(info.param.rate) + "_z" +
                      std::to_string(info.param.z);
      for (char& c : n)
        if (c == '-' || c == '/') c = '_';
      return n;
    });

}  // namespace
}  // namespace ldpc
