// HARQ link layer tests: rate matching, LLR combining, the supervisor's
// kRequestRedundancy escalation rung, and the closed-loop link runner
// (chase combining vs incremental redundancy vs plain retry).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <set>

#include "codes/wimax.hpp"
#include "core/decoder_factory.hpp"
#include "fault/fault_injector.hpp"
#include "harq/harq_link.hpp"
#include "harq/llr_buffer.hpp"
#include "harq/rate_matching.hpp"
#include "runtime/supervisor.hpp"

namespace ldpc {
namespace {

// ----------------------------------------------------------- RateMatcher ----

TEST(RateMatcher, MotherRatePassthrough) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const RateMatcher rm(code);
  EXPECT_EQ(rm.num_punctured(), 0u);
  EXPECT_EQ(rm.num_shortened(), 0u);
  EXPECT_EQ(rm.transmitted_bits(), code.n());
  EXPECT_EQ(rm.info_bits(), code.k());
  EXPECT_DOUBLE_EQ(rm.effective_rate(), code.rate());
  // Initial positions are exactly [0, n).
  for (std::size_t i = 0; i < code.n(); ++i)
    EXPECT_EQ(rm.initial_positions()[i], i);
}

TEST(RateMatcher, PuncturesParityToTargetRate) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const RateMatcher rm(code, 2.0 / 3.0);
  EXPECT_NEAR(rm.effective_rate(), 2.0 / 3.0, 0.01);
  EXPECT_EQ(rm.info_bits(), code.k());  // puncturing never touches info
  EXPECT_EQ(rm.num_shortened(), 0u);
  EXPECT_EQ(rm.transmitted_bits() + rm.num_punctured(), code.n());
  // Punctured positions are parity only, distinct, and disjoint from the
  // initial transmission.
  std::set<std::size_t> punctured(rm.punctured_positions().begin(),
                                  rm.punctured_positions().end());
  EXPECT_EQ(punctured.size(), rm.num_punctured());
  for (const std::size_t p : punctured) {
    EXPECT_GE(p, code.k());
    EXPECT_LT(p, code.n());
  }
  for (const std::size_t i : rm.initial_positions())
    EXPECT_EQ(punctured.count(i), 0u);
}

TEST(RateMatcher, PunctureSpreadCoversParityBlocksEvenly) {
  // The golden-stride permutation prefix must not concentrate punctures in
  // a few circulant blocks (that would erase whole layers).
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 96);
  const RateMatcher rm(code, 0.75);
  const auto z = static_cast<std::size_t>(code.z());
  const std::size_t blocks = (code.n() - code.k()) / z;
  std::vector<std::size_t> per_block(blocks, 0);
  for (const std::size_t p : rm.punctured_positions())
    ++per_block[(p - code.k()) / z];
  const double avg =
      static_cast<double>(rm.num_punctured()) / static_cast<double>(blocks);
  for (std::size_t b = 0; b < blocks; ++b)
    EXPECT_LT(static_cast<double>(per_block[b]), 2.0 * avg + 1.0) << b;
}

TEST(RateMatcher, ShortensInfoBelowMotherRate) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const RateMatcher rm(code, 1.0 / 3.0);
  EXPECT_NEAR(rm.effective_rate(), 1.0 / 3.0, 0.01);
  EXPECT_EQ(rm.num_punctured(), 0u);
  EXPECT_GT(rm.num_shortened(), 0u);
  EXPECT_EQ(rm.info_bits() + rm.num_shortened(), code.k());
  // Shortened = the LAST s info positions, ascending.
  const auto& sh = rm.shortened_positions();
  for (std::size_t i = 0; i < sh.size(); ++i)
    EXPECT_EQ(sh[i], code.k() - sh.size() + i);
}

TEST(RateMatcher, IrScheduleRevealsPuncturedThenCycles) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const RateMatcher rm(code, 2.0 / 3.0);
  const auto z = static_cast<std::size_t>(code.z());
  EXPECT_EQ(rm.ir_positions(1), rm.initial_positions());
  // Chunks of z bits walk the punctured list exactly, in reveal order.
  std::vector<std::size_t> revealed;
  std::size_t tx = 2;
  while (revealed.size() < rm.num_punctured()) {
    const auto chunk = rm.ir_positions(tx++);
    ASSERT_LE(chunk.size(), z);
    revealed.insert(revealed.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(revealed, rm.punctured_positions());
  // Exhausted: the schedule degenerates to chase on the initial set.
  EXPECT_EQ(rm.ir_positions(tx), rm.initial_positions());
}

TEST(RateMatcher, RejectsDegenerateTargets) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  EXPECT_THROW(RateMatcher(code, 1.0), Error);
  EXPECT_THROW(RateMatcher(code, -0.1), Error);
  // Rate so high it would puncture into the last z parity bits.
  EXPECT_THROW(RateMatcher(code, 0.99), Error);
}

// ------------------------------------------------------------- LlrBuffer ----

TEST(LlrBuffer, CombineAccumulatesReplaceOverwrites) {
  LlrBuffer buf(4, 8.0F);
  buf.combine({0, 2}, {1.5F, -2.0F});
  buf.combine({0, 3}, {1.0F, 4.0F});
  auto llr = buf.emit();
  EXPECT_FLOAT_EQ(llr[0], 2.5F);
  EXPECT_FLOAT_EQ(llr[1], 0.0F);  // untouched = erasure
  EXPECT_FLOAT_EQ(llr[2], -2.0F);
  EXPECT_FLOAT_EQ(llr[3], 4.0F);
  EXPECT_EQ(buf.transmissions(), 2u);
  buf.replace({0, 1, 2, 3}, {-1.0F, -1.0F, -1.0F, -1.0F});
  llr = buf.emit();
  for (float v : llr) EXPECT_FLOAT_EQ(v, -1.0F);
  EXPECT_EQ(buf.transmissions(), 3u);
}

TEST(LlrBuffer, EmitSaturatesAtRailAndCountsClips) {
  LlrBuffer buf(3, 4.0F);
  buf.combine({0, 1, 2}, {3.0F, 3.0F, -3.0F});
  buf.combine({0, 1, 2}, {3.0F, 0.5F, -3.0F});
  const auto llr = buf.emit();
  EXPECT_FLOAT_EQ(llr[0], 4.0F);   // 6 clipped to +rail
  EXPECT_FLOAT_EQ(llr[1], 3.5F);   // inside the rail
  EXPECT_FLOAT_EQ(llr[2], -4.0F);  // -6 clipped to -rail
  EXPECT_EQ(buf.saturation().quantizer_clips, 2);
  // The accumulator itself is NOT saturated: evidence keeps adding up.
  buf.combine({0}, {-5.0F});
  EXPECT_FLOAT_EQ(buf.emit()[0], 1.0F);
}

TEST(LlrBuffer, PinnedPositionsIgnoreChannelObservations) {
  LlrBuffer buf(3, 8.0F);
  buf.pin({1}, 8.0F);
  buf.combine({0, 1}, {1.0F, -6.0F});
  buf.replace({1, 2}, {-2.0F, 2.0F});
  const auto llr = buf.emit();
  EXPECT_FLOAT_EQ(llr[0], 1.0F);
  EXPECT_FLOAT_EQ(llr[1], 8.0F);  // a priori knowledge survives
  EXPECT_FLOAT_EQ(llr[2], 2.0F);
}

TEST(LlrBuffer, ResetClearsEverything) {
  LlrBuffer buf(2, 1.0F);
  buf.pin({0}, 1.0F);
  buf.combine({1}, {5.0F});
  buf.emit();  // records one clip
  buf.reset();
  EXPECT_EQ(buf.transmissions(), 0u);
  EXPECT_EQ(buf.saturation().quantizer_clips, 0);
  buf.combine({0}, {-0.5F});  // pin must be gone
  EXPECT_FLOAT_EQ(buf.emit()[0], -0.5F);
}

TEST(LlrBuffer, InvalidUseRejected) {
  EXPECT_THROW(LlrBuffer(0, 1.0F), Error);
  EXPECT_THROW(LlrBuffer(4, 0.0F), Error);
  LlrBuffer buf(4, 1.0F);
  EXPECT_THROW(buf.combine({0}, {1.0F, 2.0F}), Error);  // length mismatch
  EXPECT_THROW(buf.combine({4}, {1.0F}), Error);        // out of range
}

// ------------------------------------- supervisor kRequestRedundancy rung ----

/// LLRs that reliably fail to decode: weak random noise around zero votes
/// for no codeword in particular, and two min-sum iterations cannot find
/// one.
std::vector<float> undecodable_llrs(const QCLdpcCode& code,
                                    std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<float> llr(code.n());
  for (auto& v : llr)
    v = 0.25F * static_cast<float>(rng.gaussian());
  return llr;
}

SupervisorConfig harq_supervisor_config(const QCLdpcCode& code,
                                        std::size_t max_attempts,
                                        RedundancyHook hook) {
  DecoderOptions base;
  base.max_iterations = 2;
  const auto ladder = harq_escalation_ladder(2, FixedFormat{});
  SupervisorConfig config;
  config.engine.num_workers = 2;
  config.engine.escalation_factories =
      make_escalation_factories(code, base, ladder);
  config.retry = RetryPolicy::none();
  config.retry.max_attempts = max_attempts;
  config.rung_kinds = rung_kinds_of(ladder);
  config.on_redundancy_request = std::move(hook);
  return config;
}

DecoderFactory base_factory(const QCLdpcCode& code) {
  return [&code] {
    DecoderOptions options;
    options.max_iterations = 2;
    return make_decoder("layered-minsum-fixed", code, options);
  };
}

TEST(RedundancyRung, HookRefusalYieldsTypedExhaustion) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  std::atomic<int> calls{0};
  auto config = harq_supervisor_config(
      code, 3, [&](std::size_t, std::size_t) {
        ++calls;
        return false;  // link out of redundancy immediately
      });
  DecodeSupervisor supervisor(base_factory(code), config);
  DecodeResult slot;
  ASSERT_TRUE(submit_accepted(
      supervisor.submit(0, undecodable_llrs(code, 5), &slot)));
  supervisor.drain();
  EXPECT_EQ(slot.status, DecodeStatus::kHarqExhausted);
  EXPECT_EQ(calls.load(), 1);  // exactly one request, refused once
  const RetryStats stats = supervisor.metrics().retry;
  EXPECT_EQ(stats.harq_exhausted_frames, 1u);
  EXPECT_EQ(stats.exhausted_frames, 0u);  // disjoint accounting
  EXPECT_EQ(stats.redundancy_requests, 0u);
  EXPECT_EQ(stats.retries_submitted, 0u);
}

TEST(RedundancyRung, GrantedRequestsFeedRetries) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  std::atomic<int> calls{0};
  auto config = harq_supervisor_config(
      code, 3, [&](std::size_t frame, std::size_t next_attempt) {
        ++calls;
        EXPECT_EQ(frame, 7u);
        EXPECT_GE(next_attempt, 2u);
        return true;  // always have redundancy; attempts cap the loop
      });
  DecodeSupervisor supervisor(base_factory(code), config);
  DecodeResult slot;
  ASSERT_TRUE(submit_accepted(
      supervisor.submit(7, undecodable_llrs(code, 6), &slot)));
  supervisor.drain();
  // Same LLRs each time, so the frame burns all 3 attempts and exhausts
  // the generic way (the hook granted every request).
  EXPECT_NE(slot.status, DecodeStatus::kConverged);
  EXPECT_NE(slot.status, DecodeStatus::kHarqExhausted);
  EXPECT_EQ(calls.load(), 2);  // attempts 2 and 3 each requested one tx
  const RetryStats stats = supervisor.metrics().retry;
  EXPECT_EQ(stats.redundancy_requests, 2u);
  EXPECT_EQ(stats.retries_submitted, 2u);
  EXPECT_EQ(stats.harq_exhausted_frames, 0u);
  EXPECT_EQ(stats.exhausted_frames, 1u);
}

TEST(RedundancyRung, HookRequiredWhenRungDeclared) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  auto config = harq_supervisor_config(code, 2, nullptr);
  config.on_redundancy_request = nullptr;
  EXPECT_THROW(DecodeSupervisor(base_factory(code), config), Error);
}

TEST(RedundancyRung, ExhaustedStatusNotRetryable) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.retry_statuses |= retry_status_bit(DecodeStatus::kHarqExhausted);
  EXPECT_THROW(validate(policy), Error);
}

TEST(RedundancyRung, ConvergedFrameNeverRequestsRedundancy) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  std::atomic<int> calls{0};
  auto config = harq_supervisor_config(code, 3, [&](std::size_t, std::size_t) {
    ++calls;
    return true;
  });
  DecodeSupervisor supervisor(base_factory(code), config);
  // A noiseless all-zero codeword decodes on attempt 1.
  DecodeResult slot;
  ASSERT_TRUE(submit_accepted(
      supervisor.submit(0, std::vector<float>(code.n(), 4.0F), &slot)));
  supervisor.drain();
  EXPECT_EQ(slot.status, DecodeStatus::kConverged);
  EXPECT_EQ(calls.load(), 0);
}

// --------------------------------------------------------- HarqLinkRunner ----

HarqLinkConfig link_config(HarqMode mode, float ebn0, std::size_t frames,
                           unsigned workers = 2) {
  HarqLinkConfig config;
  config.ebn0_db = {ebn0};
  config.frames_per_point = frames;
  config.max_transmissions = 4;
  config.mode = mode;
  config.num_workers = workers;
  config.seed = 2009;
  return config;
}

TEST(HarqLink, HighSnrDeliversEverythingFirstTry) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  HarqLinkRunner runner(code, base_factory(code),
                        link_config(HarqMode::kChase, 8.0F, 40));
  const auto points = runner.run();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].frames, 40u);
  EXPECT_EQ(points[0].delivered_correct, 40u);
  EXPECT_EQ(points[0].harq_exhausted, 0u);
  EXPECT_EQ(points[0].frame_errors, 0u);
  EXPECT_DOUBLE_EQ(points[0].mean_transmissions(), 1.0);
  EXPECT_EQ(points[0].redundancy_requests, 0u);
}

TEST(HarqLink, LowSnrExhaustsTypedAndExactlyOnce) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  auto config = link_config(HarqMode::kChase, -6.0F, 48);
  config.max_transmissions = 2;
  HarqLinkRunner runner(code, base_factory(code), config);
  const auto p = runner.run()[0];
  EXPECT_EQ(p.frames, 48u);
  EXPECT_GT(p.harq_exhausted, 0u);  // the typed terminal outcome shows up
  // Exactly-once resolution: every frame is either delivered or a frame
  // error, and exhausted frames are a subset of the errors.
  EXPECT_EQ(p.delivered + p.frame_errors,
            p.frames + (p.delivered - p.delivered_correct));
  EXPECT_LE(p.harq_exhausted, p.frame_errors);
  // Budget respected: never more than max_transmissions per frame.
  EXPECT_LE(p.total_transmissions, p.frames * config.max_transmissions);
  EXPECT_GE(p.total_transmissions, p.frames);
}

TEST(HarqLink, ChaseCombiningBeatsPlainRetry) {
  // At a mid-waterfall point, adding retransmitted LLRs must deliver more
  // frames in fewer transmissions than discarding the old observation.
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  HarqLinkRunner chase(code, base_factory(code),
                       link_config(HarqMode::kChase, 0.0F, 96));
  HarqLinkRunner plain(code, base_factory(code),
                       link_config(HarqMode::kPlainRetry, 0.0F, 96));
  const auto pc = chase.run()[0];
  const auto pp = plain.run()[0];
  EXPECT_GT(pc.delivered_correct, pp.delivered_correct);
  EXPECT_LT(pc.residual_bler(), pp.residual_bler());
}

TEST(HarqLink, IncrementalRedundancySendsFewerSymbols) {
  // IR reveals one circulant of punctured parity per NACK instead of
  // re-sending the whole frame: at equal delivery its symbol bill is lower.
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 96);
  auto chase_cfg = link_config(HarqMode::kChase, 2.0F, 64);
  chase_cfg.target_rate = 2.0 / 3.0;
  auto ir_cfg = chase_cfg;
  ir_cfg.mode = HarqMode::kIncremental;
  HarqLinkRunner chase(code, base_factory(code), chase_cfg);
  HarqLinkRunner ir(code, base_factory(code), ir_cfg);
  const auto pc = chase.run()[0];
  const auto pi = ir.run()[0];
  // Both retransmit at this SNR; IR must pay fewer symbols per frame.
  ASSERT_GT(pc.total_transmissions, pc.frames);
  ASSERT_GT(pi.total_transmissions, pi.frames);
  EXPECT_LT(pi.total_symbols, pc.total_symbols);
  EXPECT_GE(pi.throughput(ir.info_bits()), pc.throughput(chase.info_bits()));
}

TEST(HarqLink, BitIdenticalAcrossWorkerCounts) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  auto run_with = [&](unsigned workers) {
    auto config = link_config(HarqMode::kIncremental, 1.0F, 48, workers);
    config.target_rate = 2.0 / 3.0;
    config.ebn0_db = {1.0F, 3.0F};
    HarqLinkRunner runner(code, base_factory(code), config);
    return runner.run();
  };
  const auto base = run_with(1);
  for (unsigned workers : {2u, 8u}) {
    const auto points = run_with(workers);
    ASSERT_EQ(points.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(points[i].delivered, base[i].delivered) << workers;
      EXPECT_EQ(points[i].delivered_correct, base[i].delivered_correct);
      EXPECT_EQ(points[i].harq_exhausted, base[i].harq_exhausted);
      EXPECT_EQ(points[i].frame_errors, base[i].frame_errors) << workers;
      EXPECT_EQ(points[i].bit_errors, base[i].bit_errors) << workers;
      EXPECT_EQ(points[i].total_transmissions, base[i].total_transmissions);
      EXPECT_EQ(points[i].total_symbols, base[i].total_symbols) << workers;
      EXPECT_EQ(points[i].redundancy_requests, base[i].redundancy_requests);
      EXPECT_EQ(points[i].combiner_clips, base[i].combiner_clips) << workers;
    }
  }
}

TEST(HarqLink, ShortenedModeCarriesFewerInfoBits) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  auto config = link_config(HarqMode::kChase, 6.0F, 24);
  config.target_rate = 1.0 / 3.0;
  HarqLinkRunner runner(code, base_factory(code), config);
  EXPECT_LT(runner.info_bits(), code.k());
  const auto p = runner.run()[0];
  // Stronger effective code at equal Eb/N0: still delivers cleanly.
  EXPECT_EQ(p.delivered_correct, 24u);
  EXPECT_EQ(p.frame_errors, 0u);
}

TEST(HarqLink, ExhaustionUnderFaultInjectionStaysExactlyOnce) {
  // A decoder plagued by datapath upsets NACKs often; whatever the fault
  // stream does, every frame must resolve exactly once with a typed
  // status and the transmission budget must hold.
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  auto faulty_factory = [&code]() -> std::unique_ptr<Decoder> {
    thread_local FaultInjector injector{[] {
      FaultConfig config;
      config.rate = 0.002;
      config.sites = kSramFaultSites;
      return config;
    }()};
    DecoderOptions options;
    options.max_iterations = 2;
    options.fault_injector = &injector;
    return make_decoder("layered-minsum-fixed", code, options);
  };
  auto config = link_config(HarqMode::kChase, 2.0F, 64);
  config.max_transmissions = 3;
  HarqLinkRunner runner(code, faulty_factory, config);
  const auto p = runner.run()[0];
  EXPECT_EQ(p.frames, 64u);
  EXPECT_EQ(p.delivered + (p.frame_errors - (p.delivered - p.delivered_correct)),
            p.frames);
  EXPECT_LE(p.harq_exhausted, p.frames - p.delivered);
  EXPECT_LE(p.total_transmissions, p.frames * config.max_transmissions);
  EXPECT_GE(p.total_transmissions, p.frames);
}

TEST(HarqLink, InvalidConfigRejected) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  HarqLinkConfig config;  // empty sweep
  EXPECT_THROW(HarqLinkRunner(code, base_factory(code), config), Error);
  config.ebn0_db = {1.0F};
  config.max_transmissions = 0;
  EXPECT_THROW(HarqLinkRunner(code, base_factory(code), config), Error);
}

}  // namespace
}  // namespace ldpc
