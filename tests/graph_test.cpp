// Tanner-graph analysis and alist interchange tests. The 4-cycle counts on
// the standard tables double as a strong regression anchor: a single wrong
// shift coefficient in a table almost surely creates or removes short
// cycles.
#include <gtest/gtest.h>

#include <sstream>

#include "codes/alist.hpp"
#include "codes/encoder.hpp"
#include "codes/graph_analysis.hpp"
#include "codes/random_qc.hpp"
#include "codes/wifi.hpp"
#include "codes/wimax.hpp"

namespace ldpc {
namespace {

// ------------------------------------------------------------- 4-cycles ----

TEST(FourCycles, HandCraftedCycleDetected) {
  // Rows 0,1 and cols 0,1 with shifts satisfying p00 - p10 + p11 - p01 = 0.
  BaseMatrix with_cycle(2, 4,
                        {
                            1, 3, 0, -1,
                            2, 4, -1, 0,
                        },
                        8, "cycle");
  EXPECT_EQ(count_base_4cycles(with_cycle), 1u);

  BaseMatrix without(2, 4,
                     {
                         1, 3, 0, -1,
                         2, 5, -1, 0,
                     },
                     8, "no-cycle");
  EXPECT_EQ(count_base_4cycles(without), 0u);
}

TEST(FourCycles, ZeroBlocksNeverFormCycles) {
  BaseMatrix sparse(2, 3, {0, -1, 1, -1, 0, 2}, 4, "sparse");
  EXPECT_EQ(count_base_4cycles(sparse), 0u);
}

TEST(FourCycles, StandardTablesAreClean) {
  // Five of six 802.16e families and both 802.11n tables avoid base-level
  // 4-cycles entirely at the design z — a random 85-entry matrix would
  // show ~30. (Rate 3/4A carries 3; recorded below as a regression value.)
  for (WimaxRate rate :
       {WimaxRate::kRate1_2, WimaxRate::kRate2_3A, WimaxRate::kRate2_3B,
        WimaxRate::kRate3_4B, WimaxRate::kRate5_6}) {
    EXPECT_EQ(count_base_4cycles(wimax_base_matrix(rate)), 0u)
        << wimax_rate_name(rate);
  }
  EXPECT_EQ(count_base_4cycles(wimax_base_matrix(WimaxRate::kRate3_4A)), 3u);
  EXPECT_EQ(count_base_4cycles(make_wifi_648_half_rate().base()), 0u);
  EXPECT_EQ(count_base_4cycles(make_wifi_1944_half_rate().base()), 0u);
}

// ---------------------------------------------------------------- girth ----

TEST(Girth, CleanTablesHaveGirthAtLeastSix) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  EXPECT_GE(tanner_girth(code), 6u);
  const auto wifi = make_wifi_648_half_rate();
  EXPECT_GE(tanner_girth(wifi), 6u);
}

TEST(Girth, FourCycleTableHasGirthFour) {
  BaseMatrix with_cycle(3, 6,
                        {
                            1, 3, 0, 0, -1, -1,
                            2, 4, -1, -1, 0, -1,
                            0, 1, 2, -1, -1, 0,
                        },
                        8, "girth4");
  const QCLdpcCode code(with_cycle);
  EXPECT_EQ(tanner_girth(code), 4u);
}

TEST(Girth, CapReturnedWhenNoShortCycle) {
  // A tiny tree-like matrix (each column degree 1 has no cycles at all).
  BaseMatrix tree(3, 7,
                  {
                      5, -1, -1, 3, 0, -1, -1,
                      -1, 2, -1, -1, 0, 0, -1,
                      -1, -1, 1, -1, -1, 0, 0,
                  },
                  8, "treeish");
  const QCLdpcCode code(tree);
  const auto g = tanner_girth(code, 16);
  EXPECT_GE(g, 6u);  // certainly no 4-cycle
}

TEST(Girth, ConsistentWithBaseCycleCount) {
  // Any base-level 4-cycle forces expanded girth 4 and vice versa.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RandomQcConfig cfg;
    cfg.block_rows = 4;
    cfg.block_cols = 10;
    cfg.z = 6;
    cfg.info_row_degree = 4;
    cfg.seed = seed;
    const auto code = make_random_qc_code(cfg);
    const bool has_base_4 = count_base_4cycles(code.base()) > 0;
    EXPECT_EQ(tanner_girth(code) == 4u, has_base_4) << "seed " << seed;
  }
}

// ---------------------------------------------------- girth-6 constructor ----

class Girth6Test : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Girth6Test, ConstructionReachesGirthSix) {
  RandomQcConfig cfg;
  cfg.block_rows = 4;
  cfg.block_cols = 14;
  cfg.z = 16;
  cfg.info_row_degree = 5;
  cfg.seed = GetParam();
  const auto code = make_girth6_qc_code(cfg);
  EXPECT_EQ(count_base_4cycles(code.base()), 0u) << code.base().name();
  EXPECT_GE(tanner_girth(code), 6u);
  // Still encodable through the RU skeleton (weight-3 first parity column).
  EXPECT_EQ(code.base().col_degree(code.base().cols() - code.base().rows()), 3u);
  const RuEncoder enc(code);
  BitVec info(code.k());
  info.set(0, true);
  info.set(code.k() - 1, true);
  EXPECT_TRUE(code.parity_ok(enc.encode(info)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Girth6Test,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(Girth6, PreservesGeometryAndDegrees) {
  RandomQcConfig cfg;
  cfg.block_rows = 5;
  cfg.block_cols = 18;
  cfg.z = 32;
  cfg.info_row_degree = 6;
  cfg.seed = 3;
  const auto code = make_girth6_qc_code(cfg);
  EXPECT_EQ(code.num_layers(), 5u);
  EXPECT_EQ(code.n(), 18u * 32u);
  for (std::size_t r = 0; r < code.base().rows(); ++r)
    EXPECT_GE(code.base().row_degree(r), cfg.info_row_degree);
}

TEST(Girth6, ImpossibleDensityThrows) {
  // z = 2 cannot support a dense 4-row matrix without 4-cycles.
  RandomQcConfig cfg;
  cfg.block_rows = 4;
  cfg.block_cols = 12;
  cfg.z = 2;
  cfg.info_row_degree = 8;
  EXPECT_THROW(make_girth6_qc_code(cfg, 500), Error);
}

// ---------------------------------------------------------- distributions ----

TEST(Degrees, HistogramsMatchBaseMatrix) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto vh = variable_degree_histogram(code);
  const auto ch = check_degree_histogram(code);
  std::size_t vars = 0, checks = 0;
  for (const auto& [deg, cnt] : vh) vars += cnt;
  for (const auto& [deg, cnt] : ch) checks += cnt;
  EXPECT_EQ(vars, code.n());
  EXPECT_EQ(checks, code.m());
  // Rate-1/2 check degrees are 6 and 7 (the paper's Q FIFO depth is 7).
  EXPECT_EQ(ch.size(), 2u);
  EXPECT_TRUE(ch.count(6));
  EXPECT_TRUE(ch.count(7));
}

TEST(Degrees, EdgeCountConsistency) {
  const auto code = make_wimax_code(WimaxRate::kRate5_6, 24);
  std::size_t from_vars = 0;
  for (const auto& [deg, cnt] : variable_degree_histogram(code))
    from_vars += deg * cnt;
  EXPECT_EQ(from_vars, code.num_edges());
}

TEST(Density, LdpcCodesAreSparse) {
  const auto code = make_wimax_2304_half_rate();
  EXPECT_LT(density(code), 0.01);
  EXPECT_GT(density(code), 0.0);
  // Exactly edges / (n * m).
  EXPECT_DOUBLE_EQ(density(code),
                   static_cast<double>(code.num_edges()) / (2304.0 * 1152.0));
}

// ---------------------------------------------------------------- alist ----

TEST(Alist, RoundTripPreservesGraph) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto text = to_alist(code);
  const auto imported = alist_from_string(text);
  EXPECT_EQ(imported.n(), code.n());
  EXPECT_EQ(imported.m(), code.m());
  EXPECT_EQ(imported.num_edges(), code.num_edges());
  // Same connectivity: every check's variable set must match (order may
  // differ; the import sorts by column).
  for (std::size_t c = 0; c < code.m(); ++c) {
    auto a = code.check_adjacency()[c];
    auto b = imported.check_adjacency()[c];
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "check " << c;
  }
}

TEST(Alist, ImportedCodeDecodes) {
  // The imported z = 1 code runs through the dense encoder and a decoder.
  const auto original = make_wimax_code(WimaxRate::kRate1_2, 24);
  const auto imported = alist_from_string(to_alist(original));
  const DenseEncoder enc(imported);
  BitVec info(imported.k());
  info.set(1, true);
  info.set(100, true);
  const auto word = enc.encode(info);
  EXPECT_TRUE(imported.parity_ok(word));
}

TEST(Alist, HeadersAreCorrect) {
  const auto code = make_wimax_code(WimaxRate::kRate5_6, 24);
  std::istringstream is(to_alist(code));
  std::size_t n, m, max_col, max_row;
  is >> n >> m >> max_col >> max_row;
  EXPECT_EQ(n, code.n());
  EXPECT_EQ(m, code.m());
  EXPECT_EQ(max_row, code.base().max_row_degree());
}

TEST(Alist, RejectsMalformedInput) {
  EXPECT_THROW(alist_from_string(""), Error);
  EXPECT_THROW(alist_from_string("4 8\n2 2\n"), Error);  // M > N
  EXPECT_THROW(alist_from_string("8 4\n2 2\n1 1 1 1 1 1 1 1\n"), Error);
  // Out-of-range row index.
  EXPECT_THROW(
      alist_from_string("4 2\n1 2\n1 1 1 1\n2 2\n9\n1\n2\n2\n1 2\n3 4\n"),
      Error);
}

TEST(Alist, AcceptsZeroPaddedVariant) {
  // H = [1 1 0; 0 1 1] with degree-1 lists zero-padded to the max degree 2
  // (the "full" alist variant MacKay's site uses).
  const std::string padded =
      "3 2\n"
      "2 2\n"
      "1 2 1\n"
      "2 2\n"
      "1 0\n"    // col 0: row 1, padded
      "1 2\n"    // col 1: rows 1, 2
      "2 0\n"    // col 2: row 2, padded
      "1 2\n"    // row 0: cols 1, 2
      "2 3\n";   // row 1: cols 2, 3
  const auto code = alist_from_string(padded);
  EXPECT_EQ(code.n(), 3u);
  EXPECT_EQ(code.m(), 2u);
  EXPECT_EQ(code.num_edges(), 4u);
}

TEST(Alist, CrossValidationCatchesInconsistentLists) {
  // Column list says H(1,1) exists, row list disagrees.
  const std::string bad =
      "3 2\n"
      "1 2\n"
      "1 1 1\n"
      "2 2\n"
      "1\n2\n2\n"
      "1 2\n2 3\n";  // row lists do not contain col 1 in row 2? they do...
  // Make a genuinely inconsistent one: column 0 claims row 2.
  const std::string inconsistent =
      "3 2\n"
      "1 2\n"
      "1 1 1\n"
      "2 2\n"
      "2\n1\n2\n"
      "2 3\n2 3\n";
  EXPECT_THROW(alist_from_string(inconsistent), Error);
  (void)bad;
}

}  // namespace
}  // namespace ldpc
