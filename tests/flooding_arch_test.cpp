// Tests for the fixed-point flooding decoder and the traditional
// partial-parallel architecture model.
#include <gtest/gtest.h>

#include "arch/arch_sim.hpp"
#include "arch/flooding_arch.hpp"
#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "codes/wimax.hpp"
#include "core/flooding_minsum.hpp"
#include "util/rng.hpp"

namespace ldpc {
namespace {

std::vector<std::int32_t> quantized(const QCLdpcCode& code, FixedFormat fmt,
                                    float ebn0, std::uint64_t seed,
                                    BitVec* word_out = nullptr) {
  const RuEncoder enc(code);
  Xoshiro256 rng(seed);
  BitVec info(code.k());
  for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
  const BitVec word = enc.encode(info);
  if (word_out) *word_out = word;
  const float variance = awgn_noise_variance(ebn0, code.rate());
  AwgnChannel ch(variance, seed + 5);
  const auto llr =
      BpskModem::demodulate(ch.transmit(BpskModem::modulate(word)), variance);
  std::vector<std::int32_t> codes(llr.size());
  for (std::size_t i = 0; i < llr.size(); ++i) codes[i] = fmt.quantize(llr[i]);
  return codes;
}

// ---------------------------------------------- fixed flooding decoder ----

TEST(FloodingFixed, DecodesCleanAndNoisyFrames) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 48);
  DecoderOptions opt;
  opt.max_iterations = 20;
  FloodingMinSumFixedDecoder dec(code, opt, FixedFormat{8, 2});
  int good = 0;
  for (std::uint64_t s = 0; s < 10; ++s) {
    BitVec word;
    const auto frame = quantized(code, dec.format(), 2.6F, s, &word);
    good += (dec.decode_quantized(frame).hard_bits == word);
  }
  EXPECT_GE(good, 9);
}

TEST(FloodingFixed, TracksFloatFloodingAtHighSnr) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  opt.max_iterations = 15;
  FloodingMinSumFixedDecoder fixed(code, opt, FixedFormat{8, 2});
  FloodingMinSumDecoder flt(code, opt, MinSumVariant::kNormalized);
  const RuEncoder enc(code);
  Xoshiro256 rng(3);
  BitVec info(code.k());
  for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
  const BitVec word = enc.encode(info);
  const float variance = awgn_noise_variance(4.0F, code.rate());
  AwgnChannel ch(variance, 4);
  const auto llr =
      BpskModem::demodulate(ch.transmit(BpskModem::modulate(word)), variance);
  EXPECT_TRUE(fixed.decode(llr).hard_bits == flt.decode(llr).hard_bits);
}

TEST(FloodingFixed, NeedsMoreIterationsThanLayeredFixed) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 48);
  DecoderOptions opt;
  opt.max_iterations = 30;
  FloodingMinSumFixedDecoder flooding(code, opt);
  LayeredMinSumFixedDecoder layered(code, opt);
  double it_flood = 0, it_layer = 0;
  for (std::uint64_t s = 0; s < 12; ++s) {
    const auto frame = quantized(code, FixedFormat{8, 2}, 2.6F, 100 + s);
    it_flood += static_cast<double>(flooding.decode_quantized(frame).iterations);
    it_layer += static_cast<double>(layered.decode_quantized(frame).iterations);
  }
  EXPECT_LT(it_layer, it_flood * 0.8);
}

// -------------------------------------------------- architecture model ----

TEST(FloodingArch, FunctionalIdenticalToAlgorithm) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const FixedFormat fmt{8, 2};
  DecoderOptions opt;
  opt.max_iterations = 8;
  FloodingArchSim sim(code, opt, fmt);
  FloodingMinSumFixedDecoder reference(code, opt, fmt);
  for (std::uint64_t s = 0; s < 4; ++s) {
    const auto frame = quantized(code, fmt, 2.0F, s);
    const auto got = sim.decode_quantized(frame);
    const auto want = reference.decode_quantized(frame);
    EXPECT_TRUE(got.decode.hard_bits == want.hard_bits) << s;
    EXPECT_EQ(got.decode.iterations, want.iterations) << s;
  }
}

TEST(FloodingArch, CyclesMatchTwoPhaseFormula) {
  const auto code = make_wimax_2304_half_rate();
  DecoderOptions opt;
  opt.max_iterations = 5;
  opt.early_termination = false;
  FloodingArchSim sim(code, opt, FixedFormat{8, 2}, /*pipeline_overhead=*/0);
  const auto frame = quantized(code, FixedFormat{8, 2}, 2.0F, 1);
  const auto r = sim.decode_quantized(frame);
  // CNU: 2 * sum(dc) = 2 * 76; VNU: 2 * sum(dv) = 2 * 76 (each edge read
  // and written once per phase).
  EXPECT_EQ(r.cycles_per_iteration, 4 * 76);
  EXPECT_EQ(r.cycles, 5 * 4 * 76);
}

TEST(FloodingArch, PipelineOverheadAddsPerRowAndColumn) {
  const auto code = make_wimax_2304_half_rate();
  DecoderOptions opt;
  opt.early_termination = false;
  FloodingArchSim flat(code, opt, FixedFormat{8, 2}, 0);
  FloodingArchSim deep(code, opt, FixedFormat{8, 2}, 3);
  const auto frame = quantized(code, FixedFormat{8, 2}, 2.0F, 2);
  const auto a = flat.decode_quantized(frame);
  const auto b = deep.decode_quantized(frame);
  // 12 block rows + 24 block columns, 3 extra cycles each.
  EXPECT_EQ(b.cycles_per_iteration - a.cycles_per_iteration, 3 * (12 + 24));
}

TEST(FloodingArch, MemoryExceedsLayeredComplement) {
  const auto code = make_wimax_2304_half_rate();
  DecoderOptions opt;
  FloodingArchSim sim(code, opt, FixedFormat{8, 2});
  const auto frame = quantized(code, FixedFormat{8, 2}, 2.0F, 3);
  const auto r = sim.decode_quantized(frame);
  EXPECT_EQ(r.q_memory_bits, 76LL * 96 * 8);
  EXPECT_EQ(r.r_memory_bits, 76LL * 96 * 8);
  EXPECT_EQ(r.channel_memory_bits, 24LL * 96 * 8);
  // Layered stores P (24 words) + R (76 words): 100 words; flooding needs
  // 176 words for the same code.
  const long long layered = (24LL + 76) * 96 * 8;
  EXPECT_GT(r.total_memory_bits(), layered + 50000);
}

TEST(FloodingArch, SlowerThanLayeredAtEqualIterations) {
  const auto code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  DecoderOptions opt;
  opt.max_iterations = 10;
  opt.early_termination = false;
  FloodingArchSim flooding(code, opt, fmt, 3);
  const auto frame = quantized(code, fmt, 2.0F, 4);
  const auto fl = flooding.decode_quantized(frame);

  const PicoCompiler pico(fmt);
  const auto est =
      pico.compile(code, ArchKind::kPerLayer, HardwareTarget{400.0, 96});
  ArchSimDecoder layered(code, est, opt, fmt);
  const auto lay = layered.decode_quantized(frame);
  EXPECT_GT(fl.cycles, lay.activity.cycles);
}

}  // namespace
}  // namespace ldpc
