// Scalar finite-alphabet decoder family (fa2/fa3/fa4) and its offline MIM
// table builder: structural table invariants the int8 SIMD kernels are
// proven against (nondecreasing staircases, in-alphabet reconstructions,
// delta prefix sums under the rail), builder determinism, the channel
// quantizer's rail clamp, and decode behavior — convergence in the
// waterfall, graceful degradation at 2 bits, and the structurally-zero
// r_clips invariant.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "codes/wifi.hpp"
#include "codes/wimax.hpp"
#include "core/fa_tables.hpp"
#include "core/layered_minsum_fa.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ldpc {
namespace {

std::vector<float> noisy_llr(const QCLdpcCode& code, float ebn0_db,
                             std::uint64_t seed) {
  const RuEncoder enc(code);
  Xoshiro256 rng(seed);
  BitVec info(code.k());
  for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
  const float variance = awgn_noise_variance(ebn0_db, code.rate());
  AwgnChannel ch(variance, seed + 1);
  return BpskModem::demodulate(
      ch.transmit(BpskModem::modulate(enc.encode(info))), variance);
}

// --------------------------------------------------------------- tables ----

TEST(FaTables, StructuralInvariants) {
  const QCLdpcCode code = make_wimax_code(WimaxRate::kRate1_2, 24);
  for (const int bits : {2, 3, 4}) {
    const FaTableSet ts = build_fa_tables(code, bits, 2.0F);
    EXPECT_EQ(ts.msg_bits, bits);
    EXPECT_EQ(ts.levels, 1 << (bits - 1));
    EXPECT_FALSE(ts.tables.empty());
    for (const FaCnTable& t : ts.tables) {
      for (int k = 0; k + 1 < ts.levels - 1; ++k)
        EXPECT_LE(t.thr[k], t.thr[k + 1]) << "fa" << bits;
      // Reconstruction magnitudes: nondecreasing and on the +-127 rail,
      // so every staircase partial sum recon[0] + deltas stays <= 127 —
      // the precondition for the SIMD kernels' wrapping add8 staircase.
      for (int k = 0; k < ts.levels; ++k) {
        EXPECT_GE(t.recon[k], 0) << "fa" << bits;
        EXPECT_LE(t.recon[k], kFaRail) << "fa" << bits;
        if (k > 0) {
          EXPECT_GE(t.recon[k], t.recon[k - 1]) << "fa" << bits;
        }
      }
    }
  }
}

TEST(FaTables, BuilderIsDeterministic) {
  const QCLdpcCode code = make_wifi_648_half_rate();
  const FaTableSet a = build_fa_tables(code, 4, 2.0F);
  const FaTableSet b = build_fa_tables(code, 4, 2.0F);
  ASSERT_EQ(a.tables.size(), b.tables.size());
  for (std::size_t i = 0; i < a.tables.size(); ++i) {
    EXPECT_EQ(a.tables[i].thr, b.tables[i].thr);
    EXPECT_EQ(a.tables[i].recon, b.tables[i].recon);
  }
}

TEST(FaTables, RejectsUnsupportedResolutions) {
  const QCLdpcCode code = make_wimax_code(WimaxRate::kRate1_2, 24);
  EXPECT_THROW(build_fa_tables(code, 1, 2.0F), Error);
  EXPECT_THROW(build_fa_tables(code, 5, 2.0F), Error);
}

TEST(FaTables, StaircaseDeltaFormMatchesReconstruct) {
  // The SIMD kernels compute recon[0] + sum of masked deltas; over the
  // whole magnitude axis this must equal the table's region lookup.
  const QCLdpcCode code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const FaTableSet ts = build_fa_tables(code, 4, 2.0F);
  for (const FaCnTable& t : ts.tables) {
    for (std::int32_t mag = 0; mag <= kFaRail; ++mag) {
      std::int32_t s = t.recon[0];
      for (int k = 0; k < ts.levels - 1; ++k)
        if (mag > t.thr[k]) s += t.recon[k + 1] - t.recon[k];
      EXPECT_EQ(s, ts.reconstruct(t, mag)) << "mag=" << mag;
    }
  }
}

TEST(FaTables, IterationsBeyondTableCountReuseLastTable) {
  const QCLdpcCode code = make_wimax_code(WimaxRate::kRate1_2, 24);
  const FaTableSet ts = build_fa_tables(code, 4, 2.0F);
  const FaCnTable& last = ts.tables.back();
  const FaCnTable& beyond = ts.for_iteration(ts.tables.size() + 50);
  EXPECT_EQ(last.thr, beyond.thr);
  EXPECT_EQ(last.recon, beyond.recon);
}

TEST(FaTables, QuantizerClampsAtSymmetricRail) {
  const FixedFormat posterior{8, 2};
  EXPECT_EQ(fa_quantize(posterior, 1e9F), kFaRail);
  EXPECT_EQ(fa_quantize(posterior, -1e9F), -kFaRail);
  EXPECT_EQ(fa_quantize(posterior, 0.0F), 0);
  // q8.2 grid: 1.0 -> 4 codes; round-half-away at the midpoint.
  EXPECT_EQ(fa_quantize(posterior, 1.0F), 4);
  EXPECT_EQ(fa_quantize(posterior, 0.125F), 1);
  EXPECT_EQ(fa_quantize(posterior, -0.125F), -1);
  long long clips = 0;
  (void)fa_quantize(posterior, 1e9F, clips);
  (void)fa_quantize(posterior, 0.5F, clips);
  EXPECT_EQ(clips, 1);
}

// -------------------------------------------------------------- decoder ----

TEST(FaDecoder, ConvergesOnCleanChannel) {
  const QCLdpcCode code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  for (const int bits : {2, 3, 4}) {
    LayeredMinSumFaDecoder dec(code, opt, bits);
    std::vector<float> llr(code.n(), 8.0F);  // strong all-zeros evidence
    const DecodeResult res = dec.decode(llr);
    EXPECT_TRUE(res.converged) << "fa" << bits;
    EXPECT_LE(res.iterations, 2U) << "fa" << bits;
    for (std::size_t v = 0; v < code.n(); ++v)
      EXPECT_FALSE(res.hard_bits.get(v));
  }
}

TEST(FaDecoder, Fa4ConvergesInWaterfall) {
  const QCLdpcCode code = make_wimax_2304_half_rate();
  DecoderOptions opt;
  opt.count_saturation = true;
  LayeredMinSumFaDecoder dec(code, opt, 4);
  int converged = 0;
  for (std::uint64_t s = 0; s < 20; ++s) {
    const DecodeResult res = dec.decode(noisy_llr(code, 2.6F, s * 977 + 3));
    converged += res.converged ? 1 : 0;
    // Family invariant: check messages are in-alphabet by construction.
    EXPECT_EQ(dec.saturation().r_clips, 0);
  }
  EXPECT_GE(converged, 18);
}

TEST(FaDecoder, LowerResolutionDegradesGracefully) {
  // At the same operating point fa2 may fail more frames than fa4, but it
  // must still decode the easy ones — the family degrades, not collapses.
  const QCLdpcCode code = make_wifi_648_half_rate();
  DecoderOptions opt;
  LayeredMinSumFaDecoder fa2(code, opt, 2);
  int converged = 0;
  for (std::uint64_t s = 0; s < 20; ++s)
    converged += fa2.decode(noisy_llr(code, 4.0F, s * 331 + 11)).converged;
  EXPECT_GE(converged, 14);
}

TEST(FaDecoder, ReportsFamilyMessageFormat) {
  const QCLdpcCode code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  for (const int bits : {2, 3, 4}) {
    LayeredMinSumFaDecoder dec(code, opt, bits);
    EXPECT_EQ(dec.message_format(), "fa" + std::to_string(bits));
    EXPECT_EQ(dec.name(), "layered-minsum-fa" + std::to_string(bits));
    EXPECT_EQ(dec.tables().posterior.total_bits, 8);
  }
}

TEST(FaDecoder, DecodeQuantizedMatchesDecode) {
  // Pre-quantized channel codes must land on the same fixed-point state
  // as float LLRs that quantize to those codes.
  const QCLdpcCode code = make_wifi_648_half_rate();
  DecoderOptions opt;
  LayeredMinSumFaDecoder dec(code, opt, 4);
  const std::vector<float> llr = noisy_llr(code, 2.6F, 99);
  const FixedFormat posterior = dec.tables().posterior;
  std::vector<std::int32_t> codes(llr.size());
  for (std::size_t v = 0; v < llr.size(); ++v)
    codes[v] = fa_quantize(posterior, llr[v]);
  const DecodeResult a = dec.decode(llr);
  const DecodeResult b = dec.decode_quantized(codes);
  EXPECT_TRUE(a.hard_bits == b.hard_bits);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
}

TEST(FaDecoder, RejectsUnsupportedResolutions) {
  const QCLdpcCode code = make_wimax_code(WimaxRate::kRate1_2, 24);
  DecoderOptions opt;
  EXPECT_THROW(LayeredMinSumFaDecoder(code, opt, 1), Error);
  EXPECT_THROW(LayeredMinSumFaDecoder(code, opt, 8), Error);
}

}  // namespace
}  // namespace ldpc
