// Table anchors: exact spot-check values for the standard code tables and
// their scaling. The structural tests (encodability, 4-cycle-freeness)
// verify global self-consistency; these anchors pin individual entries so
// an accidental one-character edit to a table is caught directly.
#include <gtest/gtest.h>

#include <algorithm>

#include "codes/wifi.hpp"
#include "codes/wimax.hpp"

namespace ldpc {
namespace {

TEST(Anchors, WimaxHalfRateEntries) {
  const BaseMatrix& b = wimax_base_matrix(WimaxRate::kRate1_2);
  EXPECT_EQ(b.at(0, 1), 94);
  EXPECT_EQ(b.at(0, 12), 7);    // weight-3 column head
  EXPECT_EQ(b.at(5, 12), 0);    // its mid tap
  EXPECT_EQ(b.at(11, 12), 7);   // its tail (equal to the head: RU trick)
  EXPECT_EQ(b.at(2, 3), 24);
  EXPECT_EQ(b.at(11, 0), 43);
  EXPECT_EQ(b.at(0, 0), BaseMatrix::kZero);
  EXPECT_EQ(b.at(11, 23), 0);   // dual-diagonal corner
}

TEST(Anchors, Wimax56Entries) {
  const BaseMatrix& b = wimax_base_matrix(WimaxRate::kRate5_6);
  EXPECT_EQ(b.at(0, 0), 1);
  EXPECT_EQ(b.at(0, 20), 80);   // weight-3 head
  EXPECT_EQ(b.at(1, 20), 0);    // mid
  EXPECT_EQ(b.at(3, 20), 80);   // tail
  EXPECT_EQ(b.at(3, 23), 0);
  EXPECT_EQ(b.at(2, 5), BaseMatrix::kZero);
}

TEST(Anchors, FloorScalingSpotValues) {
  // Rate 1/2 scaled to z = 48: floor(shift * 48 / 96) = shift / 2.
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 48);
  const BaseMatrix& s = code.base();
  EXPECT_EQ(s.at(0, 1), 47);   // 94 -> 47
  EXPECT_EQ(s.at(0, 12), 3);   // 7  -> 3
  EXPECT_EQ(s.at(11, 12), 3);  // head/tail stay equal after scaling
  EXPECT_EQ(s.at(2, 5), 40);   // 81 -> 40
  EXPECT_EQ(s.at(5, 12), 0);
}

TEST(Anchors, ModScalingSpotValues) {
  // Rate 2/3A scaled to z = 28 uses shift mod z.
  const auto code = make_wimax_code(WimaxRate::kRate2_3A, 28);
  const BaseMatrix& s = code.base();
  const BaseMatrix& d = wimax_base_matrix(WimaxRate::kRate2_3A);
  EXPECT_EQ(s.at(1, 4), d.at(1, 4) % 28);  // 36 -> 8
  EXPECT_EQ(s.at(1, 4), 8);
  EXPECT_EQ(s.at(5, 15), d.at(5, 15) % 28);  // 45 -> 17
}

TEST(Anchors, WifiEntries) {
  const auto w648 = make_wifi_648_half_rate();
  EXPECT_EQ(w648.base().at(0, 0), 0);
  EXPECT_EQ(w648.base().at(1, 0), 22);
  EXPECT_EQ(w648.base().at(0, 12), 1);   // weight-3 head
  EXPECT_EQ(w648.base().at(6, 12), 0);   // mid
  EXPECT_EQ(w648.base().at(11, 12), 1);  // tail
  const auto w1944 = make_wifi_1944_half_rate();
  EXPECT_EQ(w1944.base().at(0, 0), 57);
  EXPECT_EQ(w1944.base().at(11, 2), 61);
  EXPECT_EQ(w1944.base().at(0, 12), 1);
}

TEST(Anchors, DegreeProfiles) {
  // Row-degree multisets of the design matrices (order-insensitive).
  auto degrees = [](const BaseMatrix& b) {
    std::vector<std::size_t> d;
    for (std::size_t r = 0; r < b.rows(); ++r) d.push_back(b.row_degree(r));
    std::sort(d.begin(), d.end());
    return d;
  };
  EXPECT_EQ(degrees(wimax_base_matrix(WimaxRate::kRate1_2)),
            (std::vector<std::size_t>{6, 6, 6, 6, 6, 6, 6, 6, 7, 7, 7, 7}));
  EXPECT_EQ(degrees(wimax_base_matrix(WimaxRate::kRate5_6)),
            (std::vector<std::size_t>{20, 20, 20, 20}));
}

TEST(Anchors, ColumnDegreeTotalsMatchEdgeCounts) {
  for (WimaxRate rate : all_wimax_rates()) {
    const BaseMatrix& b = wimax_base_matrix(rate);
    std::size_t row_total = 0, col_total = 0;
    for (std::size_t r = 0; r < b.rows(); ++r) row_total += b.row_degree(r);
    for (std::size_t c = 0; c < b.cols(); ++c) col_total += b.col_degree(c);
    EXPECT_EQ(row_total, col_total) << wimax_rate_name(rate);
    EXPECT_EQ(row_total, b.nonzero_blocks()) << wimax_rate_name(rate);
  }
}

}  // namespace
}  // namespace ldpc
