// Fault-injection & graceful-degradation subsystem tests.
//
// Three layers of guarantees:
//   1. FaultInjector unit behaviour — determinism, site gating, stuck-at
//      semantics, geometric-stream call-grouping invariance.
//   2. Golden transparency — an injector that is constructed but disabled
//      (and saturation counting, and the wired hooks generally) leaves the
//      decoders bit-identical to the seed path, pinned against the same
//      constants as golden_test.cpp.
//   3. Degradation behaviour — upsets corrupt decodes, the output parity
//      recheck / watchdog flag them (DecodeStatus), the scoreboard fault
//      reproduces the §IV-B RAW hazard, and campaigns are reproducible.
#include <gtest/gtest.h>

#include "arch/arch_sim.hpp"
#include "arch/scoreboard.hpp"
#include "arch/sram.hpp"
#include "bench/bench_common.hpp"
#include "codes/wimax.hpp"
#include "core/layered_minsum_fixed.hpp"
#include "fault/campaign.hpp"
#include "fault/fault_injector.hpp"

namespace ldpc {
namespace {

// ------------------------------------------------------- injector unit ----

TEST(FaultInjector, DefaultConstructedIsDisabled) {
  FaultInjector inj;
  EXPECT_FALSE(inj.enabled());
  for (std::size_t s = 0; s < kNumFaultSites; ++s)
    EXPECT_FALSE(inj.armed(static_cast<FaultSite>(s)));
  EXPECT_EQ(inj.corrupt_value(FaultSite::kSramP, 17, 8), 17);
  EXPECT_EQ(inj.corrupt_flag(FaultSite::kScoreboard, true), true);
  EXPECT_EQ(inj.injections(), 0);
  EXPECT_EQ(inj.stats(FaultSite::kSramP).bits_examined, 0);
}

TEST(FaultInjector, ZeroRateIsDisabled) {
  FaultConfig cfg;
  cfg.rate = 0.0;
  FaultInjector inj(cfg);
  EXPECT_FALSE(inj.enabled());
  EXPECT_EQ(inj.corrupt_value(FaultSite::kSramP, -3, 8), -3);
}

TEST(FaultInjector, RejectsNonProbabilityRate) {
  FaultConfig cfg;
  cfg.rate = 1.5;
  EXPECT_THROW(FaultInjector{cfg}, Error);
  cfg.rate = -0.1;
  EXPECT_THROW(FaultInjector{cfg}, Error);
}

TEST(FaultInjector, DeterministicForSeed) {
  FaultConfig cfg;
  cfg.rate = 0.05;
  cfg.seed = 123;
  FaultInjector a(cfg), b(cfg);
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(a.corrupt_value(FaultSite::kSramP, i, 8),
              b.corrupt_value(FaultSite::kSramP, i, 8));
  EXPECT_EQ(a.injections(), b.injections());
  EXPECT_GT(a.injections(), 0);  // 0.05 * 1600 bits ≈ 80 expected upsets
}

TEST(FaultInjector, ReseedRestartsTheStream) {
  FaultConfig cfg;
  cfg.rate = 0.05;
  cfg.seed = 99;
  FaultInjector a(cfg);
  std::vector<std::int32_t> first;
  for (int i = 0; i < 64; ++i)
    first.push_back(a.corrupt_value(FaultSite::kSramR, 0, 8));
  a.reseed(99);
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(a.corrupt_value(FaultSite::kSramR, 0, 8), first[i]);
}

TEST(FaultInjector, RateOneFlipsEveryBit) {
  FaultConfig cfg;
  cfg.rate = 1.0;
  FaultInjector inj(cfg);
  // Magnitude: every bit of the 4-bit field flips.
  EXPECT_EQ(inj.corrupt_magnitude(FaultSite::kCoreMin1, 0b0101, 4), 0b1010);
  // Signed: flipping all 8 bits of 0 gives -1 after sign extension.
  EXPECT_EQ(inj.corrupt_value(FaultSite::kSramP, 0, 8), -1);
  EXPECT_FALSE(inj.corrupt_flag(FaultSite::kScoreboard, true));
  EXPECT_TRUE(inj.corrupt_flag(FaultSite::kScoreboard, false));
}

TEST(FaultInjector, StuckAtSemantics) {
  FaultConfig cfg;
  cfg.rate = 1.0;
  cfg.kind = FaultKind::kStuckAtOne;
  FaultInjector one(cfg);
  EXPECT_EQ(one.corrupt_magnitude(FaultSite::kCoreMin2, 0, 4), 0b1111);
  EXPECT_TRUE(one.corrupt_flag(FaultSite::kCoreSign, false));

  cfg.kind = FaultKind::kStuckAtZero;
  FaultInjector zero(cfg);
  EXPECT_EQ(zero.corrupt_magnitude(FaultSite::kCoreMin2, 0b1111, 4), 0);
  EXPECT_FALSE(zero.corrupt_flag(FaultSite::kCoreSign, true));
  // Stuck-at-zero on an already-zero bit is not an injection.
  EXPECT_EQ(zero.corrupt_magnitude(FaultSite::kCoreMin1, 0, 4), 0);
  EXPECT_EQ(zero.stats(FaultSite::kCoreMin1).injections, 0);
}

TEST(FaultInjector, SiteMaskGatesInjection) {
  FaultConfig cfg;
  cfg.rate = 1.0;
  cfg.sites = fault_site_bit(FaultSite::kSramP);
  FaultInjector inj(cfg);
  EXPECT_TRUE(inj.armed(FaultSite::kSramP));
  EXPECT_FALSE(inj.armed(FaultSite::kCoreMin1));
  EXPECT_EQ(inj.corrupt_magnitude(FaultSite::kCoreMin1, 7, 4), 7);
  EXPECT_EQ(inj.stats(FaultSite::kCoreMin1).bits_examined, 0);
  EXPECT_NE(inj.corrupt_value(FaultSite::kSramP, 7, 8), 7);
}

TEST(FaultInjector, StreamIndependentOfCallGrouping) {
  // The geometric skip stream advances per bit examined, so corrupting two
  // 8-bit halves must upset the same bit positions as one 16-bit word.
  FaultConfig cfg;
  cfg.rate = 0.07;
  cfg.seed = 7;
  FaultInjector split(cfg), whole(cfg);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint32_t lo = static_cast<std::uint32_t>(
        split.corrupt_magnitude(FaultSite::kSramP, 0, 8));
    const std::uint32_t hi = static_cast<std::uint32_t>(
        split.corrupt_magnitude(FaultSite::kSramP, 0, 8));
    const std::uint32_t wide = static_cast<std::uint32_t>(
        whole.corrupt_magnitude(FaultSite::kSramP, 0, 16));
    EXPECT_EQ(lo | (hi << 8), wide) << "trial " << trial;
  }
}

TEST(FaultInjector, DisableSuppressesInjection) {
  FaultConfig cfg;
  cfg.rate = 1.0;
  FaultInjector inj(cfg);
  inj.set_enabled(false);
  EXPECT_FALSE(inj.enabled());
  EXPECT_EQ(inj.corrupt_value(FaultSite::kSramP, 21, 8), 21);
  inj.set_enabled(true);
  EXPECT_NE(inj.corrupt_value(FaultSite::kSramP, 21, 8), 21);
}

// ----------------------------------------------------- component hooks ----

TEST(FaultHooks, SramReadCorruptionLeavesStorageClean) {
  SramModel mem("p", 4, 8);
  mem.write(2, std::vector<std::int32_t>(8, 5));
  FaultConfig cfg;
  cfg.rate = 1.0;
  cfg.kind = FaultKind::kStuckAtZero;
  FaultInjector inj(cfg);
  mem.attach_fault_injector(&inj, FaultSite::kSramP, 8);
  const auto& corrupted = mem.read(2);
  for (const auto lane : corrupted) EXPECT_EQ(lane, 0);
  // Stored cells are untouched (read-disturb model)...
  for (const auto lane : mem.peek(2)) EXPECT_EQ(lane, 5);
  // ...and detaching restores clean reads.
  mem.attach_fault_injector(nullptr, FaultSite::kSramP, 8);
  for (const auto lane : mem.read(2)) EXPECT_EQ(lane, 5);
}

TEST(FaultHooks, ScoreboardObservedPending) {
  Scoreboard sb(4);
  sb.set(1);
  EXPECT_TRUE(sb.observed_pending(1, nullptr));
  FaultConfig cfg;
  cfg.rate = 1.0;
  cfg.kind = FaultKind::kStuckAtZero;
  cfg.sites = kScoreboardFaultSites;
  FaultInjector inj(cfg);
  // Upset drops the set bit (RAW hazard) but the stored bit survives.
  EXPECT_FALSE(sb.observed_pending(1, &inj));
  EXPECT_TRUE(sb.is_pending(1));
  // A clear bit reads clear under stuck-at-zero, no injection counted.
  const long long before = inj.injections();
  EXPECT_FALSE(sb.observed_pending(0, &inj));
  EXPECT_EQ(inj.stats(FaultSite::kScoreboard).injections, before);
}

// ------------------------------------------------- golden transparency ----

TEST(FaultGolden, DisabledInjectorBitIdenticalLayered) {
  const auto code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  const auto frame = bench::quantized_frame(code, fmt, 2.0F, 42);

  DecoderOptions plain;
  plain.max_iterations = 10;
  LayeredMinSumFixedDecoder ref(code, plain, fmt);
  const auto ref_result = ref.decode_quantized(frame);

  FaultConfig cfg;
  cfg.rate = 1e-3;  // would corrupt heavily if it were armed
  FaultInjector inj(cfg);
  inj.set_enabled(false);
  DecoderOptions hooked = plain;
  hooked.fault_injector = &inj;
  hooked.count_saturation = true;
  LayeredMinSumFixedDecoder dec(code, hooked, fmt);
  const auto result = dec.decode_quantized(frame);

  // Same golden trajectory as golden_test.cpp pins for the seed path.
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.status, DecodeStatus::kConverged);
  EXPECT_EQ(result.iterations, 7u);
  EXPECT_EQ(result.faults_injected, 0u);
  EXPECT_EQ(inj.injections(), 0);
  ASSERT_EQ(result.hard_bits.size(), ref_result.hard_bits.size());
  for (std::size_t i = 0; i < result.hard_bits.size(); ++i)
    ASSERT_EQ(result.hard_bits.get(i), ref_result.hard_bits.get(i)) << i;
}

TEST(FaultGolden, DisabledInjectorBitIdenticalArchSim) {
  const auto code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  const auto est = pico.compile(code, ArchKind::kTwoLayerPipelined,
                                HardwareTarget{400.0, 96});
  FaultConfig cfg;
  cfg.rate = 1e-3;
  FaultInjector inj(cfg);
  inj.set_enabled(false);
  DecoderOptions opt;
  opt.max_iterations = 10;
  opt.early_termination = false;
  opt.fault_injector = &inj;
  opt.count_saturation = true;

  ArchSimDecoder naive(code, est, opt, fmt, ArchSimConfig{false});
  const auto frame = bench::quantized_frame(code, fmt, 2.0F, 42);
  const auto res = naive.decode_quantized(frame);
  // The golden cycle counts of the un-hooked simulator (golden_test.cpp).
  EXPECT_EQ(res.activity.cycles, 1345);
  EXPECT_EQ(res.activity.faults_injected, 0);

  ArchSimDecoder reordered(code, est, opt, fmt, ArchSimConfig{true});
  EXPECT_EQ(reordered.decode_quantized(frame).activity.cycles, 1016);
}

// --------------------------------------------------------- degradation ----

TEST(FaultDegradation, InjectionCorruptsAndIsDetected) {
  const auto code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  const auto frame = bench::quantized_frame(code, fmt, 2.0F, 42);

  FaultConfig cfg;
  cfg.rate = 5e-3;
  cfg.seed = 11;
  FaultInjector inj(cfg);
  DecoderOptions opt;
  opt.max_iterations = 10;
  opt.fault_injector = &inj;
  LayeredMinSumFixedDecoder dec(code, opt, fmt);
  const auto result = dec.decode_quantized(frame);

  EXPECT_GT(result.faults_injected, 0u);
  EXPECT_GT(inj.stats(FaultSite::kSramP).bits_examined, 0);
  EXPECT_GT(inj.stats(FaultSite::kCoreMin1).bits_examined, 0);
  // At this upset rate the frame cannot converge; the parity recheck flags
  // the corruption instead of reporting a clean decode.
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.status, DecodeStatus::kFaultDetected);
}

TEST(FaultDegradation, WatchdogAbortsNonConvergentDecode) {
  const auto code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  // 0 dB is far below the waterfall: the decode stalls instead of
  // converging, which is exactly what the watchdog exists to cut short.
  const auto frame = bench::quantized_frame(code, fmt, 0.0F, 7);

  DecoderOptions opt;
  opt.max_iterations = 50;
  LayeredMinSumFixedDecoder no_watchdog(code, opt, fmt);
  const auto slow = no_watchdog.decode_quantized(frame);
  ASSERT_FALSE(slow.converged);
  EXPECT_EQ(slow.status, DecodeStatus::kMaxIterations);

  opt.watchdog.stall_window = 3;
  LayeredMinSumFixedDecoder dec(code, opt, fmt);
  const auto result = dec.decode_quantized(frame);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.status, DecodeStatus::kWatchdogAbort);
  EXPECT_LT(result.iterations, slow.iterations);
}

TEST(FaultDegradation, WatchdogStateUnit) {
  WatchdogState off{WatchdogOptions{}};
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(off.should_abort(100));
  EXPECT_FALSE(off.fired());

  WatchdogState wd{WatchdogOptions{2}};
  EXPECT_FALSE(wd.should_abort(10));  // first weight = new minimum? no: 10 < max
  EXPECT_FALSE(wd.should_abort(8));   // improving
  EXPECT_FALSE(wd.should_abort(8));   // stall 1
  EXPECT_TRUE(wd.should_abort(9));    // stall 2 -> abort
  EXPECT_TRUE(wd.fired());
}

TEST(FaultDegradation, ClassifyExit) {
  EXPECT_EQ(classify_exit(true, false, 0), DecodeStatus::kConverged);
  EXPECT_EQ(classify_exit(true, true, 5), DecodeStatus::kConverged);
  EXPECT_EQ(classify_exit(false, true, 5), DecodeStatus::kWatchdogAbort);
  EXPECT_EQ(classify_exit(false, false, 5), DecodeStatus::kFaultDetected);
  EXPECT_EQ(classify_exit(false, false, 0), DecodeStatus::kMaxIterations);
}

TEST(FaultDegradation, ScoreboardUpsetRemovesStallsAndCorruptsPipeline) {
  const auto code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  const auto est = pico.compile(code, ArchKind::kTwoLayerPipelined,
                                HardwareTarget{400.0, 96});
  const auto frame = bench::quantized_frame(code, fmt, 2.0F, 42);

  DecoderOptions opt;
  opt.max_iterations = 10;
  opt.early_termination = false;
  ArchSimDecoder clean(code, est, opt, fmt, ArchSimConfig{false});
  const auto ref = clean.decode_quantized(frame);
  ASSERT_EQ(ref.activity.core1_stall_cycles, 576);

  // Stuck-at-zero pending bits: core 1 never observes a hazard — every
  // stall disappears and it reads stale P words instead (§IV-B).
  FaultConfig cfg;
  cfg.rate = 1.0;
  cfg.kind = FaultKind::kStuckAtZero;
  cfg.sites = kScoreboardFaultSites;
  FaultInjector inj(cfg);
  DecoderOptions faulty = opt;
  faulty.fault_injector = &inj;
  ArchSimDecoder sim(code, est, faulty, fmt, ArchSimConfig{false});
  const auto res = sim.decode_quantized(frame);

  EXPECT_LT(res.activity.core1_stall_cycles, ref.activity.core1_stall_cycles);
  EXPECT_GT(res.decode.faults_injected, 0u);
  // Stale-P reads change the computation: the decode must differ from the
  // clean pipeline's (which is bit-identical to the algorithmic decoder).
  bool differs = false;
  for (std::size_t i = 0; i < ref.decode.hard_bits.size() && !differs; ++i)
    differs = ref.decode.hard_bits.get(i) != res.decode.hard_bits.get(i);
  EXPECT_TRUE(differs);
}

// ------------------------------------------------------------ campaign ----

TEST(FaultCampaign, DeterministicAcrossRuns) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  FaultCampaignConfig cfg;
  cfg.fault_rates = {0.0, 1e-3};
  cfg.ebn0_db = {2.5F};
  cfg.frames_per_point = 20;
  auto run_once = [&] {
    FaultCampaignRunner runner(code, cfg);
    return runner.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].bit_errors, b[i].bit_errors);
    EXPECT_EQ(a[i].frame_errors, b[i].frame_errors);
    EXPECT_EQ(a[i].detected_errors, b[i].detected_errors);
    EXPECT_EQ(a[i].watchdog_aborts, b[i].watchdog_aborts);
    EXPECT_EQ(a[i].injections, b[i].injections);
    EXPECT_EQ(a[i].sat_clips, b[i].sat_clips);
    EXPECT_DOUBLE_EQ(a[i].sum_iterations, b[i].sum_iterations);
  }
}

TEST(FaultCampaign, FaultFreePointMatchesAcrossTargets) {
  // At rate 0 the arch sim must agree bit-for-bit with the algorithmic
  // decoder (the repo's core invariant), so the campaign metrics match too.
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  FaultCampaignConfig cfg;
  cfg.fault_rates = {0.0};
  cfg.ebn0_db = {2.0F};
  cfg.frames_per_point = 10;
  const auto layered = FaultCampaignRunner(code, cfg).run();
  cfg.target = CampaignTarget::kArchSim;
  const auto arch = FaultCampaignRunner(code, cfg).run();
  ASSERT_EQ(layered.size(), 1u);
  ASSERT_EQ(arch.size(), 1u);
  EXPECT_EQ(layered[0].bit_errors, arch[0].bit_errors);
  EXPECT_EQ(layered[0].frame_errors, arch[0].frame_errors);
  EXPECT_DOUBLE_EQ(layered[0].sum_iterations, arch[0].sum_iterations);
}

TEST(FaultCampaign, InjectionDegradesAndIsFlagged) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  FaultCampaignConfig cfg;
  cfg.fault_rates = {0.0, 1e-2};
  cfg.ebn0_db = {3.0F};
  cfg.frames_per_point = 20;
  const auto pts = FaultCampaignRunner(code, cfg).run();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].injections, 0);
  EXPECT_GT(pts[1].injections, 0);
  EXPECT_GT(pts[1].frame_errors, pts[0].frame_errors);
  // Graceful degradation: every corrupted frame error is flagged.
  EXPECT_EQ(pts[1].undetected_errors, 0u);
  EXPECT_DOUBLE_EQ(pts[1].detection_coverage(), 1.0);
}

TEST(FaultCampaign, CsvRowShape) {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 24);
  FaultCampaignConfig cfg;
  cfg.fault_rates = {1e-3};
  cfg.ebn0_db = {2.0F};
  cfg.frames_per_point = 2;
  cfg.sites = kSramFaultSites;
  FaultCampaignRunner runner(code, cfg);
  const auto pts = runner.run();
  const auto header = FaultCampaignRunner::csv_header();
  const auto row = runner.csv_row(pts[0]);
  ASSERT_EQ(row.size(), header.size());
  EXPECT_EQ(row[0], "layered-fixed");
  EXPECT_EQ(row[1], "sram-p+sram-r");
  EXPECT_EQ(row[2], "flip");
}

}  // namespace
}  // namespace ldpc
