# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/codes_test[1]_include.cmake")
include("/root/repo/build/tests/anchor_test[1]_include.cmake")
include("/root/repo/build/tests/interleaver_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/encoder_test[1]_include.cmake")
include("/root/repo/build/tests/channel_test[1]_include.cmake")
include("/root/repo/build/tests/fading_test[1]_include.cmake")
include("/root/repo/build/tests/decoder_float_test[1]_include.cmake")
include("/root/repo/build/tests/decoder_fixed_test[1]_include.cmake")
include("/root/repo/build/tests/observer_test[1]_include.cmake")
include("/root/repo/build/tests/decoder_ext_test[1]_include.cmake")
include("/root/repo/build/tests/golden_test[1]_include.cmake")
include("/root/repo/build/tests/hls_test[1]_include.cmake")
include("/root/repo/build/tests/rtl_gen_test[1]_include.cmake")
include("/root/repo/build/tests/testbench_test[1]_include.cmake")
include("/root/repo/build/tests/arch_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/flexible_test[1]_include.cmake")
include("/root/repo/build/tests/flooding_arch_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/power_ext_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/sweep_test[1]_include.cmake")
