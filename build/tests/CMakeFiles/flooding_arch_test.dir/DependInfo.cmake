
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/flooding_arch_test.cpp" "tests/CMakeFiles/flooding_arch_test.dir/flooding_arch_test.cpp.o" "gcc" "tests/CMakeFiles/flooding_arch_test.dir/flooding_arch_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/power/CMakeFiles/ldpc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/ldpc_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/ldpc_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/ldpc_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ldpc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/codes/CMakeFiles/ldpc_codes.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ldpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
