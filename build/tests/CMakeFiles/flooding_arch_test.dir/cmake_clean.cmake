file(REMOVE_RECURSE
  "CMakeFiles/flooding_arch_test.dir/flooding_arch_test.cpp.o"
  "CMakeFiles/flooding_arch_test.dir/flooding_arch_test.cpp.o.d"
  "flooding_arch_test"
  "flooding_arch_test.pdb"
  "flooding_arch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flooding_arch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
