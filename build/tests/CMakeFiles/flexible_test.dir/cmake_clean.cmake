file(REMOVE_RECURSE
  "CMakeFiles/flexible_test.dir/flexible_test.cpp.o"
  "CMakeFiles/flexible_test.dir/flexible_test.cpp.o.d"
  "flexible_test"
  "flexible_test.pdb"
  "flexible_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexible_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
