file(REMOVE_RECURSE
  "CMakeFiles/power_ext_test.dir/power_ext_test.cpp.o"
  "CMakeFiles/power_ext_test.dir/power_ext_test.cpp.o.d"
  "power_ext_test"
  "power_ext_test.pdb"
  "power_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
