# Empty dependencies file for power_ext_test.
# This may be replaced when dependencies are built.
