file(REMOVE_RECURSE
  "CMakeFiles/decoder_float_test.dir/decoder_float_test.cpp.o"
  "CMakeFiles/decoder_float_test.dir/decoder_float_test.cpp.o.d"
  "decoder_float_test"
  "decoder_float_test.pdb"
  "decoder_float_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoder_float_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
