# Empty dependencies file for decoder_float_test.
# This may be replaced when dependencies are built.
