file(REMOVE_RECURSE
  "CMakeFiles/interleaver_test.dir/interleaver_test.cpp.o"
  "CMakeFiles/interleaver_test.dir/interleaver_test.cpp.o.d"
  "interleaver_test"
  "interleaver_test.pdb"
  "interleaver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interleaver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
