# Empty dependencies file for interleaver_test.
# This may be replaced when dependencies are built.
