# Empty compiler generated dependencies file for rtl_gen_test.
# This may be replaced when dependencies are built.
