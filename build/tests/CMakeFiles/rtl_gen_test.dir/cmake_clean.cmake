file(REMOVE_RECURSE
  "CMakeFiles/rtl_gen_test.dir/rtl_gen_test.cpp.o"
  "CMakeFiles/rtl_gen_test.dir/rtl_gen_test.cpp.o.d"
  "rtl_gen_test"
  "rtl_gen_test.pdb"
  "rtl_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
