# Empty compiler generated dependencies file for fading_test.
# This may be replaced when dependencies are built.
