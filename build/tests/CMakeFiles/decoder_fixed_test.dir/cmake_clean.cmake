file(REMOVE_RECURSE
  "CMakeFiles/decoder_fixed_test.dir/decoder_fixed_test.cpp.o"
  "CMakeFiles/decoder_fixed_test.dir/decoder_fixed_test.cpp.o.d"
  "decoder_fixed_test"
  "decoder_fixed_test.pdb"
  "decoder_fixed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoder_fixed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
