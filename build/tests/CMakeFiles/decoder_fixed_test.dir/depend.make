# Empty dependencies file for decoder_fixed_test.
# This may be replaced when dependencies are built.
