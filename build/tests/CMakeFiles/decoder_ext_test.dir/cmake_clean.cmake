file(REMOVE_RECURSE
  "CMakeFiles/decoder_ext_test.dir/decoder_ext_test.cpp.o"
  "CMakeFiles/decoder_ext_test.dir/decoder_ext_test.cpp.o.d"
  "decoder_ext_test"
  "decoder_ext_test.pdb"
  "decoder_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoder_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
