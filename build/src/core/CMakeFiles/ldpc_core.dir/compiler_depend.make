# Empty compiler generated dependencies file for ldpc_core.
# This may be replaced when dependencies are built.
