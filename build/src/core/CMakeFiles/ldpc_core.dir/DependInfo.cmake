
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/decoder_factory.cpp" "src/core/CMakeFiles/ldpc_core.dir/decoder_factory.cpp.o" "gcc" "src/core/CMakeFiles/ldpc_core.dir/decoder_factory.cpp.o.d"
  "/root/repo/src/core/flooding_bp.cpp" "src/core/CMakeFiles/ldpc_core.dir/flooding_bp.cpp.o" "gcc" "src/core/CMakeFiles/ldpc_core.dir/flooding_bp.cpp.o.d"
  "/root/repo/src/core/flooding_minsum.cpp" "src/core/CMakeFiles/ldpc_core.dir/flooding_minsum.cpp.o" "gcc" "src/core/CMakeFiles/ldpc_core.dir/flooding_minsum.cpp.o.d"
  "/root/repo/src/core/flooding_minsum_fixed.cpp" "src/core/CMakeFiles/ldpc_core.dir/flooding_minsum_fixed.cpp.o" "gcc" "src/core/CMakeFiles/ldpc_core.dir/flooding_minsum_fixed.cpp.o.d"
  "/root/repo/src/core/gallager_b.cpp" "src/core/CMakeFiles/ldpc_core.dir/gallager_b.cpp.o" "gcc" "src/core/CMakeFiles/ldpc_core.dir/gallager_b.cpp.o.d"
  "/root/repo/src/core/layered_minsum_fixed.cpp" "src/core/CMakeFiles/ldpc_core.dir/layered_minsum_fixed.cpp.o" "gcc" "src/core/CMakeFiles/ldpc_core.dir/layered_minsum_fixed.cpp.o.d"
  "/root/repo/src/core/layered_minsum_float.cpp" "src/core/CMakeFiles/ldpc_core.dir/layered_minsum_float.cpp.o" "gcc" "src/core/CMakeFiles/ldpc_core.dir/layered_minsum_float.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codes/CMakeFiles/ldpc_codes.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ldpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
