file(REMOVE_RECURSE
  "libldpc_core.a"
)
