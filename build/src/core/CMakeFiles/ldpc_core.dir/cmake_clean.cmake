file(REMOVE_RECURSE
  "CMakeFiles/ldpc_core.dir/decoder_factory.cpp.o"
  "CMakeFiles/ldpc_core.dir/decoder_factory.cpp.o.d"
  "CMakeFiles/ldpc_core.dir/flooding_bp.cpp.o"
  "CMakeFiles/ldpc_core.dir/flooding_bp.cpp.o.d"
  "CMakeFiles/ldpc_core.dir/flooding_minsum.cpp.o"
  "CMakeFiles/ldpc_core.dir/flooding_minsum.cpp.o.d"
  "CMakeFiles/ldpc_core.dir/flooding_minsum_fixed.cpp.o"
  "CMakeFiles/ldpc_core.dir/flooding_minsum_fixed.cpp.o.d"
  "CMakeFiles/ldpc_core.dir/gallager_b.cpp.o"
  "CMakeFiles/ldpc_core.dir/gallager_b.cpp.o.d"
  "CMakeFiles/ldpc_core.dir/layered_minsum_fixed.cpp.o"
  "CMakeFiles/ldpc_core.dir/layered_minsum_fixed.cpp.o.d"
  "CMakeFiles/ldpc_core.dir/layered_minsum_float.cpp.o"
  "CMakeFiles/ldpc_core.dir/layered_minsum_float.cpp.o.d"
  "libldpc_core.a"
  "libldpc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldpc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
