file(REMOVE_RECURSE
  "CMakeFiles/ldpc_channel.dir/awgn.cpp.o"
  "CMakeFiles/ldpc_channel.dir/awgn.cpp.o.d"
  "CMakeFiles/ldpc_channel.dir/ber_runner.cpp.o"
  "CMakeFiles/ldpc_channel.dir/ber_runner.cpp.o.d"
  "CMakeFiles/ldpc_channel.dir/interleaver.cpp.o"
  "CMakeFiles/ldpc_channel.dir/interleaver.cpp.o.d"
  "CMakeFiles/ldpc_channel.dir/modem.cpp.o"
  "CMakeFiles/ldpc_channel.dir/modem.cpp.o.d"
  "CMakeFiles/ldpc_channel.dir/rayleigh.cpp.o"
  "CMakeFiles/ldpc_channel.dir/rayleigh.cpp.o.d"
  "libldpc_channel.a"
  "libldpc_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldpc_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
