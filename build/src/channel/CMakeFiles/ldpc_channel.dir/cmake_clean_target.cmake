file(REMOVE_RECURSE
  "libldpc_channel.a"
)
