
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/awgn.cpp" "src/channel/CMakeFiles/ldpc_channel.dir/awgn.cpp.o" "gcc" "src/channel/CMakeFiles/ldpc_channel.dir/awgn.cpp.o.d"
  "/root/repo/src/channel/ber_runner.cpp" "src/channel/CMakeFiles/ldpc_channel.dir/ber_runner.cpp.o" "gcc" "src/channel/CMakeFiles/ldpc_channel.dir/ber_runner.cpp.o.d"
  "/root/repo/src/channel/interleaver.cpp" "src/channel/CMakeFiles/ldpc_channel.dir/interleaver.cpp.o" "gcc" "src/channel/CMakeFiles/ldpc_channel.dir/interleaver.cpp.o.d"
  "/root/repo/src/channel/modem.cpp" "src/channel/CMakeFiles/ldpc_channel.dir/modem.cpp.o" "gcc" "src/channel/CMakeFiles/ldpc_channel.dir/modem.cpp.o.d"
  "/root/repo/src/channel/rayleigh.cpp" "src/channel/CMakeFiles/ldpc_channel.dir/rayleigh.cpp.o" "gcc" "src/channel/CMakeFiles/ldpc_channel.dir/rayleigh.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codes/CMakeFiles/ldpc_codes.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ldpc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ldpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
