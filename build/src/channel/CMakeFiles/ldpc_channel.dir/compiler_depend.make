# Empty compiler generated dependencies file for ldpc_channel.
# This may be replaced when dependencies are built.
