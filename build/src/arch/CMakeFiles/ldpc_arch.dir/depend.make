# Empty dependencies file for ldpc_arch.
# This may be replaced when dependencies are built.
