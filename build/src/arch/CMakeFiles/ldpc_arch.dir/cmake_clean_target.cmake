file(REMOVE_RECURSE
  "libldpc_arch.a"
)
