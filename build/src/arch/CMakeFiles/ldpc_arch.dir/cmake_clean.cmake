file(REMOVE_RECURSE
  "CMakeFiles/ldpc_arch.dir/arch_sim.cpp.o"
  "CMakeFiles/ldpc_arch.dir/arch_sim.cpp.o.d"
  "CMakeFiles/ldpc_arch.dir/flexible_decoder.cpp.o"
  "CMakeFiles/ldpc_arch.dir/flexible_decoder.cpp.o.d"
  "CMakeFiles/ldpc_arch.dir/flooding_arch.cpp.o"
  "CMakeFiles/ldpc_arch.dir/flooding_arch.cpp.o.d"
  "CMakeFiles/ldpc_arch.dir/testbench.cpp.o"
  "CMakeFiles/ldpc_arch.dir/testbench.cpp.o.d"
  "CMakeFiles/ldpc_arch.dir/trace.cpp.o"
  "CMakeFiles/ldpc_arch.dir/trace.cpp.o.d"
  "libldpc_arch.a"
  "libldpc_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldpc_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
