
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/arch_sim.cpp" "src/arch/CMakeFiles/ldpc_arch.dir/arch_sim.cpp.o" "gcc" "src/arch/CMakeFiles/ldpc_arch.dir/arch_sim.cpp.o.d"
  "/root/repo/src/arch/flexible_decoder.cpp" "src/arch/CMakeFiles/ldpc_arch.dir/flexible_decoder.cpp.o" "gcc" "src/arch/CMakeFiles/ldpc_arch.dir/flexible_decoder.cpp.o.d"
  "/root/repo/src/arch/flooding_arch.cpp" "src/arch/CMakeFiles/ldpc_arch.dir/flooding_arch.cpp.o" "gcc" "src/arch/CMakeFiles/ldpc_arch.dir/flooding_arch.cpp.o.d"
  "/root/repo/src/arch/testbench.cpp" "src/arch/CMakeFiles/ldpc_arch.dir/testbench.cpp.o" "gcc" "src/arch/CMakeFiles/ldpc_arch.dir/testbench.cpp.o.d"
  "/root/repo/src/arch/trace.cpp" "src/arch/CMakeFiles/ldpc_arch.dir/trace.cpp.o" "gcc" "src/arch/CMakeFiles/ldpc_arch.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/channel/CMakeFiles/ldpc_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/codes/CMakeFiles/ldpc_codes.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ldpc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/ldpc_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ldpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
