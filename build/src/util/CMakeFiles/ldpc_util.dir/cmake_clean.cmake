file(REMOVE_RECURSE
  "CMakeFiles/ldpc_util.dir/cli.cpp.o"
  "CMakeFiles/ldpc_util.dir/cli.cpp.o.d"
  "CMakeFiles/ldpc_util.dir/csv.cpp.o"
  "CMakeFiles/ldpc_util.dir/csv.cpp.o.d"
  "CMakeFiles/ldpc_util.dir/stats.cpp.o"
  "CMakeFiles/ldpc_util.dir/stats.cpp.o.d"
  "CMakeFiles/ldpc_util.dir/table.cpp.o"
  "CMakeFiles/ldpc_util.dir/table.cpp.o.d"
  "libldpc_util.a"
  "libldpc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldpc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
