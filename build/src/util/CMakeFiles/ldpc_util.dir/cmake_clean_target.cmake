file(REMOVE_RECURSE
  "libldpc_util.a"
)
