# Empty compiler generated dependencies file for ldpc_util.
# This may be replaced when dependencies are built.
