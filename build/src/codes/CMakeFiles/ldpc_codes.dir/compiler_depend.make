# Empty compiler generated dependencies file for ldpc_codes.
# This may be replaced when dependencies are built.
