file(REMOVE_RECURSE
  "CMakeFiles/ldpc_codes.dir/alist.cpp.o"
  "CMakeFiles/ldpc_codes.dir/alist.cpp.o.d"
  "CMakeFiles/ldpc_codes.dir/base_matrix.cpp.o"
  "CMakeFiles/ldpc_codes.dir/base_matrix.cpp.o.d"
  "CMakeFiles/ldpc_codes.dir/encoder.cpp.o"
  "CMakeFiles/ldpc_codes.dir/encoder.cpp.o.d"
  "CMakeFiles/ldpc_codes.dir/graph_analysis.cpp.o"
  "CMakeFiles/ldpc_codes.dir/graph_analysis.cpp.o.d"
  "CMakeFiles/ldpc_codes.dir/qc_code.cpp.o"
  "CMakeFiles/ldpc_codes.dir/qc_code.cpp.o.d"
  "CMakeFiles/ldpc_codes.dir/random_qc.cpp.o"
  "CMakeFiles/ldpc_codes.dir/random_qc.cpp.o.d"
  "CMakeFiles/ldpc_codes.dir/wifi.cpp.o"
  "CMakeFiles/ldpc_codes.dir/wifi.cpp.o.d"
  "CMakeFiles/ldpc_codes.dir/wimax.cpp.o"
  "CMakeFiles/ldpc_codes.dir/wimax.cpp.o.d"
  "libldpc_codes.a"
  "libldpc_codes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldpc_codes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
