
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codes/alist.cpp" "src/codes/CMakeFiles/ldpc_codes.dir/alist.cpp.o" "gcc" "src/codes/CMakeFiles/ldpc_codes.dir/alist.cpp.o.d"
  "/root/repo/src/codes/base_matrix.cpp" "src/codes/CMakeFiles/ldpc_codes.dir/base_matrix.cpp.o" "gcc" "src/codes/CMakeFiles/ldpc_codes.dir/base_matrix.cpp.o.d"
  "/root/repo/src/codes/encoder.cpp" "src/codes/CMakeFiles/ldpc_codes.dir/encoder.cpp.o" "gcc" "src/codes/CMakeFiles/ldpc_codes.dir/encoder.cpp.o.d"
  "/root/repo/src/codes/graph_analysis.cpp" "src/codes/CMakeFiles/ldpc_codes.dir/graph_analysis.cpp.o" "gcc" "src/codes/CMakeFiles/ldpc_codes.dir/graph_analysis.cpp.o.d"
  "/root/repo/src/codes/qc_code.cpp" "src/codes/CMakeFiles/ldpc_codes.dir/qc_code.cpp.o" "gcc" "src/codes/CMakeFiles/ldpc_codes.dir/qc_code.cpp.o.d"
  "/root/repo/src/codes/random_qc.cpp" "src/codes/CMakeFiles/ldpc_codes.dir/random_qc.cpp.o" "gcc" "src/codes/CMakeFiles/ldpc_codes.dir/random_qc.cpp.o.d"
  "/root/repo/src/codes/wifi.cpp" "src/codes/CMakeFiles/ldpc_codes.dir/wifi.cpp.o" "gcc" "src/codes/CMakeFiles/ldpc_codes.dir/wifi.cpp.o.d"
  "/root/repo/src/codes/wimax.cpp" "src/codes/CMakeFiles/ldpc_codes.dir/wimax.cpp.o" "gcc" "src/codes/CMakeFiles/ldpc_codes.dir/wimax.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ldpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
