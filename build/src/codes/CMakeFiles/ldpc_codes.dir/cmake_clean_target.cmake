file(REMOVE_RECURSE
  "libldpc_codes.a"
)
