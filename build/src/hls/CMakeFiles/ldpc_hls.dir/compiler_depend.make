# Empty compiler generated dependencies file for ldpc_hls.
# This may be replaced when dependencies are built.
