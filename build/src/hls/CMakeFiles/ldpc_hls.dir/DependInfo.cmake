
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hls/hardware_report.cpp" "src/hls/CMakeFiles/ldpc_hls.dir/hardware_report.cpp.o" "gcc" "src/hls/CMakeFiles/ldpc_hls.dir/hardware_report.cpp.o.d"
  "/root/repo/src/hls/opgraph.cpp" "src/hls/CMakeFiles/ldpc_hls.dir/opgraph.cpp.o" "gcc" "src/hls/CMakeFiles/ldpc_hls.dir/opgraph.cpp.o.d"
  "/root/repo/src/hls/pico.cpp" "src/hls/CMakeFiles/ldpc_hls.dir/pico.cpp.o" "gcc" "src/hls/CMakeFiles/ldpc_hls.dir/pico.cpp.o.d"
  "/root/repo/src/hls/rtl_gen.cpp" "src/hls/CMakeFiles/ldpc_hls.dir/rtl_gen.cpp.o" "gcc" "src/hls/CMakeFiles/ldpc_hls.dir/rtl_gen.cpp.o.d"
  "/root/repo/src/hls/scheduler.cpp" "src/hls/CMakeFiles/ldpc_hls.dir/scheduler.cpp.o" "gcc" "src/hls/CMakeFiles/ldpc_hls.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codes/CMakeFiles/ldpc_codes.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ldpc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ldpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
