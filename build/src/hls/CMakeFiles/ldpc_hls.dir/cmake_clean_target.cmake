file(REMOVE_RECURSE
  "libldpc_hls.a"
)
