file(REMOVE_RECURSE
  "CMakeFiles/ldpc_hls.dir/hardware_report.cpp.o"
  "CMakeFiles/ldpc_hls.dir/hardware_report.cpp.o.d"
  "CMakeFiles/ldpc_hls.dir/opgraph.cpp.o"
  "CMakeFiles/ldpc_hls.dir/opgraph.cpp.o.d"
  "CMakeFiles/ldpc_hls.dir/pico.cpp.o"
  "CMakeFiles/ldpc_hls.dir/pico.cpp.o.d"
  "CMakeFiles/ldpc_hls.dir/rtl_gen.cpp.o"
  "CMakeFiles/ldpc_hls.dir/rtl_gen.cpp.o.d"
  "CMakeFiles/ldpc_hls.dir/scheduler.cpp.o"
  "CMakeFiles/ldpc_hls.dir/scheduler.cpp.o.d"
  "libldpc_hls.a"
  "libldpc_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldpc_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
