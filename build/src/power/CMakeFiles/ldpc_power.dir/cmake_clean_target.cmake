file(REMOVE_RECURSE
  "libldpc_power.a"
)
