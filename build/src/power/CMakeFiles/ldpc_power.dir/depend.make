# Empty dependencies file for ldpc_power.
# This may be replaced when dependencies are built.
