file(REMOVE_RECURSE
  "CMakeFiles/ldpc_power.dir/area_model.cpp.o"
  "CMakeFiles/ldpc_power.dir/area_model.cpp.o.d"
  "CMakeFiles/ldpc_power.dir/metrics.cpp.o"
  "CMakeFiles/ldpc_power.dir/metrics.cpp.o.d"
  "CMakeFiles/ldpc_power.dir/power_model.cpp.o"
  "CMakeFiles/ldpc_power.dir/power_model.cpp.o.d"
  "libldpc_power.a"
  "libldpc_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldpc_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
