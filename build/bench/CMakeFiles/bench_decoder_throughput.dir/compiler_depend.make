# Empty compiler generated dependencies file for bench_decoder_throughput.
# This may be replaced when dependencies are built.
