file(REMOVE_RECURSE
  "CMakeFiles/bench_decoder_throughput.dir/bench_decoder_throughput.cpp.o"
  "CMakeFiles/bench_decoder_throughput.dir/bench_decoder_throughput.cpp.o.d"
  "bench_decoder_throughput"
  "bench_decoder_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_decoder_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
