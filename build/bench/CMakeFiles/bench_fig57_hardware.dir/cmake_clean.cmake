file(REMOVE_RECURSE
  "CMakeFiles/bench_fig57_hardware.dir/bench_fig57_hardware.cpp.o"
  "CMakeFiles/bench_fig57_hardware.dir/bench_fig57_hardware.cpp.o.d"
  "bench_fig57_hardware"
  "bench_fig57_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig57_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
