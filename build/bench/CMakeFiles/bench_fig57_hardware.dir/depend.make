# Empty dependencies file for bench_fig57_hardware.
# This may be replaced when dependencies are built.
