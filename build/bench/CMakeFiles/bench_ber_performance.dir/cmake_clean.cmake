file(REMOVE_RECURSE
  "CMakeFiles/bench_ber_performance.dir/bench_ber_performance.cpp.o"
  "CMakeFiles/bench_ber_performance.dir/bench_ber_performance.cpp.o.d"
  "bench_ber_performance"
  "bench_ber_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ber_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
