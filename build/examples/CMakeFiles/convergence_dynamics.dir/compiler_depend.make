# Empty compiler generated dependencies file for convergence_dynamics.
# This may be replaced when dependencies are built.
