file(REMOVE_RECURSE
  "CMakeFiles/convergence_dynamics.dir/convergence_dynamics.cpp.o"
  "CMakeFiles/convergence_dynamics.dir/convergence_dynamics.cpp.o.d"
  "convergence_dynamics"
  "convergence_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convergence_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
