file(REMOVE_RECURSE
  "CMakeFiles/wimax_ber_sweep.dir/wimax_ber_sweep.cpp.o"
  "CMakeFiles/wimax_ber_sweep.dir/wimax_ber_sweep.cpp.o.d"
  "wimax_ber_sweep"
  "wimax_ber_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimax_ber_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
