# Empty dependencies file for wimax_ber_sweep.
# This may be replaced when dependencies are built.
