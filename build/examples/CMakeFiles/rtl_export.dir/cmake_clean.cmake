file(REMOVE_RECURSE
  "CMakeFiles/rtl_export.dir/rtl_export.cpp.o"
  "CMakeFiles/rtl_export.dir/rtl_export.cpp.o.d"
  "rtl_export"
  "rtl_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
