# Empty compiler generated dependencies file for rtl_export.
# This may be replaced when dependencies are built.
