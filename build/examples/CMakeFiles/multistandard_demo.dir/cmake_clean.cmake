file(REMOVE_RECURSE
  "CMakeFiles/multistandard_demo.dir/multistandard_demo.cpp.o"
  "CMakeFiles/multistandard_demo.dir/multistandard_demo.cpp.o.d"
  "multistandard_demo"
  "multistandard_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multistandard_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
