# Empty dependencies file for multistandard_demo.
# This may be replaced when dependencies are built.
