# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ber_sweep "/root/repo/build/examples/wimax_ber_sweep" "--z" "24" "--ebn0-start" "2.0" "--ebn0-stop" "2.0" "--max-frames" "30" "--workers" "1")
set_tests_properties(example_ber_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_explorer "/root/repo/build/examples/architecture_explorer" "--z" "24" "--parallelism" "24" "--iters" "4")
set_tests_properties(example_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_power_study "/root/repo/build/examples/power_study" "--z" "24" "--iters" "4")
set_tests_properties(example_power_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multistandard "/root/repo/build/examples/multistandard_demo")
set_tests_properties(example_multistandard PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_convergence "/root/repo/build/examples/convergence_dynamics" "--iters" "8")
set_tests_properties(example_convergence PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rtl_export "/root/repo/build/examples/rtl_export" "--z" "24" "--frames" "2" "--rtl" "/root/repo/build/smoke_decoder.v" "--tb" "/root/repo/build/smoke_decoder.tb")
set_tests_properties(example_rtl_export PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
