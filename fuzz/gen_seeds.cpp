// Seed-corpus generator for the fuzz harnesses.
//
// Seeds are generated from the real encoders at build-test time rather than
// committed as binaries, so they can never drift from the wire format or
// the alist dialect: when the format changes, the corpus changes with it.
// Layout under the output root:
//   <root>/wire/*.bin    inputs for fuzz_wire (leading chunk-steer byte
//                        + frame bytes, matching the harness's input shape)
//   <root>/alist/*.txt   inputs for fuzz_alist
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "codes/alist.hpp"
#include "codes/registry.hpp"
#include "service/wire.hpp"

namespace {

using namespace ldpc::service;

void write_file(const std::filesystem::path& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::cerr << "gen_seeds: failed to write " << path << "\n";
    std::exit(1);
  }
}

/// Prefix the chunk-steer byte fuzz_wire consumes before the wire bytes.
std::vector<std::uint8_t> steer(std::uint8_t chunk_byte,
                                std::vector<std::uint8_t> frame) {
  std::vector<std::uint8_t> out;
  out.reserve(frame.size() + 1);
  out.push_back(chunk_byte);
  out.insert(out.end(), frame.begin(), frame.end());
  return out;
}

std::vector<std::uint8_t> concat(std::vector<std::uint8_t> a,
                                 const std::vector<std::uint8_t>& b) {
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: " << argv[0] << " <output-root>\n";
    return 2;
  }
  const std::filesystem::path root(argv[1]);
  const std::filesystem::path wire_dir = root / "wire";
  const std::filesystem::path alist_dir = root / "alist";
  std::filesystem::create_directories(wire_dir);
  std::filesystem::create_directories(alist_dir);

  // --- Wire seeds: every frame type, whole-buffer and byte-at-a-time. ---
  DecodeRequest request;
  request.request_id = 7;
  request.tenant_id = 3;
  request.codec = CodecRef{0, 0, 96};  // wimax rate-1/2, z = 96
  request.deadline_us = 1000;
  request.llr = {1.5F, -2.25F, 0.0F, 3.0F, -0.5F, 8.0F, -8.0F, 0.125F};
  const auto request_frame = encode_decode_request(request);

  DecodeResponse response;
  response.request_id = 7;
  response.status = 0;
  response.flags = 1;
  response.iterations = 12;
  response.bit_count = 12;
  response.packed_bits = {0xAB, 0x05};
  const auto response_frame = encode_decode_response(response);

  ErrorResponse error;
  error.request_id = 9;
  error.code = WireErrorCode::kOverloaded;
  error.detail = "decode queue full";

  write_file(wire_dir / "decode_request.bin", steer(0xFF, request_frame));
  write_file(wire_dir / "decode_request_split.bin", steer(0x00, request_frame));
  write_file(wire_dir / "decode_response.bin", steer(0xFF, response_frame));
  write_file(wire_dir / "error_response.bin",
             steer(0xFF, encode_error_response(error)));
  write_file(wire_dir / "ping.bin", steer(0xFF, encode_ping(0x1122334455667788)));
  write_file(wire_dir / "pong.bin", steer(0x02, encode_pong(42)));
  write_file(wire_dir / "stats_request.bin", steer(0xFF, encode_stats_request()));
  write_file(wire_dir / "stats_response.bin",
             steer(0xFF, encode_stats_response("{\"jobs\": 1}")));
  write_file(wire_dir / "pipelined.bin",
             steer(0x03, concat(request_frame, encode_ping(1))));

  // Malformed seeds: each lands in a distinct error path.
  auto bad_magic = request_frame;
  bad_magic[4] = 'X';
  write_file(wire_dir / "bad_magic.bin", steer(0xFF, bad_magic));
  auto bad_version = request_frame;
  bad_version[6] = 0x7F;
  write_file(wire_dir / "bad_version.bin", steer(0xFF, bad_version));
  auto truncated = request_frame;
  truncated.resize(truncated.size() - 5);
  write_file(wire_dir / "truncated_tail.bin", steer(0x01, truncated));
  // Declared length over the cap: must latch kOversizedFrame on push.
  write_file(wire_dir / "oversized_prefix.bin",
             steer(0xFF, {0xFF, 0xFF, 0xFF, 0x7F, 'L', 'D', 1, 4}));

  // --- Alist seeds. ---
  const auto& names = ldpc::external_code_names();
  if (names.empty()) {
    std::cerr << "gen_seeds: external code registry is empty\n";
    return 1;
  }
  const std::string canonical = ldpc::external_code_alist(names.front());
  {
    std::ofstream out(alist_dir / "registry_code.txt");
    out << canonical;
  }
  {
    // Minimal valid matrix: H = [1 1; 0 1] in alist form.
    std::ofstream out(alist_dir / "tiny.txt");
    out << "2 2\n2 1\n1 2\n2 1\n1 2\n1 0\n1 2\n1 0\n2 0\n";
  }
  {
    std::ofstream out(alist_dir / "truncated.txt");
    out << canonical.substr(0, canonical.size() / 2);
  }
  {
    std::ofstream out(alist_dir / "negative_dims.txt");
    out << "-4 2\n1 1\n";
  }
  {
    std::ofstream out(alist_dir / "huge_dims.txt");
    out << "2000000000 2000000000\n1 1\n";
  }

  std::cout << "seed corpus written under " << root << "\n";
  return 0;
}
