// libFuzzer harness for the alist importer — the one parser in the tree
// that consumes a foreign toolchain's text format. Contract under fuzz:
// arbitrary input either yields a well-formed z = 1 code or throws
// AlistParseError; any other exception, crash, or OOM-scale allocation is a
// bug. Accepted inputs must survive the export -> import round trip.
//
// Built two ways: with -fsanitize=fuzzer under clang (LDPC_FUZZER=ON) and
// with replay_main.cpp everywhere else for the corpus-replay smoke test.
#include <cstddef>
#include <cstdint>
#include <string>

#include "codes/alist.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const ldpc::QCLdpcCode code = ldpc::alist_from_string(text);
    // Round trip: what we accepted must re-export and re-import to the same
    // shape. A mismatch means importer and exporter disagree on the format.
    const ldpc::QCLdpcCode again = ldpc::alist_from_string(to_alist(code));
    if (again.n() != code.n() || again.k() != code.k()) __builtin_trap();
  } catch (const ldpc::AlistParseError&) {
    // The designed rejection path for malformed input.
  }
  return 0;
}
