// libFuzzer harness for the wire codec: FrameReader framing plus every body
// parser. The wire layer's contract is that arbitrary bytes can never make
// it throw, over-read, or allocate beyond the validated length prefix —
// this harness feeds it exactly that, in adversarial chunk sizes, and traps
// on any contract violation (round-trip mismatch, post-fatal acceptance).
//
// Built two ways: with -fsanitize=fuzzer under clang (LDPC_FUZZER=ON) for
// coverage-guided exploration, and with replay_main.cpp everywhere else for
// the deterministic corpus-replay smoke test in check.sh.
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "service/wire.hpp"

namespace {

using namespace ldpc::service;

[[noreturn]] void trap() { __builtin_trap(); }

/// Exercise one parsed frame: dispatch to the typed body parser, and for
/// parseable bodies check the encode -> parse round trip is a fixpoint.
void exercise_frame(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kDecodeRequest: {
      DecodeRequest request;
      if (parse_decode_request(frame.body, &request) != WireErrorCode::kNone)
        return;
      const std::vector<std::uint8_t> bytes = encode_decode_request(request);
      // Strip the length prefix + payload header the encoder adds.
      DecodeRequest again;
      const std::span<const std::uint8_t> body(
          bytes.data() + 4 + kPayloadHeaderBytes,
          bytes.size() - 4 - kPayloadHeaderBytes);
      if (parse_decode_request(body, &again) != WireErrorCode::kNone) trap();
      if (again.request_id != request.request_id ||
          again.tenant_id != request.tenant_id ||
          !(again.codec == request.codec) ||
          again.llr.size() != request.llr.size())
        trap();
      return;
    }
    case FrameType::kDecodeResponse: {
      DecodeResponse response;
      if (parse_decode_response(frame.body, &response) != WireErrorCode::kNone)
        return;
      const std::vector<std::uint8_t> bytes = encode_decode_response(response);
      DecodeResponse again;
      const std::span<const std::uint8_t> body(
          bytes.data() + 4 + kPayloadHeaderBytes,
          bytes.size() - 4 - kPayloadHeaderBytes);
      if (parse_decode_response(body, &again) != WireErrorCode::kNone) trap();
      if (again.request_id != response.request_id ||
          again.bit_count != response.bit_count)
        trap();
      return;
    }
    case FrameType::kError: {
      ErrorResponse error;
      (void)parse_error_response(frame.body, &error);
      return;
    }
    case FrameType::kPing:
    case FrameType::kPong: {
      std::uint64_t nonce = 0;
      (void)parse_ping(frame.body, &nonce);
      return;
    }
    case FrameType::kStatsRequest:
      return;
    case FrameType::kStatsResponse: {
      std::string text;
      (void)parse_stats_response(frame.body, &text);
      return;
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  // First byte steers the push granularity so the fuzzer explores partial
  // header / split length-prefix states, not just whole-buffer pushes.
  const std::size_t chunk = std::size_t{1} << (data[0] % 13U);  // 1..4096
  const std::span<const std::uint8_t> input(data + 1, size - 1);

  FrameReader reader;
  bool fatal = false;
  for (std::size_t off = 0; off < input.size() && !fatal; off += chunk) {
    const std::size_t len = std::min(chunk, input.size() - off);
    if (!reader.push(input.subspan(off, len))) {
      // Oversized declared length: must be latched as a fatal error.
      if (!is_fatal(reader.fatal_error())) trap();
      fatal = true;
      break;
    }
    for (;;) {
      Frame frame;
      const FrameReader::Status status = reader.next(&frame);
      if (status == FrameReader::Status::kNeedMore) break;
      if (status == FrameReader::Status::kFatal) {
        if (!is_fatal(reader.fatal_error())) trap();
        fatal = true;
        break;
      }
      exercise_frame(frame);
    }
    // The buffered tail can never exceed one maximal frame (+ prefix).
    if (reader.buffered_bytes() > kMaxPayloadBytes + 4) trap();
  }
  if (fatal) {
    // A latched reader must refuse further bytes and report the same error.
    const std::uint8_t poke[1] = {0};
    if (reader.push(poke)) trap();
    if (!is_fatal(reader.fatal_error())) trap();
  }
  return 0;
}
