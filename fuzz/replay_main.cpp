// Standalone corpus-replay driver for the fuzz harnesses.
//
// libFuzzer supplies main() only under clang with -fsanitize=fuzzer; this
// container and CI builds without clang still need the harnesses to run so
// regressions in the parsers are caught by the committed/generated corpus.
// Each argument is a corpus file or a directory of corpus files; every file
// is fed to LLVMFuzzerTestOneInput once. Any harness trap aborts the
// process, which the smoke test reports as a failure.
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

int run_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "replay: cannot open " << path << "\n";
    return 1;
  }
  const std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " <corpus-file-or-dir>...\n";
    return 2;
  }
  std::size_t replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path path(argv[i]);
    if (std::filesystem::is_directory(path)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(path)) {
        if (!entry.is_regular_file()) continue;
        if (run_file(entry.path()) != 0) return 1;
        ++replayed;
      }
    } else {
      if (run_file(path) != 0) return 1;
      ++replayed;
    }
  }
  std::cout << "replayed " << replayed << " corpus inputs, no crashes\n";
  // An empty corpus replays nothing and proves nothing: fail loudly.
  return replayed > 0 ? 0 : 1;
}
