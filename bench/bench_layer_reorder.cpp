// Layer-reordering study: how much of the two-layer pipeline's stall
// overhead (§IV-B, Fig. 6) can be scheduled away offline.
//
// For every bundled code this bench compares three schedules at 400 MHz,
// P = z, 10 iterations:
//   natural        block rows in standard order, block-serial columns
//   hazard-aware   natural layer order, free-columns-first column order
//   reordered      layer permutation found by the static optimizer
//                  (analysis/layer_reorder.hpp), block-serial columns
// Each schedule is both predicted by the static timing model and measured
// in the cycle-accurate simulator; the pairs must agree cycle-exactly
// (tests/analysis_test.cpp asserts this — here the table shows it).
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/layer_reorder.hpp"
#include "analysis/pipeline_model.hpp"
#include "bench/bench_common.hpp"
#include "codes/wifi.hpp"
#include "util/table.hpp"

using namespace ldpc;

namespace {

struct Named {
  std::string name;
  QCLdpcCode code;
};

long long measure_cycles(const QCLdpcCode& code, const HardwareEstimate& est,
                         bool hazard_order, long long* stalls) {
  DecoderOptions opt;
  opt.max_iterations = 10;
  opt.early_termination = false;
  const FixedFormat fmt{8, 2};
  ArchSimDecoder sim(code, est, opt, fmt, ArchSimConfig{hazard_order});
  // Timing is data independent; a constant frame avoids re-encoding per
  // permuted code (RuEncoder assumes the natural row order).
  const std::vector<std::int32_t> frame(code.n(), 9);
  const auto run = sim.decode_quantized(frame);
  *stalls = run.activity.core1_stall_cycles;
  return run.activity.cycles;
}

}  // namespace

int main() {
  std::vector<Named> codes;
  for (WimaxRate rate : all_wimax_rates())
    codes.push_back(Named{wimax_rate_name(rate), make_wimax_code(rate, 96)});
  codes.push_back(Named{"wifi-648", make_wifi_648_half_rate()});
  codes.push_back(Named{"wifi-1944", make_wifi_1944_half_rate()});

  TextTable table(
      "Layer reordering vs column reordering — two-layer pipeline, 400 MHz, "
      "P = z, 10 iterations (predicted == measured for every cell)");
  table.set_header({"code", "schedule", "stalls", "cycles", "vs natural",
                    "permutation"});

  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  for (const Named& entry : codes) {
    const QCLdpcCode& code = entry.code;
    const auto est =
        pico.compile(code, ArchKind::kTwoLayerPipelined,
                     HardwareTarget{400.0, code.z()});

    long long natural_stalls = 0;
    const long long natural_cycles =
        measure_cycles(code, est, false, &natural_stalls);
    long long hazard_stalls = 0;
    const long long hazard_cycles =
        measure_cycles(code, est, true, &hazard_stalls);

    const auto opt = optimize_layer_order(code, est,
                                          ColumnOrderPolicy::kBlockSerial, 10);
    const QCLdpcCode reordered(code.base().permuted_rows(opt.permutation));
    long long reordered_stalls = 0;
    const long long reordered_cycles =
        measure_cycles(reordered, est, false, &reordered_stalls);
    if (reordered_stalls != opt.best_stalls ||
        reordered_cycles != opt.best_cycles) {
      std::fprintf(stderr,
                   "%s: prediction diverged from measurement "
                   "(predicted %lld/%lld, measured %lld/%lld)\n",
                   entry.name.c_str(), opt.best_stalls, opt.best_cycles,
                   reordered_stalls, reordered_cycles);
      return 1;
    }

    std::string perm;
    for (std::size_t p : opt.permutation)
      perm += (perm.empty() ? "" : " ") + std::to_string(p);

    const auto speedup = [natural_cycles](long long cycles) {
      return TextTable::percent(
          1.0 - static_cast<double>(cycles) / static_cast<double>(natural_cycles));
    };
    table.add_row({entry.name, "natural", TextTable::integer(natural_stalls),
                   TextTable::integer(natural_cycles), "-", "identity"});
    table.add_row({"", "hazard-aware cols", TextTable::integer(hazard_stalls),
                   TextTable::integer(hazard_cycles), speedup(hazard_cycles),
                   "identity"});
    table.add_row({"", "reordered layers", TextTable::integer(reordered_stalls),
                   TextTable::integer(reordered_cycles),
                   speedup(reordered_cycles), perm});
    table.add_rule();
  }
  std::fputs(table.str().c_str(), stdout);

  std::printf(
      "\nLayer reordering permutes base-matrix block rows (the decoding\n"
      "schedule), which leaves the code and its BER unchanged while\n"
      "minimizing the block columns consecutive layers share — the RAW\n"
      "hazards the §IV-B scoreboard turns into core-1 stalls.\n");
  return 0;
}
