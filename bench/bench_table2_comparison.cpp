// Table II reproduction: implementation results of the two-layer pipelined
// WiMAX decoder versus the hand-designed decoders [2] (Rovini et al.,
// GLOBECOM'07) and [3] (Brack et al., DATE'07).
//
// Our column is measured end-to-end: the cycle-accurate simulator supplies
// cycles (with the hazard-aware column order a production matrix ROM would
// use), the PICO model supplies structure, and the 65 nm area/power models
// price it. The [2]/[3] columns and the paper's own column are constants
// from the publication, reproduced for the side-by-side comparison.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "power/area_model.hpp"
#include "power/metrics.hpp"
#include "power/power_model.hpp"
#include "util/table.hpp"

using namespace ldpc;

int main() {
  const auto code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  const double mhz = 400.0;
  const std::size_t iterations = 10;  // the paper's Table II operating point

  const auto est =
      pico.compile(code, ArchKind::kTwoLayerPipelined, HardwareTarget{mhz, 96});
  const auto run = bench::run_design_point(code, ArchKind::kTwoLayerPipelined,
                                           mhz, 96, fmt, /*reorder=*/true,
                                           iterations);

  const long long sram_bits = bench::flexible_decoder_sram_bits();
  const AreaModel area_model;
  const auto area = area_model.estimate(est, sram_bits);
  const PowerModel power_model;
  const auto power =
      power_model.estimate(est, run.activity, area.std_cells_mm2, true);

  const double lat_us = latency_us(run.activity.cycles, mhz);
  const double tput = info_throughput_mbps(code.k(), run.activity.cycles, mhz);
  // Peak power: worst case over gating states plus the SRAM complement.
  const auto peak = power_model.estimate(est, run.activity, area.std_cells_mm2,
                                         false);

  TextTable table("Table II — comparison with existing LDPC decoders");
  table.set_header(
      {"Metric", "This repro (measured)", "Paper (this work)", "[2] Rovini", "[3] Brack"});
  table.add_row({"Core area", TextTable::num(area.core_mm2, 2) + " mm2",
                 "1.2 mm2", "0.74 mm2", "1.337 mm2"});
  table.add_row({"  std cells", TextTable::num(area.std_cells_mm2, 2) + " mm2",
                 "n/a", "n/a", "n/a"});
  table.add_row({"  SRAM", TextTable::num(area.sram_mm2, 2) + " mm2", "n/a",
                 "n/a", "0.551 mm2"});
  table.add_row({"Max frequency", TextTable::num(mhz, 0) + " MHz", "400 MHz",
                 "240 MHz", "400 MHz"});
  table.add_row({"Power (sustained)",
                 TextTable::num(power.total_with_sram_mw, 0) + " mW",
                 "180 mW (peak)", "235 mW", "NA"});
  table.add_row({"  peak (ungated, +SRAM)",
                 TextTable::num(peak.total_with_sram_mw, 0) + " mW", "180 mW",
                 "n/a", "n/a"});
  table.add_row({"Technology", "65 nm (model)", "65 nm", "65 nm", "65 nm"});
  table.add_row({"Quantization", std::to_string(fmt.total_bits), "6", "5", "6"});
  table.add_row({"Iterations", TextTable::integer(static_cast<long long>(iterations)),
                 "10", "13", "25-20"});
  table.add_row({"Max code length", TextTable::integer(static_cast<long long>(code.n())),
                 "2304", "1944", "2304"});
  table.add_row({"Memory (SRAM)", TextTable::integer(sram_bits) + " bit",
                 "82,944 bit", "68,256 bit", "0.551 mm2"});
  table.add_row({"Max throughput @ R=1/2", TextTable::num(tput, 0) + " Mbps",
                 "415 Mbps", "178 Mbps", "333 Mbps"});
  table.add_row({"Max latency @ R=1/2", TextTable::num(lat_us, 2) + " us",
                 "2.8 us", "5.75 us", "6.0 us"});
  std::fputs(table.str().c_str(), stdout);

  std::printf(
      "\nMeasured detail: %lld cycles for %zu iterations (%.1f cycles/iter),\n"
      "%lld scoreboard stall cycles, energy %.0f pJ/info bit.\n"
      "Memory note: our multi-rate R memory provisions %zu slots (the max\n"
      "over the six 802.16e families in our tables) vs the paper's 84 —\n"
      "a 3.7%% difference in SRAM bits.\n",
      run.activity.cycles, iterations,
      static_cast<double>(run.activity.cycles) / static_cast<double>(iterations),
      run.activity.core1_stall_cycles,
      energy_per_bit_pj(power.total_with_sram_mw, tput), wimax_max_r_slots());
  return 0;
}
