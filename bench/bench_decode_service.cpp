// Load generator + robustness acceptance bench for the network decode
// service (src/service/).
//
// Three scenarios against an in-process loopback server:
//
//   baseline     closed-loop interactive tenant alone: decode round trips
//                across the whole codec mix (WiMAX, WiFi, registry codes),
//                per-request deadlines, client-side latency percentiles.
//   overload_2x  the same interactive tenant plus a bursty bulk tenant
//                offering far more heavy (2304, 1/2) z = 96 work than the
//                engine can absorb, through an open-loop pipelined window.
//                The bulk tenant is capped by admission control (small
//                in-flight quota, shed-oldest wait line) so it degrades
//                itself; the acceptance gate is that the interactive
//                tenant keeps >= 90% of its baseline goodput.
//   chaos        baseline traffic while hostile clients inject malformed
//                frames (recoverable and fatal), disconnect mid-request,
//                pipeline a deadline storm, and every worker decodes with a
//                low-rate fault injector armed. The gate: every request the
//                well-behaved clients sent resolves (no timeouts), the
//                server still answers ping/stats, and shutdown drains with
//                zero stragglers.
//
// Results go to BENCH_decode_service.json (one row per scenario); the
// process exits non-zero when an acceptance gate fails, so check.sh can use
// a short run as a smoke test.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/decoder.hpp"
#include "fault/fault_injector.hpp"
#include "service/client.hpp"
#include "service/service.hpp"
#include "util/check.hpp"

using namespace ldpc;
using namespace ldpc::service;
using SteadyClock = std::chrono::steady_clock;

namespace {

constexpr std::uint32_t kInteractiveTenant = 1;
constexpr std::uint32_t kBulkTenant = 2;
constexpr std::uint32_t kStormTenant = 3;

/// The interactive mix: every bundled family, smallest instances, noiseless
/// zero-codeword LLRs (+4 = strong bit 0) so a decode is one syndrome pass.
struct MixEntry {
  CodecRef codec;
  std::size_t n;
};
const MixEntry kInteractiveMix[] = {
    {{static_cast<std::uint8_t>(CodeStandard::kWimax), 0, 24}, 576},
    {{static_cast<std::uint8_t>(CodeStandard::kWifi), 0, 27}, 648},
    {{static_cast<std::uint8_t>(CodeStandard::kRegistry), 0, 1}, 174},
    {{static_cast<std::uint8_t>(CodeStandard::kRegistry), 1, 1}, 32},
};

/// One worker-thread fault injector, wired into every decoder the service
/// builds on that thread (chaos scenario only). The rate is low enough that
/// most frames decode clean; hit frames surface as kFaultDetected — a typed
/// resolution, never silence.
FaultInjector& tls_injector() {
  thread_local FaultInjector injector{[] {
    FaultConfig config;
    config.rate = 0.0005;
    config.kind = FaultKind::kTransientFlip;
    config.sites = kAllFaultSites;
    return config;
  }()};
  return injector;
}

ServiceConfig make_config(unsigned workers, bool with_faults) {
  ServiceConfig cfg;
  cfg.engine.num_workers = workers;
  cfg.engine.queue_capacity = 128;
  TenantConfig interactive;
  interactive.policy = OverloadPolicy::kBlock;
  interactive.max_in_flight = 8;
  cfg.tenants[kInteractiveTenant] = interactive;
  TenantConfig bulk;
  bulk.policy = OverloadPolicy::kShedOldest;
  bulk.max_in_flight = 2;  // heavy frames may hold at most half the workers
  bulk.max_parked = 4;
  bulk.rate_per_sec = 1500.0;  // well past decode capacity, but bounded
  bulk.burst = 64.0;
  cfg.tenants[kBulkTenant] = bulk;
  if (with_faults)
    cfg.decoder_options_hook = [](DecoderOptions& options) {
      options.fault_injector = &tls_injector();
    };
  return cfg;
}

/// Heavy work for the bulk tenant: noisy (2304, 1/2) z = 96 frames in the
/// waterfall region — many iterations each, some never converge.
std::vector<std::vector<float>> make_heavy_frames(std::size_t count) {
  const auto code = make_wimax_2304_half_rate();
  const float variance = awgn_noise_variance(1.2F, code.rate());
  const BitVec zero(code.n());
  std::vector<std::vector<float>> frames;
  frames.reserve(count);
  for (std::size_t f = 0; f < count; ++f) {
    AwgnChannel awgn(variance, 7000 + f);
    frames.push_back(BpskModem::demodulate(
        awgn.transmit(BpskModem::modulate(zero)), variance));
  }
  return frames;
}

struct ClosedLoopReport {
  std::size_t sent = 0;
  std::size_t decode_ok = 0;      ///< converged within its deadline
  std::size_t typed_errors = 0;   ///< kError resolutions
  std::size_t deadline_misses = 0;
  std::size_t timeouts = 0;  ///< decode() gave up — an exactly-once breach
  std::vector<double> latencies_ms;
};

/// Paced closed-loop interactive client: one request in flight, sent on a
/// fixed absolute schedule (the tenant's *offered load*, which overload
/// must not erode), 50 ms deadline, cycling the codec mix. Goodput counts
/// only decodes that converged — an expired or refused request is lost
/// work, not goodput.
ClosedLoopReport run_closed_loop(std::uint16_t port, std::uint64_t id_base,
                                 std::chrono::microseconds interval,
                                 const std::atomic<bool>& stop) {
  ClosedLoopReport report;
  BlockingClient client;
  client.connect("127.0.0.1", port);
  std::uint64_t next_id = id_base;
  std::size_t mix = 0;
  const auto start = SteadyClock::now();
  std::size_t tick = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    // Absolute schedule: a slow response delays one tick, not every later
    // one — the client catches back up to its offered rate.
    std::this_thread::sleep_until(start + interval * tick++);
    const MixEntry& entry = kInteractiveMix[mix++ % std::size(kInteractiveMix)];
    DecodeRequest request;
    request.request_id = next_id++;
    request.tenant_id = kInteractiveTenant;
    request.codec = entry.codec;
    request.deadline_us = 50'000;
    request.llr.assign(entry.n, 4.0F);
    const auto t0 = SteadyClock::now();
    const auto outcome = client.decode(request, std::chrono::seconds(5));
    const auto t1 = SteadyClock::now();
    ++report.sent;
    if (!outcome) {
      ++report.timeouts;
      continue;
    }
    report.latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    if (outcome->is_error) {
      ++report.typed_errors;
      if (outcome->error.code == WireErrorCode::kDeadlineUnmeetable)
        ++report.deadline_misses;
    } else if (outcome->response.status ==
               static_cast<std::uint8_t>(DecodeStatus::kDeadlineExpired)) {
      ++report.deadline_misses;
    } else {
      ++report.decode_ok;
    }
  }
  return report;
}

struct OpenLoopReport {
  std::size_t sent = 0;
  std::size_t decode_responses = 0;
  std::size_t shed = 0;
  std::size_t quota_rejected = 0;
  std::size_t overloaded = 0;
  std::size_t rate_limited = 0;
  std::size_t deadline_refused = 0;
  std::size_t other_errors = 0;
};

/// Open-loop pipelined client: keeps `window` requests outstanding with no
/// pacing — deliberately more than its tenant's quota so the admission
/// machinery (park, shed-oldest, refusals) is what resolves most of them.
OpenLoopReport run_open_loop(std::uint16_t port, std::uint32_t tenant,
                             std::uint64_t id_base, std::size_t window,
                             const CodecRef& codec,
                             const std::vector<std::vector<float>>& frames,
                             std::uint32_t deadline_us,
                             const std::atomic<bool>& stop) {
  OpenLoopReport report;
  BlockingClient client;
  client.connect("127.0.0.1", port);
  std::set<std::uint64_t> outstanding;
  std::uint64_t next_id = id_base;
  std::size_t frame_index = 0;

  auto absorb = [&](const OwnedFrame& frame) {
    if (frame.type == FrameType::kDecodeResponse) {
      DecodeResponse response;
      if (parse_decode_response(frame.body, &response) == WireErrorCode::kNone) {
        outstanding.erase(response.request_id);
        ++report.decode_responses;
      }
      return;
    }
    if (frame.type != FrameType::kError) return;
    ErrorResponse error;
    if (parse_error_response(frame.body, &error) != WireErrorCode::kNone)
      return;
    outstanding.erase(error.request_id);
    switch (error.code) {
      case WireErrorCode::kShedOverload: ++report.shed; break;
      case WireErrorCode::kQuotaExceeded: ++report.quota_rejected; break;
      case WireErrorCode::kOverloaded: ++report.overloaded; break;
      case WireErrorCode::kRateLimited: ++report.rate_limited; break;
      case WireErrorCode::kDeadlineUnmeetable: ++report.deadline_refused; break;
      default: ++report.other_errors; break;
    }
  };

  while (!stop.load(std::memory_order_relaxed)) {
    while (outstanding.size() < window &&
           !stop.load(std::memory_order_relaxed)) {
      DecodeRequest request;
      request.request_id = next_id++;
      request.tenant_id = tenant;
      request.codec = codec;
      request.deadline_us = deadline_us;
      request.llr = frames[frame_index++ % frames.size()];
      if (!client.send_raw(encode_decode_request(request))) return report;
      outstanding.insert(request.request_id);
      ++report.sent;
    }
    if (const auto frame = client.read_frame(std::chrono::milliseconds(5)))
      absorb(*frame);
  }
  // Drain what the server still owes us so its accounting can settle.
  const auto give_up = SteadyClock::now() + std::chrono::seconds(3);
  while (!outstanding.empty() && SteadyClock::now() < give_up) {
    const auto frame = client.read_frame(std::chrono::milliseconds(50));
    if (frame) absorb(*frame);
  }
  return report;
}

/// A complete wire frame around an arbitrary payload body.
std::vector<std::uint8_t> raw_frame(std::uint8_t type,
                                    std::initializer_list<std::uint8_t> body) {
  std::vector<std::uint8_t> bytes;
  const std::uint32_t len =
      static_cast<std::uint32_t>(kPayloadHeaderBytes + body.size());
  for (int i = 0; i < 4; ++i)
    bytes.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  bytes.push_back(kMagic0);
  bytes.push_back(kMagic1);
  bytes.push_back(kWireVersion);
  bytes.push_back(type);
  bytes.insert(bytes.end(), body);
  return bytes;
}

struct HostileReport {
  std::size_t malformed_sent = 0;
  std::size_t typed_error_replies = 0;
  std::size_t fatal_reconnects = 0;
  std::size_t disconnects = 0;
};

/// Malformed-frame injector: recoverable garbage (bad type, truncated
/// decode body) on a long-lived connection, periodically a fatal frame
/// (bad magic) that earns one goodbye and a close, then reconnect.
HostileReport run_malformed_injector(std::uint16_t port,
                                     const std::atomic<bool>& stop) {
  HostileReport report;
  BlockingClient client;
  client.connect("127.0.0.1", port);
  std::size_t step = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    const std::size_t kind = step++ % 3;
    if (kind == 2) {
      // Fatal: wrong magic. One kBadMagic reply, then EOF.
      const std::vector<std::uint8_t> bad = {8, 0, 0, 0, 'X', 'D',
                                             1, 1, 0,   0,   0, 0};
      client.send_raw(bad);
      ++report.malformed_sent;
      while (const auto frame = client.read_frame(std::chrono::milliseconds(200)))
        if (frame->type == FrameType::kError) ++report.typed_error_replies;
      client.close();
      client.connect("127.0.0.1", port);
      ++report.fatal_reconnects;
      continue;
    }
    const auto frame = kind == 0
                           ? raw_frame(/*bad type*/ 0x63, {1, 2, 3})
                           : raw_frame(static_cast<std::uint8_t>(
                                           FrameType::kDecodeRequest),
                                       {1, 2, 3, 4});  // truncated body
    if (!client.send_raw(frame)) {
      client.close();
      client.connect("127.0.0.1", port);
      continue;
    }
    ++report.malformed_sent;
    if (const auto reply = client.read_frame(std::chrono::milliseconds(500)))
      if (reply->type == FrameType::kError) ++report.typed_error_replies;
  }
  return report;
}

/// Mid-request disconnector: half a frame then RST-ish close, or a full
/// request and close before reading the response — both orphan server-side
/// state that must be reclaimed without wedging anything.
HostileReport run_disconnector(std::uint16_t port,
                               const std::atomic<bool>& stop) {
  HostileReport report;
  DecodeRequest request;
  request.tenant_id = kInteractiveTenant;
  request.codec = kInteractiveMix[3].codec;
  request.llr.assign(kInteractiveMix[3].n, 4.0F);
  std::uint64_t id = 1;
  while (!stop.load(std::memory_order_relaxed)) {
    request.request_id = id++;
    const auto bytes = encode_decode_request(request);
    BlockingClient client;
    client.connect("127.0.0.1", port);
    if (id % 2 == 0) {
      client.send_raw(std::span(bytes).first(bytes.size() / 2));
    } else {
      client.send_raw(bytes);
    }
    client.close();
    ++report.disconnects;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return report;
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto index = std::min(values.size() - 1,
                              static_cast<std::size_t>(q * values.size()));
  return values[index];
}

struct ScenarioResult {
  ClosedLoopReport interactive;
  double seconds = 0.0;
  double goodput_per_sec = 0.0;
};

/// Run `extra` hostile/bulk workers alongside two closed-loop interactive
/// clients for `seconds`, then stop everything and return the merged
/// interactive report.
template <typename ExtraFn>
ScenarioResult run_scenario(std::uint16_t port, double seconds,
                            std::chrono::microseconds interval,
                            ExtraFn&& extra) {
  std::atomic<bool> stop{false};
  ClosedLoopReport a, b;
  std::thread ta([&] { a = run_closed_loop(port, 1ULL << 32, interval, stop); });
  std::thread tb([&] { b = run_closed_loop(port, 2ULL << 32, interval, stop); });
  const auto t0 = SteadyClock::now();
  extra(stop);
  std::this_thread::sleep_for(
      std::chrono::duration<double>(seconds));
  stop.store(true);
  ta.join();
  tb.join();
  const double elapsed =
      std::chrono::duration<double>(SteadyClock::now() - t0).count();

  ScenarioResult result;
  result.interactive = a;
  result.interactive.sent += b.sent;
  result.interactive.decode_ok += b.decode_ok;
  result.interactive.typed_errors += b.typed_errors;
  result.interactive.deadline_misses += b.deadline_misses;
  result.interactive.timeouts += b.timeouts;
  result.interactive.latencies_ms.insert(result.interactive.latencies_ms.end(),
                                         b.latencies_ms.begin(),
                                         b.latencies_ms.end());
  result.seconds = elapsed;
  result.goodput_per_sec =
      static_cast<double>(result.interactive.decode_ok) / elapsed;
  return result;
}

void add_interactive_row(bench::JsonReporter& json, const char* scenario,
                         const ScenarioResult& result) {
  const auto& r = result.interactive;
  json.add_row()
      .set("scenario", scenario)
      .set("seconds", result.seconds)
      .set("requests", r.sent)
      .set("decode_ok", r.decode_ok)
      .set("typed_errors", r.typed_errors)
      .set("deadline_misses", r.deadline_misses)
      .set("timeouts", r.timeouts)
      .set("goodput_per_sec", result.goodput_per_sec)
      .set("deadline_miss_rate",
           r.sent ? static_cast<double>(r.deadline_misses) / r.sent : 0.0)
      .set("p50_ms", percentile(r.latencies_ms, 0.50))
      .set("p95_ms", percentile(r.latencies_ms, 0.95))
      .set("p99_ms", percentile(r.latencies_ms, 0.99));
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 1.2;
  unsigned workers = 4;
  double interval_ms = 15.0;  // per interactive client: ~133 req/s offered
  bool perf_gate = true;
  std::string json_path = "BENCH_decode_service.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      LDPC_CHECK_MSG(i + 1 < argc, arg << " needs a value");
      return argv[++i];
    };
    if (arg == "--seconds") seconds = std::stod(value());
    else if (arg == "--workers") workers = static_cast<unsigned>(std::stoul(value()));
    else if (arg == "--interval-ms") interval_ms = std::stod(value());
    else if (arg == "--json") json_path = value();
    // Sanitizer smoke runs: every robustness invariant still holds, but
    // instrumented latencies make a goodput-ratio gate meaningless.
    else if (arg == "--skip-perf-gate") perf_gate = false;
    else LDPC_CHECK_MSG(false, "unknown argument " << arg);
  }
  const auto interval =
      std::chrono::microseconds(static_cast<long>(interval_ms * 1000.0));

  bench::JsonReporter json;
  bool pass = true;

  // --- baseline: interactive tenant alone ---------------------------------
  double baseline_goodput = 0.0;
  {
    DecodeService server(make_config(workers, /*with_faults=*/false));
    server.start();
    const auto result = run_scenario(server.port(), seconds, interval,
                                     [](std::atomic<bool>&) {});
    baseline_goodput = result.goodput_per_sec;
    add_interactive_row(json, "baseline", result);
    std::printf("baseline     %7.0f decodes/s  p50 %.3f ms  p99 %.3f ms\n",
                result.goodput_per_sec,
                percentile(result.interactive.latencies_ms, 0.50),
                percentile(result.interactive.latencies_ms, 0.99));
    server.shutdown_after(std::chrono::seconds(2));
  }

  // --- overload_2x: add a bursty bulk tenant far past capacity ------------
  {
    DecodeService server(make_config(workers, /*with_faults=*/false));
    server.start();
    const auto heavy = make_heavy_frames(8);
    const CodecRef bulk_codec{static_cast<std::uint8_t>(CodeStandard::kWimax),
                              0, 96};
    OpenLoopReport bulk1, bulk2;
    std::thread t1, t2;
    const auto result = run_scenario(
        server.port(), seconds, interval, [&](std::atomic<bool>& stop) {
          t1 = std::thread([&] {
            bulk1 = run_open_loop(server.port(), kBulkTenant, 5ULL << 32, 10,
                                  bulk_codec, heavy, 0, stop);
          });
          t2 = std::thread([&] {
            bulk2 = run_open_loop(server.port(), kBulkTenant, 6ULL << 32, 10,
                                  bulk_codec, heavy, 0, stop);
          });
        });
    t1.join();
    t2.join();
    const double ratio =
        baseline_goodput > 0.0 ? result.goodput_per_sec / baseline_goodput : 0.0;
    add_interactive_row(json, "overload_2x", result);
    json.add_row()
        .set("scenario", "overload_2x_bulk")
        .set("bulk_sent", bulk1.sent + bulk2.sent)
        .set("bulk_decoded", bulk1.decode_responses + bulk2.decode_responses)
        .set("bulk_shed", bulk1.shed + bulk2.shed)
        .set("bulk_quota_rejected",
             bulk1.quota_rejected + bulk2.quota_rejected)
        .set("bulk_overloaded", bulk1.overloaded + bulk2.overloaded)
        .set("bulk_rate_limited", bulk1.rate_limited + bulk2.rate_limited)
        .set("compliant_goodput_ratio", ratio);
    std::printf(
        "overload_2x  %7.0f decodes/s  ratio %.3f  (bulk: %zu sent, %zu "
        "decoded, %zu shed, %zu quota)\n",
        result.goodput_per_sec, ratio, bulk1.sent + bulk2.sent,
        bulk1.decode_responses + bulk2.decode_responses,
        bulk1.shed + bulk2.shed,
        bulk1.quota_rejected + bulk2.quota_rejected);
    if (perf_gate && ratio < 0.90) {
      std::printf("FAIL: compliant tenant kept only %.1f%% of baseline "
                  "goodput (gate: 90%%)\n",
                  100.0 * ratio);
      pass = false;
    }
    const auto report = server.shutdown_after(std::chrono::seconds(2));
    if (!report.straggler_frames.empty()) pass = false;
  }

  // --- chaos: hostile clients + worker faults -----------------------------
  {
    DecodeService server(make_config(workers, /*with_faults=*/true));
    server.start();
    const CodecRef storm_codec{
        static_cast<std::uint8_t>(CodeStandard::kRegistry), 0, 1};
    const std::vector<std::vector<float>> storm_frames = {
        std::vector<float>(174, 4.0F)};
    HostileReport malformed, disconnects;
    OpenLoopReport storm;
    std::thread tm, td, ts;
    const auto result = run_scenario(
        server.port(), seconds, interval, [&](std::atomic<bool>& stop) {
          tm = std::thread(
              [&] { malformed = run_malformed_injector(server.port(), stop); });
          td = std::thread(
              [&] { disconnects = run_disconnector(server.port(), stop); });
          ts = std::thread([&] {
            storm = run_open_loop(server.port(), kStormTenant, 7ULL << 32, 8,
                                  storm_codec, storm_frames,
                                  /*deadline_us=*/1, stop);
          });
        });
    tm.join();
    td.join();
    ts.join();

    // The server must still be fully alive after all of that.
    BlockingClient probe;
    probe.connect("127.0.0.1", server.port());
    const bool ping_ok =
        probe.ping(0xC0FFEE, std::chrono::seconds(2)).has_value();
    const bool stats_ok = probe.stats(std::chrono::seconds(2)).has_value();
    const auto report = server.shutdown_after(std::chrono::seconds(3));

    add_interactive_row(json, "chaos", result);
    json.add_row()
        .set("scenario", "chaos_hostile")
        .set("malformed_sent", malformed.malformed_sent)
        .set("typed_error_replies", malformed.typed_error_replies)
        .set("fatal_reconnects", malformed.fatal_reconnects)
        .set("disconnects", disconnects.disconnects)
        .set("storm_sent", storm.sent)
        .set("storm_deadline_refused", storm.deadline_refused)
        .set("ping_after_chaos", ping_ok)
        .set("drain_stragglers", report.straggler_frames.size());

    std::printf(
        "chaos        %7.0f decodes/s  %zu malformed, %zu reconnects, %zu "
        "disconnects, %zu storm\n",
        result.goodput_per_sec, malformed.malformed_sent,
        malformed.fatal_reconnects, disconnects.disconnects, storm.sent);
    if (result.interactive.timeouts != 0) {
      std::printf("FAIL: %zu interactive requests never resolved\n",
                  result.interactive.timeouts);
      pass = false;
    }
    if (!ping_ok || !stats_ok) {
      std::printf("FAIL: server unresponsive after chaos\n");
      pass = false;
    }
    if (!report.straggler_frames.empty()) {
      std::printf("FAIL: %zu stragglers at drain\n",
                  report.straggler_frames.size());
      pass = false;
    }
  }

  json.write(json_path);
  std::printf("%s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
