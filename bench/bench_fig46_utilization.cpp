// Fig. 4 / Fig. 6 reproduction: core utilization under the two schedules.
//
// Fig. 4 (per-layer): core 1 idles while core 2 drains a layer and vice
// versa — roughly 50% utilization. Fig. 6 (two-layer pipelined): core 1 of
// layer n+1 overlaps core 2 of layer n, raising utilization at the cost of
// scoreboard stalls. This bench measures both from the cycle-accurate
// simulator, with and without the hazard-aware column ordering.
#include <cstdio>

#include "arch/trace.hpp"
#include "bench/bench_common.hpp"
#include "util/table.hpp"

using namespace ldpc;

namespace {

// Render the first few layers of the measured schedule — the simulated
// equivalent of the paper's Fig. 4 / Fig. 6 timing diagrams.
void print_timeline(const QCLdpcCode& code, ArchKind arch, const char* title) {
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  const auto est = pico.compile(code, arch, HardwareTarget{400.0, 96});
  DecoderOptions opt;
  opt.max_iterations = 2;
  opt.early_termination = false;
  ArchSimConfig sim_cfg;
  sim_cfg.record_trace = true;
  ArchSimDecoder sim(code, est, opt, fmt, sim_cfg);
  const auto frame = ldpc::bench::quantized_frame(code, fmt, 2.0F, 42);
  sim.decode_quantized(frame);
  std::printf("\n%s (first 3 layers; digits = layer, x = stall, . = idle)\n%s",
              title, render_timeline(sim.trace(), 0, 56).c_str());
}

}  // namespace

int main() {
  const auto code = make_wimax_2304_half_rate();

  TextTable table(
      "Fig. 4/6 — core utilization and stalls (WiMAX (2304, 1/2), 400 MHz, "
      "10 iterations)");
  table.set_header({"architecture", "column order", "cycles/iter",
                    "core1 util", "core2 util", "stall cycles/iter"});

  struct Case {
    ArchKind arch;
    bool reorder;
    const char* order_name;
  };
  const Case cases[] = {
      {ArchKind::kPerLayer, false, "block-serial"},
      {ArchKind::kTwoLayerPipelined, false, "block-serial"},
      {ArchKind::kTwoLayerPipelined, true, "hazard-aware"},
  };

  for (const Case& c : cases) {
    const auto run = bench::run_design_point(code, c.arch, 400.0, 96,
                                             FixedFormat{8, 2}, c.reorder);
    const double iters = static_cast<double>(run.activity.iterations);
    table.add_row(
        {arch_name(c.arch), c.order_name,
         TextTable::num(static_cast<double>(run.activity.cycles) / iters, 1),
         TextTable::percent(run.activity.core1_utilization()),
         TextTable::percent(run.activity.core2_utilization()),
         TextTable::num(static_cast<double>(run.activity.core1_stall_cycles) / iters,
                        1)});
  }
  std::fputs(table.str().c_str(), stdout);
  print_timeline(code, ArchKind::kPerLayer,
                 "Fig. 4 — per-layer schedule (measured)");
  print_timeline(code, ArchKind::kTwoLayerPipelined,
                 "Fig. 6 — two-layer pipelined schedule (measured)");
  std::puts(
      "\nExpected shape (paper): per-layer cores sit near 50% utilization\n"
      "(Fig. 4 — each core waits for the other stage); the pipelined schedule\n"
      "overlaps the stages (Fig. 6), pushing utilization well above 50% and\n"
      "cutting cycles per iteration by roughly a third to a half, at the cost\n"
      "of scoreboard stalls on read-after-write hazards.");
  return 0;
}
