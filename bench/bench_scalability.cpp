// Scalability sweep — the "scalable" in the paper's title, quantified along
// both axes the architecture supports:
//   (a) code length: all 19 WiMAX expansion factors z = 24..96 through the
//       same pipelined architecture (parallelism = z);
//   (b) datapath parallelism at fixed code: every divisor of z = 96.
// Prints cycles, throughput and the datapath/storage scaling for each point.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "power/area_model.hpp"
#include "power/metrics.hpp"
#include "util/table.hpp"

using namespace ldpc;

int main() {
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  const AreaModel area_model;

  // ---- (a) code-length scaling ---------------------------------------------
  TextTable len_table(
      "Scalability (a) — code length sweep (rate 1/2, pipelined @ 400 MHz, "
      "parallelism = z, 10 iterations, hazard-aware order)");
  len_table.set_header({"z", "n", "cycles/iter", "latency (us)",
                        "info tput (Mbps)", "P+R bits"});
  for (int z : wimax_z_values()) {
    if (z % 8 != 0) continue;  // every other point keeps the table compact
    const auto code = make_wimax_code(WimaxRate::kRate1_2, z);
    const auto run = bench::run_design_point(code, ArchKind::kTwoLayerPipelined,
                                             400.0, z, fmt, true);
    const double it = static_cast<double>(run.activity.iterations);
    const long long bits =
        (24LL + static_cast<long long>(code.base().nonzero_blocks())) * z * 8;
    len_table.add_row(
        {TextTable::integer(z), TextTable::integer(static_cast<long long>(code.n())),
         TextTable::num(static_cast<double>(run.activity.cycles) / it, 1),
         TextTable::num(latency_us(run.activity.cycles, 400.0), 2),
         TextTable::num(info_throughput_mbps(code.k(), run.activity.cycles, 400.0), 0),
         TextTable::integer(bits)});
  }
  std::fputs(len_table.str().c_str(), stdout);
  std::puts(
      "Expected: cycles/iteration is nearly independent of z (same block\n"
      "count per layer; the z lanes work in parallel), so throughput grows\n"
      "linearly with code length — the block-structured scaling argument.\n");

  // ---- (b) parallelism scaling ---------------------------------------------
  const auto code = make_wimax_2304_half_rate();
  TextTable par_table(
      "Scalability (b) — datapath parallelism sweep ((2304, 1/2), per-layer "
      "@ 200 MHz, 10 iterations)");
  par_table.set_header({"parallelism", "fold", "cycles/iter",
                        "info tput (Mbps)", "datapath (mm2)",
                        "tput per core (Mbps)"});
  for (int p : {96, 48, 32, 24, 16, 12, 8, 4}) {
    const auto est =
        pico.compile(code, ArchKind::kPerLayer, HardwareTarget{200.0, p});
    const auto run =
        bench::run_design_point(code, ArchKind::kPerLayer, 200.0, p, fmt);
    const auto area = area_model.estimate(est, 0);
    const double it = static_cast<double>(run.activity.iterations);
    const double tput =
        info_throughput_mbps(code.k(), run.activity.cycles, 200.0);
    par_table.add_row(
        {TextTable::integer(p), TextTable::integer(est.fold),
         TextTable::num(static_cast<double>(run.activity.cycles) / it, 1),
         TextTable::num(tput, 1), TextTable::num(area.datapath_mm2, 3),
         TextTable::num(tput / p, 2)});
  }
  std::fputs(par_table.str().c_str(), stdout);
  std::puts(
      "Expected: throughput scales ~linearly with the unroll factor while\n"
      "throughput-per-core stays flat — parallelism buys rate at constant\n"
      "efficiency, the property that lets one C source serve every target\n"
      "(Fig. 3's design-space argument, extended to 8 points).");
  return 0;
}
