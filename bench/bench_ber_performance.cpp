// Decoding-performance validation: BER/FER of the paper's fixed-point
// layered scaled-min-sum (Algorithm 1) against floating-point references.
//
// The paper does not plot BER curves (its claims are architectural), but
// the reproduction must demonstrate that the implemented decoder actually
// corrects errors the way a WiMAX decoder should: layered min-sum at 10
// iterations within a fraction of a dB of flooding BP at 20, and 8-bit /
// 6-bit quantization costing little.
#include <cstdio>

#include "channel/ber_runner.hpp"
#include "codes/wimax.hpp"
#include "core/decoder_factory.hpp"
#include "util/table.hpp"

using namespace ldpc;

int main() {
  // z = 48 (n = 1152) keeps the Monte-Carlo affordable on one core while
  // exercising the same base matrix as the 2304 case study.
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 48);

  struct Entry {
    const char* decoder;
    std::size_t iterations;
  };
  const Entry entries[] = {
      {"flooding-bp", 20},
      {"flooding-minsum-norm", 20},
      {"layered-minsum-float", 10},
      {"layered-minsum-fixed", 10},
      {"layered-minsum-q6", 10},
  };

  const std::vector<float> ebn0 = {1.0F, 1.5F, 2.0F, 2.5F};

  TextTable table(
      "Decoding performance — WiMAX (1152, 1/2), BPSK/AWGN, FER over Eb/N0 "
      "(frames capped for bench runtime)");
  std::vector<std::string> header = {"decoder", "iters"};
  for (float e : ebn0) header.push_back("FER@" + TextTable::num(e, 1) + "dB");
  header.push_back("avg iters @2.0dB");
  table.set_header(header);

  for (const Entry& entry : entries) {
    DecoderOptions opt;
    opt.max_iterations = entry.iterations;
    BerConfig cfg;
    cfg.ebn0_db = ebn0;
    cfg.max_frames = 400;
    cfg.min_frames = 60;
    cfg.target_frame_errors = 25;
    cfg.num_workers = 2;
    BerRunner runner(
        code, [&] { return make_decoder(entry.decoder, code, opt); }, cfg);
    const auto points = runner.run();
    std::vector<std::string> row = {entry.decoder,
                                    TextTable::integer(static_cast<long long>(
                                        entry.iterations))};
    for (const auto& p : points) row.push_back(TextTable::sci(p.fer(), 1));
    row.push_back(TextTable::num(points[2].avg_iterations(), 1));
    table.add_row(row);
  }
  std::fputs(table.str().c_str(), stdout);
  std::puts(
      "\nExpected shape: FER falls steeply with Eb/N0 (waterfall); layered\n"
      "min-sum at 10 iterations tracks flooding decoders at 20 (the paper's\n"
      "premise for layered scheduling); the 8-bit fixed-point decoder tracks\n"
      "the float decoder closely and 6-bit costs a little more.");
  return 0;
}
