// Fig. 8 reproduction: latency per iteration (a) and standard-cell area (b)
// versus the HLS target clock frequency, for both architectures.
//
// The paper synthesized PICO-generated RTL at 100/200/300/400 MHz and
// observed both metrics rising with the target clock: PICO re-schedules the
// datapaths into deeper pipelines (latency) and synthesis upsizes cells
// (area). Our PICO model and 65 nm area model reproduce the mechanism; the
// csv mirror of each series is written to /tmp for external plotting.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "power/area_model.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace ldpc;

int main() {
  const auto code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  const AreaModel area_model;

  TextTable lat_table(
      "Fig. 8a — latency per iteration vs target clock (WiMAX (2304, 1/2))");
  lat_table.set_header({"clock (MHz)", "per-layer (cycles)",
                        "pipelined (cycles)", "pipelined/per-layer"});
  TextTable area_table(
      "Fig. 8b — standard-cell area vs target clock (65 nm, std cells only)");
  area_table.set_header({"clock (MHz)", "per-layer (mm2)", "pipelined (mm2)",
                         "D1/D2 per-layer", "D1/D2 pipelined"});

  CsvWriter csv("/tmp/fig8_latency_area.csv");
  csv.write_row({"mhz", "arch", "cycles_per_iter", "std_cells_mm2"});

  for (double mhz : {100.0, 200.0, 300.0, 400.0}) {
    double cycles[2];
    double areas[2];
    std::string depths[2];
    const ArchKind kinds[2] = {ArchKind::kPerLayer, ArchKind::kTwoLayerPipelined};
    for (int a = 0; a < 2; ++a) {
      const auto est = pico.compile(code, kinds[a], HardwareTarget{mhz, 96});
      const auto run = bench::run_design_point(code, kinds[a], mhz, 96);
      cycles[a] = static_cast<double>(run.activity.cycles) /
                  static_cast<double>(run.activity.iterations);
      areas[a] = area_model.estimate(est, 0).std_cells_mm2;
      depths[a] = std::to_string(est.core1_latency) + "/" +
                  std::to_string(est.core2_latency);
      csv.write_row({TextTable::num(mhz, 0), arch_name(kinds[a]),
                     TextTable::num(cycles[a], 1), TextTable::num(areas[a], 4)});
    }
    lat_table.add_row({TextTable::num(mhz, 0), TextTable::num(cycles[0], 1),
                       TextTable::num(cycles[1], 1),
                       TextTable::num(cycles[1] / cycles[0], 2)});
    area_table.add_row({TextTable::num(mhz, 0), TextTable::num(areas[0], 3),
                        TextTable::num(areas[1], 3), depths[0], depths[1]});
  }

  std::fputs(lat_table.str().c_str(), stdout);
  std::puts("");
  std::fputs(area_table.str().c_str(), stdout);
  std::puts(
      "\nExpected shape (paper Fig. 8): both latency and area increase with\n"
      "the target clock (deeper pipelines, upsized cells); the pipelined\n"
      "architecture needs roughly 0.5-0.75x the cycles of per-layer at every\n"
      "frequency while costing more area (duplicated state arrays, FIFO,\n"
      "scoreboard). Series mirrored to /tmp/fig8_latency_area.csv.");
  return 0;
}
