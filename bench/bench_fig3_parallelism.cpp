// Fig. 3 reproduction: scalable datapath generation.
//
// The paper's Fig. 3 shows PICO generating z = 96 cores for full unrolling
// and 48 cores for a 2-way folded loop. This bench sweeps the unroll factor
// and reports the resulting hardware (cores, area) and performance (cycles
// per iteration, information throughput at 400 MHz) — the design-space
// trade the scalable-parallelism claim is about: halving the cores halves
// the datapath and halves the throughput.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "power/area_model.hpp"
#include "power/metrics.hpp"
#include "util/table.hpp"

using namespace ldpc;

int main() {
  const auto code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  const AreaModel area_model;
  const double mhz = 400.0;

  TextTable table(
      "Fig. 3 — scalable data path generation (WiMAX (2304, 1/2), layered "
      "min-sum, 400 MHz, 10 iterations)");
  table.set_header({"parallelism", "fold", "core1+core2 insts", "cycles/iter",
                    "info tput (Mbps)", "datapath area (mm2)",
                    "tput/area (Mbps/mm2)"});

  for (int p : {96, 48, 24, 12}) {
    const auto est =
        pico.compile(code, ArchKind::kPerLayer, HardwareTarget{mhz, p});
    const auto run = bench::run_design_point(code, ArchKind::kPerLayer, mhz, p);
    const auto area = area_model.estimate(est, 0);
    const double cyc_per_iter =
        static_cast<double>(run.activity.cycles) /
        static_cast<double>(run.activity.iterations);
    const double tput =
        info_throughput_mbps(code.k(), run.activity.cycles, mhz);
    table.add_row({TextTable::integer(p), TextTable::integer(est.fold),
                   TextTable::integer(2LL * p), TextTable::num(cyc_per_iter, 1),
                   TextTable::num(tput, 1), TextTable::num(area.datapath_mm2, 3),
                   TextTable::num(tput / area.datapath_mm2, 0)});
  }
  std::fputs(table.str().c_str(), stdout);
  std::puts(
      "\nExpected shape (paper): each halving of the unroll factor halves the\n"
      "datapath instances/area and doubles cycles per iteration; throughput\n"
      "scales proportionally, so the decoder can be tailored to the\n"
      "application's rate requirement (Fig. 3's 96- vs 48-core example).");
  return 0;
}
