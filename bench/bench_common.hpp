// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every bench regenerates one table or figure from the paper (see
// DESIGN.md's experiment index) and prints our measured values next to the
// paper's published ones so the shape comparison is immediate.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/arch_sim.hpp"
#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "codes/wimax.hpp"
#include "util/rng.hpp"

namespace ldpc::bench {

/// A quantized noisy frame of the (2304, 1/2) case-study code at a fixed
/// waterfall-region SNR, deterministic in `seed`.
inline std::vector<std::int32_t> quantized_frame(const QCLdpcCode& code,
                                                 FixedFormat fmt, float ebn0_db,
                                                 std::uint64_t seed,
                                                 BitVec* codeword = nullptr) {
  const RuEncoder enc(code);
  Xoshiro256 rng(seed);
  BitVec info(code.k());
  for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
  const BitVec word = enc.encode(info);
  if (codeword) *codeword = word;
  const float variance = awgn_noise_variance(ebn0_db, code.rate());
  AwgnChannel ch(variance, seed * 19 + 7);
  const auto llr =
      BpskModem::demodulate(ch.transmit(BpskModem::modulate(word)), variance);
  std::vector<std::int32_t> codes(llr.size());
  for (std::size_t i = 0; i < llr.size(); ++i) codes[i] = fmt.quantize(llr[i]);
  return codes;
}

/// Run the architecture simulator for a fixed 10 iterations (no early
/// termination) — the paper's Table II operating point — and return the
/// result with activity counters.
inline ArchDecodeResult run_design_point(const QCLdpcCode& code, ArchKind arch,
                                         double mhz, int parallelism,
                                         FixedFormat fmt = FixedFormat{8, 2},
                                         bool reorder = false,
                                         std::size_t iterations = 10,
                                         bool early_termination = false) {
  const PicoCompiler pico(fmt);
  const auto est = pico.compile(code, arch, HardwareTarget{mhz, parallelism});
  DecoderOptions opt;
  opt.max_iterations = iterations;
  opt.early_termination = early_termination;
  ArchSimDecoder sim(code, est, opt, fmt, ArchSimConfig{reorder});
  const auto frame = quantized_frame(code, fmt, 2.0F, 42);
  return sim.decode_quantized(frame);
}

/// SRAM complement of the flexible multi-rate WiMAX decoder (Table II):
/// P memory for 24 block columns plus R memory sized for the worst-case
/// rate family, at z = 96 and 8-bit messages.
inline long long flexible_decoder_sram_bits() {
  return 24LL * 96 * 8 +
         static_cast<long long>(wimax_max_r_slots()) * 96 * 8;
}

}  // namespace ldpc::bench
