// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every bench regenerates one table or figure from the paper (see
// DESIGN.md's experiment index) and prints our measured values next to the
// paper's published ones so the shape comparison is immediate.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "arch/arch_sim.hpp"
#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "codes/wimax.hpp"
#include "util/rng.hpp"

namespace ldpc::bench {

/// Short git revision for artifact provenance — every BENCH_*.json row
/// carries it so tooling can join perf trajectories across PRs. Honors
/// the LDPC_GIT_REV override (CI exports it when .git is unavailable),
/// falls back to asking git, and degrades to "unknown" rather than
/// failing — provenance must never block an artifact write.
inline std::string git_rev() {
  if (const char* env = std::getenv("LDPC_GIT_REV")) return env;
  if (std::FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    std::string rev;
    if (std::fgets(buf, sizeof buf, pipe) != nullptr) rev = buf;
    const int status = ::pclose(pipe);
    while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r'))
      rev.pop_back();
    if (status == 0 && !rev.empty()) return rev;
  }
  return "unknown";
}

/// Canonical code identifier shared by every bench artifact — the same
/// "family z=Z n=N" string in each row's "code" field lets tooling join
/// rows across BENCH_*.json files without per-bench parsing.
inline std::string code_id(const std::string& family, const QCLdpcCode& code) {
  return family + " z=" + std::to_string(code.z()) +
         " n=" + std::to_string(code.n());
}

/// A quantized noisy frame of the (2304, 1/2) case-study code at a fixed
/// waterfall-region SNR, deterministic in `seed`.
inline std::vector<std::int32_t> quantized_frame(const QCLdpcCode& code,
                                                 FixedFormat fmt, float ebn0_db,
                                                 std::uint64_t seed,
                                                 BitVec* codeword = nullptr) {
  const RuEncoder enc(code);
  Xoshiro256 rng(seed);
  BitVec info(code.k());
  for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
  const BitVec word = enc.encode(info);
  if (codeword) *codeword = word;
  const float variance = awgn_noise_variance(ebn0_db, code.rate());
  AwgnChannel ch(variance, seed * 19 + 7);
  const auto llr =
      BpskModem::demodulate(ch.transmit(BpskModem::modulate(word)), variance);
  std::vector<std::int32_t> codes(llr.size());
  for (std::size_t i = 0; i < llr.size(); ++i) codes[i] = fmt.quantize(llr[i]);
  return codes;
}

/// Run the architecture simulator for a fixed 10 iterations (no early
/// termination) — the paper's Table II operating point — and return the
/// result with activity counters.
inline ArchDecodeResult run_design_point(const QCLdpcCode& code, ArchKind arch,
                                         double mhz, int parallelism,
                                         FixedFormat fmt = FixedFormat{8, 2},
                                         bool reorder = false,
                                         std::size_t iterations = 10,
                                         bool early_termination = false) {
  const PicoCompiler pico(fmt);
  const auto est = pico.compile(code, arch, HardwareTarget{mhz, parallelism});
  DecoderOptions opt;
  opt.max_iterations = iterations;
  opt.early_termination = early_termination;
  ArchSimDecoder sim(code, est, opt, fmt, ArchSimConfig{reorder});
  const auto frame = quantized_frame(code, fmt, 2.0F, 42);
  return sim.decode_quantized(frame);
}

/// Machine-readable benchmark output: a flat array of JSON objects, one
/// per measured configuration, written next to the human-readable tables
/// so the perf trajectory can be tracked across PRs by tooling instead of
/// by reading bench logs. Values render eagerly (numbers unquoted,
/// strings escaped) — the reporter holds no type state.
class JsonReporter {
 public:
  class Row {
   public:
    Row& set(const std::string& key, const std::string& value) {
      fields_.emplace_back(key, quote(value));
      return *this;
    }
    Row& set(const std::string& key, const char* value) {
      return set(key, std::string(value));
    }
    Row& set(const std::string& key, double value) {
      std::ostringstream os;
      os.precision(10);
      os << value;
      fields_.emplace_back(key, os.str());
      return *this;
    }
    Row& set(const std::string& key, long long value) {
      fields_.emplace_back(key, std::to_string(value));
      return *this;
    }
    Row& set(const std::string& key, std::size_t value) {
      fields_.emplace_back(key, std::to_string(value));
      return *this;
    }
    Row& set(const std::string& key, bool value) {
      fields_.emplace_back(key, value ? "true" : "false");
      return *this;
    }

   private:
    friend class JsonReporter;
    static std::string quote(const std::string& s) {
      std::string out = "\"";
      for (const char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
      }
      out += '"';
      return out;
    }
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  Row& add_row() { return rows_.emplace_back(); }

  /// Write the collected rows as a JSON array and announce the path on
  /// stdout (bench logs double as a record of where the data went).
  void write(const std::string& path) const {
    std::ofstream out(path);
    out << "[\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out << "  {";
      const auto& fields = rows_[i].fields_;
      for (std::size_t f = 0; f < fields.size(); ++f) {
        if (f != 0) out << ", ";
        out << Row::quote(fields[f].first) << ": " << fields[f].second;
      }
      out << (i + 1 < rows_.size() ? "},\n" : "}\n");
    }
    out << "]\n";
    std::cout << "wrote " << path << " (" << rows_.size() << " rows)\n";
  }

 private:
  std::vector<Row> rows_;
};

/// SRAM complement of the flexible multi-rate WiMAX decoder (Table II):
/// P memory for 24 block columns plus R memory sized for the worst-case
/// rate family, at z = 96 and 8-bit messages.
inline long long flexible_decoder_sram_bits() {
  return 24LL * 96 * 8 +
         static_cast<long long>(wimax_max_r_slots()) * 96 * 8;
}

}  // namespace ldpc::bench
