// Fig. 5 / Fig. 7 reproduction: the PICO-generated hardware block diagrams
// of the per-layer and two-layer pipelined decoders for the (2304, 1/2)
// WiMAX case study, rendered as inventory tables (every SRAM, register
// array, FIFO and datapath cluster with its geometry).
#include <cstdio>

#include "bench/bench_common.hpp"
#include "hls/hardware_report.hpp"

using namespace ldpc;

int main() {
  const auto code = make_wimax_2304_half_rate();
  const PicoCompiler pico(FixedFormat{8, 2});

  for (ArchKind arch : {ArchKind::kPerLayer, ArchKind::kTwoLayerPipelined}) {
    const auto est = pico.compile(code, arch, HardwareTarget{400.0, 96});
    std::fputs(hardware_report(code, est).c_str(), stdout);
    std::puts("");
  }
  std::puts(
      "Expected shape (paper Figs. 5 and 7): identical memory complement\n"
      "(P 24x768, R slots x768) and barrel shifter; the pipelined variant\n"
      "duplicates the min1/min2/pos1/sign arrays per core, replaces the\n"
      "Q array with a Q FIFO and adds the scoreboard.");
  return 0;
}
