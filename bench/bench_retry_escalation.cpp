// Retry-escalation recovery — what a second (and third) chance is worth.
//
// The paper's early-termination decoder spends its iteration budget
// unevenly: most frames converge in a few iterations, a tail exhausts the
// budget. A serving deployment provisions the *primary* decoder for the
// common case (a small iteration budget = low latency and power) and lets
// the runtime supervisor re-decode the failing tail on an escalation
// ladder — double the budget first, then triple it with a 2-bit wider
// fixed-point format (runtime/retry_policy.hpp's default ladder).
//
// This bench sweeps the waterfall region of the WiMAX (2304, 1/2) z = 96
// case-study code and reports, per Eb/N0 point, how many frames the starved
// primary failed, how many each escalation rung rescued, the residual
// failures, and the extra decode work the retries cost — the
// recovery-vs-cost table for EXPERIMENTS.md.
#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/decoder_factory.hpp"
#include "runtime/retry_policy.hpp"
#include "runtime/supervisor.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

using namespace ldpc;

namespace {

std::vector<std::vector<float>> make_frames(const QCLdpcCode& code,
                                            std::size_t count, float ebn0_db) {
  const RuEncoder encoder(code);
  const float variance = awgn_noise_variance(ebn0_db, code.rate());
  std::vector<std::vector<float>> frames;
  frames.reserve(count);
  for (std::size_t f = 0; f < count; ++f) {
    Xoshiro256 info_rng(2009 + 3 * f);
    BitVec info(code.k());
    for (std::size_t i = 0; i < info.size(); ++i) info.set(i, info_rng.coin());
    AwgnChannel awgn(variance, 2010 + 3 * f);
    frames.push_back(BpskModem::demodulate(
        awgn.transmit(BpskModem::modulate(encoder.encode(info))), variance));
  }
  return frames;
}

}  // namespace

int main() {
  const auto code = make_wimax_2304_half_rate();
  constexpr std::size_t kFrames = 200;
  constexpr std::size_t kPrimaryIterations = 4;  // starved on purpose

  DecoderOptions base;
  base.max_iterations = kPrimaryIterations;
  const FixedFormat format;  // q8.2, the paper's message format
  const auto ladder = default_escalation_ladder(kPrimaryIterations, format);

  TextTable table(
      "Retry escalation — WiMAX (2304, 1/2) z=96, primary layered-minsum "
      "q8.2 @ 4 iters; ladder: 8 iters q8.2, then 12 iters q10.2; 200 "
      "frames/point, 4 workers");
  table.set_header({"Eb/N0 (dB)", "fail@1", "rescued@2", "rescued@3",
                    "residual", "FER primary", "FER final", "retries",
                    "extra work (%)"});

  for (const float ebn0 : {1.0F, 1.5F, 2.0F, 2.5F}) {
    const auto frames = make_frames(code, kFrames, ebn0);

    SupervisorConfig config;
    config.engine.num_workers = 4;
    config.engine.queue_capacity = 64;
    config.engine.escalation_factories =
        make_escalation_factories(code, base, ladder);
    config.retry = RetryPolicy::up_to(1 + ladder.size());
    DecodeSupervisor supervisor(
        [&code, base] {
          return make_decoder("layered-minsum-fixed", code, base);
        },
        config);

    std::vector<DecodeResult> slots(frames.size());
    for (std::size_t f = 0; f < frames.size(); ++f) {
      const SubmitStatus s = supervisor.submit(f, frames[f], &slots[f]);
      LDPC_CHECK_MSG(submit_accepted(s), "bench frame rejected");
    }
    supervisor.drain();

    const RetryStats retry = supervisor.metrics().retry;
    const std::size_t converged_first = retry.recovered_by_attempt[0];
    const std::size_t fail_first = kFrames - converged_first;
    const std::size_t rescued2 = retry.recovered_by_attempt[1];
    const std::size_t rescued3 = retry.recovered_by_attempt[2];
    const std::size_t residual = fail_first - rescued2 - rescued3;
    table.add_row(
        {TextTable::num(ebn0, 1), TextTable::integer(fail_first),
         TextTable::integer(rescued2), TextTable::integer(rescued3),
         TextTable::integer(residual),
         TextTable::num(static_cast<double>(fail_first) / kFrames, 3),
         TextTable::num(static_cast<double>(residual) / kFrames, 3),
         TextTable::integer(retry.retries_submitted),
         TextTable::num(100.0 * static_cast<double>(retry.retries_submitted) /
                            kFrames, 1)});
  }

  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nExpected: the ladder closes most of the gap the starved primary\n"
      "opens — rung 2 (2x budget) rescues the slow-convergence tail, rung 3\n"
      "(3x budget, +2 format bits) a further slice limited by quantization;\n"
      "residual failures approach the unconstrained decoder's FER while the\n"
      "extra decode work stays proportional to the primary failure rate\n"
      "instead of provisioning every frame for the worst case.\n");
  return 0;
}
