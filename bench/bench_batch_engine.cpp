// Batch decode engine throughput — the software-side scalability axis: the
// same WiMAX (2304, 1/2) z = 96 case-study code the hardware benches use,
// decoded as a stream of frames through the runtime worker pool at 1..8
// workers. Reports decoded-bits/s, speedup over one worker, queue occupancy
// and the per-job latency distribution, and cross-checks that every worker
// count produces bit-identical hard decisions (the engine's determinism
// contract). Speedup saturates at the machine's core count.
#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/decoder_factory.hpp"
#include "runtime/batch_engine.hpp"
#include "util/table.hpp"

using namespace ldpc;

namespace {

std::vector<std::vector<float>> make_frames(const QCLdpcCode& code,
                                            std::size_t count, float ebn0_db) {
  const RuEncoder encoder(code);
  const float variance = awgn_noise_variance(ebn0_db, code.rate());
  std::vector<std::vector<float>> frames;
  frames.reserve(count);
  for (std::size_t f = 0; f < count; ++f) {
    Xoshiro256 info_rng(2009 + 3 * f);
    BitVec info(code.k());
    for (std::size_t i = 0; i < info.size(); ++i) info.set(i, info_rng.coin());
    AwgnChannel awgn(variance, 2010 + 3 * f);
    frames.push_back(BpskModem::demodulate(
        awgn.transmit(BpskModem::modulate(encoder.encode(info))), variance));
  }
  return frames;
}

}  // namespace

int main() {
  const auto code = make_wimax_2304_half_rate();
  constexpr std::size_t kFrames = 400;
  // 2.0 dB: the waterfall operating point — a realistic mix of early
  // terminations and full-budget decodes.
  const auto frames = make_frames(code, kFrames, 2.0F);

  DecoderFactory factory = [&code] {
    DecoderOptions opt;
    opt.max_iterations = 10;
    return make_decoder("layered-minsum-fixed", code, opt);
  };

  TextTable table(
      "Batch engine — WiMAX (2304, 1/2) z=96, layered-minsum q8.2, 400 "
      "frames @ 2.0 dB");
  table.set_header({"workers", "decoded Mb/s", "speedup", "p50 (us)",
                    "p95 (us)", "p99 (us)", "queue mean/max", "avg iters"});

  double base_mbps = 0.0;
  std::vector<DecodeResult> reference;
  bool identical = true;
  for (const unsigned workers : {1u, 2u, 4u, 8u}) {
    BatchEngineConfig cfg;
    cfg.num_workers = workers;
    cfg.queue_capacity = 64;
    BatchEngine engine(factory, cfg);
    auto results = engine.decode_batch(frames);
    const EngineMetrics m = engine.metrics();
    if (workers == 1) {
      base_mbps = m.throughput_mbps;
      reference = std::move(results);
    } else {
      for (std::size_t f = 0; f < results.size(); ++f) {
        if (results[f].iterations != reference[f].iterations) identical = false;
        for (std::size_t i = 0; i < code.n(); ++i)
          if (results[f].hard_bits.get(i) != reference[f].hard_bits.get(i))
            identical = false;
      }
    }
    char occupancy[32];
    std::snprintf(occupancy, sizeof occupancy, "%.1f/%zu",
                  m.queue_mean_occupancy, m.queue_max_occupancy);
    table.add_row({TextTable::integer(workers),
                   TextTable::num(m.throughput_mbps, 1),
                   TextTable::num(base_mbps > 0.0
                                      ? m.throughput_mbps / base_mbps
                                      : 1.0, 2),
                   TextTable::num(m.latency.p50_us, 0),
                   TextTable::num(m.latency.p95_us, 0),
                   TextTable::num(m.latency.p99_us, 0), occupancy,
                   TextTable::num(m.avg_iterations(), 2)});
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nOutput bit-identical across worker counts: %s\n"
      "Expected: decoded-bits/s scales with workers until the core count\n"
      "saturates (>= 3x at 8 workers on >= 8 cores); p50 latency is flat\n"
      "while p99 grows with queue depth — the backpressure signature.\n",
      identical ? "yes" : "NO — DETERMINISM VIOLATION");
  return identical ? 0 : 1;
}
