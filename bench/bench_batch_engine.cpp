// Batch decode engine throughput — the software-side scalability axis: the
// same WiMAX (2304, 1/2) z = 96 case-study code the hardware benches use,
// decoded as a stream of frames through the runtime worker pool at 1..8
// workers. Reports decoded-bits/s, speedup over one worker, queue occupancy
// and the per-job latency distribution, and cross-checks that every worker
// count produces bit-identical hard decisions (the engine's determinism
// contract). Speedup saturates at the machine's core count.
#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/decoder_factory.hpp"
#include "runtime/batch_engine.hpp"
#include "util/table.hpp"

using namespace ldpc;

namespace {

std::vector<std::vector<float>> make_frames(const QCLdpcCode& code,
                                            std::size_t count, float ebn0_db) {
  const RuEncoder encoder(code);
  const float variance = awgn_noise_variance(ebn0_db, code.rate());
  std::vector<std::vector<float>> frames;
  frames.reserve(count);
  for (std::size_t f = 0; f < count; ++f) {
    Xoshiro256 info_rng(2009 + 3 * f);
    BitVec info(code.k());
    for (std::size_t i = 0; i < info.size(); ++i) info.set(i, info_rng.coin());
    AwgnChannel awgn(variance, 2010 + 3 * f);
    frames.push_back(BpskModem::demodulate(
        awgn.transmit(BpskModem::modulate(encoder.encode(info))), variance));
  }
  return frames;
}

}  // namespace

int main() {
  const auto code = make_wimax_2304_half_rate();
  constexpr std::size_t kFrames = 400;
  // 2.0 dB: the waterfall operating point — a realistic mix of early
  // terminations and full-budget decodes.
  const auto frames = make_frames(code, kFrames, 2.0F);

  // The inter-frame-batched SIMD decoder fed lane-width blocks: the fused
  // engine + kernel path this bench tracks. The scalar fixed decoder at
  // block_frames = 1 is the baseline the speedup column is against.
  DecoderOptions opt;
  opt.max_iterations = 10;
  DecoderFactory batched_factory = [&code, opt] {
    return make_decoder("layered-minsum-simd-batched", code, opt);
  };
  DecoderFactory scalar_factory = [&code, opt] {
    return make_decoder("layered-minsum-fixed", code, opt);
  };
  const std::size_t block_width =
      batched_factory()->block_width();  // lane count of the best SIMD tier

  TextTable table(
      "Batch engine — WiMAX (2304, 1/2) z=96, 400 frames @ 2.0 dB, "
      "simd-batched blocks of " + std::to_string(block_width) +
      " vs scalar q8.2");
  table.set_header({"config", "info Mb/s", "code Mb/s", "speedup",
                    "p50 (us)", "p95 (us)", "p99 (us)", "avg iters",
                    "fallbacks"});

  struct Config {
    const char* label;
    DecoderFactory* factory;
    unsigned workers;
    std::size_t block_frames;
  };
  Config configs[] = {
      {"scalar w=1", &scalar_factory, 1, 1},
      {"batched w=1", &batched_factory, 1, block_width},
      {"batched w=2", &batched_factory, 2, block_width},
      {"batched w=4", &batched_factory, 4, block_width},
  };

  double base_mbps = 0.0;
  std::vector<DecodeResult> reference;
  bool identical = true;
  for (const Config& c : configs) {
    BatchEngineConfig cfg;
    cfg.num_workers = c.workers;
    cfg.queue_capacity = 64;
    cfg.block_frames = c.block_frames;
    BatchEngine engine(*c.factory, cfg);
    auto results = engine.decode_batch(frames);
    const EngineMetrics m = engine.metrics();
    std::size_t fallbacks = 0;
    for (const auto& w : m.workers) fallbacks += w.simd_fallbacks;
    if (reference.empty()) {
      base_mbps = m.info_throughput_mbps;
      reference = std::move(results);
    } else {
      // Determinism contract, extended across decode *shapes*: the batched
      // block path must reproduce the scalar per-frame results bit for bit
      // at every worker count.
      for (std::size_t f = 0; f < results.size(); ++f) {
        if (results[f].iterations != reference[f].iterations) identical = false;
        for (std::size_t i = 0; i < code.n(); ++i)
          if (results[f].hard_bits.get(i) != reference[f].hard_bits.get(i))
            identical = false;
      }
    }
    table.add_row({c.label,
                   TextTable::num(m.info_throughput_mbps, 1),
                   TextTable::num(m.code_throughput_mbps, 1),
                   TextTable::num(base_mbps > 0.0
                                      ? m.info_throughput_mbps / base_mbps
                                      : 1.0, 2),
                   TextTable::num(m.latency.p50_us, 0),
                   TextTable::num(m.latency.p95_us, 0),
                   TextTable::num(m.latency.p99_us, 0),
                   TextTable::num(m.avg_iterations(), 2),
                   TextTable::integer(fallbacks)});
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nOutput bit-identical across configs and worker counts: %s\n"
      "Expected: the batched rows multiply single-worker throughput by the\n"
      "lane fill; extra workers help only up to the physical core count.\n"
      "p50 latency grows with block size (frames wait for lane-mates) —\n"
      "the throughput/latency trade the block_frames knob controls.\n",
      identical ? "yes" : "NO — DETERMINISM VIOLATION");
  return identical ? 0 : 1;
}
