// Batch decode engine throughput — the software-side scalability axis: the
// same WiMAX (2304, 1/2) z = 96 case-study code the hardware benches use,
// decoded as a stream of frames through the runtime worker pool at 1..8
// workers. The worker grid is host-aware: {1, 2, 4} always, {6, 8} only
// when the machine has that many cores, so CI boxes of any size produce
// meaningful rows. Reports decoded-bits/s, speedup over one worker, queue
// occupancy and the per-job latency distribution, records (does not gate)
// per-worker scaling efficiency in BENCH_batch_engine.json, and
// cross-checks that every worker count produces bit-identical hard
// decisions (the engine's determinism contract). Speedup saturates at the
// machine's core count.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/decoder_factory.hpp"
#include "runtime/batch_engine.hpp"
#include "util/table.hpp"

using namespace ldpc;

namespace {

std::vector<std::vector<float>> make_frames(const QCLdpcCode& code,
                                            std::size_t count, float ebn0_db) {
  const RuEncoder encoder(code);
  const float variance = awgn_noise_variance(ebn0_db, code.rate());
  std::vector<std::vector<float>> frames;
  frames.reserve(count);
  for (std::size_t f = 0; f < count; ++f) {
    Xoshiro256 info_rng(2009 + 3 * f);
    BitVec info(code.k());
    for (std::size_t i = 0; i < info.size(); ++i) info.set(i, info_rng.coin());
    AwgnChannel awgn(variance, 2010 + 3 * f);
    frames.push_back(BpskModem::demodulate(
        awgn.transmit(BpskModem::modulate(encoder.encode(info))), variance));
  }
  return frames;
}

}  // namespace

int main() {
  const auto code = make_wimax_2304_half_rate();
  constexpr std::size_t kFrames = 400;
  // 2.0 dB: the waterfall operating point — a realistic mix of early
  // terminations and full-budget decodes.
  const auto frames = make_frames(code, kFrames, 2.0F);

  // The inter-frame-batched SIMD decoder fed lane-width blocks: the fused
  // engine + kernel path this bench tracks. The scalar fixed decoder at
  // block_frames = 1 is the baseline the speedup column is against.
  DecoderOptions opt;
  opt.max_iterations = 10;
  DecoderFactory batched_factory = [&code, opt] {
    return make_decoder("layered-minsum-simd-batched", code, opt);
  };
  DecoderFactory scalar_factory = [&code, opt] {
    return make_decoder("layered-minsum-fixed", code, opt);
  };
  const std::size_t block_width =
      batched_factory()->block_width();  // lane count of the best SIMD tier

  TextTable table(
      "Batch engine — WiMAX (2304, 1/2) z=96, 400 frames @ 2.0 dB, "
      "simd-batched blocks of " + std::to_string(block_width) +
      " vs scalar q8.2");
  table.set_header({"config", "info Mb/s", "code Mb/s", "speedup",
                    "p50 (us)", "p95 (us)", "p99 (us)", "avg iters",
                    "fallbacks"});

  struct Config {
    std::string label;
    DecoderFactory* factory;
    unsigned workers;
    std::size_t block_frames;
  };
  // Host-aware worker grid: always measure 1/2/4 (oversubscription on a
  // small box is itself a data point), extend to 6 and 8 only when the
  // host has the cores to back them.
  const unsigned host_cores = std::max(1U, std::thread::hardware_concurrency());
  std::vector<Config> configs = {
      {"scalar w=1", &scalar_factory, 1, 1},
      {"batched w=1", &batched_factory, 1, block_width},
      {"batched w=2", &batched_factory, 2, block_width},
      {"batched w=4", &batched_factory, 4, block_width},
  };
  for (const unsigned w : {6U, 8U})
    if (host_cores >= w)
      configs.push_back({"batched w=" + std::to_string(w), &batched_factory, w,
                         block_width});

  const std::string code_name = bench::code_id("wimax-1/2", code);
  const std::string rev = bench::git_rev();
  bench::JsonReporter json;

  double base_mbps = 0.0;
  double batched_w1_mbps = 0.0;
  std::vector<DecodeResult> reference;
  bool identical = true;
  for (const Config& c : configs) {
    BatchEngineConfig cfg;
    cfg.num_workers = c.workers;
    cfg.queue_capacity = 64;
    cfg.block_frames = c.block_frames;
    BatchEngine engine(*c.factory, cfg);
    auto results = engine.decode_batch(frames);
    const EngineMetrics m = engine.metrics();
    std::size_t fallbacks = 0;
    for (const auto& w : m.workers) fallbacks += w.simd_fallbacks;
    if (c.block_frames == block_width && c.workers == 1)
      batched_w1_mbps = m.info_throughput_mbps;
    // Scaling efficiency: speedup over the single-worker batched row
    // divided by the worker count — 1.0 is perfect linear scaling. A
    // recorded trajectory, not a gate: it depends on the host's cores.
    const double scaling_efficiency =
        (c.block_frames == block_width && batched_w1_mbps > 0.0)
            ? m.info_throughput_mbps / batched_w1_mbps /
                  static_cast<double>(c.workers)
            : 1.0;
    json.add_row()
        .set("decoder", c.block_frames == 1 ? "layered-minsum-fixed"
                                            : "layered-minsum-simd-batched")
        .set("label", c.label)
        .set("code", code_name)
        .set("ebn0_db", 2.0)
        .set("frames", kFrames)
        .set("workers", static_cast<long long>(c.workers))
        .set("host_cores", static_cast<long long>(host_cores))
        .set("block_frames", c.block_frames)
        .set("info_mbps", m.info_throughput_mbps)
        .set("code_mbps", m.code_throughput_mbps)
        .set("scaling_efficiency", scaling_efficiency)
        .set("p50_us", m.latency.p50_us)
        .set("p95_us", m.latency.p95_us)
        .set("p99_us", m.latency.p99_us)
        .set("avg_iterations", m.avg_iterations())
        .set("simd_fallbacks", fallbacks)
        .set("git_rev", rev);
    if (reference.empty()) {
      base_mbps = m.info_throughput_mbps;
      reference = std::move(results);
    } else {
      // Determinism contract, extended across decode *shapes*: the batched
      // block path must reproduce the scalar per-frame results bit for bit
      // at every worker count.
      for (std::size_t f = 0; f < results.size(); ++f) {
        if (results[f].iterations != reference[f].iterations) identical = false;
        for (std::size_t i = 0; i < code.n(); ++i)
          if (results[f].hard_bits.get(i) != reference[f].hard_bits.get(i))
            identical = false;
      }
    }
    table.add_row({c.label,
                   TextTable::num(m.info_throughput_mbps, 1),
                   TextTable::num(m.code_throughput_mbps, 1),
                   TextTable::num(base_mbps > 0.0
                                      ? m.info_throughput_mbps / base_mbps
                                      : 1.0, 2),
                   TextTable::num(m.latency.p50_us, 0),
                   TextTable::num(m.latency.p95_us, 0),
                   TextTable::num(m.latency.p99_us, 0),
                   TextTable::num(m.avg_iterations(), 2),
                   TextTable::integer(fallbacks)});
  }
  std::fputs(table.str().c_str(), stdout);
  json.write("BENCH_batch_engine.json");
  std::printf(
      "\nOutput bit-identical across configs and worker counts: %s\n"
      "Expected: the batched rows multiply single-worker throughput by the\n"
      "lane fill; extra workers help only up to the physical core count.\n"
      "p50 latency grows with block size (frames wait for lane-mates) —\n"
      "the throughput/latency trade the block_frames knob controls.\n",
      identical ? "yes" : "NO — DETERMINISM VIOLATION");
  return identical ? 0 : 1;
}
