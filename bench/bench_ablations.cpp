// Ablation studies for the design choices DESIGN.md calls out:
//   1. min-sum normalization factor sweep (why 0.75),
//   2. quantization width sweep (why 6-8 bits),
//   3. hazard-aware column ordering (scoreboard stall sensitivity),
//   4. early termination (average vs worst-case throughput),
//   5. multi-rate flexibility: throughput across all six 802.16e families.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "channel/ber_runner.hpp"
#include "core/decoder_factory.hpp"
#include "core/layered_minsum_fixed.hpp"
#include "hls/scheduler.hpp"
#include "power/metrics.hpp"
#include "util/table.hpp"

using namespace ldpc;

namespace {

double fer_at(const QCLdpcCode& code, float ebn0, DecoderOptions opt,
              FixedFormat fmt) {
  BerConfig cfg;
  cfg.ebn0_db = {ebn0};
  cfg.max_frames = 300;
  cfg.min_frames = 50;
  cfg.target_frame_errors = 25;
  cfg.num_workers = 2;
  BerRunner runner(
      code,
      [&] { return std::make_unique<LayeredMinSumFixedDecoder>(code, opt, fmt); },
      cfg);
  return runner.run()[0].fer();
}

void scale_sweep() {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 48);
  TextTable t("Ablation 1 — min-sum normalization factor (fixed 8-bit, 10 it, "
              "FER @ 2.0 dB)");
  t.set_header({"scale", "FER"});
  for (float scale : {0.5F, 0.625F, 0.75F, 0.875F, 1.0F}) {
    DecoderOptions opt;
    opt.scale = scale;
    t.add_row({TextTable::num(scale, 3),
               TextTable::sci(fer_at(code, 2.0F, opt, FixedFormat{8, 2}), 1)});
  }
  std::fputs(t.str().c_str(), stdout);
  std::puts("Expected: a broad optimum around 0.75 (the paper's constant);\n"
            "1.0 (no normalization) is clearly worse.\n");
}

void quant_sweep() {
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 48);
  TextTable t("Ablation 2 — quantization width (layered min-sum, 10 it, FER @ "
              "2.0 dB)");
  t.set_header({"format", "FER", "P+R bits for (2304,1/2)"});
  struct Fmt { int total, frac; };
  for (Fmt f : {Fmt{4, 0}, Fmt{5, 1}, Fmt{6, 1}, Fmt{7, 2}, Fmt{8, 2}}) {
    DecoderOptions opt;
    const FixedFormat fmt{f.total, f.frac};
    const long long bits = (24LL + 76LL) * 96 * f.total;
    t.add_row({fmt.name(), TextTable::sci(fer_at(code, 2.0F, opt, fmt), 1),
               TextTable::integer(bits)});
  }
  std::fputs(t.str().c_str(), stdout);
  std::puts("Expected: 4-bit loses visibly; 6-8 bits are within a hair of\n"
            "float — why the paper (and [3]) quantize at 6-8 bits.\n");
}

void ordering_ablation() {
  const auto code = make_wimax_2304_half_rate();
  TextTable t("Ablation 3 — pipelined stalls vs column order and frequency "
              "((2304,1/2), 10 it)");
  t.set_header({"clock (MHz)", "order", "cycles/iter", "stalls/iter",
                "info tput (Mbps)"});
  for (double mhz : {200.0, 400.0}) {
    for (bool reorder : {false, true}) {
      const auto run = bench::run_design_point(
          code, ArchKind::kTwoLayerPipelined, mhz, 96, FixedFormat{8, 2}, reorder);
      const double it = static_cast<double>(run.activity.iterations);
      t.add_row({TextTable::num(mhz, 0), reorder ? "hazard-aware" : "block-serial",
                 TextTable::num(static_cast<double>(run.activity.cycles) / it, 1),
                 TextTable::num(
                     static_cast<double>(run.activity.core1_stall_cycles) / it, 1),
                 TextTable::num(info_throughput_mbps(code.k(),
                                                     run.activity.cycles, mhz),
                                0)});
    }
  }
  std::fputs(t.str().c_str(), stdout);
  std::puts("Expected: ordering the columns so recently-written blocks are\n"
            "read last removes most scoreboard stalls — the matrix-ROM-order\n"
            "optimization a hand designer would apply.\n");
}

void early_termination_ablation() {
  const auto code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  const auto est =
      pico.compile(code, ArchKind::kTwoLayerPipelined, HardwareTarget{400.0, 96});
  TextTable t("Ablation 4 — early termination ((2304,1/2) pipelined, 400 MHz, "
              "max 10 it, 20 frames @ 2.0 dB)");
  t.set_header({"early termination", "avg iters", "avg cycles", "avg latency (us)",
                "avg info tput (Mbps)"});
  for (bool et : {false, true}) {
    DecoderOptions opt;
    opt.max_iterations = 10;
    opt.early_termination = et;
    ArchSimDecoder sim(code, est, opt, fmt, ArchSimConfig{true});
    double cycles = 0, iters = 0;
    const int frames = 20;
    for (int f = 0; f < frames; ++f) {
      const auto frame =
          bench::quantized_frame(code, fmt, 2.0F, 100 + static_cast<std::uint64_t>(f));
      const auto r = sim.decode_quantized(frame);
      cycles += static_cast<double>(r.activity.cycles);
      iters += static_cast<double>(r.activity.iterations);
    }
    cycles /= frames;
    iters /= frames;
    t.add_row({et ? "on" : "off", TextTable::num(iters, 1),
               TextTable::num(cycles, 0), TextTable::num(cycles / 400.0, 2),
               TextTable::num(static_cast<double>(code.k()) * 400.0 / cycles, 0)});
  }
  std::fputs(t.str().c_str(), stdout);
  std::puts("Expected: at waterfall SNR most frames converge in a few\n"
            "iterations, so early termination multiplies average throughput\n"
            "(the paper's \"return early if all parity checks are satisfied\").\n");
}

void multirate_table() {
  TextTable t("Ablation 5 — multi-rate flexibility (all 802.16e families, "
              "z = 96, pipelined @ 400 MHz, 10 it)");
  t.set_header({"family", "n", "k", "layers", "cycles/iter", "latency (us)",
                "info tput (Mbps)"});
  for (WimaxRate rate : all_wimax_rates()) {
    const auto code = make_wimax_code(rate, 96);
    const auto run = bench::run_design_point(code, ArchKind::kTwoLayerPipelined,
                                             400.0, 96, FixedFormat{8, 2}, true);
    const double it = static_cast<double>(run.activity.iterations);
    t.add_row({wimax_rate_name(rate),
               TextTable::integer(static_cast<long long>(code.n())),
               TextTable::integer(static_cast<long long>(code.k())),
               TextTable::integer(static_cast<long long>(code.num_layers())),
               TextTable::num(static_cast<double>(run.activity.cycles) / it, 1),
               TextTable::num(latency_us(run.activity.cycles, 400.0), 2),
               TextTable::num(info_throughput_mbps(code.k(),
                                                   run.activity.cycles, 400.0),
                              0)});
  }
  std::fputs(t.str().c_str(), stdout);
  std::puts("Expected: higher-rate families have fewer layers and fewer\n"
            "block columns per iteration, so they decode faster — the same\n"
            "hardware covers the whole standard (the flexibility claim).\n");
}

void checknode_hardware_ablation() {
  // Why Algorithm 1 uses min-sum: the exact sum-product check node needs
  // phi/phi^{-1} lookup tables per lane, which dwarf the compare-select
  // datapath in both area and delay.
  TextTable t("Ablation 6 — check-node datapath cost: min-sum vs sum-product "
              "(one lane, 8-bit, 65 nm)");
  t.set_header({"datapath", "comb area (um2)", "critical path (ns)",
                "max clock (MHz)", "area ratio"});
  const PicoCompiler pico(FixedFormat{8, 2});
  const OpGraph ms1 = pico.build_core1_graph();
  const OpGraph ms2 = pico.build_core2_graph();
  const OpGraph bp1 = pico.build_bp_core1_graph();
  const OpGraph bp2 = pico.build_bp_core2_graph();
  const double ms_area = ms1.total_area_um2() + ms2.total_area_um2();
  const double bp_area = bp1.total_area_um2() + bp2.total_area_um2();
  const double ms_path = std::max(ms1.critical_path_ns(), ms2.critical_path_ns());
  const double bp_path = std::max(bp1.critical_path_ns(), bp2.critical_path_ns());
  t.add_row({"min-sum (core1+core2)", TextTable::num(ms_area, 0),
             TextTable::num(ms_path, 2),
             TextTable::num(std::min(max_schedulable_mhz(ms1),
                                     max_schedulable_mhz(ms2)),
                            0),
             "1.00"});
  t.add_row({"sum-product (phi LUTs)", TextTable::num(bp_area, 0),
             TextTable::num(bp_path, 2),
             TextTable::num(std::min(max_schedulable_mhz(bp1),
                                     max_schedulable_mhz(bp2)),
                            0),
             TextTable::num(bp_area / ms_area, 2)});
  std::fputs(t.str().c_str(), stdout);
  std::puts("Expected: the LUT-based exact check node costs several times\n"
            "the min-sum datapath per lane — at z = 96 lanes that difference\n"
            "is the whole area budget, which is why every decoder in Table II\n"
            "uses a min-sum variant.\n");
}

}  // namespace

int main() {
  scale_sweep();
  quant_sweep();
  ordering_ablation();
  early_termination_ablation();
  multirate_table();
  checknode_hardware_ablation();
  return 0;
}
