// Table I reproduction: SpyGlass-style power estimate of the (2304, 1/2)
// pipelined decoder with and without clock gating (std cells only — the
// paper's numbers exclude the external SRAMs).
//
// Leakage and switching are activity-independent of gating; the sequential
// internal (clock) power drops because PICO's idle-register and block-level
// gating stop clocking registers that are not being written. Our reduction
// comes from the simulator's measured write activity per register class.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "power/area_model.hpp"
#include "power/power_model.hpp"
#include "util/table.hpp"

using namespace ldpc;

int main() {
  const auto code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  const double mhz = 400.0;

  const auto est =
      pico.compile(code, ArchKind::kTwoLayerPipelined, HardwareTarget{mhz, 96});
  // Same operating point as the Table II bench: hazard-aware column order,
  // 10 iterations, sustained decoding.
  const auto run = bench::run_design_point(code, ArchKind::kTwoLayerPipelined,
                                           mhz, 96, fmt, /*reorder=*/true);

  const AreaModel area_model;
  const auto area = area_model.estimate(est, bench::flexible_decoder_sram_bits());
  const PowerModel power_model;
  const auto gated =
      power_model.estimate(est, run.activity, area.std_cells_mm2, true);
  const auto ungated =
      power_model.estimate(est, run.activity, area.std_cells_mm2, false);

  TextTable table(
      "Table I — power with and without clock gating ((2304, 1/2) pipelined "
      "decoder, 400 MHz, std cells only; paper values in parentheses)");
  table.set_header({"", "Leakage", "Internal", "Switching", "Total"});
  table.add_row({"W/ clock-gating (measured)", TextTable::num(gated.leakage_mw, 2) + " mW",
                 TextTable::num(gated.internal_mw, 1) + " mW",
                 TextTable::num(gated.switching_mw, 1) + " mW",
                 TextTable::num(gated.total_mw, 1) + " mW"});
  table.add_row({"W/ clock-gating (paper)", "(3.43 mW)", "(46.1 mW)",
                 "(22.5 mW)", "(72.0 mW)"});
  table.add_rule();
  table.add_row({"W/O clock-gating (measured)", TextTable::num(ungated.leakage_mw, 2) + " mW",
                 TextTable::num(ungated.internal_mw, 1) + " mW",
                 TextTable::num(ungated.switching_mw, 1) + " mW",
                 TextTable::num(ungated.total_mw, 1) + " mW"});
  table.add_row({"W/O clock-gating (paper)", "(3.43 mW)", "(64.5 mW)",
                 "(22.5 mW)", "(90.4 mW)"});
  std::fputs(table.str().c_str(), stdout);

  const double measured_reduction = 1.0 - gated.internal_mw / ungated.internal_mw;
  const double paper_reduction = 1.0 - 46.1 / 64.5;
  std::printf(
      "\nSequential internal power reduction via clock gating:\n"
      "  measured: %.1f%%   paper: %.1f%% (the \"29%%\" headline)\n"
      "Invariants (both hold by construction and are asserted in tests):\n"
      "  leakage identical across rows, switching identical across rows.\n"
      "SRAM access power (excluded above, both rows): %.1f mW\n",
      measured_reduction * 100.0, paper_reduction * 100.0, gated.sram_mw);
  return 0;
}
