// HARQ link-layer comparison — what combining buys over blind retries.
//
// Closed-loop link simulation (src/harq/harq_link.hpp) over the WiMAX
// (2304, 1/2) z = 96 case-study code: per MCS (modulation x rate-matched
// code rate, all derived from the ONE mother code via the RateMatcher),
// the three retransmission strategies are run at a fixed waterfall-region
// Eb/N0 with a budget of 4 transmissions per frame:
//   plain-retry — type-I HARQ, the retransmission replaces the buffer;
//   chase       — the retransmission ADDS into the buffer (~3 dB per
//                 doubling on combined positions);
//   incremental — previously punctured parity is revealed chunk by chunk
//                 (new information at a fraction of the symbol cost).
// Reported per (MCS, mode): delivered-throughput in info bits per channel
// symbol, mean transmissions per frame, and residual BLER after HARQ.
// Expected ordering at every MCS: IR >= chase > plain in throughput —
// the artifact gate in scripts/check.sh enforces it on the JSON output.
#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/decoder_factory.hpp"
#include "harq/harq_link.hpp"
#include "util/table.hpp"

using namespace ldpc;

namespace {

struct Mcs {
  const char* name;
  Modulation modulation;
  double target_rate;  ///< 0 = mother rate
  float ebn0_db;       ///< fixed operating point (waterfall region)
};

const char* modulation_name(Modulation m) {
  switch (m) {
    case Modulation::kBpsk:  return "bpsk";
    case Modulation::kQpsk:  return "qpsk";
    case Modulation::kQam16: return "16qam";
    case Modulation::kQam64: return "64qam";
  }
  return "?";
}

}  // namespace

int main() {
  const auto code = make_wimax_2304_half_rate();
  constexpr std::size_t kFrames = 96;
  constexpr std::size_t kMaxTransmissions = 4;

  // Operating points sit where the initial transmission fails often enough
  // for the retransmission strategy to matter but HARQ still recovers —
  // the regime the comparison is about.
  const std::vector<Mcs> mcs_table = {
      {"qpsk-r1/2", Modulation::kQpsk, 0.0, 1.2F},
      {"qpsk-r2/3", Modulation::kQpsk, 2.0 / 3.0, 2.4F},
      {"16qam-r2/3", Modulation::kQam16, 2.0 / 3.0, 5.4F},
      {"64qam-r3/4", Modulation::kQam64, 3.0 / 4.0, 10.6F},
  };
  const std::vector<HarqMode> modes = {
      HarqMode::kPlainRetry, HarqMode::kChase, HarqMode::kIncremental};
  const std::string code_name = bench::code_id("wimax-1/2", code);
  const std::string rev = bench::git_rev();

  TextTable table(
      "HARQ link — WiMAX (2304, 1/2) z=96 mother code, 4 transmissions, "
      "layered-minsum q8.2");
  table.set_header({"mcs", "mode", "Eb/N0", "delivered", "BLER", "mean tx",
                    "bits/symbol"});
  bench::JsonReporter json;

  for (const Mcs& mcs : mcs_table) {
    for (const HarqMode mode : modes) {
      HarqLinkConfig config;
      config.ebn0_db = {mcs.ebn0_db};
      config.frames_per_point = kFrames;
      config.max_transmissions = kMaxTransmissions;
      config.mode = mode;
      config.target_rate = mcs.target_rate;
      config.modulation = mcs.modulation;
      config.num_workers = 4;
      config.seed = 2009;
      DecoderOptions base;
      HarqLinkRunner runner(
          code,
          [&code, base] {
            return make_decoder("layered-minsum-fixed", code, base);
          },
          config);
      const HarqPoint p = runner.run()[0];
      const double throughput = p.throughput(runner.info_bits());
      table.add_row({mcs.name, to_string(mode),
                     TextTable::num(mcs.ebn0_db, 1),
                     TextTable::integer(p.delivered_correct),
                     TextTable::num(p.residual_bler(), 3),
                     TextTable::num(p.mean_transmissions(), 2),
                     TextTable::num(throughput, 3)});
      json.add_row()
          .set("mcs", mcs.name)
          .set("code", code_name)
          .set("modulation", modulation_name(mcs.modulation))
          .set("target_rate", mcs.target_rate == 0.0 ? code.rate()
                                                     : mcs.target_rate)
          .set("punctured", mcs.target_rate != 0.0)
          .set("mode", to_string(mode))
          .set("ebn0_db", static_cast<double>(mcs.ebn0_db))
          .set("frames", p.frames)
          .set("delivered_correct", p.delivered_correct)
          .set("harq_exhausted", p.harq_exhausted)
          .set("residual_bler", p.residual_bler())
          .set("mean_transmissions", p.mean_transmissions())
          .set("total_symbols", p.total_symbols)
          .set("throughput_bits_per_symbol", throughput)
          .set("combiner_clips", p.combiner_clips)
          .set("git_rev", rev);
    }
  }

  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nExpected: chase beats plain retry everywhere (combining never\n"
      "discards evidence), and incremental redundancy beats chase in\n"
      "bits/symbol on the punctured MCSs (a NACK costs one circulant of\n"
      "parity instead of a whole frame). The mother-rate MCS has nothing\n"
      "punctured to reveal, so IR degenerates to chase there by design.\n");
  json.write("BENCH_harq_link.json");
  return 0;
}
