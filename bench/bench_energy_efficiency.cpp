// Energy-efficiency design-space sweep — the handset constraint from the
// paper's abstract ("to meet the data rate and power consumption
// constraints in wireless handsets") mapped out: energy per decoded
// information bit across architecture, clock frequency and parallelism,
// with and without clock gating.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "power/area_model.hpp"
#include "power/metrics.hpp"
#include "power/power_model.hpp"
#include "util/table.hpp"

using namespace ldpc;

int main() {
  const auto code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  const AreaModel area_model;
  const PowerModel power_model;

  TextTable t(
      "Energy per decoded information bit — (2304, 1/2), 10 iterations, "
      "hazard-aware order, SRAM access power included");
  t.set_header({"arch", "MHz", "parallelism", "tput (Mbps)", "power (mW)",
                "pJ/bit gated", "pJ/bit ungated", "gating saves"});

  for (ArchKind arch : {ArchKind::kPerLayer, ArchKind::kTwoLayerPipelined}) {
    for (double mhz : {100.0, 400.0}) {
      for (int p : {96, 24}) {
        const auto est = pico.compile(code, arch, HardwareTarget{mhz, p});
        const auto run = bench::run_design_point(code, arch, mhz, p, fmt, true);
        const auto area =
            area_model.estimate(est, bench::flexible_decoder_sram_bits());
        const auto gated =
            power_model.estimate(est, run.activity, area.std_cells_mm2, true);
        const auto ungated =
            power_model.estimate(est, run.activity, area.std_cells_mm2, false);
        const double tput =
            info_throughput_mbps(code.k(), run.activity.cycles, mhz);
        const double epb_g = energy_per_bit_pj(gated.total_with_sram_mw, tput);
        const double epb_u = energy_per_bit_pj(ungated.total_with_sram_mw, tput);
        t.add_row({arch_name(arch), TextTable::num(mhz, 0),
                   TextTable::integer(p), TextTable::num(tput, 0),
                   TextTable::num(gated.total_with_sram_mw, 1),
                   TextTable::num(epb_g, 0), TextTable::num(epb_u, 0),
                   TextTable::percent(1.0 - epb_g / epb_u)});
      }
    }
    t.add_rule();
  }
  std::fputs(t.str().c_str(), stdout);
  std::puts(
      "\nReading guide: energy/bit is nearly flat across frequency and\n"
      "parallelism (power and throughput scale together); the pipelined\n"
      "architecture wins on energy because the same static structure\n"
      "delivers more bits per cycle; clock gating buys a further 10-25%.\n"
      "This is why a handset decoder picks the pipelined architecture at\n"
      "whatever clock meets the data-rate requirement, gated.");
  return 0;
}
