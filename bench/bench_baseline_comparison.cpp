// Architectural baseline comparison — the quantified version of the paper's
// §IV-A motivation: the traditional sub-circulant partial-parallel flooding
// decoder vs the paper's per-layer and two-layer pipelined layered
// architectures, at matched error-rate targets.
//
// Three effects compound in the layered architectures' favour:
//   1. schedule: layered converges in roughly half the iterations;
//   2. memory:   P(+R) storage instead of per-edge Q + R + channel;
//   3. cycles:   2 circulant accesses per edge per iteration instead of 4.
#include <cstdio>

#include "arch/flooding_arch.hpp"
#include "bench/bench_common.hpp"
#include "channel/ber_runner.hpp"
#include "core/decoder_factory.hpp"
#include "power/metrics.hpp"
#include "util/table.hpp"

using namespace ldpc;

namespace {

// Iterations each schedule needs for FER <= target at the probe SNR.
std::size_t iterations_for_target(const QCLdpcCode& code, const char* decoder,
                                  float ebn0, double target_fer) {
  for (std::size_t iters : {4u, 6u, 8u, 10u, 14u, 20u, 30u}) {
    DecoderOptions opt;
    opt.max_iterations = iters;
    BerConfig cfg;
    cfg.ebn0_db = {ebn0};
    cfg.max_frames = 250;
    cfg.min_frames = 120;
    cfg.target_frame_errors = 40;
    cfg.num_workers = 2;
    BerRunner runner(
        code, [&] { return make_decoder(decoder, code, opt); }, cfg);
    if (runner.run()[0].fer() <= target_fer) return iters;
  }
  return 30;
}

}  // namespace

int main() {
  const auto code = make_wimax_2304_half_rate();
  const FixedFormat fmt{8, 2};
  const double mhz = 400.0;

  // 1. Schedule quality: iterations to reach FER 2% at 2.2 dB (z = 48 proxy
  //    keeps the Monte-Carlo cheap; the schedule effect is code-size
  //    independent).
  const auto probe_code = make_wimax_code(WimaxRate::kRate1_2, 48);
  const auto it_flood =
      iterations_for_target(probe_code, "flooding-minsum-norm", 2.2F, 0.02);
  const auto it_layer =
      iterations_for_target(probe_code, "layered-minsum-fixed", 2.2F, 0.02);

  // 2/3. Cycles and memory at the (2304, 1/2) design point, using each
  //      schedule's own iteration requirement.
  DecoderOptions fl_opt;
  fl_opt.max_iterations = it_flood;
  fl_opt.early_termination = false;
  FloodingArchSim flooding(code, fl_opt, fmt, /*pipeline_overhead=*/3);
  const auto frame = bench::quantized_frame(code, fmt, 2.0F, 42);
  const auto fl = flooding.decode_quantized(frame);

  const auto per = bench::run_design_point(code, ArchKind::kPerLayer, mhz, 96,
                                           fmt, false, it_layer);
  const auto pipe = bench::run_design_point(code, ArchKind::kTwoLayerPipelined,
                                            mhz, 96, fmt, true, it_layer);
  const long long layered_mem = bench::flexible_decoder_sram_bits();

  TextTable t("Baseline comparison — traditional flooding vs this paper's "
              "architectures ((2304, 1/2), 400 MHz, equal-FER iteration "
              "budgets: flooding " +
              std::to_string(it_flood) + " it, layered " +
              std::to_string(it_layer) + " it)");
  t.set_header({"architecture", "cycles/iter", "iters", "cycles/frame",
                "latency (us)", "info tput (Mbps)", "msg memory (bits)"});
  t.add_row({"partial-parallel flooding",
             TextTable::integer(fl.cycles_per_iteration),
             TextTable::integer(static_cast<long long>(it_flood)),
             TextTable::integer(fl.cycles_per_iteration *
                                static_cast<long long>(it_flood)),
             TextTable::num(latency_us(fl.cycles_per_iteration *
                                           static_cast<long long>(it_flood),
                                       mhz),
                            2),
             TextTable::num(info_throughput_mbps(
                                code.k(),
                                fl.cycles_per_iteration *
                                    static_cast<long long>(it_flood),
                                mhz),
                            0),
             TextTable::integer(fl.total_memory_bits())});
  auto layered_row = [&](const char* name, const ArchDecodeResult& r) {
    const long long cyc = r.activity.cycles;
    t.add_row({name,
               TextTable::num(static_cast<double>(cyc) /
                                  static_cast<double>(r.activity.iterations),
                              1),
               TextTable::integer(static_cast<long long>(it_layer)),
               TextTable::integer(cyc), TextTable::num(latency_us(cyc, mhz), 2),
               TextTable::num(info_throughput_mbps(code.k(), cyc, mhz), 0),
               TextTable::integer(layered_mem)});
  };
  layered_row("per-layer (this paper)", per);
  layered_row("two-layer pipelined (this paper)", pipe);
  std::fputs(t.str().c_str(), stdout);

  std::puts(
      "\nExpected shape: flooding needs ~2x the iterations AND ~2x the\n"
      "circulant accesses per iteration AND ~60% more message memory, so\n"
      "the pipelined layered decoder ends up several times faster at lower\n"
      "storage — the architectural argument of the paper's §IV.");
  return 0;
}
