// Software decoder micro-benchmarks (google-benchmark) plus the tracked
// decoder-throughput measurement.
//
// Not a paper table — this measures the C++ library itself: frames/second
// and info-bit throughput of each decoder implementation on the host CPU,
// which is what a downstream user simulating BER curves cares about.
//
// Before the google-benchmark suite runs, main() takes a wall-clock
// measurement of every layered-decoder implementation on the paper's
// (2304, 1/2) z = 96 case-study code and writes it to
// BENCH_decoder_throughput.json (decoder label, code id, frames/s, info
// Mbps, iterations/frame, speedup vs. the scalar fixed-point decoder) so
// the perf trajectory is machine-readable across PRs. The headline row is
// the SIMD z-lane decoder, whose acceptance target is >= 4x the scalar
// layered-minsum-fixed single-thread throughput.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_common.hpp"
#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "codes/wimax.hpp"
#include "core/decoder_factory.hpp"
#include "core/simd/simd_kernel.hpp"
#include "util/rng.hpp"

namespace {

using namespace ldpc;

const QCLdpcCode& code2304() {
  static const QCLdpcCode code = make_wimax_2304_half_rate();
  return code;
}

std::vector<float> noisy_llr(const QCLdpcCode& code, float ebn0, std::uint64_t seed) {
  const RuEncoder enc(code);
  Xoshiro256 rng(seed);
  BitVec info(code.k());
  for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
  const float variance = awgn_noise_variance(ebn0, code.rate());
  AwgnChannel ch(variance, seed + 1);
  return BpskModem::demodulate(
      ch.transmit(BpskModem::modulate(enc.encode(info))), variance);
}

// ------------------------------------------------ tracked JSON measurement --

struct Throughput {
  double frames_per_s = 0.0;
  double info_mbps = 0.0;
  double iters_per_frame = 0.0;
};

/// Wall-clock throughput of one decoder on one frozen frame: warm up,
/// then decode for at least `min_seconds` of elapsed time.
Throughput measure(Decoder& dec, const QCLdpcCode& code,
                   std::span<const float> llr, double min_seconds = 0.3) {
  using clock = std::chrono::steady_clock;
  for (int i = 0; i < 3; ++i) benchmark::DoNotOptimize(dec.decode(llr));
  std::size_t frames = 0;
  std::size_t iters = 0;
  const auto start = clock::now();
  double elapsed = 0.0;
  do {
    const auto result = dec.decode(llr);
    benchmark::DoNotOptimize(result.iterations);
    iters += result.iterations;
    ++frames;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (elapsed < min_seconds);
  Throughput t;
  t.frames_per_s = static_cast<double>(frames) / elapsed;
  t.info_mbps = t.frames_per_s * static_cast<double>(code.k()) / 1e6;
  t.iters_per_frame = static_cast<double>(iters) / static_cast<double>(frames);
  return t;
}

void write_throughput_json() {
  const auto& code = code2304();
  const std::string code_id =
      "wimax-1/2 z=96 n=" + std::to_string(code.n());
  // 2.0 dB waterfall frame, early termination on: the BER-harness
  // operating point (converges in a handful of iterations).
  const auto llr = noisy_llr(code, 2.0F, 5);
  DecoderOptions opt;
  opt.max_iterations = 10;

  bench::JsonReporter report;
  double scalar_fps = 0.0;
  const char* names[] = {
      "layered-minsum-fixed",  "layered-minsum-simd",
      "layered-minsum-q6",     "layered-minsum-simd-q6",
      "layered-minsum-float",
  };
  std::printf("decoder throughput — %s, 10 iters max, ET on\n",
              code_id.c_str());
  for (const char* name : names) {
    auto dec = make_decoder(name, code, opt);
    const Throughput t = measure(*dec, code, llr);
    if (std::string(name) == "layered-minsum-fixed") scalar_fps = t.frames_per_s;
    const double speedup =
        scalar_fps > 0.0 ? t.frames_per_s / scalar_fps : 0.0;
    report.add_row()
        .set("decoder", name)
        .set("label", dec->name())
        .set("code", code_id)
        .set("frames_per_s", t.frames_per_s)
        .set("info_mbps", t.info_mbps)
        .set("iters_per_frame", t.iters_per_frame)
        .set("speedup_vs_scalar_fixed", speedup)
        .set("simd_tier", simd::to_string(simd::best_tier()));
    std::printf("  %-28s %10.0f frames/s  %8.2f Mbps  %5.2f iters/frame  %5.2fx\n",
                dec->name().c_str(), t.frames_per_s, t.info_mbps,
                t.iters_per_frame, speedup);
  }
  report.write("BENCH_decoder_throughput.json");
}

// ------------------------------------------------------- google-benchmark --

void decode_bench(benchmark::State& state, const std::string& name,
                  bool early_termination) {
  const auto& code = code2304();
  DecoderOptions opt;
  opt.max_iterations = 10;
  opt.early_termination = early_termination;
  auto dec = make_decoder(name, code, opt);
  const auto llr = noisy_llr(code, 2.0F, 5);
  for (auto _ : state) {
    auto result = dec->decode(llr);
    benchmark::DoNotOptimize(result.iterations);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["info_Mbps"] = benchmark::Counter(
      static_cast<double>(state.iterations() * code.k()) / 1e6,
      benchmark::Counter::kIsRate);
}

void BM_LayeredFixed(benchmark::State& s) { decode_bench(s, "layered-minsum-fixed", true); }
void BM_LayeredFixedNoET(benchmark::State& s) { decode_bench(s, "layered-minsum-fixed", false); }
void BM_LayeredSimd(benchmark::State& s) { decode_bench(s, "layered-minsum-simd", true); }
void BM_LayeredSimdNoET(benchmark::State& s) { decode_bench(s, "layered-minsum-simd", false); }
void BM_LayeredFloat(benchmark::State& s) { decode_bench(s, "layered-minsum-float", true); }
void BM_FloodingMinSumNorm(benchmark::State& s) { decode_bench(s, "flooding-minsum-norm", true); }
void BM_FloodingBp(benchmark::State& s) { decode_bench(s, "flooding-bp", true); }

BENCHMARK(BM_LayeredFixed);
BENCHMARK(BM_LayeredFixedNoET);
BENCHMARK(BM_LayeredSimd);
BENCHMARK(BM_LayeredSimdNoET);
BENCHMARK(BM_LayeredFloat);
BENCHMARK(BM_FloodingMinSumNorm);
BENCHMARK(BM_FloodingBp);

void BM_Encoder(benchmark::State& state) {
  const auto& code = code2304();
  const RuEncoder enc(code);
  Xoshiro256 rng(9);
  BitVec info(code.k());
  for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
  for (auto _ : state) {
    auto word = enc.encode(info);
    benchmark::DoNotOptimize(word.popcount());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Encoder);

void BM_DenseEncoder(benchmark::State& state) {
  const auto& code = code2304();
  const DenseEncoder enc(code);
  Xoshiro256 rng(9);
  BitVec info(code.k());
  for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
  for (auto _ : state) {
    auto word = enc.encode(info);
    benchmark::DoNotOptimize(word.popcount());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DenseEncoder);

}  // namespace

int main(int argc, char** argv) {
  write_throughput_json();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
