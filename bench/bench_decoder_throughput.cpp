// Software decoder micro-benchmarks (google-benchmark) plus the tracked
// decoder-throughput measurement.
//
// Not a paper table — this measures the C++ library itself: frames/second
// and info-bit throughput of each decoder implementation on the host CPU,
// which is what a downstream user simulating BER curves cares about.
//
// Before the google-benchmark suite runs, main() takes a wall-clock
// measurement of every layered-decoder implementation on the paper's
// (2304, 1/2) z = 96 case-study code and writes it to
// BENCH_decoder_throughput.json (decoder label, code id, frames/s, info
// Mbps, iterations/frame, speedup vs. the scalar fixed-point decoder) so
// the perf trajectory is machine-readable across PRs. Two headline rows:
// the SIMD z-lane decoder (acceptance target >= 4x the scalar
// layered-minsum-fixed single-thread throughput) and the aggregate
// "engine-simd-batched" entry — frames streamed through the BatchEngine
// into the inter-frame-batched SIMD decoder as full lane-blocks, with
// engine-level info/code throughput and p50/p95/p99 latency (acceptance
// target >= 100 Mbps aggregate info throughput). Both SIMD rows hard-fail
// the benchmark if any decode fell back to a scalar path: a tracked perf
// number silently measured on the wrong kernel is worse than no number.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>

#include "bench_common.hpp"
#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "codes/wimax.hpp"
#include "core/decoder_factory.hpp"
#include "core/simd/simd_batch.hpp"
#include "core/simd/simd_kernel.hpp"
#include "runtime/batch_engine.hpp"
#include "util/rng.hpp"

namespace {

using namespace ldpc;

const QCLdpcCode& code2304() {
  static const QCLdpcCode code = make_wimax_2304_half_rate();
  return code;
}

std::vector<float> noisy_llr(const QCLdpcCode& code, float ebn0, std::uint64_t seed) {
  const RuEncoder enc(code);
  Xoshiro256 rng(seed);
  BitVec info(code.k());
  for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
  const float variance = awgn_noise_variance(ebn0, code.rate());
  AwgnChannel ch(variance, seed + 1);
  return BpskModem::demodulate(
      ch.transmit(BpskModem::modulate(enc.encode(info))), variance);
}

// ------------------------------------------------ tracked JSON measurement --

struct Throughput {
  double frames_per_s = 0.0;
  double info_mbps = 0.0;
  double iters_per_frame = 0.0;
};

/// Wall-clock throughput of one decoder on one frozen frame: warm up,
/// then decode for at least `min_seconds` of elapsed time.
Throughput measure(Decoder& dec, const QCLdpcCode& code,
                   std::span<const float> llr, double min_seconds = 0.3) {
  using clock = std::chrono::steady_clock;
  for (int i = 0; i < 3; ++i) benchmark::DoNotOptimize(dec.decode(llr));
  std::size_t frames = 0;
  std::size_t iters = 0;
  const auto start = clock::now();
  double elapsed = 0.0;
  do {
    const auto result = dec.decode(llr);
    benchmark::DoNotOptimize(result.iterations);
    iters += result.iterations;
    ++frames;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (elapsed < min_seconds);
  Throughput t;
  t.frames_per_s = static_cast<double>(frames) / elapsed;
  t.info_mbps = t.frames_per_s * static_cast<double>(code.k()) / 1e6;
  t.iters_per_frame = static_cast<double>(iters) / static_cast<double>(frames);
  return t;
}

/// Distinct noisy frames (one per lane and then some) so the batched
/// decoder sees the realistic mix of per-frame iteration counts the lane
/// refill is built for, not one frame copied across every lane.
std::vector<std::vector<float>> noisy_frames(const QCLdpcCode& code,
                                             std::size_t count) {
  std::vector<std::vector<float>> frames;
  frames.reserve(count);
  for (std::size_t f = 0; f < count; ++f)
    frames.push_back(noisy_llr(code, 2.0F, 5 + 7 * f));
  return frames;
}

/// Wall-clock throughput of the inter-frame-batched decoder driven with
/// full blocks directly (no engine): the kernel-level ceiling the engine
/// path is compared against. Fails the benchmark if any frame fell back.
Throughput measure_block(SimdBatchDecoder& dec, const QCLdpcCode& code,
                         const std::vector<std::vector<float>>& pool,
                         double min_seconds = 0.3) {
  using clock = std::chrono::steady_clock;
  const std::size_t width = dec.block_width();
  std::vector<BlockFrame> block(width);
  std::vector<DecodeResult> results(width);
  std::vector<SaturationStats> sats(width);
  std::size_t cursor = 0;
  const auto fill = [&] {
    for (std::size_t i = 0; i < width; ++i)
      block[i].llr = pool[(cursor + i) % pool.size()];
    cursor = (cursor + width) % pool.size();
  };
  fill();
  dec.decode_block(block, results, sats);  // warm-up
  std::size_t frames = 0;
  std::size_t iters = 0;
  const auto start = clock::now();
  double elapsed = 0.0;
  do {
    fill();
    dec.decode_block(block, results, sats);
    for (const DecodeResult& r : results) {
      iters += r.iterations;
      if (r.simd_fallback != SimdFallback::kNone) {
        std::fprintf(stderr,
                     "FATAL: batched benchmark decode fell back to a scalar "
                     "path (%s) — the tracked number would be a lie\n",
                     to_string(r.simd_fallback));
        std::exit(1);
      }
    }
    frames += width;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (elapsed < min_seconds);
  Throughput t;
  t.frames_per_s = static_cast<double>(frames) / elapsed;
  t.info_mbps = t.frames_per_s * static_cast<double>(code.k()) / 1e6;
  t.iters_per_frame = static_cast<double>(iters) / static_cast<double>(frames);
  return t;
}

void write_throughput_json() {
  const auto& code = code2304();
  const std::string code_id = bench::code_id("wimax-1/2", code);
  const std::string rev = bench::git_rev();
  // 2.0 dB waterfall frame, early termination on: the BER-harness
  // operating point (converges in a handful of iterations).
  const auto llr = noisy_llr(code, 2.0F, 5);
  DecoderOptions opt;
  opt.max_iterations = 10;

  bench::JsonReporter report;
  double scalar_fps = 0.0;
  const char* names[] = {
      "layered-minsum-fixed",  "layered-minsum-simd",
      "layered-minsum-q6",     "layered-minsum-simd-q6",
      "layered-minsum-float",
  };
  std::printf("decoder throughput — %s, 10 iters max, ET on\n",
              code_id.c_str());
  for (const char* name : names) {
    auto dec = make_decoder(name, code, opt);
    const Throughput t = measure(*dec, code, llr);
    if (std::string(name) == "layered-minsum-fixed") scalar_fps = t.frames_per_s;
    const double speedup =
        scalar_fps > 0.0 ? t.frames_per_s / scalar_fps : 0.0;
    report.add_row()
        .set("decoder", name)
        .set("label", dec->name())
        .set("code", code_id)
        .set("ebn0_db", 2.0)
        .set("frames_per_s", t.frames_per_s)
        .set("info_mbps", t.info_mbps)
        .set("iters_per_frame", t.iters_per_frame)
        .set("speedup_vs_scalar_fixed", speedup)
        .set("simd_tier", simd::to_string(simd::best_tier()))
        .set("git_rev", rev);
    std::printf("  %-28s %10.0f frames/s  %8.2f Mbps  %5.2f iters/frame  %5.2fx\n",
                dec->name().c_str(), t.frames_per_s, t.info_mbps,
                t.iters_per_frame, speedup);
  }

  // Inter-frame-batched kernel, driven with full lane-blocks of distinct
  // frames — the per-call ceiling.
  const auto pool = noisy_frames(code, 61);  // coprime to every lane count
  {
    SimdBatchDecoder dec(code, opt);
    const Throughput t = measure_block(dec, code, pool);
    report.add_row()
        .set("decoder", "layered-minsum-simd-batched")
        .set("label", dec.name())
        .set("code", code_id)
        .set("ebn0_db", 2.0)
        .set("frames_per_s", t.frames_per_s)
        .set("info_mbps", t.info_mbps)
        .set("iters_per_frame", t.iters_per_frame)
        .set("speedup_vs_scalar_fixed",
             scalar_fps > 0.0 ? t.frames_per_s / scalar_fps : 0.0)
        .set("block_width", static_cast<double>(dec.block_width()))
        .set("simd_tier", simd::to_string(dec.tier()))
        .set("git_rev", rev);
    std::printf("  %-28s %10.0f frames/s  %8.2f Mbps  %5.2f iters/frame  %5.2fx\n",
                dec.name().c_str(), t.frames_per_s, t.info_mbps,
                t.iters_per_frame,
                scalar_fps > 0.0 ? t.frames_per_s / scalar_fps : 0.0);
  }

  // Aggregate engine-level number: the same frames streamed through the
  // BatchEngine as lane-width blocks. This is the deployable figure — it
  // includes submit/drain, queueing, per-frame stats and slot scatter —
  // and the row the perf gate in scripts/check.sh pins (>= 100 Mbps info).
  {
    BatchEngineConfig cfg;
    cfg.num_workers = 1;  // single-core aggregate; workers scale separately
    cfg.queue_capacity = 64;
    const auto probe = SimdBatchDecoder(code, opt).block_width();
    cfg.block_frames = probe;
    BatchEngine engine(
        [&code, &opt] { return std::make_unique<SimdBatchDecoder>(code, opt); },
        cfg);
    const auto start = std::chrono::steady_clock::now();
    do {
      auto results = engine.decode_batch(pool);
      benchmark::DoNotOptimize(results.data());
    } while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
                 .count() < 0.4);
    const EngineMetrics m = engine.snapshot();
    std::size_t fallbacks = 0;
    for (const auto& w : m.workers) fallbacks += w.simd_fallbacks;
    if (fallbacks != 0) {
      std::fprintf(stderr,
                   "FATAL: %zu engine decodes fell back to a scalar path — "
                   "the tracked aggregate would be a lie\n",
                   fallbacks);
      std::exit(1);
    }
    const double fps = m.wall_seconds > 0.0
                           ? static_cast<double>(m.jobs_completed) /
                                 m.wall_seconds
                           : 0.0;
    report.add_row()
        .set("decoder", "engine-simd-batched")
        .set("label", "engine(layered-minsum-simd-batched)")
        .set("code", code_id)
        .set("ebn0_db", 2.0)
        .set("frames_per_s", fps)
        .set("info_mbps", m.info_throughput_mbps)
        .set("code_mbps", m.code_throughput_mbps)
        .set("iters_per_frame", m.avg_iterations())
        .set("speedup_vs_scalar_fixed",
             scalar_fps > 0.0 ? fps / scalar_fps : 0.0)
        .set("workers", static_cast<double>(cfg.num_workers))
        .set("block_frames", static_cast<double>(cfg.block_frames))
        .set("p50_us", m.latency.p50_us)
        .set("p95_us", m.latency.p95_us)
        .set("p99_us", m.latency.p99_us)
        .set("simd_fallbacks", static_cast<double>(fallbacks))
        .set("simd_tier", simd::to_string(simd::best_tier()))
        .set("git_rev", rev);
    std::printf(
        "  %-28s %10.0f frames/s  %8.2f Mbps info  %8.2f Mbps code\n"
        "  %-28s p50 %.0f us  p95 %.0f us  p99 %.0f us  0 fallbacks\n",
        "engine-simd-batched", fps, m.info_throughput_mbps,
        m.code_throughput_mbps, "", m.latency.p50_us, m.latency.p95_us,
        m.latency.p99_us);
  }
  report.write("BENCH_decoder_throughput.json");
}

// ------------------------------------------------------- google-benchmark --

void decode_bench(benchmark::State& state, const std::string& name,
                  bool early_termination) {
  const auto& code = code2304();
  DecoderOptions opt;
  opt.max_iterations = 10;
  opt.early_termination = early_termination;
  auto dec = make_decoder(name, code, opt);
  const auto llr = noisy_llr(code, 2.0F, 5);
  for (auto _ : state) {
    auto result = dec->decode(llr);
    benchmark::DoNotOptimize(result.iterations);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["info_Mbps"] = benchmark::Counter(
      static_cast<double>(state.iterations() * code.k()) / 1e6,
      benchmark::Counter::kIsRate);
}

void BM_LayeredFixed(benchmark::State& s) { decode_bench(s, "layered-minsum-fixed", true); }
void BM_LayeredFixedNoET(benchmark::State& s) { decode_bench(s, "layered-minsum-fixed", false); }
void BM_LayeredSimd(benchmark::State& s) { decode_bench(s, "layered-minsum-simd", true); }
void BM_LayeredSimdNoET(benchmark::State& s) { decode_bench(s, "layered-minsum-simd", false); }
void BM_LayeredFloat(benchmark::State& s) { decode_bench(s, "layered-minsum-float", true); }
void BM_FloodingMinSumNorm(benchmark::State& s) { decode_bench(s, "flooding-minsum-norm", true); }
void BM_FloodingBp(benchmark::State& s) { decode_bench(s, "flooding-bp", true); }

BENCHMARK(BM_LayeredFixed);
BENCHMARK(BM_LayeredFixedNoET);
BENCHMARK(BM_LayeredSimd);
BENCHMARK(BM_LayeredSimdNoET);
BENCHMARK(BM_LayeredFloat);
BENCHMARK(BM_FloodingMinSumNorm);
BENCHMARK(BM_FloodingBp);

void BM_Encoder(benchmark::State& state) {
  const auto& code = code2304();
  const RuEncoder enc(code);
  Xoshiro256 rng(9);
  BitVec info(code.k());
  for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
  for (auto _ : state) {
    auto word = enc.encode(info);
    benchmark::DoNotOptimize(word.popcount());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Encoder);

void BM_DenseEncoder(benchmark::State& state) {
  const auto& code = code2304();
  const DenseEncoder enc(code);
  Xoshiro256 rng(9);
  BitVec info(code.k());
  for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
  for (auto _ : state) {
    auto word = enc.encode(info);
    benchmark::DoNotOptimize(word.popcount());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DenseEncoder);

}  // namespace

int main(int argc, char** argv) {
  write_throughput_json();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
