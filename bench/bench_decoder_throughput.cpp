// Software decoder micro-benchmarks (google-benchmark).
//
// Not a paper table — this measures the C++ library itself: frames/second
// and info-bit throughput of each decoder implementation on the host CPU,
// which is what a downstream user simulating BER curves cares about.
#include <benchmark/benchmark.h>

#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "codes/wimax.hpp"
#include "core/decoder_factory.hpp"
#include "util/rng.hpp"

namespace {

using namespace ldpc;

const QCLdpcCode& code2304() {
  static const QCLdpcCode code = make_wimax_2304_half_rate();
  return code;
}

std::vector<float> noisy_llr(const QCLdpcCode& code, float ebn0, std::uint64_t seed) {
  const RuEncoder enc(code);
  Xoshiro256 rng(seed);
  BitVec info(code.k());
  for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
  const float variance = awgn_noise_variance(ebn0, code.rate());
  AwgnChannel ch(variance, seed + 1);
  return BpskModem::demodulate(
      ch.transmit(BpskModem::modulate(enc.encode(info))), variance);
}

void decode_bench(benchmark::State& state, const std::string& name,
                  bool early_termination) {
  const auto& code = code2304();
  DecoderOptions opt;
  opt.max_iterations = 10;
  opt.early_termination = early_termination;
  auto dec = make_decoder(name, code, opt);
  const auto llr = noisy_llr(code, 2.0F, 5);
  for (auto _ : state) {
    auto result = dec->decode(llr);
    benchmark::DoNotOptimize(result.iterations);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["info_Mbps"] = benchmark::Counter(
      static_cast<double>(state.iterations() * code.k()) / 1e6,
      benchmark::Counter::kIsRate);
}

void BM_LayeredFixed(benchmark::State& s) { decode_bench(s, "layered-minsum-fixed", true); }
void BM_LayeredFixedNoET(benchmark::State& s) { decode_bench(s, "layered-minsum-fixed", false); }
void BM_LayeredFloat(benchmark::State& s) { decode_bench(s, "layered-minsum-float", true); }
void BM_FloodingMinSumNorm(benchmark::State& s) { decode_bench(s, "flooding-minsum-norm", true); }
void BM_FloodingBp(benchmark::State& s) { decode_bench(s, "flooding-bp", true); }

BENCHMARK(BM_LayeredFixed);
BENCHMARK(BM_LayeredFixedNoET);
BENCHMARK(BM_LayeredFloat);
BENCHMARK(BM_FloodingMinSumNorm);
BENCHMARK(BM_FloodingBp);

void BM_Encoder(benchmark::State& state) {
  const auto& code = code2304();
  const RuEncoder enc(code);
  Xoshiro256 rng(9);
  BitVec info(code.k());
  for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
  for (auto _ : state) {
    auto word = enc.encode(info);
    benchmark::DoNotOptimize(word.popcount());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Encoder);

void BM_DenseEncoder(benchmark::State& state) {
  const auto& code = code2304();
  const DenseEncoder enc(code);
  Xoshiro256 rng(9);
  BitVec info(code.k());
  for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
  for (auto _ : state) {
    auto word = enc.encode(info);
    benchmark::DoNotOptimize(word.popcount());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DenseEncoder);

}  // namespace

BENCHMARK_MAIN();
