// Fault-resilience campaign: BER/FER degradation and detection coverage of
// the decoder pipeline under injected SRAM / datapath / scoreboard upsets.
//
// The paper's silicon carries 82,944 SRAM bits (Table II) plus the
// min1/min2/sign register files of the two-stage cores (Fig. 5/7); this
// bench sweeps per-bit per-access upset rate x Eb/N0 and reports how the
// decode degrades and — the graceful-degradation claim — how much of the
// degradation the decoder flags itself via DecodeStatus (parity recheck +
// iteration watchdog). Two campaigns run:
//
//   1. layered-fixed, all sites, rate sweep at fixed Eb/N0 — the headline
//      degradation curve (committed to EXPERIMENTS.md).
//   2. arch-sim, SRAM + scoreboard sites — the §IV-B RAW-hazard failure
//      mode that only exists in the pipelined architecture.
//
// Output is deterministic: running twice produces byte-identical CSV
// (acceptance criterion for the fault subsystem).
//
//   --csv out.csv   also write the combined table as CSV
#include <cstdio>
#include <memory>

#include "codes/wimax.hpp"
#include "fault/campaign.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace ldpc;

namespace {

std::vector<FaultCampaignPoint> run_campaign(
    const QCLdpcCode& code, const FaultCampaignConfig& cfg, TextTable& table,
    CsvWriter* csv) {
  FaultCampaignRunner runner(code, cfg);
  const auto points = runner.run();
  for (const auto& p : points) {
    const auto row = runner.csv_row(p);
    table.add_row(row);
    if (csv) csv->write_row(row);
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) try {
  const CliArgs args(argc, argv, {"csv", "frames"});
  const auto code = make_wimax_code(WimaxRate::kRate1_2, 96);
  const auto frames = static_cast<std::size_t>(args.get_int("frames", 200));

  TextTable table(
      "Fault resilience — WiMAX (2304, 1/2), BPSK/AWGN, 10 iterations, "
      "watchdog window 3");
  table.set_header(FaultCampaignRunner::csv_header());

  std::unique_ptr<CsvWriter> csv;
  if (args.has("csv")) {
    csv = std::make_unique<CsvWriter>(args.get("csv", ""));
    csv->write_row(FaultCampaignRunner::csv_header());
  }

  // Campaign 1: algorithmic layered decoder, all fault sites, upset-rate
  // sweep at a waterfall-region operating point plus one high-SNR point
  // (where channel errors vanish and faults dominate).
  FaultCampaignConfig c1;
  c1.fault_rates = {0.0, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2};
  c1.ebn0_db = {2.0F, 3.0F};
  c1.frames_per_point = frames;
  c1.target = CampaignTarget::kLayeredFixed;
  run_campaign(code, c1, table, csv.get());

  // Campaign 2: cycle-accurate pipelined architecture, SRAM + scoreboard
  // sites (the RAW-hazard failure of §IV-B). Fewer frames — the cycle
  // simulator is ~20x the algorithmic decoder's cost.
  FaultCampaignConfig c2;
  c2.fault_rates = {0.0, 1e-4, 1e-3};
  c2.ebn0_db = {3.0F};
  c2.frames_per_point = frames / 5 == 0 ? 1 : frames / 5;
  c2.sites = kSramFaultSites | kScoreboardFaultSites;
  c2.target = CampaignTarget::kArchSim;
  run_campaign(code, c2, table, csv.get());

  std::fputs(table.str().c_str(), stdout);
  std::puts(
      "\nExpected shape: BER/FER flat up to ~1e-5 upsets/bit (the code\n"
      "corrects sparse upsets like channel noise), degrading steeply past\n"
      "1e-3; detection coverage stays near 1.0 — corrupted frames fail the\n"
      "output parity recheck or trip the watchdog instead of being reported\n"
      "as clean decodes. The arch-sim campaign shows the scoreboard site's\n"
      "stale-P reads degrading the pipelined architecture specifically.");
  return 0;
} catch (const Error& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
