// Finite-alphabet decoder family — the two numbers the low-resolution
// story stands on, measured on the WiMAX (2304, 1/2) z = 96 case-study
// code and gated by scripts/check.sh on the JSON artifact:
//
//   1. Throughput: the int8-packed fa4 inter-frame-batched kernel against
//      the int16 q8.2 batched kernel, both with early termination OFF at a
//      fixed 30-iteration budget — the honest per-iteration datapath
//      ratio, independent of convergence luck. The int8 kernel packs twice
//      the lanes per vector; the gate requires >= 1.6x info throughput.
//      Timing is interleaved best-of-N rounds (alternate the decoders each
//      round, keep each decoder's best) so VM scheduling noise hits both
//      sides instead of skewing the ratio.
//
//   2. BER: the Eb/N0 each decoder needs to reach info-bit BER 1e-5,
//      found by log-linear interpolation over a 0.2 dB grid on identical
//      noise realizations. The MIM tables must hold fa4 within 0.2 dB of
//      the uniform 6-bit q6.1 decoder — 4-bit messages at 6-bit
//      performance is the finite-alphabet claim (Ghanaatian et al.,
//      Mohr & Bauch). BER is counted on the k info bits, matching the
//      info-Mbps throughput convention: the WiMAX dual-diagonal parity
//      chain's degree-2 nodes carry a small residual-error population in
//      every non-converged frame that says nothing about the payload.
//      When a decoder's curve never reaches 1e-5 inside the grid (q6.1
//      floors near 1e-2 on this code — its +-15.5 posterior rail clips
//      ever harder as the channel LLRs grow), its crossing is reported
//      absent and the other decoder wins the comparison outright.
//
// A third row family prices the message-SRAM footprint (src/power's
// MessageMemoryProfile) so the area/power side of the trade rides in the
// same artifact: fa4 halves R memory vs q8.2, fa2 quarters it.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "codes/wimax.hpp"
#include "core/simd/simd_batch.hpp"
#include "core/simd/simd_fa_batch.hpp"
#include "power/message_memory.hpp"

using namespace ldpc;
using Clock = std::chrono::steady_clock;

namespace {

struct FramePool {
  std::vector<std::vector<float>> llr;
  std::vector<BitVec> codewords;
};

FramePool make_pool(const QCLdpcCode& code, std::size_t count, float ebn0_db,
                    std::uint64_t seed_base) {
  const RuEncoder encoder(code);
  const float variance = awgn_noise_variance(ebn0_db, code.rate());
  FramePool pool;
  pool.llr.reserve(count);
  pool.codewords.reserve(count);
  for (std::size_t f = 0; f < count; ++f) {
    Xoshiro256 info_rng(seed_base + 3 * f);
    BitVec info(code.k());
    for (std::size_t i = 0; i < info.size(); ++i) info.set(i, info_rng.coin());
    const BitVec word = encoder.encode(info);
    AwgnChannel awgn(variance, seed_base + 3 * f + 1);
    pool.llr.push_back(BpskModem::demodulate(
        awgn.transmit(BpskModem::modulate(word)), variance));
    pool.codewords.push_back(word);
  }
  return pool;
}

/// One timed pass: `reps` full decode_block calls over the pool. Returns
/// info Mbps and accumulates SIMD fallbacks (any nonzero count fails the
/// check.sh gate — a scalar fallback would make the ratio a lie).
template <class D>
double timed_mbps(D& dec, const FramePool& pool, std::size_t k, int reps,
                  std::size_t& fallbacks) {
  std::vector<BlockFrame> frames(pool.llr.size());
  for (std::size_t i = 0; i < frames.size(); ++i) frames[i].llr = pool.llr[i];
  std::vector<DecodeResult> res(frames.size());
  std::vector<SaturationStats> sat(frames.size());
  dec.decode_block(frames, res, sat);  // warm-up (untimed)
  const auto t0 = Clock::now();
  for (int r = 0; r < reps; ++r) dec.decode_block(frames, res, sat);
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  for (const DecodeResult& r : res)
    if (r.simd_fallback != SimdFallback::kNone) ++fallbacks;
  const double bits =
      static_cast<double>(reps) * static_cast<double>(frames.size()) *
      static_cast<double>(k);
  return bits / secs / 1e6;
}

/// Decode the pool in lane-width blocks and count info-bit errors (the
/// first k positions — the RU encoding is systematic).
template <class D>
long long count_info_bit_errors(D& dec, const FramePool& pool,
                                const QCLdpcCode& code) {
  const std::size_t w = dec.block_width();
  std::vector<DecodeResult> res(w);
  std::vector<SaturationStats> sat(w);
  long long errors = 0;
  for (std::size_t f0 = 0; f0 < pool.llr.size(); f0 += w) {
    const std::size_t cnt = std::min(w, pool.llr.size() - f0);
    std::vector<BlockFrame> frames(cnt);
    for (std::size_t i = 0; i < cnt; ++i) frames[i].llr = pool.llr[f0 + i];
    dec.decode_block(frames, std::span(res).first(cnt),
                     std::span(sat).first(cnt));
    for (std::size_t i = 0; i < cnt; ++i)
      for (std::size_t v = 0; v < code.k(); ++v)
        errors += res[i].hard_bits.get(v) != pool.codewords[f0 + i].get(v);
  }
  return errors;
}

struct BerPoint {
  float ebn0_db;
  long long bits;
  long long errors;
  double ber() const {
    return static_cast<double>(errors) / static_cast<double>(bits);
  }
};

/// Log-linear interpolation of the Eb/N0 where the BER curve crosses
/// `target`. Points are in grid order; zero-error points are floored to
/// half an error so the log is defined. Returns NaN when the curve never
/// crosses inside the grid.
double crossing_ebn0(const std::vector<BerPoint>& points, double target) {
  for (std::size_t i = 1; i < points.size(); ++i) {
    const double floor0 = 0.5 / static_cast<double>(points[i - 1].bits);
    const double floor1 = 0.5 / static_cast<double>(points[i].bits);
    const double b0 = std::max(points[i - 1].ber(), floor0);
    const double b1 = std::max(points[i].ber(), floor1);
    if (b0 >= target && b1 < target) {
      const double t = (std::log(b0) - std::log(target)) /
                       (std::log(b0) - std::log(b1));
      return points[i - 1].ebn0_db +
             t * (points[i].ebn0_db - points[i - 1].ebn0_db);
    }
  }
  return std::nan("");
}

}  // namespace

int main() {
  const QCLdpcCode code = make_wimax_2304_half_rate();
  const std::string code_name = bench::code_id("wimax-1/2", code);
  const std::string rev = bench::git_rev();
  bench::JsonReporter json;

  // ------------------------------------------------- throughput leg ------
  // ET off, fixed 30-iteration budget: every frame costs the same, so the
  // ratio measures the datapath (int8 lane density + staircase CN update)
  // and nothing else. 61 frames is coprime to every lane count, so partial
  // tail blocks are exercised too.
  DecoderOptions tput_opt;
  tput_opt.max_iterations = 30;
  tput_opt.early_termination = false;
  const FramePool tput_pool = make_pool(code, 61, 2.0F, 7001);

  SimdBatchDecoder q8(code, tput_opt, FixedFormat{8, 2});
  SimdFaBatchDecoder fa4(code, tput_opt, 4);
  std::size_t fallbacks_q8 = 0;
  std::size_t fallbacks_fa4 = 0;
  double mbps_q8 = 0.0;
  double mbps_fa4 = 0.0;
  constexpr int kRounds = 8;
  constexpr int kReps = 4;
  for (int round = 0; round < kRounds; ++round) {
    mbps_q8 = std::max(
        mbps_q8, timed_mbps(q8, tput_pool, code.k(), kReps, fallbacks_q8));
    mbps_fa4 = std::max(
        mbps_fa4, timed_mbps(fa4, tput_pool, code.k(), kReps, fallbacks_fa4));
  }
  const double speedup = mbps_q8 > 0.0 ? mbps_fa4 / mbps_q8 : 0.0;
  std::printf(
      "finite-alphabet throughput — %s, 30 iters fixed, ET off, "
      "best of %d rounds\n", code_name.c_str(), kRounds);
  std::printf("  int16 q8.2 batched (W=%zu): %8.1f info Mbps\n",
              q8.block_width(), mbps_q8);
  std::printf("  int8  fa4  batched (W=%zu): %8.1f info Mbps  (%.2fx)\n",
              fa4.block_width(), mbps_fa4, speedup);
  json.add_row()
      .set("kind", "throughput")
      .set("decoder", q8.name())
      .set("message_format", q8.message_format())
      .set("code", code_name)
      .set("ebn0_db", 2.0)
      .set("info_mbps", mbps_q8)
      .set("code_mbps", mbps_q8 / code.rate())
      .set("block_width", q8.block_width())
      .set("simd_tier", simd::to_string(q8.tier()))
      .set("simd_fallbacks", fallbacks_q8)
      .set("git_rev", rev);
  json.add_row()
      .set("kind", "throughput")
      .set("decoder", fa4.name())
      .set("message_format", fa4.message_format())
      .set("code", code_name)
      .set("ebn0_db", 2.0)
      .set("info_mbps", mbps_fa4)
      .set("code_mbps", mbps_fa4 / code.rate())
      .set("block_width", fa4.block_width())
      .set("simd_tier", simd::to_string(fa4.tier()))
      .set("simd_fallbacks", fallbacks_fa4)
      .set("speedup_int8_vs_int16", speedup)
      .set("git_rev", rev);

  // -------------------------------------------------------- BER leg ------
  // Identical noise realizations feed both decoders at every grid point,
  // so the measured gap is the quantizer's, not the channel's. Points stop
  // accumulating at kMinErrors; the grid ascent stops once both curves
  // have crossed 1e-5.
  DecoderOptions ber_opt;
  ber_opt.max_iterations = 30;
  SimdBatchDecoder q6(code, ber_opt, FixedFormat{6, 1});
  SimdFaBatchDecoder fa4_ber(code, ber_opt, 4);
  constexpr double kTargetBer = 1e-5;
  constexpr long long kMinErrors = 40;
  constexpr std::size_t kChunkFrames = 64;
  constexpr std::size_t kMaxFrames = 4096;
  std::vector<BerPoint> q6_curve;
  std::vector<BerPoint> fa4_curve;
  std::printf("\nfinite-alphabet BER — q6.1 vs fa4, identical noise, "
              "info-bit target %.0e\n", kTargetBer);
  for (float ebn0 = 2.0F; ebn0 <= 3.61F; ebn0 += 0.2F) {
    BerPoint pq{ebn0, 0, 0};
    BerPoint pf{ebn0, 0, 0};
    std::size_t frames = 0;
    while (frames < kMaxFrames &&
           (pq.errors < kMinErrors || pf.errors < kMinErrors)) {
      const FramePool chunk =
          make_pool(code, kChunkFrames, ebn0,
                    100003ULL *
                            static_cast<std::uint64_t>(
                                std::lround(ebn0 * 10.0F)) +
                        17ULL * frames);
      const long long bits =
          static_cast<long long>(kChunkFrames) *
          static_cast<long long>(code.k());
      pq.errors += count_info_bit_errors(q6, chunk, code);
      pq.bits += bits;
      pf.errors += count_info_bit_errors(fa4_ber, chunk, code);
      pf.bits += bits;
      frames += kChunkFrames;
    }
    q6_curve.push_back(pq);
    fa4_curve.push_back(pf);
    std::printf("  %.1f dB: q6 %lld/%lld (%.2e)  fa4 %lld/%lld (%.2e)\n",
                static_cast<double>(ebn0), pq.errors, pq.bits, pq.ber(),
                pf.errors, pf.bits, pf.ber());
    for (const auto* p : {&pq, &pf})
      json.add_row()
          .set("kind", "ber")
          .set("decoder", p == &pq ? q6.name() : fa4_ber.name())
          .set("message_format", p == &pq ? q6.message_format()
                                          : fa4_ber.message_format())
          .set("code", code_name)
          .set("ebn0_db", static_cast<double>(ebn0))
          .set("bits", p->bits)
          .set("bit_errors", p->errors)
          .set("ber", p->ber())
          .set("git_rev", rev);
    if (pq.ber() < kTargetBer && pf.ber() < kTargetBer) break;
  }
  const double q6_cross = crossing_ebn0(q6_curve, kTargetBer);
  const double fa4_cross = crossing_ebn0(fa4_curve, kTargetBer);
  const bool q6_crossed = std::isfinite(q6_cross);
  const bool fa4_crossed = std::isfinite(fa4_cross);
  // "fa4 within 0.2 dB of q6 at 1e-5": when q6 never reaches the target
  // inside the grid, fa4 reaching it at all already beats q6 outright and
  // the gap criterion is vacuously met.
  const double gap = (q6_crossed && fa4_crossed) ? fa4_cross - q6_cross
                                                 : (fa4_crossed ? 0.0 : 1e9);
  std::printf("  BER %.0e crossing: q6 %s dB, fa4 %s dB, gap %+.3f dB\n",
              kTargetBer,
              q6_crossed ? std::to_string(q6_cross).c_str() : "absent",
              fa4_crossed ? std::to_string(fa4_cross).c_str() : "absent",
              gap);
  {
    auto& row = json.add_row()
                    .set("kind", "ber-crossing")
                    .set("message_format", q6.message_format())
                    .set("code", code_name)
                    .set("crossed", q6_crossed);
    if (q6_crossed) row.set("ebn0_db", q6_cross);
    row.set("git_rev", rev);
  }
  {
    auto& row = json.add_row()
                    .set("kind", "ber-crossing")
                    .set("message_format", fa4_ber.message_format())
                    .set("code", code_name)
                    .set("crossed", fa4_crossed);
    if (fa4_crossed) row.set("ebn0_db", fa4_cross).set("gap_vs_q6_db", gap);
    row.set("git_rev", rev);
  }

  // ----------------------------------------------- message memory leg ----
  std::printf("\nmessage-SRAM footprint vs q8.2 (P + R bits)\n");
  for (const char* fmt : {"q8.2", "q6.1", "fa4", "fa3", "fa2"}) {
    const MessageMemoryProfile prof = message_memory_profile(code, fmt);
    std::printf("  %-5s P %d b  R %d b  total %lld bits  (%.2fx q8.2)\n",
                fmt, prof.p_bits, prof.r_bits, prof.total_bits,
                prof.reduction_vs_q8(code));
    json.add_row()
        .set("kind", "message-memory")
        .set("message_format", fmt)
        .set("code", code_name)
        .set("p_bits", static_cast<long long>(prof.p_bits))
        .set("r_bits", static_cast<long long>(prof.r_bits))
        .set("p_memory_bits", prof.p_memory_bits)
        .set("r_memory_bits", prof.r_memory_bits)
        .set("total_bits", prof.total_bits)
        .set("reduction_vs_q8", prof.reduction_vs_q8(code))
        .set("git_rev", rev);
  }

  json.write("BENCH_finite_alphabet.json");
  // The artifact gate lives in scripts/check.sh; failing here too keeps a
  // bare `./bench_finite_alphabet` run honest.
  const bool ok = speedup >= 1.6 && fallbacks_q8 + fallbacks_fa4 == 0 &&
                  fa4_crossed && gap <= 0.2;
  if (!ok) std::fprintf(stderr, "finite-alphabet acceptance NOT met\n");
  return ok ? 0 : 1;
}
