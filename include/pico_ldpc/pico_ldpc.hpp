// pico_ldpc — umbrella header: the full public API in one include.
//
//   #include <pico_ldpc/pico_ldpc.hpp>
//
// Downstream users add this repository's `src/` and `include/` directories
// to their include path and link the static libraries (see README). The
// individual headers remain the authoritative documentation; this header
// only aggregates them in dependency order.
#pragma once

// util — primitives
#include "util/check.hpp"      // IWYU pragma: export
#include "util/rng.hpp"        // IWYU pragma: export
#include "util/bitvec.hpp"     // IWYU pragma: export
#include "util/saturate.hpp"   // IWYU pragma: export
#include "util/aligned.hpp"    // IWYU pragma: export
#include "util/stats.hpp"      // IWYU pragma: export
#include "util/table.hpp"      // IWYU pragma: export
#include "util/csv.hpp"        // IWYU pragma: export
#include "util/cli.hpp"        // IWYU pragma: export

// codes — QC-LDPC code substrate
#include "codes/base_matrix.hpp"     // IWYU pragma: export
#include "codes/qc_code.hpp"         // IWYU pragma: export
#include "codes/wimax.hpp"           // IWYU pragma: export
#include "codes/wifi.hpp"            // IWYU pragma: export
#include "codes/random_qc.hpp"       // IWYU pragma: export
#include "codes/encoder.hpp"         // IWYU pragma: export
#include "codes/graph_analysis.hpp"  // IWYU pragma: export
#include "codes/alist.hpp"           // IWYU pragma: export

// core — decoding algorithms (the paper's Algorithm 1 and baselines)
#include "core/decoder.hpp"                // IWYU pragma: export
#include "core/quant.hpp"                  // IWYU pragma: export
#include "core/flooding_bp.hpp"            // IWYU pragma: export
#include "core/flooding_minsum.hpp"        // IWYU pragma: export
#include "core/flooding_minsum_fixed.hpp"  // IWYU pragma: export
#include "core/gallager_b.hpp"             // IWYU pragma: export
#include "core/layered_minsum_float.hpp"   // IWYU pragma: export
#include "core/layered_minsum_fixed.hpp"   // IWYU pragma: export
#include "core/simd/simd_kernel.hpp"       // IWYU pragma: export
#include "core/simd/simd_layered.hpp"      // IWYU pragma: export
#include "core/decoder_factory.hpp"        // IWYU pragma: export

// channel — modulation, channels, Monte-Carlo harness
#include "channel/modem.hpp"        // IWYU pragma: export
#include "channel/awgn.hpp"         // IWYU pragma: export
#include "channel/rayleigh.hpp"     // IWYU pragma: export
#include "channel/interleaver.hpp"  // IWYU pragma: export
#include "channel/ber_runner.hpp"   // IWYU pragma: export

// hls — the PICO high-level-synthesis model
#include "hls/opgraph.hpp"          // IWYU pragma: export
#include "hls/scheduler.hpp"        // IWYU pragma: export
#include "hls/pico.hpp"             // IWYU pragma: export
#include "hls/hardware_report.hpp"  // IWYU pragma: export
#include "hls/rtl_gen.hpp"          // IWYU pragma: export

// arch — cycle-accurate architecture simulators
#include "arch/activity.hpp"          // IWYU pragma: export
#include "arch/sram.hpp"              // IWYU pragma: export
#include "arch/barrel_shifter.hpp"    // IWYU pragma: export
#include "arch/q_fifo.hpp"            // IWYU pragma: export
#include "arch/scoreboard.hpp"        // IWYU pragma: export
#include "arch/trace.hpp"             // IWYU pragma: export
#include "arch/arch_sim.hpp"          // IWYU pragma: export
#include "arch/flooding_arch.hpp"     // IWYU pragma: export
#include "arch/flexible_decoder.hpp"  // IWYU pragma: export
#include "arch/testbench.hpp"         // IWYU pragma: export

// power — 65 nm area/power/throughput models
#include "power/tech65nm.hpp"     // IWYU pragma: export
#include "power/area_model.hpp"   // IWYU pragma: export
#include "power/power_model.hpp"  // IWYU pragma: export
#include "power/metrics.hpp"      // IWYU pragma: export
