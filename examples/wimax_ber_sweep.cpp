// BER/FER sweep over Eb/N0 for any 802.16e code and any decoder.
//
//   build/examples/wimax_ber_sweep --rate 1/2 --z 96
//       --decoder layered-minsum-fixed --ebn0-start 1.0 --ebn0-stop 2.5
//       --ebn0-step 0.5 --max-frames 2000 --iters 10 --workers 4
//       --csv /tmp/ber.csv
//
// This is the workload the paper's intro motivates: evaluating a candidate
// handset decoder configuration across the operating SNR range.
#include <cstdio>

#include "channel/ber_runner.hpp"
#include "codes/wimax.hpp"
#include "core/decoder_factory.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace ldpc;

namespace {

WimaxRate parse_rate(const std::string& name) {
  if (name == "1/2") return WimaxRate::kRate1_2;
  if (name == "2/3A") return WimaxRate::kRate2_3A;
  if (name == "2/3B") return WimaxRate::kRate2_3B;
  if (name == "3/4A") return WimaxRate::kRate3_4A;
  if (name == "3/4B") return WimaxRate::kRate3_4B;
  if (name == "5/6") return WimaxRate::kRate5_6;
  throw Error("unknown rate '" + name + "' (use 1/2, 2/3A, 2/3B, 3/4A, 3/4B, 5/6)");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv,
                       {"rate", "z", "decoder", "ebn0-start", "ebn0-stop",
                        "ebn0-step", "max-frames", "target-errors", "iters",
                        "workers", "seed", "csv", "modulation", "channel"});

    const WimaxRate rate = parse_rate(args.get("rate", "1/2"));
    const int z = static_cast<int>(args.get_int("z", 96));
    const std::string decoder_name = args.get("decoder", "layered-minsum-fixed");

    const QCLdpcCode code = make_wimax_code(rate, z);
    DecoderOptions options;
    options.max_iterations =
        static_cast<std::size_t>(args.get_int("iters", 10));

    BerConfig cfg;
    const double start = args.get_double("ebn0-start", 1.0);
    const double stop = args.get_double("ebn0-stop", 2.5);
    const double step = args.get_double("ebn0-step", 0.5);
    LDPC_CHECK_MSG(step > 0.0 && stop >= start, "bad Eb/N0 sweep bounds");
    for (double e = start; e <= stop + 1e-9; e += step)
      cfg.ebn0_db.push_back(static_cast<float>(e));
    cfg.max_frames = static_cast<std::size_t>(args.get_int("max-frames", 1000));
    cfg.target_frame_errors =
        static_cast<std::size_t>(args.get_int("target-errors", 50));
    cfg.min_frames = std::min<std::size_t>(cfg.max_frames, 100);
    cfg.num_workers = static_cast<unsigned>(args.get_int("workers", 2));
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 2009));

    const std::string mod = args.get("modulation", "bpsk");
    if (mod == "bpsk")
      cfg.modulation = Modulation::kBpsk;
    else if (mod == "qpsk")
      cfg.modulation = Modulation::kQpsk;
    else
      throw Error("--modulation must be bpsk or qpsk");
    const std::string chan = args.get("channel", "awgn");
    if (chan == "awgn")
      cfg.channel = ChannelModel::kAwgn;
    else if (chan == "rayleigh")
      cfg.channel = ChannelModel::kRayleigh;
    else
      throw Error("--channel must be awgn or rayleigh");

    BerRunner runner(
        code, [&] { return make_decoder(decoder_name, code, options); }, cfg);
    const auto points = runner.run();

    TextTable table("BER sweep — " + code.base().name() + " (n=" +
                    std::to_string(code.n()) + "), decoder " + decoder_name +
                    ", max " + std::to_string(options.max_iterations) + " it");
    table.set_header({"Eb/N0 (dB)", "frames", "BER", "FER", "avg iters",
                      "undetected"});
    for (const auto& p : points)
      table.add_row({TextTable::num(p.ebn0_db, 2),
                     TextTable::integer(static_cast<long long>(p.frames)),
                     TextTable::sci(p.ber(code.k()), 2),
                     TextTable::sci(p.fer(), 2),
                     TextTable::num(p.avg_iterations(), 1),
                     TextTable::integer(static_cast<long long>(p.undetected_errors))});
    std::fputs(table.str().c_str(), stdout);

    if (args.has("csv")) {
      CsvWriter csv(args.get("csv", ""));
      csv.write_row({"ebn0_db", "frames", "ber", "fer", "avg_iters"});
      for (const auto& p : points)
        csv.write_row({TextTable::num(p.ebn0_db, 2),
                       TextTable::integer(static_cast<long long>(p.frames)),
                       TextTable::sci(p.ber(code.k()), 4),
                       TextTable::sci(p.fer(), 4),
                       TextTable::num(p.avg_iterations(), 2)});
      std::printf("series written to %s\n", args.get("csv", "").c_str());
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
