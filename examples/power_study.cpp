// Clock-gating power study across clock frequencies and architectures.
//
//   build/examples/power_study [--rate 1/2] [--z 96] [--iters 10]
//
// The handset scenario from the paper's abstract: how much power does the
// decoder burn at each clock target, and how much does PICO-style clock
// gating save? Prints the full leakage/internal/switching decomposition per
// (architecture, frequency) point, gated and ungated.
#include <cstdio>

#include "arch/arch_sim.hpp"
#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "codes/wimax.hpp"
#include "power/area_model.hpp"
#include "power/metrics.hpp"
#include "power/power_model.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace ldpc;

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv, {"z", "iters"});
    const int z = static_cast<int>(args.get_int("z", 96));
    const QCLdpcCode code = make_wimax_code(WimaxRate::kRate1_2, z);
    const FixedFormat fmt{8, 2};
    const PicoCompiler pico(fmt);
    const AreaModel am;
    const PowerModel pm;

    DecoderOptions options;
    options.max_iterations = static_cast<std::size_t>(args.get_int("iters", 10));
    options.early_termination = false;

    // One noisy frame reused at every design point.
    const RuEncoder enc(code);
    Xoshiro256 rng(5);
    BitVec info(code.k());
    for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
    const float variance = awgn_noise_variance(2.0F, code.rate());
    AwgnChannel ch(variance, 6);
    const auto llr = BpskModem::demodulate(
        ch.transmit(BpskModem::modulate(enc.encode(info))), variance);
    std::vector<std::int32_t> codes(llr.size());
    for (std::size_t i = 0; i < llr.size(); ++i) codes[i] = fmt.quantize(llr[i]);

    TextTable t("Clock-gating power study — " + code.base().name() +
                " (std cells only; energy per decoded info bit includes SRAM)");
    t.set_header({"arch", "MHz", "leak (mW)", "int gated", "int ungated",
                  "saved", "switch (mW)", "total gated", "pJ/bit"});

    for (ArchKind arch : {ArchKind::kPerLayer, ArchKind::kTwoLayerPipelined}) {
      for (double mhz : {100.0, 200.0, 300.0, 400.0}) {
        const auto est = pico.compile(code, arch,
                                      HardwareTarget{mhz, code.z()});
        ArchSimDecoder sim(code, est, options, fmt, ArchSimConfig{true});
        const auto run = sim.decode_quantized(codes);
        const auto area = am.estimate(
            est, sim.p_memory_bits() + sim.r_memory_bits());
        const auto gated =
            pm.estimate(est, run.activity, area.std_cells_mm2, true);
        const auto ungated =
            pm.estimate(est, run.activity, area.std_cells_mm2, false);
        const double tput =
            info_throughput_mbps(code.k(), run.activity.cycles, mhz);
        t.add_row({arch_name(arch), TextTable::num(mhz, 0),
                   TextTable::num(gated.leakage_mw, 2),
                   TextTable::num(gated.internal_mw, 1),
                   TextTable::num(ungated.internal_mw, 1),
                   TextTable::percent(1.0 - gated.internal_mw /
                                                ungated.internal_mw),
                   TextTable::num(gated.switching_mw, 1),
                   TextTable::num(gated.total_mw, 1),
                   TextTable::num(energy_per_bit_pj(gated.total_with_sram_mw,
                                                    tput),
                                  0)});
      }
      t.add_rule();
    }
    std::fputs(t.str().c_str(), stdout);
    std::puts(
        "\nReading guide: internal (sequential) power scales with frequency\n"
        "and register count; gating savings track the fraction of register\n"
        "bits actually written each cycle (Table I's mechanism). Energy per\n"
        "bit is roughly frequency independent — latency and power trade off.");
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
