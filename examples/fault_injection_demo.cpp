// Fault-injection demo: what an SRAM upset does to a decode, and how the
// decoder degrades gracefully instead of emitting garbage.
//
//   build/examples/fault_injection_demo [--rate 1e-3] [--z 96] [--ebn0 2.0]
//
// Decodes the same noisy WiMAX frame three times:
//   1. clean            — the seed path, no injector attached;
//   2. injector disabled — hooks wired but disarmed, must be bit-identical;
//   3. injector armed   — upsets land in the P/R SRAMs and the min1/min2/
//                         sign register files; the output parity recheck
//                         (and optionally the watchdog) flags the frame.
#include <cstdio>

#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "codes/wimax.hpp"
#include "core/layered_minsum_fixed.hpp"
#include "fault/fault_injector.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace ldpc;

namespace {

std::size_t info_bit_errors(const QCLdpcCode& code, const BitVec& info,
                            const DecodeResult& result) {
  std::size_t errors = 0;
  for (std::size_t i = 0; i < code.k(); ++i)
    errors += result.hard_bits.get(i) != info.get(i);
  return errors;
}

void report(const char* label, const QCLdpcCode& code, const BitVec& info,
            const DecodeResult& result) {
  std::printf("%-18s status=%-14s iters=%zu info-bit errors=%zu faults=%zu\n",
              label, to_string(result.status), result.iterations,
              info_bit_errors(code, info, result), result.faults_injected);
}

}  // namespace

int main(int argc, char** argv) try {
  const CliArgs args(argc, argv, {"rate", "z", "ebn0", "seed"});
  const double rate = args.get_double("rate", 1e-3);
  const int z = static_cast<int>(args.get_int("z", 96));
  const float ebn0_db = static_cast<float>(args.get_double("ebn0", 2.0));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  const QCLdpcCode code = make_wimax_code(WimaxRate::kRate1_2, z);
  const FixedFormat fmt{8, 2};
  std::printf("code: (%zu, 1/2) WiMAX, z=%d; Eb/N0=%.1f dB; upset rate %g "
              "per bit per access\n\n",
              code.n(), z, ebn0_db, rate);

  // One noisy frame, reused for all three decodes.
  Xoshiro256 rng(seed);
  BitVec info(code.k());
  for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
  const BitVec codeword = RuEncoder(code).encode(info);
  const float variance = awgn_noise_variance(ebn0_db, code.rate());
  AwgnChannel channel(variance, seed * 19 + 7);
  const auto llr = BpskModem::demodulate(
      channel.transmit(BpskModem::modulate(codeword)), variance);
  std::vector<std::int32_t> frame(llr.size());
  for (std::size_t i = 0; i < llr.size(); ++i) frame[i] = fmt.quantize(llr[i]);

  DecoderOptions opt;
  opt.max_iterations = 10;

  // 1. Clean reference.
  LayeredMinSumFixedDecoder clean(code, opt, fmt);
  const auto ref = clean.decode_quantized(frame);
  report("clean", code, info, ref);

  // 2. Hooks wired, injector disabled: must match the clean decode exactly.
  FaultConfig cfg;
  cfg.rate = rate;
  cfg.seed = seed;
  FaultInjector injector(cfg);
  injector.set_enabled(false);
  DecoderOptions hooked = opt;
  hooked.fault_injector = &injector;
  LayeredMinSumFixedDecoder disarmed(code, hooked, fmt);
  const auto quiet = disarmed.decode_quantized(frame);
  bool identical = quiet.iterations == ref.iterations;
  for (std::size_t i = 0; identical && i < code.n(); ++i)
    identical = quiet.hard_bits.get(i) == ref.hard_bits.get(i);
  report("injector off", code, info, quiet);
  std::printf("                   bit-identical to clean: %s\n",
              identical ? "yes" : "NO — BUG");

  // 3. Armed: upsets land, watchdog + parity recheck flag the outcome.
  injector.set_enabled(true);
  hooked.watchdog.stall_window = 3;
  LayeredMinSumFixedDecoder faulty(code, hooked, fmt);
  const auto hit = faulty.decode_quantized(frame);
  report("injector armed", code, info, hit);

  std::printf("\nper-site injection stats:\n");
  for (std::size_t s = 0; s < kNumFaultSites; ++s) {
    const auto site = static_cast<FaultSite>(s);
    const auto& st = injector.stats(site);
    if (st.bits_examined == 0) continue;
    std::printf("  %-10s %10lld bits examined  %6lld upsets\n",
                fault_site_name(site), st.bits_examined, st.injections);
  }
  std::printf(
      "\nThe armed decode never reports 'converged' with a wrong word:\n"
      "corruption is caught by the output parity recheck (fault-detected)\n"
      "or cut short by the iteration watchdog (watchdog-abort).\n");
  return identical ? 0 : 1;
} catch (const Error& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
