// The full PICO flow, end to end: untimed C algorithm in, RTL + testbench
// out (the paper's Fig. 1).
//
//   build/examples/rtl_export [--arch pipelined] [--mhz 400] [--z 96]
//       [--rtl /tmp/ldpc_decoder.v] [--tb /tmp/ldpc_decoder.tb]
//       [--frames 8] [--ebn0 2.0]
//
// Compiles the decoder for the chosen design point, writes the generated
// Verilog skeleton, generates golden test vectors on the cycle-accurate
// model, writes them as a replayable testbench file, then re-reads and
// re-verifies the file to demonstrate the self-checking loop.
#include <cstdio>
#include <fstream>

#include "arch/testbench.hpp"
#include "codes/wimax.hpp"
#include "hls/rtl_gen.hpp"
#include "util/cli.hpp"

using namespace ldpc;

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv,
                       {"arch", "mhz", "z", "rtl", "tb", "frames", "ebn0"});
    const std::string arch_str = args.get("arch", "pipelined");
    const ArchKind arch = arch_str == "per-layer" ? ArchKind::kPerLayer
                          : arch_str == "pipelined"
                              ? ArchKind::kTwoLayerPipelined
                              : throw Error("--arch must be per-layer or pipelined");
    const double mhz = args.get_double("mhz", 400.0);
    const int z = static_cast<int>(args.get_int("z", 96));
    const std::string rtl_path = args.get("rtl", "/tmp/ldpc_decoder.v");
    const std::string tb_path = args.get("tb", "/tmp/ldpc_decoder.tb");

    const QCLdpcCode code = make_wimax_code(WimaxRate::kRate1_2, z);
    const FixedFormat fmt{8, 2};
    const PicoCompiler pico(fmt);
    const auto est = pico.compile(code, arch, HardwareTarget{mhz, z});

    // 1. RTL.
    const std::string verilog = generate_verilog(code, est);
    {
      std::ofstream out(rtl_path);
      LDPC_CHECK_MSG(out.good(), "cannot write " << rtl_path);
      out << verilog;
    }
    std::printf("RTL:        %s (%zu lines)\n", rtl_path.c_str(),
                static_cast<std::size_t>(
                    std::count(verilog.begin(), verilog.end(), '\n')));

    // 2. Golden vectors from the cycle-accurate model.
    DecoderOptions opt;
    opt.max_iterations = 10;
    ArchSimDecoder sim(code, est, opt, fmt, ArchSimConfig{true});
    const auto n_frames =
        static_cast<std::size_t>(args.get_int("frames", 8));
    const auto tb = generate_testbench(
        code, sim, n_frames, static_cast<float>(args.get_double("ebn0", 2.0)),
        2009);
    {
      std::ofstream out(tb_path);
      LDPC_CHECK_MSG(out.good(), "cannot write " << tb_path);
      write_testbench(out, tb);
    }
    std::printf("testbench:  %s (%zu frames)\n", tb_path.c_str(),
                tb.frames.size());

    // 3. Close the loop: re-read and re-verify.
    std::ifstream in(tb_path);
    const auto loaded = read_testbench(in);
    const std::size_t mismatches = verify_testbench(loaded, sim);
    std::printf("self-check: %zu/%zu frames match golden model — %s\n",
                loaded.frames.size() - mismatches, loaded.frames.size(),
                mismatches == 0 ? "PASS" : "FAIL");
    return mismatches == 0 ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
