// Quickstart: the complete life of one WiMAX frame through the library.
//
//   build/examples/quickstart
//
// Encodes 1152 random information bits with the (2304, 1/2) IEEE 802.16e
// code, sends them over BPSK/AWGN at 2 dB Eb/N0, decodes with the paper's
// fixed-point layered scaled-min-sum (Algorithm 1), and cross-checks the
// result against the cycle-accurate model of the two-layer pipelined
// hardware architecture.
#include <cstdio>

#include "arch/arch_sim.hpp"
#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "codes/wimax.hpp"
#include "core/layered_minsum_fixed.hpp"
#include "power/metrics.hpp"
#include "util/rng.hpp"

using namespace ldpc;

int main() {
  // 1. The code: block-structured (2304, 1/2) WiMAX LDPC, z = 96.
  const QCLdpcCode code = make_wimax_2304_half_rate();
  std::printf("code: %s  n=%zu k=%zu z=%d layers=%zu circulants=%zu\n",
              code.base().name().c_str(), code.n(), code.k(), code.z(),
              code.num_layers(), code.base().nonzero_blocks());

  // 2. Encode random information bits (systematic RU encoder).
  Xoshiro256 rng(2026);
  BitVec info(code.k());
  for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
  const RuEncoder encoder(code);
  const BitVec codeword = encoder.encode(info);
  std::printf("encoded: %zu-bit systematic codeword, parity %s\n",
              codeword.size(), code.parity_ok(codeword) ? "OK" : "BROKEN");

  // 3. BPSK over AWGN at 2.0 dB Eb/N0.
  const float ebn0_db = 2.0F;
  const float variance = awgn_noise_variance(ebn0_db, code.rate());
  AwgnChannel channel(variance, /*seed=*/7);
  const auto received = channel.transmit(BpskModem::modulate(codeword));
  const auto llr = BpskModem::demodulate(received, variance);
  std::size_t channel_errors = 0;
  for (std::size_t i = 0; i < code.n(); ++i)
    channel_errors += ((llr[i] < 0.0F) != codeword.get(i));
  std::printf("channel: Eb/N0 = %.1f dB, %zu/%zu raw bit errors\n", ebn0_db,
              channel_errors, code.n());

  // 4. Decode with Algorithm 1 (8-bit fixed point, scale 0.75, <= 10 it).
  DecoderOptions options;
  options.max_iterations = 10;
  LayeredMinSumFixedDecoder decoder(code, options, FixedFormat{8, 2});
  const DecodeResult result = decoder.decode(llr);
  std::printf("decoder: %s converged=%s iterations=%zu residual errors=%zu\n",
              decoder.name().c_str(), result.converged ? "yes" : "no",
              result.iterations, result.hard_bits.hamming_distance(codeword));

  // 5. Cross-check on the cycle-accurate pipelined hardware model.
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  const auto estimate = pico.compile(code, ArchKind::kTwoLayerPipelined,
                                     HardwareTarget{400.0, 96});
  ArchSimDecoder hardware(code, estimate, options, fmt, ArchSimConfig{true});
  std::vector<std::int32_t> channel_codes(llr.size());
  for (std::size_t i = 0; i < llr.size(); ++i)
    channel_codes[i] = fmt.quantize(llr[i]);
  const auto hw = hardware.decode_quantized(channel_codes);
  std::printf(
      "hardware: %s  bit-exact with algorithm: %s\n"
      "          %lld cycles (%zu iterations) -> %.2f us at 400 MHz, "
      "%.0f Mbps info throughput\n",
      hardware.name().c_str(),
      hw.decode.hard_bits == result.hard_bits ? "yes" : "NO (bug!)",
      hw.activity.cycles, hw.decode.iterations,
      latency_us(hw.activity.cycles, 400.0),
      info_throughput_mbps(code.k(), hw.activity.cycles, 400.0));
  return 0;
}
