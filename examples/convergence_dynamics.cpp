// Convergence dynamics: why layered decoding halves the iteration count.
//
//   build/examples/convergence_dynamics [--ebn0 1.8] [--seed 5]
//
// Decodes the same noisy frame with flooding min-sum and with the paper's
// layered schedule, printing the per-iteration syndrome weight (unsatisfied
// checks), hard-decision flips, and mean posterior magnitude. The layered
// decoder uses updated posteriors within the iteration, so its syndrome
// weight collapses roughly twice as fast — the architectural premise of
// Algorithm 1.
#include <cstdio>

#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "codes/wimax.hpp"
#include "core/decoder_factory.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace ldpc;

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv, {"ebn0", "seed", "iters"});
    const float ebn0 = static_cast<float>(args.get_double("ebn0", 1.8));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 5));

    const auto code = make_wimax_2304_half_rate();
    const RuEncoder enc(code);
    Xoshiro256 rng(seed);
    BitVec info(code.k());
    for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
    const BitVec word = enc.encode(info);
    const float variance = awgn_noise_variance(ebn0, code.rate());
    AwgnChannel ch(variance, seed + 1);
    const auto llr = BpskModem::demodulate(
        ch.transmit(BpskModem::modulate(word)), variance);

    TextTable table("Convergence on one (2304, 1/2) frame at Eb/N0 = " +
                    TextTable::num(ebn0, 1) + " dB");
    table.set_header({"decoder", "iter", "unsatisfied checks", "bit flips",
                      "mean |LLR|"});

    for (const char* name :
         {"flooding-minsum-norm", "layered-minsum-float", "layered-minsum-fixed"}) {
      DecoderOptions opt;
      opt.max_iterations =
          static_cast<std::size_t>(args.get_int("iters", 12));
      opt.early_termination = true;
      std::vector<IterationSnapshot> history;
      opt.observer = [&history](const IterationSnapshot& s) {
        history.push_back(s);
      };
      auto dec = make_decoder(name, code, opt);
      const auto result = dec->decode(llr);
      for (const auto& s : history)
        table.add_row({s.iteration == 1 ? name : "",
                       TextTable::integer(static_cast<long long>(s.iteration)),
                       TextTable::integer(static_cast<long long>(s.syndrome_weight)),
                       TextTable::integer(static_cast<long long>(s.flipped_bits)),
                       TextTable::num(s.mean_abs_llr, 2)});
      table.add_row({"", "", result.converged ? "converged" : "NOT converged",
                     "", ""});
      table.add_rule();
    }
    std::fputs(table.str().c_str(), stdout);
    std::puts(
        "\nReading guide: the layered schedules' syndrome weight collapses in\n"
        "roughly half the iterations of the flooding schedule; the fixed-point\n"
        "decoder's |LLR| saturates at the 8-bit rail (31.75) while float keeps\n"
        "growing — quantization caps confidence, not convergence.");
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
