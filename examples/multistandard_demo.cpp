// Multi-standard flexibility demo.
//
//   build/examples/multistandard_demo
//
// The paper's motivation: "because different standards employ different
// LDPC codes, it is very important to design a flexible LDPC decoder".
// This demo runs the SAME decoder machinery — Algorithm 1 kernel, both
// hardware architectures — over three very different block-structured
// codes: IEEE 802.16e (WiMAX), IEEE 802.11n (WiFi) and a randomly
// generated QC code, and prints the HLS schedule the PICO model produced
// for the shared datapaths.
#include <cstdio>

#include "arch/arch_sim.hpp"
#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "codes/graph_analysis.hpp"
#include "codes/random_qc.hpp"
#include "codes/wifi.hpp"
#include "codes/wimax.hpp"
#include "hls/scheduler.hpp"
#include "power/metrics.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace ldpc;

namespace {

void run_code(const QCLdpcCode& code, float ebn0_db, TextTable& table) {
  const FixedFormat fmt{8, 2};
  const PicoCompiler pico(fmt);
  const auto est = pico.compile(code, ArchKind::kTwoLayerPipelined,
                                HardwareTarget{400.0, code.z()});
  DecoderOptions opt;
  opt.max_iterations = 10;
  ArchSimDecoder sim(code, est, opt, fmt, ArchSimConfig{true});

  const RuEncoder enc(code);
  Xoshiro256 rng(11);
  BitVec info(code.k());
  for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
  const BitVec word = enc.encode(info);
  const float variance = awgn_noise_variance(ebn0_db, code.rate());
  AwgnChannel ch(variance, 12);
  const auto llr = BpskModem::demodulate(
      ch.transmit(BpskModem::modulate(word)), variance);
  std::vector<std::int32_t> codes(llr.size());
  for (std::size_t i = 0; i < llr.size(); ++i) codes[i] = fmt.quantize(llr[i]);
  const auto run = sim.decode_quantized(codes);

  table.add_row({code.base().name(),
                 TextTable::integer(static_cast<long long>(code.n())),
                 TextTable::num(code.rate(), 2),
                 TextTable::integer(code.z()),
                 TextTable::integer(static_cast<long long>(
                     tanner_girth(code, 10))),
                 run.decode.hard_bits == word ? "yes" : "NO",
                 TextTable::integer(run.activity.cycles),
                 TextTable::num(info_throughput_mbps(code.k(),
                                                     run.activity.cycles, 400.0),
                                0)});
}

}  // namespace

int main() {
  TextTable table(
      "One decoder, three standards — pipelined architecture @ 400 MHz, "
      "10 iterations max, AWGN");
  table.set_header({"code", "n", "rate", "z", "girth(<=10)", "decoded",
                    "cycles", "info Mbps"});

  run_code(make_wimax_2304_half_rate(), 2.2F, table);
  run_code(make_wifi_1944_half_rate(), 2.2F, table);
  run_code(make_wifi_648_half_rate(), 2.6F, table);
  RandomQcConfig cfg;
  cfg.block_rows = 6;
  cfg.block_cols = 18;
  cfg.z = 64;
  cfg.info_row_degree = 5;
  cfg.seed = 2;  // a girth-6 construction (seed 3 has 4-cycles — try it!)
  const auto random_code = make_random_qc_code(cfg);
  run_code(random_code, 3.2F, table);
  std::fputs(table.str().c_str(), stdout);

  // The shared datapath: what PICO scheduled at 400 MHz.
  const PicoCompiler pico(FixedFormat{8, 2});
  std::puts("\ncore1 front-end schedule at 400 MHz (2.5 ns clock):");
  OpGraph core1 = pico.build_core1_graph();
  std::fputs(schedule_report(core1, 2.5).c_str(), stdout);
  std::puts("core2 back-end schedule at 400 MHz:");
  OpGraph core2 = pico.build_core2_graph();
  std::fputs(schedule_report(core2, 2.5).c_str(), stdout);
  return 0;
}
