// Architecture design-space explorer.
//
//   build/examples/architecture_explorer --arch pipelined --mhz 400
//       --parallelism 96 --rate 1/2 --z 96 --reorder 1
//
// Reproduces the paper's design methodology interactively: pick an
// architecture, an unroll factor and a clock target; the PICO model
// schedules the datapaths, the cycle-accurate simulator measures a decode,
// and the 65 nm models report area, power, latency and throughput — the
// full Table II row for any point in the design space.
#include <cstdio>

#include "arch/arch_sim.hpp"
#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "codes/wimax.hpp"
#include "power/area_model.hpp"
#include "power/metrics.hpp"
#include "power/power_model.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace ldpc;

namespace {

WimaxRate parse_rate(const std::string& name) {
  if (name == "1/2") return WimaxRate::kRate1_2;
  if (name == "2/3A") return WimaxRate::kRate2_3A;
  if (name == "2/3B") return WimaxRate::kRate2_3B;
  if (name == "3/4A") return WimaxRate::kRate3_4A;
  if (name == "3/4B") return WimaxRate::kRate3_4B;
  if (name == "5/6") return WimaxRate::kRate5_6;
  throw Error("unknown rate '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv, {"arch", "mhz", "parallelism", "rate", "z",
                                    "iters", "reorder", "ebn0", "quant-bits"});

    const std::string arch_str = args.get("arch", "pipelined");
    ArchKind arch;
    if (arch_str == "per-layer")
      arch = ArchKind::kPerLayer;
    else if (arch_str == "pipelined")
      arch = ArchKind::kTwoLayerPipelined;
    else
      throw Error("--arch must be per-layer or pipelined");

    const double mhz = args.get_double("mhz", 400.0);
    const QCLdpcCode code = make_wimax_code(parse_rate(args.get("rate", "1/2")),
                                            static_cast<int>(args.get_int("z", 96)));
    const int parallelism =
        static_cast<int>(args.get_int("parallelism", code.z()));
    const int quant_bits = static_cast<int>(args.get_int("quant-bits", 8));
    const FixedFormat fmt{quant_bits, quant_bits >= 6 ? 2 : 0};
    const bool reorder = args.get_int("reorder", 1) != 0;

    // HLS compile.
    const PicoCompiler pico(fmt);
    const auto est = pico.compile(code, arch, HardwareTarget{mhz, parallelism});

    // One representative decode for activity.
    DecoderOptions options;
    options.max_iterations = static_cast<std::size_t>(args.get_int("iters", 10));
    options.early_termination = false;
    ArchSimDecoder sim(code, est, options, fmt, ArchSimConfig{reorder});
    const RuEncoder enc(code);
    Xoshiro256 rng(1);
    BitVec info(code.k());
    for (std::size_t i = 0; i < info.size(); ++i) info.set(i, rng.coin());
    const float ebn0 = static_cast<float>(args.get_double("ebn0", 2.0));
    const float variance = awgn_noise_variance(ebn0, code.rate());
    AwgnChannel ch(variance, 2);
    const auto llr = BpskModem::demodulate(
        ch.transmit(BpskModem::modulate(enc.encode(info))), variance);
    std::vector<std::int32_t> codes(llr.size());
    for (std::size_t i = 0; i < llr.size(); ++i) codes[i] = fmt.quantize(llr[i]);
    const auto run = sim.decode_quantized(codes);

    // Models.
    const long long sram_bits = sim.p_memory_bits() + sim.r_memory_bits();
    const AreaModel am;
    const auto area = am.estimate(est, sram_bits);
    const PowerModel pm;
    const auto pw = pm.estimate(est, run.activity, area.std_cells_mm2, true);

    TextTable t("Design point — " + code.base().name() + ", " + arch_name(arch) +
                ", " + TextTable::num(mhz, 0) + " MHz, parallelism " +
                std::to_string(parallelism) + " (fold " +
                std::to_string(est.fold) + "), " + fmt.name());
    t.set_header({"metric", "value"});
    t.add_row({"pipeline depths (core1/core2)",
               std::to_string(est.core1_latency) + " / " +
                   std::to_string(est.core2_latency)});
    t.add_row({"cycles / iteration",
               TextTable::num(static_cast<double>(run.activity.cycles) /
                                  static_cast<double>(run.activity.iterations),
                              1)});
    t.add_row({"scoreboard stalls / iteration",
               TextTable::num(static_cast<double>(run.activity.core1_stall_cycles) /
                                  static_cast<double>(run.activity.iterations),
                              1)});
    t.add_row({"core1 / core2 utilization",
               TextTable::percent(run.activity.core1_utilization()) + " / " +
                   TextTable::percent(run.activity.core2_utilization())});
    t.add_row({"decode latency",
               TextTable::num(latency_us(run.activity.cycles, mhz), 2) + " us (" +
                   std::to_string(options.max_iterations) + " it)"});
    t.add_row({"info throughput",
               TextTable::num(info_throughput_mbps(code.k(), run.activity.cycles,
                                                   mhz),
                              0) +
                   " Mbps"});
    t.add_row({"std-cell area", TextTable::num(area.std_cells_mm2, 3) + " mm2"});
    t.add_row({"SRAM area (" + TextTable::integer(sram_bits) + " bit)",
               TextTable::num(area.sram_mm2, 3) + " mm2"});
    t.add_row({"core area", TextTable::num(area.core_mm2, 3) + " mm2"});
    t.add_row({"power (gated, std cells)", TextTable::num(pw.total_mw, 1) + " mW"});
    t.add_row({"power incl. SRAM", TextTable::num(pw.total_with_sram_mw, 1) + " mW"});
    t.add_row({"energy / info bit",
               TextTable::num(energy_per_bit_pj(
                                  pw.total_with_sram_mw,
                                  info_throughput_mbps(code.k(),
                                                       run.activity.cycles, mhz)),
                              0) +
                   " pJ"});
    std::fputs(t.str().c_str(), stdout);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
