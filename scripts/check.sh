#!/usr/bin/env bash
# Full verification gate: everything CI runs, in one command.
#
#   1. tier-1 verify   — warnings-as-errors build + complete ctest suite
#   2. scalar-only     — LDPC_SIMD=OFF build (portable kernel only) running
#                        the SIMD equivalence suite, proving the portable
#                        tier alone still matches the scalar decoder
#                        bit-for-bit
#   3. sanitizer pass  — ASan+UBSan build (LDPC_SANITIZE=ON) + ctest; the
#                        SIMD kernels are ON here so the intrinsic paths run
#                        under instrumentation too
#   4. TSan pass       — ThreadSanitizer build (LDPC_SANITIZE=thread) running
#                        the concurrency-sensitive tests: the runtime batch
#                        engine, the retry/escalation supervisor, the
#                        fault-injection chaos test and the BER runner
#
# Every ctest invocation carries a per-test --timeout so a wedged worker
# thread fails loudly instead of hanging the gate.
#   5. clang-tidy      — the `lint` target (.clang-tidy profile); skipped
#                        with a notice when clang-tidy is not installed
#   6. ldpc-lint       — static schedule/hazard analysis over every bundled
#                        code and both column orders (must exit 0)
#
# Usage: scripts/check.sh [--fast]
#   --fast skips both sanitizer passes (the slowest stages) for quick local
#   runs.
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    *) echo "usage: scripts/check.sh [--fast]" >&2; exit 2 ;;
  esac
done

JOBS=$(nproc 2>/dev/null || echo 4)

# Per-test timeout (seconds): a wedged thread in the concurrency tests must
# fail the gate, not hang CI forever.
TEST_TIMEOUT=120

echo "== [1/6] tier-1 verify (LDPC_WERROR=ON) =="
cmake -B build -S . -DLDPC_WERROR=ON
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure --timeout "$TEST_TIMEOUT"

echo "== [2/6] scalar-only build (LDPC_SIMD=OFF) — SIMD equivalence =="
cmake -B build-nosimd -S . -DLDPC_SIMD=OFF -DLDPC_WERROR=ON
cmake --build build-nosimd -j "$JOBS" --target simd_equivalence_test
ctest --test-dir build-nosimd --output-on-failure --timeout "$TEST_TIMEOUT" \
  -R 'SimdEquivalence'

if [ "$FAST" -eq 0 ]; then
  echo "== [3/6] ASan + UBSan =="
  cmake -B build-asan -S . -DLDPC_SANITIZE=ON -DLDPC_WERROR=ON
  cmake --build build-asan -j "$JOBS"
  ctest --test-dir build-asan --output-on-failure --timeout "$TEST_TIMEOUT"

  echo "== [4/6] ThreadSanitizer (runtime engine, supervisor, chaos, BER) =="
  cmake -B build-tsan -S . -DLDPC_SANITIZE=thread -DLDPC_WERROR=ON
  cmake --build build-tsan -j "$JOBS" \
    --target runtime_test chaos_test channel_test
  ctest --test-dir build-tsan --output-on-failure --timeout "$TEST_TIMEOUT" \
    -R 'JobQueue|BatchEngine|RetryPolicy|Supervisor|ChaosEngine|BerRunner|BerFrameSeeds'
else
  echo "== [3/6] ASan + UBSan — skipped (--fast) =="
  echo "== [4/6] ThreadSanitizer — skipped (--fast) =="
fi

echo "== [5/6] clang-tidy =="
cmake --build build --target lint

echo "== [6/6] ldpc-lint over all bundled codes =="
./build/src/analysis/ldpc-lint
./build/src/analysis/ldpc-lint --order hazard

echo "All checks passed."
