#!/usr/bin/env bash
# Full verification gate: everything CI runs, in one command.
#
#   1. tier-1 verify   — warnings-as-errors build + complete ctest suite
#   2. scalar-only     — LDPC_SIMD=OFF build (portable kernel only) running
#                        the SIMD equivalence suites (z-lane *and* the
#                        inter-frame-batched fused path), proving the
#                        portable tier alone still matches the scalar
#                        decoder bit-for-bit
#   3. sanitizer pass  — ASan+UBSan build (LDPC_SANITIZE=ON) + ctest; the
#                        SIMD kernels are ON here so the intrinsic paths run
#                        under instrumentation too
#   4. TSan pass       — ThreadSanitizer build (LDPC_SANITIZE=thread) running
#                        the concurrency-sensitive tests: the runtime batch
#                        engine (scalar and fused block paths), the
#                        retry/escalation supervisor, the fault-injection
#                        chaos test, the BER runner, the Rayleigh fading
#                        paths and the HARQ link loop (multi-worker chase /
#                        incremental-redundancy combining)
#   5. service stage   — the network decode service under TSan: wire-codec
#                        corpus, registry, service robustness tests, then a
#                        short chaos load-generator smoke (malformed frames,
#                        disconnects, deadline storm, worker faults); any
#                        crash, hang, race or failed invariant fails the gate
#
# Every ctest invocation carries a per-test --timeout so a wedged worker
# thread fails loudly instead of hanging the gate.
#   6. bench artifact  — runs the tracked decoder-throughput measurement and
#                        fails unless BENCH_decoder_throughput.json carries
#                        the aggregate "engine-simd-batched" entry with zero
#                        SIMD fallbacks (the bench itself also exits nonzero
#                        on any silent scalar fallback)
#   7. HARQ artifact   — runs the HARQ link comparison bench and gates on
#                        BENCH_harq_link.json: on every punctured MCS the
#                        delivered throughput must order incremental >
#                        chase > plain-retry, and the incremental rows must
#                        keep residual BLER <= 0.05
#   8. finite-alphabet — runs the finite-alphabet bench and gates on
#                        BENCH_finite_alphabet.json: the int8 fa4 batched
#                        kernel >= 1.6x the int16 q8.2 batched kernel's
#                        info throughput, fa4 within 0.2 dB of q6 at
#                        info-bit BER 1e-5 (outright better when q6 never
#                        reaches the target), and zero SIMD fallbacks
#   9. clang-tidy      — the `lint` target (.clang-tidy profile); skipped
#                        with a notice when clang-tidy is not installed
#  10. ldpc-lint       — static schedule/hazard analysis over every bundled
#                        code and both column orders (must exit 0)
#  11. thread-safety   — clang -Werror=thread-safety build of the annotated
#                        concurrent layers (LDPC_THREAD_SAFETY=ON); skipped
#                        with a notice when clang++ is not installed
#  12. ldpc-verify     — static fixed-point range verification over every
#                        registered code x {q6, q8} x scaling mode; exits
#                        nonzero on any unproven-unsafe site; the JSON
#                        artifact is archived next to the build
#  13. fuzz replay     — deterministic corpus replay of the wire + alist
#                        fuzz harnesses (generated seed corpus; runs on any
#                        compiler, no libFuzzer needed)
#
# Usage: scripts/check.sh [--fast]
#   --fast skips both sanitizer passes (the slowest stages) for quick local
#   runs.
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    *) echo "usage: scripts/check.sh [--fast]" >&2; exit 2 ;;
  esac
done

JOBS=$(nproc 2>/dev/null || echo 4)

# Per-test timeout (seconds): a wedged thread in the concurrency tests must
# fail the gate, not hang CI forever.
TEST_TIMEOUT=120

echo "== [1/13] tier-1 verify (LDPC_WERROR=ON) =="
cmake -B build -S . -DLDPC_WERROR=ON
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure --timeout "$TEST_TIMEOUT"

echo "== [2/13] scalar-only build (LDPC_SIMD=OFF) — SIMD equivalence =="
cmake -B build-nosimd -S . -DLDPC_SIMD=OFF -DLDPC_WERROR=ON
cmake --build build-nosimd -j "$JOBS" \
  --target simd_equivalence_test simd_batch_test simd_fa_equivalence_test \
           fa_test
ctest --test-dir build-nosimd --output-on-failure --timeout "$TEST_TIMEOUT" \
  -R 'SimdEquivalence|SimdBatch|SimdFaEquivalence|FaTables|FaDecoder'

if [ "$FAST" -eq 0 ]; then
  echo "== [3/13] ASan + UBSan =="
  cmake -B build-asan -S . -DLDPC_SANITIZE=ON -DLDPC_WERROR=ON
  cmake --build build-asan -j "$JOBS"
  ctest --test-dir build-asan --output-on-failure --timeout "$TEST_TIMEOUT"

  echo "== [4/13] ThreadSanitizer (runtime engine, supervisor, chaos, BER, HARQ) =="
  cmake -B build-tsan -S . -DLDPC_SANITIZE=thread -DLDPC_WERROR=ON
  cmake --build build-tsan -j "$JOBS" \
    --target runtime_test chaos_test channel_test simd_batch_test \
             fading_test harq_test
  ctest --test-dir build-tsan --output-on-failure --timeout "$TEST_TIMEOUT" \
    -R 'JobQueue|BatchEngine|RetryPolicy|Supervisor|ChaosEngine|BerRunner|BerFrameSeeds|SimdBatch|Rayleigh|BerExtensions|RateMatcher|LlrBuffer|RedundancyRung|HarqLink'

  echo "== [5/13] decode service under TSan (tests + chaos load smoke) =="
  cmake --build build-tsan -j "$JOBS" \
    --target service_wire_test registry_test service_test bench_decode_service
  ctest --test-dir build-tsan --output-on-failure --timeout "$TEST_TIMEOUT" \
    -R 'ServiceWire|Registry|ServiceTest|EngineSnapshot|CodecCacheTest'
  # Short hostile-load smoke: malformed frames, mid-request disconnects, a
  # deadline storm and worker faults against a live loopback server. The
  # robustness invariants (exactly-once resolution, server stays responsive,
  # clean drain) are asserted by the bench itself; the goodput-ratio perf
  # gate is skipped because TSan's instrumented latencies are meaningless.
  ./build-tsan/bench/bench_decode_service --seconds 0.4 --skip-perf-gate \
    --json build-tsan/BENCH_decode_service_smoke.json
else
  echo "== [3/13] ASan + UBSan — skipped (--fast) =="
  echo "== [4/13] ThreadSanitizer — skipped (--fast) =="
  echo "== [5/13] decode service under TSan — skipped (--fast) =="
fi

echo "== [6/13] fused-path throughput artifact (engine-simd-batched) =="
cmake --build build -j "$JOBS" --target bench_decoder_throughput
# The tracked wall-clock measurement runs before the google-benchmark
# suite; an unmatchable filter skips the latter so this stage stays quick.
# The bench itself exits nonzero if any engine decode silently fell back
# to a scalar path, so a green run already proves the fused kernel ran.
(cd build && ./bench/bench_decoder_throughput --benchmark_filter='^$')
ENGINE_ROW=$(grep '"decoder": "engine-simd-batched"' \
  build/BENCH_decoder_throughput.json || true)
if [ -z "$ENGINE_ROW" ]; then
  echo "BENCH_decoder_throughput.json lacks the aggregate engine entry" >&2
  exit 1
fi
case "$ENGINE_ROW" in
  *'"simd_fallbacks": 0'*) ;;
  *)
    echo "engine-simd-batched entry reports nonzero simd_fallbacks" >&2
    exit 1
    ;;
esac

echo "== [7/13] HARQ link artifact (combining-gain ordering + residual BLER) =="
cmake --build build -j "$JOBS" --target bench_harq_link
(cd build && ./bench/bench_harq_link > /dev/null)
# Gate: on every punctured MCS the delivered throughput must order
# incremental > chase > plain-retry (combining must pay for itself, and
# revealing punctured parity must beat blindly repeating the frame), and
# every incremental row must close the loop with residual BLER <= 0.05.
python3 - build/BENCH_harq_link.json <<'EOF'
import json, sys

rows = json.load(open(sys.argv[1]))
by_mcs = {}
for row in rows:
    by_mcs.setdefault(row["mcs"], {})[row["mode"]] = row

failures = []
for mcs, modes in sorted(by_mcs.items()):
    missing = {"plain-retry", "chase", "incremental"} - modes.keys()
    if missing:
        failures.append(f"{mcs}: missing modes {sorted(missing)}")
        continue
    plain = modes["plain-retry"]["throughput_bits_per_symbol"]
    chase = modes["chase"]["throughput_bits_per_symbol"]
    ir = modes["incremental"]["throughput_bits_per_symbol"]
    punctured = modes["incremental"]["punctured"]
    if not chase > plain:
        failures.append(f"{mcs}: chase ({chase:.3f}) !> plain ({plain:.3f})")
    if punctured:
        if not ir > chase:
            failures.append(f"{mcs}: incremental ({ir:.3f}) !> chase ({chase:.3f})")
    elif ir != chase:
        failures.append(
            f"{mcs}: mother-rate IR ({ir:.3f}) should degenerate to chase "
            f"({chase:.3f})")
    bler = modes["incremental"]["residual_bler"]
    if bler > 0.05:
        failures.append(f"{mcs}: incremental residual BLER {bler:.3f} > 0.05")

if failures:
    print("BENCH_harq_link.json gate failed:", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print(f"harq gate: {len(by_mcs)} MCS rows ordered incremental >= chase > plain, "
      "incremental residual BLER <= 0.05")
EOF

echo "== [8/13] finite-alphabet artifact (int8 speedup + BER gap + fallbacks) =="
cmake --build build -j "$JOBS" --target bench_finite_alphabet
# The bench exits nonzero on its own acceptance check; the python gate
# below re-derives the same three criteria from the JSON artifact so the
# tracked numbers and the gate can never drift apart.
(cd build && ./bench/bench_finite_alphabet > /dev/null)
python3 - build/BENCH_finite_alphabet.json <<'EOF'
import json, sys

rows = json.load(open(sys.argv[1]))
tput = {r["message_format"]: r for r in rows if r["kind"] == "throughput"}
cross = {r["message_format"]: r for r in rows if r["kind"] == "ber-crossing"}

failures = []
missing = {"q8.2", "fa4"} - tput.keys()
if missing:
    failures.append(f"missing throughput rows: {sorted(missing)}")
else:
    speedup = tput["fa4"]["info_mbps"] / tput["q8.2"]["info_mbps"]
    if speedup < 1.6:
        failures.append(
            f"int8 fa4 batched only {speedup:.2f}x the int16 q8.2 batched "
            f"kernel (need >= 1.6x)")
    for fmt, row in tput.items():
        if row["simd_fallbacks"] != 0:
            failures.append(f"{fmt}: {row['simd_fallbacks']} SIMD fallbacks")

if "fa4" not in cross or not cross["fa4"]["crossed"]:
    failures.append("fa4 never reaches info-bit BER 1e-5 inside the grid")
elif cross.get("q6.1", {}).get("crossed"):
    gap = cross["fa4"]["ebn0_db"] - cross["q6.1"]["ebn0_db"]
    if gap > 0.2:
        failures.append(f"fa4 needs {gap:.3f} dB more than q6 at BER 1e-5 "
                        f"(allowed 0.2)")

if failures:
    print("BENCH_finite_alphabet.json gate failed:", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
speedup = tput["fa4"]["info_mbps"] / tput["q8.2"]["info_mbps"]
q6_note = (f"q6 at {cross['q6.1']['ebn0_db']:.2f} dB"
           if cross.get("q6.1", {}).get("crossed")
           else "q6 never reaches 1e-5 (fa4 strictly better)")
print(f"finite-alphabet gate: fa4 {speedup:.2f}x int16 throughput, "
      f"BER 1e-5 at {cross['fa4']['ebn0_db']:.2f} dB, {q6_note}, "
      "0 SIMD fallbacks")
EOF

echo "== [9/13] clang-tidy =="
cmake --build build --target lint

echo "== [10/13] ldpc-lint over all bundled codes =="
./build/src/analysis/ldpc-lint
./build/src/analysis/ldpc-lint --order hazard

echo "== [11/13] clang thread-safety analysis (LDPC_THREAD_SAFETY=ON) =="
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-tsafety -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DLDPC_THREAD_SAFETY=ON -DLDPC_WERROR=ON
  # The annotated concurrent layers and everything linking them; any lock-
  # discipline violation is a compile error here.
  cmake --build build-tsafety -j "$JOBS" \
    --target ldpc_runtime ldpc_service ldpc_codes
else
  echo "thread-safety: clang++ not installed - skipping (annotations are"
  echo "no-ops under this compiler; install clang to enable the analysis)"
fi

echo "== [12/13] ldpc-verify static range verification =="
# Nonzero exit = a datapath site can exceed its rails with no clamp there.
./build/src/analysis/ldpc-verify --all-codes \
  --json build/RANGE_VERIFY.json
echo "range-verify artifact: build/RANGE_VERIFY.json"

echo "== [13/13] fuzz corpus replay smoke =="
ctest --test-dir build --output-on-failure --timeout "$TEST_TIMEOUT" \
  -R 'fuzz_'

echo "All checks passed."
