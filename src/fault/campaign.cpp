#include "fault/campaign.hpp"

#include <cstdio>
#include <memory>

#include "arch/arch_sim.hpp"
#include "channel/awgn.hpp"
#include "channel/modem.hpp"
#include "codes/encoder.hpp"
#include "core/layered_minsum_fixed.hpp"
#include "hls/pico.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ldpc {

const char* campaign_target_name(CampaignTarget target) {
  switch (target) {
    case CampaignTarget::kLayeredFixed: return "layered-fixed";
    case CampaignTarget::kArchSim:      return "arch-sim";
  }
  return "?";
}

FaultCampaignRunner::FaultCampaignRunner(const QCLdpcCode& code,
                                         FaultCampaignConfig config)
    : code_(code), config_(std::move(config)) {
  LDPC_CHECK_MSG(!config_.fault_rates.empty(), "campaign needs fault rates");
  LDPC_CHECK_MSG(!config_.ebn0_db.empty(), "campaign needs Eb/N0 points");
  LDPC_CHECK(config_.frames_per_point > 0);
  for (double r : config_.fault_rates)
    LDPC_CHECK_MSG(r >= 0.0 && r <= 1.0, "fault rate " << r << " out of range");
  validate(config_.format);
}

std::vector<FaultCampaignPoint> FaultCampaignRunner::run() {
  std::vector<FaultCampaignPoint> points;
  points.reserve(config_.fault_rates.size() * config_.ebn0_db.size());
  for (std::size_t ri = 0; ri < config_.fault_rates.size(); ++ri)
    for (std::size_t ei = 0; ei < config_.ebn0_db.size(); ++ei)
      points.push_back(
          run_point(config_.fault_rates[ri], ri, config_.ebn0_db[ei], ei));
  return points;
}

FaultCampaignPoint FaultCampaignRunner::run_point(double fault_rate,
                                                  std::size_t rate_index,
                                                  float ebn0_db,
                                                  std::size_t ebn0_index) {
  FaultCampaignPoint point;
  point.fault_rate = fault_rate;
  point.ebn0_db = ebn0_db;

  DecoderOptions options;
  options.max_iterations = config_.max_iterations;
  options.early_termination = true;
  options.watchdog = config_.watchdog;
  options.count_saturation = true;

  // One injector per point. Its Bernoulli stream is reseeded per frame from
  // (seed, rate, ebn0, frame) so any frame's fault pattern can be replayed
  // in isolation.
  FaultConfig fc;
  fc.rate = fault_rate;
  fc.kind = config_.kind;
  fc.sites = config_.sites;
  fc.seed = config_.seed;
  FaultInjector injector(fc);
  if (fault_rate > 0.0) options.fault_injector = &injector;

  std::unique_ptr<LayeredMinSumFixedDecoder> layered;
  std::unique_ptr<ArchSimDecoder> arch;
  if (config_.target == CampaignTarget::kLayeredFixed) {
    layered = std::make_unique<LayeredMinSumFixedDecoder>(code_, options,
                                                          config_.format);
  } else {
    const PicoCompiler pico(config_.format);
    const HardwareEstimate est = pico.compile(
        code_, ArchKind::kTwoLayerPipelined,
        HardwareTarget{400.0, code_.z()});
    ArchSimConfig sim_cfg;
    sim_cfg.hazard_aware_order = true;
    arch = std::make_unique<ArchSimDecoder>(code_, est, options,
                                            config_.format, sim_cfg);
  }

  const float variance = awgn_noise_variance(ebn0_db, code_.rate());
  const RuEncoder encoder(code_);
  BitVec info(code_.k());
  std::vector<std::int32_t> channel_codes(code_.n());

  for (std::size_t frame = 0; frame < config_.frames_per_point; ++frame) {
    // Frame content depends on (seed, ebn0, frame) only — identical across
    // fault rates for paired degradation comparison.
    std::uint64_t sm = config_.seed + 0x9e3779b9ULL * (ebn0_index + 1) +
                       0x100000001b3ULL * (frame + 1);
    Xoshiro256 info_rng(splitmix64(sm));
    AwgnChannel awgn(variance, splitmix64(sm));
    for (std::size_t i = 0; i < info.size(); ++i) info.set(i, info_rng.coin());
    const BitVec codeword = encoder.encode(info);
    const auto symbols = BpskModem::modulate(codeword);
    const auto received = awgn.transmit(symbols);
    const auto llr = BpskModem::demodulate(received, variance);

    long long quant_clips = 0;
    for (std::size_t i = 0; i < llr.size(); ++i)
      channel_codes[i] = config_.format.quantize(llr[i], quant_clips);

    // The fault stream additionally depends on the rate index so sweeping
    // rates never replays one upset pattern at a new rate by accident.
    std::uint64_t fsm = config_.seed ^ (0xFA17ULL * (rate_index + 1));
    splitmix64(fsm);
    injector.reseed(splitmix64(fsm) + frame);

    DecodeResult result;
    long long sat_clips = quant_clips;
    if (layered) {
      result = layered->decode_quantized(channel_codes);
      sat_clips += layered->saturation().quantizer_clips +
                   layered->saturation().datapath_clips;
    } else {
      ArchDecodeResult arch_result = arch->decode_quantized(channel_codes);
      sat_clips += arch_result.activity.sat_clips;
      result = std::move(arch_result.decode);
    }

    std::size_t bit_errors = 0;
    for (std::size_t i = 0; i < code_.k(); ++i)
      if (result.hard_bits.get(i) != info.get(i)) ++bit_errors;

    ++point.frames;
    point.sum_iterations += static_cast<double>(result.iterations);
    point.injections += static_cast<long long>(result.faults_injected);
    point.sat_clips += sat_clips;
    if (result.status == DecodeStatus::kWatchdogAbort) ++point.watchdog_aborts;
    if (bit_errors > 0) {
      point.bit_errors += bit_errors;
      ++point.frame_errors;
      if (result.converged) ++point.undetected_errors;
      else ++point.detected_errors;
    }
  }
  return point;
}

std::vector<std::string> FaultCampaignRunner::csv_header() {
  return {"target",          "sites",          "kind",
          "fault_rate",      "ebn0_db",        "frames",
          "ber",             "fer",            "frame_errors",
          "detected_errors", "undetected_errors", "detection_coverage",
          "watchdog_aborts", "injections",     "sat_clips",
          "avg_iterations"};
}

namespace {
std::string fmt(const char* spec, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}
}  // namespace

std::vector<std::string> FaultCampaignRunner::csv_row(
    const FaultCampaignPoint& point) const {
  std::string sites;
  for (std::size_t s = 0; s < kNumFaultSites; ++s) {
    if ((config_.sites & (1U << s)) == 0) continue;
    if (!sites.empty()) sites += '+';
    sites += fault_site_name(static_cast<FaultSite>(s));
  }
  return {campaign_target_name(config_.target),
          sites,
          fault_kind_name(config_.kind),
          fmt("%.3g", point.fault_rate),
          fmt("%.2f", point.ebn0_db),
          std::to_string(point.frames),
          fmt("%.6g", point.ber(code_.k())),
          fmt("%.6g", point.fer()),
          std::to_string(point.frame_errors),
          std::to_string(point.detected_errors),
          std::to_string(point.undetected_errors),
          fmt("%.4f", point.detection_coverage()),
          std::to_string(point.watchdog_aborts),
          std::to_string(point.injections),
          std::to_string(point.sat_clips),
          fmt("%.3f", point.avg_iterations())};
}

}  // namespace ldpc
