// Deterministic fault injection for the decoder pipeline.
//
// Real deployments of the paper's silicon (TSMC 65 nm, 82,944 SRAM bits,
// Table II) must survive SRAM soft errors and datapath upsets. This header
// models them: a seeded Bernoulli stream of bit upsets applied at named
// sites of the architecture — P/R SRAM words on read, the min1/min2/sign
// state arrays of the two-stage cores (Fig. 5/7), and the §IV-B scoreboard
// pending bits. The injector is off by default and costs a single pointer
// compare on the hot paths when disabled; all randomness is xoshiro256++
// seeded, so campaigns are bit-reproducible.
//
// The Bernoulli stream uses geometric skip sampling: instead of drawing one
// uniform per examined bit, the injector draws the gap to the next upset
// (~Geometric(rate)), so sweeping realistic upset rates (1e-7..1e-2 per bit
// per access) costs O(upsets), not O(bits examined). The draw sequence
// depends only on the number of bits examined, never on how the bits are
// grouped into calls, which keeps campaigns deterministic across refactors
// of the call sites.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ldpc {

/// Where a fault lands in the paper's datapath (see docs/fault_injection.md
/// for the mapping onto Fig. 4/6 and the Table II SRAM macros).
enum class FaultSite : unsigned {
  kSramP = 0,        ///< P memory word on read (24 x z*w bit macro)
  kSramR,            ///< R memory word on read (84 x z*w bit macro)
  kCoreMin1,         ///< core-1 min1_array registers (z x (w) bits)
  kCoreMin2,         ///< core-1 min2_array registers
  kCoreSign,         ///< core-1 sign_array registers (z x 1 bit)
  kScoreboard,       ///< §IV-B scoreboard pending bits (RAW hazard bits)
  kCount
};

constexpr std::size_t kNumFaultSites = static_cast<std::size_t>(FaultSite::kCount);

constexpr std::uint32_t fault_site_bit(FaultSite s) {
  return 1U << static_cast<unsigned>(s);
}

constexpr std::uint32_t kAllFaultSites = (1U << kNumFaultSites) - 1;
constexpr std::uint32_t kSramFaultSites =
    fault_site_bit(FaultSite::kSramP) | fault_site_bit(FaultSite::kSramR);
constexpr std::uint32_t kDatapathFaultSites =
    fault_site_bit(FaultSite::kCoreMin1) | fault_site_bit(FaultSite::kCoreMin2) |
    fault_site_bit(FaultSite::kCoreSign);
constexpr std::uint32_t kScoreboardFaultSites =
    fault_site_bit(FaultSite::kScoreboard);

inline const char* fault_site_name(FaultSite s) {
  switch (s) {
    case FaultSite::kSramP:      return "sram-p";
    case FaultSite::kSramR:      return "sram-r";
    case FaultSite::kCoreMin1:   return "core-min1";
    case FaultSite::kCoreMin2:   return "core-min2";
    case FaultSite::kCoreSign:   return "core-sign";
    case FaultSite::kScoreboard: return "scoreboard";
    case FaultSite::kCount:      break;
  }
  return "?";
}

/// What an upset does to the bit it hits. Transient flips model SEUs;
/// stuck-at faults model weak cells re-sampled per access (the value read
/// is forced, the stored value is untouched — a read-disturb model).
enum class FaultKind { kTransientFlip, kStuckAtZero, kStuckAtOne };

inline const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kTransientFlip: return "flip";
    case FaultKind::kStuckAtZero:   return "stuck0";
    case FaultKind::kStuckAtOne:    return "stuck1";
  }
  return "?";
}

struct FaultConfig {
  double rate = 0.0;   ///< per-bit, per-access upset probability
  FaultKind kind = FaultKind::kTransientFlip;
  std::uint32_t sites = kAllFaultSites;  ///< OR of fault_site_bit()
  std::uint64_t seed = 0x5eedULL;
};

struct FaultSiteStats {
  long long bits_examined = 0;  ///< Bernoulli trials at this site
  long long injections = 0;     ///< upsets that actually changed a bit
};

class FaultInjector {
 public:
  /// Default-constructed injector is disabled (rate 0): hooks may be wired
  /// unconditionally and decode bit-identically to the un-hooked path.
  FaultInjector() { recompute_(); }

  explicit FaultInjector(FaultConfig config) : config_(config) {
    LDPC_CHECK_MSG(config_.rate >= 0.0 && config_.rate <= 1.0,
                   "fault rate must be a probability, got " << config_.rate);
    rng_.reseed(config_.seed);
    recompute_();
  }

  const FaultConfig& config() const { return config_; }

  /// Master switch on top of the configured rate (campaign runners disarm
  /// the injector while generating clean reference decodes).
  void set_enabled(bool enabled) {
    enabled_ = enabled;
    recompute_();
  }
  bool enabled() const { return active_; }

  /// True iff upsets can land at `site` — the hot-path gate every hook
  /// checks before touching the injector (one load + mask when disabled).
  bool armed(FaultSite site) const {
    return active_ && (config_.sites & fault_site_bit(site)) != 0;
  }

  /// Restart the Bernoulli stream (per-frame or per-point reseeding).
  void reseed(std::uint64_t seed) {
    rng_.reseed(seed);
    skip_ = -1;
  }

  void reset_stats() { stats_.fill(FaultSiteStats{}); }

  const FaultSiteStats& stats(FaultSite site) const {
    return stats_[static_cast<std::size_t>(site)];
  }

  /// Total upsets injected across all sites since the last reset_stats().
  long long injections() const {
    long long total = 0;
    for (const auto& s : stats_) total += s.injections;
    return total;
  }

  /// Corrupt a `bits`-wide two's-complement value (SRAM message words).
  /// Result is sign-extended back into the format's range.
  std::int32_t corrupt_value(FaultSite site, std::int32_t value, int bits) {
    if (!armed(site)) return value;
    return corrupt_bits_(site, value, bits, /*sign_extend=*/true);
  }

  /// Corrupt a `bits`-wide unsigned magnitude (min1/min2 register files).
  std::int32_t corrupt_magnitude(FaultSite site, std::int32_t value, int bits) {
    if (!armed(site)) return value;
    return corrupt_bits_(site, value, bits, /*sign_extend=*/false);
  }

  /// Corrupt a single control bit (sign registers, scoreboard pending bits).
  bool corrupt_flag(FaultSite site, bool value) {
    if (!armed(site)) return value;
    auto& st = stats_[static_cast<std::size_t>(site)];
    ++st.bits_examined;
    if (!take_trial_(1)) return value;
    const bool upset = apply_kind_(value);
    if (upset != value) ++st.injections;
    return upset;
  }

  /// Corrupt every lane of an SRAM word in place; returns bits changed.
  int corrupt_word(FaultSite site, std::vector<std::int32_t>& word, int bits) {
    if (!armed(site)) return 0;
    int changed = 0;
    for (auto& lane : word) {
      const std::int32_t before = lane;
      lane = corrupt_bits_(site, lane, bits, /*sign_extend=*/true);
      if (lane != before) ++changed;
    }
    return changed;
  }

 private:
  void recompute_() {
    active_ = enabled_ && config_.rate > 0.0;
    skip_ = -1;  // force a fresh geometric draw at the new rate
  }

  /// Consume `trials` Bernoulli trials; true iff one of them is an upset
  /// (at realistic rates at most one lands inside a <=16-bit window, so the
  /// callers treat the window as carrying a single upset).
  bool take_trial_(int trials) {
    if (skip_ < 0) draw_skip_();
    if (skip_ >= trials) {
      skip_ -= trials;
      return false;
    }
    draw_skip_();  // gap from the upset to the next one
    return true;
  }

  void draw_skip_() {
    if (config_.rate >= 1.0) {
      skip_ = 0;
      return;
    }
    // Geometric(p) via inversion: floor(ln U / ln(1-p)), U in (0,1).
    const double u = 1.0 - rng_.uniform();  // (0, 1]
    const double g = std::log(u) / std::log1p(-config_.rate);
    skip_ = g > 1e18 ? static_cast<long long>(1e18) : static_cast<long long>(g);
  }

  bool apply_kind_(bool bit) const {
    switch (config_.kind) {
      case FaultKind::kTransientFlip: return !bit;
      case FaultKind::kStuckAtZero:   return false;
      case FaultKind::kStuckAtOne:    return true;
    }
    return bit;
  }

  std::int32_t corrupt_bits_(FaultSite site, std::int32_t value, int bits,
                             bool sign_extend) {
    auto& st = stats_[static_cast<std::size_t>(site)];
    st.bits_examined += bits;
    std::uint32_t u =
        static_cast<std::uint32_t>(value) & ((bits >= 32) ? ~0U : ((1U << bits) - 1U));
    bool touched = false;
    int offset = 0;
    int remaining = bits;
    while (remaining > 0) {
      if (skip_ < 0) draw_skip_();
      if (skip_ >= remaining) {
        skip_ -= remaining;
        break;
      }
      const int pos = offset + static_cast<int>(skip_);
      remaining -= static_cast<int>(skip_) + 1;
      offset = pos + 1;
      draw_skip_();
      const bool old_bit = ((u >> pos) & 1U) != 0;
      const bool new_bit = apply_kind_(old_bit);
      if (new_bit != old_bit) {
        u ^= (1U << pos);
        touched = true;
        ++st.injections;
      }
    }
    if (!touched) return value;
    if (sign_extend && bits < 32) {
      const int shift = 32 - bits;
      return static_cast<std::int32_t>(u << shift) >> shift;
    }
    return static_cast<std::int32_t>(u);
  }

  FaultConfig config_{};
  Xoshiro256 rng_{0x5eedULL};
  bool enabled_ = true;
  bool active_ = false;          ///< enabled_ && rate > 0, cached
  long long skip_ = -1;          ///< Bernoulli trials until the next upset
  std::array<FaultSiteStats, kNumFaultSites> stats_{};
};

}  // namespace ldpc
