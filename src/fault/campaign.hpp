// Fault-resilience campaign runner.
//
// Sweeps upset rate x Eb/N0 for a chosen decoder target and reports the
// BER/FER degradation plus the graceful-degradation metrics: how many wrong
// frames the decoder itself flagged (detection coverage), how many the
// watchdog cut short, and how many upsets landed. Frame content (info bits,
// noise) is derived from (seed, ebn0 index, frame) only — never from the
// fault rate — so every rate decodes the *same* noisy frames and the
// degradation columns are a paired comparison, not two independent
// Monte-Carlo estimates.
//
// The runner is single-threaded by design: campaign CSVs are committed as
// golden artifacts and must be byte-identical across runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "codes/qc_code.hpp"
#include "core/quant.hpp"
#include "fault/fault_injector.hpp"
#include "core/decoder.hpp"

namespace ldpc {

/// Which implementation the upsets are injected into.
enum class CampaignTarget {
  kLayeredFixed,  ///< algorithmic layered min-sum (fast; datapath+SRAM-word sites)
  kArchSim,       ///< cycle-accurate two-layer pipeline (adds scoreboard site)
};

const char* campaign_target_name(CampaignTarget target);

struct FaultCampaignConfig {
  std::vector<double> fault_rates;  ///< per-bit per-access upset probabilities
  std::vector<float> ebn0_db;       ///< channel operating points
  std::size_t frames_per_point = 200;
  std::size_t max_iterations = 10;
  std::uint64_t seed = 2009;
  FaultKind kind = FaultKind::kTransientFlip;
  std::uint32_t sites = kAllFaultSites;
  FixedFormat format{8, 2};
  CampaignTarget target = CampaignTarget::kLayeredFixed;
  /// Watchdog stall window (0 disables); 3 is a sensible default against
  /// oscillating corrupted decodes at max_iterations = 10.
  WatchdogOptions watchdog{3};
};

struct FaultCampaignPoint {
  double fault_rate = 0.0;
  float ebn0_db = 0.0F;
  std::size_t frames = 0;
  std::size_t bit_errors = 0;        ///< over information bits
  std::size_t frame_errors = 0;      ///< frames with any info-bit error
  std::size_t detected_errors = 0;   ///< wrong and status != converged
  std::size_t undetected_errors = 0; ///< wrong yet reported converged
  std::size_t watchdog_aborts = 0;
  long long injections = 0;          ///< upsets landed
  long long sat_clips = 0;           ///< saturation events (quantizer+datapath)
  double sum_iterations = 0.0;

  double ber(std::size_t k) const {
    return frames == 0 ? 0.0
                       : static_cast<double>(bit_errors) /
                             (static_cast<double>(frames) * static_cast<double>(k));
  }
  double fer() const {
    return frames == 0 ? 0.0
                       : static_cast<double>(frame_errors) /
                             static_cast<double>(frames);
  }
  double detection_coverage() const {
    return frame_errors == 0 ? 1.0
                             : static_cast<double>(detected_errors) /
                                   static_cast<double>(frame_errors);
  }
  double avg_iterations() const {
    return frames == 0 ? 0.0 : sum_iterations / static_cast<double>(frames);
  }
};

class FaultCampaignRunner {
 public:
  /// `code` must outlive the runner.
  FaultCampaignRunner(const QCLdpcCode& code, FaultCampaignConfig config);

  /// One point per (fault_rate, ebn0) pair, fault rates outer, in order.
  std::vector<FaultCampaignPoint> run();

  /// CSV header matching write_csv_row's columns.
  static std::vector<std::string> csv_header();
  std::vector<std::string> csv_row(const FaultCampaignPoint& point) const;

 private:
  FaultCampaignPoint run_point(double fault_rate, std::size_t rate_index,
                               float ebn0_db, std::size_t ebn0_index);

  const QCLdpcCode& code_;
  FaultCampaignConfig config_;
};

}  // namespace ldpc
