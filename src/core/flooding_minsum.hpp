// Floating-point flooding min-sum decoder with optional normalization
// (scaled min-sum) or offset correction.
//
// This is the classical baseline the paper's layered schedule is an
// optimization of: same check-node approximation, but a two-phase flooding
// schedule that needs roughly twice the iterations of layered decoding to
// reach the same error rate.
#pragma once

#include <vector>

#include "codes/qc_code.hpp"
#include "core/decoder.hpp"

namespace ldpc {

enum class MinSumVariant {
  kPlain,          ///< raw min-sum (overestimates reliability)
  kNormalized,     ///< multiply magnitudes by `scale` (the paper uses 0.75)
  kOffset,         ///< subtract `offset`, clamp at zero
  kSelfCorrected,  ///< Savin's SCMS: erase sign-flipping variable messages
};

class FloodingMinSumDecoder final : public Decoder {
 public:
  FloodingMinSumDecoder(const QCLdpcCode& code, DecoderOptions options,
                        MinSumVariant variant = MinSumVariant::kNormalized,
                        float offset = 0.5F);

  DecodeResult decode(std::span<const float> llr) override;
  std::size_t n() const override { return code_.n(); }
  std::size_t k() const override { return code_.k(); }
  std::string name() const override;

 private:
  const QCLdpcCode& code_;
  DecoderOptions options_;
  MinSumVariant variant_;
  float offset_;
  std::vector<float> var_to_check_;
  std::vector<float> check_to_var_;
  /// SCMS sign memory: 0 = positive, 1 = negative, 2 = erased/unset.
  std::vector<std::uint8_t> prev_sign_;
};

}  // namespace ldpc
