// Floating-point layered scaled-min-sum decoder (Algorithm 1 without
// quantization).
//
// Serves two purposes: (1) isolates the convergence benefit of the layered
// schedule from fixed-point effects in the BER benches, and (2) is the
// reference the fixed-point decoder's quantization loss is measured against.
#pragma once

#include <vector>

#include "codes/qc_code.hpp"
#include "core/decoder.hpp"

namespace ldpc {

class LayeredMinSumFloatDecoder final : public Decoder {
 public:
  LayeredMinSumFloatDecoder(const QCLdpcCode& code, DecoderOptions options);

  DecodeResult decode(std::span<const float> llr) override;
  std::size_t n() const override { return code_.n(); }
  std::size_t k() const override { return code_.k(); }
  std::string name() const override { return "layered-minsum-float"; }

 private:
  const QCLdpcCode& code_;
  DecoderOptions options_;
  std::vector<float> posterior_;  ///< P_n
  std::vector<float> check_msg_;  ///< R_mn, indexed r_slot * z + row
};

}  // namespace ldpc
