// Decoder factory — maps benchmark/CLI names onto decoder instances so the
// examples and the BER harness select decoders by string.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "codes/qc_code.hpp"
#include "core/decoder.hpp"
#include "core/quant.hpp"

namespace ldpc {

/// Callable producing a fresh decoder instance. Invoked once per worker
/// thread by the BER harness and the runtime batch engine (decoders hold
/// per-call message memory, so each thread needs its own).
using DecoderFactory = std::function<std::unique_ptr<Decoder>()>;

/// Recognised names:
///   "flooding-bp", "flooding-minsum", "flooding-minsum-norm",
///   "flooding-minsum-offset", "layered-minsum-float",
///   "layered-minsum-fixed" (8.2), "layered-minsum-q6" (6.1),
///   and the bit-identical SIMD z-lane twins "layered-minsum-simd" (8.2),
///   "layered-minsum-simd-q6" (6.1), "layered-minsum-simd-offset",
///   the finite-alphabet family "layered-minsum-fa{2,3,4}" with its SIMD
///   twins "layered-minsum-simd-fa{2,3,4}" and batched
///   "layered-minsum-simd-batched-fa{2,3,4}" (see core/fa_tables.hpp)
/// Throws ldpc::Error for unknown names (the message lists every known
/// name). The returned decoder borrows `code`;
/// the caller must keep the code alive for the decoder's lifetime.
std::unique_ptr<Decoder> make_decoder(const std::string& name,
                                      const QCLdpcCode& code,
                                      const DecoderOptions& options);

/// All names make_decoder accepts (for --help strings and sweeps).
const std::vector<std::string>& decoder_names();

}  // namespace ldpc
