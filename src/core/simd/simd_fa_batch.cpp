#include "core/simd/simd_fa_batch.hpp"

#include <algorithm>

#include "fault/fault_injector.hpp"
#include "util/check.hpp"

namespace ldpc {
SimdFaBatchDecoder::SimdFaBatchDecoder(const QCLdpcCode& code,
                                       DecoderOptions options, int msg_bits,
                                       float design_ebn0_db,
                                       std::optional<simd::SimdTier> tier)
    : code_(code),
      options_(options),
      tier_(tier.value_or(simd::best_tier())),
      pass_(simd::fa_batch_layer_pass_for(tier_)),
      syndrome_(simd::fa_batch_syndrome_pass_for(tier_)),
      quantize_(simd::fa_quantize_pass_for(tier_)),
      lanes_(simd::tier_lanes8(tier_)) {
  // The z-lane FA twin carries table construction and the whole validation
  // chain (its embedded scalar decoder checks msg_bits and the iteration
  // budget) and serves as the exact per-frame fallback.
  single_ = std::make_unique<SimdFaLayeredDecoder>(code, options, msg_bits,
                                                   design_ebn0_db, tier_);
  const FaTableSet& ts = single_->tables();
  num_thr_ = static_cast<std::uint32_t>(ts.levels - 1);
  iter_tables_.reserve(ts.tables.size());
  for (const FaCnTable& t : ts.tables) {
    IterTable it{};
    it.recon0 = t.recon[0];
    for (std::uint32_t k = 0; k < num_thr_; ++k) {
      it.thr[k] = t.thr[k];
      it.delta[k] = static_cast<std::int8_t>(t.recon[k + 1] - t.recon[k]);
    }
    iter_tables_.push_back(it);
  }
  init_geometry();
  // Lane envelope: pos1 lanes and the per-row int8 clip accumulators both
  // encode the block index / event count of one check row in an int8, so
  // the layer degree must stay below 128. No z * deg product constraint —
  // the FA kernel drains its clip accumulators every row.
  std::size_t max_deg = 0;
  for (const auto& layer : layers_) max_deg = std::max(max_deg, layer.size());
  force_fallback_ = max_deg >= 128;
}

void SimdFaBatchDecoder::init_geometry() {
  z_ = static_cast<std::uint32_t>(code_.z());
  layers_.reserve(code_.layers().size());
  for (const auto& layer : code_.layers()) {
    std::vector<simd::BatchBlock> blocks;
    blocks.reserve(layer.size());
    for (const auto& blk : layer)
      blocks.push_back({blk.block_col * z_, blk.shift % z_, blk.r_slot * z_});
    layers_.push_back(std::move(blocks));
  }
  std::size_t max_deg = 0;
  for (const auto& layer : layers_) max_deg = std::max(max_deg, layer.size());
  r_rows_ = code_.base().nonzero_blocks() * static_cast<std::size_t>(z_);
  // kBatchPrefetchPad rows of slack so the kernels' look-ahead prefetches
  // stay inside the allocations.
  p8_.resize((code_.n() + simd::kBatchPrefetchPad) * lanes_);
  r8_.resize((r_rows_ + simd::kBatchPrefetchPad) * lanes_);
  q8_.resize(std::max<std::size_t>(max_deg, 1) * lanes_);
  active_.resize(lanes_);
  std::fill(active_.begin(), active_.end(), std::int8_t{0});
  r_keep_.resize(lanes_);
  std::fill(r_keep_.begin(), r_keep_.end(), std::int8_t{-1});
  thr_lanes_.resize(static_cast<std::size_t>(num_thr_) * lanes_);
  delta_lanes_.resize(static_cast<std::size_t>(num_thr_) * lanes_);
  recon0_lanes_.resize(lanes_);
  std::fill(thr_lanes_.begin(), thr_lanes_.end(), std::int8_t{0});
  std::fill(delta_lanes_.begin(), delta_lanes_.end(), std::int8_t{0});
  std::fill(recon0_lanes_.begin(), recon0_lanes_.end(), std::int8_t{0});
  stage_.resize(code_.n());
  lane_.assign(lanes_, Lane{});
  q_clips_.assign(lanes_, 0);
  p_clips_.assign(lanes_, 0);
  degenerate_.assign(lanes_, 0);
  weight_.assign(lanes_, 0);
}

void SimdFaBatchDecoder::set_cancel_token(const CancelToken* token) {
  cancel_ = token;
  single_->set_cancel_token(token);
}

DecodeResult SimdFaBatchDecoder::decode(std::span<const float> llr) {
  DecodeResult result = single_->decode(llr);
  last_saturation_ = single_->saturation();
  return result;
}

void SimdFaBatchDecoder::decode_block(std::span<const BlockFrame> frames,
                                      std::span<DecodeResult> results,
                                      std::span<SaturationStats> saturation) {
  LDPC_CHECK(results.size() == frames.size());
  LDPC_CHECK(saturation.size() == frames.size());
  for (const BlockFrame& f : frames) LDPC_CHECK(f.llr.size() == code_.n());

  SimdFallback reason = SimdFallback::kNone;
  if (force_fallback_) {
    reason = SimdFallback::kWideFormat;
  } else if (options_.fault_injector && options_.fault_injector->enabled()) {
    // Fault-campaign corruption order is defined by scalar access order.
    reason = SimdFallback::kFaultInjector;
  } else if (options_.observer) {
    // The observer contract is one snapshot per iteration of one frame;
    // interleaved lanes have no meaningful single-frame cadence.
    reason = SimdFallback::kObserver;
  }
  if (reason != SimdFallback::kNone) {
    decode_block_fallback(frames, results, saturation, reason);
    return;
  }
  run_block(frames, results, saturation);
}

void SimdFaBatchDecoder::decode_block_fallback(
    std::span<const BlockFrame> frames, std::span<DecodeResult> results,
    std::span<SaturationStats> saturation, SimdFallback reason) {
  for (std::size_t i = 0; i < frames.size(); ++i) {
    single_->set_cancel_token(frames[i].cancel);
    results[i] = single_->decode(frames[i].llr);
    saturation[i] = single_->saturation();
    // The twin stamps its own, more specific reason when *it* also had to
    // bypass its lane kernel; otherwise record why batching was off.
    if (results[i].simd_fallback == SimdFallback::kNone)
      results[i].simd_fallback = reason;
  }
  single_->set_cancel_token(cancel_);
  if (!frames.empty()) last_saturation_ = saturation.back();
}

void SimdFaBatchDecoder::run_block(std::span<const BlockFrame> frames,
                                   std::span<DecodeResult> results,
                                   std::span<SaturationStats> saturation) {
  const std::size_t count = frames.size();
  const std::size_t n = code_.n();
  std::size_t next = 0;  // next pending frame to claim a lane
  std::size_t done = 0;
  std::uint32_t live = 0;  // lanes currently carrying a frame

  const FixedFormat posterior = single_->tables().posterior;

  simd::SimdFaBatchLayerPass pass;
  pass.p = p8_.data();
  pass.q = q8_.data();
  pass.r = r8_.data();
  pass.z = z_;
  pass.active = active_.data();
  pass.r_keep = r_keep_.data();
  pass.thr_lanes = thr_lanes_.data();
  pass.delta_lanes = delta_lanes_.data();
  pass.recon0_lanes = recon0_lanes_.data();
  pass.num_thr = num_thr_;
  pass.count_clips = options_.count_saturation;
  pass.q_clips = q_clips_.data();
  pass.p_clips = p_clips_.data();

  simd::SimdFaBatchSyndromePass syn;
  syn.p = p8_.data();
  syn.z = z_;

  const bool et = options_.early_termination;
  const bool wd = options_.watchdog.enabled();

  const auto load_lane = [&](std::size_t f, std::size_t g) {
    Lane& lane = lane_[f];
    lane.frame = g;
    lane.iter = 0;
    lane.table = kNoTable;  // force a staircase-column refresh at iter 1
    lane.watchdog = WatchdogState(options_.watchdog);
    lane.cancel = frames[g].cancel;
    SaturationStats& sat = saturation[g];
    sat = SaturationStats{};
    const std::span<const float> llr = frames[g].llr;
    // Quantize straight into lane f's strided column; the lane's R column
    // is NOT zero-filled — r_keep_ masks its reads for the frame's first
    // iteration instead.
    if (options_.count_saturation) {
      for (std::size_t v = 0; v < n; ++v) {
        __builtin_prefetch(&p8_[(v + 16) * lanes_ + f], 1);
        p8_[v * lanes_ + f] = static_cast<std::int8_t>(
            fa_quantize(posterior, llr[v], sat.quantizer_clips));
      }
    } else {
      // Uncounted path (the batch-throughput configuration): the tier's
      // vector quantize kernel fills a contiguous staging row, then a
      // prefetched scatter spreads it across the lane-major stride. The
      // kernel is bit-identical to fa_quantize (see SimdFaQuantizePass in
      // simd_kernel.hpp for the float-exactness argument), so counted and
      // uncounted frames land on the same codes.
      simd::SimdFaQuantizePass qp;
      qp.llr = llr.data();
      qp.out = stage_.data();
      qp.n = n;
      qp.fscale = static_cast<float>(1 << posterior.frac_bits);
      qp.fhi = static_cast<float>(posterior.max_code()) + 1.0F;
      qp.flo = static_cast<float>(posterior.min_code()) - 1.0F;
      quantize_(qp);
      for (std::size_t v = 0; v < n; ++v) {
        __builtin_prefetch(&p8_[(v + 16) * lanes_ + f], 1);
        p8_[v * lanes_ + f] = stage_[v];
      }
    }
    q_clips_[f] = 0;
    p_clips_[f] = 0;
    degenerate_[f] = 0;
    active_[f] = -1;
    ++live;
  };

  // Retire lane f, writing its frame's DecodeResult exactly as the scalar
  // decoder's iteration tail + output parity recheck would have. When the
  // caller just ran the vectorized syndrome pass, lane f's parity is
  // already known (`parity_known` + `parity` = weight_[f] == 0) and the
  // scalar whole-code parity_ok walk is skipped; only cancellation mid-
  // iteration (stale weight_) and the no-probe configuration pay it.
  const auto finalize = [&](std::size_t f, bool watchdog_fired,
                            bool cancelled, bool parity_known, bool parity) {
    Lane& lane = lane_[f];
    const std::size_t g = lane.frame;
    DecodeResult& res = results[g];
    res.hard_bits.resize(n);
    // Drain the lane's posterior signs 64 at a time: assembling a word
    // locally keeps the strided loads independent (no per-bit RMW chain)
    // and set_word skips BitVec's per-bit bounds checks.
    for (std::size_t w = 0; w < (n + 63) / 64; ++w) {
      const std::size_t base = w * 64;
      const std::size_t limit = std::min<std::size_t>(64, n - base);
      std::uint64_t bits = 0;
      for (std::size_t b = 0; b < limit; ++b) {
        __builtin_prefetch(&p8_[(base + b + 16) * lanes_ + f], 0);
        bits |= static_cast<std::uint64_t>(p8_[(base + b) * lanes_ + f] < 0)
                << b;
      }
      res.hard_bits.set_word(w, bits);
    }
    res.iterations = lane.iter;
    res.converged = parity_known ? parity : code_.parity_ok(res.hard_bits);
    res.status = classify_exit(res.converged, watchdog_fired, 0, cancelled);
    res.faults_injected = 0;
    res.simd_fallback = SimdFallback::kNone;
    SaturationStats& sat = saturation[g];
    sat.q_clips = q_clips_[f];
    sat.r_clips = 0;  // structurally zero for this family
    sat.p_clips = p_clips_[f];
    sat.datapath_clips = sat.q_clips + sat.r_clips + sat.p_clips;
    sat.degenerate_checks = degenerate_[f];
    last_saturation_ = sat;
    lane.frame = kIdleLane;
    lane.cancel = nullptr;
    active_[f] = 0;
    --live;
    ++done;
  };

  while (done < count) {
    // Refill: idle lanes pick up pending frames mid-block, so lanes stay
    // full while their neighbours are still iterating.
    for (std::uint32_t f = 0; f < lanes_ && next < count; ++f)
      if (lane_[f].frame == kIdleLane) load_lane(f, next++);

    for (std::uint32_t f = 0; f < lanes_; ++f)
      if (lane_[f].frame != kIdleLane) {
        Lane& lane = lane_[f];
        ++lane.iter;
        // First iteration of a refilled lane: its R column is stale memory
        // and must read as 0 (the kernel masks it via r_keep).
        r_keep_[f] = lane.iter == 1 ? std::int8_t{0} : std::int8_t{-1};
        // Refresh the lane's staircase column when its per-iteration table
        // changes (iterations beyond the table count reuse the last one).
        const std::size_t t = lane.iter - 1 < iter_tables_.size()
                                  ? lane.iter - 1
                                  : iter_tables_.size() - 1;
        if (t != lane.table) {
          lane.table = t;
          const IterTable& it = iter_tables_[t];
          recon0_lanes_[f] = it.recon0;
          for (std::uint32_t k = 0; k < num_thr_; ++k) {
            thr_lanes_[k * lanes_ + f] = it.thr[k];
            delta_lanes_[k * lanes_ + f] = it.delta[k];
          }
        }
      }

    for (std::size_t l = 0; l < layers_.size() && live > 0; ++l) {
      // Same cooperative-cancellation cadence as the scalar decoder:
      // polled at every layer boundary, where lane posteriors are
      // consistent. An expired lane finalizes from its current state —
      // parity recheck decides converged vs deadline-expired.
      for (std::uint32_t f = 0; f < lanes_; ++f) {
        const Lane& lane = lane_[f];
        if (lane.frame != kIdleLane && lane.cancel && lane.cancel->expired())
          finalize(f, false, true, false, false);
      }
      if (live == 0) break;
      const auto& blocks = layers_[l];
      if (blocks.empty()) continue;
      pass.blocks = blocks.data();
      pass.deg = static_cast<std::uint32_t>(blocks.size());
      pass.degenerate = blocks.size() < 2;
      pass_(pass);
      // A degree-1 layer forces R' = 0 on every one of its z rows, once
      // per layer pass — same accounting as the scalar FaRowKernel.
      if (blocks.size() == 1)
        for (std::uint32_t f = 0; f < lanes_; ++f)
          if (active_[f] != 0) degenerate_[f] += z_;
    }

    if (live == 0) continue;  // everything cancelled mid-iteration

    // Iteration tail, per lane in the scalar order: early termination,
    // then the watchdog (which may abort even on the final iteration),
    // then the iteration budget.
    if (et || wd) {
      std::fill(weight_.begin(), weight_.end(), 0);
      syn.weight = weight_.data();
      for (const auto& blocks : layers_) {
        if (blocks.empty()) continue;
        syn.blocks = blocks.data();
        syn.deg = static_cast<std::uint32_t>(blocks.size());
        syndrome_(syn);
      }
    }
    const bool probed = et || wd;  // weight_ holds this iteration's syndrome
    for (std::uint32_t f = 0; f < lanes_; ++f) {
      Lane& lane = lane_[f];
      if (lane.frame == kIdleLane) continue;
      const bool parity = probed && weight_[f] == 0;
      if (et && parity) {
        finalize(f, false, false, true, true);
        continue;
      }
      if (wd && lane.watchdog.should_abort(
                    static_cast<std::size_t>(weight_[f]))) {
        finalize(f, true, false, probed, parity);
        continue;
      }
      if (lane.iter >= options_.max_iterations)
        finalize(f, false, false, probed, parity);
    }
  }
}

}  // namespace ldpc
