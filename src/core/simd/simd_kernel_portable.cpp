// Portable lane kernel: fixed-width 8-lane int16 arrays and plain loops.
// No intrinsics — this tier compiles everywhere (and is the only one when
// LDPC_SIMD=OFF), and the fixed trip counts give the autovectorizer a fair
// shot at emitting vector code anyway. Arithmetic is bit-identical to the
// x86 tiers by construction: all three instantiate the same template.
#include "core/simd/simd_kernel_impl.hpp"
#include "core/simd/simd_kernel_impl8.hpp"

#include <cstdint>

namespace ldpc::simd {
namespace {

struct PortableOps {
  static constexpr int kLanes = 8;
  struct Vec {
    std::int16_t v[kLanes];
  };

  static Vec load(const std::int16_t* p) {
    Vec r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = p[i];
    return r;
  }
  static void store(std::int16_t* p, Vec a) {
    for (int i = 0; i < kLanes; ++i) p[i] = a.v[i];
  }
  static Vec broadcast(std::int16_t x) {
    Vec r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = x;
    return r;
  }
  static Vec zero() { return broadcast(0); }
  static Vec add(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = static_cast<std::int16_t>(a.v[i] + b.v[i]);
    return r;
  }
  static Vec sub(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = static_cast<std::int16_t>(a.v[i] - b.v[i]);
    return r;
  }
  static Vec min(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = a.v[i] < b.v[i] ? a.v[i] : b.v[i];
    return r;
  }
  static Vec max(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
    return r;
  }
  static Vec cmpgt(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = a.v[i] > b.v[i] ? static_cast<std::int16_t>(-1) : 0;
    return r;
  }
  static Vec cmpeq(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = a.v[i] == b.v[i] ? static_cast<std::int16_t>(-1) : 0;
    return r;
  }
  static Vec blend(Vec m, Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = m.v[i] != 0 ? a.v[i] : b.v[i];
    return r;
  }
  static Vec abs16(Vec a) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = static_cast<std::int16_t>(a.v[i] < 0 ? -a.v[i] : a.v[i]);
    return r;
  }
  static Vec xor_(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = static_cast<std::int16_t>(a.v[i] ^ b.v[i]);
    return r;
  }
  static Vec or_(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = static_cast<std::int16_t>(a.v[i] | b.v[i]);
    return r;
  }
  static Vec and_(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = static_cast<std::int16_t>(a.v[i] & b.v[i]);
    return r;
  }
  template <int kShift>
  static Vec srl(Vec a) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = static_cast<std::int16_t>(
          static_cast<std::uint16_t>(a.v[i]) >> kShift);
    return r;
  }
  template <int kShift>
  static Vec sll(Vec a) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = static_cast<std::int16_t>(
          static_cast<std::uint16_t>(a.v[i]) << kShift);
    return r;
  }
  static Vec mullo(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = static_cast<std::int16_t>(
          static_cast<std::uint32_t>(static_cast<std::int32_t>(a.v[i]) *
                                     static_cast<std::int32_t>(b.v[i])) &
          0xFFFFU);
    return r;
  }
  static Vec mulhi(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = static_cast<std::int16_t>((static_cast<std::int32_t>(a.v[i]) *
                                          static_cast<std::int32_t>(b.v[i])) >>
                                         16);
    return r;
  }
  static int count_diff(Vec a, Vec b) {
    int n = 0;
    for (int i = 0; i < kLanes; ++i) n += a.v[i] != b.v[i];
    return n;
  }
};

/// Int8 lane policy for the finite-alphabet kernels: 16 fixed-width lanes
/// and plain loops, same autovectorizer-friendly shape as PortableOps.
struct PortableOps8 {
  static constexpr int kLanes = 16;
  struct Vec {
    std::int8_t v[kLanes];
  };

  static Vec load(const std::int8_t* p) {
    Vec r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = p[i];
    return r;
  }
  static void store(std::int8_t* p, Vec a) {
    for (int i = 0; i < kLanes; ++i) p[i] = a.v[i];
  }
  static Vec broadcast(std::int8_t x) {
    Vec r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = x;
    return r;
  }
  static Vec zero() { return broadcast(0); }
  static Vec add8(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = static_cast<std::int8_t>(a.v[i] + b.v[i]);
    return r;
  }
  static Vec sub8(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = static_cast<std::int8_t>(a.v[i] - b.v[i]);
    return r;
  }
  static Vec adds8(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i) {
      const int s = a.v[i] + b.v[i];
      r.v[i] = static_cast<std::int8_t>(s > 127 ? 127 : (s < -128 ? -128 : s));
    }
    return r;
  }
  static Vec subs8(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i) {
      const int s = a.v[i] - b.v[i];
      r.v[i] = static_cast<std::int8_t>(s > 127 ? 127 : (s < -128 ? -128 : s));
    }
    return r;
  }
  static Vec min8(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = a.v[i] < b.v[i] ? a.v[i] : b.v[i];
    return r;
  }
  static Vec max8(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
    return r;
  }
  static Vec cmpgt8(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = a.v[i] > b.v[i] ? static_cast<std::int8_t>(-1) : 0;
    return r;
  }
  static Vec cmpeq8(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = a.v[i] == b.v[i] ? static_cast<std::int8_t>(-1) : 0;
    return r;
  }
  static Vec blend(Vec m, Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = m.v[i] != 0 ? a.v[i] : b.v[i];
    return r;
  }
  static Vec abs8(Vec a) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = static_cast<std::int8_t>(a.v[i] < 0 ? -a.v[i] : a.v[i]);
    return r;
  }
  static Vec xor_(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = static_cast<std::int8_t>(a.v[i] ^ b.v[i]);
    return r;
  }
  static Vec or_(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = static_cast<std::int8_t>(a.v[i] | b.v[i]);
    return r;
  }
  static Vec and_(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = static_cast<std::int8_t>(a.v[i] & b.v[i]);
    return r;
  }
};

}  // namespace

void layer_pass_portable(const SimdLayerPass& pass) {
  if (pass.count_clips)
    detail::layer_pass<PortableOps, true>(pass);
  else
    detail::layer_pass<PortableOps, false>(pass);
}

void batch_layer_pass_portable(const SimdBatchLayerPass& pass) {
  if (pass.count_clips)
    detail::batch_layer_pass<PortableOps, true>(pass);
  else
    detail::batch_layer_pass<PortableOps, false>(pass);
}

void batch_syndrome_pass_portable(const SimdBatchSyndromePass& pass) {
  detail::batch_syndrome_pass<PortableOps>(pass);
}

void fa_layer_pass_portable(const SimdFaLayerPass& pass) {
  if (pass.count_clips)
    detail::fa_layer_pass<PortableOps8, true>(pass);
  else
    detail::fa_layer_pass<PortableOps8, false>(pass);
}

void fa_batch_layer_pass_portable(const SimdFaBatchLayerPass& pass) {
  if (pass.count_clips)
    detail::fa_batch_layer_pass<PortableOps8, true>(pass);
  else
    detail::fa_batch_layer_pass<PortableOps8, false>(pass);
}

void fa_batch_syndrome_pass_portable(const SimdFaBatchSyndromePass& pass) {
  detail::fa_batch_syndrome_pass<PortableOps8>(pass);
}

void fa_quantize_pass_portable(const SimdFaQuantizePass& pass) {
  detail::fa_quantize_scalar(pass, 0);
}

}  // namespace ldpc::simd
