// Portable lane kernel: fixed-width 8-lane int16 arrays and plain loops.
// No intrinsics — this tier compiles everywhere (and is the only one when
// LDPC_SIMD=OFF), and the fixed trip counts give the autovectorizer a fair
// shot at emitting vector code anyway. Arithmetic is bit-identical to the
// x86 tiers by construction: all three instantiate the same template.
#include "core/simd/simd_kernel_impl.hpp"

#include <cstdint>

namespace ldpc::simd {
namespace {

struct PortableOps {
  static constexpr int kLanes = 8;
  struct Vec {
    std::int16_t v[kLanes];
  };

  static Vec load(const std::int16_t* p) {
    Vec r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = p[i];
    return r;
  }
  static void store(std::int16_t* p, Vec a) {
    for (int i = 0; i < kLanes; ++i) p[i] = a.v[i];
  }
  static Vec broadcast(std::int16_t x) {
    Vec r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = x;
    return r;
  }
  static Vec zero() { return broadcast(0); }
  static Vec add(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = static_cast<std::int16_t>(a.v[i] + b.v[i]);
    return r;
  }
  static Vec sub(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = static_cast<std::int16_t>(a.v[i] - b.v[i]);
    return r;
  }
  static Vec min(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = a.v[i] < b.v[i] ? a.v[i] : b.v[i];
    return r;
  }
  static Vec max(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
    return r;
  }
  static Vec cmpgt(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = a.v[i] > b.v[i] ? static_cast<std::int16_t>(-1) : 0;
    return r;
  }
  static Vec cmpeq(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = a.v[i] == b.v[i] ? static_cast<std::int16_t>(-1) : 0;
    return r;
  }
  static Vec blend(Vec m, Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = m.v[i] != 0 ? a.v[i] : b.v[i];
    return r;
  }
  static Vec abs16(Vec a) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = static_cast<std::int16_t>(a.v[i] < 0 ? -a.v[i] : a.v[i]);
    return r;
  }
  static Vec xor_(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = static_cast<std::int16_t>(a.v[i] ^ b.v[i]);
    return r;
  }
  static Vec or_(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = static_cast<std::int16_t>(a.v[i] | b.v[i]);
    return r;
  }
  static Vec and_(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = static_cast<std::int16_t>(a.v[i] & b.v[i]);
    return r;
  }
  template <int kShift>
  static Vec srl(Vec a) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = static_cast<std::int16_t>(
          static_cast<std::uint16_t>(a.v[i]) >> kShift);
    return r;
  }
  template <int kShift>
  static Vec sll(Vec a) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = static_cast<std::int16_t>(
          static_cast<std::uint16_t>(a.v[i]) << kShift);
    return r;
  }
  static Vec mullo(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = static_cast<std::int16_t>(
          static_cast<std::uint32_t>(static_cast<std::int32_t>(a.v[i]) *
                                     static_cast<std::int32_t>(b.v[i])) &
          0xFFFFU);
    return r;
  }
  static Vec mulhi(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = static_cast<std::int16_t>((static_cast<std::int32_t>(a.v[i]) *
                                          static_cast<std::int32_t>(b.v[i])) >>
                                         16);
    return r;
  }
  static int count_diff(Vec a, Vec b) {
    int n = 0;
    for (int i = 0; i < kLanes; ++i) n += a.v[i] != b.v[i];
    return n;
  }
};

}  // namespace

void layer_pass_portable(const SimdLayerPass& pass) {
  if (pass.count_clips)
    detail::layer_pass<PortableOps, true>(pass);
  else
    detail::layer_pass<PortableOps, false>(pass);
}

void batch_layer_pass_portable(const SimdBatchLayerPass& pass) {
  if (pass.count_clips)
    detail::batch_layer_pass<PortableOps, true>(pass);
  else
    detail::batch_layer_pass<PortableOps, false>(pass);
}

void batch_syndrome_pass_portable(const SimdBatchSyndromePass& pass) {
  detail::batch_syndrome_pass<PortableOps>(pass);
}

}  // namespace ldpc::simd
