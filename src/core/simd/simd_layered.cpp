#include "core/simd/simd_layered.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "fault/fault_injector.hpp"
#include "util/check.hpp"

namespace ldpc {

namespace {

/// Lane-count granularity the scratch strides are padded to: at least 16
/// (one layout covers the 8- and 16-lane tiers), or the tier's own lane
/// count when it is wider — the 32-lane AVX-512 tier steps a full vector
/// at a time, so z_pad must be a multiple of 32 for it (z = 10 pads to 32,
/// z = 33 to 64; z = 96 stays 96 either way).
constexpr std::uint32_t pad_for(std::uint32_t z, simd::SimdTier tier) {
  const std::uint32_t lanes = std::max(16U, simd::tier_lanes(tier));
  return (z + lanes - 1) & ~(lanes - 1);
}

}  // namespace

SimdLayeredDecoder::SimdLayeredDecoder(const QCLdpcCode& code,
                                       DecoderOptions options,
                                       FixedFormat format,
                                       std::optional<simd::SimdTier> tier)
    : code_(code),
      options_(options),
      format_(format),
      tier_(tier.value_or(simd::best_tier())),
      pass_(simd::layer_pass_for(tier_)) {
  // The scalar twin runs the identical kernel-parameter derivation and
  // validation (scale fraction bounds, format sanity, max_iterations).
  scalar_ = std::make_unique<LayeredMinSumFixedDecoder>(code, options, format);
  if (options_.scale == 0.75F) {
    mode_ = simd::ScaleMode::kThreeQuarters;
  } else {
    mode_ = simd::ScaleMode::kNumOver16;
    scale_num_ = static_cast<std::int16_t>(
        static_cast<std::int32_t>(options_.scale * 16.0F + 0.5F));
  }
  force_scalar_ = format_.total_bits > 15;
  init_geometry();
}

SimdLayeredDecoder::SimdLayeredDecoder(const QCLdpcCode& code,
                                       DecoderOptions options,
                                       FixedFormat format,
                                       std::int32_t offset_code,
                                       std::string label,
                                       std::optional<simd::SimdTier> tier)
    : code_(code),
      options_(options),
      format_(format),
      label_(std::move(label)),
      mode_(simd::ScaleMode::kOffset),
      tier_(tier.value_or(simd::best_tier())),
      pass_(simd::layer_pass_for(tier_)) {
  scalar_ = std::make_unique<LayeredMinSumFixedDecoder>(
      code, options, LayerRowKernel::offset_kernel(format, offset_code),
      label_);
  offset_code_ = static_cast<std::int16_t>(
      std::min<std::int32_t>(offset_code, INT16_MAX));
  force_scalar_ = format_.total_bits > 15 || offset_code > INT16_MAX;
  init_geometry();
}

void SimdLayeredDecoder::init_geometry() {
  z_ = static_cast<std::uint32_t>(code_.z());
  z_pad_ = pad_for(z_, tier_);
  std::size_t max_deg = 0;
  gather_.reserve(code_.layers().size());
  r_base_.reserve(code_.layers().size());
  for (const auto& layer : code_.layers()) {
    std::vector<GatherBlock> gs;
    std::vector<std::uint32_t> rb;
    gs.reserve(layer.size());
    rb.reserve(layer.size());
    for (const auto& blk : layer) {
      gs.push_back({blk.block_col * z_, blk.shift % z_});
      rb.push_back(blk.r_slot * z_pad_);
    }
    max_deg = std::max(max_deg, layer.size());
    gather_.push_back(std::move(gs));
    r_base_.push_back(std::move(rb));
  }
  posterior16_.resize(code_.n());
  r16_.resize(code_.base().nonzero_blocks() * static_cast<std::size_t>(z_pad_));
  p_scratch_.resize(max_deg * z_pad_);
  q_scratch_.resize(max_deg * z_pad_);
}

bool SimdLayeredDecoder::must_use_scalar() const {
  return force_scalar_ ||
         (options_.fault_injector && options_.fault_injector->enabled());
}

std::string SimdLayeredDecoder::name() const {
  return label_.empty() ? "layered-minsum-simd-" + format_.name() : label_;
}

SaturationStats SimdLayeredDecoder::saturation() const {
  return last_used_scalar_ ? scalar_->saturation() : saturation_;
}

void SimdLayeredDecoder::set_cancel_token(const CancelToken* token) {
  cancel_ = token;
  scalar_->set_cancel_token(token);
}

DecodeResult SimdLayeredDecoder::decode(std::span<const float> llr) {
  LDPC_CHECK(llr.size() == code_.n());
  if (must_use_scalar()) {
    last_used_scalar_ = true;
    DecodeResult result = scalar_->decode(llr);
    // Record *why* the lane kernel was bypassed: a benchmark or serving
    // config silently riding the scalar twin is a perf bug, not a
    // correctness one, and used to be invisible from the outside.
    result.simd_fallback = force_scalar_ ? SimdFallback::kWideFormat
                                         : SimdFallback::kFaultInjector;
    last_fallback_ = result.simd_fallback;
    return result;
  }
  last_used_scalar_ = false;
  last_fallback_ = SimdFallback::kNone;
  saturation_.quantizer_clips = 0;
  if (options_.count_saturation) {
    for (std::size_t v = 0; v < llr.size(); ++v)
      posterior16_[v] = static_cast<std::int16_t>(
          format_.quantize(llr[v], saturation_.quantizer_clips));
  } else {
    for (std::size_t v = 0; v < llr.size(); ++v)
      posterior16_[v] = static_cast<std::int16_t>(format_.quantize(llr[v]));
  }
  return run();
}

DecodeResult SimdLayeredDecoder::decode_quantized(
    std::span<const std::int32_t> channel_codes) {
  LDPC_CHECK(channel_codes.size() == code_.n());
  bool lanes_ok = !must_use_scalar();
  if (lanes_ok) {
    // The scalar decoder accepts arbitrary int32 codes; the lane kernels
    // assume rail-bounded inputs. Out-of-rail codes (never produced by
    // FixedFormat::quantize) ride the scalar twin instead.
    const std::int32_t lo = format_.min_code();
    const std::int32_t hi = format_.max_code();
    for (const std::int32_t c : channel_codes) {
      if (c < lo || c > hi) {
        lanes_ok = false;
        break;
      }
    }
  }
  if (!lanes_ok) {
    last_used_scalar_ = true;
    DecodeResult result = scalar_->decode_quantized(channel_codes);
    result.simd_fallback = must_use_scalar()
                               ? (force_scalar_ ? SimdFallback::kWideFormat
                                                : SimdFallback::kFaultInjector)
                               : SimdFallback::kOutOfRailInput;
    last_fallback_ = result.simd_fallback;
    return result;
  }
  last_used_scalar_ = false;
  last_fallback_ = SimdFallback::kNone;
  for (std::size_t v = 0; v < channel_codes.size(); ++v)
    posterior16_[v] = static_cast<std::int16_t>(channel_codes[v]);
  return run();
}

DecodeResult SimdLayeredDecoder::run() {
  std::fill(r16_.begin(), r16_.end(), std::int16_t{0});
  saturation_.datapath_clips = 0;
  saturation_.q_clips = 0;
  saturation_.r_clips = 0;
  saturation_.p_clips = 0;
  saturation_.degenerate_checks = 0;
  WatchdogState watchdog(options_.watchdog);
  bool watchdog_fired = false;
  bool cancelled = false;

  DecodeResult result;
  result.hard_bits.resize(code_.n());
  BitVec previous_hard;
  if (options_.observer) previous_hard.resize(code_.n());

  simd::SimdLayerPass pass;
  pass.p = p_scratch_.data();
  pass.q = q_scratch_.data();
  pass.r = r16_.data();
  pass.z_pad = z_pad_;
  pass.lo = static_cast<std::int16_t>(format_.min_code());
  pass.hi = static_cast<std::int16_t>(format_.max_code());
  pass.mode = mode_;
  pass.scale_num = scale_num_;
  pass.offset_code = offset_code_;
  pass.count_clips = options_.count_saturation;
  pass.stats = &saturation_;

  for (std::size_t iter = 1; iter <= options_.max_iterations; ++iter) {
    result.iterations = iter;

    for (std::size_t l = 0; l < gather_.size(); ++l) {
      // Same cooperative-cancellation cadence as the scalar decoder: the
      // posterior memory is consistent at every layer boundary.
      if (cancel_ && cancel_->expired()) {
        cancelled = true;
        break;
      }
      const auto& gs = gather_[l];
      const auto deg = static_cast<std::uint32_t>(gs.size());
      if (deg == 0) continue;

      // Barrel-shift gather: rotate each block column's z posteriors into
      // contiguous lane order, zero the padding lanes (which then provably
      // produce no saturation or message traffic).
      for (std::uint32_t j = 0; j < deg; ++j) {
        const std::int16_t* src = posterior16_.data() + gs[j].p_base;
        std::int16_t* dst = p_scratch_.data() + j * z_pad_;
        const std::uint32_t shift = gs[j].shift;
        std::memcpy(dst, src + shift, (z_ - shift) * sizeof(std::int16_t));
        std::memcpy(dst + (z_ - shift), src, shift * sizeof(std::int16_t));
        std::memset(dst + z_, 0, (z_pad_ - z_) * sizeof(std::int16_t));
      }

      pass.r_base = r_base_[l].data();
      pass.deg = deg;
      pass.degenerate = deg < 2;
      pass_(pass);
      // A degree-1 layer forces R' = 0 on every one of its z rows, once
      // per layer pass — same accounting as LayerRowKernel.
      if (deg < 2) saturation_.degenerate_checks += z_;

      // Scatter: inverse rotation back into natural variable order.
      for (std::uint32_t j = 0; j < deg; ++j) {
        const std::int16_t* src = p_scratch_.data() + j * z_pad_;
        std::int16_t* dst = posterior16_.data() + gs[j].p_base;
        const std::uint32_t shift = gs[j].shift;
        std::memcpy(dst + shift, src, (z_ - shift) * sizeof(std::int16_t));
        std::memcpy(dst, src + (z_ - shift), shift * sizeof(std::int16_t));
      }
    }

    for (std::size_t v = 0; v < code_.n(); ++v)
      result.hard_bits.set(v, posterior16_[v] < 0);
    const bool want_weight =
        static_cast<bool>(options_.observer) || options_.watchdog.enabled();
    std::size_t weight = 0;
    if (want_weight) weight = code_.syndrome_weight(result.hard_bits);
    if (options_.observer) {
      IterationSnapshot snap;
      snap.iteration = iter;
      snap.syndrome_weight = weight;
      double sum = 0.0;
      for (const std::int16_t p : posterior16_)
        sum += std::abs(static_cast<double>(format_.dequantize(p)));
      snap.mean_abs_llr = sum / static_cast<double>(code_.n());
      snap.flipped_bits = result.hard_bits.hamming_distance(previous_hard);
      snap.saturation_clips =
          saturation_.q_clips + saturation_.r_clips + saturation_.p_clips;
      previous_hard = result.hard_bits;
      options_.observer(snap);
    }
    if (options_.early_termination &&
        (want_weight ? weight == 0 : code_.parity_ok(result.hard_bits))) {
      result.converged = true;
      break;
    }
    if (cancelled) break;
    if (options_.watchdog.enabled() && watchdog.should_abort(weight)) {
      watchdog_fired = true;
      break;
    }
  }

  // Parity recheck on output: never report garbage as a codeword.
  if (!result.converged) result.converged = code_.parity_ok(result.hard_bits);
  saturation_.datapath_clips =
      saturation_.q_clips + saturation_.r_clips + saturation_.p_clips;
  result.status =
      classify_exit(result.converged, watchdog_fired, 0, cancelled);
  return result;
}

}  // namespace ldpc
