// SIMD z-lane finite-alphabet layered decoder (fa2/fa3/fa4).
//
// Same geometry and schedule as SimdLayeredDecoder — barrel-shift gather,
// z check rows as lanes, scatter back — but on int8 storage at twice the
// lane density (AVX-512: 64 rows per vector step), with the staircase
// check-message reconstruction of the finite-alphabet family instead of
// the 0.75 shift-add. Asserted bit-identical to LayeredMinSumFaDecoder
// (hard bits, iterations, status, saturation counters) in
// tests/simd_fa_equivalence_test.cpp.
//
// Pad-lane invariant: the gather zeroes pad lanes of P; the pass writes
// +recon0 into pad lanes of each touched R slot (a zero row has positive
// sign product and magnitude-0 min), so the decoder re-zeroes those pad
// lanes after every layer pass. With P_pad = 0 and R_pad = 0 at pass
// entry, Q_pad = 0 and P'_pad = recon0 <= 127 — pad lanes provably
// produce no saturation events.
//
// Exactness envelope: every value the FA datapath produces lives on the
// symmetric [-127, 127] rail, so unlike the int16 decoder there is no
// wide-format delegation. The scalar twin still serves fault-injection
// campaigns (corruption order is scalar) and out-of-rail quantized
// inputs, with the bypass reason recorded in DecodeResult::simd_fallback.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "codes/qc_code.hpp"
#include "core/decoder.hpp"
#include "core/layered_minsum_fa.hpp"
#include "core/simd/simd_kernel.hpp"
#include "util/aligned.hpp"

namespace ldpc {

class SimdFaLayeredDecoder final : public Decoder {
 public:
  /// `msg_bits` in {2, 3, 4}; the MIM tables are built by the embedded
  /// scalar twin at construction. `tier` pins a kernel tier (tests).
  SimdFaLayeredDecoder(const QCLdpcCode& code, DecoderOptions options,
                       int msg_bits, float design_ebn0_db = 2.0F,
                       std::optional<simd::SimdTier> tier = std::nullopt);

  DecodeResult decode(std::span<const float> llr) override;
  std::size_t n() const override { return code_.n(); }
  std::size_t k() const override { return code_.k(); }
  std::string name() const override {
    return "layered-minsum-simd-" + scalar_->tables().name();
  }
  std::string message_format() const override {
    return scalar_->tables().name();
  }
  SaturationStats saturation() const override;
  void set_cancel_token(const CancelToken* token) override;

  /// Decode from already-quantized channel codes; codes outside the
  /// symmetric rail route to the scalar twin (kOutOfRailInput).
  DecodeResult decode_quantized(std::span<const std::int32_t> channel_codes);

  const FaTableSet& tables() const { return scalar_->tables(); }
  simd::SimdTier tier() const { return tier_; }

  /// True when every decode delegates to the scalar twin (a layer degree
  /// beyond the int8 pos1 encoding — no shipped code comes close).
  bool scalar_only() const { return force_scalar_; }
  SimdFallback last_fallback() const { return last_fallback_; }

 private:
  struct GatherBlock {
    std::uint32_t p_base;  ///< block_col * z into the posterior array
    std::uint32_t shift;   ///< circulant rotation, already reduced mod z
  };
  /// One decode iteration's staircase, kernel-ready: thresholds plus
  /// nonnegative reconstruction deltas (recon[t+1] - recon[t]).
  struct IterTable {
    std::int8_t thr[simd::kFaMaxThresholds];
    std::int8_t delta[simd::kFaMaxThresholds];
    std::int8_t recon0;
  };

  void init_geometry();
  bool must_use_scalar() const;
  DecodeResult run();

  const QCLdpcCode& code_;
  DecoderOptions options_;
  simd::SimdTier tier_;
  simd::FaLayerPassFn pass_;
  simd::FaQuantizePassFn quantize_;  ///< uncounted channel quantizer
  const CancelToken* cancel_ = nullptr;  ///< non-owning, may be null

  std::uint32_t z_ = 0;
  std::uint32_t z_pad_ = 0;  ///< z rounded up to the int8 lane granularity
  std::uint32_t num_thr_ = 0;
  std::vector<IterTable> iter_tables_;  ///< one per table, kernel layout
  std::vector<std::vector<GatherBlock>> gather_;    ///< per layer
  std::vector<std::vector<std::uint32_t>> r_base_;  ///< per layer
  AlignedVec<std::int8_t> posterior8_;  ///< P memory, natural order
  AlignedVec<std::int8_t> r8_;          ///< R memory, r_slot * z_pad + row
  AlignedVec<std::int8_t> p_scratch_;   ///< gathered P lanes, deg * z_pad
  AlignedVec<std::int8_t> q_scratch_;   ///< Q lanes, deg * z_pad

  /// Scalar twin: table construction + validation, and the exact fallback
  /// for fault campaigns / out-of-rail inputs.
  std::unique_ptr<LayeredMinSumFaDecoder> scalar_;
  bool force_scalar_ = false;
  bool last_used_scalar_ = false;
  SimdFallback last_fallback_ = SimdFallback::kNone;
  SaturationStats saturation_;
};

}  // namespace ldpc
