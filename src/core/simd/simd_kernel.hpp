// Vector kernel interface for the SIMD layered min-sum decoder.
//
// One layer of the paper's schedule updates `z` independent check rows —
// the hardware instantiates z datapath copies (Fig. 3) and runs them in
// lockstep. The software analogue maps row r of the layer onto SIMD lane
// r: posteriors are pre-rotated into a structure-of-arrays scratch (the
// (row + shift) % z gather collapses into two memcpys, mirroring the
// barrel shifter), after which every message update is a vertical int16
// lane operation. The kernels below implement exactly the LayerRowKernel
// arithmetic — saturating Q = P - R, min1/min2/pos1/sign tracking via
// compare/blend, the multiplier-free (x>>1)+(x>>2) scaling, saturating
// R'/P' write-back — and are asserted bit-identical to the scalar decoder
// in tests/simd_equivalence_test.cpp.
//
// Three tiers share one templated implementation (simd_kernel_impl.hpp):
//   kAvx2      16 lanes / step, compiled only on x86-64 with LDPC_SIMD=ON
//   kSse2      8 lanes / step, ditto (baseline on every x86-64 CPU)
//   kPortable  fixed-width 8-lane arrays, plain C++ the autovectorizer
//              can chew on; always compiled, the only tier when
//              LDPC_SIMD=OFF or on non-x86 hosts
// Tier selection happens once per decoder at construction (best available,
// overridable with the LDPC_SIMD_TIER environment variable or an explicit
// constructor argument).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/decoder.hpp"

namespace ldpc::simd {

/// How check-message magnitudes are corrected, mirroring LayerRowKernel:
/// the paper's 0.75 shift-add, a truncating num/16 ratio (ablation
/// sweeps), or offset min-sum max(|m| - offset, 0).
enum class ScaleMode : std::uint8_t {
  kThreeQuarters,  ///< (x>>1) + (x>>2), truncating per shift
  kNumOver16,      ///< (x * num) / 16, truncating once
  kOffset,         ///< max(x - offset, 0)
};

/// One layer's worth of work for a vector kernel. All pointers reference
/// int16 lane buffers padded to a multiple of 16 lanes (z_pad); padding
/// lanes hold zeros and provably generate no saturation events, so the
/// tail of a non-multiple-of-lane-width z rides in the same vector ops.
struct SimdLayerPass {
  std::int16_t* p;             ///< deg * z_pad gathered posteriors (in/out)
  std::int16_t* q;             ///< deg * z_pad Q scratch (Fig. 5's Q_array)
  std::int16_t* r;             ///< R memory base, stride z_pad per slot
  const std::uint32_t* r_base; ///< deg offsets into `r` (multiples of z_pad)
  std::uint32_t deg;           ///< non-zero blocks in this layer
  std::uint32_t z_pad;         ///< z rounded up to a multiple of 16
  std::int16_t lo;             ///< format rail: fixed_min(total_bits)
  std::int16_t hi;             ///< format rail: fixed_max(total_bits)
  ScaleMode mode;
  std::int16_t scale_num;      ///< numerator for kNumOver16
  std::int16_t offset_code;    ///< subtrahend for kOffset
  bool degenerate;             ///< deg < 2: force R' = 0 (no extrinsic input)
  bool count_clips;            ///< accumulate saturation events into *stats
  /// Per-site clip counters (used iff count_clips): the Q clamp fills
  /// q_clips, the R' clamp r_clips, the P' clamp p_clips — same attribution
  /// as the scalar LayerRowKernel, so the equivalence suite can compare
  /// site-for-site and the static range verifier's proofs apply unchanged.
  SaturationStats* stats;
};

using LayerPassFn = void (*)(const SimdLayerPass&);

enum class SimdTier : std::uint8_t { kPortable, kSse2, kAvx2 };

inline const char* to_string(SimdTier t) {
  switch (t) {
    case SimdTier::kPortable: return "portable";
    case SimdTier::kSse2:     return "sse2";
    case SimdTier::kAvx2:     return "avx2";
  }
  return "?";
}

/// Kernel entry points. The portable tier is always compiled; the x86
/// tiers exist only when CMake enabled LDPC_SIMD on an x86-64 target
/// (dispatch gates every reference behind the same macro).
void layer_pass_portable(const SimdLayerPass& pass);
#ifdef LDPC_SIMD_X86
void layer_pass_sse2(const SimdLayerPass& pass);
void layer_pass_avx2(const SimdLayerPass& pass);
#endif

/// True when `tier` is both compiled in and supported by this CPU.
bool tier_available(SimdTier tier);

/// All usable tiers on this host, portable first (for test sweeps).
std::vector<SimdTier> available_tiers();

/// Kernel for a specific tier; throws ldpc::Error if unavailable.
LayerPassFn layer_pass_for(SimdTier tier);

/// Best available tier, honouring an LDPC_SIMD_TIER=portable|sse2|avx2
/// environment override (ignored when it names an unavailable tier).
SimdTier best_tier();

/// Parse a tier name; throws ldpc::Error on unknown names.
SimdTier tier_from_string(const std::string& name);

}  // namespace ldpc::simd
