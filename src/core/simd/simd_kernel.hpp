// Vector kernel interface for the SIMD layered min-sum decoder.
//
// One layer of the paper's schedule updates `z` independent check rows —
// the hardware instantiates z datapath copies (Fig. 3) and runs them in
// lockstep. The software analogue maps row r of the layer onto SIMD lane
// r: posteriors are pre-rotated into a structure-of-arrays scratch (the
// (row + shift) % z gather collapses into two memcpys, mirroring the
// barrel shifter), after which every message update is a vertical int16
// lane operation. The kernels below implement exactly the LayerRowKernel
// arithmetic — saturating Q = P - R, min1/min2/pos1/sign tracking via
// compare/blend, the multiplier-free (x>>1)+(x>>2) scaling, saturating
// R'/P' write-back — and are asserted bit-identical to the scalar decoder
// in tests/simd_equivalence_test.cpp.
//
// Four tiers share one templated implementation (simd_kernel_impl.hpp):
//   kAvx512    32 lanes / step, compiled only on x86-64 with LDPC_SIMD=ON,
//              dispatched after a runtime avx512f+avx512bw check
//   kAvx2      16 lanes / step, compiled only on x86-64 with LDPC_SIMD=ON
//   kSse2      8 lanes / step, ditto (baseline on every x86-64 CPU)
//   kPortable  fixed-width 8-lane arrays, plain C++ the autovectorizer
//              can chew on; always compiled, the only tier when
//              LDPC_SIMD=OFF or on non-x86 hosts
// Tier selection happens once per decoder at construction (best available,
// overridable with the LDPC_SIMD_TIER environment variable or an explicit
// constructor argument).
//
// Besides the z-lane layer pass, each tier also instantiates the
// inter-frame-batched kernels (batch_layer_pass / batch_syndrome_pass):
// one *frame* per lane instead of one check row per lane, so every lane is
// full regardless of z. See SimdBatchLayerPass below and simd_batch.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/decoder.hpp"

namespace ldpc::simd {

/// How check-message magnitudes are corrected, mirroring LayerRowKernel:
/// the paper's 0.75 shift-add, a truncating num/16 ratio (ablation
/// sweeps), or offset min-sum max(|m| - offset, 0).
enum class ScaleMode : std::uint8_t {
  kThreeQuarters,  ///< (x>>1) + (x>>2), truncating per shift
  kNumOver16,      ///< (x * num) / 16, truncating once
  kOffset,         ///< max(x - offset, 0)
};

/// One layer's worth of work for a vector kernel. All pointers reference
/// int16 lane buffers padded to a multiple of 16 lanes (z_pad); padding
/// lanes hold zeros and provably generate no saturation events, so the
/// tail of a non-multiple-of-lane-width z rides in the same vector ops.
struct SimdLayerPass {
  std::int16_t* p;             ///< deg * z_pad gathered posteriors (in/out)
  std::int16_t* q;             ///< deg * z_pad Q scratch (Fig. 5's Q_array)
  std::int16_t* r;             ///< R memory base, stride z_pad per slot
  const std::uint32_t* r_base; ///< deg offsets into `r` (multiples of z_pad)
  std::uint32_t deg;           ///< non-zero blocks in this layer
  std::uint32_t z_pad;         ///< z rounded up to a multiple of 16
  std::int16_t lo;             ///< format rail: fixed_min(total_bits)
  std::int16_t hi;             ///< format rail: fixed_max(total_bits)
  ScaleMode mode;
  std::int16_t scale_num;      ///< numerator for kNumOver16
  std::int16_t offset_code;    ///< subtrahend for kOffset
  bool degenerate;             ///< deg < 2: force R' = 0 (no extrinsic input)
  bool count_clips;            ///< accumulate saturation events into *stats
  /// Per-site clip counters (used iff count_clips): the Q clamp fills
  /// q_clips, the R' clamp r_clips, the P' clamp p_clips — same attribution
  /// as the scalar LayerRowKernel, so the equivalence suite can compare
  /// site-for-site and the static range verifier's proofs apply unchanged.
  SaturationStats* stats;
};

using LayerPassFn = void (*)(const SimdLayerPass&);

enum class SimdTier : std::uint8_t { kPortable, kSse2, kAvx2, kAvx512 };

inline const char* to_string(SimdTier t) {
  switch (t) {
    case SimdTier::kPortable: return "portable";
    case SimdTier::kSse2:     return "sse2";
    case SimdTier::kAvx2:     return "avx2";
    case SimdTier::kAvx512:   return "avx512";
  }
  return "?";
}

/// Lanes per vector step of a tier — the stride padding granularity of the
/// z-lane kernel and the natural frames-per-block of the batched kernel.
constexpr std::uint32_t tier_lanes(SimdTier t) {
  switch (t) {
    case SimdTier::kPortable: return 8;
    case SimdTier::kSse2:     return 8;
    case SimdTier::kAvx2:     return 16;
    case SimdTier::kAvx512:   return 32;
  }
  return 8;
}

// ---------------------------------------------------------------------------
// Inter-frame-batched kernels: frame f rides in lane f. The posterior /
// check-message / scratch arrays are lane-major with stride F = tier lane
// count (p[v * F + f]), so one vector load reads variable v of all F frames
// at once and the circulant rotation degenerates to a scalar index — no
// gather, no barrel-shift memcpys, and every lane is full for any z.
// ---------------------------------------------------------------------------

/// Rows of slack the batched kernels' software prefetch may touch past the
/// logical end of the posterior / check-message arrays (and past a
/// circulant wrap). Callers allocate this many extra kF-lane rows.
constexpr std::uint32_t kBatchPrefetchPad = 16;

/// One non-zero block of a layer, batch-kernel view. Offsets are in rows
/// (the kernel multiplies by the lane stride F itself).
struct BatchBlock {
  std::uint32_t p_base;  ///< block_col * z into the posterior rows
  std::uint32_t shift;   ///< circulant rotation, already reduced mod z
  std::uint32_t r_base;  ///< r_slot * z into the check-message rows
};

/// One layer of work for the batched kernel: z serial check rows, F frames
/// in lanes. Inactive lanes (retired or not-yet-filled frames) still flow
/// through the arithmetic — their stores are garbage nobody reads — but
/// clip accounting is masked by `active` so per-frame SaturationStats stay
/// exact.
struct SimdBatchLayerPass {
  std::int16_t* p;             ///< n rows * F lanes posteriors (in/out)
  std::int16_t* q;             ///< deg * F Q scratch (one row at a time)
  std::int16_t* r;             ///< R memory, nonzero_blocks * z rows * F
  const BatchBlock* blocks;    ///< deg block descriptors
  std::uint32_t deg;           ///< non-zero blocks in this layer
  std::uint32_t z;             ///< circulant size (serial row count)
  const std::int16_t* active;  ///< F lane mask, -1 = live frame, 0 = idle
  /// F lane mask: -1 = the lane's R memory is valid, 0 = the lane is in its
  /// first iteration and R reads as 0. Each R slot is read exactly once per
  /// iteration (by its own layer) and rewritten in the same row step, so
  /// masking reads for one full iteration replaces zero-filling the lane's
  /// whole R column at refill — a strided walk over every R cache line that
  /// cost more than a decode iteration.
  const std::int16_t* r_keep;
  std::int16_t lo;             ///< format rail: fixed_min(total_bits)
  std::int16_t hi;             ///< format rail: fixed_max(total_bits)
  ScaleMode mode;
  std::int16_t scale_num;      ///< numerator for kNumOver16
  std::int16_t offset_code;    ///< subtrahend for kOffset
  bool degenerate;             ///< deg < 2: force R' = 0
  bool count_clips;            ///< accumulate per-lane clip counters
  /// Per-lane (= per-frame) clip accumulators, F entries each (used iff
  /// count_clips). Same per-site attribution as the scalar LayerRowKernel.
  long long* q_clips;
  long long* r_clips;
  long long* p_clips;
};

/// Per-lane syndrome accumulation for one layer: adds the number of this
/// layer's z check rows that are unsatisfied in lane f to weight[f].
/// Summed over all layers this equals QCLdpcCode::syndrome_weight of the
/// lane's hard decisions (weight == 0 <=> parity_ok), vectorized so the
/// per-iteration early-termination / watchdog probe does not serialize the
/// batch.
struct SimdBatchSyndromePass {
  const std::int16_t* p;       ///< n rows * F lanes posteriors
  const BatchBlock* blocks;    ///< deg block descriptors
  std::uint32_t deg;
  std::uint32_t z;
  std::int32_t* weight;        ///< F accumulators (+= per-lane unsat rows)
};

using BatchLayerPassFn = void (*)(const SimdBatchLayerPass&);
using BatchSyndromePassFn = void (*)(const SimdBatchSyndromePass&);

// ---------------------------------------------------------------------------
// Finite-alphabet int8 kernels (fa2/fa3/fa4, see core/fa_tables.hpp): same
// two shapes as the int16 kernels — z-lane layer pass and inter-frame-
// batched pass — at twice the lane density (int8 lanes: portable/SSE2 16,
// AVX2 32, AVX-512 64). The datapath lives on the symmetric [-127, +127]
// rail, so abs/negate of any value is representable; the check-message
// magnitude is a staircase lookup, vectorized as
//   recon = recon0 + sum_t (mag > thr[t] ? delta[t] : 0)
// with delta[t] = recon[t+1] - recon[t] >= 0 and every partial sum <= 127
// (the reconstruction levels are nondecreasing), so the adds cannot wrap.
// The staircase output is always in-alphabet: R' needs no clamp and
// r_clips is structurally zero for this family (matching the scalar
// FaRowKernel). Saturation lives at the Q = P - R and P' = Q + R' sites,
// computed with saturating int8 ops re-railed to -127; in counted mode the
// exact clip predicate is recovered from the saturating/wrapping pair:
//   clip  <=>  subs8(a,b) != sub8(a,b)  or  sub8(a,b) == -128
// (true exactly when the exact result falls outside [-127, +127]).
// ---------------------------------------------------------------------------

/// Lanes per vector step of a tier in the int8 FA kernels — twice
/// tier_lanes() on the x86 tiers, and the padding granularity of the FA
/// z-lane layout.
constexpr std::uint32_t tier_lanes8(SimdTier t) {
  switch (t) {
    case SimdTier::kPortable: return 16;
    case SimdTier::kSse2:     return 16;
    case SimdTier::kAvx2:     return 32;
    case SimdTier::kAvx512:   return 64;
  }
  return 16;
}

/// Maximum staircase thresholds any FA pass carries (fa4: 8 levels - 1).
inline constexpr std::uint32_t kFaMaxThresholds = 7;

/// One layer's worth of the z-lane finite-alphabet kernel. Same geometry
/// as SimdLayerPass with int8 storage; `z_pad` is z rounded up to a
/// multiple of the tier's int8 lane count. Padding lanes hold zeros on
/// entry; the pass writes +recon0 into pad R lanes (sign product of zero
/// is positive) — the caller re-zeroes the touched slots' pad lanes after
/// the pass, preserving the all-zero-pad invariant and keeping pad lanes
/// provably clip-free (P'_pad = recon0 <= 127).
struct SimdFaLayerPass {
  std::int8_t* p;              ///< deg * z_pad gathered posteriors (in/out)
  std::int8_t* q;              ///< deg * z_pad Q scratch
  std::int8_t* r;              ///< R memory base, stride z_pad per slot
  const std::uint32_t* r_base; ///< deg offsets into `r` (multiples of z_pad)
  std::uint32_t deg;           ///< non-zero blocks in this layer (< 128)
  std::uint32_t z_pad;         ///< z rounded up to the int8 lane count
  const std::int8_t* thr;      ///< num_thr staircase thresholds (this iter)
  const std::int8_t* delta;    ///< num_thr recon deltas, all >= 0
  std::int8_t recon0;          ///< recon[0] (lowest reconstruction level)
  std::uint32_t num_thr;       ///< levels - 1, <= kFaMaxThresholds
  bool degenerate;             ///< deg < 2: force R' = 0
  bool count_clips;            ///< accumulate q/p saturation into *stats
  SaturationStats* stats;      ///< q_clips/p_clips only; r_clips untouched
};

/// One layer of the inter-frame-batched finite-alphabet kernel: z serial
/// check rows, F = tier_lanes8 frames in lanes, lane-major arrays exactly
/// like SimdBatchLayerPass. Lanes may sit at different decode iterations,
/// so the staircase tables are per-lane rows: thr_lanes/delta_lanes hold
/// num_thr rows of F lanes each and recon0_lanes one row (the decoder
/// refreshes a lane's column when its iteration changes).
struct SimdFaBatchLayerPass {
  std::int8_t* p;              ///< n rows * F lanes posteriors (in/out)
  std::int8_t* q;              ///< deg * F Q scratch (one row at a time)
  std::int8_t* r;              ///< R memory, nonzero_blocks * z rows * F
  const BatchBlock* blocks;    ///< deg block descriptors
  std::uint32_t deg;           ///< non-zero blocks in this layer (< 128)
  std::uint32_t z;             ///< circulant size (serial row count)
  const std::int8_t* active;   ///< F lane mask, -1 = live frame, 0 = idle
  const std::int8_t* r_keep;   ///< F lane mask, 0 = first-iteration lane
  const std::int8_t* thr_lanes;    ///< num_thr rows * F per-lane thresholds
  const std::int8_t* delta_lanes;  ///< num_thr rows * F per-lane deltas
  const std::int8_t* recon0_lanes; ///< F per-lane recon[0]
  std::uint32_t num_thr;       ///< levels - 1 (max over live lanes' formats)
  bool degenerate;             ///< deg < 2: force R' = 0
  bool count_clips;            ///< accumulate per-lane clip counters
  /// Per-lane clip accumulators, F entries each (used iff count_clips).
  /// No r_clips: the staircase output is in-alphabet by construction.
  long long* q_clips;
  long long* p_clips;
};

/// Per-lane syndrome accumulation for one layer, int8 posteriors. Same
/// contract as SimdBatchSyndromePass.
struct SimdFaBatchSyndromePass {
  const std::int8_t* p;        ///< n rows * F lanes posteriors
  const BatchBlock* blocks;    ///< deg block descriptors
  std::uint32_t deg;
  std::uint32_t z;
  std::int32_t* weight;        ///< F accumulators (+= per-lane unsat rows)
};

/// Vectorized channel quantizer for the finite-alphabet decoders: contiguous
/// float LLRs -> contiguous int8 codes on the symmetric +-127 rail,
/// bit-identical to scalar fa_quantize (uncounted). The pre-limit keeps
/// |scaled| <= rail + 2 < 2^8, where every float ulp is 2^-16 or finer, so
/// adding copysign(0.5, s) is exact in float and truncating the sum is
/// exactly round-half-away — the double round of the scalar path is not
/// needed. Frame setup is a measurable slice of batched decode time, hence
/// a dispatched kernel rather than a loop the autovectorizer may miss.
struct SimdFaQuantizePass {
  const float* llr;   ///< n channel LLRs
  std::int8_t* out;   ///< n codes, contiguous
  std::size_t n;
  float fscale;       ///< 1 << posterior.frac_bits
  float fhi;          ///< posterior.max_code() + 1 (pre-limit, not the rail)
  float flo;          ///< posterior.min_code() - 1
};

using FaLayerPassFn = void (*)(const SimdFaLayerPass&);
using FaBatchLayerPassFn = void (*)(const SimdFaBatchLayerPass&);
using FaBatchSyndromePassFn = void (*)(const SimdFaBatchSyndromePass&);
using FaQuantizePassFn = void (*)(const SimdFaQuantizePass&);

/// Kernel entry points. The portable tier is always compiled; the x86
/// tiers exist only when CMake enabled LDPC_SIMD on an x86-64 target
/// (dispatch gates every reference behind the same macro).
void layer_pass_portable(const SimdLayerPass& pass);
void batch_layer_pass_portable(const SimdBatchLayerPass& pass);
void batch_syndrome_pass_portable(const SimdBatchSyndromePass& pass);
void fa_layer_pass_portable(const SimdFaLayerPass& pass);
void fa_batch_layer_pass_portable(const SimdFaBatchLayerPass& pass);
void fa_batch_syndrome_pass_portable(const SimdFaBatchSyndromePass& pass);
void fa_quantize_pass_portable(const SimdFaQuantizePass& pass);
#ifdef LDPC_SIMD_X86
void layer_pass_sse2(const SimdLayerPass& pass);
void layer_pass_avx2(const SimdLayerPass& pass);
void layer_pass_avx512(const SimdLayerPass& pass);
void batch_layer_pass_sse2(const SimdBatchLayerPass& pass);
void batch_layer_pass_avx2(const SimdBatchLayerPass& pass);
void batch_layer_pass_avx512(const SimdBatchLayerPass& pass);
void batch_syndrome_pass_sse2(const SimdBatchSyndromePass& pass);
void batch_syndrome_pass_avx2(const SimdBatchSyndromePass& pass);
void batch_syndrome_pass_avx512(const SimdBatchSyndromePass& pass);
void fa_layer_pass_sse2(const SimdFaLayerPass& pass);
void fa_layer_pass_avx2(const SimdFaLayerPass& pass);
void fa_layer_pass_avx512(const SimdFaLayerPass& pass);
void fa_batch_layer_pass_sse2(const SimdFaBatchLayerPass& pass);
void fa_batch_layer_pass_avx2(const SimdFaBatchLayerPass& pass);
void fa_batch_layer_pass_avx512(const SimdFaBatchLayerPass& pass);
void fa_batch_syndrome_pass_sse2(const SimdFaBatchSyndromePass& pass);
void fa_batch_syndrome_pass_avx2(const SimdFaBatchSyndromePass& pass);
void fa_batch_syndrome_pass_avx512(const SimdFaBatchSyndromePass& pass);
void fa_quantize_pass_sse2(const SimdFaQuantizePass& pass);
void fa_quantize_pass_avx2(const SimdFaQuantizePass& pass);
void fa_quantize_pass_avx512(const SimdFaQuantizePass& pass);
#endif

/// True when `tier` is both compiled in and supported by this CPU.
bool tier_available(SimdTier tier);

/// All usable tiers on this host, portable first (for test sweeps).
std::vector<SimdTier> available_tiers();

/// Kernel for a specific tier; throws ldpc::Error if unavailable.
LayerPassFn layer_pass_for(SimdTier tier);

/// Batched kernels for a specific tier; throw ldpc::Error if unavailable.
BatchLayerPassFn batch_layer_pass_for(SimdTier tier);
BatchSyndromePassFn batch_syndrome_pass_for(SimdTier tier);

/// Finite-alphabet int8 kernels for a specific tier; throw if unavailable.
FaLayerPassFn fa_layer_pass_for(SimdTier tier);
FaBatchLayerPassFn fa_batch_layer_pass_for(SimdTier tier);
FaBatchSyndromePassFn fa_batch_syndrome_pass_for(SimdTier tier);
FaQuantizePassFn fa_quantize_pass_for(SimdTier tier);

/// Best available tier, honouring an LDPC_SIMD_TIER environment override.
/// An override naming a *known but unavailable* tier (e.g. avx512 on a CPU
/// without it) falls through to auto-detection — pinned-tier scripts stay
/// portable across hosts; an *unknown* name throws ldpc::Error so a typo
/// can never silently change what a benchmark measured.
SimdTier best_tier();

/// Parse a tier name; throws ldpc::Error on unknown names.
SimdTier tier_from_string(const std::string& name);

}  // namespace ldpc::simd
