// Inter-frame-batched SIMD layered scaled-min-sum decoder.
//
// The z-lane decoder (simd_layered.hpp) maps the z check rows of a layer
// onto vector lanes — full lanes only when z is a multiple of the tier
// width, and never wider than z. This decoder turns the lane axis sideways:
// lane f carries *frame* f of a block, every array is lane-major with
// stride F = tier lane count (p[v * F + f]), and the z rows of a layer run
// serially. Consequences:
//
//   * every lane is full for any z — z = 10 wastes 6 of 16 AVX2 lanes in
//     the z-lane kernel, zero lanes here;
//   * the circulant rotation becomes a scalar index per vector load — the
//     barrel-shift gather/scatter memcpys of the z-lane kernel disappear;
//   * the per-iteration syndrome probe vectorizes too (one XOR chain per
//     row, all frames at once), so early termination no longer serializes;
//   * the AVX-512 tier's 32 lanes decode 32 frames per kernel sweep.
//
// Frames inside a block are independent decodes at independent iteration
// counts: when a lane's frame converges (or expires, or exhausts its
// budget) the lane is refilled with the next pending frame *mid-block*, so
// block throughput tracks the mean iteration count, not the max — a
// lockstep batch would pay the slowest frame's iterations on every lane.
//
// Per-frame results are bit-identical to LayeredMinSumFixedDecoder —
// hard bits, iteration counts, status, per-site SaturationStats — asserted
// in tests/simd_batch_test.cpp across tiers, z values and block sizes.
// Configurations outside the lane envelope (wide formats, fault campaigns,
// per-iteration observers) fall back to per-frame decodes on the embedded
// z-lane twin, with the reason recorded in DecodeResult::simd_fallback.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "codes/qc_code.hpp"
#include "core/decoder.hpp"
#include "core/quant.hpp"
#include "core/simd/simd_kernel.hpp"
#include "core/simd/simd_layered.hpp"
#include "util/aligned.hpp"

namespace ldpc {

class SimdBatchDecoder final : public Decoder {
 public:
  /// Normalized min-sum; scale taken from options (0.75 -> the paper's
  /// shift-add, anything else -> truncating num/16), mirroring the scalar
  /// and z-lane decoders. `tier` pins a kernel tier (tests); default picks
  /// the best available at runtime.
  SimdBatchDecoder(const QCLdpcCode& code, DecoderOptions options,
                   FixedFormat format = FixedFormat{},
                   std::optional<simd::SimdTier> tier = std::nullopt);

  /// Single-frame decode rides the embedded z-lane twin — with one frame
  /// there is nothing to batch, and the z-lane kernel is the faster shape.
  DecodeResult decode(std::span<const float> llr) override;

  void decode_block(std::span<const BlockFrame> frames,
                    std::span<DecodeResult> results,
                    std::span<SaturationStats> saturation) override;

  std::size_t n() const override { return code_.n(); }
  std::size_t k() const override { return code_.k(); }
  std::string name() const override;
  SaturationStats saturation() const override { return last_saturation_; }
  void set_cancel_token(const CancelToken* token) override;

  /// Frames per full block = the tier's lane count.
  std::size_t block_width() const override { return lanes_; }

  simd::SimdTier tier() const { return tier_; }
  FixedFormat format() const { return format_; }
  std::string message_format() const override { return format_.name(); }

  /// True when the configuration can never use the batched kernel and
  /// every block decodes per-frame on the z-lane twin.
  bool scalar_only() const { return force_fallback_; }

 private:
  static constexpr std::size_t kIdleLane = static_cast<std::size_t>(-1);

  /// Per-lane decode-in-flight state; `frame` indexes into the current
  /// decode_block call's spans (kIdleLane when the lane holds no frame).
  struct Lane {
    std::size_t frame = kIdleLane;
    std::size_t iter = 0;
    WatchdogState watchdog{WatchdogOptions{}};
    const CancelToken* cancel = nullptr;
  };

  void init_geometry();
  void decode_block_fallback(std::span<const BlockFrame> frames,
                             std::span<DecodeResult> results,
                             std::span<SaturationStats> saturation,
                             SimdFallback reason);
  void run_block(std::span<const BlockFrame> frames,
                 std::span<DecodeResult> results,
                 std::span<SaturationStats> saturation);

  const QCLdpcCode& code_;
  DecoderOptions options_;
  FixedFormat format_;
  simd::ScaleMode mode_ = simd::ScaleMode::kThreeQuarters;
  std::int16_t scale_num_ = 3;
  simd::SimdTier tier_;
  simd::BatchLayerPassFn pass_;
  simd::BatchSyndromePassFn syndrome_;
  std::uint32_t lanes_ = 0;  ///< F: frames per block, lane-major stride
  std::uint32_t z_ = 0;
  std::size_t r_rows_ = 0;  ///< nonzero_blocks * z rows of R memory

  std::vector<std::vector<simd::BatchBlock>> layers_;
  AlignedVec<std::int16_t> p16_;     ///< n rows * F lanes posteriors
  AlignedVec<std::int16_t> r16_;     ///< r_rows_ * F check messages
  AlignedVec<std::int16_t> q16_;     ///< max_deg * F row scratch
  AlignedVec<std::int16_t> active_;  ///< F lane mask (-1 live, 0 idle)
  AlignedVec<std::int16_t> r_keep_;  ///< F lane mask (0 = first iteration,
                                     ///< R reads as 0 — see r_keep in
                                     ///< SimdBatchLayerPass)
  std::vector<std::int16_t> stage_;  ///< n quantized codes staging row
                                     ///< (vector-quantized, then scattered
                                     ///< into a lane column at refill)
  std::vector<Lane> lane_;
  std::vector<long long> q_clips_;         ///< per-lane clip accumulators
  std::vector<long long> r_clips_;
  std::vector<long long> p_clips_;
  std::vector<long long> degenerate_;      ///< per-lane degenerate checks
  std::vector<std::int32_t> weight_;       ///< per-lane syndrome weights

  /// z-lane twin: single-frame decode path, construction-time validation,
  /// and the exact per-frame fallback for out-of-envelope configurations.
  std::unique_ptr<SimdLayeredDecoder> single_;
  bool force_fallback_ = false;
  const CancelToken* cancel_ = nullptr;  ///< single-frame path only
  SaturationStats last_saturation_;
};

}  // namespace ldpc
