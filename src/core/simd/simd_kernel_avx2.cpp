// AVX2 lane kernel: 16 int16 lanes per step — a whole z = 96 layer is six
// vector iterations. Compiled with -mavx2 (see src/core/CMakeLists.txt)
// and only ever dispatched to after a runtime __builtin_cpu_supports
// check, so the library binary stays safe on pre-AVX2 hosts.
#include "core/simd/simd_kernel_impl.hpp"
#include "core/simd/simd_kernel_impl8.hpp"

#ifdef LDPC_SIMD_X86

#include <immintrin.h>

namespace ldpc::simd {
namespace {

struct Avx2Ops {
  static constexpr int kLanes = 16;
  using Vec = __m256i;

  static Vec load(const std::int16_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(std::int16_t* p, Vec a) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), a);
  }
  static Vec broadcast(std::int16_t x) { return _mm256_set1_epi16(x); }
  static Vec zero() { return _mm256_setzero_si256(); }
  static Vec add(Vec a, Vec b) { return _mm256_add_epi16(a, b); }
  static Vec sub(Vec a, Vec b) { return _mm256_sub_epi16(a, b); }
  static Vec min(Vec a, Vec b) { return _mm256_min_epi16(a, b); }
  static Vec max(Vec a, Vec b) { return _mm256_max_epi16(a, b); }
  static Vec cmpgt(Vec a, Vec b) { return _mm256_cmpgt_epi16(a, b); }
  static Vec cmpeq(Vec a, Vec b) { return _mm256_cmpeq_epi16(a, b); }
  static Vec blend(Vec m, Vec a, Vec b) {
    // blendv picks per byte; lane masks are all-ones per int16 lane, so
    // byte granularity is exact.
    return _mm256_blendv_epi8(b, a, m);
  }
  static Vec abs16(Vec a) { return _mm256_abs_epi16(a); }
  static Vec xor_(Vec a, Vec b) { return _mm256_xor_si256(a, b); }
  static Vec or_(Vec a, Vec b) { return _mm256_or_si256(a, b); }
  static Vec and_(Vec a, Vec b) { return _mm256_and_si256(a, b); }
  template <int kShift>
  static Vec srl(Vec a) {
    return _mm256_srli_epi16(a, kShift);
  }
  template <int kShift>
  static Vec sll(Vec a) {
    return _mm256_slli_epi16(a, kShift);
  }
  static Vec mullo(Vec a, Vec b) { return _mm256_mullo_epi16(a, b); }
  static Vec mulhi(Vec a, Vec b) { return _mm256_mulhi_epi16(a, b); }
  static int count_diff(Vec a, Vec b) {
    const int eq = _mm256_movemask_epi8(_mm256_cmpeq_epi16(a, b));
    return (32 - __builtin_popcount(static_cast<unsigned>(eq))) / 2;
  }
};

/// Int8 lane policy for the finite-alphabet kernels: 32 int8 lanes per
/// __m256i — double the int16 lane density of Avx2Ops.
struct Avx2Ops8 {
  static constexpr int kLanes = 32;
  using Vec = __m256i;

  static Vec load(const std::int8_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(std::int8_t* p, Vec a) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), a);
  }
  static Vec broadcast(std::int8_t x) {
    return _mm256_set1_epi8(static_cast<char>(x));
  }
  static Vec zero() { return _mm256_setzero_si256(); }
  static Vec add8(Vec a, Vec b) { return _mm256_add_epi8(a, b); }
  static Vec sub8(Vec a, Vec b) { return _mm256_sub_epi8(a, b); }
  static Vec adds8(Vec a, Vec b) { return _mm256_adds_epi8(a, b); }
  static Vec subs8(Vec a, Vec b) { return _mm256_subs_epi8(a, b); }
  static Vec min8(Vec a, Vec b) { return _mm256_min_epi8(a, b); }
  static Vec max8(Vec a, Vec b) { return _mm256_max_epi8(a, b); }
  static Vec cmpgt8(Vec a, Vec b) { return _mm256_cmpgt_epi8(a, b); }
  static Vec cmpeq8(Vec a, Vec b) { return _mm256_cmpeq_epi8(a, b); }
  static Vec blend(Vec m, Vec a, Vec b) { return _mm256_blendv_epi8(b, a, m); }
  static Vec abs8(Vec a) { return _mm256_abs_epi8(a); }
  static Vec xor_(Vec a, Vec b) { return _mm256_xor_si256(a, b); }
  static Vec or_(Vec a, Vec b) { return _mm256_or_si256(a, b); }
  static Vec and_(Vec a, Vec b) { return _mm256_and_si256(a, b); }
};

}  // namespace

void layer_pass_avx2(const SimdLayerPass& pass) {
  if (pass.count_clips)
    detail::layer_pass<Avx2Ops, true>(pass);
  else
    detail::layer_pass<Avx2Ops, false>(pass);
}

void batch_layer_pass_avx2(const SimdBatchLayerPass& pass) {
  if (pass.count_clips)
    detail::batch_layer_pass<Avx2Ops, true>(pass);
  else
    detail::batch_layer_pass<Avx2Ops, false>(pass);
}

void batch_syndrome_pass_avx2(const SimdBatchSyndromePass& pass) {
  detail::batch_syndrome_pass<Avx2Ops>(pass);
}

void fa_layer_pass_avx2(const SimdFaLayerPass& pass) {
  if (pass.count_clips)
    detail::fa_layer_pass<Avx2Ops8, true>(pass);
  else
    detail::fa_layer_pass<Avx2Ops8, false>(pass);
}

void fa_batch_layer_pass_avx2(const SimdFaBatchLayerPass& pass) {
  if (pass.count_clips)
    detail::fa_batch_layer_pass<Avx2Ops8, true>(pass);
  else
    detail::fa_batch_layer_pass<Avx2Ops8, false>(pass);
}

void fa_batch_syndrome_pass_avx2(const SimdFaBatchSyndromePass& pass) {
  detail::fa_batch_syndrome_pass<Avx2Ops8>(pass);
}

void fa_quantize_pass_avx2(const SimdFaQuantizePass& pass) {
  // 16 LLRs per step: two 8-wide float pipelines; packs_epi32 interleaves
  // the 128-bit halves, fixed by one permute4x64 before the final int8
  // pack. The +-127 clamp runs on int16, before the saturating pack.
  const __m256 vscale = _mm256_set1_ps(pass.fscale);
  const __m256 vhi = _mm256_set1_ps(pass.fhi);
  const __m256 vlo = _mm256_set1_ps(pass.flo);
  const __m256 vhalf = _mm256_set1_ps(0.5F);
  const __m256 vsign = _mm256_set1_ps(-0.0F);
  const __m256i vrail = _mm256_set1_epi16(127);
  const __m256i vnrail = _mm256_set1_epi16(-127);
  const auto quant8 = [&](std::size_t v) {
    __m256 s = _mm256_mul_ps(_mm256_loadu_ps(pass.llr + v), vscale);
    s = _mm256_and_ps(s, _mm256_cmp_ps(s, s, _CMP_ORD_Q));  // NaN -> 0
    s = _mm256_min_ps(_mm256_max_ps(s, vlo), vhi);
    const __m256 half = _mm256_or_ps(vhalf, _mm256_and_ps(s, vsign));
    return _mm256_cvttps_epi32(_mm256_add_ps(s, half));
  };
  std::size_t v = 0;
  for (; v + 16 <= pass.n; v += 16) {
    __m256i w = _mm256_packs_epi32(quant8(v), quant8(v + 8));
    w = _mm256_permute4x64_epi64(w, 0xD8);  // undo the 128-lane interleave
    w = _mm256_max_epi16(_mm256_min_epi16(w, vrail), vnrail);
    const __m128i lo = _mm256_castsi256_si128(w);
    const __m128i hi = _mm256_extracti128_si256(w, 1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(pass.out + v),
                     _mm_packs_epi16(lo, hi));
  }
  detail::fa_quantize_scalar(pass, v);
}

}  // namespace ldpc::simd

#endif  // LDPC_SIMD_X86
