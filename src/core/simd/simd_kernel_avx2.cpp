// AVX2 lane kernel: 16 int16 lanes per step — a whole z = 96 layer is six
// vector iterations. Compiled with -mavx2 (see src/core/CMakeLists.txt)
// and only ever dispatched to after a runtime __builtin_cpu_supports
// check, so the library binary stays safe on pre-AVX2 hosts.
#include "core/simd/simd_kernel_impl.hpp"

#ifdef LDPC_SIMD_X86

#include <immintrin.h>

namespace ldpc::simd {
namespace {

struct Avx2Ops {
  static constexpr int kLanes = 16;
  using Vec = __m256i;

  static Vec load(const std::int16_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(std::int16_t* p, Vec a) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), a);
  }
  static Vec broadcast(std::int16_t x) { return _mm256_set1_epi16(x); }
  static Vec zero() { return _mm256_setzero_si256(); }
  static Vec add(Vec a, Vec b) { return _mm256_add_epi16(a, b); }
  static Vec sub(Vec a, Vec b) { return _mm256_sub_epi16(a, b); }
  static Vec min(Vec a, Vec b) { return _mm256_min_epi16(a, b); }
  static Vec max(Vec a, Vec b) { return _mm256_max_epi16(a, b); }
  static Vec cmpgt(Vec a, Vec b) { return _mm256_cmpgt_epi16(a, b); }
  static Vec cmpeq(Vec a, Vec b) { return _mm256_cmpeq_epi16(a, b); }
  static Vec blend(Vec m, Vec a, Vec b) {
    // blendv picks per byte; lane masks are all-ones per int16 lane, so
    // byte granularity is exact.
    return _mm256_blendv_epi8(b, a, m);
  }
  static Vec abs16(Vec a) { return _mm256_abs_epi16(a); }
  static Vec xor_(Vec a, Vec b) { return _mm256_xor_si256(a, b); }
  static Vec or_(Vec a, Vec b) { return _mm256_or_si256(a, b); }
  static Vec and_(Vec a, Vec b) { return _mm256_and_si256(a, b); }
  template <int kShift>
  static Vec srl(Vec a) {
    return _mm256_srli_epi16(a, kShift);
  }
  template <int kShift>
  static Vec sll(Vec a) {
    return _mm256_slli_epi16(a, kShift);
  }
  static Vec mullo(Vec a, Vec b) { return _mm256_mullo_epi16(a, b); }
  static Vec mulhi(Vec a, Vec b) { return _mm256_mulhi_epi16(a, b); }
  static int count_diff(Vec a, Vec b) {
    const int eq = _mm256_movemask_epi8(_mm256_cmpeq_epi16(a, b));
    return (32 - __builtin_popcount(static_cast<unsigned>(eq))) / 2;
  }
};

}  // namespace

void layer_pass_avx2(const SimdLayerPass& pass) {
  if (pass.count_clips)
    detail::layer_pass<Avx2Ops, true>(pass);
  else
    detail::layer_pass<Avx2Ops, false>(pass);
}

void batch_layer_pass_avx2(const SimdBatchLayerPass& pass) {
  if (pass.count_clips)
    detail::batch_layer_pass<Avx2Ops, true>(pass);
  else
    detail::batch_layer_pass<Avx2Ops, false>(pass);
}

void batch_syndrome_pass_avx2(const SimdBatchSyndromePass& pass) {
  detail::batch_syndrome_pass<Avx2Ops>(pass);
}

}  // namespace ldpc::simd

#endif  // LDPC_SIMD_X86
