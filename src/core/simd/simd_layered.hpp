// SIMD z-lane layered scaled-min-sum decoder.
//
// Same algorithm, schedule, and fixed-point arithmetic as
// LayeredMinSumFixedDecoder — and asserted bit-identical to it (hard
// bits, iteration counts, convergence status, saturation counters) in
// tests/simd_equivalence_test.cpp — but the z check rows of each layer
// execute as SIMD lanes instead of a scalar loop, mirroring the paper's z
// parallel datapath copies (Fig. 3).
//
// Memory layout: posteriors live in natural variable order as int16
// codes. Per layer, each non-zero block column's z posteriors are gathered
// into an aligned structure-of-arrays scratch with the circulant rotation
// applied — (row + shift) % z collapses into two memcpys, the software
// analogue of the barrel shifter — so that lane r of every vector op is
// exactly check row r of the layer. Check messages are stored row-major
// per R slot with a padded stride, so they need no rotation at all.
// After the vector pass the updated posteriors rotate back on scatter.
//
// Exactness envelope: the int16 lane arithmetic reproduces the scalar
// int32/int64 saturating ops only for formats up to 15 total bits (every
// format the library ships is 8 or less). Wider formats, offsets beyond
// int16, and decodes with an active fault injector (whose corruption
// sequence is defined by scalar access order) transparently delegate to
// an embedded scalar twin — behaviour, results, and stats stay identical,
// only the speed differs.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "codes/qc_code.hpp"
#include "core/decoder.hpp"
#include "core/layered_minsum_fixed.hpp"
#include "core/quant.hpp"
#include "core/simd/simd_kernel.hpp"
#include "util/aligned.hpp"

namespace ldpc {

class SimdLayeredDecoder final : public Decoder {
 public:
  /// Normalized min-sum, scale taken from options (0.75 -> the paper's
  /// shift-add, anything else -> truncating num/16), like the scalar
  /// decoder's primary constructor. `tier` pins a specific kernel tier
  /// (tests); default picks the best available at runtime.
  SimdLayeredDecoder(const QCLdpcCode& code, DecoderOptions options,
                     FixedFormat format = FixedFormat{},
                     std::optional<simd::SimdTier> tier = std::nullopt);

  /// Offset-min-sum variant: magnitudes corrected by max(|m| - offset, 0),
  /// `offset_code` in quantized units (mirrors LayerRowKernel::offset_kernel).
  SimdLayeredDecoder(const QCLdpcCode& code, DecoderOptions options,
                     FixedFormat format, std::int32_t offset_code,
                     std::string label,
                     std::optional<simd::SimdTier> tier = std::nullopt);

  DecodeResult decode(std::span<const float> llr) override;
  std::size_t n() const override { return code_.n(); }
  std::size_t k() const override { return code_.k(); }
  std::string name() const override;
  SaturationStats saturation() const override;
  void set_cancel_token(const CancelToken* token) override;

  /// Decode from already-quantized channel codes (the scalar decoder's
  /// bit-exact entry point). Codes outside the format rails route to the
  /// scalar twin, which accepts arbitrary int32 messages.
  DecodeResult decode_quantized(std::span<const std::int32_t> channel_codes);

  std::string message_format() const override { return format_.name(); }

  FixedFormat format() const { return format_; }

  /// Kernel tier this decoder dispatches to.
  simd::SimdTier tier() const { return tier_; }

  /// True when the configuration is outside the int16 lane envelope and
  /// every decode delegates to the scalar twin.
  bool scalar_only() const { return force_scalar_; }

  /// Why the most recent decode bypassed the lane kernel (kNone when the
  /// vector path ran) — the same value stamped into its DecodeResult.
  SimdFallback last_fallback() const { return last_fallback_; }

 private:
  struct GatherBlock {
    std::uint32_t p_base;  ///< block_col * z into the posterior array
    std::uint32_t shift;   ///< circulant rotation, already reduced mod z
  };

  void init_geometry();
  bool must_use_scalar() const;
  DecodeResult run();

  const QCLdpcCode& code_;
  DecoderOptions options_;
  FixedFormat format_;
  std::string label_;
  simd::ScaleMode mode_ = simd::ScaleMode::kThreeQuarters;
  std::int16_t scale_num_ = 3;
  std::int16_t offset_code_ = 0;
  simd::SimdTier tier_;
  simd::LayerPassFn pass_;
  const CancelToken* cancel_ = nullptr;  ///< non-owning, may be null

  std::uint32_t z_ = 0;
  std::uint32_t z_pad_ = 0;  ///< z rounded up to max(16, tier lane count)
  std::vector<std::vector<GatherBlock>> gather_;     ///< per layer
  std::vector<std::vector<std::uint32_t>> r_base_;   ///< per layer, kernel view
  AlignedVec<std::int16_t> posterior16_;  ///< P memory, natural order
  AlignedVec<std::int16_t> r16_;          ///< R memory, r_slot * z_pad + row
  AlignedVec<std::int16_t> p_scratch_;    ///< gathered P lanes, deg * z_pad
  AlignedVec<std::int16_t> q_scratch_;    ///< Q_array lanes, deg * z_pad

  /// Scalar twin: construction-time validation of the kernel config plus
  /// the exact fallback for out-of-envelope formats and fault campaigns.
  std::unique_ptr<LayeredMinSumFixedDecoder> scalar_;
  bool force_scalar_ = false;
  bool last_used_scalar_ = false;
  SimdFallback last_fallback_ = SimdFallback::kNone;
  SaturationStats saturation_;
};

}  // namespace ldpc
