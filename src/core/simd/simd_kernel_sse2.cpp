// SSE2 lane kernel: 8 int16 lanes per step. SSE2 is baseline on every
// x86-64 CPU, so this tier needs no runtime feature check — it is the
// floor the AVX2 tier falls back to. SSE2 lacks blendv/pabsw, so blend is
// the classic and/andnot/or select and abs is max(v, 0 - v) (exact for
// |v| < 2^15, which the dispatcher's width envelope guarantees).
#include "core/simd/simd_kernel_impl.hpp"
#include "core/simd/simd_kernel_impl8.hpp"

#ifdef LDPC_SIMD_X86

#include <emmintrin.h>

namespace ldpc::simd {
namespace {

struct Sse2Ops {
  static constexpr int kLanes = 8;
  using Vec = __m128i;

  static Vec load(const std::int16_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void store(std::int16_t* p, Vec a) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), a);
  }
  static Vec broadcast(std::int16_t x) { return _mm_set1_epi16(x); }
  static Vec zero() { return _mm_setzero_si128(); }
  static Vec add(Vec a, Vec b) { return _mm_add_epi16(a, b); }
  static Vec sub(Vec a, Vec b) { return _mm_sub_epi16(a, b); }
  static Vec min(Vec a, Vec b) { return _mm_min_epi16(a, b); }
  static Vec max(Vec a, Vec b) { return _mm_max_epi16(a, b); }
  static Vec cmpgt(Vec a, Vec b) { return _mm_cmpgt_epi16(a, b); }
  static Vec cmpeq(Vec a, Vec b) { return _mm_cmpeq_epi16(a, b); }
  static Vec blend(Vec m, Vec a, Vec b) {
    return _mm_or_si128(_mm_and_si128(m, a), _mm_andnot_si128(m, b));
  }
  static Vec abs16(Vec a) { return _mm_max_epi16(a, _mm_sub_epi16(zero(), a)); }
  static Vec xor_(Vec a, Vec b) { return _mm_xor_si128(a, b); }
  static Vec or_(Vec a, Vec b) { return _mm_or_si128(a, b); }
  static Vec and_(Vec a, Vec b) { return _mm_and_si128(a, b); }
  template <int kShift>
  static Vec srl(Vec a) {
    return _mm_srli_epi16(a, kShift);
  }
  template <int kShift>
  static Vec sll(Vec a) {
    return _mm_slli_epi16(a, kShift);
  }
  static Vec mullo(Vec a, Vec b) { return _mm_mullo_epi16(a, b); }
  static Vec mulhi(Vec a, Vec b) { return _mm_mulhi_epi16(a, b); }
  static int count_diff(Vec a, Vec b) {
    // movemask yields one bit per byte; equal int16 lanes contribute two
    // set bits, so differing lanes = (16 - popcount) / 2.
    const int eq = _mm_movemask_epi8(_mm_cmpeq_epi16(a, b));
    return (16 - __builtin_popcount(static_cast<unsigned>(eq))) / 2;
  }
};

/// Int8 lane policy for the finite-alphabet kernels: 16 int8 lanes per
/// __m128i. SSE2 has no pminsb/pmaxsb/pabsb (those are SSE4.1/SSSE3), so
/// min/max are cmpgt+select and abs is max(v, 0 - v) — exact for v >= -127,
/// which the symmetric rail guarantees.
struct Sse2Ops8 {
  static constexpr int kLanes = 16;
  using Vec = __m128i;

  static Vec load(const std::int8_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void store(std::int8_t* p, Vec a) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), a);
  }
  static Vec broadcast(std::int8_t x) { return _mm_set1_epi8(static_cast<char>(x)); }
  static Vec zero() { return _mm_setzero_si128(); }
  static Vec add8(Vec a, Vec b) { return _mm_add_epi8(a, b); }
  static Vec sub8(Vec a, Vec b) { return _mm_sub_epi8(a, b); }
  static Vec adds8(Vec a, Vec b) { return _mm_adds_epi8(a, b); }
  static Vec subs8(Vec a, Vec b) { return _mm_subs_epi8(a, b); }
  static Vec cmpgt8(Vec a, Vec b) { return _mm_cmpgt_epi8(a, b); }
  static Vec cmpeq8(Vec a, Vec b) { return _mm_cmpeq_epi8(a, b); }
  static Vec blend(Vec m, Vec a, Vec b) {
    return _mm_or_si128(_mm_and_si128(m, a), _mm_andnot_si128(m, b));
  }
  static Vec min8(Vec a, Vec b) { return blend(cmpgt8(a, b), b, a); }
  static Vec max8(Vec a, Vec b) { return blend(cmpgt8(a, b), a, b); }
  static Vec abs8(Vec a) { return max8(a, _mm_sub_epi8(zero(), a)); }
  static Vec xor_(Vec a, Vec b) { return _mm_xor_si128(a, b); }
  static Vec or_(Vec a, Vec b) { return _mm_or_si128(a, b); }
  static Vec and_(Vec a, Vec b) { return _mm_and_si128(a, b); }
};

}  // namespace

void layer_pass_sse2(const SimdLayerPass& pass) {
  if (pass.count_clips)
    detail::layer_pass<Sse2Ops, true>(pass);
  else
    detail::layer_pass<Sse2Ops, false>(pass);
}

void batch_layer_pass_sse2(const SimdBatchLayerPass& pass) {
  if (pass.count_clips)
    detail::batch_layer_pass<Sse2Ops, true>(pass);
  else
    detail::batch_layer_pass<Sse2Ops, false>(pass);
}

void batch_syndrome_pass_sse2(const SimdBatchSyndromePass& pass) {
  detail::batch_syndrome_pass<Sse2Ops>(pass);
}

void fa_layer_pass_sse2(const SimdFaLayerPass& pass) {
  if (pass.count_clips)
    detail::fa_layer_pass<Sse2Ops8, true>(pass);
  else
    detail::fa_layer_pass<Sse2Ops8, false>(pass);
}

void fa_batch_layer_pass_sse2(const SimdFaBatchLayerPass& pass) {
  if (pass.count_clips)
    detail::fa_batch_layer_pass<Sse2Ops8, true>(pass);
  else
    detail::fa_batch_layer_pass<Sse2Ops8, false>(pass);
}

void fa_batch_syndrome_pass_sse2(const SimdFaBatchSyndromePass& pass) {
  detail::fa_batch_syndrome_pass<Sse2Ops8>(pass);
}

void fa_quantize_pass_sse2(const SimdFaQuantizePass& pass) {
  // 16 LLRs per step: four 4-wide float pipelines narrowed through the
  // saturating packs (harmless — the +-127 clamp runs first, on int16
  // because SSE2 has no epi32 min/max). copysign(0.5, s) = 0.5 | signbit.
  const __m128 vscale = _mm_set1_ps(pass.fscale);
  const __m128 vhi = _mm_set1_ps(pass.fhi);
  const __m128 vlo = _mm_set1_ps(pass.flo);
  const __m128 vhalf = _mm_set1_ps(0.5F);
  const __m128 vsign = _mm_set1_ps(-0.0F);
  const __m128i vrail = _mm_set1_epi16(127);
  const __m128i vnrail = _mm_set1_epi16(-127);
  const auto quant4 = [&](std::size_t v) {
    __m128 s = _mm_mul_ps(_mm_loadu_ps(pass.llr + v), vscale);
    s = _mm_and_ps(s, _mm_cmpord_ps(s, s));  // NaN -> 0
    s = _mm_min_ps(_mm_max_ps(s, vlo), vhi);
    const __m128 half = _mm_or_ps(vhalf, _mm_and_ps(s, vsign));
    return _mm_cvttps_epi32(_mm_add_ps(s, half));
  };
  std::size_t v = 0;
  for (; v + 16 <= pass.n; v += 16) {
    const __m128i w0 = _mm_packs_epi32(quant4(v), quant4(v + 4));
    const __m128i w1 = _mm_packs_epi32(quant4(v + 8), quant4(v + 12));
    const __m128i c0 = _mm_max_epi16(_mm_min_epi16(w0, vrail), vnrail);
    const __m128i c1 = _mm_max_epi16(_mm_min_epi16(w1, vrail), vnrail);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(pass.out + v),
                     _mm_packs_epi16(c0, c1));
  }
  detail::fa_quantize_scalar(pass, v);
}

}  // namespace ldpc::simd

#endif  // LDPC_SIMD_X86
