// SSE2 lane kernel: 8 int16 lanes per step. SSE2 is baseline on every
// x86-64 CPU, so this tier needs no runtime feature check — it is the
// floor the AVX2 tier falls back to. SSE2 lacks blendv/pabsw, so blend is
// the classic and/andnot/or select and abs is max(v, 0 - v) (exact for
// |v| < 2^15, which the dispatcher's width envelope guarantees).
#include "core/simd/simd_kernel_impl.hpp"

#ifdef LDPC_SIMD_X86

#include <emmintrin.h>

namespace ldpc::simd {
namespace {

struct Sse2Ops {
  static constexpr int kLanes = 8;
  using Vec = __m128i;

  static Vec load(const std::int16_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void store(std::int16_t* p, Vec a) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), a);
  }
  static Vec broadcast(std::int16_t x) { return _mm_set1_epi16(x); }
  static Vec zero() { return _mm_setzero_si128(); }
  static Vec add(Vec a, Vec b) { return _mm_add_epi16(a, b); }
  static Vec sub(Vec a, Vec b) { return _mm_sub_epi16(a, b); }
  static Vec min(Vec a, Vec b) { return _mm_min_epi16(a, b); }
  static Vec max(Vec a, Vec b) { return _mm_max_epi16(a, b); }
  static Vec cmpgt(Vec a, Vec b) { return _mm_cmpgt_epi16(a, b); }
  static Vec cmpeq(Vec a, Vec b) { return _mm_cmpeq_epi16(a, b); }
  static Vec blend(Vec m, Vec a, Vec b) {
    return _mm_or_si128(_mm_and_si128(m, a), _mm_andnot_si128(m, b));
  }
  static Vec abs16(Vec a) { return _mm_max_epi16(a, _mm_sub_epi16(zero(), a)); }
  static Vec xor_(Vec a, Vec b) { return _mm_xor_si128(a, b); }
  static Vec or_(Vec a, Vec b) { return _mm_or_si128(a, b); }
  static Vec and_(Vec a, Vec b) { return _mm_and_si128(a, b); }
  template <int kShift>
  static Vec srl(Vec a) {
    return _mm_srli_epi16(a, kShift);
  }
  template <int kShift>
  static Vec sll(Vec a) {
    return _mm_slli_epi16(a, kShift);
  }
  static Vec mullo(Vec a, Vec b) { return _mm_mullo_epi16(a, b); }
  static Vec mulhi(Vec a, Vec b) { return _mm_mulhi_epi16(a, b); }
  static int count_diff(Vec a, Vec b) {
    // movemask yields one bit per byte; equal int16 lanes contribute two
    // set bits, so differing lanes = (16 - popcount) / 2.
    const int eq = _mm_movemask_epi8(_mm_cmpeq_epi16(a, b));
    return (16 - __builtin_popcount(static_cast<unsigned>(eq))) / 2;
  }
};

}  // namespace

void layer_pass_sse2(const SimdLayerPass& pass) {
  if (pass.count_clips)
    detail::layer_pass<Sse2Ops, true>(pass);
  else
    detail::layer_pass<Sse2Ops, false>(pass);
}

void batch_layer_pass_sse2(const SimdBatchLayerPass& pass) {
  if (pass.count_clips)
    detail::batch_layer_pass<Sse2Ops, true>(pass);
  else
    detail::batch_layer_pass<Sse2Ops, false>(pass);
}

void batch_syndrome_pass_sse2(const SimdBatchSyndromePass& pass) {
  detail::batch_syndrome_pass<Sse2Ops>(pass);
}

}  // namespace ldpc::simd

#endif  // LDPC_SIMD_X86
