// Shared templated body of the SIMD layer pass — the single source of
// truth for the vectorized Algorithm 1 arithmetic. Each kernel TU
// (portable / SSE2 / AVX2) defines a LaneOps policy and instantiates
// layer_pass<Ops, count_clips> with it, so all three tiers execute the
// same operation sequence on different vector widths.
//
// LaneOps contract (Vec is a pack of kLanes int16 values):
//   load/store (unaligned), broadcast, zero
//   add/sub           wrapping int16 (inputs are range-limited so the
//                     exact result always fits; see width notes below)
//   min/max           signed int16
//   cmpgt/cmpeq       lane masks, all-ones where true
//   blend(m, a, b)    m ? a : b, m a lane mask
//   abs16             |v| for v > INT16_MIN
//   xor_/or_/and_     bitwise
//   srl<k>/sll<k>     logical shifts by compile-time k
//   mullo/mulhi       low/high 16 bits of the 32-bit signed product
//   count_diff(a, b)  number of lanes where a != b
//
// Width envelope: the dispatcher only routes formats with total_bits <= 15
// here (wider formats fall back to the scalar decoder). Then |P|,|R| <=
// 2^14, so P - R and Q + R' fit int16 exactly and wrapping add/sub equal
// the scalar int64 intermediates; saturation happens in an explicit
// clamp-to-rails min/max, and a clip event is precisely "clamped value
// differs from the exact value" — the same predicate sat_clamp_counted
// applies. INT16_MAX serves as the min1/min2 sentinel: every real |Q| is
// strictly smaller.
#pragma once

#include "core/simd/simd_kernel.hpp"

namespace ldpc::simd::detail {

template <class Ops>
inline typename Ops::Vec scale_mag(typename Ops::Vec mag, ScaleMode mode,
                                   typename Ops::Vec num,
                                   typename Ops::Vec offset,
                                   typename Ops::Vec zero) {
  using V = typename Ops::Vec;
  switch (mode) {
    case ScaleMode::kThreeQuarters:
      // scale_three_quarters on a non-negative magnitude: each shift
      // truncates separately, exactly like the hardware shift-add.
      return Ops::add(Ops::template srl<1>(mag), Ops::template srl<2>(mag));
    case ScaleMode::kNumOver16: {
      // (mag * num) / 16 with mag <= 2^14, num <= 16: the 32-bit product
      // is < 2^19, so the truncating divide is a logical shift of the
      // {mulhi:mullo} pair. mag and num are non-negative and < 2^15, so
      // the signed high half equals the unsigned one.
      const V lo = Ops::mullo(mag, num);
      const V hi = Ops::mulhi(mag, num);
      return Ops::or_(Ops::template srl<4>(lo), Ops::template sll<12>(hi));
    }
    case ScaleMode::kOffset:
      // max(mag - offset, 0); mag - offset >= -2^15 + 1, no wrap.
      return Ops::max(zero, Ops::sub(mag, offset));
  }
  return zero;  // unreachable
}

template <class Ops, bool kCount>
void layer_pass(const SimdLayerPass& a) {
  using V = typename Ops::Vec;
  const V lo = Ops::broadcast(a.lo);
  const V hi = Ops::broadcast(a.hi);
  const V zero = Ops::zero();
  const V sentinel = Ops::broadcast(INT16_MAX);
  const V num = Ops::broadcast(a.scale_num);
  const V offset = Ops::broadcast(a.offset_code);
  long long clips_q = 0;
  long long clips_r = 0;
  long long clips_p = 0;

  for (std::uint32_t c = 0; c < a.z_pad; c += Ops::kLanes) {
    // Stage 1 (core 1): Q = P - R per block, min1/min2/pos1/sign across
    // the layer, each lane tracking its own check row's state registers.
    V min1 = sentinel;
    V min2 = sentinel;
    V pos1 = zero;
    V signs = zero;
    for (std::uint32_t j = 0; j < a.deg; ++j) {
      const V p = Ops::load(a.p + j * a.z_pad + c);
      const V r = Ops::load(a.r + a.r_base[j] + c);
      const V diff = Ops::sub(p, r);
      const V q = Ops::max(lo, Ops::min(hi, diff));
      if constexpr (kCount) clips_q += Ops::count_diff(q, diff);
      Ops::store(a.q + j * a.z_pad + c, q);
      const V mag = Ops::abs16(q);
      const V lt1 = Ops::cmpgt(min1, mag);  // mag < min1, strict
      min2 = Ops::blend(lt1, min1, Ops::min(min2, mag));
      min1 = Ops::blend(lt1, mag, min1);
      pos1 = Ops::blend(lt1, Ops::broadcast(static_cast<std::int16_t>(j)), pos1);
      signs = Ops::xor_(signs, Ops::cmpgt(zero, q));
    }

    // The magnitude correction is a pure function of min1/min2, so it
    // hoists out of the per-block loop (the hardware computes it once per
    // row into the min1/min2 arrays too).
    const V s1 = a.degenerate ? zero
                              : scale_mag<Ops>(min1, a.mode, num, offset, zero);
    const V s2 = a.degenerate ? zero
                              : scale_mag<Ops>(min2, a.mode, num, offset, zero);

    // Stage 2 (core 2): R' selection + sign, P' = Q + R', both saturating.
    for (std::uint32_t j = 0; j < a.deg; ++j) {
      const V q = Ops::load(a.q + j * a.z_pad + c);
      V r_new;
      if (a.degenerate) {
        // Degree < 2: no extrinsic input, R' = 0 before any clamp — the
        // scalar kernel returns early, so no clip event either.
        r_new = zero;
      } else {
        const V eq = Ops::cmpeq(pos1, Ops::broadcast(static_cast<std::int16_t>(j)));
        const V mag = Ops::blend(eq, s2, s1);
        const V neg = Ops::xor_(signs, Ops::cmpgt(zero, q));
        const V val = Ops::blend(neg, Ops::sub(zero, mag), mag);
        r_new = Ops::max(lo, Ops::min(hi, val));
        if constexpr (kCount) clips_r += Ops::count_diff(r_new, val);
      }
      Ops::store(a.r + a.r_base[j] + c, r_new);
      const V sum = Ops::add(q, r_new);
      const V p_new = Ops::max(lo, Ops::min(hi, sum));
      if constexpr (kCount) clips_p += Ops::count_diff(p_new, sum);
      Ops::store(a.p + j * a.z_pad + c, p_new);
    }
  }
  if constexpr (kCount) {
    a.stats->q_clips += clips_q;
    a.stats->r_clips += clips_r;
    a.stats->p_clips += clips_p;
  }
}

// ---------------------------------------------------------------------------
// Inter-frame-batched layer pass: frame f rides in lane f, the z check rows
// of the layer run serially. Every array is lane-major with stride
// F = Ops::kLanes (p[v * F + f]), so the circulant rotation is a scalar
// index computation per load and each row update is exactly one vector op
// wide — lanes are full for any z. The per-lane arithmetic is the same
// operation sequence as layer_pass above (and therefore bit-identical to
// the scalar LayerRowKernel per frame); only the axis the lanes span
// changed from check rows to frames.
//
// Inactive lanes (`active[f] == 0`: retired or not-yet-refilled frames)
// still execute the arithmetic — their P/R columns are garbage nobody
// reads until a refill overwrites them — but clip events are masked with
// `active`, keeping per-frame SaturationStats exact. Event counts
// accumulate in int16 lanes (one event = subtracting an all-ones mask);
// the caller guarantees z * deg < 2^15 so a single layer pass cannot
// wrap, and the counts widen into the per-lane long long accumulators
// once per pass.
// ---------------------------------------------------------------------------

template <class Ops, bool kCount>
void batch_layer_pass(const SimdBatchLayerPass& a) {
  using V = typename Ops::Vec;
  constexpr std::uint32_t kF = Ops::kLanes;
  const V lo = Ops::broadcast(a.lo);
  const V hi = Ops::broadcast(a.hi);
  const V zero = Ops::zero();
  const V ones = Ops::broadcast(static_cast<std::int16_t>(-1));
  const V sentinel = Ops::broadcast(INT16_MAX);
  const V num = Ops::broadcast(a.scale_num);
  const V offset = Ops::broadcast(a.offset_code);
  const V active = Ops::load(a.active);
  const V r_keep = Ops::load(a.r_keep);
  V cq = zero;
  V cr = zero;
  V cp = zero;

  const V s1_deg = zero;  // degenerate layers force R' = 0
  for (std::uint32_t row = 0; row < a.z; ++row) {
    // Stage 1 (core 1): Q = P - R, min1/min2/pos1/sign — each lane runs
    // the CheckState recurrence for its own frame's copy of this row.
    V min1 = sentinel;
    V min2 = sentinel;
    V pos1 = zero;
    V signs = zero;
    for (std::uint32_t j = 0; j < a.deg; ++j) {
      const BatchBlock& b = a.blocks[j];
      std::uint32_t rot = row + b.shift;
      if (rot >= a.z) rot -= a.z;
      // Both streams advance one kF-lane row (= one cache line at AVX-512
      // width) per z-step; with ~2 * deg concurrent streams the hardware
      // prefetcher gives up, so fetch a few rows ahead by hand. The +8 can
      // run past `rot`'s wrap or the layer's last row — the arrays carry
      // kBatchPrefetchPad padding rows so the touch stays in bounds, and a
      // handful of wasted lines per layer is noise.
      __builtin_prefetch(
          a.p + (static_cast<std::size_t>(b.p_base + rot) + 8) * kF, 1);
      __builtin_prefetch(
          a.r + (static_cast<std::size_t>(b.r_base + row) + 8) * kF, 1);
      const V p = Ops::load(a.p + static_cast<std::size_t>(b.p_base + rot) * kF);
      // First-iteration lanes read R as 0 (r_keep masks the stale column);
      // stage 2 then stores the real value, so iteration 2 reads it back.
      const V r = Ops::and_(
          Ops::load(a.r + static_cast<std::size_t>(b.r_base + row) * kF),
          r_keep);
      const V diff = Ops::sub(p, r);
      const V q = Ops::max(lo, Ops::min(hi, diff));
      if constexpr (kCount)
        cq = Ops::sub(
            cq, Ops::and_(active, Ops::xor_(Ops::cmpeq(q, diff), ones)));
      Ops::store(a.q + j * kF, q);
      const V mag = Ops::abs16(q);
      const V lt1 = Ops::cmpgt(min1, mag);  // mag < min1, strict
      min2 = Ops::blend(lt1, min1, Ops::min(min2, mag));
      min1 = Ops::blend(lt1, mag, min1);
      pos1 =
          Ops::blend(lt1, Ops::broadcast(static_cast<std::int16_t>(j)), pos1);
      signs = Ops::xor_(signs, Ops::cmpgt(zero, q));
    }

    const V s1 =
        a.degenerate ? s1_deg : scale_mag<Ops>(min1, a.mode, num, offset, zero);
    const V s2 =
        a.degenerate ? s1_deg : scale_mag<Ops>(min2, a.mode, num, offset, zero);

    // Stage 2 (core 2): R' selection + sign, P' = Q + R', both saturating.
    for (std::uint32_t j = 0; j < a.deg; ++j) {
      const BatchBlock& b = a.blocks[j];
      std::uint32_t rot = row + b.shift;
      if (rot >= a.z) rot -= a.z;
      const V q = Ops::load(a.q + j * kF);
      V r_new;
      if (a.degenerate) {
        r_new = zero;
      } else {
        const V eq =
            Ops::cmpeq(pos1, Ops::broadcast(static_cast<std::int16_t>(j)));
        const V mag = Ops::blend(eq, s2, s1);
        const V neg = Ops::xor_(signs, Ops::cmpgt(zero, q));
        const V val = Ops::blend(neg, Ops::sub(zero, mag), mag);
        r_new = Ops::max(lo, Ops::min(hi, val));
        if constexpr (kCount)
          cr = Ops::sub(
              cr, Ops::and_(active, Ops::xor_(Ops::cmpeq(r_new, val), ones)));
      }
      Ops::store(a.r + static_cast<std::size_t>(b.r_base + row) * kF, r_new);
      const V sum = Ops::add(q, r_new);
      const V p_new = Ops::max(lo, Ops::min(hi, sum));
      if constexpr (kCount)
        cp = Ops::sub(
            cp, Ops::and_(active, Ops::xor_(Ops::cmpeq(p_new, sum), ones)));
      Ops::store(a.p + static_cast<std::size_t>(b.p_base + rot) * kF, p_new);
    }
  }

  if constexpr (kCount) {
    std::int16_t tmp[kF];
    Ops::store(tmp, cq);
    for (std::uint32_t f = 0; f < kF; ++f) a.q_clips[f] += tmp[f];
    Ops::store(tmp, cr);
    for (std::uint32_t f = 0; f < kF; ++f) a.r_clips[f] += tmp[f];
    Ops::store(tmp, cp);
    for (std::uint32_t f = 0; f < kF; ++f) a.p_clips[f] += tmp[f];
  }
}

/// Per-lane syndrome contribution of one layer: for each of the layer's z
/// check rows, XOR the hard-decision masks (posterior < 0) of its
/// variables; an all-ones lane means that lane's row is unsatisfied. Row
/// counts accumulate in int16 (z < 2^15 by the same caller guarantee) and
/// widen into the int32 per-lane weights once per pass.
template <class Ops>
void batch_syndrome_pass(const SimdBatchSyndromePass& a) {
  using V = typename Ops::Vec;
  constexpr std::uint32_t kF = Ops::kLanes;
  const V zero = Ops::zero();
  V w = zero;
  for (std::uint32_t row = 0; row < a.z; ++row) {
    V acc = zero;
    for (std::uint32_t j = 0; j < a.deg; ++j) {
      const BatchBlock& b = a.blocks[j];
      std::uint32_t rot = row + b.shift;
      if (rot >= a.z) rot -= a.z;
      __builtin_prefetch(
          a.p + (static_cast<std::size_t>(b.p_base + rot) + 8) * kF, 0);
      const V p = Ops::load(a.p + static_cast<std::size_t>(b.p_base + rot) * kF);
      acc = Ops::xor_(acc, Ops::cmpgt(zero, p));
    }
    w = Ops::sub(w, acc);  // acc is all-ones exactly in unsatisfied lanes
  }
  std::int16_t tmp[kF];
  Ops::store(tmp, w);
  for (std::uint32_t f = 0; f < kF; ++f) a.weight[f] += tmp[f];
}

}  // namespace ldpc::simd::detail
