// Runtime kernel dispatch: pick the widest lane kernel this build carries
// and this CPU supports. Selection happens once per decoder construction,
// not per decode, so the hot path pays a single indirect call per layer.
#include "core/simd/simd_kernel.hpp"

#include <cstdlib>

#include "util/check.hpp"

namespace ldpc::simd {

bool tier_available(SimdTier tier) {
  switch (tier) {
    case SimdTier::kPortable:
      return true;
#ifdef LDPC_SIMD_X86
    case SimdTier::kSse2:
      // SSE2 is architecturally guaranteed on x86-64.
      return true;
    case SimdTier::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case SimdTier::kAvx512:
      // The int16 kernels need the BW (byte/word) extension on top of the
      // F foundation; both ship together on every AVX-512 server core.
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0;
#else
    case SimdTier::kSse2:
    case SimdTier::kAvx2:
    case SimdTier::kAvx512:
      return false;
#endif
  }
  return false;
}

std::vector<SimdTier> available_tiers() {
  std::vector<SimdTier> tiers = {SimdTier::kPortable};
  if (tier_available(SimdTier::kSse2)) tiers.push_back(SimdTier::kSse2);
  if (tier_available(SimdTier::kAvx2)) tiers.push_back(SimdTier::kAvx2);
  if (tier_available(SimdTier::kAvx512)) tiers.push_back(SimdTier::kAvx512);
  return tiers;
}

LayerPassFn layer_pass_for(SimdTier tier) {
  LDPC_CHECK_MSG(tier_available(tier),
                 "SIMD tier " << to_string(tier)
                              << " is not available in this build/CPU");
  switch (tier) {
    case SimdTier::kPortable:
      return &layer_pass_portable;
#ifdef LDPC_SIMD_X86
    case SimdTier::kSse2:
      return &layer_pass_sse2;
    case SimdTier::kAvx2:
      return &layer_pass_avx2;
    case SimdTier::kAvx512:
      return &layer_pass_avx512;
#else
    default:
      break;
#endif
  }
  return &layer_pass_portable;  // unreachable after the check above
}

BatchLayerPassFn batch_layer_pass_for(SimdTier tier) {
  LDPC_CHECK_MSG(tier_available(tier),
                 "SIMD tier " << to_string(tier)
                              << " is not available in this build/CPU");
  switch (tier) {
    case SimdTier::kPortable:
      return &batch_layer_pass_portable;
#ifdef LDPC_SIMD_X86
    case SimdTier::kSse2:
      return &batch_layer_pass_sse2;
    case SimdTier::kAvx2:
      return &batch_layer_pass_avx2;
    case SimdTier::kAvx512:
      return &batch_layer_pass_avx512;
#else
    default:
      break;
#endif
  }
  return &batch_layer_pass_portable;  // unreachable after the check above
}

BatchSyndromePassFn batch_syndrome_pass_for(SimdTier tier) {
  LDPC_CHECK_MSG(tier_available(tier),
                 "SIMD tier " << to_string(tier)
                              << " is not available in this build/CPU");
  switch (tier) {
    case SimdTier::kPortable:
      return &batch_syndrome_pass_portable;
#ifdef LDPC_SIMD_X86
    case SimdTier::kSse2:
      return &batch_syndrome_pass_sse2;
    case SimdTier::kAvx2:
      return &batch_syndrome_pass_avx2;
    case SimdTier::kAvx512:
      return &batch_syndrome_pass_avx512;
#else
    default:
      break;
#endif
  }
  return &batch_syndrome_pass_portable;  // unreachable after the check above
}

FaLayerPassFn fa_layer_pass_for(SimdTier tier) {
  LDPC_CHECK_MSG(tier_available(tier),
                 "SIMD tier " << to_string(tier)
                              << " is not available in this build/CPU");
  switch (tier) {
    case SimdTier::kPortable:
      return &fa_layer_pass_portable;
#ifdef LDPC_SIMD_X86
    case SimdTier::kSse2:
      return &fa_layer_pass_sse2;
    case SimdTier::kAvx2:
      return &fa_layer_pass_avx2;
    case SimdTier::kAvx512:
      return &fa_layer_pass_avx512;
#else
    default:
      break;
#endif
  }
  return &fa_layer_pass_portable;  // unreachable after the check above
}

FaBatchLayerPassFn fa_batch_layer_pass_for(SimdTier tier) {
  LDPC_CHECK_MSG(tier_available(tier),
                 "SIMD tier " << to_string(tier)
                              << " is not available in this build/CPU");
  switch (tier) {
    case SimdTier::kPortable:
      return &fa_batch_layer_pass_portable;
#ifdef LDPC_SIMD_X86
    case SimdTier::kSse2:
      return &fa_batch_layer_pass_sse2;
    case SimdTier::kAvx2:
      return &fa_batch_layer_pass_avx2;
    case SimdTier::kAvx512:
      return &fa_batch_layer_pass_avx512;
#else
    default:
      break;
#endif
  }
  return &fa_batch_layer_pass_portable;  // unreachable after the check above
}

FaBatchSyndromePassFn fa_batch_syndrome_pass_for(SimdTier tier) {
  LDPC_CHECK_MSG(tier_available(tier),
                 "SIMD tier " << to_string(tier)
                              << " is not available in this build/CPU");
  switch (tier) {
    case SimdTier::kPortable:
      return &fa_batch_syndrome_pass_portable;
#ifdef LDPC_SIMD_X86
    case SimdTier::kSse2:
      return &fa_batch_syndrome_pass_sse2;
    case SimdTier::kAvx2:
      return &fa_batch_syndrome_pass_avx2;
    case SimdTier::kAvx512:
      return &fa_batch_syndrome_pass_avx512;
#else
    default:
      break;
#endif
  }
  return &fa_batch_syndrome_pass_portable;  // unreachable after the check
}

FaQuantizePassFn fa_quantize_pass_for(SimdTier tier) {
  LDPC_CHECK_MSG(tier_available(tier),
                 "SIMD tier " << to_string(tier)
                              << " is not available in this build/CPU");
  switch (tier) {
    case SimdTier::kPortable:
      return &fa_quantize_pass_portable;
#ifdef LDPC_SIMD_X86
    case SimdTier::kSse2:
      return &fa_quantize_pass_sse2;
    case SimdTier::kAvx2:
      return &fa_quantize_pass_avx2;
    case SimdTier::kAvx512:
      return &fa_quantize_pass_avx512;
#else
    default:
      break;
#endif
  }
  return &fa_quantize_pass_portable;  // unreachable after the check above
}

SimdTier tier_from_string(const std::string& name) {
  if (name == "portable") return SimdTier::kPortable;
  if (name == "sse2") return SimdTier::kSse2;
  if (name == "avx2") return SimdTier::kAvx2;
  if (name == "avx512") return SimdTier::kAvx512;
  throw Error("unknown SIMD tier name: " + name +
              " (expected portable|sse2|avx2|avx512)");
}

SimdTier best_tier() {
  if (const char* env = std::getenv("LDPC_SIMD_TIER")) {
    // Experimentation hook (benches, tier-pinned CI runs). A *known* tier
    // name that is unavailable on this build/CPU falls through to
    // auto-detection, so a pinned script stays portable across hosts; an
    // *unknown* name throws — an override that silently decoded on a
    // different tier than the one named would poison every number measured
    // under it.
    const SimdTier t = tier_from_string(env);
    if (tier_available(t)) return t;
  }
  if (tier_available(SimdTier::kAvx512)) return SimdTier::kAvx512;
  if (tier_available(SimdTier::kAvx2)) return SimdTier::kAvx2;
  if (tier_available(SimdTier::kSse2)) return SimdTier::kSse2;
  return SimdTier::kPortable;
}

}  // namespace ldpc::simd
