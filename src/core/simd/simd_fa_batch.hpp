// Inter-frame-batched finite-alphabet decoder (fa2/fa3/fa4): frame f in
// int8 lane f.
//
// Same lane-sideways layout as SimdBatchDecoder — lane-major arrays with
// stride F, serial z rows, mid-block lane refill — at twice the lane
// density (int8 lanes: portable/SSE2 16, AVX2 32, AVX-512 64 frames per
// vector step) and with the staircase check-message reconstruction of the
// finite-alphabet family instead of the 0.75 shift-add.
//
// One wrinkle the int16 batch decoder does not have: the FA tables are
// per-iteration, and lanes sit at independent iteration counts, so the
// kernel takes the staircase as per-lane *columns* (thr_lanes/delta_lanes/
// recon0_lanes). The decoder refreshes a lane's column only when that
// lane's table index min(iter-1, T-1) changes — a handful of scalar byte
// stores per lane per iteration, nothing on the row-sweep hot path.
//
// Per-frame results are bit-identical to LayeredMinSumFaDecoder (hard
// bits, iterations, status, SaturationStats — r_clips structurally zero on
// both sides), asserted in tests/simd_fa_equivalence_test.cpp across
// tiers, z values and block sizes. Fault campaigns and per-iteration
// observers fall back to per-frame decodes on the embedded z-lane FA twin,
// with the reason recorded in DecodeResult::simd_fallback.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "codes/qc_code.hpp"
#include "core/decoder.hpp"
#include "core/fa_tables.hpp"
#include "core/simd/simd_fa_layered.hpp"
#include "core/simd/simd_kernel.hpp"
#include "util/aligned.hpp"

namespace ldpc {

class SimdFaBatchDecoder final : public Decoder {
 public:
  /// `msg_bits` in {2, 3, 4}; the MIM tables are built once by the z-lane
  /// twin's embedded scalar decoder. `tier` pins a kernel tier (tests).
  SimdFaBatchDecoder(const QCLdpcCode& code, DecoderOptions options,
                     int msg_bits, float design_ebn0_db = 2.0F,
                     std::optional<simd::SimdTier> tier = std::nullopt);

  /// Single-frame decode rides the embedded z-lane twin — with one frame
  /// there is nothing to batch, and the z-lane kernel is the faster shape.
  DecodeResult decode(std::span<const float> llr) override;

  void decode_block(std::span<const BlockFrame> frames,
                    std::span<DecodeResult> results,
                    std::span<SaturationStats> saturation) override;

  std::size_t n() const override { return code_.n(); }
  std::size_t k() const override { return code_.k(); }
  std::string name() const override {
    return "layered-minsum-simd-batched-" + single_->tables().name();
  }
  SaturationStats saturation() const override { return last_saturation_; }
  void set_cancel_token(const CancelToken* token) override;

  /// Frames per full block = the tier's int8 lane count (64 on AVX-512).
  std::size_t block_width() const override { return lanes_; }

  simd::SimdTier tier() const { return tier_; }
  const FaTableSet& tables() const { return single_->tables(); }
  std::string message_format() const override {
    return single_->tables().name();
  }

  /// True when the configuration can never use the batched kernel and
  /// every block decodes per-frame on the z-lane twin.
  bool scalar_only() const { return force_fallback_; }

 private:
  static constexpr std::size_t kIdleLane = static_cast<std::size_t>(-1);
  static constexpr std::size_t kNoTable = static_cast<std::size_t>(-1);

  /// Per-lane decode-in-flight state; `frame` indexes into the current
  /// decode_block call's spans (kIdleLane when the lane holds no frame).
  /// `table` is the staircase table index the lane's column currently
  /// holds (kNoTable forces a refresh on the next iteration).
  struct Lane {
    std::size_t frame = kIdleLane;
    std::size_t iter = 0;
    std::size_t table = kNoTable;
    WatchdogState watchdog{WatchdogOptions{}};
    const CancelToken* cancel = nullptr;
  };

  /// One decode iteration's staircase, kernel-ready: thresholds plus
  /// nonnegative reconstruction deltas (recon[t+1] - recon[t]).
  struct IterTable {
    std::int8_t thr[simd::kFaMaxThresholds];
    std::int8_t delta[simd::kFaMaxThresholds];
    std::int8_t recon0;
  };

  void init_geometry();
  void decode_block_fallback(std::span<const BlockFrame> frames,
                             std::span<DecodeResult> results,
                             std::span<SaturationStats> saturation,
                             SimdFallback reason);
  void run_block(std::span<const BlockFrame> frames,
                 std::span<DecodeResult> results,
                 std::span<SaturationStats> saturation);

  const QCLdpcCode& code_;
  DecoderOptions options_;
  simd::SimdTier tier_;
  simd::FaBatchLayerPassFn pass_;
  simd::FaBatchSyndromePassFn syndrome_;
  simd::FaQuantizePassFn quantize_;  ///< uncounted frame-setup quantizer
  std::uint32_t lanes_ = 0;  ///< F: frames per block, lane-major stride
  std::uint32_t z_ = 0;
  std::uint32_t num_thr_ = 0;
  std::size_t r_rows_ = 0;  ///< nonzero_blocks * z rows of R memory

  std::vector<IterTable> iter_tables_;  ///< one per table, kernel layout
  std::vector<std::vector<simd::BatchBlock>> layers_;
  AlignedVec<std::int8_t> p8_;      ///< n rows * F lanes posteriors
  AlignedVec<std::int8_t> r8_;      ///< r_rows_ * F check messages
  AlignedVec<std::int8_t> q8_;      ///< max_deg * F row scratch
  AlignedVec<std::int8_t> active_;  ///< F lane mask (-1 live, 0 idle)
  AlignedVec<std::int8_t> r_keep_;  ///< F lane mask (0 = first iteration,
                                    ///< R reads as 0)
  AlignedVec<std::int8_t> thr_lanes_;    ///< num_thr rows * F, per-lane
  AlignedVec<std::int8_t> delta_lanes_;  ///< num_thr rows * F, per-lane
  AlignedVec<std::int8_t> recon0_lanes_; ///< F, per-lane recon[0]
  std::vector<std::int8_t> stage_;  ///< n quantized codes staging row
  std::vector<Lane> lane_;
  std::vector<long long> q_clips_;     ///< per-lane clip accumulators
  std::vector<long long> p_clips_;     ///< (no r_clips: structurally zero)
  std::vector<long long> degenerate_;  ///< per-lane degenerate checks
  std::vector<std::int32_t> weight_;   ///< per-lane syndrome weights

  /// z-lane FA twin: table construction + validation, the single-frame
  /// decode path, and the exact per-frame fallback.
  std::unique_ptr<SimdFaLayeredDecoder> single_;
  bool force_fallback_ = false;
  const CancelToken* cancel_ = nullptr;  ///< single-frame path only
  SaturationStats last_saturation_;
};

}  // namespace ldpc
