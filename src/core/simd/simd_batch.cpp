#include "core/simd/simd_batch.hpp"

#include <algorithm>
#include <cmath>

#include "fault/fault_injector.hpp"
#include "util/check.hpp"

namespace ldpc {

SimdBatchDecoder::SimdBatchDecoder(const QCLdpcCode& code,
                                   DecoderOptions options, FixedFormat format,
                                   std::optional<simd::SimdTier> tier)
    : code_(code),
      options_(options),
      format_(format),
      tier_(tier.value_or(simd::best_tier())),
      pass_(simd::batch_layer_pass_for(tier_)),
      syndrome_(simd::batch_syndrome_pass_for(tier_)),
      lanes_(simd::tier_lanes(tier_)) {
  // The z-lane twin carries the whole validation chain (it embeds the
  // scalar decoder, which checks scale bounds, format sanity and the
  // iteration budget) and serves as the exact per-frame fallback.
  single_ = std::make_unique<SimdLayeredDecoder>(code, options, format, tier_);
  if (options_.scale == 0.75F) {
    mode_ = simd::ScaleMode::kThreeQuarters;
  } else {
    mode_ = simd::ScaleMode::kNumOver16;
    scale_num_ = static_cast<std::int16_t>(
        static_cast<std::int32_t>(options_.scale * 16.0F + 0.5F));
  }
  init_geometry();
  // Lane envelope: int16 arithmetic needs <= 15-bit formats (same as the
  // z-lane kernel), and the masked in-register clip counters accumulate up
  // to z * deg events per site per layer pass in an int16 lane, so the
  // geometry must keep that product below 2^15. Every shipped code is two
  // orders of magnitude under the bound (WiMAX 1/2 z=96: 96 * 7 = 672).
  std::size_t max_deg = 0;
  for (const auto& layer : layers_) max_deg = std::max(max_deg, layer.size());
  force_fallback_ = format_.total_bits > 15 ||
                    static_cast<std::size_t>(z_) * max_deg >= 32768;
}

void SimdBatchDecoder::init_geometry() {
  z_ = static_cast<std::uint32_t>(code_.z());
  layers_.reserve(code_.layers().size());
  for (const auto& layer : code_.layers()) {
    std::vector<simd::BatchBlock> blocks;
    blocks.reserve(layer.size());
    for (const auto& blk : layer)
      blocks.push_back({blk.block_col * z_, blk.shift % z_, blk.r_slot * z_});
    layers_.push_back(std::move(blocks));
  }
  std::size_t max_deg = 0;
  for (const auto& layer : layers_) max_deg = std::max(max_deg, layer.size());
  r_rows_ = code_.base().nonzero_blocks() * static_cast<std::size_t>(z_);
  // kBatchPrefetchPad rows of slack so the kernels' look-ahead prefetches
  // stay inside the allocations.
  p16_.resize((code_.n() + simd::kBatchPrefetchPad) * lanes_);
  r16_.resize((r_rows_ + simd::kBatchPrefetchPad) * lanes_);
  q16_.resize(std::max<std::size_t>(max_deg, 1) * lanes_);
  active_.resize(lanes_);
  std::fill(active_.begin(), active_.end(), std::int16_t{0});
  r_keep_.resize(lanes_);
  std::fill(r_keep_.begin(), r_keep_.end(), std::int16_t{-1});
  stage_.resize(code_.n());
  lane_.assign(lanes_, Lane{});
  q_clips_.assign(lanes_, 0);
  r_clips_.assign(lanes_, 0);
  p_clips_.assign(lanes_, 0);
  degenerate_.assign(lanes_, 0);
  weight_.assign(lanes_, 0);
}

std::string SimdBatchDecoder::name() const {
  return "layered-minsum-simd-batched-" + format_.name();
}

void SimdBatchDecoder::set_cancel_token(const CancelToken* token) {
  cancel_ = token;
  single_->set_cancel_token(token);
}

DecodeResult SimdBatchDecoder::decode(std::span<const float> llr) {
  DecodeResult result = single_->decode(llr);
  last_saturation_ = single_->saturation();
  return result;
}

void SimdBatchDecoder::decode_block(std::span<const BlockFrame> frames,
                                    std::span<DecodeResult> results,
                                    std::span<SaturationStats> saturation) {
  LDPC_CHECK(results.size() == frames.size());
  LDPC_CHECK(saturation.size() == frames.size());
  for (const BlockFrame& f : frames) LDPC_CHECK(f.llr.size() == code_.n());

  SimdFallback reason = SimdFallback::kNone;
  if (force_fallback_) {
    reason = SimdFallback::kWideFormat;
  } else if (options_.fault_injector && options_.fault_injector->enabled()) {
    // Fault-campaign corruption order is defined by scalar access order.
    reason = SimdFallback::kFaultInjector;
  } else if (options_.observer) {
    // The observer contract is one snapshot per iteration of one frame;
    // interleaved lanes have no meaningful single-frame cadence.
    reason = SimdFallback::kObserver;
  }
  if (reason != SimdFallback::kNone) {
    decode_block_fallback(frames, results, saturation, reason);
    return;
  }
  run_block(frames, results, saturation);
}

void SimdBatchDecoder::decode_block_fallback(
    std::span<const BlockFrame> frames, std::span<DecodeResult> results,
    std::span<SaturationStats> saturation, SimdFallback reason) {
  for (std::size_t i = 0; i < frames.size(); ++i) {
    single_->set_cancel_token(frames[i].cancel);
    results[i] = single_->decode(frames[i].llr);
    saturation[i] = single_->saturation();
    // The twin stamps its own, more specific reason when *it* also had to
    // bypass its lane kernel; otherwise record why batching was off.
    if (results[i].simd_fallback == SimdFallback::kNone)
      results[i].simd_fallback = reason;
  }
  single_->set_cancel_token(cancel_);
  if (!frames.empty()) last_saturation_ = saturation.back();
}

void SimdBatchDecoder::run_block(std::span<const BlockFrame> frames,
                                 std::span<DecodeResult> results,
                                 std::span<SaturationStats> saturation) {
  const std::size_t count = frames.size();
  const std::size_t n = code_.n();
  std::size_t next = 0;  // next pending frame to claim a lane
  std::size_t done = 0;
  std::uint32_t live = 0;  // lanes currently carrying a frame

  simd::SimdBatchLayerPass pass;
  pass.p = p16_.data();
  pass.q = q16_.data();
  pass.r = r16_.data();
  pass.z = z_;
  pass.active = active_.data();
  pass.lo = static_cast<std::int16_t>(format_.min_code());
  pass.hi = static_cast<std::int16_t>(format_.max_code());
  pass.mode = mode_;
  pass.scale_num = scale_num_;
  pass.offset_code = 0;
  pass.count_clips = options_.count_saturation;
  pass.r_keep = r_keep_.data();
  pass.q_clips = q_clips_.data();
  pass.r_clips = r_clips_.data();
  pass.p_clips = p_clips_.data();

  simd::SimdBatchSyndromePass syn;
  syn.p = p16_.data();
  syn.z = z_;

  const bool et = options_.early_termination;
  const bool wd = options_.watchdog.enabled();

  const auto load_lane = [&](std::size_t f, std::size_t g) {
    Lane& lane = lane_[f];
    lane.frame = g;
    lane.iter = 0;
    lane.watchdog = WatchdogState(options_.watchdog);
    lane.cancel = frames[g].cancel;
    SaturationStats& sat = saturation[g];
    sat = SaturationStats{};
    const std::span<const float> llr = frames[g].llr;
    // Quantize straight into lane f's strided column. Every store owns a
    // fresh cache line (stride = one line at AVX-512 width), so the walk is
    // RFO-latency-bound without the look-ahead prefetch — the pad rows
    // behind kBatchPrefetchPad keep the +16 in bounds. The lane's R column
    // is NOT zero-filled — r_keep_ masks its reads for the frame's first
    // iteration instead (see SimdBatchLayerPass::r_keep).
    if (options_.count_saturation) {
      for (std::size_t v = 0; v < n; ++v) {
        __builtin_prefetch(&p16_[(v + 16) * lanes_ + f], 1);
        p16_[v * lanes_ + f] = static_cast<std::int16_t>(
            format_.quantize(llr[v], sat.quantizer_clips));
      }
    } else {
      // Uncounted path (the batch-throughput configuration): a branchless
      // restatement of FixedFormat::quantize the autovectorizer can chew on
      // — same NaN -> 0, same rails-plus-one float pre-limit, same
      // round-half-away in double (exact per the quantize() width
      // argument), same integer rail clamp, so codes are bit-identical.
      const float fscale = static_cast<float>(1 << format_.frac_bits);
      const float fhi = static_cast<float>(format_.max_code()) + 1.0F;
      const float flo = static_cast<float>(format_.min_code()) - 1.0F;
      const std::int32_t rail_hi = format_.max_code();
      const std::int32_t rail_lo = format_.min_code();
      for (std::size_t v = 0; v < n; ++v) {
        float s = llr[v] * fscale;
        s = s != s ? 0.0F : s;
        s = s > fhi ? fhi : s;
        s = s < flo ? flo : s;
        // trunc(d + copysign(0.5, d)) == round_half_away(d): the cast
        // truncates toward zero, so the negative arm ceil(d - 0.5) equals
        // -floor(0.5 - d) — one conversion, no branch.
        const double d = static_cast<double>(s);
        const std::int32_t t =
            static_cast<std::int32_t>(d + std::copysign(0.5, d));
        const std::int32_t c =
            t > rail_hi ? rail_hi : (t < rail_lo ? rail_lo : t);
        stage_[v] = static_cast<std::int16_t>(c);
      }
      for (std::size_t v = 0; v < n; ++v) {
        __builtin_prefetch(&p16_[(v + 16) * lanes_ + f], 1);
        p16_[v * lanes_ + f] = stage_[v];
      }
    }
    q_clips_[f] = 0;
    r_clips_[f] = 0;
    p_clips_[f] = 0;
    degenerate_[f] = 0;
    active_[f] = -1;
    ++live;
  };

  // Retire lane f, writing its frame's DecodeResult exactly as the scalar
  // decoder's iteration tail + output parity recheck would have. When the
  // caller just ran the vectorized syndrome pass, lane f's parity is
  // already known (`parity_known` + `parity` = weight_[f] == 0) and the
  // scalar whole-code parity_ok walk is skipped; only cancellation mid-
  // iteration (stale weight_) and the no-probe configuration pay it.
  const auto finalize = [&](std::size_t f, bool watchdog_fired,
                            bool cancelled, bool parity_known, bool parity) {
    Lane& lane = lane_[f];
    const std::size_t g = lane.frame;
    DecodeResult& res = results[g];
    res.hard_bits.resize(n);
    // Drain the lane's posterior signs 64 at a time: assembling a word
    // locally keeps the strided loads independent (no per-bit RMW chain)
    // and set_word skips BitVec's per-bit bounds checks; the prefetch hides
    // the per-line L2 latency of the stride-one-line column walk.
    for (std::size_t w = 0; w < (n + 63) / 64; ++w) {
      const std::size_t base = w * 64;
      const std::size_t limit = std::min<std::size_t>(64, n - base);
      std::uint64_t bits = 0;
      for (std::size_t b = 0; b < limit; ++b) {
        __builtin_prefetch(&p16_[(base + b + 16) * lanes_ + f], 0);
        bits |= static_cast<std::uint64_t>(p16_[(base + b) * lanes_ + f] < 0)
                << b;
      }
      res.hard_bits.set_word(w, bits);
    }
    res.iterations = lane.iter;
    res.converged = parity_known ? parity : code_.parity_ok(res.hard_bits);
    res.status = classify_exit(res.converged, watchdog_fired, 0, cancelled);
    res.faults_injected = 0;
    res.simd_fallback = SimdFallback::kNone;
    SaturationStats& sat = saturation[g];
    sat.q_clips = q_clips_[f];
    sat.r_clips = r_clips_[f];
    sat.p_clips = p_clips_[f];
    sat.datapath_clips = sat.q_clips + sat.r_clips + sat.p_clips;
    sat.degenerate_checks = degenerate_[f];
    last_saturation_ = sat;
    lane.frame = kIdleLane;
    lane.cancel = nullptr;
    active_[f] = 0;
    --live;
    ++done;
  };

  while (done < count) {
    // Refill: idle lanes pick up pending frames mid-block, so lanes stay
    // full while their neighbours are still iterating.
    for (std::uint32_t f = 0; f < lanes_ && next < count; ++f)
      if (lane_[f].frame == kIdleLane) load_lane(f, next++);

    for (std::uint32_t f = 0; f < lanes_; ++f)
      if (lane_[f].frame != kIdleLane) {
        ++lane_[f].iter;
        // First iteration of a refilled lane: its R column is stale memory
        // and must read as 0 (the kernel masks it via r_keep).
        r_keep_[f] = lane_[f].iter == 1 ? std::int16_t{0} : std::int16_t{-1};
      }

    for (std::size_t l = 0; l < layers_.size() && live > 0; ++l) {
      // Same cooperative-cancellation cadence as the scalar decoder:
      // polled at every layer boundary, where lane posteriors are
      // consistent. An expired lane finalizes from its current state —
      // parity recheck decides converged vs deadline-expired.
      for (std::uint32_t f = 0; f < lanes_; ++f) {
        const Lane& lane = lane_[f];
        if (lane.frame != kIdleLane && lane.cancel && lane.cancel->expired())
          finalize(f, false, true, false, false);
      }
      if (live == 0) break;
      const auto& blocks = layers_[l];
      if (blocks.empty()) continue;
      pass.blocks = blocks.data();
      pass.deg = static_cast<std::uint32_t>(blocks.size());
      pass.degenerate = blocks.size() < 2;
      pass_(pass);
      // A degree-1 layer forces R' = 0 on every one of its z rows, once
      // per layer pass — same accounting as LayerRowKernel, per frame.
      if (blocks.size() == 1)
        for (std::uint32_t f = 0; f < lanes_; ++f)
          if (active_[f] != 0) degenerate_[f] += z_;
    }

    if (live == 0) continue;  // everything cancelled mid-iteration

    // Iteration tail, per lane in the scalar order: early termination,
    // then the watchdog (which may abort even on the final iteration),
    // then the iteration budget.
    if (et || wd) {
      std::fill(weight_.begin(), weight_.end(), 0);
      syn.weight = weight_.data();
      for (const auto& blocks : layers_) {
        if (blocks.empty()) continue;
        syn.blocks = blocks.data();
        syn.deg = static_cast<std::uint32_t>(blocks.size());
        syndrome_(syn);
      }
    }
    const bool probed = et || wd;  // weight_ holds this iteration's syndrome
    for (std::uint32_t f = 0; f < lanes_; ++f) {
      Lane& lane = lane_[f];
      if (lane.frame == kIdleLane) continue;
      const bool parity = probed && weight_[f] == 0;
      if (et && parity) {
        finalize(f, false, false, true, true);
        continue;
      }
      if (wd && lane.watchdog.should_abort(
                    static_cast<std::size_t>(weight_[f]))) {
        finalize(f, true, false, probed, parity);
        continue;
      }
      if (lane.iter >= options_.max_iterations)
        finalize(f, false, false, probed, parity);
    }
  }
}

}  // namespace ldpc
