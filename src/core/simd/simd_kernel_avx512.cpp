// AVX-512 lane kernel: 32 int16 lanes per step — one vector covers a whole
// 32-frame batch row, and a z = 96 z-lane layer is three vector iterations.
// Compiled with -mavx512f -mavx512bw (see src/core/CMakeLists.txt) and only
// dispatched to after a runtime __builtin_cpu_supports check for both
// features, so the library binary stays safe on pre-AVX-512 hosts.
//
// AVX-512 comparisons natively produce mask registers, not vectors; the
// LaneOps contract wants all-ones-per-lane vector masks (shared with the
// SSE2/AVX2/portable tiers), so cmpgt/cmpeq expand their __mmask32 through
// vpmovm2w. blend() exploits the contract in the other direction: because
// masks are all-ones per lane, a bitwise ternary-logic select (0xCA =
// m ? a : b) replaces the mask-register blend with no conversion at all.
#include "core/simd/simd_kernel_impl.hpp"

#ifdef LDPC_SIMD_X86

#include <immintrin.h>

namespace ldpc::simd {
namespace {

struct Avx512Ops {
  static constexpr int kLanes = 32;
  using Vec = __m512i;

  static Vec load(const std::int16_t* p) {
    return _mm512_loadu_si512(reinterpret_cast<const void*>(p));
  }
  static void store(std::int16_t* p, Vec a) {
    _mm512_storeu_si512(reinterpret_cast<void*>(p), a);
  }
  static Vec broadcast(std::int16_t x) { return _mm512_set1_epi16(x); }
  static Vec zero() { return _mm512_setzero_si512(); }
  static Vec add(Vec a, Vec b) { return _mm512_add_epi16(a, b); }
  static Vec sub(Vec a, Vec b) { return _mm512_sub_epi16(a, b); }
  static Vec min(Vec a, Vec b) { return _mm512_min_epi16(a, b); }
  static Vec max(Vec a, Vec b) { return _mm512_max_epi16(a, b); }
  static Vec cmpgt(Vec a, Vec b) {
    return _mm512_movm_epi16(_mm512_cmpgt_epi16_mask(a, b));
  }
  static Vec cmpeq(Vec a, Vec b) {
    return _mm512_movm_epi16(_mm512_cmpeq_epi16_mask(a, b));
  }
  static Vec blend(Vec m, Vec a, Vec b) {
    // Bitwise select (m & a) | (~m & b): exact because lane masks are
    // all-ones per int16 lane. Truth table 0xCA = m ? a : b.
    return _mm512_ternarylogic_epi32(m, a, b, 0xCA);
  }
  static Vec abs16(Vec a) { return _mm512_abs_epi16(a); }
  static Vec xor_(Vec a, Vec b) { return _mm512_xor_si512(a, b); }
  static Vec or_(Vec a, Vec b) { return _mm512_or_si512(a, b); }
  static Vec and_(Vec a, Vec b) { return _mm512_and_si512(a, b); }
  template <int kShift>
  static Vec srl(Vec a) {
    return _mm512_srli_epi16(a, kShift);
  }
  template <int kShift>
  static Vec sll(Vec a) {
    return _mm512_slli_epi16(a, kShift);
  }
  static Vec mullo(Vec a, Vec b) { return _mm512_mullo_epi16(a, b); }
  static Vec mulhi(Vec a, Vec b) { return _mm512_mulhi_epi16(a, b); }
  static int count_diff(Vec a, Vec b) {
    return __builtin_popcount(
        static_cast<unsigned>(_mm512_cmpneq_epi16_mask(a, b)));
  }
};

}  // namespace

void layer_pass_avx512(const SimdLayerPass& pass) {
  if (pass.count_clips)
    detail::layer_pass<Avx512Ops, true>(pass);
  else
    detail::layer_pass<Avx512Ops, false>(pass);
}

void batch_layer_pass_avx512(const SimdBatchLayerPass& pass) {
  if (pass.count_clips)
    detail::batch_layer_pass<Avx512Ops, true>(pass);
  else
    detail::batch_layer_pass<Avx512Ops, false>(pass);
}

void batch_syndrome_pass_avx512(const SimdBatchSyndromePass& pass) {
  detail::batch_syndrome_pass<Avx512Ops>(pass);
}

}  // namespace ldpc::simd

#endif  // LDPC_SIMD_X86
