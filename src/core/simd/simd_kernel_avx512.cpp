// AVX-512 lane kernel: 32 int16 lanes per step — one vector covers a whole
// 32-frame batch row, and a z = 96 z-lane layer is three vector iterations.
// Compiled with -mavx512f -mavx512bw (see src/core/CMakeLists.txt) and only
// dispatched to after a runtime __builtin_cpu_supports check for both
// features, so the library binary stays safe on pre-AVX-512 hosts.
//
// AVX-512 comparisons natively produce mask registers, not vectors; the
// LaneOps contract wants all-ones-per-lane vector masks (shared with the
// SSE2/AVX2/portable tiers), so cmpgt/cmpeq expand their __mmask32 through
// vpmovm2w. blend() exploits the contract in the other direction: because
// masks are all-ones per lane, a bitwise ternary-logic select (0xCA =
// m ? a : b) replaces the mask-register blend with no conversion at all.
#include "core/simd/simd_kernel_impl.hpp"
#include "core/simd/simd_kernel_impl8.hpp"

#ifdef LDPC_SIMD_X86

#include <immintrin.h>

namespace ldpc::simd {
namespace {

struct Avx512Ops {
  static constexpr int kLanes = 32;
  using Vec = __m512i;

  static Vec load(const std::int16_t* p) {
    return _mm512_loadu_si512(reinterpret_cast<const void*>(p));
  }
  static void store(std::int16_t* p, Vec a) {
    _mm512_storeu_si512(reinterpret_cast<void*>(p), a);
  }
  static Vec broadcast(std::int16_t x) { return _mm512_set1_epi16(x); }
  static Vec zero() { return _mm512_setzero_si512(); }
  static Vec add(Vec a, Vec b) { return _mm512_add_epi16(a, b); }
  static Vec sub(Vec a, Vec b) { return _mm512_sub_epi16(a, b); }
  static Vec min(Vec a, Vec b) { return _mm512_min_epi16(a, b); }
  static Vec max(Vec a, Vec b) { return _mm512_max_epi16(a, b); }
  static Vec cmpgt(Vec a, Vec b) {
    return _mm512_movm_epi16(_mm512_cmpgt_epi16_mask(a, b));
  }
  static Vec cmpeq(Vec a, Vec b) {
    return _mm512_movm_epi16(_mm512_cmpeq_epi16_mask(a, b));
  }
  static Vec blend(Vec m, Vec a, Vec b) {
    // Bitwise select (m & a) | (~m & b): exact because lane masks are
    // all-ones per int16 lane. Truth table 0xCA = m ? a : b.
    return _mm512_ternarylogic_epi32(m, a, b, 0xCA);
  }
  static Vec abs16(Vec a) { return _mm512_abs_epi16(a); }
  static Vec xor_(Vec a, Vec b) { return _mm512_xor_si512(a, b); }
  static Vec or_(Vec a, Vec b) { return _mm512_or_si512(a, b); }
  static Vec and_(Vec a, Vec b) { return _mm512_and_si512(a, b); }
  template <int kShift>
  static Vec srl(Vec a) {
    return _mm512_srli_epi16(a, kShift);
  }
  template <int kShift>
  static Vec sll(Vec a) {
    return _mm512_slli_epi16(a, kShift);
  }
  static Vec mullo(Vec a, Vec b) { return _mm512_mullo_epi16(a, b); }
  static Vec mulhi(Vec a, Vec b) { return _mm512_mulhi_epi16(a, b); }
  static int count_diff(Vec a, Vec b) {
    return __builtin_popcount(
        static_cast<unsigned>(_mm512_cmpneq_epi16_mask(a, b)));
  }
};

/// Int8 lane policy for the finite-alphabet kernels: 64 int8 lanes per
/// __m512i — one vector per 64-frame batch row is exactly one cache line.
/// Comparisons expand their __mmask64 through vpmovm2b; blend stays the
/// all-ones-mask ternary-logic select, byte-exact.
struct Avx512Ops8 {
  static constexpr int kLanes = 64;
  using Vec = __m512i;

  static Vec load(const std::int8_t* p) {
    return _mm512_loadu_si512(reinterpret_cast<const void*>(p));
  }
  static void store(std::int8_t* p, Vec a) {
    _mm512_storeu_si512(reinterpret_cast<void*>(p), a);
  }
  static Vec broadcast(std::int8_t x) {
    return _mm512_set1_epi8(static_cast<char>(x));
  }
  static Vec zero() { return _mm512_setzero_si512(); }
  static Vec add8(Vec a, Vec b) { return _mm512_add_epi8(a, b); }
  static Vec sub8(Vec a, Vec b) { return _mm512_sub_epi8(a, b); }
  static Vec adds8(Vec a, Vec b) { return _mm512_adds_epi8(a, b); }
  static Vec subs8(Vec a, Vec b) { return _mm512_subs_epi8(a, b); }
  static Vec min8(Vec a, Vec b) { return _mm512_min_epi8(a, b); }
  static Vec max8(Vec a, Vec b) { return _mm512_max_epi8(a, b); }
  static Vec cmpgt8(Vec a, Vec b) {
    return _mm512_movm_epi8(_mm512_cmpgt_epi8_mask(a, b));
  }
  static Vec cmpeq8(Vec a, Vec b) {
    return _mm512_movm_epi8(_mm512_cmpeq_epi8_mask(a, b));
  }
  static Vec blend(Vec m, Vec a, Vec b) {
    return _mm512_ternarylogic_epi32(m, a, b, 0xCA);
  }
  static Vec abs8(Vec a) { return _mm512_abs_epi8(a); }
  static Vec xor_(Vec a, Vec b) { return _mm512_xor_si512(a, b); }
  static Vec or_(Vec a, Vec b) { return _mm512_or_si512(a, b); }
  static Vec and_(Vec a, Vec b) { return _mm512_and_si512(a, b); }
  static Vec staircase_add(Vec s, Vec mag, Vec thr, Vec delta) {
    // One masked add replaces the generic cmpgt8 (vpcmpb + vpmovm2b),
    // vpand, vpaddb chain: s + ((mag > thr) ? delta : 0) in two
    // instructions, same value byte for byte.
    return _mm512_mask_add_epi8(s, _mm512_cmpgt_epi8_mask(mag, thr), s,
                                delta);
  }
};

}  // namespace

void layer_pass_avx512(const SimdLayerPass& pass) {
  if (pass.count_clips)
    detail::layer_pass<Avx512Ops, true>(pass);
  else
    detail::layer_pass<Avx512Ops, false>(pass);
}

void batch_layer_pass_avx512(const SimdBatchLayerPass& pass) {
  if (pass.count_clips)
    detail::batch_layer_pass<Avx512Ops, true>(pass);
  else
    detail::batch_layer_pass<Avx512Ops, false>(pass);
}

void batch_syndrome_pass_avx512(const SimdBatchSyndromePass& pass) {
  detail::batch_syndrome_pass<Avx512Ops>(pass);
}

void fa_layer_pass_avx512(const SimdFaLayerPass& pass) {
  if (pass.count_clips)
    detail::fa_layer_pass<Avx512Ops8, true>(pass);
  else
    detail::fa_layer_pass<Avx512Ops8, false>(pass);
}

void fa_batch_layer_pass_avx512(const SimdFaBatchLayerPass& pass) {
  if (pass.count_clips)
    detail::fa_batch_layer_pass<Avx512Ops8, true>(pass);
  else
    detail::fa_batch_layer_pass<Avx512Ops8, false>(pass);
}

void fa_batch_syndrome_pass_avx512(const SimdFaBatchSyndromePass& pass) {
  detail::fa_batch_syndrome_pass<Avx512Ops8>(pass);
}

// GCC 12's unmasked AVX-512 float intrinsics expand through
// _mm512_undefined_ps() merge operands, tripping -Wmaybe-uninitialized
// (GCC PR 105593). The operands are dead — full-mask forms ignore them.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
void fa_quantize_pass_avx512(const SimdFaQuantizePass& pass) {
  // 16 LLRs per step: one 16-wide float pipeline, clamp on int32, narrow
  // with vpmovdb. Float bit-ops go through integer casts — _mm512_and_ps
  // is AVX-512DQ, which this build does not assume (only F + BW).
  const __m512 vscale = _mm512_set1_ps(pass.fscale);
  const __m512 vhi = _mm512_set1_ps(pass.fhi);
  const __m512 vlo = _mm512_set1_ps(pass.flo);
  const __m512i vhalf = _mm512_castps_si512(_mm512_set1_ps(0.5F));
  const __m512i vsign = _mm512_castps_si512(_mm512_set1_ps(-0.0F));
  const __m512i vrail = _mm512_set1_epi32(127);
  const __m512i vnrail = _mm512_set1_epi32(-127);
  std::size_t v = 0;
  for (; v + 16 <= pass.n; v += 16) {
    __m512 s = _mm512_mul_ps(_mm512_loadu_ps(pass.llr + v), vscale);
    const __mmask16 ord = _mm512_cmp_ps_mask(s, s, _CMP_ORD_Q);
    s = _mm512_maskz_mov_ps(ord, s);  // NaN -> 0
    s = _mm512_min_ps(_mm512_max_ps(s, vlo), vhi);
    const __m512i si = _mm512_castps_si512(s);
    const __m512 half = _mm512_castsi512_ps(
        _mm512_or_si512(vhalf, _mm512_and_si512(si, vsign)));
    __m512i t = _mm512_cvttps_epi32(_mm512_add_ps(s, half));
    t = _mm512_max_epi32(_mm512_min_epi32(t, vrail), vnrail);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(pass.out + v),
                     _mm512_cvtepi32_epi8(t));
  }
  detail::fa_quantize_scalar(pass, v);
}
#pragma GCC diagnostic pop

}  // namespace ldpc::simd

#endif  // LDPC_SIMD_X86
