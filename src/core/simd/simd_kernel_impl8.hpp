// Shared templated body of the int8 finite-alphabet SIMD passes — the
// single source of truth for the vectorized FaRowKernel arithmetic. Each
// kernel TU defines a LaneOps8 policy and instantiates the templates, so
// all tiers execute the same operation sequence on different widths.
//
// LaneOps8 contract (Vec is a pack of kLanes int8 values):
//   load/store (unaligned), broadcast, zero
//   add8/sub8         wrapping int8
//   adds8/subs8       saturating int8 (x86 semantics: clamp to [-128, 127])
//   min8/max8         signed int8 (emulated via cmpgt+blend on SSE2)
//   cmpgt8/cmpeq8     lane masks, all-ones where true
//   blend(m, a, b)    m ? a : b, m a byte-lane mask
//   abs8              |v| for v >= -127 (max8(v, 0 - v); inputs are railed)
//   xor_/or_/and_     bitwise
//
// Width envelope: every value on the datapath lives on the symmetric
// [-127, +127] rail (kFaRail), maintained by re-railing each saturating
// op with max8(x, -127). abs/negate of any railed value is representable.
// The exact clip predicate in counted mode is reconstructed from the
// saturating/wrapping op pair:
//   clip(a op b)  <=>  sat != wrap  or  wrap == -128
// — `sat != wrap` catches every exact result outside [-128, 127], and
// `wrap == -128` the two remaining cases (exact -128, which saturating
// arithmetic preserves but the rail rejects, and exact +128, which wraps
// to -128); together: exact result outside [-127, +127], the same
// predicate the scalar FaRowKernel counts.
//
// The staircase reconstruction recon0 + sum_t (mag > thr[t]) * delta[t]
// uses wrapping add8: the deltas are nonnegative and every partial sum is
// a prefix of the nondecreasing reconstruction sequence, hence <= 127.
// INT8_MAX (127) is the min1/min2 sentinel — with >= 2 in-rail absorbs the
// (min1, min2, pos1) triple is identical to the scalar kernel's huge
// sentinel: a first magnitude of 127 still leaves pos1 = 0 in both.
#pragma once

#include <cmath>

#include "core/simd/simd_kernel.hpp"

namespace ldpc::simd::detail {

/// Scalar body of the FA channel quantizer, used by the portable tier and
/// as the vector tiers' tail loop. Bit-identical to fa_quantize: the
/// pre-limit keeps |s| <= rail + 2 < 2^8, where float ulp <= 2^-16, so
/// s + copysign(0.5, s) is exact in float and its truncation is exactly
/// round-half-away (the 127 below is kFaRail).
inline void fa_quantize_scalar(const SimdFaQuantizePass& a, std::size_t v0) {
  for (std::size_t v = v0; v < a.n; ++v) {
    float s = a.llr[v] * a.fscale;
    s = s != s ? 0.0F : s;
    s = s > a.fhi ? a.fhi : s;
    s = s < a.flo ? a.flo : s;
    const std::int32_t t =
        static_cast<std::int32_t>(s + std::copysign(0.5F, s));
    const std::int32_t c = t > 127 ? 127 : (t < -127 ? -127 : t);
    a.out[v] = static_cast<std::int8_t>(c);
  }
}

/// Staircase lookup on a magnitude vector: thr/delta are pre-broadcast
/// vectors (z-lane kernel) or per-lane rows loaded by the caller (batched).
/// A policy may provide staircase_add(s, mag, thr, delta) to fuse the
/// cmpgt8/and_/add8 step (AVX-512 does it in two masked instructions);
/// the fallback composes the generic ops. Either way the step computes
/// s + ((mag > thr) ? delta : 0) exactly.
template <class Ops>
inline typename Ops::Vec fa_staircase(typename Ops::Vec mag,
                                      typename Ops::Vec recon0,
                                      const typename Ops::Vec* thr,
                                      const typename Ops::Vec* delta,
                                      std::uint32_t num_thr) {
  typename Ops::Vec s = recon0;
  for (std::uint32_t t = 0; t < num_thr; ++t) {
    if constexpr (requires { Ops::staircase_add(s, mag, thr[t], delta[t]); })
      s = Ops::staircase_add(s, mag, thr[t], delta[t]);
    else
      s = Ops::add8(s, Ops::and_(Ops::cmpgt8(mag, thr[t]), delta[t]));
  }
  return s;
}

template <class Ops, bool kCount>
void fa_layer_pass(const SimdFaLayerPass& a) {
  using V = typename Ops::Vec;
  const V zero = Ops::zero();
  const V ones = Ops::broadcast(static_cast<std::int8_t>(-1));
  const V rail_lo = Ops::broadcast(static_cast<std::int8_t>(-127));
  const V wrap_min = Ops::broadcast(static_cast<std::int8_t>(-128));
  const V sentinel = Ops::broadcast(static_cast<std::int8_t>(INT8_MAX));
  const V recon0 = Ops::broadcast(a.recon0);
  V thr[kFaMaxThresholds];
  V delta[kFaMaxThresholds];
  for (std::uint32_t t = 0; t < a.num_thr; ++t) {
    thr[t] = Ops::broadcast(a.thr[t]);
    delta[t] = Ops::broadcast(a.delta[t]);
  }
  long long clips_q = 0;
  long long clips_p = 0;

  for (std::uint32_t c = 0; c < a.z_pad; c += Ops::kLanes) {
    // Per-chunk int8 clip-event accumulators: each stage contributes at
    // most `deg` (< 128) events per lane, drained after each stage.
    V cq = zero;
    V cp = zero;
    // Stage 1: Q = P - R (saturating, re-railed), min1/min2/pos1/sign.
    V min1 = sentinel;
    V min2 = sentinel;
    V pos1 = zero;
    V signs = zero;
    for (std::uint32_t j = 0; j < a.deg; ++j) {
      const V p = Ops::load(a.p + j * a.z_pad + c);
      const V r = Ops::load(a.r + a.r_base[j] + c);
      const V sat = Ops::subs8(p, r);
      const V q = Ops::max8(sat, rail_lo);
      if constexpr (kCount) {
        const V wrap = Ops::sub8(p, r);
        const V clip = Ops::or_(Ops::xor_(Ops::cmpeq8(sat, wrap), ones),
                                Ops::cmpeq8(wrap, wrap_min));
        cq = Ops::sub8(cq, clip);
      }
      Ops::store(a.q + j * a.z_pad + c, q);
      const V mag = Ops::abs8(q);
      const V lt1 = Ops::cmpgt8(min1, mag);  // mag < min1, strict
      min2 = Ops::blend(lt1, min1, Ops::min8(min2, mag));
      min1 = Ops::blend(lt1, mag, min1);
      pos1 = Ops::blend(lt1, Ops::broadcast(static_cast<std::int8_t>(j)), pos1);
      signs = Ops::xor_(signs, Ops::cmpgt8(zero, q));
    }

    // The staircase is a pure function of min1/min2 — hoisted per chunk,
    // like the hardware's once-per-row magnitude correction.
    const V s1 = a.degenerate
                     ? zero
                     : fa_staircase<Ops>(min1, recon0, thr, delta, a.num_thr);
    const V s2 = a.degenerate
                     ? zero
                     : fa_staircase<Ops>(min2, recon0, thr, delta, a.num_thr);

    // Stage 2: R' selection + sign (no clamp — in-alphabet by
    // construction), P' = Q + R' saturating, re-railed.
    for (std::uint32_t j = 0; j < a.deg; ++j) {
      const V q = Ops::load(a.q + j * a.z_pad + c);
      V r_new;
      if (a.degenerate) {
        r_new = zero;
      } else {
        const V eq =
            Ops::cmpeq8(pos1, Ops::broadcast(static_cast<std::int8_t>(j)));
        const V mag = Ops::blend(eq, s2, s1);
        const V neg = Ops::xor_(signs, Ops::cmpgt8(zero, q));
        r_new = Ops::blend(neg, Ops::sub8(zero, mag), mag);
      }
      Ops::store(a.r + a.r_base[j] + c, r_new);
      const V sat = Ops::adds8(q, r_new);
      const V p_new = Ops::max8(sat, rail_lo);
      if constexpr (kCount) {
        const V wrap = Ops::add8(q, r_new);
        const V clip = Ops::or_(Ops::xor_(Ops::cmpeq8(sat, wrap), ones),
                                Ops::cmpeq8(wrap, wrap_min));
        cp = Ops::sub8(cp, clip);
      }
      Ops::store(a.p + j * a.z_pad + c, p_new);
    }
    if constexpr (kCount) {
      std::int8_t tmp[Ops::kLanes];
      Ops::store(tmp, cq);
      for (int f = 0; f < Ops::kLanes; ++f) clips_q += tmp[f];
      Ops::store(tmp, cp);
      for (int f = 0; f < Ops::kLanes; ++f) clips_p += tmp[f];
    }
  }
  if constexpr (kCount) {
    a.stats->q_clips += clips_q;
    a.stats->p_clips += clips_p;
    // r_clips: structurally zero — the staircase output is in-alphabet.
  }
}

// ---------------------------------------------------------------------------
// Inter-frame-batched finite-alphabet pass: frame f rides in lane f, the z
// check rows run serially, arrays are lane-major with stride F (one vector
// per row — at AVX-512 int8 width a row is one 64-byte cache line). Same
// schedule as batch_layer_pass; the per-lane staircase tables are loaded
// per pass from lane-major rows because lanes may sit at different decode
// iterations. Clip events accumulate in int8 within one check row (each
// stage <= deg < 128 events) and drain into the per-lane long long
// accumulators once per row — counted mode is a test-path concern.
// ---------------------------------------------------------------------------

template <class Ops, bool kCount>
void fa_batch_layer_pass(const SimdFaBatchLayerPass& a) {
  using V = typename Ops::Vec;
  constexpr std::uint32_t kF = Ops::kLanes;
  const V zero = Ops::zero();
  const V ones = Ops::broadcast(static_cast<std::int8_t>(-1));
  const V rail_lo = Ops::broadcast(static_cast<std::int8_t>(-127));
  const V wrap_min = Ops::broadcast(static_cast<std::int8_t>(-128));
  const V sentinel = Ops::broadcast(static_cast<std::int8_t>(INT8_MAX));
  const V active = Ops::load(a.active);
  const V r_keep = Ops::load(a.r_keep);
  const V recon0 = Ops::load(a.recon0_lanes);
  V thr[kFaMaxThresholds];
  V delta[kFaMaxThresholds];
  for (std::uint32_t t = 0; t < a.num_thr; ++t) {
    thr[t] = Ops::load(a.thr_lanes + t * kF);
    delta[t] = Ops::load(a.delta_lanes + t * kF);
  }

  for (std::uint32_t row = 0; row < a.z; ++row) {
    V cq = zero;
    V cp = zero;
    V min1 = sentinel;
    V min2 = sentinel;
    V pos1 = zero;
    V signs = zero;
    for (std::uint32_t j = 0; j < a.deg; ++j) {
      const BatchBlock& b = a.blocks[j];
      std::uint32_t rot = row + b.shift;
      if (rot >= a.z) rot -= a.z;
      // Same manual prefetch rationale as the int16 batched kernel; int8
      // rows are half the bytes, so fetch a little further ahead.
      __builtin_prefetch(
          a.p + (static_cast<std::size_t>(b.p_base + rot) + 12) * kF, 1);
      __builtin_prefetch(
          a.r + (static_cast<std::size_t>(b.r_base + row) + 12) * kF, 1);
      const V p = Ops::load(a.p + static_cast<std::size_t>(b.p_base + rot) * kF);
      const V r = Ops::and_(
          Ops::load(a.r + static_cast<std::size_t>(b.r_base + row) * kF),
          r_keep);
      const V sat = Ops::subs8(p, r);
      const V q = Ops::max8(sat, rail_lo);
      if constexpr (kCount) {
        const V wrap = Ops::sub8(p, r);
        const V clip = Ops::or_(Ops::xor_(Ops::cmpeq8(sat, wrap), ones),
                                Ops::cmpeq8(wrap, wrap_min));
        cq = Ops::sub8(cq, Ops::and_(active, clip));
      }
      Ops::store(a.q + j * kF, q);
      const V mag = Ops::abs8(q);
      const V lt1 = Ops::cmpgt8(min1, mag);
      min2 = Ops::blend(lt1, min1, Ops::min8(min2, mag));
      min1 = Ops::blend(lt1, mag, min1);
      pos1 = Ops::blend(lt1, Ops::broadcast(static_cast<std::int8_t>(j)), pos1);
      signs = Ops::xor_(signs, Ops::cmpgt8(zero, q));
    }

    const V s1 = a.degenerate
                     ? zero
                     : fa_staircase<Ops>(min1, recon0, thr, delta, a.num_thr);
    const V s2 = a.degenerate
                     ? zero
                     : fa_staircase<Ops>(min2, recon0, thr, delta, a.num_thr);

    for (std::uint32_t j = 0; j < a.deg; ++j) {
      const BatchBlock& b = a.blocks[j];
      std::uint32_t rot = row + b.shift;
      if (rot >= a.z) rot -= a.z;
      const V q = Ops::load(a.q + j * kF);
      V r_new;
      if (a.degenerate) {
        r_new = zero;
      } else {
        const V eq =
            Ops::cmpeq8(pos1, Ops::broadcast(static_cast<std::int8_t>(j)));
        const V mag = Ops::blend(eq, s2, s1);
        const V neg = Ops::xor_(signs, Ops::cmpgt8(zero, q));
        r_new = Ops::blend(neg, Ops::sub8(zero, mag), mag);
      }
      Ops::store(a.r + static_cast<std::size_t>(b.r_base + row) * kF, r_new);
      const V sat = Ops::adds8(q, r_new);
      const V p_new = Ops::max8(sat, rail_lo);
      if constexpr (kCount) {
        const V wrap = Ops::add8(q, r_new);
        const V clip = Ops::or_(Ops::xor_(Ops::cmpeq8(sat, wrap), ones),
                                Ops::cmpeq8(wrap, wrap_min));
        cp = Ops::sub8(cp, Ops::and_(active, clip));
      }
      Ops::store(a.p + static_cast<std::size_t>(b.p_base + rot) * kF, p_new);
    }
    if constexpr (kCount) {
      std::int8_t tmp[kF];
      Ops::store(tmp, cq);
      for (std::uint32_t f = 0; f < kF; ++f) a.q_clips[f] += tmp[f];
      Ops::store(tmp, cp);
      for (std::uint32_t f = 0; f < kF; ++f) a.p_clips[f] += tmp[f];
    }
  }
}

/// Per-lane syndrome contribution of one layer, int8 posteriors. Row
/// counts accumulate in int8 (capped at 64 rows per drain so the count
/// cannot reach the int8 rail) and widen into the int32 per-lane weights.
template <class Ops>
void fa_batch_syndrome_pass(const SimdFaBatchSyndromePass& a) {
  using V = typename Ops::Vec;
  constexpr std::uint32_t kF = Ops::kLanes;
  const V zero = Ops::zero();
  std::uint32_t row = 0;
  while (row < a.z) {
    const std::uint32_t chunk_end =
        row + 64 < a.z ? row + 64 : a.z;  // <= 64 rows per int8 drain
    V w = zero;
    for (; row < chunk_end; ++row) {
      V acc = zero;
      for (std::uint32_t j = 0; j < a.deg; ++j) {
        const BatchBlock& b = a.blocks[j];
        std::uint32_t rot = row + b.shift;
        if (rot >= a.z) rot -= a.z;
        __builtin_prefetch(
            a.p + (static_cast<std::size_t>(b.p_base + rot) + 12) * kF, 0);
        const V p =
            Ops::load(a.p + static_cast<std::size_t>(b.p_base + rot) * kF);
        acc = Ops::xor_(acc, Ops::cmpgt8(zero, p));
      }
      w = Ops::sub8(w, acc);  // acc all-ones exactly in unsatisfied lanes
    }
    std::int8_t tmp[kF];
    Ops::store(tmp, w);
    for (std::uint32_t f = 0; f < kF; ++f) a.weight[f] += tmp[f];
  }
}

}  // namespace ldpc::simd::detail
