#include "core/simd/simd_fa_layered.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "fault/fault_injector.hpp"
#include "util/check.hpp"

namespace ldpc {

namespace {

/// Int8 stride granularity: at least 16 (one layout covers the 16-lane
/// tiers), or the tier's own int8 lane count when wider (AVX2 32,
/// AVX-512 64 — z = 96 pads to 128 for the 64-lane tier).
constexpr std::uint32_t pad_for8(std::uint32_t z, simd::SimdTier tier) {
  const std::uint32_t lanes = std::max(16U, simd::tier_lanes8(tier));
  return (z + lanes - 1) & ~(lanes - 1);
}

}  // namespace

SimdFaLayeredDecoder::SimdFaLayeredDecoder(const QCLdpcCode& code,
                                           DecoderOptions options,
                                           int msg_bits,
                                           float design_ebn0_db,
                                           std::optional<simd::SimdTier> tier)
    : code_(code),
      options_(options),
      tier_(tier.value_or(simd::best_tier())),
      pass_(simd::fa_layer_pass_for(tier_)),
      quantize_(simd::fa_quantize_pass_for(tier_)) {
  // The scalar twin builds (and owns) the MIM tables and runs the same
  // option validation.
  scalar_ = std::make_unique<LayeredMinSumFaDecoder>(code, options, msg_bits,
                                                     design_ebn0_db);
  const FaTableSet& ts = scalar_->tables();
  num_thr_ = static_cast<std::uint32_t>(ts.levels - 1);
  iter_tables_.reserve(ts.tables.size());
  for (const FaCnTable& t : ts.tables) {
    IterTable it{};
    it.recon0 = t.recon[0];
    for (std::uint32_t k = 0; k < num_thr_; ++k) {
      it.thr[k] = t.thr[k];
      // Deltas are nonnegative (recon is nondecreasing) and every prefix
      // sum recon0 + delta[0..k] = recon[k+1] <= 127: the kernel's
      // wrapping add8 staircase cannot overflow.
      it.delta[k] = static_cast<std::int8_t>(t.recon[k + 1] - t.recon[k]);
    }
    iter_tables_.push_back(it);
  }
  std::size_t max_deg = 0;
  for (const auto& layer : code_.layers())
    max_deg = std::max(max_deg, layer.size());
  // pos1 lanes hold the block index as an int8: delegate the (absurd)
  // degree >= 128 case to the scalar twin instead of mis-decoding.
  force_scalar_ = max_deg >= 128;
  init_geometry();
}

void SimdFaLayeredDecoder::init_geometry() {
  z_ = static_cast<std::uint32_t>(code_.z());
  z_pad_ = pad_for8(z_, tier_);
  std::size_t max_deg = 0;
  gather_.reserve(code_.layers().size());
  r_base_.reserve(code_.layers().size());
  for (const auto& layer : code_.layers()) {
    std::vector<GatherBlock> gs;
    std::vector<std::uint32_t> rb;
    gs.reserve(layer.size());
    rb.reserve(layer.size());
    for (const auto& blk : layer) {
      gs.push_back({blk.block_col * z_, blk.shift % z_});
      rb.push_back(blk.r_slot * z_pad_);
    }
    max_deg = std::max(max_deg, layer.size());
    gather_.push_back(std::move(gs));
    r_base_.push_back(std::move(rb));
  }
  posterior8_.resize(code_.n());
  r8_.resize(code_.base().nonzero_blocks() * static_cast<std::size_t>(z_pad_));
  p_scratch_.resize(max_deg * z_pad_);
  q_scratch_.resize(max_deg * z_pad_);
}

bool SimdFaLayeredDecoder::must_use_scalar() const {
  return force_scalar_ ||
         (options_.fault_injector && options_.fault_injector->enabled());
}

SaturationStats SimdFaLayeredDecoder::saturation() const {
  return last_used_scalar_ ? scalar_->saturation() : saturation_;
}

void SimdFaLayeredDecoder::set_cancel_token(const CancelToken* token) {
  cancel_ = token;
  scalar_->set_cancel_token(token);
}

DecodeResult SimdFaLayeredDecoder::decode(std::span<const float> llr) {
  LDPC_CHECK(llr.size() == code_.n());
  if (must_use_scalar()) {
    last_used_scalar_ = true;
    DecodeResult result = scalar_->decode(llr);
    result.simd_fallback = force_scalar_ ? SimdFallback::kWideFormat
                                         : SimdFallback::kFaultInjector;
    last_fallback_ = result.simd_fallback;
    return result;
  }
  last_used_scalar_ = false;
  last_fallback_ = SimdFallback::kNone;
  saturation_.quantizer_clips = 0;
  const FixedFormat posterior = scalar_->tables().posterior;
  if (options_.count_saturation) {
    for (std::size_t v = 0; v < llr.size(); ++v)
      posterior8_[v] = static_cast<std::int8_t>(
          fa_quantize(posterior, llr[v], saturation_.quantizer_clips));
  } else {
    // The tier's vector quantize kernel writes the contiguous posterior
    // directly; bit-identical to fa_quantize (see SimdFaQuantizePass).
    simd::SimdFaQuantizePass qp;
    qp.llr = llr.data();
    qp.out = posterior8_.data();
    qp.n = llr.size();
    qp.fscale = static_cast<float>(1 << posterior.frac_bits);
    qp.fhi = static_cast<float>(posterior.max_code()) + 1.0F;
    qp.flo = static_cast<float>(posterior.min_code()) - 1.0F;
    quantize_(qp);
  }
  return run();
}

DecodeResult SimdFaLayeredDecoder::decode_quantized(
    std::span<const std::int32_t> channel_codes) {
  LDPC_CHECK(channel_codes.size() == code_.n());
  bool lanes_ok = !must_use_scalar();
  if (lanes_ok) {
    // The lane kernel's invariants hold only on the symmetric rail; the
    // scalar twin accepts arbitrary int32 codes.
    for (const std::int32_t c : channel_codes) {
      if (c < -kFaRail || c > kFaRail) {
        lanes_ok = false;
        break;
      }
    }
  }
  if (!lanes_ok) {
    last_used_scalar_ = true;
    DecodeResult result = scalar_->decode_quantized(channel_codes);
    result.simd_fallback = must_use_scalar()
                               ? (force_scalar_ ? SimdFallback::kWideFormat
                                                : SimdFallback::kFaultInjector)
                               : SimdFallback::kOutOfRailInput;
    last_fallback_ = result.simd_fallback;
    return result;
  }
  last_used_scalar_ = false;
  last_fallback_ = SimdFallback::kNone;
  for (std::size_t v = 0; v < channel_codes.size(); ++v)
    posterior8_[v] = static_cast<std::int8_t>(channel_codes[v]);
  return run();
}

DecodeResult SimdFaLayeredDecoder::run() {
  std::fill(r8_.begin(), r8_.end(), std::int8_t{0});
  saturation_.datapath_clips = 0;
  saturation_.q_clips = 0;
  saturation_.r_clips = 0;  // structurally zero for this family
  saturation_.p_clips = 0;
  saturation_.degenerate_checks = 0;
  WatchdogState watchdog(options_.watchdog);
  bool watchdog_fired = false;
  bool cancelled = false;

  DecodeResult result;
  result.hard_bits.resize(code_.n());
  BitVec previous_hard;
  if (options_.observer) previous_hard.resize(code_.n());

  simd::SimdFaLayerPass pass;
  pass.p = p_scratch_.data();
  pass.q = q_scratch_.data();
  pass.r = r8_.data();
  pass.z_pad = z_pad_;
  pass.num_thr = num_thr_;
  pass.count_clips = options_.count_saturation;
  pass.stats = &saturation_;

  for (std::size_t iter = 1; iter <= options_.max_iterations; ++iter) {
    result.iterations = iter;
    const std::size_t t_idx =
        iter - 1 < iter_tables_.size() ? iter - 1 : iter_tables_.size() - 1;
    const IterTable& it = iter_tables_[t_idx];
    pass.thr = it.thr;
    pass.delta = it.delta;
    pass.recon0 = it.recon0;

    for (std::size_t l = 0; l < gather_.size(); ++l) {
      if (cancel_ && cancel_->expired()) {
        cancelled = true;
        break;
      }
      const auto& gs = gather_[l];
      const auto deg = static_cast<std::uint32_t>(gs.size());
      if (deg == 0) continue;

      // Barrel-shift gather with zeroed padding lanes.
      for (std::uint32_t j = 0; j < deg; ++j) {
        const std::int8_t* src = posterior8_.data() + gs[j].p_base;
        std::int8_t* dst = p_scratch_.data() + j * z_pad_;
        const std::uint32_t shift = gs[j].shift;
        std::memcpy(dst, src + shift, z_ - shift);
        std::memcpy(dst + (z_ - shift), src, shift);
        std::memset(dst + z_, 0, z_pad_ - z_);
      }

      pass.r_base = r_base_[l].data();
      pass.deg = deg;
      pass.degenerate = deg < 2;
      pass_(pass);
      if (deg < 2) saturation_.degenerate_checks += z_;

      // Restore the all-zero-pad R invariant: the pass wrote +recon0 into
      // the pad lanes of every touched slot (zero rows have positive sign
      // product); zero them so the next layer that reads these slots sees
      // clip-free padding again.
      if (z_pad_ != z_) {
        for (std::uint32_t j = 0; j < deg; ++j)
          std::memset(r8_.data() + r_base_[l][j] + z_, 0, z_pad_ - z_);
      }

      // Scatter: inverse rotation back into natural variable order.
      for (std::uint32_t j = 0; j < deg; ++j) {
        const std::int8_t* src = p_scratch_.data() + j * z_pad_;
        std::int8_t* dst = posterior8_.data() + gs[j].p_base;
        const std::uint32_t shift = gs[j].shift;
        std::memcpy(dst + shift, src, z_ - shift);
        std::memcpy(dst, src + (z_ - shift), shift);
      }
    }

    for (std::size_t v = 0; v < code_.n(); ++v)
      result.hard_bits.set(v, posterior8_[v] < 0);
    const bool want_weight =
        static_cast<bool>(options_.observer) || options_.watchdog.enabled();
    std::size_t weight = 0;
    if (want_weight) weight = code_.syndrome_weight(result.hard_bits);
    if (options_.observer) {
      IterationSnapshot snap;
      snap.iteration = iter;
      snap.syndrome_weight = weight;
      double sum = 0.0;
      const FixedFormat posterior = scalar_->tables().posterior;
      for (const std::int8_t p : posterior8_)
        sum += std::abs(static_cast<double>(posterior.dequantize(p)));
      snap.mean_abs_llr = sum / static_cast<double>(code_.n());
      snap.flipped_bits = result.hard_bits.hamming_distance(previous_hard);
      snap.saturation_clips =
          saturation_.q_clips + saturation_.r_clips + saturation_.p_clips;
      previous_hard = result.hard_bits;
      options_.observer(snap);
    }
    if (options_.early_termination &&
        (want_weight ? weight == 0 : code_.parity_ok(result.hard_bits))) {
      result.converged = true;
      break;
    }
    if (cancelled) break;
    if (options_.watchdog.enabled() && watchdog.should_abort(weight)) {
      watchdog_fired = true;
      break;
    }
  }

  if (!result.converged) result.converged = code_.parity_ok(result.hard_bits);
  saturation_.datapath_clips =
      saturation_.q_clips + saturation_.r_clips + saturation_.p_clips;
  result.status =
      classify_exit(result.converged, watchdog_fired, 0, cancelled);
  return result;
}

}  // namespace ldpc
