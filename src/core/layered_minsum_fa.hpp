// Finite-alphabet layered min-sum decoder — the scalar reference for the
// fa2/fa3/fa4 low-resolution family (see core/fa_tables.hpp for the table
// construction and the paper trail).
//
// Identical layered schedule and stage-1/stage-2 split as the fixed-point
// decoder (layered_minsum_fixed.hpp), with two datapath changes:
//
//   * the check-node output magnitude is a staircase lookup into the
//     per-iteration MIM table instead of the 0.75 shift-add — the scale
//     correction is subsumed by the table, so DecoderOptions::scale is
//     ignored;
//   * all values live on the symmetric int8 grid [-127, +127] (kFaRail),
//     so the int8 SIMD kernels can abs/negate any representable value.
//
// R memory stores the *reconstructed* int8 message. Hardware would store
// only the (msg_bits - 1)-bit magnitude index plus sign; the power model
// (src/power/message_memory.hpp) accounts SRAM bits at that width.
//
// The staircase output is always a table entry, hence always in-alphabet:
// the R' clamp of the fixed-point kernel is structurally dead here and
// SaturationStats::r_clips is identically zero for this family (asserted
// by tests, mirrored by the SIMD kernels).
#pragma once

#include <cstdint>
#include <vector>

#include "codes/qc_code.hpp"
#include "core/decoder.hpp"
#include "core/fa_tables.hpp"
#include "core/layered_minsum_fixed.hpp"

namespace ldpc {

/// Per-row arithmetic of the finite-alphabet layered update. Reuses the
/// fixed-point kernel's CheckState (min1/min2/pos1/sign accumulation is
/// unchanged); only the message reconstruction and the rail differ.
class FaRowKernel {
 public:
  explicit FaRowKernel(const FaTableSet* tables) : tables_(tables) {}

  using CheckState = LayerRowKernel::CheckState;

  /// See LayerRowKernel::track_saturation — same contract. Only q_clips and
  /// p_clips can fire; r_clips is structurally zero for this family.
  void track_saturation(SaturationStats* stats) { stats_ = stats; }
  void track_degenerate(long long* counter) { degenerate_ = counter; }

  /// Q = P - R saturating at the symmetric +-kFaRail rails.
  std::int32_t compute_q(std::int32_t p, std::int32_t r) const {
    const std::int32_t diff = p - r;
    const std::int32_t v =
        diff > kFaRail ? kFaRail : (diff < -kFaRail ? -kFaRail : diff);
    if (stats_ && v != diff) ++stats_->q_clips;
    return v;
  }

  /// R' for block `pos`: staircase reconstruction of the extrinsic min with
  /// the row's sign product. Always in-alphabet — no clamp, no r_clips.
  std::int32_t compute_r_new(const FaCnTable& table, const CheckState& st,
                             std::int32_t q, std::uint32_t pos) const {
    if (st.count < 2) {
      if (degenerate_) ++(*degenerate_);
      return 0;
    }
    const std::int32_t mag =
        tables_->reconstruct(table, (pos == st.pos1) ? st.min2 : st.min1);
    return (st.sign_product ^ (q < 0)) ? -mag : mag;
  }

  /// P' = Q + R' saturating at the symmetric rails.
  std::int32_t compute_p_new(std::int32_t q, std::int32_t r_new) const {
    const std::int32_t sum = q + r_new;
    const std::int32_t v =
        sum > kFaRail ? kFaRail : (sum < -kFaRail ? -kFaRail : sum);
    if (stats_ && v != sum) ++stats_->p_clips;
    return v;
  }

 private:
  const FaTableSet* tables_;          ///< non-owning, outlives the kernel
  SaturationStats* stats_ = nullptr;
  long long* degenerate_ = nullptr;
};

class LayeredMinSumFaDecoder final : public Decoder {
 public:
  /// Builds the per-iteration MIM tables for `code` at construction
  /// (deterministic, a few ms). `msg_bits` in {2, 3, 4}.
  LayeredMinSumFaDecoder(const QCLdpcCode& code, DecoderOptions options,
                         int msg_bits, float design_ebn0_db = 2.0F);

  DecodeResult decode(std::span<const float> llr) override;
  std::size_t n() const override { return code_.n(); }
  std::size_t k() const override { return code_.k(); }
  std::string name() const override {
    return "layered-minsum-" + tables_.name();
  }
  std::string message_format() const override { return tables_.name(); }

  /// Posterior grid (q8.2); messages are `tables().msg_bits` wide.
  FixedFormat format() const { return tables_.posterior; }
  const FaTableSet& tables() const { return tables_; }

  /// Decode from already-quantized channel codes (symmetric rails, i.e.
  /// every code in [-kFaRail, kFaRail]); drives the SIMD equivalence tests.
  DecodeResult decode_quantized(std::span<const std::int32_t> channel_codes);

  const std::vector<std::int32_t>& posteriors() const { return posterior_; }
  SaturationStats saturation() const override { return saturation_; }
  void set_cancel_token(const CancelToken* token) override { cancel_ = token; }

 private:
  void init_scratch();

  const QCLdpcCode& code_;
  DecoderOptions options_;
  FaTableSet tables_;
  FaRowKernel kernel_;
  const CancelToken* cancel_ = nullptr;  ///< non-owning, may be null
  std::vector<std::int32_t> posterior_;  ///< P memory (8-bit codes)
  std::vector<std::int32_t> check_msg_;  ///< R memory, r_slot * z + row
  std::vector<std::int32_t> quant_scratch_;
  std::vector<std::int32_t> q_row_;
  SaturationStats saturation_;
};

}  // namespace ldpc
