#include "core/layered_minsum_float.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ldpc {

LayeredMinSumFloatDecoder::LayeredMinSumFloatDecoder(const QCLdpcCode& code,
                                                     DecoderOptions options)
    : code_(code), options_(options) {
  LDPC_CHECK(options_.max_iterations > 0);
  posterior_.resize(code_.n());
  check_msg_.resize(code_.base().nonzero_blocks() * static_cast<std::size_t>(code_.z()));
}

DecodeResult LayeredMinSumFloatDecoder::decode(std::span<const float> llr) {
  LDPC_CHECK(llr.size() == code_.n());
  const auto z = static_cast<std::size_t>(code_.z());

  // Initialization (Algorithm 1): R = 0, P = channel LLR.
  std::copy(llr.begin(), llr.end(), posterior_.begin());
  std::fill(check_msg_.begin(), check_msg_.end(), 0.0F);

  DecodeResult result;
  result.hard_bits.resize(code_.n());
  BitVec previous_hard;
  if (options_.observer) previous_hard.resize(code_.n());

  std::vector<float> q;  // Q_mn for the row being processed

  for (std::size_t iter = 1; iter <= options_.max_iterations; ++iter) {
    result.iterations = iter;

    for (const auto& layer : code_.layers()) {
      const std::size_t deg = layer.size();
      q.resize(deg);
      for (std::size_t row = 0; row < z; ++row) {
        // Stage 1: read & pre-process — Q = P - R, track min1/min2/sign.
        float min1 = std::numeric_limits<float>::infinity();
        float min2 = std::numeric_limits<float>::infinity();
        std::size_t pos1 = 0;
        bool sign_product = false;
        for (std::size_t j = 0; j < deg; ++j) {
          const auto& blk = layer[j];
          const std::size_t var = blk.block_col * z + (row + blk.shift) % z;
          const float qv = posterior_[var] - check_msg_[blk.r_slot * z + row];
          q[j] = qv;
          const float mag = std::fabs(qv);
          sign_product ^= (qv < 0.0F);
          if (mag < min1) {
            min2 = min1;
            min1 = mag;
            pos1 = j;
          } else if (mag < min2) {
            min2 = mag;
          }
        }
        // Stage 2: decode & write back — R' = scale * prod(sign) * min,
        // P' = Q + R'.
        for (std::size_t j = 0; j < deg; ++j) {
          const auto& blk = layer[j];
          const std::size_t var = blk.block_col * z + (row + blk.shift) % z;
          const float mag = options_.scale * ((j == pos1) ? min2 : min1);
          const bool negative = sign_product ^ (q[j] < 0.0F);
          const float r_new = negative ? -mag : mag;
          check_msg_[blk.r_slot * z + row] = r_new;
          posterior_[var] = q[j] + r_new;
        }
      }
    }

    for (std::size_t v = 0; v < code_.n(); ++v)
      result.hard_bits.set(v, posterior_[v] < 0.0F);
    if (options_.observer) {
      IterationSnapshot snap;
      snap.iteration = iter;
      snap.syndrome_weight = code_.syndrome_weight(result.hard_bits);
      double sum = 0.0;
      for (const float p : posterior_) sum += std::fabs(static_cast<double>(p));
      snap.mean_abs_llr = sum / static_cast<double>(code_.n());
      snap.flipped_bits = result.hard_bits.hamming_distance(previous_hard);
      previous_hard = result.hard_bits;
      options_.observer(snap);
    }
    if (options_.early_termination && code_.parity_ok(result.hard_bits)) {
      result.converged = true;
      result.status = DecodeStatus::kConverged;
      return result;
    }
  }

  result.converged = code_.parity_ok(result.hard_bits);
  result.status = classify_exit(result.converged, /*watchdog_fired=*/false, 0);
  return result;
}

}  // namespace ldpc
