// Common decoder interface.
//
// Every decoder in this library — floating-point baselines, the paper's
// fixed-point layered scaled-min-sum, and the two cycle-accurate hardware
// architectures — consumes channel LLRs (positive = bit 0 more likely, the
// convention of Algorithm 1's  Pn = 2 yn / sigma^2  with BPSK 0 -> +1) and
// produces hard decisions plus convergence metadata.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <span>
#include <string>

#include "util/bitvec.hpp"

namespace ldpc {

class FaultInjector;  // fault/fault_injector.hpp

/// How a decode ended. `kConverged` is the only state in which the output
/// is a codeword; every other state flags the frame as unreliable instead
/// of silently emitting garbage (graceful degradation).
enum class DecodeStatus {
  kConverged,      ///< H * hard_bits == 0 at exit
  kMaxIterations,  ///< iteration budget exhausted, parity still failing
  kWatchdogAbort,  ///< watchdog detected a non-convergent/oscillating decode
  kFaultDetected,  ///< parity recheck failed on a decode that saw injected
                   ///< faults — the corruption was caught at the output
  kDeadlineExpired,  ///< deadline passed while queued, or a cooperative
                     ///< cancellation cut the decode short mid-flight
  kShedOverload,   ///< evicted from a full queue under OverloadPolicy::
                   ///< kShedOldest before any decoder touched it
  kHarqExhausted,  ///< HARQ retransmission budget exhausted: the retry
                   ///< supervisor wanted more redundancy for this frame but
                   ///< the link had none left (src/harq/). Assigned by the
                   ///< supervisor, never by a decoder.
};

/// Number of DecodeStatus values — sizes the status histograms.
inline constexpr std::size_t kNumDecodeStatuses = 7;

inline const char* to_string(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kConverged:       return "converged";
    case DecodeStatus::kMaxIterations:   return "max-iters";
    case DecodeStatus::kWatchdogAbort:   return "watchdog-abort";
    case DecodeStatus::kFaultDetected:   return "fault-detected";
    case DecodeStatus::kDeadlineExpired: return "deadline-expired";
    case DecodeStatus::kShedOverload:    return "shed-overload";
    case DecodeStatus::kHarqExhausted:   return "harq-exhausted";
  }
  return "?";
}

/// Why a SIMD decoder delegated a decode to its scalar twin instead of the
/// lane kernel. kNone means the vector path ran. Recorded in DecodeResult
/// so a benchmark or serving config silently riding the (correct but slow)
/// scalar path is externally visible instead of a mystery perf cliff.
enum class SimdFallback : std::uint8_t {
  kNone,            ///< lane kernel executed
  kWideFormat,      ///< format (or offset) outside the int16 lane envelope
  kFaultInjector,   ///< active fault campaign: corruption order is scalar
  kOutOfRailInput,  ///< quantized entry point saw out-of-rail codes
  kObserver,        ///< per-iteration observer needs single-frame cadence
};

inline const char* to_string(SimdFallback f) {
  switch (f) {
    case SimdFallback::kNone:           return "none";
    case SimdFallback::kWideFormat:     return "wide-format";
    case SimdFallback::kFaultInjector:  return "fault-injector";
    case SimdFallback::kOutOfRailInput: return "out-of-rail-input";
    case SimdFallback::kObserver:       return "observer";
  }
  return "?";
}

struct DecodeResult {
  BitVec hard_bits;            ///< n hard decisions (1 = bit value 1)
  std::size_t iterations = 0;  ///< full iterations actually executed
  bool converged = false;      ///< true iff H * hard_bits == 0 at exit
  DecodeStatus status = DecodeStatus::kMaxIterations;
  std::size_t faults_injected = 0;  ///< upsets landed during this decode
  /// Set by the SIMD decoders when the decode ran on the scalar twin
  /// instead of the lane kernel; kNone everywhere else.
  SimdFallback simd_fallback = SimdFallback::kNone;
};

/// Dynamic-range accounting for one decode. Fixed-point decoders fill this
/// in (when DecoderOptions::count_saturation is set); floating-point
/// decoders report zeros. Aggregated per worker by the runtime batch engine.
/// Clip events are attributed to the clamp site that produced them so the
/// static range verifier (src/analysis/range_verify.hpp) can be
/// cross-checked per site: a site it proves unsaturable must show a zero
/// counter on every decode. `datapath_clips` stays the aggregate
/// (q + r + p) for callers that only care about "did anything clip".
struct SaturationStats {
  long long quantizer_clips = 0;  ///< channel LLRs clipped at the rails
  long long datapath_clips = 0;   ///< q_clips + r_clips + p_clips
  long long q_clips = 0;          ///< stage-1 Q = P - R clamp
  long long r_clips = 0;          ///< stage-2 R' clamp after scaling
  long long p_clips = 0;          ///< stage-2 P' = Q + R' clamp (and the
                                  ///< flooding VNU's posterior-total clamp)
  /// Check rows with degree < 2 encountered by the layered kernel (R' has no
  /// extrinsic input and is forced to 0); counted once per row per layer
  /// pass regardless of count_saturation.
  long long degenerate_checks = 0;
};

/// Output-side parity recheck: classify a finished decode. Every decoder
/// funnels its exit through this so the status taxonomy stays consistent.
/// `cancelled` marks a decode cut short by a CancelToken — it outranks every
/// failure cause except an actual converged output (a decode that happened
/// to satisfy parity before bailing is still a codeword).
inline DecodeStatus classify_exit(bool parity_ok, bool watchdog_fired,
                                  std::size_t faults_injected,
                                  bool cancelled = false) {
  if (parity_ok) return DecodeStatus::kConverged;
  if (cancelled) return DecodeStatus::kDeadlineExpired;
  if (watchdog_fired) return DecodeStatus::kWatchdogAbort;
  return faults_injected > 0 ? DecodeStatus::kFaultDetected
                             : DecodeStatus::kMaxIterations;
}

/// Cooperative cancellation for long decodes. A serving layer arms the token
/// (manually or with a deadline) and the decoder polls `expired()` at layer
/// boundaries, bailing out with DecodeStatus::kDeadlineExpired instead of
/// burning the rest of its iteration budget on a frame nobody is waiting
/// for. The flag is an atomic so any thread may cancel; the deadline is
/// written only between decodes by the owning thread.
class CancelToken {
 public:
  /// Request cancellation now (thread-safe, sticky until clear()).
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arm a wall-clock deadline; `expired()` turns true once it passes.
  void arm_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }

  /// Re-arm for the next decode: clears both the flag and the deadline.
  void clear() {
    cancelled_.store(false, std::memory_order_relaxed);
    has_deadline_ = false;
  }

  /// The decoder-side poll: true once cancelled or past the deadline.
  bool expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
};

/// One frame of a block decode: the channel LLRs plus an optional per-frame
/// cancellation token (non-owning). Block decoding is how the batch engine
/// keeps every SIMD lane full regardless of z — frames ride in lanes.
struct BlockFrame {
  std::span<const float> llr;
  const CancelToken* cancel = nullptr;
};

class Decoder {
 public:
  virtual ~Decoder() = default;

  /// Decode one frame of n channel LLRs.
  virtual DecodeResult decode(std::span<const float> llr) = 0;

  /// Codeword length the decoder is configured for.
  virtual std::size_t n() const = 0;

  /// Information bits per frame (n - m for the QC codes). 0 when the
  /// decoder cannot say — consumers must treat 0 as "unknown", not as a
  /// rate-0 code (the batch engine skips info-bit accounting then).
  virtual std::size_t k() const { return 0; }

  /// Short identifier used in benchmark tables, e.g. "layered-msf-q8".
  virtual std::string name() const = 0;

  /// Message-format identifier of the datapath: "float" (default), a
  /// fixed-point format name like "q8.2"/"q6.1", a finite-alphabet family
  /// name like "fa4", or "bit" for hard-decision decoders. Used by the
  /// factory tests and benchmark artifacts to key resolution studies.
  virtual std::string message_format() const { return "float"; }

  /// Preferred number of frames per decode_block call — the SIMD lane
  /// count for inter-frame-batched decoders, 1 for everyone else. Callers
  /// may pass any frame count; this is the size at which lanes are full.
  virtual std::size_t block_width() const { return 1; }

  /// Decode a block of frames with per-frame cancellation, filling
  /// `results[i]` / `saturation[i]` for frames[i]. The spans must all have
  /// the same length. Default: sequential single-frame decodes (so every
  /// decoder is block-callable); inter-frame-batched decoders override
  /// this with a lanes-are-frames kernel. Any cancel token previously
  /// attached via set_cancel_token is detached on return — the per-frame
  /// tokens replace it for the duration of the block.
  virtual void decode_block(std::span<const BlockFrame> frames,
                            std::span<DecodeResult> results,
                            std::span<SaturationStats> saturation) {
    for (std::size_t i = 0; i < frames.size(); ++i) {
      set_cancel_token(frames[i].cancel);
      results[i] = decode(frames[i].llr);
      saturation[i] = this->saturation();
    }
    set_cancel_token(nullptr);
  }

  /// Saturation accounting for the most recent decode. Default: all zeros
  /// (decoders without a fixed-point datapath have nothing to clip).
  virtual SaturationStats saturation() const { return {}; }

  /// Attach a cooperative cancellation token (non-owning; nullptr detaches).
  /// Decoders that support mid-decode bail-out poll it between layers /
  /// iterations; the default implementation ignores it, which is always
  /// safe — cancellation is best-effort by design.
  virtual void set_cancel_token(const CancelToken* token) { (void)token; }
};

/// Per-iteration convergence snapshot delivered to an IterationObserver.
struct IterationSnapshot {
  std::size_t iteration = 0;        ///< 1-based
  std::size_t syndrome_weight = 0;  ///< unsatisfied checks after this iter
  double mean_abs_llr = 0.0;        ///< mean |posterior| (LLR units)
  std::size_t flipped_bits = 0;     ///< hard decisions changed vs prev iter
  long long saturation_clips = 0;   ///< cumulative clip events this decode
                                    ///< (0 unless count_saturation is set)
};

/// Called after every completed iteration (before early termination exits).
/// Observation only — must not mutate decoder state.
using IterationObserver = std::function<void(const IterationSnapshot&)>;

/// Iteration watchdog: aborts decodes whose syndrome weight has stopped
/// improving (non-convergent or oscillating frames) instead of burning the
/// full iteration budget and emitting garbage. Disabled by default —
/// enabling it costs one syndrome evaluation per iteration.
struct WatchdogOptions {
  /// Abort after this many consecutive iterations without a new minimum
  /// syndrome weight. 0 disables the watchdog.
  std::size_t stall_window = 0;

  bool enabled() const { return stall_window > 0; }
};

/// Tracks the watchdog's view of one decode. Value-type helper so every
/// decoder runs the identical policy.
class WatchdogState {
 public:
  explicit WatchdogState(const WatchdogOptions& options)
      : window_(options.stall_window) {}

  /// Feed this iteration's syndrome weight; returns true if the decode
  /// should be aborted now.
  bool should_abort(std::size_t syndrome_weight) {
    if (window_ == 0) return false;
    if (syndrome_weight < best_weight_) {
      best_weight_ = syndrome_weight;
      stalled_ = 0;
      return false;
    }
    return ++stalled_ >= window_;
  }

  bool fired() const { return window_ != 0 && stalled_ >= window_; }

 private:
  std::size_t window_;
  std::size_t best_weight_ = static_cast<std::size_t>(-1);
  std::size_t stalled_ = 0;
};

/// Options shared by the iterative decoders.
struct DecoderOptions {
  std::size_t max_iterations = 10;  ///< the paper's Table II uses 10
  bool early_termination = true;    ///< stop when all parity checks pass
  float scale = 0.75F;              ///< min-sum normalization factor
  IterationObserver observer;       ///< optional convergence probe
  WatchdogOptions watchdog;         ///< non-convergence abort (off by default)
  /// Count quantizer/datapath saturation events (first symptom of degraded
  /// operation); surfaced via IterationSnapshot and decoder-specific stats.
  bool count_saturation = false;
  /// Optional fault injector (non-owning, off = nullptr = bit-identical to
  /// the seed path). Honored by the fixed-point layered decoder and the
  /// cycle-accurate architecture simulator; see src/fault/.
  FaultInjector* fault_injector = nullptr;
};

}  // namespace ldpc
