// Common decoder interface.
//
// Every decoder in this library — floating-point baselines, the paper's
// fixed-point layered scaled-min-sum, and the two cycle-accurate hardware
// architectures — consumes channel LLRs (positive = bit 0 more likely, the
// convention of Algorithm 1's  Pn = 2 yn / sigma^2  with BPSK 0 -> +1) and
// produces hard decisions plus convergence metadata.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>

#include "util/bitvec.hpp"

namespace ldpc {

struct DecodeResult {
  BitVec hard_bits;            ///< n hard decisions (1 = bit value 1)
  std::size_t iterations = 0;  ///< full iterations actually executed
  bool converged = false;      ///< true iff H * hard_bits == 0 at exit
};

class Decoder {
 public:
  virtual ~Decoder() = default;

  /// Decode one frame of n channel LLRs.
  virtual DecodeResult decode(std::span<const float> llr) = 0;

  /// Codeword length the decoder is configured for.
  virtual std::size_t n() const = 0;

  /// Short identifier used in benchmark tables, e.g. "layered-msf-q8".
  virtual std::string name() const = 0;
};

/// Per-iteration convergence snapshot delivered to an IterationObserver.
struct IterationSnapshot {
  std::size_t iteration = 0;        ///< 1-based
  std::size_t syndrome_weight = 0;  ///< unsatisfied checks after this iter
  double mean_abs_llr = 0.0;        ///< mean |posterior| (LLR units)
  std::size_t flipped_bits = 0;     ///< hard decisions changed vs prev iter
};

/// Called after every completed iteration (before early termination exits).
/// Observation only — must not mutate decoder state.
using IterationObserver = std::function<void(const IterationSnapshot&)>;

/// Options shared by the iterative decoders.
struct DecoderOptions {
  std::size_t max_iterations = 10;  ///< the paper's Table II uses 10
  bool early_termination = true;    ///< stop when all parity checks pass
  float scale = 0.75F;              ///< min-sum normalization factor
  IterationObserver observer;       ///< optional convergence probe
};

}  // namespace ldpc
