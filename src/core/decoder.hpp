// Common decoder interface.
//
// Every decoder in this library — floating-point baselines, the paper's
// fixed-point layered scaled-min-sum, and the two cycle-accurate hardware
// architectures — consumes channel LLRs (positive = bit 0 more likely, the
// convention of Algorithm 1's  Pn = 2 yn / sigma^2  with BPSK 0 -> +1) and
// produces hard decisions plus convergence metadata.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>

#include "util/bitvec.hpp"

namespace ldpc {

class FaultInjector;  // fault/fault_injector.hpp

/// How a decode ended. `kConverged` is the only state in which the output
/// is a codeword; every other state flags the frame as unreliable instead
/// of silently emitting garbage (graceful degradation).
enum class DecodeStatus {
  kConverged,      ///< H * hard_bits == 0 at exit
  kMaxIterations,  ///< iteration budget exhausted, parity still failing
  kWatchdogAbort,  ///< watchdog detected a non-convergent/oscillating decode
  kFaultDetected,  ///< parity recheck failed on a decode that saw injected
                   ///< faults — the corruption was caught at the output
};

inline const char* to_string(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kConverged:     return "converged";
    case DecodeStatus::kMaxIterations: return "max-iters";
    case DecodeStatus::kWatchdogAbort: return "watchdog-abort";
    case DecodeStatus::kFaultDetected: return "fault-detected";
  }
  return "?";
}

struct DecodeResult {
  BitVec hard_bits;            ///< n hard decisions (1 = bit value 1)
  std::size_t iterations = 0;  ///< full iterations actually executed
  bool converged = false;      ///< true iff H * hard_bits == 0 at exit
  DecodeStatus status = DecodeStatus::kMaxIterations;
  std::size_t faults_injected = 0;  ///< upsets landed during this decode
};

/// Dynamic-range accounting for one decode. Fixed-point decoders fill this
/// in (when DecoderOptions::count_saturation is set); floating-point
/// decoders report zeros. Aggregated per worker by the runtime batch engine.
struct SaturationStats {
  long long quantizer_clips = 0;  ///< channel LLRs clipped at the rails
  long long datapath_clips = 0;   ///< Q/R'/P' adder saturations
  /// Check rows with degree < 2 encountered by the layered kernel (R' has no
  /// extrinsic input and is forced to 0); counted once per row per layer
  /// pass regardless of count_saturation.
  long long degenerate_checks = 0;
};

/// Output-side parity recheck: classify a finished decode. Every decoder
/// funnels its exit through this so the status taxonomy stays consistent.
inline DecodeStatus classify_exit(bool parity_ok, bool watchdog_fired,
                                  std::size_t faults_injected) {
  if (parity_ok) return DecodeStatus::kConverged;
  if (watchdog_fired) return DecodeStatus::kWatchdogAbort;
  return faults_injected > 0 ? DecodeStatus::kFaultDetected
                             : DecodeStatus::kMaxIterations;
}

class Decoder {
 public:
  virtual ~Decoder() = default;

  /// Decode one frame of n channel LLRs.
  virtual DecodeResult decode(std::span<const float> llr) = 0;

  /// Codeword length the decoder is configured for.
  virtual std::size_t n() const = 0;

  /// Short identifier used in benchmark tables, e.g. "layered-msf-q8".
  virtual std::string name() const = 0;

  /// Saturation accounting for the most recent decode. Default: all zeros
  /// (decoders without a fixed-point datapath have nothing to clip).
  virtual SaturationStats saturation() const { return {}; }
};

/// Per-iteration convergence snapshot delivered to an IterationObserver.
struct IterationSnapshot {
  std::size_t iteration = 0;        ///< 1-based
  std::size_t syndrome_weight = 0;  ///< unsatisfied checks after this iter
  double mean_abs_llr = 0.0;        ///< mean |posterior| (LLR units)
  std::size_t flipped_bits = 0;     ///< hard decisions changed vs prev iter
  long long saturation_clips = 0;   ///< cumulative clip events this decode
                                    ///< (0 unless count_saturation is set)
};

/// Called after every completed iteration (before early termination exits).
/// Observation only — must not mutate decoder state.
using IterationObserver = std::function<void(const IterationSnapshot&)>;

/// Iteration watchdog: aborts decodes whose syndrome weight has stopped
/// improving (non-convergent or oscillating frames) instead of burning the
/// full iteration budget and emitting garbage. Disabled by default —
/// enabling it costs one syndrome evaluation per iteration.
struct WatchdogOptions {
  /// Abort after this many consecutive iterations without a new minimum
  /// syndrome weight. 0 disables the watchdog.
  std::size_t stall_window = 0;

  bool enabled() const { return stall_window > 0; }
};

/// Tracks the watchdog's view of one decode. Value-type helper so every
/// decoder runs the identical policy.
class WatchdogState {
 public:
  explicit WatchdogState(const WatchdogOptions& options)
      : window_(options.stall_window) {}

  /// Feed this iteration's syndrome weight; returns true if the decode
  /// should be aborted now.
  bool should_abort(std::size_t syndrome_weight) {
    if (window_ == 0) return false;
    if (syndrome_weight < best_weight_) {
      best_weight_ = syndrome_weight;
      stalled_ = 0;
      return false;
    }
    return ++stalled_ >= window_;
  }

  bool fired() const { return window_ != 0 && stalled_ >= window_; }

 private:
  std::size_t window_;
  std::size_t best_weight_ = static_cast<std::size_t>(-1);
  std::size_t stalled_ = 0;
};

/// Options shared by the iterative decoders.
struct DecoderOptions {
  std::size_t max_iterations = 10;  ///< the paper's Table II uses 10
  bool early_termination = true;    ///< stop when all parity checks pass
  float scale = 0.75F;              ///< min-sum normalization factor
  IterationObserver observer;       ///< optional convergence probe
  WatchdogOptions watchdog;         ///< non-convergence abort (off by default)
  /// Count quantizer/datapath saturation events (first symptom of degraded
  /// operation); surfaced via IterationSnapshot and decoder-specific stats.
  bool count_saturation = false;
  /// Optional fault injector (non-owning, off = nullptr = bit-identical to
  /// the seed path). Honored by the fixed-point layered decoder and the
  /// cycle-accurate architecture simulator; see src/fault/.
  FaultInjector* fault_injector = nullptr;
};

}  // namespace ldpc
