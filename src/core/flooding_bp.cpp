#include "core/flooding_bp.hpp"

#include <algorithm>
#include <cmath>

namespace ldpc {
namespace {

/// Stable pairwise "boxplus" of two LLRs:
///   a ⊞ b = 2 atanh(tanh(a/2) tanh(b/2))
///         = sign(a) sign(b) min(|a|,|b|) + log1p(e^{-|a+b|}) - log1p(e^{-|a-b|})
/// The correction terms apply to the signed value (they can flip a weak
/// result toward zero), not to the magnitude.
float boxplus(float a, float b) {
  const float sm = std::min(std::fabs(a), std::fabs(b));
  const float signed_min = ((a < 0.0F) != (b < 0.0F)) ? -sm : sm;
  return signed_min + std::log1p(std::exp(-std::fabs(a + b))) -
         std::log1p(std::exp(-std::fabs(a - b)));
}

}  // namespace

FloodingBpDecoder::FloodingBpDecoder(const QCLdpcCode& code, DecoderOptions options)
    : code_(code), options_(options) {
  LDPC_CHECK(options_.max_iterations > 0);
  var_to_check_.resize(code_.num_edges());
  check_to_var_.resize(code_.num_edges());
  posterior_.resize(code_.n());
}

DecodeResult FloodingBpDecoder::decode(std::span<const float> llr) {
  LDPC_CHECK(llr.size() == code_.n());
  const auto& checks = code_.check_adjacency();
  const auto& var_edges = code_.var_edges();

  // Initialization: variable messages = channel LLRs.
  for (std::size_t v = 0; v < code_.n(); ++v)
    for (std::uint32_t e : var_edges[v]) var_to_check_[e] = llr[v];
  std::fill(check_to_var_.begin(), check_to_var_.end(), 0.0F);

  DecodeResult result;
  result.hard_bits.resize(code_.n());
  BitVec previous_hard;
  if (options_.observer) previous_hard.resize(code_.n());

  for (std::size_t iter = 1; iter <= options_.max_iterations; ++iter) {
    result.iterations = iter;

    // Check-node update: exact extrinsic boxplus via forward/backward pass.
    std::vector<float> fwd, bwd;
    for (std::size_t c = 0; c < checks.size(); ++c) {
      const std::size_t deg = checks[c].size();
      const std::size_t base = code_.edge_index(c, 0);
      fwd.assign(deg, 0.0F);
      bwd.assign(deg, 0.0F);
      fwd[0] = var_to_check_[base];
      for (std::size_t i = 1; i < deg; ++i)
        fwd[i] = boxplus(fwd[i - 1], var_to_check_[base + i]);
      bwd[deg - 1] = var_to_check_[base + deg - 1];
      for (std::size_t i = deg - 1; i-- > 0;)
        bwd[i] = boxplus(bwd[i + 1], var_to_check_[base + i]);
      for (std::size_t i = 0; i < deg; ++i) {
        if (i == 0)
          check_to_var_[base] = bwd[1];
        else if (i + 1 == deg)
          check_to_var_[base + i] = fwd[deg - 2];
        else
          check_to_var_[base + i] = boxplus(fwd[i - 1], bwd[i + 1]);
      }
    }

    // Variable-node update + posterior.
    for (std::size_t v = 0; v < code_.n(); ++v) {
      float total = llr[v];
      for (std::uint32_t e : var_edges[v]) total += check_to_var_[e];
      posterior_[v] = total;
      for (std::uint32_t e : var_edges[v])
        var_to_check_[e] = total - check_to_var_[e];
      result.hard_bits.set(v, posterior_[v] < 0.0F);
    }

    if (options_.observer) {
      IterationSnapshot snap;
      snap.iteration = iter;
      snap.syndrome_weight = code_.syndrome_weight(result.hard_bits);
      double sum = 0.0;
      for (const float p : posterior_) sum += std::fabs(static_cast<double>(p));
      snap.mean_abs_llr = sum / static_cast<double>(code_.n());
      snap.flipped_bits = result.hard_bits.hamming_distance(previous_hard);
      previous_hard = result.hard_bits;
      options_.observer(snap);
    }

    if (options_.early_termination && code_.parity_ok(result.hard_bits)) {
      result.converged = true;
      result.status = DecodeStatus::kConverged;
      return result;
    }
  }

  result.converged = code_.parity_ok(result.hard_bits);
  result.status = classify_exit(result.converged, /*watchdog_fired=*/false, 0);
  return result;
}

}  // namespace ldpc
