// Fixed-point flooding normalized min-sum decoder.
//
// The algorithmic reference for the *traditional* partial-parallel
// architecture the paper contrasts against in §IV-A ("each z x z sub-matrix
// is treated as a block ... parallelism is only at the sub-circulant
// level"). Same quantization and the same saturating/shift-add arithmetic
// as the layered kernel, but a two-phase flooding schedule with per-edge
// message storage — which is exactly why it needs about twice the
// iterations and more memory than Algorithm 1.
#pragma once

#include <cstdint>
#include <vector>

#include "codes/qc_code.hpp"
#include "core/decoder.hpp"
#include "core/layered_minsum_fixed.hpp"

namespace ldpc {

class FloodingMinSumFixedDecoder final : public Decoder {
 public:
  FloodingMinSumFixedDecoder(const QCLdpcCode& code, DecoderOptions options,
                             FixedFormat format = FixedFormat{});

  DecodeResult decode(std::span<const float> llr) override;
  std::size_t n() const override { return code_.n(); }
  std::size_t k() const override { return code_.k(); }
  std::string name() const override {
    return "flooding-minsum-" + kernel_.format().name();
  }

  std::string message_format() const override { return format().name(); }

  FixedFormat format() const { return kernel_.format(); }

  /// Quantized entry point (used by the architecture simulator and tests).
  DecodeResult decode_quantized(std::span<const std::int32_t> channel_codes);

  /// CNU/VNU saturation events in the last decode (0 unless
  /// DecoderOptions::count_saturation was set).
  long long saturation_clips() const { return saturation_.datapath_clips; }

  /// Per-site accounting: r_clips from the CNU's R' clamp, p_clips from the
  /// VNU's posterior-total clamp (this schedule has no separate Q site).
  SaturationStats saturation() const override { return saturation_; }

 private:
  const QCLdpcCode& code_;
  DecoderOptions options_;
  LayerRowKernel kernel_;  ///< reused for saturating ops + 0.75 scaling
  std::vector<std::int32_t> var_to_check_;  ///< Q messages, per edge
  std::vector<std::int32_t> check_to_var_;  ///< R messages, per edge
  SaturationStats saturation_;
};

}  // namespace ldpc
