#include "core/layered_minsum_fa.hpp"

#include <algorithm>
#include <cmath>

#include "fault/fault_injector.hpp"
#include "util/check.hpp"

namespace ldpc {

LayeredMinSumFaDecoder::LayeredMinSumFaDecoder(const QCLdpcCode& code,
                                               DecoderOptions options,
                                               int msg_bits,
                                               float design_ebn0_db)
    : code_(code),
      options_(options),
      tables_(build_fa_tables(
          code, msg_bits, design_ebn0_db,
          std::min<std::size_t>(
              8, std::max<std::size_t>(1, options.max_iterations)))),
      kernel_(&tables_) {
  LDPC_CHECK(options_.max_iterations > 0);
  // The MIM tables subsume the min-sum correction: options_.scale is
  // ignored by design (documented in docs/finite_alphabet.md).
  init_scratch();
}

void LayeredMinSumFaDecoder::init_scratch() {
  posterior_.resize(code_.n());
  check_msg_.resize(code_.base().nonzero_blocks() *
                    static_cast<std::size_t>(code_.z()));
  quant_scratch_.resize(code_.n());
  std::size_t max_deg = 0;
  for (const auto& layer : code_.layers())
    max_deg = std::max(max_deg, layer.size());
  q_row_.reserve(max_deg);
}

DecodeResult LayeredMinSumFaDecoder::decode(std::span<const float> llr) {
  LDPC_CHECK(llr.size() == code_.n());
  saturation_.quantizer_clips = 0;
  if (options_.count_saturation) {
    for (std::size_t v = 0; v < llr.size(); ++v)
      quant_scratch_[v] =
          fa_quantize(tables_.posterior, llr[v], saturation_.quantizer_clips);
  } else {
    for (std::size_t v = 0; v < llr.size(); ++v)
      quant_scratch_[v] = fa_quantize(tables_.posterior, llr[v]);
  }
  return decode_quantized(quant_scratch_);
}

DecodeResult LayeredMinSumFaDecoder::decode_quantized(
    std::span<const std::int32_t> channel_codes) {
  LDPC_CHECK(channel_codes.size() == code_.n());
  const auto z = static_cast<std::size_t>(code_.z());
  const int w = tables_.posterior.total_bits;

  std::copy(channel_codes.begin(), channel_codes.end(), posterior_.begin());
  std::fill(check_msg_.begin(), check_msg_.end(), 0);

  saturation_.datapath_clips = 0;
  saturation_.q_clips = 0;
  saturation_.r_clips = 0;  // structurally zero for this family
  saturation_.p_clips = 0;
  saturation_.degenerate_checks = 0;
  kernel_.track_saturation(options_.count_saturation ? &saturation_ : nullptr);
  kernel_.track_degenerate(&saturation_.degenerate_checks);
  FaultInjector* const injector =
      (options_.fault_injector && options_.fault_injector->enabled())
          ? options_.fault_injector
          : nullptr;
  const long long injections_before = injector ? injector->injections() : 0;
  WatchdogState watchdog(options_.watchdog);
  bool watchdog_fired = false;
  bool cancelled = false;

  DecodeResult result;
  result.hard_bits.resize(code_.n());
  BitVec previous_hard;
  if (options_.observer) previous_hard.resize(code_.n());

  std::vector<std::int32_t>& q = q_row_;

  for (std::size_t iter = 1; iter <= options_.max_iterations; ++iter) {
    result.iterations = iter;
    const FaCnTable& table = tables_.for_iteration(iter);

    for (const auto& layer : code_.layers()) {
      if (cancel_ && cancel_->expired()) {
        cancelled = true;
        break;
      }
      const std::size_t deg = layer.size();
      q.resize(deg);
      for (std::size_t row = 0; row < z; ++row) {
        FaRowKernel::CheckState st;
        st.reset();
        // Stage 1: Q = P - R, min1/min2/pos/sign accumulation.
        for (std::size_t j = 0; j < deg; ++j) {
          const auto& blk = layer[j];
          const std::size_t var = blk.block_col * z + (row + blk.shift) % z;
          std::int32_t p = posterior_[var];
          std::int32_t r = check_msg_[blk.r_slot * z + row];
          if (injector) {
            p = injector->corrupt_value(FaultSite::kSramP, p, w);
            r = injector->corrupt_value(FaultSite::kSramR, r, w);
          }
          q[j] = kernel_.compute_q(p, r);
          st.absorb(q[j], static_cast<std::uint32_t>(j));
        }
        if (injector) {
          st.min1 = injector->corrupt_magnitude(FaultSite::kCoreMin1, st.min1, w);
          st.min2 = injector->corrupt_magnitude(FaultSite::kCoreMin2, st.min2, w);
          st.sign_product =
              injector->corrupt_flag(FaultSite::kCoreSign, st.sign_product);
        }
        // Stage 2: staircase R' and saturating P' write-back.
        for (std::size_t j = 0; j < deg; ++j) {
          const auto& blk = layer[j];
          const std::size_t var = blk.block_col * z + (row + blk.shift) % z;
          const std::int32_t r_new = kernel_.compute_r_new(
              table, st, q[j], static_cast<std::uint32_t>(j));
          check_msg_[blk.r_slot * z + row] = r_new;
          posterior_[var] = kernel_.compute_p_new(q[j], r_new);
        }
      }
    }

    for (std::size_t v = 0; v < code_.n(); ++v)
      result.hard_bits.set(v, posterior_[v] < 0);
    const bool want_weight =
        static_cast<bool>(options_.observer) || options_.watchdog.enabled();
    std::size_t weight = 0;
    if (want_weight) weight = code_.syndrome_weight(result.hard_bits);
    if (options_.observer) {
      IterationSnapshot snap;
      snap.iteration = iter;
      snap.syndrome_weight = weight;
      double sum = 0.0;
      for (const auto p : posterior_)
        sum += std::abs(static_cast<double>(tables_.posterior.dequantize(p)));
      snap.mean_abs_llr = sum / static_cast<double>(code_.n());
      snap.flipped_bits = result.hard_bits.hamming_distance(previous_hard);
      snap.saturation_clips =
          saturation_.q_clips + saturation_.r_clips + saturation_.p_clips;
      previous_hard = result.hard_bits;
      options_.observer(snap);
    }
    if (options_.early_termination &&
        (want_weight ? weight == 0 : code_.parity_ok(result.hard_bits))) {
      result.converged = true;
      break;
    }
    if (cancelled) break;
    if (options_.watchdog.enabled() && watchdog.should_abort(weight)) {
      watchdog_fired = true;
      break;
    }
  }

  if (!result.converged) result.converged = code_.parity_ok(result.hard_bits);
  saturation_.datapath_clips =
      saturation_.q_clips + saturation_.r_clips + saturation_.p_clips;
  if (injector)
    result.faults_injected =
        static_cast<std::size_t>(injector->injections() - injections_before);
  result.status = classify_exit(result.converged, watchdog_fired,
                                result.faults_injected, cancelled);
  return result;
}

}  // namespace ldpc
