#include "core/flooding_minsum.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ldpc {

FloodingMinSumDecoder::FloodingMinSumDecoder(const QCLdpcCode& code,
                                             DecoderOptions options,
                                             MinSumVariant variant, float offset)
    : code_(code), options_(options), variant_(variant), offset_(offset) {
  LDPC_CHECK(options_.max_iterations > 0);
  var_to_check_.resize(code_.num_edges());
  check_to_var_.resize(code_.num_edges());
}

std::string FloodingMinSumDecoder::name() const {
  switch (variant_) {
    case MinSumVariant::kPlain:         return "flooding-minsum";
    case MinSumVariant::kNormalized:    return "flooding-minsum-norm";
    case MinSumVariant::kOffset:        return "flooding-minsum-offset";
    case MinSumVariant::kSelfCorrected: return "flooding-minsum-scms";
  }
  return "flooding-minsum-?";
}

DecodeResult FloodingMinSumDecoder::decode(std::span<const float> llr) {
  LDPC_CHECK(llr.size() == code_.n());
  const auto& checks = code_.check_adjacency();
  const auto& var_edges = code_.var_edges();

  for (std::size_t v = 0; v < code_.n(); ++v)
    for (std::uint32_t e : var_edges[v]) var_to_check_[e] = llr[v];
  std::fill(check_to_var_.begin(), check_to_var_.end(), 0.0F);
  if (variant_ == MinSumVariant::kSelfCorrected)
    prev_sign_.assign(code_.num_edges(), 2);  // unset

  DecodeResult result;
  result.hard_bits.resize(code_.n());
  BitVec previous_hard;
  if (options_.observer) previous_hard.resize(code_.n());

  for (std::size_t iter = 1; iter <= options_.max_iterations; ++iter) {
    result.iterations = iter;

    // Check-node update: min1/min2 + sign product, the same computation the
    // hardware core 1 performs (but over all edges at once).
    for (std::size_t c = 0; c < checks.size(); ++c) {
      const std::size_t deg = checks[c].size();
      const std::size_t base = code_.edge_index(c, 0);
      float min1 = std::numeric_limits<float>::infinity();
      float min2 = std::numeric_limits<float>::infinity();
      std::size_t pos1 = 0;
      bool sign_product = false;  // false = +1
      for (std::size_t i = 0; i < deg; ++i) {
        const float q = var_to_check_[base + i];
        const float mag = std::fabs(q);
        sign_product ^= (q < 0.0F);
        if (mag < min1) {
          min2 = min1;
          min1 = mag;
          pos1 = i;
        } else if (mag < min2) {
          min2 = mag;
        }
      }
      for (std::size_t i = 0; i < deg; ++i) {
        float mag = (i == pos1) ? min2 : min1;
        switch (variant_) {
          case MinSumVariant::kPlain:
          case MinSumVariant::kSelfCorrected:
            break;
          case MinSumVariant::kNormalized:
            mag *= options_.scale;
            break;
          case MinSumVariant::kOffset:
            mag = std::max(0.0F, mag - offset_);
            break;
        }
        const bool negative = sign_product ^ (var_to_check_[base + i] < 0.0F);
        check_to_var_[base + i] = negative ? -mag : mag;
      }
    }

    // Variable-node update. Self-corrected min-sum (Savin 2008) erases a
    // variable-to-check message whose sign flipped since the previous
    // iteration — oscillation marks it unreliable.
    double abs_sum = 0.0;
    for (std::size_t v = 0; v < code_.n(); ++v) {
      float total = llr[v];
      for (std::uint32_t e : var_edges[v]) total += check_to_var_[e];
      for (std::uint32_t e : var_edges[v]) {
        float msg = total - check_to_var_[e];
        if (variant_ == MinSumVariant::kSelfCorrected) {
          const std::uint8_t sign_now = msg < 0.0F ? 1 : 0;
          if (prev_sign_[e] != 2 && prev_sign_[e] != sign_now && msg != 0.0F) {
            msg = 0.0F;
            prev_sign_[e] = 2;  // erased: no sign to compare next round
          } else {
            prev_sign_[e] = sign_now;
          }
        }
        var_to_check_[e] = msg;
      }
      result.hard_bits.set(v, total < 0.0F);
      abs_sum += std::fabs(static_cast<double>(total));
    }

    if (options_.observer) {
      IterationSnapshot snap;
      snap.iteration = iter;
      snap.syndrome_weight = code_.syndrome_weight(result.hard_bits);
      snap.mean_abs_llr = abs_sum / static_cast<double>(code_.n());
      snap.flipped_bits = result.hard_bits.hamming_distance(previous_hard);
      previous_hard = result.hard_bits;
      options_.observer(snap);
    }

    if (options_.early_termination && code_.parity_ok(result.hard_bits)) {
      result.converged = true;
      result.status = DecodeStatus::kConverged;
      return result;
    }
  }

  result.converged = code_.parity_ok(result.hard_bits);
  result.status = classify_exit(result.converged, /*watchdog_fired=*/false, 0);
  return result;
}

}  // namespace ldpc
