// Floating-point flooding sum-product (belief propagation) decoder.
//
// This is the error-rate reference every other decoder is measured against:
// exact check-node update (tanh rule, computed stably in the log domain via
// pairwise combination), two-phase flooding schedule.
#pragma once

#include <vector>

#include "codes/qc_code.hpp"
#include "core/decoder.hpp"

namespace ldpc {

class FloodingBpDecoder final : public Decoder {
 public:
  FloodingBpDecoder(const QCLdpcCode& code, DecoderOptions options);

  DecodeResult decode(std::span<const float> llr) override;
  std::size_t n() const override { return code_.n(); }
  std::size_t k() const override { return code_.k(); }
  std::string name() const override { return "flooding-bp"; }

 private:
  const QCLdpcCode& code_;
  DecoderOptions options_;
  // Messages indexed by the code's global edge numbering.
  std::vector<float> var_to_check_;
  std::vector<float> check_to_var_;
  std::vector<float> posterior_;
};

}  // namespace ldpc
