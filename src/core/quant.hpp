// Fixed-point quantization of channel LLRs and decoder messages.
//
// The paper's decoder stores P and R as 8-bit two's-complement values
// (Fig. 5); Table II quotes 6 quantization bits for the comparison point.
// Both are instances of FixedFormat{total_bits, frac_bits}: value = code *
// 2^-frac_bits, saturating at the format's rails. The format is threaded
// through the algorithmic decoder and the cycle-accurate datapaths so the
// quantization-width ablation benches can sweep it.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

#include "util/check.hpp"
#include "util/saturate.hpp"

namespace ldpc {

struct FixedFormat {
  int total_bits = 8;  ///< including sign
  int frac_bits = 2;   ///< LLR resolution of 0.25 by default

  constexpr std::int32_t max_code() const { return fixed_max(total_bits); }
  constexpr std::int32_t min_code() const { return fixed_min(total_bits); }

  /// Quantize an LLR: round to nearest, saturate. NaN maps to 0 (a NaN LLR
  /// carries no information, so the neutral code is the only sound answer).
  std::int32_t quantize(float llr) const {
    return sat_clamp(round_half_away(scale(llr)), total_bits);
  }

  /// Counted quantize: same value, but `clips` is incremented when the LLR
  /// saturated at the format's rails (overflow accounting for degraded-
  /// operation monitoring).
  std::int32_t quantize(float llr, long long& clips) const {
    return sat_clamp_counted(round_half_away(scale(llr)), total_bits, clips);
  }

  /// Round to nearest, ties away from zero — the std::lround rule, without
  /// the libm call (the quantizer dominates frame setup at batch-decode
  /// rates). Bit-identical to lround for every value scale() can produce:
  /// scale() pre-limits to the rails ±1 (|x| <= 2^15 + 1, a float with
  /// <= 24 significand bits), so x ± 0.5 computed in double is exact and
  /// truncation of the exact sum is precisely half-away-from-zero rounding.
  static std::int64_t round_half_away(float scaled) {
    const double d = static_cast<double>(scaled);
    return d >= 0.0 ? static_cast<std::int64_t>(d + 0.5)
                    : -static_cast<std::int64_t>(0.5 - d);
  }

  /// Reconstruct the real value of a code.
  float dequantize(std::int32_t code) const {
    return static_cast<float>(code) / static_cast<float>(1 << frac_bits);
  }

  /// LLR -> unclamped code-domain value, pre-limited to one step past the
  /// rails. std::lround on a float outside long's range (huge LLRs, +-inf)
  /// is undefined behaviour — the static range verifier models the
  /// quantizer input as unbounded, which flagged this path. Limiting to
  /// rails +-1 keeps lround defined while leaving the saturation itself to
  /// the integer clamp, so clip accounting is unchanged for every input
  /// that was previously well-defined.
  float scale(float llr) const {
    const float scaled = llr * static_cast<float>(1 << frac_bits);
    if (std::isnan(scaled)) return 0.0F;
    const float hi = static_cast<float>(max_code()) + 1.0F;
    const float lo = static_cast<float>(min_code()) - 1.0F;
    return scaled > hi ? hi : (scaled < lo ? lo : scaled);
  }

  std::string name() const {
    return "q" + std::to_string(total_bits) + "." + std::to_string(frac_bits);
  }
};

/// Validate a format for use in the decoders (2..16 bits, frac < total).
inline void validate(const FixedFormat& fmt) {
  LDPC_CHECK_MSG(fmt.total_bits >= 2 && fmt.total_bits <= 16,
                 "unsupported fixed-point width " << fmt.total_bits);
  LDPC_CHECK_MSG(fmt.frac_bits >= 0 && fmt.frac_bits < fmt.total_bits,
                 "invalid fraction bits " << fmt.frac_bits);
}

}  // namespace ldpc
