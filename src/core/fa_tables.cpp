#include "core/fa_tables.hpp"

#include <cmath>
#include <map>

#include "util/check.hpp"

namespace ldpc {
namespace {

// All pmfs live on the signed posterior grid: index s in [0, 2*kFaRail]
// maps to code s - kFaRail. The magnitude/sign split treats code 0 as
// positive, matching the decoder's sign predicate (q < 0).
constexpr int kGrid = 2 * kFaRail + 1;  // 255 signed codes
constexpr int kMags = kFaRail + 1;      // 128 magnitudes

using Pmf = std::vector<double>;        // kGrid entries, sums to 1
struct MagPmf {                         // sign-split magnitude pmf
  std::array<double, kMags> pos{};      // P(sign +, mag m | bit 0)
  std::array<double, kMags> neg{};      // P(sign -, mag m | bit 0)
};

double normal_cdf(double x, double mean, double stddev) {
  return 0.5 * std::erfc(-(x - mean) / (stddev * std::sqrt(2.0)));
}

/// Channel LLR pmf on the grid, conditioned on the transmitted bit being 0
/// (BPSK 0 -> +1): LLR ~ N(2/sigma^2, 4/sigma^2), quantized by the same
/// round-to-nearest / clamp-at-rails rule as fa_quantize.
Pmf channel_pmf(double sigma2, const FixedFormat& posterior) {
  const double mean = 2.0 / sigma2;
  const double stddev = std::sqrt(4.0 / sigma2);
  const double scale = static_cast<double>(1 << posterior.frac_bits);
  Pmf pmf(kGrid, 0.0);
  for (int c = -kFaRail; c <= kFaRail; ++c) {
    const double lo = c == -kFaRail ? -1e30 : (c - 0.5) / scale;
    const double hi = c == kFaRail ? 1e30 : (c + 0.5) / scale;
    pmf[static_cast<std::size_t>(c + kFaRail)] =
        normal_cdf(hi, mean, stddev) - normal_cdf(lo, mean, stddev);
  }
  return pmf;
}

/// Saturating convolution on the signed grid (the VN adder clamps at the
/// rails, so out-of-range sums pile up on the rail bins).
Pmf conv_sat(const Pmf& a, const Pmf& b) {
  Pmf out(kGrid, 0.0);
  for (int i = 0; i < kGrid; ++i) {
    const double pa = a[static_cast<std::size_t>(i)];
    if (pa == 0.0) continue;
    for (int j = 0; j < kGrid; ++j) {
      const double pb = b[static_cast<std::size_t>(j)];
      if (pb == 0.0) continue;
      int s = i + j - kFaRail;  // signed-code sum, re-biased
      s = s < 0 ? 0 : (s >= kGrid ? kGrid - 1 : s);
      out[static_cast<std::size_t>(s)] += pa * pb;
    }
  }
  return out;
}

MagPmf split(const Pmf& pmf) {
  MagPmf w;
  w.pos[0] = pmf[kFaRail];  // code 0 counts as positive (q < 0 is false)
  for (int m = 1; m < kMags; ++m) {
    w.pos[static_cast<std::size_t>(m)] =
        pmf[static_cast<std::size_t>(kFaRail + m)];
    w.neg[static_cast<std::size_t>(m)] =
        pmf[static_cast<std::size_t>(kFaRail - m)];
  }
  return w;
}

/// Check-node pairwise combine: the min of two magnitudes with the XOR of
/// the two signs — applied (degree - 2) times this yields the pmf of the
/// row min over (degree - 1) extrinsic inputs.
MagPmf cn_combine(const MagPmf& u, const MagPmf& v) {
  // Suffix sums turn "other magnitude strictly larger / at least" into O(1).
  std::array<double, kMags + 1> up{}, un{}, vp{}, vn{};
  for (int m = kMags - 1; m >= 0; --m) {
    const auto i = static_cast<std::size_t>(m);
    up[i] = up[i + 1] + u.pos[i];
    un[i] = un[i + 1] + u.neg[i];
    vp[i] = vp[i + 1] + v.pos[i];
    vn[i] = vn[i + 1] + v.neg[i];
  }
  MagPmf out;
  for (int m = 0; m < kMags; ++m) {
    const auto i = static_cast<std::size_t>(m);
    // min == m: (u == m and v >= m) or (v == m and u > m).
    const double pp = u.pos[i] * vp[i] + v.pos[i] * up[i + 1];
    const double nn = u.neg[i] * vn[i] + v.neg[i] * un[i + 1];
    const double pn = u.pos[i] * vn[i] + v.neg[i] * up[i + 1];
    const double np = u.neg[i] * vp[i] + v.pos[i] * un[i + 1];
    out.pos[i] = pp + nn;
    out.neg[i] = pn + np;
  }
  return out;
}

/// Mutual-information contribution of one magnitude region with conditional
/// masses (a, b) = (P(+, region | 0), P(-, region | 0)); the mirrored
/// symbol pair contributes symmetrically, so the region total is
/// a log2(2a/(a+b)) + b log2(2b/(a+b)), with 0 log 0 = 0.
double region_mi(double a, double b) {
  const double s = a + b;
  if (s <= 0.0) return 0.0;
  double mi = 0.0;
  if (a > 0.0) mi += a * std::log2(2.0 * a / s);
  if (b > 0.0) mi += b * std::log2(2.0 * b / s);
  return mi;
}

/// Partition magnitudes 0..127 into `levels` contiguous regions maximizing
/// the mutual information between the quantized (sign, region) symbol and
/// the transmitted bit. Returns the region start boundaries b[1..L-1]
/// (region k spans [b[k], b[k+1]-1], b[0] = 0 implicit).
std::vector<int> mim_partition(const MagPmf& w, int levels) {
  std::array<double, kMags + 1> ap{}, an{};  // prefix masses
  for (int m = 0; m < kMags; ++m) {
    const auto i = static_cast<std::size_t>(m);
    ap[i + 1] = ap[i] + w.pos[i];
    an[i + 1] = an[i] + w.neg[i];
  }
  const auto cost = [&](int lo, int hi) {  // region [lo, hi]
    return region_mi(ap[static_cast<std::size_t>(hi + 1)] -
                         ap[static_cast<std::size_t>(lo)],
                     an[static_cast<std::size_t>(hi + 1)] -
                         an[static_cast<std::size_t>(lo)]);
  };
  // best[k][j]: max MI partitioning 0..j into k+1 regions; from[k][j] the
  // chosen start of the last region.
  std::vector<std::vector<double>> best(
      static_cast<std::size_t>(levels), std::vector<double>(kMags, -1.0));
  std::vector<std::vector<int>> from(
      static_cast<std::size_t>(levels), std::vector<int>(kMags, 0));
  for (int j = 0; j < kMags; ++j) best[0][static_cast<std::size_t>(j)] = cost(0, j);
  for (int k = 1; k < levels; ++k) {
    for (int j = k; j < kMags; ++j) {
      double b = -1.0;
      int arg = k;
      for (int i = k; i <= j; ++i) {
        const double v =
            best[static_cast<std::size_t>(k - 1)][static_cast<std::size_t>(i - 1)] +
            cost(i, j);
        if (v > b) {
          b = v;
          arg = i;
        }
      }
      best[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)] = b;
      from[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)] = arg;
    }
  }
  std::vector<int> bounds(static_cast<std::size_t>(levels - 1), 0);
  int j = kMags - 1;
  for (int k = levels - 1; k >= 1; --k) {
    const int i = from[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)];
    bounds[static_cast<std::size_t>(k - 1)] = i;
    j = i - 1;
  }
  return bounds;
}

/// Edge-perspective degree mixture: degree -> fraction of edges incident to
/// nodes of that degree (entries with degree < `min_degree` dropped and the
/// rest renormalized — degree-1 check rows emit the constant R' = 0 and
/// carry no information for the quantizer design).
std::map<std::size_t, double> edge_mixture(
    const std::vector<std::vector<std::uint32_t>>& adjacency,
    std::size_t min_degree) {
  std::map<std::size_t, double> mix;
  double total = 0.0;
  for (const auto& nbrs : adjacency) {
    if (nbrs.size() < min_degree) continue;
    mix[nbrs.size()] += static_cast<double>(nbrs.size());
    total += static_cast<double>(nbrs.size());
  }
  LDPC_CHECK_MSG(total > 0.0, "code has no usable node degrees");
  for (auto& [deg, w] : mix) w /= total;
  return mix;
}

}  // namespace

FaTableSet build_fa_tables(const QCLdpcCode& code, int msg_bits,
                           float design_ebn0_db, std::size_t num_tables) {
  LDPC_CHECK_MSG(msg_bits >= 2 && msg_bits <= kFaMaxBits,
                 "finite-alphabet message width must be 2..4 bits, got "
                     << msg_bits);
  LDPC_CHECK(num_tables >= 1);
  FaTableSet set;
  set.msg_bits = msg_bits;
  set.levels = 1 << (msg_bits - 1);
  set.design_ebn0_db = design_ebn0_db;
  const int levels = set.levels;

  // sigma^2 of the unit-energy BPSK AWGN channel at the design point.
  const double rate = code.rate();
  const double sigma2 =
      1.0 / (2.0 * rate * std::pow(10.0, design_ebn0_db / 10.0));

  const Pmf channel = channel_pmf(sigma2, set.posterior);
  const auto check_mix = edge_mixture(code.check_adjacency(), 2);
  const auto var_mix = edge_mixture(code.var_adjacency(), 1);

  Pmf q = channel;  // check-node input pmf entering the current iteration
  set.tables.reserve(num_tables);
  for (std::size_t t = 0; t < num_tables; ++t) {
    // --- check node: pmf of the signed min over (degree - 1) inputs -----
    const MagPmf in = split(q);
    MagPmf w{};
    for (const auto& [deg, frac] : check_mix) {
      MagPmf acc = in;  // (deg - 1) extrinsic inputs -> (deg - 2) combines
      for (std::size_t k = 2; k + 1 <= deg; ++k) acc = cn_combine(acc, in);
      for (int m = 0; m < kMags; ++m) {
        const auto i = static_cast<std::size_t>(m);
        w.pos[i] += frac * acc.pos[i];
        w.neg[i] += frac * acc.neg[i];
      }
    }

    // --- MIM quantizer: thresholds + reconstruction levels --------------
    const std::vector<int> bounds = mim_partition(w, levels);
    FaCnTable table;
    table.thr.fill(static_cast<std::int8_t>(kFaRail));  // "> 127" never fires
    for (int k = 0; k < levels - 1; ++k)
      table.thr[static_cast<std::size_t>(k)] =
          static_cast<std::int8_t>(bounds[static_cast<std::size_t>(k)] - 1);
    const double fscale = static_cast<double>(1 << set.posterior.frac_bits);
    std::int32_t prev = 0;
    for (int k = 0; k < levels; ++k) {
      const int lo = k == 0 ? 0 : bounds[static_cast<std::size_t>(k - 1)];
      const int hi =
          k == levels - 1 ? kMags - 1 : bounds[static_cast<std::size_t>(k)] - 1;
      double a = 0.0;
      double b = 0.0;
      for (int m = lo; m <= hi; ++m) {
        a += w.pos[static_cast<std::size_t>(m)];
        b += w.neg[static_cast<std::size_t>(m)];
      }
      std::int32_t r = prev;  // empty region: keep the staircase monotone
      if (a > 0.0 || b > 0.0) {
        const double llr = std::log((a + 1e-300) / (b + 1e-300));
        const double scaled = llr * fscale;
        r = scaled >= static_cast<double>(kFaRail)
                ? kFaRail
                : (scaled <= 0.0
                       ? 0
                       : static_cast<std::int32_t>(std::lround(scaled)));
      }
      r = std::max(r, prev);  // reconstruction must be nondecreasing
      prev = r;
      table.recon[static_cast<std::size_t>(k)] = static_cast<std::int8_t>(r);
    }
    for (int k = levels; k < kFaMaxLevels; ++k)
      table.recon[static_cast<std::size_t>(k)] =
          table.recon[static_cast<std::size_t>(levels - 1)];
    set.tables.push_back(table);

    // --- message pmf after quantization ---------------------------------
    Pmf r_pmf(kGrid, 0.0);
    for (int m = 0; m < kMags; ++m) {
      const auto i = static_cast<std::size_t>(m);
      const std::int32_t rec = set.reconstruct(table, m);
      r_pmf[static_cast<std::size_t>(kFaRail + rec)] += w.pos[i];
      r_pmf[static_cast<std::size_t>(kFaRail - rec)] += w.neg[i];
    }

    // --- variable node: next iteration's check-node input ---------------
    if (t + 1 < num_tables) {
      Pmf next(kGrid, 0.0);
      // Incremental message powers: r_pow = r_pmf convolved (d - 1) times.
      Pmf r_pow(kGrid, 0.0);
      r_pow[kFaRail] = 1.0;  // delta at 0 == zero extrinsic messages
      std::size_t built = 0;
      for (const auto& [deg, frac] : var_mix) {
        while (built + 1 < deg) {
          r_pow = conv_sat(r_pow, r_pmf);
          ++built;
        }
        const Pmf qd = conv_sat(channel, r_pow);
        for (int s = 0; s < kGrid; ++s)
          next[static_cast<std::size_t>(s)] +=
              frac * qd[static_cast<std::size_t>(s)];
      }
      q = std::move(next);
    }
  }
  return set;
}

}  // namespace ldpc
