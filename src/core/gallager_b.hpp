// Gallager-B hard-decision decoder.
//
// The original 1962 bit-flipping algorithm from the paper's reference [1]:
// binary messages only, majority-vote variable update. Orders of magnitude
// cheaper than min-sum in hardware but ~2 dB weaker — included as the
// historical baseline that motivates soft decoding, and as a fast
// first-stage decoder in the examples.
#pragma once

#include <vector>

#include "codes/qc_code.hpp"
#include "core/decoder.hpp"

namespace ldpc {

class GallagerBDecoder final : public Decoder {
 public:
  /// `threshold` = number of disagreeing check messages required to flip a
  /// variable against its channel bit; 0 selects the degree-based default
  /// (majority: ceil(dv / 2) + 1 disagreements, at least 2).
  GallagerBDecoder(const QCLdpcCode& code, DecoderOptions options,
                   std::size_t threshold = 0);

  DecodeResult decode(std::span<const float> llr) override;
  std::size_t n() const override { return code_.n(); }
  std::size_t k() const override { return code_.k(); }
  std::string name() const override { return "gallager-b"; }
  /// Hard-decision message passing: messages are single bits.
  std::string message_format() const override { return "bit"; }

  /// Hard-input entry point (the natural interface for this decoder).
  DecodeResult decode_hard(const BitVec& received);

 private:
  const QCLdpcCode& code_;
  DecoderOptions options_;
  std::size_t threshold_;
  /// Messages on edges, as bits: var->check and check->var.
  std::vector<std::uint8_t> var_to_check_;
  std::vector<std::uint8_t> check_to_var_;
};

}  // namespace ldpc
