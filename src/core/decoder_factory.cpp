#include "core/decoder_factory.hpp"

#include <sstream>

#include "core/flooding_bp.hpp"
#include "core/flooding_minsum.hpp"
#include "core/gallager_b.hpp"
#include "core/layered_minsum_fa.hpp"
#include "core/layered_minsum_fixed.hpp"
#include "core/layered_minsum_float.hpp"
#include "core/simd/simd_batch.hpp"
#include "core/simd/simd_fa_batch.hpp"
#include "core/simd/simd_fa_layered.hpp"
#include "core/simd/simd_layered.hpp"

namespace ldpc {

std::unique_ptr<Decoder> make_decoder(const std::string& name,
                                      const QCLdpcCode& code,
                                      const DecoderOptions& options) {
  if (name == "flooding-bp")
    return std::make_unique<FloodingBpDecoder>(code, options);
  if (name == "flooding-minsum")
    return std::make_unique<FloodingMinSumDecoder>(code, options,
                                                   MinSumVariant::kPlain);
  if (name == "flooding-minsum-norm")
    return std::make_unique<FloodingMinSumDecoder>(code, options,
                                                   MinSumVariant::kNormalized);
  if (name == "flooding-minsum-offset")
    return std::make_unique<FloodingMinSumDecoder>(code, options,
                                                   MinSumVariant::kOffset);
  if (name == "flooding-minsum-scms")
    return std::make_unique<FloodingMinSumDecoder>(code, options,
                                                   MinSumVariant::kSelfCorrected);
  if (name == "gallager-b")
    return std::make_unique<GallagerBDecoder>(code, options);
  if (name == "layered-minsum-float")
    return std::make_unique<LayeredMinSumFloatDecoder>(code, options);
  if (name == "layered-minsum-fixed")
    return std::make_unique<LayeredMinSumFixedDecoder>(code, options,
                                                       FixedFormat{8, 2});
  if (name == "layered-minsum-q6")
    return std::make_unique<LayeredMinSumFixedDecoder>(code, options,
                                                       FixedFormat{6, 1});
  if (name == "layered-minsum-offset-fixed") {
    // Offset 0.5 in LLR units at the default q8.2 format = 2 codes.
    const FixedFormat fmt{8, 2};
    return std::make_unique<LayeredMinSumFixedDecoder>(
        code, options, LayerRowKernel::offset_kernel(fmt, 2),
        "layered-minsum-offset-" + fmt.name());
  }
  // SIMD z-lane twins of the fixed-point layered decoders: bit-identical
  // results (asserted in tests/simd_equivalence_test.cpp), z rows of each
  // layer processed as vector lanes. See src/core/simd/.
  if (name == "layered-minsum-simd")
    return std::make_unique<SimdLayeredDecoder>(code, options,
                                                FixedFormat{8, 2});
  if (name == "layered-minsum-simd-q6")
    return std::make_unique<SimdLayeredDecoder>(code, options,
                                                FixedFormat{6, 1});
  if (name == "layered-minsum-simd-offset") {
    const FixedFormat fmt{8, 2};
    return std::make_unique<SimdLayeredDecoder>(
        code, options, fmt, 2, "layered-minsum-simd-offset-" + fmt.name());
  }
  // Inter-frame-batched SIMD decoders: frame per lane instead of check row
  // per lane, so every lane is full for any z. The batch engine detects
  // block_width() > 1 and hands these decoders whole frame-blocks.
  if (name == "layered-minsum-simd-batched")
    return std::make_unique<SimdBatchDecoder>(code, options,
                                              FixedFormat{8, 2});
  if (name == "layered-minsum-simd-batched-q6")
    return std::make_unique<SimdBatchDecoder>(code, options,
                                              FixedFormat{6, 1});
  // Finite-alphabet family (fa2/fa3/fa4): 2-4-bit check messages via MIM
  // staircase tables on an int8 posterior, scalar reference plus the int8
  // SIMD z-lane and inter-frame-batched twins. See core/fa_tables.hpp.
  if (name == "layered-minsum-fa2")
    return std::make_unique<LayeredMinSumFaDecoder>(code, options, 2);
  if (name == "layered-minsum-fa3")
    return std::make_unique<LayeredMinSumFaDecoder>(code, options, 3);
  if (name == "layered-minsum-fa4")
    return std::make_unique<LayeredMinSumFaDecoder>(code, options, 4);
  if (name == "layered-minsum-simd-fa2")
    return std::make_unique<SimdFaLayeredDecoder>(code, options, 2);
  if (name == "layered-minsum-simd-fa3")
    return std::make_unique<SimdFaLayeredDecoder>(code, options, 3);
  if (name == "layered-minsum-simd-fa4")
    return std::make_unique<SimdFaLayeredDecoder>(code, options, 4);
  if (name == "layered-minsum-simd-batched-fa2")
    return std::make_unique<SimdFaBatchDecoder>(code, options, 2);
  if (name == "layered-minsum-simd-batched-fa3")
    return std::make_unique<SimdFaBatchDecoder>(code, options, 3);
  if (name == "layered-minsum-simd-batched-fa4")
    return std::make_unique<SimdFaBatchDecoder>(code, options, 4);
  // List the candidates in the error: factory names travel through CLI
  // flags and JSON configs, where a typo is otherwise a dead end.
  std::ostringstream msg;
  msg << "unknown decoder name: " << name << " (known:";
  for (const std::string& known : decoder_names()) msg << ' ' << known;
  msg << ')';
  throw Error(msg.str());
}

const std::vector<std::string>& decoder_names() {
  static const std::vector<std::string> names = {
      "flooding-bp",           "flooding-minsum",
      "flooding-minsum-norm",  "flooding-minsum-offset",
      "flooding-minsum-scms",  "gallager-b",
      "layered-minsum-float",  "layered-minsum-fixed",
      "layered-minsum-q6",     "layered-minsum-offset-fixed",
      "layered-minsum-simd",   "layered-minsum-simd-q6",
      "layered-minsum-simd-offset",
      "layered-minsum-simd-batched",
      "layered-minsum-simd-batched-q6",
      "layered-minsum-fa2",    "layered-minsum-fa3",
      "layered-minsum-fa4",    "layered-minsum-simd-fa2",
      "layered-minsum-simd-fa3",
      "layered-minsum-simd-fa4",
      "layered-minsum-simd-batched-fa2",
      "layered-minsum-simd-batched-fa3",
      "layered-minsum-simd-batched-fa4",
  };
  return names;
}

}  // namespace ldpc
